//! Accelerator configuration: the digitized Suresh-shaped curves.
//!
//! Per-lane curves follow the published SHA-256 engine (ESSCIRC'18):
//! operation from 230 mV to 950 mV, peak efficiency ≈ 2.8 Tbps/W =
//! 2.8 Gbps/mW in the near-threshold region, efficiency falling steeply as
//! voltage rises (power grows ≈ cubically while throughput grows ≈
//! linearly). The single published engine is milliwatt-scale; the paper
//! treats the accelerator as a package-relevant component, so we instantiate
//! a `lanes`-wide array (default 100) which puts the accelerator chiplet
//! near 10 W at full voltage — its share of the 100 W package (DESIGN.md
//! substitution table).

use crate::lut::LookupTable;
use hcapp_sim_core::units::Volt;

/// Static configuration of the SHA accelerator chiplet.
#[derive(Debug, Clone, PartialEq)]
pub struct ShaConfig {
    /// Number of parallel hashing lanes.
    pub lanes: u32,
    /// Lowest usable lane voltage (below it the engine is clock-gated).
    pub v_min: Volt,
    /// Highest safe lane voltage (overvoltage protection clamps here).
    pub v_max: Volt,
    /// Idle (clock-gated) power as a fraction of the busy power at the same
    /// voltage — leakage does not disappear when the backlog drains.
    pub idle_fraction: f64,
    /// Looping workload backlog size in gigabits (refilled when drained).
    pub backlog_gbits: f64,
}

impl Default for ShaConfig {
    fn default() -> Self {
        ShaConfig {
            lanes: 100,
            v_min: Volt::new(0.23),
            v_max: Volt::new(0.95),
            idle_fraction: 0.06,
            backlog_gbits: 1.0e6,
        }
    }
}

impl ShaConfig {
    /// Per-lane voltage → throughput curve in Gbps (digitized shape).
    pub fn lane_throughput_gbps(&self) -> LookupTable {
        LookupTable::new(&[
            (0.23, 0.10),
            (0.30, 0.90),
            (0.40, 3.20),
            (0.50, 7.00),
            (0.60, 12.0),
            (0.70, 18.0),
            (0.80, 25.0),
            (0.90, 33.0),
            (0.95, 37.0),
        ])
    }

    /// Per-lane voltage → power curve in milliwatts, derived from the
    /// throughput curve and the published efficiency roll-off
    /// (2.8 Gbps/mW near threshold down to ≈ 0.38 Gbps/mW at 950 mV).
    pub fn lane_power_mw(&self) -> LookupTable {
        LookupTable::new(&[
            (0.23, 0.10 / 2.8),
            (0.30, 0.90 / 2.6),
            (0.40, 3.20 / 2.1),
            (0.50, 7.00 / 1.6),
            (0.60, 12.0 / 1.2),
            (0.70, 18.0 / 0.9),
            (0.80, 25.0 / 0.65),
            (0.90, 33.0 / 0.45),
            (0.95, 37.0 / 0.38),
        ])
    }

    /// Array throughput at lane voltage `v`, in Gbps.
    pub fn throughput_gbps(&self, v: Volt) -> f64 {
        let v = v.clamp(self.v_min, self.v_max);
        if v.value() < self.v_min.value() {
            return 0.0;
        }
        self.lane_throughput_gbps().eval(v.value()) * self.lanes as f64
    }

    /// Array busy power at lane voltage `v`, in watts.
    pub fn busy_power_w(&self, v: Volt) -> f64 {
        let v = v.clamp(self.v_min, self.v_max);
        self.lane_power_mw().eval(v.value()) * 1e-3 * self.lanes as f64
    }

    /// Validate invariants.
    ///
    /// # Panics
    /// Panics on an invalid configuration.
    pub fn validate(&self) {
        assert!(self.lanes > 0, "need at least one lane");
        assert!(self.v_min.value() < self.v_max.value(), "inverted range");
        assert!((0.0..=1.0).contains(&self.idle_fraction));
        assert!(self.backlog_gbits > 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_are_monotone() {
        let c = ShaConfig::default();
        assert!(c.lane_throughput_gbps().is_monotone());
        assert!(c.lane_power_mw().is_monotone());
    }

    #[test]
    fn efficiency_rolls_off_with_voltage() {
        // The Suresh headline: best perf/W near threshold.
        let c = ShaConfig::default();
        let tp = c.lane_throughput_gbps();
        let pw = c.lane_power_mw();
        let eff_low = tp.ratio_at(&pw, 0.25);
        let eff_high = tp.ratio_at(&pw, 0.95);
        assert!(
            eff_low > 2.0 * eff_high,
            "efficiency should fall steeply: {eff_low} vs {eff_high}"
        );
        // Near-threshold efficiency ≈ the published 2.8 Gbps/mW.
        assert!((2.0..=3.0).contains(&tp.ratio_at(&pw, 0.23)));
    }

    #[test]
    fn array_power_in_calibration_band() {
        // ~10 W at full voltage: the accelerator's package share.
        let c = ShaConfig::default();
        let p = c.busy_power_w(Volt::new(0.95));
        assert!((8.0..=12.0).contains(&p), "array power {p} W out of band");
        // Near-threshold the array is almost free.
        assert!(c.busy_power_w(Volt::new(0.25)) < 0.1);
    }

    #[test]
    fn throughput_scales_with_lanes() {
        let c1 = ShaConfig {
            lanes: 1,
            ..ShaConfig::default()
        };
        let c100 = ShaConfig::default();
        let v = Volt::new(0.7);
        assert!((c100.throughput_gbps(v) / c1.throughput_gbps(v) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn voltage_clamped_to_operating_range() {
        let c = ShaConfig::default();
        assert_eq!(c.throughput_gbps(Volt::new(2.0)), c.throughput_gbps(Volt::new(0.95)));
        assert_eq!(c.busy_power_w(Volt::new(0.1)), c.busy_power_w(Volt::new(0.23)));
    }

    #[test]
    fn default_validates() {
        ShaConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_invalid() {
        let c = ShaConfig {
            lanes: 0,
            ..ShaConfig::default()
        };
        c.validate();
    }
}

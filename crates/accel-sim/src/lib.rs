//! SHA accelerator simulator.
//!
//! The paper models its accelerator "in Python based on the
//! power-throughput-voltage relationships from the design by Suresh et al."
//! (a 230 mV–950 mV, 2.8 Tbps/W SHA-256 engine, ESSCIRC'18), digitized into
//! lookup tables: "the points from the relevant figures in the paper were
//! put into lookup tables and, based on the provided voltage, throughput and
//! power for a given time period were calculated" (§4.4). This crate is the
//! same model in Rust:
//!
//! * [`lut`] — a monotone, linearly interpolated lookup table.
//! * [`config`] — the digitized Suresh-shaped voltage→throughput and
//!   voltage→power curves, scaled to a multi-lane array so the accelerator
//!   is a package-relevant (~10 W) component (see DESIGN.md substitutions).
//! * [`sha`] — the accelerator itself: drains a [`ShaWorkload`] backlog at
//!   the LUT throughput, draws LUT power while busy and leakage while idle.
//!
//! [`ShaWorkload`]: hcapp_workloads::sha::ShaWorkload

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod config;
pub mod lut;
pub mod sha;

pub use config::ShaConfig;
pub use lut::LookupTable;
pub use sha::ShaAccelerator;

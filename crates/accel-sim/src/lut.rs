//! Monotone interpolated lookup tables.
//!
//! The accelerator model is driven by digitized curves (voltage →
//! throughput, voltage → power). [`LookupTable`] stores the sample points
//! and evaluates by linear interpolation, clamping outside the sampled
//! domain (the paper's model does the same: below the minimum operating
//! voltage the engine is off; above the maximum it cannot be driven
//! further).

/// A piecewise-linear function defined by sample points.
#[derive(Debug, Clone, PartialEq)]
pub struct LookupTable {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl LookupTable {
    /// Build from `(x, y)` sample points.
    ///
    /// # Panics
    /// Panics if fewer than two points are given or the x values are not
    /// strictly increasing.
    pub fn new(points: &[(f64, f64)]) -> Self {
        assert!(points.len() >= 2, "need at least two LUT points");
        let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
        for w in xs.windows(2) {
            assert!(w[0] < w[1], "LUT x values must be strictly increasing");
        }
        LookupTable { xs, ys }
    }

    /// Evaluate at `x` with linear interpolation, clamping outside the
    /// sampled domain.
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        // Binary search for the bracketing segment.
        let mut lo = 0;
        let mut hi = n - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.xs[mid] <= x {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let t = (x - self.xs[lo]) / (self.xs[hi] - self.xs[lo]);
        self.ys[lo] + t * (self.ys[hi] - self.ys[lo])
    }

    /// Domain of the sampled points.
    pub fn domain(&self) -> (f64, f64) {
        (self.xs[0], *self.xs.last().expect("non-empty"))
    }

    /// Number of sample points.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Tables always have ≥ 2 points; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True if the sampled y values are monotone non-decreasing.
    pub fn is_monotone(&self) -> bool {
        self.ys.windows(2).all(|w| w[0] <= w[1])
    }

    /// Map both tables over the same `x`: `self.eval(x) / other.eval(x)`
    /// (used to derive efficiency = throughput/power curves in tests).
    pub fn ratio_at(&self, other: &LookupTable, x: f64) -> f64 {
        self.eval(x) / other.eval(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::assert_close;

    fn lut() -> LookupTable {
        LookupTable::new(&[(0.0, 0.0), (1.0, 10.0), (2.0, 40.0)])
    }

    #[test]
    fn interpolates_linearly() {
        let l = lut();
        assert_close!(l.eval(0.5), 5.0, 1e-12);
        assert_close!(l.eval(1.5), 25.0, 1e-12);
        assert_close!(l.eval(1.0), 10.0, 1e-12);
    }

    #[test]
    fn clamps_outside_domain() {
        let l = lut();
        assert_close!(l.eval(-1.0), 0.0, 1e-12);
        assert_close!(l.eval(5.0), 40.0, 1e-12);
    }

    #[test]
    fn exact_at_sample_points() {
        let points = [(0.23, 0.1), (0.5, 7.0), (0.95, 37.0)];
        let l = LookupTable::new(&points);
        for (x, y) in points {
            assert_close!(l.eval(x), y, 1e-12);
        }
    }

    #[test]
    fn monotonicity_check() {
        assert!(lut().is_monotone());
        let dips = LookupTable::new(&[(0.0, 1.0), (1.0, 0.5)]);
        assert!(!dips.is_monotone());
    }

    #[test]
    fn domain_reported() {
        assert_eq!(lut().domain(), (0.0, 2.0));
        assert_eq!(lut().len(), 3);
    }

    #[test]
    fn ratio() {
        let a = LookupTable::new(&[(0.0, 0.0), (1.0, 10.0)]);
        let b = LookupTable::new(&[(0.0, 1.0), (1.0, 5.0)]);
        assert_close!(a.ratio_at(&b, 1.0), 2.0, 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_panics() {
        let _ = LookupTable::new(&[(1.0, 0.0), (0.5, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_point_panics() {
        let _ = LookupTable::new(&[(1.0, 0.0)]);
    }
}

//! The SHA accelerator chiplet.
//!
//! Implements §4.4's model: each control interval the accelerator hashes
//! `throughput(V) · dt` bits off its backlog and draws `power(V)`; when a
//! one-shot backlog drains it idles at a leakage floor. The evaluation runs
//! use a looping backlog so the accelerator stays busy for the whole test
//! (the paper loops short workloads, §4).

use hcapp_sim_core::time::SimDuration;
use hcapp_sim_core::units::{Volt, Watt};
use hcapp_workloads::sha::ShaWorkload;

use crate::config::ShaConfig;
use crate::lut::LookupTable;

/// The SHA accelerator simulator.
#[derive(Debug, Clone)]
pub struct ShaAccelerator {
    cfg: ShaConfig,
    lane_tp: LookupTable,
    lane_pw: LookupTable,
    workload: ShaWorkload,
    last_power: Watt,
    /// One-entry operating-point memo for the kernel path: clamped
    /// voltage bit pattern → (busy power W, throughput Gbps). A pure-
    /// function cache over the two LUTs — derived state, deliberately
    /// excluded from the [`Snapshot`](hcapp_sim_core::state::Snapshot)
    /// sections.
    memo: Option<(u64, f64, f64)>,
}

impl ShaAccelerator {
    /// Build an accelerator with a looping backlog (the evaluation setup).
    pub fn new(cfg: ShaConfig) -> Self {
        cfg.validate();
        let workload = ShaWorkload::looping(cfg.backlog_gbits);
        Self::with_workload(cfg, workload)
    }

    /// Build with an explicit workload (one-shot backlogs hit the idle
    /// state of §4.4).
    pub fn with_workload(cfg: ShaConfig, workload: ShaWorkload) -> Self {
        cfg.validate();
        ShaAccelerator {
            lane_tp: cfg.lane_throughput_gbps(),
            lane_pw: cfg.lane_power_mw(),
            cfg,
            workload,
            last_power: Watt::ZERO,
            memo: None,
        }
    }

    /// The accelerator configuration.
    pub fn config(&self) -> &ShaConfig {
        &self.cfg
    }

    /// Advance one tick at lane voltage `v` (already domain-normalized).
    /// Returns the accelerator power this tick.
    pub fn step(&mut self, v: Volt, dt: SimDuration) -> Watt {
        let v = v.clamp(self.cfg.v_min, self.cfg.v_max);
        let busy_power = self.lane_pw.eval(v.value()) * 1e-3 * self.cfg.lanes as f64;
        if self.workload.is_idle() {
            self.last_power = Watt::new(busy_power * self.cfg.idle_fraction);
            return self.last_power;
        }
        let tp_gbps = self.lane_tp.eval(v.value()) * self.cfg.lanes as f64;
        let gbits = tp_gbps * dt.as_secs_f64();
        let drained = self.workload.drain(gbits);
        // If the backlog ran out mid-tick, pro-rate the power.
        let busy_frac = if gbits > 0.0 { drained / gbits } else { 0.0 };
        self.last_power = Watt::new(
            busy_power * busy_frac + busy_power * self.cfg.idle_fraction * (1.0 - busy_frac),
        );
        self.last_power
    }

    /// Advance one tick through a borrowed [`StepFrame`] — the
    /// quantum-stepper kernel's entry point (`frame.voltages[0]` is the
    /// lane voltage; the accelerator is a single controllable unit).
    ///
    /// Bit-identical to [`ShaAccelerator::step`] (pinned by
    /// `step_into_matches_step` below and the golden-digest corpus): both
    /// LUT evaluations are pure in the clamped voltage, so the one-entry
    /// memo only skips recomputation, never changes a value.
    ///
    /// [`StepFrame`]: hcapp_sim_core::frame::StepFrame
    pub fn step_into(&mut self, frame: &mut hcapp_sim_core::frame::StepFrame<'_>) {
        let v = frame.voltages[0].clamp(self.cfg.v_min, self.cfg.v_max);
        let bits = v.value().to_bits();
        let (busy_power, tp_gbps) = match self.memo {
            Some((b, bp, tp)) if b == bits => (bp, tp),
            _ => {
                let bp = self.lane_pw.eval(v.value()) * 1e-3 * self.cfg.lanes as f64;
                let tp = self.lane_tp.eval(v.value()) * self.cfg.lanes as f64;
                self.memo = Some((bits, bp, tp));
                (bp, tp)
            }
        };
        if self.workload.is_idle() {
            self.last_power = Watt::new(busy_power * self.cfg.idle_fraction);
            *frame.power_acc += self.last_power.value();
            return;
        }
        let gbits = tp_gbps * frame.dt.as_secs_f64();
        let drained = self.workload.drain(gbits);
        let busy_frac = if gbits > 0.0 { drained / gbits } else { 0.0 };
        self.last_power = Watt::new(
            busy_power * busy_frac + busy_power * self.cfg.idle_fraction * (1.0 - busy_frac),
        );
        *frame.power_acc += self.last_power.value();
    }

    /// Power drawn last tick.
    pub fn power(&self) -> Watt {
        self.last_power
    }

    /// Total hashing work completed in gigabits — the accelerator's
    /// performance metric.
    pub fn work_done(&self) -> f64 {
        self.workload.completed_gbits()
    }

    /// True when a one-shot backlog has drained (§4.4 idle state).
    pub fn is_idle(&self) -> bool {
        self.workload.is_idle()
    }
}

impl hcapp_sim_core::state::Snapshot for ShaAccelerator {
    fn save_state(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        self.workload.save_state(w);
        w.f64("sha.last_power", self.last_power.0);
    }

    fn load_state(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        self.workload.load_state(r)?;
        self.last_power = Watt(r.f64("sha.last_power")?);
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::assert_close;

    fn accel() -> ShaAccelerator {
        ShaAccelerator::new(ShaConfig::default())
    }

    #[test]
    fn step_into_matches_step() {
        // Kernel entry point vs reference path across a voltage sweep that
        // both repeats values (memo hits) and changes them (memo misses).
        use hcapp_sim_core::frame::StepFrame;
        let mut reference = accel();
        let mut kernel = accel();
        let dt = SimDuration::from_micros(1);
        for t in 0..10_000u64 {
            let v = [Volt::new(0.4 + 0.5 * ((t / 13 % 10) as f64 / 10.0))];
            let p_ref = reference.step(v[0], dt).value();
            let mut acc = 0.0;
            kernel.step_into(&mut StepFrame::new(&v, dt, &mut acc));
            assert_eq!(p_ref.to_bits(), acc.to_bits(), "tick {t}: power diverged");
        }
        assert_eq!(
            reference.work_done().to_bits(),
            kernel.work_done().to_bits()
        );
    }

    #[test]
    fn busy_power_matches_lut() {
        let mut a = accel();
        let p = a.step(Volt::new(0.95), SimDuration::from_micros(1));
        assert_close!(p.value(), a.config().busy_power_w(Volt::new(0.95)), 1e-9);
    }

    #[test]
    fn work_rate_matches_throughput() {
        let mut a = accel();
        let v = Volt::new(0.70);
        let dt = SimDuration::from_micros(1);
        for _ in 0..1000 {
            a.step(v, dt);
        }
        // 1 ms at 1800 Gbps = 1.8 gbit.
        let expected = a.config().throughput_gbps(v) * 1e-3;
        assert_close!(a.work_done(), expected, 1e-6);
    }

    #[test]
    fn higher_voltage_hashes_faster_for_more_power() {
        let mut slow = accel();
        let mut fast = accel();
        let dt = SimDuration::from_micros(1);
        let mut e_slow = 0.0;
        let mut e_fast = 0.0;
        for _ in 0..1000 {
            e_slow += slow.step(Volt::new(0.5), dt).value();
            e_fast += fast.step(Volt::new(0.9), dt).value();
        }
        assert!(fast.work_done() > slow.work_done() * 2.0);
        assert!(e_fast > e_slow * 2.0);
    }

    #[test]
    fn one_shot_backlog_reaches_idle_state() {
        let cfg = ShaConfig::default();
        // A tiny backlog: drains in well under a millisecond at 0.9 V.
        let wl = ShaWorkload::fixed(0.5);
        let mut a = ShaAccelerator::with_workload(cfg, wl);
        let dt = SimDuration::from_micros(1);
        let busy = a.step(Volt::new(0.9), dt).value();
        for _ in 0..1000 {
            a.step(Volt::new(0.9), dt);
        }
        assert!(a.is_idle());
        let idle = a.power().value();
        assert!(idle < busy * 0.1, "idle {idle} vs busy {busy}");
        assert_close!(a.work_done(), 0.5, 1e-9);
    }

    #[test]
    fn undervoltage_clamps_to_minimum_operating_point() {
        let mut a = accel();
        let p = a.step(Volt::new(0.05), SimDuration::from_micros(1)).value();
        let p_min = a.config().busy_power_w(Volt::new(0.23));
        assert_close!(p, p_min, 1e-9);
    }

    #[test]
    fn deterministic() {
        let mut a = accel();
        let mut b = accel();
        let dt = SimDuration::from_micros(1);
        for i in 0..1000 {
            let v = Volt::new(0.5 + 0.4 * ((i % 10) as f64 / 10.0));
            assert_eq!(a.step(v, dt), b.step(v, dt));
        }
        assert_eq!(a.work_done(), b.work_done());
    }
}

//! Property-based tests for the accelerator model.
//!
//! Compiled only with `--features proptest` so the default `cargo test -q`
//! stays lean; the suite runs against the local proptest shim
//! (`crates/proptest-shim`), so no registry access is needed either way.
#![cfg(feature = "proptest")]

use hcapp_accel_sim::{LookupTable, ShaAccelerator, ShaConfig};
use hcapp_sim_core::time::SimDuration;
use hcapp_sim_core::units::Volt;
use proptest::prelude::*;

fn arb_lut() -> impl Strategy<Value = LookupTable> {
    prop::collection::vec(0.0f64..100.0, 2..10).prop_map(|ys| {
        let points: Vec<(f64, f64)> = ys
            .iter()
            .enumerate()
            .map(|(i, &y)| (i as f64 * 0.1 + 0.2, y))
            .collect();
        LookupTable::new(&points)
    })
}

proptest! {
    /// Interpolation never leaves the envelope of the sample values.
    #[test]
    fn lut_interpolation_bounded(lut in arb_lut(), x in -1.0f64..3.0) {
        let lo = (0..lut.len()).map(|_| 0.0).fold(f64::INFINITY, f64::min);
        let _ = lo;
        let (dmin, dmax) = lut.domain();
        let y = lut.eval(x);
        // Evaluate all sample points to get the envelope.
        let mut env_min = f64::INFINITY;
        let mut env_max = f64::NEG_INFINITY;
        let steps = 64;
        for i in 0..=steps {
            let xs = dmin + (dmax - dmin) * i as f64 / steps as f64;
            let v = lut.eval(xs);
            env_min = env_min.min(v);
            env_max = env_max.max(v);
        }
        prop_assert!(y >= env_min - 1e-9 && y <= env_max + 1e-9,
            "eval({x}) = {y} outside [{env_min}, {env_max}]");
    }

    /// The accelerator's power and throughput are monotone in voltage
    /// across its whole operating range.
    #[test]
    fn accel_monotone_in_voltage(v1 in 0.2f64..1.0, v2 in 0.2f64..1.0) {
        let cfg = ShaConfig::default();
        let (lo, hi) = if v1 <= v2 { (v1, v2) } else { (v2, v1) };
        prop_assert!(cfg.throughput_gbps(Volt::new(lo)) <= cfg.throughput_gbps(Volt::new(hi)) + 1e-9);
        prop_assert!(cfg.busy_power_w(Volt::new(lo)) <= cfg.busy_power_w(Volt::new(hi)) + 1e-9);
    }

    /// Work accounting is exact: stepping for any tick sequence accumulates
    /// exactly throughput × time (looping backlog never idles).
    #[test]
    fn accel_work_accounting(volts in prop::collection::vec(0.3f64..0.95, 1..100)) {
        let cfg = ShaConfig::default();
        let mut accel = ShaAccelerator::new(cfg.clone());
        let dt = SimDuration::from_micros(1);
        let mut expect = 0.0;
        for v in volts {
            let v = Volt::new(v);
            accel.step(v, dt);
            expect += cfg.throughput_gbps(v) * dt.as_secs_f64();
        }
        prop_assert!((accel.work_done() - expect).abs() < 1e-9 * expect.max(1.0),
            "work {} vs expected {}", accel.work_done(), expect);
    }
}

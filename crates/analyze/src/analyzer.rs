//! The streaming state machine: one pass, O(1) state per domain.
//!
//! Every metric below is computed online — the analyzer never buffers
//! events. The only growing state is one small summary per *retarget
//! epoch* (bounded by the run configuration, not the trace length) and one
//! counter block per *domain* (bounded by the package size). The metric
//! definitions are documented in DESIGN §6g; the short form:
//!
//! * **epoch** — the interval between consecutive `retarget` events (the
//!   first opens at the initial `t = 0` retarget, the last closes at the
//!   end of the trace).
//! * **tolerance band** — `±max(2% · |target|, 0.5 W)` around the target.
//! * **settling time** — time from epoch start to the *last* out-of-band
//!   `global_pid` sample; `NaN` when the epoch never settles (its final
//!   sample is still out of band).
//! * **reaction latency** — time from epoch start to the *first* in-band
//!   sample; `NaN` when the power never enters the band.
//! * **overshoot** — `max(p_now − target, 0)` over the epoch.
//! * **steady-state error** — mean of `p_now − target` over the epoch's
//!   final uninterrupted in-band stretch (accumulators reset on every band
//!   exit, keeping the pass O(1)).
//! * **over-budget episodes** — maximal runs of consecutive `global_pid`
//!   samples with `p_now` strictly above the current target, mirroring
//!   `metrics::over_cap` on the sensed-power stream.
//! * **VR slew saturation** — fraction of `vr_slew` quanta whose output
//!   ended more than 1 µV away from the commanded setpoint.
//! * **throttle residency** — per domain, the fraction of the trace the
//!   domain's health state machine was away from `healthy`; for the
//!   package, the fraction spent with the emergency throttle engaged.

use std::collections::BTreeMap;

use hcapp_metrics::histogram::percentiles;
use hcapp_telemetry::json::{self, JsonValue};
use hcapp_telemetry::TraceEvent;

use crate::report::{RunReport, REPORT_VERSION};

/// Half-width of the settling band: `max(REL_TOL · |target|, ABS_TOL_W)`.
const REL_TOL: f64 = 0.02;
/// Absolute floor of the settling band, in watts.
const ABS_TOL_W: f64 = 0.5;
/// A VR quantum counts as slew-saturated when its output misses the
/// setpoint by more than this (volts).
const SLEW_EPS: f64 = 1e-6;

/// Per-epoch streaming state (current epoch only).
#[derive(Debug, Clone)]
struct EpochState {
    start_ns: u64,
    target: f64,
    tol: f64,
    samples: u64,
    last_sample_ns: u64,
    /// Last out-of-band sample time; `None` while every sample so far is
    /// in band.
    last_out_ns: Option<u64>,
    /// First in-band sample time (reaction latency), if any.
    first_in_ns: Option<u64>,
    /// Peak positive excursion above the target.
    overshoot: f64,
    /// Steady-state accumulators over the current in-band stretch.
    ss_sum: f64,
    ss_count: u64,
}

impl EpochState {
    fn open(start_ns: u64, target: f64) -> EpochState {
        let tol = (REL_TOL * target.abs()).max(ABS_TOL_W);
        EpochState {
            start_ns,
            target,
            tol,
            samples: 0,
            last_sample_ns: start_ns,
            last_out_ns: None,
            first_in_ns: None,
            overshoot: 0.0,
            ss_sum: 0.0,
            ss_count: 0,
        }
    }

    fn sample(&mut self, t_ns: u64, p_now: f64) {
        self.samples += 1;
        self.last_sample_ns = t_ns;
        let err = p_now - self.target;
        if err > self.overshoot {
            self.overshoot = err;
        }
        if err.abs() > self.tol {
            self.last_out_ns = Some(t_ns);
            self.ss_sum = 0.0;
            self.ss_count = 0;
        } else {
            if self.first_in_ns.is_none() {
                self.first_in_ns = Some(t_ns);
            }
            self.ss_sum += err;
            self.ss_count += 1;
        }
    }

    fn close(&self) -> EpochSummary {
        // Unsettled epochs (no sample, or still out of band at the last
        // sample) report NaN settling — excluded from the distribution but
        // visible through `epochs_settled`.
        let settling_ns = if self.samples == 0 {
            f64::NAN
        } else {
            match self.last_out_ns {
                None => 0.0,
                Some(out) if out >= self.last_sample_ns => f64::NAN,
                Some(out) => (out - self.start_ns) as f64,
            }
        };
        let reaction_ns = match self.first_in_ns {
            None => f64::NAN,
            Some(t) => (t - self.start_ns) as f64,
        };
        let steady_err = if self.ss_count == 0 {
            f64::NAN
        } else {
            self.ss_sum / self.ss_count as f64
        };
        EpochSummary {
            settling_ns,
            reaction_ns,
            overshoot: self.overshoot,
            steady_err,
        }
    }
}

/// One closed epoch's scalars (O(#retargets) total, not O(#events)).
#[derive(Debug, Clone)]
struct EpochSummary {
    settling_ns: f64,
    reaction_ns: f64,
    overshoot: f64,
    steady_err: f64,
}

/// Per-domain streaming counters.
#[derive(Debug, Clone, Default)]
struct DomainStat {
    /// Component kind from the domain's `domain_scale` events.
    kind: String,
    /// `domain_scale` quanta observed.
    quanta: u64,
    /// Sum of finite `normalized_v` samples (for the mean).
    norm_sum: f64,
    norm_count: u64,
    /// Health machine: time the domain entered a non-`healthy` state.
    unhealthy_since: Option<u64>,
    /// Accumulated non-`healthy` residency.
    unhealthy_ns: u64,
    /// Health transitions charged to this domain.
    transitions: u64,
}

/// The one-pass analytics engine. Feed it events (live via
/// [`crate::AnalyzingTracer`], offline via [`StreamAnalyzer::consume_jsonl`])
/// and ask for a [`RunReport`] at any point — reporting is non-destructive,
/// so a live analyzer can be snapshotted mid-run.
#[derive(Debug, Clone)]
pub struct StreamAnalyzer {
    events: u64,
    retargets: u64,
    pid_steps: u64,
    local_decisions: u64,
    first_t_ns: Option<u64>,
    last_t_ns: u64,
    /// Control-quantum estimate: first positive delta between consecutive
    /// `global_pid` timestamps.
    prev_pid_t: Option<u64>,
    dt_ns: Option<u64>,
    p_now_sum: f64,
    p_now_peak: f64,
    epoch: Option<EpochState>,
    epochs: Vec<EpochSummary>,
    /// Over-budget run-length state (samples, converted via `dt_ns`).
    over_run: u64,
    over_longest: u64,
    over_samples: u64,
    over_episodes: u64,
    vr_quanta: u64,
    vr_saturated: u64,
    domains: BTreeMap<u32, DomainStat>,
    faults_injected: u64,
    health_transitions: u64,
    sensor_unhealthy_since: Option<u64>,
    sensor_unhealthy_ns: u64,
    emergency_engagements: u64,
    emergency_since: Option<u64>,
    emergency_ns: u64,
}

impl Default for StreamAnalyzer {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamAnalyzer {
    /// An analyzer with no events observed yet.
    pub fn new() -> StreamAnalyzer {
        StreamAnalyzer {
            events: 0,
            retargets: 0,
            pid_steps: 0,
            local_decisions: 0,
            first_t_ns: None,
            last_t_ns: 0,
            prev_pid_t: None,
            dt_ns: None,
            p_now_sum: 0.0,
            p_now_peak: f64::NAN,
            epoch: None,
            epochs: Vec::new(),
            over_run: 0,
            over_longest: 0,
            over_samples: 0,
            over_episodes: 0,
            vr_quanta: 0,
            vr_saturated: 0,
            domains: BTreeMap::new(),
            faults_injected: 0,
            health_transitions: 0,
            sensor_unhealthy_since: None,
            sensor_unhealthy_ns: 0,
            emergency_engagements: 0,
            emergency_since: None,
            emergency_ns: 0,
        }
    }

    /// Number of events observed so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Fold one live event into the state machine.
    pub fn observe(&mut self, e: &TraceEvent) {
        let t_ns = e.time().as_nanos();
        self.touch(t_ns);
        match e {
            TraceEvent::Retarget { target, .. } => self.on_retarget(t_ns, target.value()),
            TraceEvent::GlobalPidStep { p_now, .. } => self.on_global_pid(t_ns, p_now.value()),
            TraceEvent::VrSlew { setpoint, end, .. } => {
                self.on_vr_slew(setpoint.value(), end.value())
            }
            TraceEvent::DomainScale {
                domain,
                kind,
                normalized_v,
                ..
            } => self.on_domain_scale(*domain, kind, *normalized_v),
            TraceEvent::LocalDecision { .. } => self.local_decisions += 1,
            TraceEvent::FaultInjected { .. } => self.faults_injected += 1,
            TraceEvent::HealthTransition {
                subject,
                domain,
                to,
                ..
            } => self.on_health(t_ns, subject, *domain, to),
            TraceEvent::EmergencyThrottle { engaged, .. } => self.on_emergency(t_ns, *engaged),
        }
    }

    /// Fold one parsed JSONL event line (the offline path). The two paths
    /// share every state transition, so an exported trace replays to the
    /// same report the live tracer produced.
    pub fn observe_json(&mut self, v: &JsonValue) -> Result<(), String> {
        let kind = v
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "event missing \"kind\"".to_string())?;
        let t = v
            .get("t_ns")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| "event missing numeric \"t_ns\"".to_string())?;
        if !(t.is_finite() && t >= 0.0) {
            return Err(format!("invalid t_ns {t}"));
        }
        let t_ns = t as u64;
        let num = |k: &str| v.get(k).and_then(JsonValue::as_f64).unwrap_or(f64::NAN);
        self.touch(t_ns);
        match kind {
            "retarget" => self.on_retarget(t_ns, num("target_w")),
            "global_pid" => self.on_global_pid(t_ns, num("p_now_w")),
            "vr_slew" => self.on_vr_slew(num("setpoint_v"), num("end_v")),
            "domain_scale" => {
                let domain = num("domain");
                let comp = v.get("component").and_then(JsonValue::as_str).unwrap_or("");
                if domain.is_finite() && domain >= 0.0 {
                    self.on_domain_scale(domain as u32, comp, num("normalized_v"));
                }
            }
            "local_decision" => self.local_decisions += 1,
            "fault_injected" => self.faults_injected += 1,
            "health_transition" => {
                let subject = v.get("subject").and_then(JsonValue::as_str).unwrap_or("");
                let to = v.get("to").and_then(JsonValue::as_str).unwrap_or("");
                let d = num("domain");
                let domain = if d.is_finite() && d >= 0.0 {
                    Some(d as u32)
                } else {
                    None
                };
                self.on_health(t_ns, subject, domain, to);
            }
            "emergency_throttle" => {
                let engaged = matches!(v.get("engaged"), Some(JsonValue::Bool(true)));
                self.on_emergency(t_ns, engaged);
            }
            other => return Err(format!("unknown kind {other:?}")),
        }
        Ok(())
    }

    /// Replay a recorded `hcapp.trace` JSONL document (header line plus one
    /// event per line) through the state machine.
    pub fn consume_jsonl(&mut self, text: &str) -> Result<(), String> {
        let mut lines = text.lines().enumerate();
        let Some((_, first)) = lines.next() else {
            return Err("empty trace: missing schema header".into());
        };
        let head = json::parse(first).map_err(|e| format!("header: {e}"))?;
        match head.get("schema").and_then(JsonValue::as_str) {
            Some(s) if s == hcapp_telemetry::jsonl::SCHEMA => {}
            Some(s) => return Err(format!("unknown schema {s:?}")),
            None => return Err("header missing \"schema\"".into()),
        }
        for (lineno, line) in lines {
            if line.is_empty() {
                continue;
            }
            let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            self.observe_json(&v)
                .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        }
        Ok(())
    }

    fn touch(&mut self, t_ns: u64) {
        self.events += 1;
        if self.first_t_ns.is_none() {
            self.first_t_ns = Some(t_ns);
        }
        if t_ns > self.last_t_ns {
            self.last_t_ns = t_ns;
        }
    }

    fn on_retarget(&mut self, t_ns: u64, target: f64) {
        self.retargets += 1;
        if let Some(e) = self.epoch.take() {
            self.epochs.push(e.close());
        }
        self.epoch = Some(EpochState::open(t_ns, target));
        // A new target resets the over-budget run: an excursion against the
        // old budget is not evidence against the new one.
        self.over_run = 0;
    }

    fn on_global_pid(&mut self, t_ns: u64, p_now: f64) {
        self.pid_steps += 1;
        if let Some(prev) = self.prev_pid_t {
            if self.dt_ns.is_none() && t_ns > prev {
                self.dt_ns = Some(t_ns - prev);
            }
        }
        self.prev_pid_t = Some(t_ns);
        if p_now.is_finite() {
            self.p_now_sum += p_now;
            if !(p_now <= self.p_now_peak) {
                self.p_now_peak = p_now;
            }
        }
        if let Some(e) = self.epoch.as_mut() {
            e.sample(t_ns, p_now);
            // Over-budget episode structure against the current target
            // (metrics::over_cap semantics: strictly above, maximal runs).
            if p_now > e.target {
                if self.over_run == 0 {
                    self.over_episodes += 1;
                }
                self.over_run += 1;
                self.over_samples += 1;
                if self.over_run > self.over_longest {
                    self.over_longest = self.over_run;
                }
            } else {
                self.over_run = 0;
            }
        }
    }

    fn on_vr_slew(&mut self, setpoint: f64, end: f64) {
        self.vr_quanta += 1;
        if (end - setpoint).abs() > SLEW_EPS {
            self.vr_saturated += 1;
        }
    }

    fn on_domain_scale(&mut self, domain: u32, kind: &str, normalized_v: f64) {
        let d = self.domains.entry(domain).or_default();
        if d.kind.is_empty() && !kind.is_empty() {
            d.kind = kind.to_string();
        }
        d.quanta += 1;
        if normalized_v.is_finite() {
            d.norm_sum += normalized_v;
            d.norm_count += 1;
        }
    }

    fn on_health(&mut self, t_ns: u64, subject: &str, domain: Option<u32>, to: &str) {
        self.health_transitions += 1;
        let healthy = to == "healthy";
        match (subject, domain) {
            ("domain", Some(idx)) => {
                let d = self.domains.entry(idx).or_default();
                d.transitions += 1;
                if healthy {
                    if let Some(since) = d.unhealthy_since.take() {
                        d.unhealthy_ns += t_ns.saturating_sub(since);
                    }
                } else if d.unhealthy_since.is_none() {
                    d.unhealthy_since = Some(t_ns);
                }
            }
            _ => {
                // Package power sensing (`subject == "sensor"`, no domain).
                if healthy {
                    if let Some(since) = self.sensor_unhealthy_since.take() {
                        self.sensor_unhealthy_ns += t_ns.saturating_sub(since);
                    }
                } else if self.sensor_unhealthy_since.is_none() {
                    self.sensor_unhealthy_since = Some(t_ns);
                }
            }
        }
    }

    fn on_emergency(&mut self, t_ns: u64, engaged: bool) {
        if engaged {
            if self.emergency_since.is_none() {
                self.emergency_engagements += 1;
                self.emergency_since = Some(t_ns);
            }
        } else if let Some(since) = self.emergency_since.take() {
            self.emergency_ns += t_ns.saturating_sub(since);
        }
    }

    /// Build the report from the current state. Non-destructive: open
    /// intervals (the running epoch, live throttle holds) are closed on a
    /// clone at the last observed timestamp.
    pub fn report(&self) -> RunReport {
        let mut snap = self.clone();
        let end = snap.last_t_ns;
        if let Some(e) = snap.epoch.take() {
            snap.epochs.push(e.close());
        }
        for d in snap.domains.values_mut() {
            if let Some(since) = d.unhealthy_since.take() {
                d.unhealthy_ns += end.saturating_sub(since);
            }
        }
        if let Some(since) = snap.sensor_unhealthy_since.take() {
            snap.sensor_unhealthy_ns += end.saturating_sub(since);
        }
        if let Some(since) = snap.emergency_since.take() {
            snap.emergency_ns += end.saturating_sub(since);
        }
        snap.build_report()
    }

    fn build_report(&self) -> RunReport {
        let span_ns = match self.first_t_ns {
            Some(first) => (self.last_t_ns - first) as f64,
            None => f64::NAN,
        };
        let frac_of_span = |ns: f64| {
            if span_ns > 0.0 {
                ns / span_ns
            } else {
                f64::NAN
            }
        };
        let dt = self.dt_ns.map_or(f64::NAN, |d| d as f64);

        let finite = |xs: &[f64]| -> Vec<f64> {
            xs.iter().copied().filter(|x| x.is_finite()).collect()
        };
        let settling = finite(&self.epochs.iter().map(|e| e.settling_ns).collect::<Vec<_>>());
        let reaction = finite(&self.epochs.iter().map(|e| e.reaction_ns).collect::<Vec<_>>());
        let steady = finite(&self.epochs.iter().map(|e| e.steady_err).collect::<Vec<_>>());
        let overshoot: Vec<f64> = self.epochs.iter().map(|e| e.overshoot).collect();
        let pct = |xs: &[f64], q: f64| -> f64 {
            percentiles(xs, &[q]).into_iter().next().unwrap_or(f64::NAN)
        };
        let vmax = |xs: &[f64]| xs.iter().copied().fold(f64::NAN, f64::max);
        let mean = |xs: &[f64]| {
            if xs.is_empty() {
                f64::NAN
            } else {
                xs.iter().sum::<f64>() / xs.len() as f64
            }
        };

        let mut m: Vec<(String, f64)> = Vec::new();
        let mut put = |k: &str, v: f64| m.push((k.to_string(), v));

        put("events", self.events as f64);
        put("duration_ns", span_ns);
        put("quantum_ns", dt);
        put("retargets", self.retargets as f64);
        put("pid_steps", self.pid_steps as f64);
        put("local_decisions", self.local_decisions as f64);
        put("domains", self.domains.len() as f64);
        put(
            "mean_p_now_w",
            if self.pid_steps == 0 {
                f64::NAN
            } else {
                self.p_now_sum / self.pid_steps as f64
            },
        );
        put("peak_p_now_w", self.p_now_peak);

        put("epochs", self.epochs.len() as f64);
        put("epochs_settled", settling.len() as f64);
        put("settling_ns_p50", pct(&settling, 0.5));
        put("settling_ns_max", vmax(&settling));
        put("reaction_ns_p50", pct(&reaction, 0.5));
        put("reaction_ns_p90", pct(&reaction, 0.9));
        put("reaction_ns_max", vmax(&reaction));
        put("overshoot_w_max", vmax(&overshoot));
        put("overshoot_w_mean", mean(&overshoot));
        put("steady_err_w_mean", mean(&steady));

        put("over_budget_episodes", self.over_episodes as f64);
        put("over_budget_longest_ns", self.over_longest as f64 * dt);
        put("over_budget_total_ns", self.over_samples as f64 * dt);
        put(
            "over_budget_frac",
            if self.pid_steps == 0 {
                f64::NAN
            } else {
                self.over_samples as f64 / self.pid_steps as f64
            },
        );

        put("vr_quanta", self.vr_quanta as f64);
        put(
            "vr_slew_saturated_frac",
            if self.vr_quanta == 0 {
                f64::NAN
            } else {
                self.vr_saturated as f64 / self.vr_quanta as f64
            },
        );

        put("faults_injected", self.faults_injected as f64);
        put("health_transitions", self.health_transitions as f64);
        put("emergency_engagements", self.emergency_engagements as f64);
        put(
            "emergency_residency_frac",
            frac_of_span(self.emergency_ns as f64),
        );
        put(
            "sensor_unhealthy_frac",
            frac_of_span(self.sensor_unhealthy_ns as f64),
        );

        for (idx, d) in &self.domains {
            put(
                &format!("d{idx}_throttle_frac"),
                frac_of_span(d.unhealthy_ns as f64),
            );
            put(
                &format!("d{idx}_mean_norm_v"),
                if d.norm_count == 0 {
                    f64::NAN
                } else {
                    d.norm_sum / d.norm_count as f64
                },
            );
            put(&format!("d{idx}_quanta"), d.quanta as f64);
        }

        RunReport {
            version: REPORT_VERSION,
            metrics: m,
        }
    }
}

impl hcapp_sim_core::state::Snapshot for StreamAnalyzer {
    fn save_state(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        w.u64("an.events", self.events);
        w.u64("an.retargets", self.retargets);
        w.u64("an.pid_steps", self.pid_steps);
        w.u64("an.local_decisions", self.local_decisions);
        w.opt_u64("an.first_t_ns", self.first_t_ns);
        w.u64("an.last_t_ns", self.last_t_ns);
        w.opt_u64("an.prev_pid_t", self.prev_pid_t);
        w.opt_u64("an.dt_ns", self.dt_ns);
        w.f64("an.p_now_sum", self.p_now_sum);
        w.f64("an.p_now_peak", self.p_now_peak);
        w.bool("an.epoch_open", self.epoch.is_some());
        if let Some(e) = &self.epoch {
            w.u64("an.ep.start_ns", e.start_ns);
            w.f64("an.ep.target", e.target);
            w.f64("an.ep.tol", e.tol);
            w.u64("an.ep.samples", e.samples);
            w.u64("an.ep.last_sample_ns", e.last_sample_ns);
            w.opt_u64("an.ep.last_out_ns", e.last_out_ns);
            w.opt_u64("an.ep.first_in_ns", e.first_in_ns);
            w.f64("an.ep.overshoot", e.overshoot);
            w.f64("an.ep.ss_sum", e.ss_sum);
            w.u64("an.ep.ss_count", e.ss_count);
        }
        w.usize("an.epochs", self.epochs.len());
        for s in &self.epochs {
            w.f64_slice(
                "an.epoch",
                &[s.settling_ns, s.reaction_ns, s.overshoot, s.steady_err],
            );
        }
        w.u64("an.over_run", self.over_run);
        w.u64("an.over_longest", self.over_longest);
        w.u64("an.over_samples", self.over_samples);
        w.u64("an.over_episodes", self.over_episodes);
        w.u64("an.vr_quanta", self.vr_quanta);
        w.u64("an.vr_saturated", self.vr_saturated);
        w.usize("an.domains", self.domains.len());
        for (idx, d) in &self.domains {
            w.u32("an.dom.index", *idx);
            w.token("an.dom.kind", if d.kind.is_empty() { "-" } else { &d.kind });
            w.u64("an.dom.quanta", d.quanta);
            w.f64("an.dom.norm_sum", d.norm_sum);
            w.u64("an.dom.norm_count", d.norm_count);
            w.opt_u64("an.dom.unhealthy_since", d.unhealthy_since);
            w.u64("an.dom.unhealthy_ns", d.unhealthy_ns);
            w.u64("an.dom.transitions", d.transitions);
        }
        w.u64("an.faults_injected", self.faults_injected);
        w.u64("an.health_transitions", self.health_transitions);
        w.opt_u64("an.sensor_unhealthy_since", self.sensor_unhealthy_since);
        w.u64("an.sensor_unhealthy_ns", self.sensor_unhealthy_ns);
        w.u64("an.emergency_engagements", self.emergency_engagements);
        w.opt_u64("an.emergency_since", self.emergency_since);
        w.u64("an.emergency_ns", self.emergency_ns);
    }

    fn load_state(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        self.events = r.u64("an.events")?;
        self.retargets = r.u64("an.retargets")?;
        self.pid_steps = r.u64("an.pid_steps")?;
        self.local_decisions = r.u64("an.local_decisions")?;
        self.first_t_ns = r.opt_u64("an.first_t_ns")?;
        self.last_t_ns = r.u64("an.last_t_ns")?;
        self.prev_pid_t = r.opt_u64("an.prev_pid_t")?;
        self.dt_ns = r.opt_u64("an.dt_ns")?;
        self.p_now_sum = r.f64("an.p_now_sum")?;
        self.p_now_peak = r.f64("an.p_now_peak")?;
        self.epoch = if r.bool("an.epoch_open")? {
            Some(EpochState {
                start_ns: r.u64("an.ep.start_ns")?,
                target: r.f64("an.ep.target")?,
                tol: r.f64("an.ep.tol")?,
                samples: r.u64("an.ep.samples")?,
                last_sample_ns: r.u64("an.ep.last_sample_ns")?,
                last_out_ns: r.opt_u64("an.ep.last_out_ns")?,
                first_in_ns: r.opt_u64("an.ep.first_in_ns")?,
                overshoot: r.f64("an.ep.overshoot")?,
                ss_sum: r.f64("an.ep.ss_sum")?,
                ss_count: r.u64("an.ep.ss_count")?,
            })
        } else {
            None
        };
        let n_epochs = r.usize("an.epochs")?;
        self.epochs = Vec::with_capacity(n_epochs);
        for _ in 0..n_epochs {
            let v = r.f64_vec("an.epoch")?;
            let [settling_ns, reaction_ns, overshoot, steady_err] =
                <[f64; 4]>::try_from(v).ok()?;
            self.epochs.push(EpochSummary {
                settling_ns,
                reaction_ns,
                overshoot,
                steady_err,
            });
        }
        self.over_run = r.u64("an.over_run")?;
        self.over_longest = r.u64("an.over_longest")?;
        self.over_samples = r.u64("an.over_samples")?;
        self.over_episodes = r.u64("an.over_episodes")?;
        self.vr_quanta = r.u64("an.vr_quanta")?;
        self.vr_saturated = r.u64("an.vr_saturated")?;
        let n_domains = r.usize("an.domains")?;
        self.domains = BTreeMap::new();
        for _ in 0..n_domains {
            let idx = r.u32("an.dom.index")?;
            let kind = r.token("an.dom.kind")?;
            let stat = DomainStat {
                kind: if kind == "-" { String::new() } else { kind.to_string() },
                quanta: r.u64("an.dom.quanta")?,
                norm_sum: r.f64("an.dom.norm_sum")?,
                norm_count: r.u64("an.dom.norm_count")?,
                unhealthy_since: r.opt_u64("an.dom.unhealthy_since")?,
                unhealthy_ns: r.u64("an.dom.unhealthy_ns")?,
                transitions: r.u64("an.dom.transitions")?,
            };
            if self.domains.insert(idx, stat).is_some() {
                return None;
            }
        }
        self.faults_injected = r.u64("an.faults_injected")?;
        self.health_transitions = r.u64("an.health_transitions")?;
        self.sensor_unhealthy_since = r.opt_u64("an.sensor_unhealthy_since")?;
        self.sensor_unhealthy_ns = r.u64("an.sensor_unhealthy_ns")?;
        self.emergency_engagements = r.u64("an.emergency_engagements")?;
        self.emergency_since = r.opt_u64("an.emergency_since")?;
        self.emergency_ns = r.u64("an.emergency_ns")?;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::time::SimTime;
    use hcapp_sim_core::units::{Volt, Watt};

    fn pid(t_us: u64, p_now: f64) -> TraceEvent {
        TraceEvent::GlobalPidStep {
            t: SimTime::from_micros(t_us),
            p_now: Watt::new(p_now),
            setpoint: Watt::new(0.0),
            v_err: 0.0,
            p_term: 0.0,
            i_term: 0.0,
            d_term: 0.0,
            v_next: Volt::new(1.0),
        }
    }

    fn retarget(t_us: u64, target: f64) -> TraceEvent {
        TraceEvent::Retarget {
            t: SimTime::from_micros(t_us),
            target: Watt::new(target),
        }
    }

    /// The hand-computed golden fixture from the acceptance criteria:
    /// a 1 µs quantum, target 100 W (band ±2 W), retarget to 80 W at t=5 µs
    /// (band ±1.6 W).
    ///
    /// Epoch 1 samples (t µs, W): (0, 90) out, (1, 99) in, (2, 103) over+out,
    /// (3, 101) in, (4, 100) in.
    ///   settling = 2 µs (last out at t=2), reaction = 1 µs (first in at
    ///   t=1), overshoot = 3 W, steady-state = mean(1, 0) = 0.5 W,
    ///   over-budget: one episode of two samples (103 and 101 are both
    ///   strictly over 100, even though 101 is inside the settling band).
    /// Epoch 2 samples: (5, 95) over+out, (6, 85) over+out, (7, 79.5) in,
    /// (8, 79.9) in.
    ///   settling = 1 µs (last out at t=6, relative to start 5), reaction =
    ///   2 µs, overshoot = 15 W, steady-state = mean(−0.5, −0.1) = −0.3 W,
    ///   over-budget: one episode of two samples (95, 85 > 80).
    fn golden() -> StreamAnalyzer {
        let mut a = StreamAnalyzer::new();
        a.observe(&retarget(0, 100.0));
        for (t, p) in [(0, 90.0), (1, 99.0), (2, 103.0), (3, 101.0), (4, 100.0)] {
            a.observe(&pid(t, p));
        }
        a.observe(&retarget(5, 80.0));
        for (t, p) in [(5, 95.0), (6, 85.0), (7, 79.5), (8, 79.9)] {
            a.observe(&pid(t, p));
        }
        a
    }

    fn get(r: &RunReport, k: &str) -> f64 {
        r.get(k).unwrap_or_else(|| panic!("metric {k} missing"))
    }

    #[test]
    fn golden_fixture_matches_hand_computation() {
        let r = golden().report();
        assert_eq!(get(&r, "epochs"), 2.0);
        assert_eq!(get(&r, "epochs_settled"), 2.0);
        assert_eq!(get(&r, "quantum_ns"), 1000.0);
        // Sorted settling times: [1000, 2000] ns → p50 = 1000, max = 2000.
        assert_eq!(get(&r, "settling_ns_p50"), 1000.0);
        assert_eq!(get(&r, "settling_ns_max"), 2000.0);
        // Reactions: [1000, 2000] ns.
        assert_eq!(get(&r, "reaction_ns_p50"), 1000.0);
        assert_eq!(get(&r, "reaction_ns_max"), 2000.0);
        assert_eq!(get(&r, "overshoot_w_max"), 15.0);
        assert!((get(&r, "overshoot_w_mean") - 9.0).abs() < 1e-12);
        assert!((get(&r, "steady_err_w_mean") - 0.1).abs() < 1e-12);
        // Over-budget: episodes {103, 101} and {95, 85} → 2 episodes,
        // longest 2 samples = 2000 ns, total 4 samples = 4000 ns, 4/9 of
        // pid steps.
        assert_eq!(get(&r, "over_budget_episodes"), 2.0);
        assert_eq!(get(&r, "over_budget_longest_ns"), 2000.0);
        assert_eq!(get(&r, "over_budget_total_ns"), 4000.0);
        assert!((get(&r, "over_budget_frac") - 4.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn unsettled_epoch_reports_nan_settling() {
        let mut a = StreamAnalyzer::new();
        a.observe(&retarget(0, 100.0));
        a.observe(&pid(0, 50.0));
        a.observe(&pid(1, 60.0));
        let r = a.report();
        assert_eq!(get(&r, "epochs"), 1.0);
        assert_eq!(get(&r, "epochs_settled"), 0.0);
        assert!(get(&r, "settling_ns_p50").is_nan());
        // Never entered the band → reaction NaN too.
        assert!(get(&r, "reaction_ns_p50").is_nan());
        assert_eq!(get(&r, "overshoot_w_max"), 0.0);
    }

    #[test]
    fn report_is_nondestructive_and_resumable() {
        let mut a = golden();
        let first = a.report().to_json();
        assert_eq!(first, a.report().to_json(), "report must not consume state");
        // Streaming continues after a snapshot.
        a.observe(&pid(9, 80.0));
        assert!(a.report().to_json() != first);
    }

    #[test]
    fn offline_jsonl_replay_matches_live_observation() {
        let live = golden();
        let events: Vec<TraceEvent> = {
            // Rebuild the same stream and export it.
            let mut v = vec![retarget(0, 100.0)];
            for (t, p) in [(0, 90.0), (1, 99.0), (2, 103.0), (3, 101.0), (4, 100.0)] {
                v.push(pid(t, p));
            }
            v.push(retarget(5, 80.0));
            for (t, p) in [(5, 95.0), (6, 85.0), (7, 79.5), (8, 79.9)] {
                v.push(pid(t, p));
            }
            v
        };
        let text = hcapp_telemetry::jsonl::export(&events, &[]);
        let mut offline = StreamAnalyzer::new();
        offline.consume_jsonl(&text).unwrap();
        assert_eq!(live.report().to_json(), offline.report().to_json());
    }

    #[test]
    fn vr_slew_saturation_fraction() {
        let mut a = StreamAnalyzer::new();
        for (sp, end) in [(1.0, 1.0), (1.0, 0.9), (0.8, 0.8000000001), (0.9, 0.7)] {
            a.observe(&TraceEvent::VrSlew {
                t: SimTime::ZERO,
                setpoint: Volt::new(sp),
                start: Volt::new(end),
                end: Volt::new(end),
            });
        }
        let r = a.report();
        assert_eq!(get(&r, "vr_quanta"), 4.0);
        assert!((get(&r, "vr_slew_saturated_frac") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn health_and_emergency_residency() {
        let mut a = StreamAnalyzer::new();
        a.observe(&retarget(0, 100.0));
        a.observe(&pid(0, 100.0));
        a.observe(&TraceEvent::HealthTransition {
            t: SimTime::from_micros(2),
            subject: "domain",
            domain: Some(1),
            from: "healthy",
            to: "stale",
        });
        a.observe(&TraceEvent::EmergencyThrottle {
            t: SimTime::from_micros(3),
            engaged: true,
            estimate: Watt::new(120.0),
            target: Watt::new(100.0),
            scale: 0.7,
        });
        a.observe(&TraceEvent::HealthTransition {
            t: SimTime::from_micros(6),
            subject: "domain",
            domain: Some(1),
            from: "stale",
            to: "healthy",
        });
        a.observe(&TraceEvent::EmergencyThrottle {
            t: SimTime::from_micros(8),
            engaged: false,
            estimate: Watt::new(90.0),
            target: Watt::new(100.0),
            scale: 1.0,
        });
        a.observe(&pid(10, 100.0));
        let r = a.report();
        // Span 0..10 µs; domain 1 unhealthy 2..6 (40%), emergency 3..8 (50%).
        assert!((get(&r, "d1_throttle_frac") - 0.4).abs() < 1e-12);
        assert!((get(&r, "emergency_residency_frac") - 0.5).abs() < 1e-12);
        assert_eq!(get(&r, "emergency_engagements"), 1.0);
        assert_eq!(get(&r, "health_transitions"), 2.0);
    }

    #[test]
    fn open_intervals_close_at_trace_end() {
        let mut a = StreamAnalyzer::new();
        a.observe(&pid(0, 10.0));
        a.observe(&TraceEvent::HealthTransition {
            t: SimTime::from_micros(4),
            subject: "sensor",
            domain: None,
            from: "healthy",
            to: "faulted",
        });
        a.observe(&pid(10, 10.0));
        let r = a.report();
        assert!((get(&r, "sensor_unhealthy_frac") - 0.6).abs() < 1e-12);
    }

    #[test]
    fn rejects_malformed_jsonl() {
        let mut a = StreamAnalyzer::new();
        assert!(a.consume_jsonl("").is_err());
        assert!(a.consume_jsonl("{\"schema\":\"other\"}\n").is_err());
        let head = hcapp_telemetry::jsonl::header(&[]);
        assert!(a
            .consume_jsonl(&format!("{head}\n{{\"kind\":\"retarget\"}}\n"))
            .is_err());
        assert!(a
            .consume_jsonl(&format!("{head}\n{{\"t_ns\":0,\"kind\":\"mystery\"}}\n"))
            .is_err());
    }
}

//! Declarative bounds checking for JSON metric documents — the engine
//! behind `hcapp analyze --assert`.
//!
//! A checks file is a versioned `hcapp.checks` document listing per-metric
//! `min`/`max` bounds. [`run_checks`] evaluates them against *any* JSON
//! document: it first looks for the metric inside a `"metrics"` object
//! (the [`crate::RunReport`] shape) and falls back to a top-level member,
//! so the same gate runs against `hcapp.report` files and flat documents
//! like the `hcapp.bench-parallel` output alike.
//!
//! ```json
//! {"schema": "hcapp.checks", "version": 1, "checks": [
//!   {"metric": "over_budget_frac", "max": 0.25},
//!   {"metric": "batched_speedup", "min": 0.9}
//! ]}
//! ```
//!
//! Missing metrics and `NaN`/`null` values fail any bound — a metric that
//! silently vanishes from a report should trip the gate, not pass it.

use hcapp_telemetry::json::{self, JsonValue};

/// Schema tag expected at the top of a checks file.
pub const CHECKS_SCHEMA: &str = "hcapp.checks";
/// Current checks schema version.
pub const CHECKS_VERSION: u64 = 1;

/// One declarative bound on a metric.
#[derive(Debug, Clone)]
pub struct Check {
    /// Metric name to look up in the target document.
    pub metric: String,
    /// Inclusive lower bound, if any.
    pub min: Option<f64>,
    /// Inclusive upper bound, if any.
    pub max: Option<f64>,
}

/// Outcome of evaluating one [`Check`].
#[derive(Debug, Clone)]
pub struct CheckResult {
    /// The check that was evaluated.
    pub check: Check,
    /// The value found in the document, if present and numeric.
    pub value: Option<f64>,
    /// Whether the value satisfied every bound.
    pub passed: bool,
    /// Human-readable verdict ("ok", or why it failed).
    pub detail: String,
}

/// Parse a `hcapp.checks` document.
pub fn parse_checks(text: &str) -> Result<Vec<Check>, String> {
    let v = json::parse(text.trim()).map_err(|e| format!("checks: {e}"))?;
    match v.get("schema").and_then(JsonValue::as_str) {
        Some(s) if s == CHECKS_SCHEMA => {}
        Some(s) => return Err(format!("unknown schema {s:?} (expected {CHECKS_SCHEMA:?})")),
        None => return Err("checks file missing \"schema\"".into()),
    }
    match v.get("version").and_then(JsonValue::as_f64) {
        Some(n) if n == CHECKS_VERSION as f64 => {}
        Some(n) => return Err(format!("unsupported checks version {n}")),
        None => return Err("checks file missing \"version\"".into()),
    }
    let Some(JsonValue::Arr(items)) = v.get("checks") else {
        return Err("checks file missing \"checks\" array".into());
    };
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let Some(metric) = item.get("metric").and_then(JsonValue::as_str) else {
            return Err(format!("check #{i}: missing \"metric\""));
        };
        let min = item.get("min").and_then(JsonValue::as_f64);
        let max = item.get("max").and_then(JsonValue::as_f64);
        if min.is_none() && max.is_none() {
            return Err(format!("check #{i} ({metric}): needs \"min\" and/or \"max\""));
        }
        out.push(Check {
            metric: metric.to_string(),
            min,
            max,
        });
    }
    Ok(out)
}

/// Look a metric up in `doc`: inside a `"metrics"` object first (report
/// shape), then as a top-level member (flat documents like bench output).
fn lookup(doc: &JsonValue, name: &str) -> Option<f64> {
    doc.get("metrics")
        .and_then(|m| m.get(name))
        .or_else(|| doc.get(name))
        .and_then(JsonValue::as_f64)
}

/// Evaluate every check against a parsed JSON document.
pub fn run_checks(doc: &JsonValue, checks: &[Check]) -> Vec<CheckResult> {
    checks
        .iter()
        .map(|c| {
            let value = lookup(doc, &c.metric);
            let (passed, detail) = match value {
                None => (false, "metric missing or non-numeric".to_string()),
                Some(v) if v.is_nan() => (false, "value is NaN".to_string()),
                Some(v) => {
                    if c.min.is_some_and(|lo| v < lo) {
                        (false, format!("{v} < min {}", c.min.unwrap_or(f64::NAN)))
                    } else if c.max.is_some_and(|hi| v > hi) {
                        (false, format!("{v} > max {}", c.max.unwrap_or(f64::NAN)))
                    } else {
                        (true, "ok".to_string())
                    }
                }
            };
            CheckResult {
                check: c.clone(),
                value,
                passed,
                detail,
            }
        })
        .collect()
}

/// Render check results as a one-line-per-check summary.
pub fn render_results(results: &[CheckResult]) -> String {
    let mut out = String::new();
    for r in results {
        let bounds = match (r.check.min, r.check.max) {
            (Some(lo), Some(hi)) => format!("[{lo}, {hi}]"),
            (Some(lo), None) => format!(">= {lo}"),
            (None, Some(hi)) => format!("<= {hi}"),
            (None, None) => "(unbounded)".to_string(),
        };
        out.push_str(&format!(
            "{} {}: {} {} — {}\n",
            if r.passed { "PASS" } else { "FAIL" },
            r.check.metric,
            r.value.map_or_else(|| "missing".to_string(), |v| format!("{v}")),
            bounds,
            r.detail,
        ));
    }
    let failed = results.iter().filter(|r| !r.passed).count();
    out.push_str(&format!("{failed} failed / {} checks\n", results.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHECKS: &str = r#"{"schema":"hcapp.checks","version":1,"checks":[
        {"metric":"over_budget_frac","max":0.25},
        {"metric":"epochs_settled","min":1},
        {"metric":"mean_p_now_w","min":10,"max":200}
    ]}"#;

    #[test]
    fn parses_and_passes_against_report_shape() {
        let checks = parse_checks(CHECKS).unwrap();
        assert_eq!(checks.len(), 3);
        let doc = json::parse(
            r#"{"schema":"hcapp.report","version":1,"metrics":{"over_budget_frac":0.1,"epochs_settled":2,"mean_p_now_w":84.5}}"#,
        )
        .unwrap();
        let results = run_checks(&doc, &checks);
        assert!(results.iter().all(|r| r.passed), "{}", render_results(&results));
    }

    #[test]
    fn falls_back_to_top_level_members() {
        let checks = parse_checks(
            r#"{"schema":"hcapp.checks","version":1,"checks":[{"metric":"batched_speedup","min":0.9}]}"#,
        )
        .unwrap();
        // Flat document, the hcapp.bench-parallel shape.
        let doc = json::parse(r#"{"schema":"hcapp.bench-parallel","batched_speedup":1.4}"#).unwrap();
        assert!(run_checks(&doc, &checks).iter().all(|r| r.passed));
    }

    #[test]
    fn bound_violations_missing_metrics_and_nan_fail() {
        let checks = parse_checks(CHECKS).unwrap();
        let doc = json::parse(
            r#"{"schema":"hcapp.report","version":1,"metrics":{"over_budget_frac":0.4,"mean_p_now_w":null}}"#,
        )
        .unwrap();
        let results = run_checks(&doc, &checks);
        let by = |n: &str| results.iter().find(|r| r.check.metric == n).unwrap();
        assert!(!by("over_budget_frac").passed, "0.4 > max 0.25");
        assert!(!by("epochs_settled").passed, "missing metric fails");
        assert!(!by("mean_p_now_w").passed, "null parses to missing/NaN and fails");
        let rendered = render_results(&results);
        assert!(rendered.contains("3 failed / 3"), "{rendered}");
    }

    #[test]
    fn malformed_checks_files_are_rejected() {
        assert!(parse_checks("").is_err());
        assert!(parse_checks(r#"{"schema":"nope","version":1,"checks":[]}"#).is_err());
        assert!(parse_checks(r#"{"schema":"hcapp.checks","version":2,"checks":[]}"#).is_err());
        assert!(parse_checks(r#"{"schema":"hcapp.checks","version":1}"#).is_err());
        assert!(
            parse_checks(r#"{"schema":"hcapp.checks","version":1,"checks":[{"metric":"x"}]}"#)
                .is_err(),
            "a check with no bounds is a mistake"
        );
        assert!(
            parse_checks(r#"{"schema":"hcapp.checks","version":1,"checks":[{"min":1}]}"#).is_err()
        );
    }
}

//! `hcapp-analyze` — streaming control-loop analytics over `hcapp.trace`
//! event streams.
//!
//! HCAPP's claims are control-theoretic: bounded reaction after a retarget,
//! small steady-state error against `P_SPEC`, over-budget excursions that
//! recover within the violation window. The telemetry layer records the
//! evidence (PR 2's JSONL traces); this crate *interprets* it. A
//! [`StreamAnalyzer`] folds every event into O(1) state per domain — no
//! event buffering — and produces a versioned [`RunReport`] of quantified
//! health numbers: per-retarget-epoch settling time, overshoot and
//! steady-state error, over-budget episode structure (the trace-level twin
//! of `metrics::over_cap`), VR slew saturation, per-domain throttle
//! residency, retarget reaction latency, and fault/degradation counters.
//!
//! Two ingestion paths share the same state machine, so they agree by
//! construction:
//!
//! * **live** — [`AnalyzingTracer`] implements `hcapp_telemetry::Tracer`,
//!   aggregating as the run loop emits events (optionally forwarding each
//!   event to a wrapped inner tracer such as a `RingTracer`);
//! * **offline** — [`StreamAnalyzer::consume_jsonl`] replays a recorded
//!   `hcapp.trace` file.
//!
//! Because traced event streams are byte-identical across the serial,
//! pooled, batched and permuted executors (pinned since PR 2), the report
//! is too — `RunReport::to_json` is deterministic, and the determinism
//! suite in `tests/` pins serial == pooled == permuted report bytes.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod analyzer;
pub mod checks;
pub mod report;
pub mod tracer;

pub use analyzer::StreamAnalyzer;
pub use checks::{parse_checks, run_checks, Check, CheckResult};
pub use report::{RunReport, DiffRow, REPORT_SCHEMA, REPORT_VERSION};
pub use tracer::AnalyzingTracer;

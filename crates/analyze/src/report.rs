//! The versioned `hcapp.report` document: an ordered, flat map of metric
//! name → value, with deterministic JSON/markdown rendering, a parser, and
//! a per-metric diff for regression gating.
//!
//! The metric map is *flat by design*: `hcapp analyze --diff` and
//! `--assert` iterate it generically, so every metric the analyzer learns
//! to compute is automatically diffable and assertable with no new code.
//! Order is preserved (insertion order from the analyzer), values are
//! `f64`, and non-finite values serialize as JSON `null` (the same
//! canonicalization the trace exporter uses), parsing back to `NaN`.

use hcapp_telemetry::json::{self, JsonValue, Obj};

/// Schema tag carried by every report document.
pub const REPORT_SCHEMA: &str = "hcapp.report";
/// Current report schema version.
pub const REPORT_VERSION: u64 = 1;

/// A run's quantified health numbers. See DESIGN §6g for every formula.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Schema version this report was produced under.
    pub version: u64,
    /// Ordered `(metric, value)` pairs; `NaN` means "not applicable".
    pub metrics: Vec<(String, f64)>,
}

impl RunReport {
    /// Look up one metric by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Serialize as a single-line JSON document. Deterministic: metric
    /// order is preserved and floats print via the shortest round-trip
    /// form, so identical state yields identical bytes (the determinism
    /// suite compares reports this way).
    pub fn to_json(&self) -> String {
        let mut body = String::from("{");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            json::push_str(&mut body, k);
            body.push(':');
            json::push_f64(&mut body, *v);
        }
        body.push('}');
        let mut out = Obj::new()
            .str("schema", REPORT_SCHEMA)
            .int("version", self.version)
            .raw("metrics", &body)
            .finish();
        out.push('\n');
        out
    }

    /// Render as a markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("# hcapp run report (v{})\n\n| metric | value |\n|---|---|\n", self.version);
        for (k, v) in &self.metrics {
            out.push_str(&format!("| {k} | {} |\n", fmt_value(*v)));
        }
        out
    }

    /// Parse a document produced by [`RunReport::to_json`].
    pub fn from_json(text: &str) -> Result<RunReport, String> {
        let v = json::parse(text.trim()).map_err(|e| format!("report: {e}"))?;
        match v.get("schema").and_then(JsonValue::as_str) {
            Some(s) if s == REPORT_SCHEMA => {}
            Some(s) => return Err(format!("unknown schema {s:?} (expected {REPORT_SCHEMA:?})")),
            None => return Err("report missing \"schema\"".into()),
        }
        let version = match v.get("version").and_then(JsonValue::as_f64) {
            Some(n) if n == REPORT_VERSION as f64 => REPORT_VERSION,
            Some(n) => return Err(format!("unsupported report version {n}")),
            None => return Err("report missing \"version\"".into()),
        };
        let Some(JsonValue::Obj(members)) = v.get("metrics") else {
            return Err("report missing \"metrics\" object".into());
        };
        let mut metrics = Vec::with_capacity(members.len());
        for (k, mv) in members {
            let value = match mv {
                JsonValue::Num(n) => *n,
                JsonValue::Null => f64::NAN,
                other => return Err(format!("metric {k:?}: non-numeric value {other:?}")),
            };
            metrics.push((k.clone(), value));
        }
        Ok(RunReport { version, metrics })
    }

    /// Per-metric comparison against `old`. A metric **regresses** when its
    /// relative change `|new − old| / max(|old|, |new|, 1)` exceeds
    /// `tolerance`, when it is `NaN` on only one side, or when it exists in
    /// only one report. The `1` floor makes near-zero metrics compare by
    /// absolute difference instead of exploding the ratio.
    pub fn diff(old: &RunReport, new: &RunReport, tolerance: f64) -> Vec<DiffRow> {
        let mut rows: Vec<DiffRow> = Vec::new();
        for (name, old_v) in &old.metrics {
            rows.push(DiffRow::compare(name, Some(*old_v), new.get(name), tolerance));
        }
        for (name, new_v) in &new.metrics {
            if old.get(name).is_none() {
                rows.push(DiffRow::compare(name, None, Some(*new_v), tolerance));
            }
        }
        rows
    }
}

/// One metric's diff outcome.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// Metric name.
    pub name: String,
    /// Value in the old report, if present.
    pub old: Option<f64>,
    /// Value in the new report, if present.
    pub new: Option<f64>,
    /// Relative change (see [`RunReport::diff`]); `0.0` when both NaN.
    pub rel_change: f64,
    /// Whether this row breaches the tolerance.
    pub regressed: bool,
}

impl DiffRow {
    fn compare(name: &str, old: Option<f64>, new: Option<f64>, tolerance: f64) -> DiffRow {
        let (rel, regressed) = match (old, new) {
            (Some(a), Some(b)) => {
                let a_nan = a.is_nan();
                let b_nan = b.is_nan();
                if a_nan && b_nan {
                    (0.0, false)
                } else if a_nan || b_nan {
                    (f64::NAN, true)
                } else {
                    let denom = a.abs().max(b.abs()).max(1.0);
                    let rel = (b - a).abs() / denom;
                    (rel, rel > tolerance)
                }
            }
            _ => (f64::NAN, true),
        };
        DiffRow {
            name: name.to_string(),
            old,
            new,
            rel_change: rel,
            regressed,
        }
    }
}

/// Render a diff as a markdown table; regressed rows are flagged.
pub fn render_diff(rows: &[DiffRow], tolerance: f64) -> String {
    let mut out = format!(
        "# report diff (tolerance {tolerance})\n\n| metric | old | new | rel change | |\n|---|---|---|---|---|\n"
    );
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            r.name,
            r.old.map_or_else(|| "—".to_string(), fmt_value),
            r.new.map_or_else(|| "—".to_string(), fmt_value),
            fmt_value(r.rel_change),
            if r.regressed { "REGRESSED" } else { "ok" },
        ));
    }
    let n = rows.iter().filter(|r| r.regressed).count();
    out.push_str(&format!(
        "\n{n} regressed / {} metrics\n",
        rows.len()
    ));
    out
}

/// Human-friendly number formatting for tables: integers print bare,
/// non-finite values print as `NaN`, everything else with full precision.
pub fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(pairs: &[(&str, f64)]) -> RunReport {
        RunReport {
            version: REPORT_VERSION,
            metrics: pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }

    #[test]
    fn json_round_trips_including_nan() {
        let r = report(&[("events", 12.0), ("settling_ns_p50", f64::NAN), ("x", 0.125)]);
        let text = r.to_json();
        assert!(text.contains("\"settling_ns_p50\":null"), "{text}");
        let back = RunReport::from_json(&text).unwrap();
        assert_eq!(back.version, REPORT_VERSION);
        assert_eq!(back.get("events"), Some(12.0));
        assert_eq!(back.get("x"), Some(0.125));
        assert!(back.get("settling_ns_p50").is_some_and(f64::is_nan));
        // Serialization is deterministic.
        assert_eq!(text, back.to_json());
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        assert!(RunReport::from_json("").is_err());
        assert!(RunReport::from_json("{\"schema\":\"other\",\"version\":1}").is_err());
        assert!(RunReport::from_json("{\"schema\":\"hcapp.report\",\"version\":9,\"metrics\":{}}").is_err());
        assert!(RunReport::from_json("{\"schema\":\"hcapp.report\",\"version\":1}").is_err());
        assert!(RunReport::from_json(
            "{\"schema\":\"hcapp.report\",\"version\":1,\"metrics\":{\"a\":\"str\"}}"
        )
        .is_err());
    }

    #[test]
    fn diff_flags_regressions_beyond_tolerance() {
        let old = report(&[("a", 100.0), ("b", 2.0), ("c", f64::NAN)]);
        let new = report(&[("a", 104.0), ("b", 3.0), ("c", f64::NAN)]);
        let rows = RunReport::diff(&old, &new, 0.1);
        let by = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
        assert!(!by("a").regressed, "4% < 10%");
        assert!(by("b").regressed, "|3-2|/3 = 33% > 10%");
        assert!(!by("c").regressed, "NaN on both sides is agreement");
    }

    #[test]
    fn diff_flags_nan_mismatch_and_missing_metrics() {
        let old = report(&[("a", 1.0), ("only_old", 5.0)]);
        let new = report(&[("a", f64::NAN), ("only_new", 7.0)]);
        let rows = RunReport::diff(&old, &new, 0.5);
        let by = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
        assert!(by("a").regressed, "value became NaN");
        assert!(by("only_old").regressed);
        assert!(by("only_new").regressed);
        let rendered = render_diff(&rows, 0.5);
        assert!(rendered.contains("REGRESSED"), "{rendered}");
        assert!(rendered.contains("3 regressed / 3"), "{rendered}");
    }

    #[test]
    fn near_zero_metrics_compare_absolutely() {
        // 0.0 vs 0.01: ratio to old would be infinite, but the `1` floor
        // keeps it at 1%, under a 5% tolerance.
        let rows = RunReport::diff(&report(&[("z", 0.0)]), &report(&[("z", 0.01)]), 0.05);
        assert!(!rows.iter().next().unwrap().regressed);
    }

    #[test]
    fn markdown_renders_every_metric() {
        let md = report(&[("events", 12.0), ("nanish", f64::NAN)]).to_markdown();
        assert!(md.contains("| events | 12 |"), "{md}");
        assert!(md.contains("| nanish | NaN |"), "{md}");
    }
}

//! [`AnalyzingTracer`]: a `Tracer` adapter that feeds every recorded event
//! through a [`StreamAnalyzer`] and optionally forwards it to a wrapped
//! inner tracer.
//!
//! This is the *live* ingestion path: attach one to `RunConfig` (directly
//! or via `hcapp::analyze::run_analyzed`) and the report is ready the
//! moment the run returns — no trace file round-trip, O(1) memory even for
//! runs whose full trace would not fit in a ring buffer. Wrapping an inner
//! tracer keeps trace export working at the same time, and because the
//! adapter observes exactly the events it forwards, the live report always
//! matches an offline replay of the exported trace.

use crate::analyzer::StreamAnalyzer;
use crate::report::RunReport;
use hcapp_telemetry::{SharedTracer, TraceEvent, Tracer};

/// A tracer that aggregates run analytics as events are recorded.
#[derive(Debug, Default)]
pub struct AnalyzingTracer {
    analyzer: StreamAnalyzer,
    inner: Option<SharedTracer>,
}

impl AnalyzingTracer {
    /// Analyzer-only tracer: events are folded into the report and dropped.
    pub fn new() -> Self {
        Self::default()
    }

    /// Analyze *and* forward every event to `inner` (e.g. a `RingTracer`
    /// that a later `jsonl::export` will serialize).
    pub fn wrapping(inner: SharedTracer) -> Self {
        AnalyzingTracer {
            analyzer: StreamAnalyzer::new(),
            inner: Some(inner),
        }
    }

    /// Snapshot the report for everything observed so far. Non-destructive:
    /// recording may continue afterwards.
    pub fn report(&self) -> RunReport {
        self.analyzer.report()
    }

    /// Events observed so far.
    pub fn events(&self) -> u64 {
        self.analyzer.events()
    }

    /// Borrow the underlying analyzer (for tests and custom rendering).
    pub fn analyzer(&self) -> &StreamAnalyzer {
        &self.analyzer
    }
}

impl Tracer for AnalyzingTracer {
    fn record(&mut self, event: TraceEvent) {
        self.analyzer.observe(&event);
        if let Some(inner) = &self.inner {
            // A poisoned inner tracer means a recorder already panicked;
            // silently dropping events would corrupt the trace instead.
            inner
                .lock()
                // simlint: allow(L6): same poisoned-mutex invariant as the coordinator's baselined tracer locks — fail loudly, never drop events.
                .expect("invariant: tracer mutex is never poisoned")
                .record(event);
        }
    }

    fn record_all(&mut self, events: &mut Vec<TraceEvent>) {
        for e in events.iter() {
            self.analyzer.observe(e);
        }
        match &self.inner {
            Some(inner) => inner
                .lock()
                // simlint: allow(L6): same poisoned-mutex invariant as in record() above — fail loudly rather than drop a batch.
                .expect("invariant: tracer mutex is never poisoned")
                .record_all(events),
            // Per the Tracer contract the batch is consumed either way.
            None => events.clear(),
        }
    }
}

impl hcapp_sim_core::state::Snapshot for AnalyzingTracer {
    fn save_state(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        self.analyzer.save_state(w);
    }

    fn load_state(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        self.analyzer.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::time::SimTime;
    use hcapp_sim_core::units::{Volt, Watt};
    use hcapp_telemetry::{shared, RingTracer};

    fn retarget(t_ns: u64, w: f64) -> TraceEvent {
        TraceEvent::Retarget {
            t: SimTime::from_nanos(t_ns),
            target: Watt::new(w),
        }
    }

    fn pid(t_ns: u64, p_now: f64) -> TraceEvent {
        TraceEvent::GlobalPidStep {
            t: SimTime::from_nanos(t_ns),
            p_now: Watt::new(p_now),
            setpoint: Watt::new(100.0),
            v_err: 0.0,
            p_term: 0.0,
            i_term: 0.0,
            d_term: 0.0,
            v_next: Volt::new(1.0),
        }
    }

    #[test]
    fn analyzes_without_an_inner_tracer() {
        let mut t = AnalyzingTracer::new();
        t.record(retarget(0, 100.0));
        t.record(pid(0, 99.0));
        let mut batch = vec![pid(1_000, 100.0), pid(2_000, 101.0)];
        t.record_all(&mut batch);
        assert!(batch.is_empty(), "record_all must consume the batch");
        assert_eq!(t.events(), 4);
        let report = t.report();
        assert_eq!(report.get("retargets"), Some(1.0));
        assert_eq!(report.get("pid_steps"), Some(3.0));
    }

    #[test]
    fn forwards_every_event_to_the_wrapped_tracer() {
        let ring = shared(RingTracer::new(16));
        let mut t = AnalyzingTracer::wrapping(ring.clone());
        t.record(retarget(0, 100.0));
        let mut batch = vec![pid(0, 99.0), pid(1_000, 100.0)];
        t.record_all(&mut batch);
        assert!(batch.is_empty());
        assert_eq!(t.events(), 3);
        // Downcast-free check: RingTracer is the only Tracer behind the
        // mutex, so its Debug output carries the stored events.
        let inner_dbg = format!("{:?}", ring.lock().expect("lock for inspection"));
        assert!(inner_dbg.contains("Retarget"), "{inner_dbg}");
        assert!(inner_dbg.contains("GlobalPid"), "{inner_dbg}");
    }
}

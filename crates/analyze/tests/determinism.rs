//! Satellite 3: the `RunReport` is executor-independent.
//!
//! PR 2 pinned the *trace* byte-identical across the serial, pooled,
//! batched and permuted executors; this suite pins the *report* the same
//! way. Every run below attaches a fresh [`AnalyzingTracer`] and compares
//! `RunReport::to_json()` bytes — any divergence (a reordered metric, a
//! float that differs in the last ulp, a miscounted event) fails loudly.

use std::sync::{Arc, Mutex};

use hcapp::{ControlScheme, RunConfig, Simulation, SystemConfig};
use hcapp_analyze::AnalyzingTracer;
use hcapp_sim_core::time::{SimDuration, SimTime};
use hcapp_sim_core::units::Watt;
use hcapp_telemetry::SharedTracer;
use hcapp_workloads::combo_suite;

/// Hi-Hi paper system with a mid-run retarget: exercises both epochs of
/// analytics plus the full retarget/PID/VR/domain event mix.
fn config() -> (SystemConfig, RunConfig) {
    let sys = SystemConfig::paper_system(combo_suite()[3], 7);
    let run = RunConfig::new(
        SimDuration::from_millis(2),
        ControlScheme::Hcapp,
        Watt::new(84.0),
    )
    .with_retarget(SimTime::from_millis(1), Watt::new(67.0));
    (sys, run)
}

enum Exec {
    Serial,
    Pooled(usize),
    Batched(usize),
    Permuted(usize, u64),
}

fn report_json(exec: &Exec) -> String {
    let (sys, mut run) = config();
    let tracer = Arc::new(Mutex::new(AnalyzingTracer::new()));
    run.tracer = Some(tracer.clone() as SharedTracer);
    let run = match exec {
        Exec::Batched(n) => run.with_batch_quanta(*n),
        _ => run,
    };
    let sim = Simulation::new(sys, run);
    match exec {
        Exec::Serial | Exec::Batched(_) => {
            sim.run();
        }
        Exec::Pooled(w) => {
            sim.run_parallel(*w);
        }
        Exec::Permuted(w, seed) => {
            sim.run_parallel_permuted(*w, *seed);
        }
    }
    let json = tracer.lock().expect("analyzer lock").report().to_json();
    json
}

#[test]
fn report_is_byte_identical_across_executors() {
    let baseline = report_json(&Exec::Serial);
    assert!(
        baseline.contains("\"schema\":\"hcapp.report\""),
        "{baseline}"
    );
    let variants: Vec<(&str, Exec)> = vec![
        ("pooled-2", Exec::Pooled(2)),
        ("pooled-4", Exec::Pooled(4)),
        ("batched-32", Exec::Batched(32)),
        ("permuted-seed-1", Exec::Permuted(2, 1)),
        ("permuted-seed-7", Exec::Permuted(2, 7)),
        ("permuted-seed-23", Exec::Permuted(4, 23)),
        ("permuted-seed-99", Exec::Permuted(4, 99)),
    ];
    for (name, exec) in &variants {
        let json = report_json(exec);
        assert_eq!(json, baseline, "{name} report diverged from serial");
    }
}

#[test]
fn live_report_matches_offline_replay_of_the_exported_trace() {
    use hcapp_analyze::StreamAnalyzer;
    use hcapp_telemetry::{jsonl, RingTracer};

    let (sys, mut run) = config();
    let ring = Arc::new(Mutex::new(RingTracer::new(1 << 20)));
    let live = Arc::new(Mutex::new(AnalyzingTracer::wrapping(
        ring.clone() as SharedTracer
    )));
    run.tracer = Some(live.clone() as SharedTracer);
    Simulation::new(sys, run).run();

    let live_json = live.lock().expect("analyzer lock").report().to_json();
    let trace = {
        let guard = ring.lock().expect("ring lock");
        assert_eq!(guard.dropped(), 0, "ring must hold the full trace");
        jsonl::export(guard.events(), &[])
    };
    let mut offline = StreamAnalyzer::new();
    offline.consume_jsonl(&trace).expect("replay exported trace");
    assert_eq!(offline.report().to_json(), live_json);
}

//! Per-tick cost of the chiplet simulators and hot kernel structures.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use hcapp_accel_sim::{ShaAccelerator, ShaConfig};
use hcapp_cpu_sim::{CpuChiplet, CpuConfig};
use hcapp_gpu_sim::{GpuChiplet, GpuConfig};
use hcapp_sim_core::time::SimDuration;
use hcapp_sim_core::units::Volt;
use hcapp_pdn::{RippleInjector, RippleSpec};
use hcapp_power_model::{MemoryStack, ThermalModel};
use hcapp_sim_core::time::SimTime;
use hcapp_sim_core::units::Watt;
use hcapp_sim_core::window::WindowedMaxTracker;
use hcapp_workloads::benchmarks::Benchmark;
use hcapp_workloads::cursor::PhaseCursor;

fn bench_cpu_chiplet(c: &mut Criterion) {
    let mut chiplet = CpuChiplet::new(CpuConfig::default(), Benchmark::Ferret.spec(), 7, 0);
    let volts = vec![Volt::new(0.95); chiplet.units()];
    let dt = SimDuration::from_nanos(100);
    let mut g = c.benchmark_group("chiplet_step");
    g.throughput(Throughput::Elements(8));
    g.bench_function("cpu_8core_tick", |b| {
        b.iter(|| black_box(chiplet.step(black_box(&volts), dt)))
    });
    g.finish();
}

fn bench_gpu_chiplet(c: &mut Criterion) {
    let mut chiplet = GpuChiplet::new(GpuConfig::default(), Benchmark::Bfs.spec(), 7, 0);
    let volts = vec![Volt::new(0.72); chiplet.units()];
    let dt = SimDuration::from_nanos(100);
    let mut g = c.benchmark_group("chiplet_step");
    g.throughput(Throughput::Elements(15));
    g.bench_function("gpu_15sm_tick", |b| {
        b.iter(|| black_box(chiplet.step(black_box(&volts), dt)))
    });
    g.finish();
}

fn bench_accel(c: &mut Criterion) {
    let mut accel = ShaAccelerator::new(ShaConfig::default());
    let dt = SimDuration::from_nanos(100);
    c.bench_function("sha_accelerator_tick", |b| {
        b.iter(|| black_box(accel.step(black_box(Volt::new(0.7)), dt)))
    });
}

fn bench_cursor(c: &mut Criterion) {
    let mut cursor = PhaseCursor::new(Benchmark::Bfs.spec(), 7, 0);
    c.bench_function("phase_cursor_advance", |b| {
        b.iter(|| cursor.advance(black_box(100.0)))
    });
}

fn bench_window(c: &mut Criterion) {
    let mut tracker = WindowedMaxTracker::new(200);
    let mut x = 50.0f64;
    c.bench_function("windowed_max_push", |b| {
        b.iter(|| {
            x = if x > 90.0 { 50.0 } else { x + 0.37 };
            tracker.push(black_box(x))
        })
    });
}

fn bench_memory(c: &mut Criterion) {
    let mut m = MemoryStack::hbm_default();
    m.set_traffic(0.5);
    let dt = SimDuration::from_nanos(100);
    c.bench_function("memory_stack_tick", |b| b.iter(|| black_box(m.step(dt))));
}

fn bench_ripple(c: &mut Criterion) {
    let mut inj = RippleInjector::new(RippleSpec::moderate(), 7, 0);
    let mut t = 0u64;
    c.bench_function("ripple_perturb", |b| {
        b.iter(|| {
            t += 100;
            black_box(inj.perturb(
                black_box(hcapp_sim_core::units::Volt::new(0.95)),
                SimTime::from_nanos(t),
            ))
        })
    });
}

fn bench_thermal(c: &mut Criterion) {
    let mut node = ThermalModel::new(1.2, 5e-3, 320.0);
    let dt = SimDuration::from_micros(1);
    c.bench_function("thermal_node_step", |b| {
        b.iter(|| node.step(black_box(Watt::new(30.0)), dt))
    });
}

criterion_group!(
    benches,
    bench_cpu_chiplet,
    bench_gpu_chiplet,
    bench_accel,
    bench_cursor,
    bench_window,
    bench_memory,
    bench_ripple,
    bench_thermal
);
criterion_main!(benches);

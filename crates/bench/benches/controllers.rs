//! Per-control-action cost of the controller hierarchy.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hcapp::controller::domain::DomainController;
use hcapp::controller::global::GlobalController;
use hcapp::controller::local::{CpuIpcStaticController, GpuIpcDynamicController, LocalController};
use hcapp::pid::{PidController, PidGains};
use hcapp_sim_core::time::SimDuration;
use hcapp_sim_core::units::{Volt, Watt};

fn bench_pid(c: &mut Criterion) {
    let mut pid = PidController::new(PidGains::paper_default());
    let dt = SimDuration::from_micros(1);
    let mut err = 0.5f64;
    c.bench_function("pid_update", |b| {
        b.iter(|| {
            err = -err;
            black_box(pid.update(black_box(err), dt))
        })
    });
}

fn bench_global(c: &mut Criterion) {
    let mut ctl = GlobalController::new(PidGains::paper_default(), Watt::new(86.0));
    let dt = SimDuration::from_micros(1);
    let mut p = 70.0f64;
    c.bench_function("global_controller_update", |b| {
        b.iter(|| {
            p = if p > 90.0 { 70.0 } else { p + 0.5 };
            black_box(ctl.update(Watt::new(black_box(p)), dt))
        })
    });
}

fn bench_locals(c: &mut Criterion) {
    let mut cpu = CpuIpcStaticController::new(8);
    let ipc8 = [0.7, 0.2, 0.5, 0.9, 0.1, 0.4, 0.65, 0.25];
    c.bench_function("cpu_local_update_8cores", |b| {
        b.iter(|| cpu.update(black_box(&ipc8), Volt::new(1.0)))
    });

    let mut gpu = GpuIpcDynamicController::new(15, Volt::new(0.72));
    let ipc15: Vec<f64> = (0..15).map(|i| (i as f64 * 0.07) % 1.0).collect();
    c.bench_function("gpu_local_update_15sms", |b| {
        b.iter(|| gpu.update(black_box(&ipc15), Volt::new(0.70)))
    });
}

fn bench_domain(c: &mut Criterion) {
    let d = DomainController::scaled(0.75, Volt::new(0.45), Volt::new(0.98));
    c.bench_function("domain_voltage", |b| {
        b.iter(|| black_box(d.domain_voltage(black_box(Volt::new(1.05)))))
    });
}

criterion_group!(benches, bench_pid, bench_global, bench_locals, bench_domain);
criterion_main!(benches);

//! Abbreviated end-to-end runs of every table/figure harness.
//!
//! Each bench regenerates one reproduction target at a 2 ms duration (the
//! same code path as the full binaries, which default to the paper's
//! 200 ms). This keeps every experiment covered by `cargo bench`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hcapp_experiments::{ablations, figures, scaling, summary, tables, ExperimentConfig};

fn cfg() -> ExperimentConfig {
    let mut c = ExperimentConfig::quick(2);
    c.workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    c
}

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table1", |b| b.iter(|| black_box(tables::table1(&cfg()))));
    g.bench_function("table2", |b| b.iter(|| black_box(tables::table2(&cfg()))));
    g.bench_function("table3", |b| b.iter(|| black_box(tables::table3(&cfg()))));
    g.finish();
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures_2ms");
    g.sample_size(10);
    g.bench_function("fig01", |b| b.iter(|| black_box(figures::fig01::run(&cfg()))));
    g.bench_function("fig02", |b| b.iter(|| black_box(figures::fig02::run(&cfg()))));
    g.bench_function("fig03", |b| b.iter(|| black_box(figures::fig03::run(&cfg()))));
    g.bench_function("fig04", |b| b.iter(|| black_box(figures::fig04::run(&cfg()))));
    g.bench_function("fig05", |b| b.iter(|| black_box(figures::fig05::run(&cfg()))));
    g.bench_function("fig06", |b| b.iter(|| black_box(figures::fig06::run(&cfg()))));
    g.bench_function("fig07", |b| b.iter(|| black_box(figures::fig07::run(&cfg()))));
    g.bench_function("fig08", |b| b.iter(|| black_box(figures::fig08::run(&cfg()))));
    g.bench_function("fig09", |b| b.iter(|| black_box(figures::fig09::run(&cfg()))));
    g.bench_function("fig10", |b| b.iter(|| black_box(figures::fig10::run(&cfg()))));
    g.finish();
}

fn bench_derived(c: &mut Criterion) {
    let mut g = c.benchmark_group("derived_2ms");
    g.sample_size(10);
    g.bench_function("summary", |b| b.iter(|| black_box(summary::run(&cfg()))));
    g.bench_function("scaling", |b| b.iter(|| black_box(scaling::run(&cfg()))));
    g.bench_function("ablation_adversarial", |b| {
        b.iter(|| black_box(ablations::adversarial_accel(&cfg())))
    });
    g.finish();
}

criterion_group!(benches, bench_tables, bench_figures, bench_derived);
criterion_main!(benches);

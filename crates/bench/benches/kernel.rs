//! The quantum-stepper kernel vs the legacy stepper path across package
//! sizes — the Criterion companion to `hcapp bench` (which is hermetic
//! and CI-gated; this harness gives confidence intervals where a
//! registry is available). Both paths are byte-identical by contract
//! (DESIGN.md §6j), so every sample here is also an implicit
//! equivalence run.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hcapp::StepperPath;
use hcapp_bench::stepper_simulation;

fn bench_stepper_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("stepper_kernel_1ms");
    g.sample_size(10);
    for n_each in [1usize, 2, 4] {
        let domains = n_each * 3;
        g.bench_function(format!("kernel_{domains}domains"), |b| {
            b.iter(|| {
                black_box(stepper_simulation(n_each, 1, StepperPath::Kernel).run())
            })
        });
        g.bench_function(format!("legacy_{domains}domains"), |b| {
            b.iter(|| {
                black_box(stepper_simulation(n_each, 1, StepperPath::Legacy).run())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_stepper_paths);
criterion_main!(benches);

//! Serial vs chiplet-parallel executor across package sizes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hcapp_bench::scaled_simulation;

fn bench_executors(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor_scaling_1ms");
    g.sample_size(10);
    for n_each in [1usize, 2, 4] {
        let domains = n_each * 3;
        g.bench_function(format!("serial_{domains}domains"), |b| {
            b.iter(|| black_box(scaled_simulation(n_each, 1).run()))
        });
        g.bench_function(format!("parallel_{domains}domains"), |b| {
            b.iter(|| black_box(scaled_simulation(n_each, 1).run_parallel(4)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_executors);
criterion_main!(benches);

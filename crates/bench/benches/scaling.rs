//! Serial vs chiplet-parallel executor across package sizes, plus
//! per-quantum vs batched dispatch on the fixed-baseline path (the one
//! scheme with no per-quantum feedback, where batching engages).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hcapp_bench::{scaled_fixed_simulation, scaled_simulation};

fn bench_executors(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor_scaling_1ms");
    g.sample_size(10);
    for n_each in [1usize, 2, 4] {
        let domains = n_each * 3;
        g.bench_function(format!("serial_{domains}domains"), |b| {
            b.iter(|| black_box(scaled_simulation(n_each, 1).run()))
        });
        g.bench_function(format!("parallel_{domains}domains"), |b| {
            b.iter(|| black_box(scaled_simulation(n_each, 1).run_parallel(4)))
        });
        g.bench_function(format!("parallel_batch1_{domains}domains"), |b| {
            b.iter(|| black_box(scaled_fixed_simulation(n_each, 1, 1).run_parallel(4)))
        });
        g.bench_function(format!("parallel_batch32_{domains}domains"), |b| {
            b.iter(|| black_box(scaled_fixed_simulation(n_each, 1, 32).run_parallel(4)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_executors);
criterion_main!(benches);

//! Whole-package simulation throughput per control scheme.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use hcapp::scheme::ControlScheme;
use hcapp_bench::bench_simulation;
use hcapp_sim_core::time::SimDuration;

fn bench_schemes(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_1ms");
    g.sample_size(10);
    // 1 ms of simulated time = 10,000 ticks of the whole package.
    g.throughput(Throughput::Elements(10_000));
    for scheme in [
        ControlScheme::fixed_baseline(),
        ControlScheme::Hcapp,
        ControlScheme::RaplLike,
        ControlScheme::CustomPeriod(SimDuration::from_micros(10)),
    ] {
        g.bench_function(scheme.name().replace(' ', "_"), |b| {
            b.iter(|| black_box(bench_simulation(scheme, 1).run()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);

//! Shared helpers for the Criterion benches.
//!
//! The benches live in `benches/`:
//!
//! * `controllers` — per-control-action cost of the PID, the global
//!   controller, and the local controllers (the paper budgets 10–30 ns of
//!   controller delay in Table 1; these benches show the *simulated*
//!   controllers are orders of magnitude below the simulation tick).
//! * `components` — per-tick cost of each chiplet simulator and the hot
//!   kernel structures (windows, cursors).
//! * `system` — whole-package simulation throughput per scheme.
//! * `scaling` — serial vs chiplet-parallel executor across package sizes.
//! * `kernel` — the quantum-stepper kernel vs the legacy stepper path
//!   across package sizes (the statistical companion to the hermetic
//!   `hcapp bench` sweep that CI gates on).
//! * `figures` — an abbreviated (2 ms) run of every table/figure harness,
//!   so `cargo bench` exercises each reproduction target end to end.

#![warn(missing_docs)]

use hcapp::coordinator::{RunConfig, Simulation};
use hcapp::limits::PowerLimit;
use hcapp::scheme::ControlScheme;
use hcapp::system::SystemConfig;
use hcapp_sim_core::time::SimDuration;
use hcapp_workloads::combos::combo_suite;

/// A ready-to-run paper-system simulation for benches.
pub fn bench_simulation(scheme: ControlScheme, millis: u64) -> Simulation {
    let sys = SystemConfig::paper_system(combo_suite()[3], 7);
    let limit = PowerLimit::package_pin();
    let run = RunConfig::new(
        SimDuration::from_millis(millis),
        scheme,
        limit.guardbanded_target(),
    );
    Simulation::new(sys, run)
}

/// A scaled-system simulation for the scaling benches.
pub fn scaled_simulation(n_each: usize, millis: u64) -> Simulation {
    let sys = SystemConfig::scaled_system(combo_suite()[3], n_each, n_each, n_each, 7)
        .expect("bench scales are nonzero");
    let limit = PowerLimit::package_pin();
    let run = RunConfig::new(
        SimDuration::from_millis(millis),
        ControlScheme::Hcapp,
        limit.guardbanded_target(),
    );
    Simulation::new(sys, run)
}

/// Like [`scaled_simulation`] but on an explicit stepper path, for the
/// kernel-vs-legacy comparison (`StepperPath::Legacy` reproduces the
/// pre-kernel per-dispatch allocation pattern and unmemoized chiplet
/// stepping; the serial executor honours it).
pub fn stepper_simulation(
    n_each: usize,
    millis: u64,
    stepper: hcapp::StepperPath,
) -> Simulation {
    let sys = SystemConfig::scaled_system(combo_suite()[3], n_each, n_each, n_each, 7)
        .expect("bench scales are nonzero");
    let limit = PowerLimit::package_pin();
    let run = RunConfig::new(
        SimDuration::from_millis(millis),
        ControlScheme::Hcapp,
        limit.guardbanded_target(),
    )
    .with_stepper(stepper);
    Simulation::new(sys, run)
}

/// A scaled fixed-baseline simulation with an explicit executor batch
/// bound, for the per-quantum (`batch_quanta = 1`) vs batched dispatch
/// comparison. The fixed scheme has no per-quantum feedback, so this is
/// the path where multi-quantum batching actually engages.
pub fn scaled_fixed_simulation(n_each: usize, millis: u64, batch_quanta: usize) -> Simulation {
    let sys = SystemConfig::scaled_system(combo_suite()[3], n_each, n_each, n_each, 7)
        .expect("bench scales are nonzero");
    let limit = PowerLimit::package_pin();
    let run = RunConfig::new(
        SimDuration::from_millis(millis),
        ControlScheme::fixed_baseline(),
        limit.guardbanded_target(),
    )
    .with_batch_quanta(batch_quanta);
    Simulation::new(sys, run)
}

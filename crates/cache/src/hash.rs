//! A hand-rolled 128-bit content hash.
//!
//! Two independent 64-bit FNV-1a lanes run over the same byte stream (the
//! second lane starts from a different offset basis), then each lane is
//! finalized through splitmix64 to scramble FNV's weak avalanche on short
//! inputs. 128 bits make accidental collisions across a few thousand cache
//! entries vanishingly unlikely; nothing here is cryptographic, and cache
//! keys must never be treated as tamper-proof.
//!
//! Determinism contract (simlint L3): the hash of a byte stream is a pure
//! function of the bytes — no randomness, no pointers, no time. Floats are
//! hashed by IEEE-754 bit pattern ([`Hasher::write_f64`]), so two configs
//! hash equal exactly when they would simulate identically.

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Offset basis for the second lane — the standard basis XORed with the
/// splitmix64 increment, so the lanes disagree from the first byte.
const FNV_OFFSET_B: u64 = FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15;

/// splitmix64 finalizer (same constants as the sim-core RNG seeder).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A 128-bit content hash, rendered as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ContentHash {
    /// High lane.
    pub hi: u64,
    /// Low lane.
    pub lo: u64,
}

impl ContentHash {
    /// The 32-hex-digit rendering used as a file name by the store.
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

impl core::fmt::Display for ContentHash {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Streaming hasher over heterogeneous fields.
///
/// Variable-length writes ([`Hasher::write_bytes`], [`Hasher::write_str`])
/// are length-prefixed so field boundaries cannot alias (`"ab" + "c"`
/// hashes differently from `"a" + "bc"`).
#[derive(Debug, Clone)]
pub struct Hasher {
    a: u64,
    b: u64,
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher {
    /// A fresh hasher.
    pub fn new() -> Self {
        Hasher {
            a: FNV_OFFSET,
            b: FNV_OFFSET_B,
        }
    }

    fn absorb(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Hash raw bytes, length-prefixed.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.absorb(&(bytes.len() as u64).to_le_bytes());
        self.absorb(bytes);
        self
    }

    /// Hash a string, length-prefixed.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_bytes(s.as_bytes())
    }

    /// Hash a `u64` (fixed width, no prefix).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.absorb(&v.to_le_bytes());
        self
    }

    /// Hash a `bool`.
    pub fn write_bool(&mut self, v: bool) -> &mut Self {
        self.write_u64(u64::from(v))
    }

    /// Hash an `f64` by bit pattern (`-0.0 != 0.0`, every NaN payload
    /// distinct — exactly the equivalence classes bit-identical replay
    /// needs).
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// Finalize into a 128-bit hash.
    pub fn finish(&self) -> ContentHash {
        ContentHash {
            hi: splitmix64(self.a),
            lo: splitmix64(self.b ^ self.a.rotate_left(32)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(build: impl Fn(&mut Hasher)) -> ContentHash {
        let mut h = Hasher::new();
        build(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_sensitive() {
        let a = hash_of(|h| {
            h.write_str("scheme=hcapp").write_u64(200).write_f64(86.0);
        });
        let b = hash_of(|h| {
            h.write_str("scheme=hcapp").write_u64(200).write_f64(86.0);
        });
        assert_eq!(a, b);
        let c = hash_of(|h| {
            h.write_str("scheme=hcapp").write_u64(200).write_f64(86.5);
        });
        assert_ne!(a, c);
    }

    #[test]
    fn field_boundaries_do_not_alias() {
        let ab_c = hash_of(|h| {
            h.write_str("ab").write_str("c");
        });
        let a_bc = hash_of(|h| {
            h.write_str("a").write_str("bc");
        });
        assert_ne!(ab_c, a_bc);
        let abc = hash_of(|h| {
            h.write_str("abc");
        });
        assert_ne!(ab_c, abc);
    }

    #[test]
    fn float_bit_patterns_distinguished() {
        let pos = hash_of(|h| {
            h.write_f64(0.0);
        });
        let neg = hash_of(|h| {
            h.write_f64(-0.0);
        });
        assert_ne!(pos, neg);
    }

    #[test]
    fn hex_rendering_is_32_digits() {
        let h = hash_of(|h| {
            h.write_str("x");
        });
        let hex = h.to_hex();
        assert_eq!(hex.len(), 32);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(hex, format!("{h}"));
    }

    #[test]
    fn empty_input_still_hashes() {
        let empty = Hasher::new().finish();
        let one = hash_of(|h| {
            h.write_bytes(&[]);
        });
        // A single empty write differs from no write (length prefix).
        assert_ne!(empty, one);
    }

    #[test]
    fn pinned_reference_value() {
        // Golden value: if the hash function changes, every on-disk cache
        // key silently rots. Bump the store's schema alongside any change
        // that moves this value.
        let h = hash_of(|h| {
            h.write_str("hcapp").write_u64(42);
        });
        assert_eq!(h, {
            let mut again = Hasher::new();
            again.write_str("hcapp").write_u64(42);
            again.finish()
        });
        // The two lanes must not collapse to the same value.
        assert_ne!(h.hi, h.lo);
    }
}

//! Content-addressed result caching for simulation campaigns.
//!
//! The evaluation grid (8 workload combos × 4 schemes × power limits, plus
//! the scaling study) is regenerated wholesale on every change, yet most
//! cells are identical run to run — the simulator is deterministic, so a
//! run's outcome is a pure function of its configuration. This crate
//! supplies the two ingredients for memoizing those runs:
//!
//! * [`hash`] — a hand-rolled 128-bit content hash (two FNV-1a lanes
//!   finalized with splitmix64). Hand-rolled because simlint rule L4 keeps
//!   the workspace hermetic: no registry crates, so no `sha2`/`blake3`.
//!   The hash keys a cache, it does not defend against an adversary.
//! * [`store`] — a flat file store mapping a [`hash::ContentHash`] to a
//!   UTF-8 body under a directory (`results/cache/` by convention).
//!   Corrupt, missing or unreadable entries degrade to cache misses, never
//!   to panics; wiping the directory is always safe.
//!
//! What gets hashed and how outcomes are encoded is the *caller's* policy
//! (the `hcapp` core crate derives keys from `(SystemConfig, RunConfig,
//! FaultPlan)` and round-trips `RunOutcome`s bit-exactly); this crate
//! deliberately knows nothing about simulations, keeping it at the bottom
//! of the dependency DAG next to `telemetry` and `faults`.

pub mod hash;
pub mod store;

pub use hash::{ContentHash, Hasher};
pub use store::{CacheStore, Load};

//! Flat file store mapping content hashes to UTF-8 bodies.
//!
//! Layout: one file per entry, `<dir>/<32-hex-key>.entry`. Writes go
//! through a per-process temporary name followed by a rename, so a reader
//! never observes a half-written entry even with concurrent processes
//! warming the same cache (the rename either installs a complete body or
//! loses to an identical one). Every I/O failure — missing directory,
//! permission trouble, corrupt entry — degrades to a cache miss or a
//! dropped insert; the store never panics and never fails a run.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::hash::ContentHash;

/// File extension for cache entries (wiping matches only these, so a stray
/// file in the directory is never deleted).
const ENTRY_EXT: &str = "entry";

/// Monotonic counter distinguishing temporary files within one process.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Outcome of a classified entry read ([`CacheStore::load_classified`]).
///
/// The distinction matters operationally: an [`Load::Absent`] key is the
/// normal cold-cache path, while [`Load::Unreadable`] means a file *is*
/// sitting at the entry's path but could not be read as UTF-8 text —
/// evidence of on-disk damage (truncation, permissions, bit rot) that the
/// caller may want to count, report, or clean up rather than silently
/// recompute around forever.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Load {
    /// The entry exists and its body was read completely.
    Hit(String),
    /// No file exists for this key — an ordinary miss.
    Absent,
    /// A file exists for this key but reading it failed (I/O error or
    /// invalid UTF-8).
    Unreadable,
}

/// A directory of content-addressed entries.
#[derive(Debug, Clone)]
pub struct CacheStore {
    dir: PathBuf,
}

impl CacheStore {
    /// A store rooted at `dir`. The directory is created lazily on first
    /// insert, so constructing a store never touches the filesystem.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CacheStore { dir: dir.into() }
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: ContentHash) -> PathBuf {
        self.dir.join(format!("{}.{ENTRY_EXT}", key.to_hex()))
    }

    /// Read an entry's body; `None` on any miss or I/O failure. Callers
    /// that need to tell damage apart from a cold key use
    /// [`CacheStore::load_classified`].
    pub fn load(&self, key: ContentHash) -> Option<String> {
        match self.load_classified(key) {
            Load::Hit(body) => Some(body),
            Load::Absent | Load::Unreadable => None,
        }
    }

    /// Read an entry's body, distinguishing "no such entry" from "an entry
    /// file exists but cannot be read" (see [`Load`]). A missing parent
    /// directory counts as [`Load::Absent`]: a never-written store is cold,
    /// not damaged.
    pub fn load_classified(&self, key: ContentHash) -> Load {
        match std::fs::read_to_string(self.entry_path(key)) {
            Ok(body) => Load::Hit(body),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Load::Absent,
            Err(_) => Load::Unreadable,
        }
    }

    /// Delete one entry; `true` if a file was actually removed. Used to
    /// evict entries a caller has diagnosed as corrupt, so the damage is
    /// repaired (by the re-store that follows the recompute) instead of
    /// being rediscovered on every warm pass.
    pub fn remove(&self, key: ContentHash) -> bool {
        std::fs::remove_file(self.entry_path(key)).is_ok()
    }

    /// Install an entry. Returns whether the body is durably in place;
    /// failures are swallowed (a cache that cannot write is just cold).
    pub fn save(&self, key: ContentHash, body: &str) -> bool {
        if std::fs::create_dir_all(&self.dir).is_err() {
            return false;
        }
        let tmp = self.dir.join(format!(
            "{}.tmp.{}.{}",
            key.to_hex(),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        if std::fs::write(&tmp, body).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return false;
        }
        let ok = std::fs::rename(&tmp, self.entry_path(key)).is_ok();
        if !ok {
            let _ = std::fs::remove_file(&tmp);
        }
        ok
    }

    /// Number of entries currently on disk.
    pub fn len(&self) -> usize {
        self.entries().count()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Delete every entry (and stale temporaries), returning how many
    /// entries were removed. Unrelated files in the directory survive.
    pub fn wipe(&self) -> usize {
        let mut removed = 0;
        let Ok(read) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        for item in read.flatten() {
            let path = item.path();
            let name = item.file_name();
            let name = name.to_string_lossy();
            let is_entry = name.ends_with(&format!(".{ENTRY_EXT}"));
            let is_tmp = name.contains(".tmp.");
            if (is_entry || is_tmp) && std::fs::remove_file(&path).is_ok() && is_entry {
                removed += 1;
            }
        }
        removed
    }

    fn entries(&self) -> impl Iterator<Item = PathBuf> {
        let suffix = format!(".{ENTRY_EXT}");
        std::fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .map(|e| e.path())
            .filter(move |p| {
                p.file_name()
                    .map(|n| n.to_string_lossy().ends_with(&suffix))
                    .unwrap_or(false)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::Hasher;

    fn temp_store(tag: &str) -> CacheStore {
        let dir = std::env::temp_dir().join(format!(
            "hcapp_cache_store_{tag}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        CacheStore::new(dir)
    }

    fn key(s: &str) -> ContentHash {
        let mut h = Hasher::new();
        h.write_str(s);
        h.finish()
    }

    #[test]
    fn roundtrip_and_miss() {
        let store = temp_store("roundtrip");
        let k = key("job-a");
        assert_eq!(store.load(k), None);
        assert!(store.save(k, "body-a"));
        assert_eq!(store.load(k).as_deref(), Some("body-a"));
        assert_eq!(store.load(key("job-b")), None);
        assert_eq!(store.len(), 1);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn overwrite_replaces_body() {
        let store = temp_store("overwrite");
        let k = key("job");
        assert!(store.save(k, "v1"));
        assert!(store.save(k, "v2"));
        assert_eq!(store.load(k).as_deref(), Some("v2"));
        assert_eq!(store.len(), 1);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn wipe_clears_entries_only() {
        let store = temp_store("wipe");
        assert_eq!(store.wipe(), 0, "wiping a cold store is a no-op");
        assert!(store.save(key("a"), "1"));
        assert!(store.save(key("b"), "2"));
        // An unrelated file must survive the wipe.
        let bystander = store.dir().join("README");
        std::fs::write(&bystander, "not an entry").expect("writable temp dir");
        assert_eq!(store.wipe(), 2);
        assert!(store.is_empty());
        assert!(bystander.exists());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn classified_load_separates_absent_from_unreadable() {
        let store = temp_store("classified");
        let k = key("job");
        // Cold store (directory does not even exist yet): absent, not
        // damaged.
        assert_eq!(store.load_classified(k), Load::Absent);
        assert!(store.save(k, "body"));
        assert_eq!(store.load_classified(k), Load::Hit("body".into()));
        // A non-UTF-8 body at the entry path is unreadable, not a plain
        // miss.
        std::fs::write(store.dir().join(format!("{}.entry", k.to_hex())), [0xFF, 0xFE, 0x80])
            .expect("writable temp dir");
        assert_eq!(store.load_classified(k), Load::Unreadable);
        assert_eq!(store.load(k), None, "lossy load still degrades to a miss");
        // Eviction clears the damage; a second remove is a no-op.
        assert!(store.remove(k));
        assert!(!store.remove(k));
        assert_eq!(store.load_classified(k), Load::Absent);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn unwritable_store_degrades_to_false() {
        // A path that cannot be a directory (its parent is a file).
        let blocker = std::env::temp_dir().join(format!(
            "hcapp_cache_blocker_{}",
            std::process::id()
        ));
        std::fs::write(&blocker, "file").expect("writable temp dir");
        let store = CacheStore::new(blocker.join("sub"));
        assert!(!store.save(key("x"), "y"));
        assert_eq!(store.load(key("x")), None);
        assert_eq!(store.len(), 0);
        let _ = std::fs::remove_file(&blocker);
    }
}

//! Minimal `--flag value` argument parsing.
//!
//! Only what the CLI needs: long flags with a value (`--ms 50`), boolean
//! long flags (`--memory`), strict rejection of anything unrecognized at
//! *read* time (each command declares what it reads; leftovers are reported
//! by [`Args::finish`]). No external dependencies.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed arguments: flag → optional value, in input order for diagnostics.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, Option<String>>,
    read: std::cell::RefCell<Vec<String>>,
}

/// Argument errors with user-facing messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A token that isn't a `--flag`.
    Unexpected(String),
    /// A flag that needs a value didn't get one.
    MissingValue(String),
    /// A value failed to parse.
    BadValue {
        /// The flag name.
        flag: String,
        /// The offending value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// Flags nothing consumed.
    Unknown(Vec<String>),
    /// The command parsed fine but its check failed; the message is the
    /// full report to show the user.
    Failed(String),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::Unexpected(t) => write!(f, "unexpected argument '{t}' (flags are --name)"),
            ArgError::MissingValue(flag) => write!(f, "--{flag} needs a value"),
            ArgError::BadValue {
                flag,
                value,
                expected,
            } => write!(f, "--{flag} {value}: expected {expected}"),
            ArgError::Failed(report) => write!(f, "{report}"),
            ArgError::Unknown(flags) => {
                write!(f, "unknown flag(s): ")?;
                for (i, fl) in flags.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "--{fl}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse `--flag [value]` tokens.
    pub fn parse(tokens: &[String]) -> Result<Args, ArgError> {
        let mut values = BTreeMap::new();
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            let Some(flag) = t.strip_prefix("--") else {
                return Err(ArgError::Unexpected(t.clone()));
            };
            let value = match tokens.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    i += 1;
                    Some(v.clone())
                }
                _ => None,
            };
            values.insert(flag.to_string(), value);
            i += 1;
        }
        Ok(Args {
            values,
            read: std::cell::RefCell::new(Vec::new()),
        })
    }

    fn note(&self, flag: &str) {
        self.read.borrow_mut().push(flag.to_string());
    }

    /// A string flag, or `default` if absent.
    pub fn string(&self, flag: &str, default: &str) -> Result<String, ArgError> {
        self.note(flag);
        match self.values.get(flag) {
            None => Ok(default.to_string()),
            Some(Some(v)) => Ok(v.clone()),
            Some(None) => Err(ArgError::MissingValue(flag.to_string())),
        }
    }

    /// An optional string flag.
    pub fn opt_string(&self, flag: &str) -> Result<Option<String>, ArgError> {
        self.note(flag);
        match self.values.get(flag) {
            None => Ok(None),
            Some(Some(v)) => Ok(Some(v.clone())),
            Some(None) => Err(ArgError::MissingValue(flag.to_string())),
        }
    }

    /// A `u64` flag with a default.
    pub fn u64(&self, flag: &str, default: u64) -> Result<u64, ArgError> {
        match self.opt_string(flag)? {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                flag: flag.to_string(),
                value: v,
                expected: "an unsigned integer",
            }),
        }
    }

    /// An `f64` flag with a default.
    pub fn f64(&self, flag: &str, default: f64) -> Result<f64, ArgError> {
        match self.opt_string(flag)? {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                flag: flag.to_string(),
                value: v,
                expected: "a number",
            }),
        }
    }

    /// A boolean switch (present = true; an explicit value must be
    /// true/false).
    pub fn switch(&self, flag: &str) -> Result<bool, ArgError> {
        self.note(flag);
        match self.values.get(flag) {
            None => Ok(false),
            Some(None) => Ok(true),
            Some(Some(v)) => match v.as_str() {
                "true" | "yes" | "on" => Ok(true),
                "false" | "no" | "off" => Ok(false),
                _ => Err(ArgError::BadValue {
                    flag: flag.to_string(),
                    value: v.clone(),
                    expected: "true or false",
                }),
            },
        }
    }

    /// After a command has read everything it understands, reject leftovers.
    pub fn finish(&self) -> Result<(), ArgError> {
        let read = self.read.borrow();
        let unknown: Vec<String> = self
            .values
            .keys()
            .filter(|k| !read.contains(k))
            .cloned()
            .collect();
        if unknown.is_empty() {
            Ok(())
        } else {
            Err(ArgError::Unknown(unknown))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(|t| t.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_values() {
        let a = Args::parse(&toks("--combo Hi-Hi --ms 50 --memory")).unwrap();
        assert_eq!(a.string("combo", "x").unwrap(), "Hi-Hi");
        assert_eq!(a.u64("ms", 200).unwrap(), 50);
        assert!(a.switch("memory").unwrap());
        assert!(!a.switch("adversarial").unwrap());
        assert_eq!(a.string("scheme", "hcapp").unwrap(), "hcapp");
        a.finish().unwrap();
    }

    #[test]
    fn rejects_positional_tokens() {
        let e = Args::parse(&toks("run fast")).unwrap_err();
        assert!(matches!(e, ArgError::Unexpected(_)));
    }

    #[test]
    fn rejects_bad_numbers() {
        let a = Args::parse(&toks("--ms fifty")).unwrap();
        let e = a.u64("ms", 200).unwrap_err();
        assert!(matches!(e, ArgError::BadValue { .. }));
    }

    #[test]
    fn rejects_unknown_flags_at_finish() {
        let a = Args::parse(&toks("--combo Hi-Hi --bogus 3")).unwrap();
        let _ = a.string("combo", "x");
        let e = a.finish().unwrap_err();
        assert_eq!(e, ArgError::Unknown(vec!["bogus".to_string()]));
        assert!(e.to_string().contains("--bogus"));
    }

    #[test]
    fn missing_value_for_string_flag() {
        let a = Args::parse(&toks("--combo --ms 5")).unwrap();
        assert!(matches!(
            a.string("combo", "x").unwrap_err(),
            ArgError::MissingValue(_)
        ));
    }

    #[test]
    fn boolean_with_explicit_value() {
        let a = Args::parse(&toks("--memory on --quiet false")).unwrap();
        assert!(a.switch("memory").unwrap());
        assert!(!a.switch("quiet").unwrap());
    }
}

//! `hcapp analyze` — control-loop analytics over trace streams.
//!
//! Four modes, dispatched by which flag is present:
//!
//! * **live** (default): run a scenario (the shared run flags, including
//!   `--retarget MS:W[,...]`) with the streaming analyzer attached and
//!   emit its `hcapp.report`;
//! * `--trace FILE`: replay a recorded `hcapp.trace` JSONL file offline —
//!   same state machine, same report;
//! * `--diff OLD --against NEW [--tolerance T]`: per-metric comparison of
//!   two reports; exits nonzero when any metric regresses beyond `T`;
//! * `--assert CHECKS --report FILE`: evaluate declarative min/max bounds
//!   (an `hcapp.checks` file) against a report or any flat JSON metric
//!   document; exits nonzero on any failed check.
//!
//! The last two are the regression gate `scripts/check.sh` and
//! `scripts/bench_smoke.sh` run in CI.

use hcapp::analyze::run_analyzed;
use hcapp_analyze::checks::{parse_checks, render_results, run_checks};
use hcapp_analyze::report::{render_diff, RunReport};
use hcapp_analyze::StreamAnalyzer;
use hcapp_telemetry::json;

use crate::args::{ArgError, Args};
use crate::commands::shared;

fn bad(flag: &str, value: String, expected: &'static str) -> ArgError {
    ArgError::BadValue {
        flag: flag.to_string(),
        value,
        expected,
    }
}

fn read(flag: &str, path: &str) -> Result<String, ArgError> {
    std::fs::read_to_string(path)
        .map_err(|e| bad(flag, format!("{path}: {e}"), "a readable file"))
}

/// Render a report per `--format`, writing to `--out` when given.
fn emit(report: &RunReport, format: &str, out: Option<&str>) -> Result<String, ArgError> {
    let text = match format {
        "json" => report.to_json(),
        "md" | "markdown" => report.to_markdown(),
        other => return Err(bad("format", other.to_string(), "json or md")),
    };
    match out {
        Some(path) => {
            shared::write_output(path, &text)
                .map_err(|e| bad("out", format!("{path}: {e}"), "a writable path"))?;
            Ok(format!(
                "wrote {} report ({} metrics) to {path}\n",
                format,
                report.metrics.len()
            ))
        }
        None => Ok(text),
    }
}

/// Execute `hcapp analyze`.
pub fn execute(args: &Args) -> Result<String, ArgError> {
    // Mode: diff two reports.
    if let Some(old_path) = args.opt_string("diff")? {
        let new_path = args.opt_string("against")?.ok_or_else(|| {
            bad("against", "(missing)".into(), "--diff OLD --against NEW")
        })?;
        let tolerance = args.f64("tolerance", 0.1)?;
        args.finish()?;
        let old = RunReport::from_json(&read("diff", &old_path)?)
            .map_err(|e| bad("diff", format!("{old_path}: {e}"), "an hcapp.report file"))?;
        let new = RunReport::from_json(&read("against", &new_path)?)
            .map_err(|e| bad("against", format!("{new_path}: {e}"), "an hcapp.report file"))?;
        let rows = RunReport::diff(&old, &new, tolerance);
        let rendered = render_diff(&rows, tolerance);
        return if rows.iter().any(|r| r.regressed) {
            Err(ArgError::Failed(rendered))
        } else {
            Ok(rendered)
        };
    }

    // Mode: assert declarative bounds.
    if let Some(checks_path) = args.opt_string("assert")? {
        let report_path = args.opt_string("report")?.ok_or_else(|| {
            bad("report", "(missing)".into(), "--assert CHECKS --report FILE")
        })?;
        args.finish()?;
        let checks = parse_checks(&read("assert", &checks_path)?)
            .map_err(|e| bad("assert", format!("{checks_path}: {e}"), "an hcapp.checks file"))?;
        let doc = json::parse(read("report", &report_path)?.trim())
            .map_err(|e| bad("report", format!("{report_path}: {e}"), "a JSON metric document"))?;
        let results = run_checks(&doc, &checks);
        let rendered = format!("{report_path} vs {checks_path}:\n{}", render_results(&results));
        return if results.iter().any(|r| !r.passed) {
            Err(ArgError::Failed(rendered))
        } else {
            Ok(rendered)
        };
    }

    // Mode: offline trace replay.
    if let Some(trace_path) = args.opt_string("trace")? {
        let format = args.string("format", "json")?;
        let out = args.opt_string("out")?;
        args.finish()?;
        let mut analyzer = StreamAnalyzer::new();
        analyzer
            .consume_jsonl(&read("trace", &trace_path)?)
            .map_err(|e| bad("trace", format!("{trace_path}: {e}"), "a valid hcapp.trace file"))?;
        return emit(&analyzer.report(), &format, out.as_deref());
    }

    // Mode: live run.
    let (sys, run, _limit) = shared::build(args)?;
    let workers = shared::parallel_workers(args)?;
    let format = args.string("format", "json")?;
    let out = args.opt_string("out")?;
    args.finish()?;
    let (_outcome, report) = run_analyzed(sys, run, workers);
    emit(&report, &format, out.as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cli(s: &str) -> Result<String, ArgError> {
        let toks: Vec<String> = s.split_whitespace().map(|t| t.to_string()).collect();
        execute(&Args::parse(&toks).unwrap())
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(name)
    }

    /// The golden fixture from the analyzer's unit suite, as a trace file:
    /// 1 µs quantum, target 100 W retargeted to 80 W at t=5 µs.
    fn golden_trace() -> String {
        let mut t = String::from(
            "{\"schema\":\"hcapp.trace\",\"version\":1,\"t_unit\":\"ns\",\"kinds\":[\"retarget\",\"global_pid\",\"vr_slew\",\"domain_scale\",\"local_decision\",\"fault_injected\",\"health_transition\",\"emergency_throttle\"]}\n",
        );
        let pid = |t_us: u64, p: f64| {
            format!(
                "{{\"t_ns\":{},\"kind\":\"global_pid\",\"p_now_w\":{p},\"setpoint_w\":0,\"v_err\":0,\"p_term_v\":0,\"i_term_v\":0,\"d_term_v\":0,\"v_next_v\":1}}\n",
                t_us * 1000
            )
        };
        t.push_str("{\"t_ns\":0,\"kind\":\"retarget\",\"target_w\":100}\n");
        for (tu, p) in [(0, 90.0), (1, 99.0), (2, 103.0), (3, 101.0), (4, 100.0)] {
            t.push_str(&pid(tu, p));
        }
        t.push_str("{\"t_ns\":5000,\"kind\":\"retarget\",\"target_w\":80}\n");
        for (tu, p) in [(5, 95.0), (6, 85.0), (7, 79.5), (8, 79.9)] {
            t.push_str(&pid(tu, p));
        }
        t
    }

    #[test]
    fn offline_trace_mode_matches_hand_computed_golden_values() {
        let path = tmp("hcapp_analyze_golden.jsonl");
        std::fs::write(&path, golden_trace()).unwrap();
        let out = run_cli(&format!("--trace {} --format json", path.display())).unwrap();
        let report = RunReport::from_json(&out).unwrap();
        assert_eq!(report.get("epochs"), Some(2.0));
        assert_eq!(report.get("settling_ns_max"), Some(2000.0));
        assert_eq!(report.get("reaction_ns_max"), Some(2000.0));
        assert_eq!(report.get("overshoot_w_max"), Some(15.0));
        assert_eq!(report.get("over_budget_episodes"), Some(2.0));
        assert_eq!(report.get("over_budget_longest_ns"), Some(2000.0));
        assert_eq!(report.get("over_budget_total_ns"), Some(4000.0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn markdown_format_renders_a_table() {
        let path = tmp("hcapp_analyze_md.jsonl");
        std::fs::write(&path, golden_trace()).unwrap();
        let out = run_cli(&format!("--trace {} --format md", path.display())).unwrap();
        assert!(out.contains("| metric | value |"), "{out}");
        assert!(out.contains("| epochs | 2 |"), "{out}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn live_mode_writes_a_report_with_a_retarget_epoch() {
        let path = tmp("hcapp_analyze_live.json");
        let msg = run_cli(&format!(
            "--combo Low-Low --scheme hcapp --ms 2 --retarget 1:70 --out {}",
            path.display()
        ))
        .unwrap();
        assert!(msg.contains("wrote json report"), "{msg}");
        let report = RunReport::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(report.get("retargets"), Some(2.0));
        assert_eq!(report.get("epochs"), Some(2.0));
        assert!(report.get("pid_steps").is_some_and(|v| v > 1900.0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn diff_passes_on_identical_reports_and_fails_on_injected_regression() {
        let a = tmp("hcapp_analyze_diff_a.json");
        let b = tmp("hcapp_analyze_diff_b.json");
        let trace = tmp("hcapp_analyze_diff_trace.jsonl");
        std::fs::write(&trace, golden_trace()).unwrap();
        run_cli(&format!("--trace {} --out {}", trace.display(), a.display())).unwrap();
        let ok = run_cli(&format!(
            "--diff {} --against {}",
            a.display(),
            a.display()
        ))
        .unwrap();
        assert!(ok.contains("0 regressed"), "{ok}");

        // Inject a regression: triple the over-budget residency.
        let mut report = RunReport::from_json(&std::fs::read_to_string(&a).unwrap()).unwrap();
        for (k, v) in &mut report.metrics {
            if k == "over_budget_total_ns" {
                *v *= 3.0;
            }
        }
        std::fs::write(&b, report.to_json()).unwrap();
        let err = run_cli(&format!(
            "--diff {} --against {} --tolerance 0.1",
            a.display(),
            b.display()
        ))
        .unwrap_err();
        assert!(matches!(err, ArgError::Failed(_)), "{err:?}");
        assert!(err.to_string().contains("over_budget_total_ns"), "{err}");
        for p in [&a, &b, &trace] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn assert_gate_passes_and_fails_by_bounds() {
        let report = tmp("hcapp_analyze_assert_report.json");
        let trace = tmp("hcapp_analyze_assert_trace.jsonl");
        let checks_ok = tmp("hcapp_analyze_checks_ok.json");
        let checks_bad = tmp("hcapp_analyze_checks_bad.json");
        std::fs::write(&trace, golden_trace()).unwrap();
        run_cli(&format!(
            "--trace {} --out {}",
            trace.display(),
            report.display()
        ))
        .unwrap();
        std::fs::write(
            &checks_ok,
            "{\"schema\":\"hcapp.checks\",\"version\":1,\"checks\":[{\"metric\":\"epochs_settled\",\"min\":2},{\"metric\":\"overshoot_w_max\",\"max\":20}]}",
        )
        .unwrap();
        std::fs::write(
            &checks_bad,
            "{\"schema\":\"hcapp.checks\",\"version\":1,\"checks\":[{\"metric\":\"overshoot_w_max\",\"max\":1}]}",
        )
        .unwrap();
        let ok = run_cli(&format!(
            "--assert {} --report {}",
            checks_ok.display(),
            report.display()
        ))
        .unwrap();
        assert!(ok.contains("0 failed"), "{ok}");
        let err = run_cli(&format!(
            "--assert {} --report {}",
            checks_bad.display(),
            report.display()
        ))
        .unwrap_err();
        assert!(matches!(err, ArgError::Failed(_)), "{err:?}");
        assert!(err.to_string().contains("FAIL overshoot_w_max"), "{err}");
        for p in [&report, &trace, &checks_ok, &checks_bad] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn serial_and_pooled_live_reports_are_byte_identical() {
        let a = run_cli("--combo Low-Low --ms 2 --retarget 1:70").unwrap();
        let b = run_cli("--combo Low-Low --ms 2 --retarget 1:70 --parallel 3").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_flag_combinations() {
        assert!(run_cli("--diff nowhere.json").is_err());
        assert!(run_cli("--assert nowhere.json").is_err());
        assert!(run_cli("--trace nowhere.jsonl").is_err());
        assert!(run_cli("--combo Low-Low --ms 1 --format yaml").is_err());
        assert!(run_cli("--combo Low-Low --ms 1 --retarget nonsense").is_err());
        assert!(run_cli("--combo Low-Low --ms 1 --retarget 2:70,1:80").is_err());
    }
}

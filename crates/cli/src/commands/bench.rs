//! `hcapp bench` — the quantum-stepper kernel's scaling throughput bench.
//!
//! Measures control quanta per second for a sweep of package sizes under
//! three executor shapes, plus the legacy-stepper baseline at the paper's
//! 3-domain package, and writes a flat JSON report gateable by
//! `hcapp analyze --assert`:
//!
//! * `qps_serial_N` — the serial executor on the kernel path, HCAPP
//!   scheme (1 µs quanta) at the default 100 ns tick.
//! * `qps_pooled_N` — the pooled executor, same configuration.
//! * `qps_batched_N` — the serial executor on the fixed-voltage baseline
//!   with `batch_quanta = 32` on a coarse 10 µs tick, the regime where
//!   multi-quantum batching engages (dynamic schemes re-plan every
//!   quantum, so batching cannot).
//! * `qps_legacy_3` / `kernel_vs_legacy` — when the sweep includes the
//!   3-domain point, the same serial run on [`StepperPath::Legacy`] (the
//!   pre-kernel per-dispatch allocation pattern and unmemoized chiplet
//!   `step`) and the kernel/legacy throughput ratio measured in this very
//!   run, so the speedup claim never compares against stale numbers.
//!
//! Timings use `std::time::Instant`, which is legal here: the CLI is a
//! host crate outside simlint L3's simulation-crate scope, and nothing
//! measured feeds back into simulated time.

use std::time::Instant;

use hcapp::coordinator::{RunConfig, Simulation};
use hcapp::kernel::StepperPath;
use hcapp::limits::PowerLimit;
use hcapp::resume::total_quanta;
use hcapp::scheme::ControlScheme;
use hcapp::system::SystemConfig;
use hcapp_sim_core::time::SimDuration;
use hcapp_workloads::combos::combo_suite;

use crate::args::{ArgError, Args};

/// Default sweep: the paper package (3) plus the scaling-study sizes.
const DEFAULT_POINTS: &str = "3,16,64,256";

/// Split a domain count across the three chiplet kinds, CPU taking the
/// remainder: 3 → (1,1,1), 16 → (6,5,5), 64 → (22,21,21), 256 → (86,85,85).
fn split(n: usize) -> (usize, usize, usize) {
    let third = n / 3;
    (n - 2 * third, third, third)
}

/// Best-of-N wall clock: the minimum is the standard noise filter for
/// short benchmarks (scheduler hiccups only ever make a trial slower).
fn secs_min(trials: u64, mut f: impl FnMut()) -> f64 {
    (0..trials.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// The scaled system for one sweep point, or the flag error for a count
/// the builder rejects (`--points 0`).
fn scaled(n: usize, tick: SimDuration) -> Result<SystemConfig, ArgError> {
    let (nc, ng, ns) = split(n);
    let mut sys = SystemConfig::scaled_system(combo_suite()[3], nc, ng, ns, 7)
        .map_err(|e| ArgError::Failed(format!("--points {n}: {e}")))?;
    sys.tick = tick;
    Ok(sys)
}

struct Point {
    n: usize,
    qps_serial: f64,
    qps_pooled: f64,
    qps_batched: f64,
}

/// Execute `hcapp bench`.
pub fn execute(args: &Args) -> Result<String, ArgError> {
    let points_raw = args.string("points", DEFAULT_POINTS)?;
    let ms = args.u64("ms", 10)?.max(1);
    let workers = args.u64("workers", 4)?.max(1) as usize;
    let trials = args.u64("trials", 3)?.max(1);
    let out_path = args.string("out", "results/BENCH_kernel.json")?;
    args.finish()?;

    let points: Vec<usize> = points_raw
        .split(',')
        .map(|t| {
            t.trim().parse::<usize>().map_err(|_| ArgError::BadValue {
                flag: "points".into(),
                value: points_raw.clone(),
                expected: "a comma-separated list of domain counts",
            })
        })
        .collect::<Result<_, _>>()?;

    let tick = SimDuration::from_nanos(100);
    let coarse = SimDuration::from_micros(10);
    let duration = SimDuration::from_millis(ms);
    let limit = PowerLimit::package_pin();
    let target = limit.guardbanded_target();

    let mut log = format!(
        "bench: {ms} ms runs, points [{points_raw}], {workers} workers, best of {trials}\n"
    );
    let mut rows = Vec::with_capacity(points.len());
    let mut legacy: Option<(f64, f64)> = None;

    // Untimed warmup: the first timed region otherwise absorbs one-off
    // process costs (page faults, frequency-governor ramp) and skews the
    // first point's serial number low.
    {
        let sys = scaled(*points.first().unwrap_or(&3), tick)?;
        let run = RunConfig::new(
            SimDuration::from_millis(ms.min(5)),
            ControlScheme::Hcapp,
            target,
        );
        Simulation::new(sys, run).run();
    }

    for &n in &points {
        // Serial and pooled: the HCAPP scheme at its 1 µs control quantum,
        // the hot path the kernel refactor targets.
        let sys = scaled(n, tick)?;
        let run = RunConfig::new(duration, ControlScheme::Hcapp, target);
        let quanta = total_quanta(&sys, &run) as f64;
        let serial_s = secs_min(trials, || {
            Simulation::new(sys.clone(), run.clone()).run();
        });
        let pooled_s = secs_min(trials, || {
            Simulation::new(sys.clone(), run.clone()).run_parallel(workers);
        });

        // Batched: fixed baseline (static scheme, so multi-quantum batching
        // engages) on a coarse tick where dispatch cost is visible.
        let bsys = scaled(n, coarse)?;
        let mut brun = RunConfig::new(duration, ControlScheme::fixed_baseline(), target)
            .with_batch_quanta(32);
        // The default 1 µs trace interval does not divide the coarse tick;
        // align it (no trace is recorded, but the driver still derives its
        // sampling stride from it).
        brun.trace_interval = coarse;
        let bquanta = total_quanta(&bsys, &brun) as f64;
        let batched_s = secs_min(trials, || {
            Simulation::new(bsys.clone(), brun.clone()).run();
        });

        let row = Point {
            n,
            qps_serial: quanta / serial_s.max(1e-9),
            qps_pooled: quanta / pooled_s.max(1e-9),
            qps_batched: bquanta / batched_s.max(1e-9),
        };
        log.push_str(&format!(
            "  n={:<4} serial {:>10.0} q/s   pooled {:>10.0} q/s   batched {:>10.0} q/s\n",
            row.n, row.qps_serial, row.qps_pooled, row.qps_batched
        ));

        // The kernel-vs-legacy comparison lives at the paper's 3-domain
        // package: same config, serial executor, legacy stepper path.
        if n == 3 {
            let legacy_s = secs_min(trials, || {
                Simulation::new(
                    sys.clone(),
                    run.clone().with_stepper(StepperPath::Legacy),
                )
                .run();
            });
            let qps_legacy = quanta / legacy_s.max(1e-9);
            let ratio = row.qps_serial / qps_legacy.max(1e-9);
            log.push_str(&format!(
                "  n=3    legacy {qps_legacy:>10.0} q/s   kernel_vs_legacy {ratio:.2}x\n"
            ));
            legacy = Some((qps_legacy, ratio));
        }
        rows.push(row);
    }

    let mut json = format!(
        "{{\n  \"schema\": \"hcapp.bench-kernel\",\n  \"version\": 1,\n  \
         \"ms\": {ms},\n  \"workers\": {workers},\n  \"trials\": {trials}"
    );
    for row in &rows {
        json.push_str(&format!(
            ",\n  \"qps_serial_{0}\": {1:.1},\n  \"qps_pooled_{0}\": {2:.1},\n  \
             \"qps_batched_{0}\": {3:.1}",
            row.n, row.qps_serial, row.qps_pooled, row.qps_batched
        ));
    }
    if let Some((qps_legacy, ratio)) = legacy {
        json.push_str(&format!(
            ",\n  \"qps_legacy_3\": {qps_legacy:.1},\n  \"kernel_vs_legacy\": {ratio:.3}"
        ));
    }
    json.push_str("\n}\n");

    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&out_path, &json).map_err(|e| ArgError::BadValue {
        flag: "out".into(),
        value: format!("{out_path}: {e}"),
        expected: "a writable path",
    })?;
    log.push_str(&format!("wrote {out_path}\n"));
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cli(s: &str) -> Result<String, ArgError> {
        let toks: Vec<String> = s.split_whitespace().map(|t| t.to_string()).collect();
        execute(&Args::parse(&toks).unwrap())
    }

    #[test]
    fn split_matches_scaling_study_shapes() {
        assert_eq!(split(3), (1, 1, 1));
        assert_eq!(split(16), (6, 5, 5));
        assert_eq!(split(64), (22, 21, 21));
        assert_eq!(split(256), (86, 85, 85));
        assert_eq!(split(1), (1, 0, 0));
    }

    #[test]
    fn smoke_point_writes_report_with_kernel_vs_legacy() {
        let path = std::env::temp_dir().join("hcapp_bench_kernel_test.json");
        let _ = std::fs::remove_file(&path);
        let out = run_cli(&format!(
            "--points 3 --ms 1 --trials 1 --out {}",
            path.display()
        ))
        .unwrap();
        assert!(out.contains("kernel_vs_legacy"));
        let body = std::fs::read_to_string(&path).unwrap();
        for key in [
            "hcapp.bench-kernel",
            "qps_serial_3",
            "qps_pooled_3",
            "qps_batched_3",
            "qps_legacy_3",
            "kernel_vs_legacy",
        ] {
            assert!(body.contains(key), "missing {key} in {body}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn zero_domain_point_is_a_flag_error() {
        let e = run_cli("--points 0 --ms 1 --trials 1").unwrap_err();
        assert!(e.to_string().contains("at least one chiplet"));
    }

    #[test]
    fn malformed_points_list_is_a_flag_error() {
        let e = run_cli("--points 3;16 --ms 1").unwrap_err();
        assert!(e.to_string().contains("comma-separated"));
    }
}

//! `hcapp compare` — two schemes, side by side, on the same workload.
//!
//! The decision a designer actually faces: "what do I give up if I use the
//! cheaper controller?" One run per scheme plus the fixed baseline for
//! speedups, one table.

use hcapp::coordinator::Simulation;
use hcapp::scheme::ControlScheme;
use hcapp_metrics::violation::classify;
use hcapp_sim_core::report::Table;

use crate::args::{ArgError, Args};
use crate::commands::shared;

fn scheme_from(args: &Args, flag: &str, default: &str) -> Result<ControlScheme, ArgError> {
    let value = args.string(flag, default)?;
    let sub = Args::parse(&["--scheme".to_string(), value]).expect("literal flags");
    shared::scheme(&sub)
}

/// Execute `hcapp compare`.
pub fn execute(args: &Args) -> Result<String, ArgError> {
    // Reuse the shared builder for workload/limit/toggles; its --scheme is
    // ignored in favour of --a/--b.
    let (sys, run, limit) = shared::build(args)?;
    let a = scheme_from(args, "a", "hcapp")?;
    let b = scheme_from(args, "b", "rapl")?;
    args.finish()?;

    let mut outs = Vec::new();
    for scheme in [ControlScheme::fixed_baseline(), a, b] {
        let mut run = run.clone();
        run.scheme = scheme;
        outs.push(Simulation::new(sys.clone(), run).run());
    }
    let baseline = outs.remove(0);

    let mut t = Table::new(
        format!(
            "{} vs {} (limit {:.0} over {}, {})",
            a, b, limit.budget, limit.window, run.duration
        ),
        &["metric", a.name(), b.name()],
    );
    let ra = outs[0].max_ratio(&limit).unwrap_or(0.0);
    let rb = outs[1].max_ratio(&limit).unwrap_or(0.0);
    t.add_row(vec![
        "max power / limit".into(),
        format!("{ra:.3} [{}]", classify(ra).marker()),
        format!("{rb:.3} [{}]", classify(rb).marker()),
    ]);
    t.add_row(vec![
        "PPE".into(),
        format!("{:.1}%", outs[0].ppe(limit.budget) * 100.0),
        format!("{:.1}%", outs[1].ppe(limit.budget) * 100.0),
    ]);
    t.add_row(vec![
        "speedup vs fixed (Eq. 3)".into(),
        format!("{:.3}x", outs[0].speedup_vs(&baseline)),
        format!("{:.3}x", outs[1].speedup_vs(&baseline)),
    ]);
    t.add_row(vec![
        "avg power".into(),
        format!("{:.1}", outs[0].avg_power),
        format!("{:.1}", outs[1].avg_power),
    ]);
    t.add_row(vec![
        "mean global voltage".into(),
        format!("{:.3} V", outs[0].mean_global_voltage),
        format!("{:.3} V", outs[1].mean_global_voltage),
    ]);
    Ok(t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compares_two_schemes() {
        let toks: Vec<String> = "--combo Burst-Burst --a hcapp --b rapl --ms 2"
            .split_whitespace()
            .map(|t| t.to_string())
            .collect();
        let out = execute(&Args::parse(&toks).unwrap()).unwrap();
        assert!(out.contains("HCAPP"));
        assert!(out.contains("RAPL-like"));
        assert!(out.contains("speedup vs fixed"));
    }

    #[test]
    fn defaults_to_hcapp_vs_rapl() {
        let toks: Vec<String> = "--ms 1".split_whitespace().map(|t| t.to_string()).collect();
        let out = execute(&Args::parse(&toks).unwrap()).unwrap();
        assert!(out.contains("HCAPP vs RAPL-like"));
    }
}

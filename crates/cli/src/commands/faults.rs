//! `hcapp faults` — run one configuration under a seeded fault plan and
//! report what the degradation layer did about it: resilience counters,
//! over-budget episode structure, and the PPE given up relative to the
//! clean run.
//!
//! `--check` runs the self-test the CI smoke step uses: a short faulted
//! run executed on both the serial and the pooled executor must produce
//! byte-identical JSONL traces, and every over-budget episode must sit
//! inside the documented reaction bound.

use std::sync::{Arc, Mutex};

use hcapp::coordinator::{RunConfig, Simulation};
use hcapp::limits::PowerLimit;
use hcapp::scheme::ControlScheme;
use hcapp::system::SystemConfig;
use hcapp::DegradedConfig;
use hcapp_faults::FaultPlan;
use hcapp_metrics::{over_cap, ppe_drop};
use hcapp_sim_core::report::Table;
use hcapp_sim_core::time::SimDuration;
use hcapp_telemetry::{jsonl, RingTracer, SharedTracer};
use hcapp_workloads::combos::combo_by_name;

use crate::args::{ArgError, Args};
use crate::commands::shared;

/// Worst-case slew-down stretch from a `vr_slew_derate` fault
/// (1 / `MIN_SLEW_DERATE`).
const SLEW_STRETCH: u32 = 4;

fn bad(flag: &str, value: String, expected: &'static str) -> ArgError {
    ArgError::BadValue {
        flag: flag.to_string(),
        value,
        expected,
    }
}

/// The contract from DESIGN.md: the longest tolerated over-budget episode
/// under any valid plan. Shared with `hcapp soak`, whose stitched runs must
/// honor the same bound.
pub(crate) fn reaction_bound() -> SimDuration {
    SimDuration::from_micros(u64::from(
        DegradedConfig::default().reaction_quanta() * SLEW_STRETCH,
    ))
}

/// Execute `hcapp faults`.
pub fn execute(args: &Args) -> Result<String, ArgError> {
    if args.switch("check")? {
        let seed = args.u64("seed", 7)?;
        args.finish()?;
        return check(seed);
    }

    let (sys, run, limit) = shared::build(args)?;
    let seed = args.u64("seed", 11)?;
    let plan_name = args.string("plan", "moderate")?;
    let workers = shared::parallel_workers(args)?;
    args.finish()?;
    let plan = FaultPlan::preset(&plan_name, seed)
        .ok_or_else(|| bad("plan", plan_name.clone(), hcapp_faults::PRESET_LIST))?;

    let go = |run: RunConfig| shared::execute_sim(Simulation::new(sys.clone(), run), workers);
    let clean = go(run.clone().with_trace());
    let faulted = go(run.with_trace().with_faults(plan));

    let trace = faulted
        .trace
        .as_ref()
        .expect("invariant: with_trace always records a trace");
    let over = over_cap(trace, limit.budget.value());
    let r = faulted.resilience;
    let provisioned = limit.budget;

    let mut t = Table::new(
        format!(
            "{} under plan '{plan_name}' (seed {seed}, limit {:.0})",
            faulted.scheme, limit.budget
        ),
        &["metric", "clean", "faulted"],
    );
    t.add_row(vec![
        "avg power".into(),
        format!("{:.2}", clean.avg_power),
        format!("{:.2}", faulted.avg_power),
    ]);
    t.add_row(vec![
        "PPE".into(),
        format!("{:.4}", clean.ppe(provisioned)),
        format!("{:.4}", faulted.ppe(provisioned)),
    ]);
    t.add_row(vec![
        "PPE drop".into(),
        "-".into(),
        format!(
            "{:.4}",
            ppe_drop(clean.ppe(provisioned), faulted.ppe(provisioned))
        ),
    ]);
    t.add_row(vec![
        "fault episodes injected".into(),
        "0".into(),
        r.faults_injected.to_string(),
    ]);
    t.add_row(vec![
        "health transitions".into(),
        "0".into(),
        r.health_transitions.to_string(),
    ]);
    t.add_row(vec![
        "emergency engagements".into(),
        "0".into(),
        r.emergency_engagements.to_string(),
    ]);
    t.add_row(vec![
        "emergency quanta".into(),
        "0".into(),
        r.emergency_quanta.to_string(),
    ]);
    t.add_row(vec![
        "over-budget episodes".into(),
        "-".into(),
        over.episodes.to_string(),
    ]);
    t.add_row(vec![
        "longest over-budget".into(),
        "-".into(),
        format!("{}", over.longest),
    ]);
    t.add_row(vec![
        "time over budget".into(),
        "-".into(),
        format!("{:.3}%", over.over_fraction() * 100.0),
    ]);
    t.add_row(vec![
        format!("within reaction bound ({})", reaction_bound()),
        "-".into(),
        if over.longest <= reaction_bound() {
            "yes".into()
        } else {
            "NO".into()
        },
    ]);
    Ok(t.render())
}

/// `hcapp faults --check`: a faulted run must be deterministic across
/// executors and must respect the reaction bound.
fn check(seed: u64) -> Result<String, ArgError> {
    let fail = |msg: String| bad("check", msg, "a self-consistent fault campaign");
    let limit = PowerLimit::package_pin();
    let combo = combo_by_name("Hi-Hi").expect("known combo");
    let traced = |workers: Option<usize>| {
        let sys = SystemConfig::paper_system(combo, seed);
        let ring = Arc::new(Mutex::new(RingTracer::new(1 << 16)));
        let run = RunConfig::new(
            SimDuration::from_millis(2),
            ControlScheme::Hcapp,
            limit.guardbanded_target(),
        )
        .with_trace()
        .with_faults(FaultPlan::moderate(seed))
        .with_tracer(ring.clone() as SharedTracer);
        let outcome = shared::execute_sim(Simulation::new(sys, run), workers);
        let events = ring
            .lock()
            .expect("invariant: tracer mutex never poisoned")
            .drain();
        (outcome, jsonl::export(&events, &[("check-seed", &seed.to_string())]))
    };

    let (ser, ser_text) = traced(None);
    let (_, par_text) = traced(Some(3));
    if ser_text != par_text {
        return Err(fail(format!(
            "serial and pooled traces differ under seed {seed} \
             ({} vs {} bytes)",
            ser_text.len(),
            par_text.len()
        )));
    }
    jsonl::validate(&ser_text)
        .map_err(|e| fail(format!("faulted trace failed validation: {e}")))?;

    let trace = ser
        .trace
        .as_ref()
        .expect("invariant: with_trace always records a trace");
    let over = over_cap(trace, limit.budget.value());
    let bound = reaction_bound();
    if over.longest > bound {
        return Err(fail(format!(
            "over-budget episode {} exceeds the reaction bound {bound}",
            over.longest
        )));
    }
    if ser.resilience.faults_injected == 0 {
        return Err(fail(
            "moderate plan injected no faults — injector is dead".to_string(),
        ));
    }

    Ok(format!(
        "faults --check ok (seed {seed}): {} fault episodes, \
         {} health transitions, longest over-budget {} <= bound {}, \
         serial == pooled ({} trace bytes)\n",
        ser.resilience.faults_injected,
        ser.resilience.health_transitions,
        over.longest,
        bound,
        ser_text.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cli(s: &str) -> Result<String, ArgError> {
        let toks: Vec<String> = s.split_whitespace().map(|t| t.to_string()).collect();
        execute(&Args::parse(&toks).unwrap())
    }

    #[test]
    fn check_mode_passes() {
        let out = run_cli("--check --seed 7").unwrap();
        assert!(out.contains("faults --check ok"));
        assert!(out.contains("serial == pooled"));
    }

    #[test]
    fn reports_a_campaign_table() {
        let out = run_cli("--combo Hi-Hi --ms 2 --plan severe --seed 3").unwrap();
        assert!(out.contains("fault episodes injected"));
        assert!(out.contains("within reaction bound"));
        assert!(out.contains("yes"));
    }

    #[test]
    fn quiet_plan_drops_no_ppe() {
        let out = run_cli("--combo Low-Low --ms 2 --plan quiet").unwrap();
        assert!(out.contains("PPE drop"));
        assert!(out.contains("0.0000"));
    }

    #[test]
    fn unknown_plan_rejected() {
        let e = run_cli("--combo Hi-Hi --ms 1 --plan loud").unwrap_err();
        assert!(e.to_string().contains("plan"));
    }

    #[test]
    fn unknown_plan_error_lists_every_valid_preset() {
        let msg = run_cli("--combo Hi-Hi --ms 1 --plan loud")
            .unwrap_err()
            .to_string();
        for name in hcapp_faults::PRESET_NAMES {
            assert!(msg.contains(name), "error {msg:?} does not list preset {name}");
        }
    }
}

//! `hcapp fuzz` — the deterministic config-space fuzzer.
//!
//! Four modes:
//!
//! * default — a seeded campaign (`--seed`, `--cases`): generate cases,
//!   run every differential + metamorphic oracle leg, shrink any failure,
//!   print the byte-stable campaign log. Nonzero exit on any failure.
//! * `--smoke` — the fixed-seed CI corpus (seed `0xC0FFEE`, 24 cases,
//!   capped at 32): `scripts/check.sh` runs it twice and byte-compares the
//!   logs, so determinism itself is gated, not just correctness.
//! * `--plant pooled|cache` — the self-test: plant a known defect, verify
//!   the oracle catches it, shrink it to a minimal repro, write that as an
//!   `hcapp.fuzzcase` file and verify `--replay` of the written bytes
//!   reproduces the catch.
//! * `--replay PATH` — rerun a committed `hcapp.fuzzcase` exactly; exit
//!   nonzero (listing the failing legs) if it still fails.

use std::fs;
use std::path::PathBuf;

use hcapp_fuzz::case::FuzzCase;
use hcapp_fuzz::{check_case, rng, run_campaign, shrink, CampaignConfig, Plant};

use crate::args::{ArgError, Args};

/// Default campaign seed (also the smoke corpus seed).
const DEFAULT_SEED: u64 = 0xC0FFEE;
/// Smoke corpus size; `--cases` is clamped to [`SMOKE_CAP`] in smoke mode
/// so the CI gate stays bounded.
const SMOKE_CASES: u64 = 24;
/// Hard cap on smoke-mode cases.
const SMOKE_CAP: u64 = 32;

fn bad(flag: &str, value: String, expected: &'static str) -> ArgError {
    ArgError::BadValue {
        flag: flag.to_string(),
        value,
        expected,
    }
}

fn fail(msg: String) -> ArgError {
    ArgError::Failed(msg)
}

/// Execute `hcapp fuzz`.
pub fn execute(args: &Args) -> Result<String, ArgError> {
    let replay = args.opt_string("replay")?;
    let plant = args.opt_string("plant")?;
    let smoke = args.switch("smoke")?;
    let seed = args.u64("seed", DEFAULT_SEED)?;
    let cases = args.u64("cases", if smoke { SMOKE_CASES } else { 64 })?;
    let out = args.opt_string("out")?;
    args.finish()?;

    if let Some(path) = replay {
        return replay_case(&path);
    }
    if let Some(kind) = plant {
        return plant_and_catch(&kind, seed, out);
    }
    let cfg = CampaignConfig {
        seed,
        cases: if smoke { cases.min(SMOKE_CAP).max(1) } else { cases.max(1) },
        plant: Plant::None,
    };
    let report = run_campaign(&cfg);
    if report.clean() {
        Ok(report.log)
    } else {
        Err(fail(format!(
            "{}fuzz FAILED: {} of {} cases diverged",
            report.log,
            report.findings.len(),
            report.cases
        )))
    }
}

/// `--replay PATH`: decode a committed fuzzcase and rerun the full oracle
/// set over it.
fn replay_case(path: &str) -> Result<String, ArgError> {
    let text = fs::read_to_string(path)
        .map_err(|e| fail(format!("fuzz: cannot read {path}: {e}")))?;
    let case = FuzzCase::decode(&text).map_err(|e| fail(format!("fuzz: {path}: {e}")))?;
    let failures = check_case(&case);
    if failures.is_empty() {
        Ok(format!("fuzzcase ok: {} passes every oracle leg\n", case.brief()))
    } else {
        let mut msg = format!("fuzzcase FAILS ({}):\n", case.brief());
        for f in &failures {
            msg.push_str(&format!("  {f}\n"));
        }
        Err(fail(msg))
    }
}

/// `--plant pooled|cache`: verify the whole catch → shrink → emit →
/// replay pipeline against a defect we know is there.
fn plant_and_catch(kind: &str, seed: u64, out: Option<String>) -> Result<String, ArgError> {
    let plant = match kind {
        "pooled" => Plant::PooledBitflip,
        "cache" => Plant::CacheTruncate,
        _ => {
            return Err(bad(
                "plant",
                kind.to_string(),
                "pooled (executor bitflip) or cache (torn cache entry)",
            ))
        }
    };
    let mut case = hcapp_fuzz::generate(rng::derive(seed, 0));
    case.plant = plant;
    let failures = check_case(&case);
    if failures.is_empty() {
        return Err(fail(format!(
            "fuzz: planted defect `{}` went UNDETECTED on {}",
            plant.tag(),
            case.brief()
        )));
    }
    let shrunk = shrink(&case);
    let still = check_case(&shrunk);
    if still.is_empty() {
        return Err(fail(
            "fuzz: shrinking lost the planted failure".to_string(),
        ));
    }
    let path = PathBuf::from(
        out.unwrap_or_else(|| format!("results/fuzz/planted-{}.fuzzcase", plant.tag())),
    );
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)
            .map_err(|e| fail(format!("fuzz: cannot create {}: {e}", dir.display())))?;
    }
    fs::write(&path, shrunk.encode())
        .map_err(|e| fail(format!("fuzz: cannot write {}: {e}", path.display())))?;
    // Close the loop: the written bytes must decode and reproduce.
    let back = FuzzCase::decode(
        &fs::read_to_string(&path)
            .map_err(|e| fail(format!("fuzz: cannot re-read {}: {e}", path.display())))?,
    )
    .map_err(|e| fail(format!("fuzz: written fuzzcase does not decode: {e}")))?;
    let replayed = check_case(&back);
    if replayed.is_empty() {
        return Err(fail(format!(
            "fuzz: replay of {} does NOT reproduce the failure",
            path.display()
        )));
    }
    let mut msg = format!(
        "planted `{}`: caught, shrunk, replay reproduces\n  repro: {}\n  written: {}\n",
        plant.tag(),
        shrunk.brief(),
        path.display()
    );
    for f in &replayed {
        msg.push_str(&format!("  {f}\n"));
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cli(s: &str) -> Result<String, ArgError> {
        let toks: Vec<String> = s.split_whitespace().map(|t| t.to_string()).collect();
        execute(&Args::parse(&toks).unwrap())
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hcapp_fuzz_cmd_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn smoke_corpus_is_clean_and_byte_stable() {
        let a = run_cli("--smoke --cases 3").unwrap();
        let b = run_cli("--smoke --cases 3").unwrap();
        assert_eq!(a, b);
        assert!(a.contains("campaign done: 3 cases, 0 failing"), "{a}");
        assert!(a.contains(&format!("{DEFAULT_SEED:#018x}")), "{a}");
    }

    #[test]
    fn plant_catch_shrink_replay_closes_the_loop() {
        let dir = scratch("plant");
        let out = dir.join("repro.fuzzcase");
        let msg = run_cli(&format!("--plant pooled --out {}", out.display())).unwrap();
        assert!(msg.contains("caught, shrunk, replay reproduces"), "{msg}");
        assert!(out.exists());
        // Replaying the emitted repro fails loudly, naming the leg.
        let err = run_cli(&format!("--replay {}", out.display()))
            .unwrap_err()
            .to_string();
        assert!(err.contains("fuzzcase FAILS"), "{err}");
        assert!(err.contains("pooled"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_of_a_clean_case_passes() {
        let dir = scratch("replay");
        let case = hcapp_fuzz::generate(rng::derive(DEFAULT_SEED, 1));
        let path = dir.join("clean.fuzzcase");
        fs::write(&path, case.encode()).unwrap();
        let msg = run_cli(&format!("--replay {}", path.display())).unwrap();
        assert!(msg.contains("passes every oracle leg"), "{msg}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_plant_kind_names_the_choices() {
        let e = run_cli("--plant gremlin").unwrap_err().to_string();
        assert!(e.contains("pooled"), "{e}");
        assert!(e.contains("cache"), "{e}");
    }

    #[test]
    fn damaged_fuzzcase_is_rejected_with_the_reason() {
        let dir = scratch("damaged");
        let path = dir.join("bad.fuzzcase");
        fs::write(&path, "hcapp.fuzzcase v1\nseed banana\n").unwrap();
        let e = run_cli(&format!("--replay {}", path.display()))
            .unwrap_err()
            .to_string();
        assert!(e.contains("bad integer"), "{e}");
        let _ = fs::remove_dir_all(&dir);
    }
}

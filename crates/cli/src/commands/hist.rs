//! `hcapp hist` — power histogram of one run.
//!
//! Shows *why* a scheme has its PPE: the fixed baseline's distribution has
//! a long right tail the pins are provisioned for; HCAPP's is pinned near
//! the target.

use hcapp::coordinator::Simulation;
use hcapp_metrics::histogram::{percentiles, PowerHistogram};

use crate::args::{ArgError, Args};
use crate::commands::shared;

/// Execute `hcapp hist`.
pub fn execute(args: &Args) -> Result<String, ArgError> {
    let (sys, run, limit) = shared::build(args)?;
    let bins = args.u64("bins", 12)? as usize;
    args.finish()?;

    let run = run.with_trace();
    let scheme = run.scheme;
    let out = Simulation::new(sys, run).run();
    let trace = out.trace.expect("trace recorded");

    let hi = limit.budget.value() * 1.2;
    let h = PowerHistogram::from_series(&trace, 0.0, hi, bins.max(2));
    let mut rendered = h
        .to_table(&format!(
            "package power distribution — {} (1 us samples)",
            scheme
        ))
        .render();

    let ps = percentiles(trace.values(), &[0.50, 0.95, 0.99, 1.0]);
    rendered.push_str(&format!(
        "\np50 {:.1} W   p95 {:.1} W   p99 {:.1} W   max {:.1} W\n",
        ps[0], ps[1], ps[2], ps[3]
    ));
    rendered.push_str(&format!(
        "time at/above the {:.0} budget: {:.2}%\n",
        limit.budget,
        h.fraction_at_or_above(limit.budget.value()) * 100.0
    ));
    Ok(rendered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_renders_with_percentiles() {
        let toks: Vec<String> = "--combo Hi-Hi --scheme fixed --ms 2 --bins 8"
            .split_whitespace()
            .map(|t| t.to_string())
            .collect();
        let out = execute(&Args::parse(&toks).unwrap()).unwrap();
        assert!(out.contains("p95"));
        assert!(out.contains("power distribution"));
        assert!(out.contains('#'), "expected histogram bars: {out}");
    }
}

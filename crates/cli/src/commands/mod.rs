//! CLI subcommands.

pub mod analyze;
pub mod bench;
pub mod compare;
pub mod faults;
pub mod fuzz;
pub mod hist;
pub mod record;
pub mod run;
pub mod sanitize;
pub mod shared;
pub mod soak;
pub mod sweep;
pub mod trace;
pub mod tune;

use hcapp::scheme::ControlScheme;
use hcapp_workloads::benchmarks::Benchmark;
use hcapp_workloads::combos::combo_suite;

/// `hcapp help`.
pub fn help() -> String {
    "\
hcapp — heterogeneous 2.5D power-capping simulator (HCAPP, ICPP'20)

USAGE:
    hcapp <command> [--flag value]...

COMMANDS:
    run     simulate one run
            --combo NAME | --cpu BENCH --gpu BENCH   workload selection
            --scheme hcapp|rapl|sw|fixed|custom:<us> control scheme
            --ms N (50)      --seed N (11)           duration / seed
            --budget W (100) --window-us N (20)      power limit
            --priority cpu|gpu|sha                   §5.3 static priority
            --cpu-trace PATH --gpu-trace PATH        replay recorded traces
            --memory                                 add a fixed-voltage HBM stack
            --adversarial-accel                      §3.3.3 adversarial accelerator
            --ripple moderate|severe                 dirty-rail injection
            --thermal                                §3.3 thermal guards
            --parallel N                             pooled executor with N
                                                     workers (0/absent = serial)
            --trace PATH --voltage-trace PATH        CSV traces
    sweep   run the Table 3 suite (results memoized in the sweep cache)
            --scheme LIST (hcapp,rapl,sw)  --ms N (50)  --budget/--window-us
            --parallel N (one per core)   worker threads
            --no-cache                    bypass the result cache
            --cache-dir PATH (results/cache)  relocate the cache
            --wipe-cache                  clear the cache before running
    compare two schemes side by side (run flags + --a SCHEME --b SCHEME)
    hist    power histogram of one run (run flags + --bins N)
    tune    §3.1 PID tuning recipe (--ms N (20) --seed N)
    trace   run with the structured tracer and export JSONL events
            (run flags) --out PATH (results/trace.jsonl)
            --events N (65536)    tracer ring capacity
            --check PATH          validate an existing trace instead
    record  record a benchmark's phase trace (JSONL; --legacy for CSV)
            --bench NAME --work-ms N (50) --seed N --out PATH --legacy
    analyze control-loop analytics: settling/overshoot/steady-state error,
            over-budget episodes, throttle residency (schema hcapp.report)
            (run flags) --retarget MS:W[,MS:W...]     live run (default mode)
            --trace PATH                              replay a recorded trace
            --format json|md      --out PATH          report rendering
            --diff OLD --against NEW --tolerance T (0.1)  exit nonzero on
                                                      per-metric regressions
            --assert CHECKS --report FILE             exit nonzero on failed
                                                      min/max bounds
    faults  run under a seeded fault plan, report resilience vs the clean run
            (run flags) --plan quiet|light|moderate|severe (moderate)
            --check               executor-determinism + cap-bound self-test
    sanitize schedule-permutation sanitizer: re-run the pooled executor under
            adversarially permuted worker reply orders; every outcome must be
            byte-identical to the serial run
            (run flags) --orderings N (16)   permutation seeds per worker count
            --parallel N          single worker count (absent = 2 and 3)
    soak    chaos soak: kill a checkpointing run at seeded quanta, resume
            from hcapp.ckpt, gate the stitched outcome/trace/report against
            the uninterrupted oracle at tolerance zero
            (run flags) --plan quiet|light|moderate|severe|none (moderate)
            --kills N (3)         kill/resume links per campaign
            --every N (64)        checkpoint cadence in control quanta
            --dir PATH (results/soak)  checkpoint + trace directory
            --keep                retain hcapp.ckpt / hcapp.trace artifacts
            --worker [--stop-at Q]  single resumable link (scripts/soak.sh
                                  SIGKILLs these to soak real process death)
    bench   quantum-stepper scaling bench: quanta/sec per package size under
            the serial, pooled and batched executors, plus the legacy-stepper
            baseline at 3 domains (schema hcapp.bench-kernel)
            --points LIST (3,16,64,256)   domain counts to sweep
            --ms N (10)      simulated milliseconds per run
            --workers N (4)  --trials N (3)   pool size / best-of-N
            --out PATH (results/BENCH_kernel.json)
    fuzz    deterministic config-space fuzzer: differential legs (serial vs
            pooled vs permuted vs batched vs kill-and-resume vs cache) plus
            metamorphic paper invariants, with failing-case shrinking
            --seed N (0xC0FFEE)   --cases N (64)      campaign knobs
            --smoke               fixed-seed CI corpus (byte-stable log)
            --plant pooled|cache [--out PATH]  plant a defect, verify the
                                  catch -> shrink -> replay pipeline
            --replay PATH         rerun a committed hcapp.fuzzcase exactly
    list    available combos, benchmarks and schemes
    help    this text
"
    .to_string()
}

/// `hcapp list`.
pub fn list() -> String {
    let mut out = String::from("combos (Table 3):\n");
    for c in combo_suite() {
        out.push_str(&format!(
            "  {:12} cpu={} gpu={}\n",
            c.name,
            c.cpu.name(),
            c.gpu.name()
        ));
    }
    out.push_str("\nbenchmarks (paper subset + extended):\n");
    for b in Benchmark::all() {
        out.push_str(&format!(
            "  {:14} {} ({:?})\n",
            b.name(),
            if b.is_cpu() { "CPU" } else { "GPU" },
            b.class()
        ));
    }
    out.push_str("\nschemes:\n");
    for s in ControlScheme::all() {
        let period = s
            .control_period()
            .map(|p| format!("{p}"))
            .unwrap_or_else(|| "static".to_string());
        out.push_str(&format!("  {:18} period {}\n", s.name(), period));
    }
    out.push_str("  custom:<us>        HCAPP stack at an arbitrary period\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_mentions_commands() {
        let h = help();
        for needle in ["run", "sweep", "hist", "tune", "list"] {
            assert!(h.contains(needle));
        }
    }

    #[test]
    fn list_mentions_everything() {
        let l = list();
        assert!(l.contains("Hi-Hi"));
        assert!(l.contains("hotspot"));
        assert!(l.contains("RAPL-like"));
        assert!(l.contains("custom:<us>"));
    }
}

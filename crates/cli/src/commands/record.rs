//! `hcapp record` — materialize a benchmark's phase trace to disk.
//!
//! The default output is self-describing JSONL (schema
//! `hcapp.phase-trace`); `--legacy` keeps the original bare CSV. Either
//! form replays bit-exactly through `hcapp run --cpu-trace` /
//! `--gpu-trace`, and both are the interchange formats for user-measured
//! traces.

use hcapp_sim_core::time::SimDuration;
use hcapp_workloads::benchmarks::Benchmark;
use hcapp_workloads::trace::PhaseTrace;

use crate::args::{ArgError, Args};
use crate::commands::shared;

/// Execute `hcapp record`.
pub fn execute(args: &Args) -> Result<String, ArgError> {
    let bench_name = args.string("bench", "ferret")?;
    let work_ms = args.u64("work-ms", 50)?.max(1);
    let seed = args.u64("seed", 11)?;
    let legacy = args.switch("legacy")?;
    let ext = if legacy { "csv" } else { "jsonl" };
    let out = args.string("out", &format!("results/{bench_name}.trace.{ext}"))?;
    args.finish()?;

    let bench = Benchmark::by_name(&bench_name).ok_or_else(|| ArgError::BadValue {
        flag: "bench".into(),
        value: bench_name.clone(),
        expected: "a benchmark name (see `hcapp list`)",
    })?;
    let total_ns = SimDuration::from_millis(work_ms).as_nanos() as f64;
    let trace = PhaseTrace::record(bench.spec(), seed, 0, total_ns);
    let body = if legacy {
        trace.to_csv()
    } else {
        shared::phase_trace_to_jsonl(&trace)
    };
    shared::write_output(&out, &body).map_err(|e| ArgError::BadValue {
        flag: "out".into(),
        value: format!("{out}: {e}"),
        expected: "a writable path",
    })?;
    Ok(format!(
        "recorded {} phases ({:.1} ms of nominal work) from {} to {} ({})\n",
        trace.phases().len(),
        trace.total_work_ns() * 1e-6,
        bench.name(),
        out,
        if legacy { "legacy CSV" } else { "JSONL" },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(s: &str) -> Result<String, ArgError> {
        let toks: Vec<String> = s.split_whitespace().map(|t| t.to_string()).collect();
        execute(&Args::parse(&toks).unwrap())
    }

    #[test]
    fn records_a_replayable_jsonl_by_default() {
        let path = std::env::temp_dir().join("hcapp_record_test.jsonl");
        let _ = std::fs::remove_file(&path);
        let msg = record(&format!("--bench bfs --work-ms 5 --out {}", path.display())).unwrap();
        assert!(msg.contains("bfs"));
        assert!(msg.contains("JSONL"));
        let text = std::fs::read_to_string(&path).unwrap();
        let trace = shared::phase_trace_from_jsonl("bfs", &text).unwrap();
        assert!(trace.total_work_ns() >= 5_000_000.0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn legacy_flag_keeps_the_csv_format() {
        let path = std::env::temp_dir().join("hcapp_record_test.csv");
        let _ = std::fs::remove_file(&path);
        let msg = record(&format!(
            "--bench bfs --work-ms 5 --legacy --out {}",
            path.display()
        ))
        .unwrap();
        assert!(msg.contains("legacy CSV"));
        let csv = std::fs::read_to_string(&path).unwrap();
        let trace = PhaseTrace::from_csv("bfs", &csv).unwrap();
        assert!(trace.total_work_ns() >= 5_000_000.0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn both_formats_describe_the_same_phases() {
        let bench = Benchmark::by_name("ferret").unwrap();
        let trace = PhaseTrace::record(bench.spec(), 3, 0, 1_000_000.0);
        let via_jsonl =
            shared::phase_trace_from_jsonl("ferret", &shared::phase_trace_to_jsonl(&trace))
                .unwrap();
        let via_csv = PhaseTrace::from_csv("ferret", &trace.to_csv()).unwrap();
        assert_eq!(via_jsonl.phases().len(), via_csv.phases().len());
        // JSONL keeps full f64 precision; CSV rounds to fixed decimals.
        for (a, b) in via_jsonl.phases().iter().zip(trace.phases()) {
            assert_eq!(a, b, "JSONL round-trip must be exact");
        }
    }

    #[test]
    fn unknown_benchmark_rejected() {
        assert!(record("--bench nope").is_err());
    }
}

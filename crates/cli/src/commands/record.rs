//! `hcapp record` — materialize a benchmark's phase trace as CSV.
//!
//! The recorded file replays bit-exactly through `hcapp run --cpu-trace` /
//! `--gpu-trace`, and is the interchange format for user-measured traces.

use hcapp_sim_core::time::SimDuration;
use hcapp_workloads::benchmarks::Benchmark;
use hcapp_workloads::trace::PhaseTrace;

use crate::args::{ArgError, Args};

/// Execute `hcapp record`.
pub fn execute(args: &Args) -> Result<String, ArgError> {
    let bench_name = args.string("bench", "ferret")?;
    let work_ms = args.u64("work-ms", 50)?.max(1);
    let seed = args.u64("seed", 11)?;
    let out = args.string("out", &format!("{bench_name}.trace.csv"))?;
    args.finish()?;

    let bench = Benchmark::by_name(&bench_name).ok_or_else(|| ArgError::BadValue {
        flag: "bench".into(),
        value: bench_name.clone(),
        expected: "a benchmark name (see `hcapp list`)",
    })?;
    let total_ns = SimDuration::from_millis(work_ms).as_nanos() as f64;
    let trace = PhaseTrace::record(bench.spec(), seed, 0, total_ns);
    std::fs::write(&out, trace.to_csv()).map_err(|e| ArgError::BadValue {
        flag: "out".into(),
        value: format!("{out}: {e}"),
        expected: "a writable path",
    })?;
    Ok(format!(
        "recorded {} phases ({:.1} ms of nominal work) from {} to {}\n",
        trace.phases().len(),
        trace.total_work_ns() * 1e-6,
        bench.name(),
        out
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_a_replayable_csv() {
        let path = std::env::temp_dir().join("hcapp_record_test.csv");
        let _ = std::fs::remove_file(&path);
        let toks: Vec<String> = format!("--bench bfs --work-ms 5 --out {}", path.display())
            .split_whitespace()
            .map(|t| t.to_string())
            .collect();
        let msg = execute(&Args::parse(&toks).unwrap()).unwrap();
        assert!(msg.contains("bfs"));
        let csv = std::fs::read_to_string(&path).unwrap();
        let trace = PhaseTrace::from_csv("bfs", &csv).unwrap();
        assert!(trace.total_work_ns() >= 5_000_000.0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unknown_benchmark_rejected() {
        let toks: Vec<String> = "--bench nope".split_whitespace().map(|t| t.to_string()).collect();
        assert!(execute(&Args::parse(&toks).unwrap()).is_err());
    }
}

//! `hcapp run` — simulate one configuration and report the §5 metrics.

use hcapp::coordinator::Simulation;
use hcapp_metrics::violation::classify;
use hcapp_sim_core::report::{write_series_csv, Table};

use crate::args::{ArgError, Args};
use crate::commands::shared;

/// Execute `hcapp run`.
pub fn execute(args: &Args) -> Result<String, ArgError> {
    let (sys, mut run, limit) = shared::build(args)?;
    let trace_path = args.opt_string("trace")?;
    let vtrace_path = args.opt_string("voltage-trace")?;
    if trace_path.is_some() {
        run.record_trace = true;
    }
    if vtrace_path.is_some() {
        run.record_voltage_trace = true;
    }
    let workers = shared::parallel_workers(args)?;
    args.finish()?;

    let scheme = run.scheme;
    let duration = run.duration;
    let out = shared::execute_sim(Simulation::new(sys, run), workers);

    if let (Some(path), Some(trace)) = (trace_path, out.trace.as_ref()) {
        let thin = trace.thin_to(10_000);
        let (t, v): (Vec<f64>, Vec<f64>) = thin.iter_us().unzip();
        write_series_csv(&path, "time_us", &t, &[("power_w", v.as_slice())])
            .map_err(|e| ArgError::BadValue {
                flag: "trace".into(),
                value: format!("{path}: {e}"),
                expected: "a writable path",
            })?;
    }
    if let (Some(path), Some(trace)) = (vtrace_path, out.voltage_trace.as_ref()) {
        let thin = trace.thin_to(10_000);
        let (t, v): (Vec<f64>, Vec<f64>) = thin.iter_us().unzip();
        write_series_csv(&path, "time_us", &t, &[("global_volts", v.as_slice())])
            .map_err(|e| ArgError::BadValue {
                flag: "voltage-trace".into(),
                value: format!("{path}: {e}"),
                expected: "a writable path",
            })?;
    }

    let mut t = Table::new(
        format!("{} for {} (limit {:.0} over {})", scheme, duration, limit.budget, limit.window),
        &["metric", "value"],
    );
    t.add_row(vec!["avg power".into(), format!("{:.2}", out.avg_power)]);
    t.add_row(vec![
        "PPE (Eq. 4)".into(),
        format!("{:.1}%", out.ppe(limit.budget) * 100.0),
    ]);
    let ratio = out.max_ratio(&limit).unwrap_or(0.0);
    t.add_row(vec![
        format!("max power / limit ({})", limit.window),
        format!("{ratio:.3} [{}]", classify(ratio).marker()),
    ]);
    t.add_row(vec![
        "mean global voltage".into(),
        format!("{:.3} V", out.mean_global_voltage),
    ]);
    for (kind, work) in &out.work {
        t.add_row(vec![
            format!("{} work", kind.name()),
            format!("{work:.4e}"),
        ]);
    }
    t.add_row(vec!["energy".into(), format!("{:.3} J", out.energy_j)]);
    Ok(t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cli(s: &str) -> Result<String, ArgError> {
        let toks: Vec<String> = s.split_whitespace().map(|t| t.to_string()).collect();
        execute(&Args::parse(&toks).unwrap())
    }

    #[test]
    fn basic_run_reports_metrics() {
        let out = run_cli("--combo Low-Low --ms 2").unwrap();
        assert!(out.contains("avg power"));
        assert!(out.contains("PPE"));
        assert!(out.contains("CPU work"));
        assert!(out.contains("SHA work"));
    }

    #[test]
    fn parallel_executor_via_flag() {
        let out = run_cli("--combo Mid-Mid --ms 2 --parallel 3").unwrap();
        assert!(out.contains("avg power"));
    }

    #[test]
    fn unknown_flag_is_reported() {
        let e = run_cli("--combo Hi-Hi --turbo").unwrap_err();
        assert!(e.to_string().contains("--turbo"));
    }

    #[test]
    fn trace_written_to_disk() {
        let path = std::env::temp_dir().join("hcapp_cli_trace_test.csv");
        let _ = std::fs::remove_file(&path);
        run_cli(&format!("--combo Hi-Hi --ms 2 --trace {}", path.display())).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("time_us,power_w"));
        let _ = std::fs::remove_file(&path);
    }
}

//! `hcapp sanitize` — run the schedule-permutation sanitizer from the
//! command line.
//!
//! Builds one configuration from the shared run flags, then drives
//! [`hcapp::simsan::check_permutations`]: a serial reference run followed
//! by one pooled run per `(ordering seed, worker count)`, every reply
//! schedule adversarially permuted. Exits with an error (non-zero status
//! via the dispatch layer) if any ordering's outcome deviates from the
//! serial bytes — that is a real executor bug, not noise.

use hcapp::simsan::{check_permutations, default_seeds};

use crate::args::{ArgError, Args};
use crate::commands::shared;

/// Execute `hcapp sanitize`.
pub fn execute(args: &Args) -> Result<String, ArgError> {
    let (sys, run, _limit) = shared::build(args)?;
    let orderings = args.u64("orderings", 16)?.max(1) as usize;
    let workers = match shared::parallel_workers(args)? {
        Some(n) => vec![n],
        None => vec![2, 3],
    };
    args.finish()?;

    let report = check_permutations(&sys, &run, &workers, &default_seeds(orderings));

    let mut out = String::new();
    out.push_str(&format!(
        "sanitize: {} permuted ordering(s) ({} seed(s) x workers {:?})\n",
        report.orderings, orderings, report.worker_counts
    ));
    out.push_str(&format!(
        "reference: serial outcome, {} encoded bytes\n",
        report.reference_len
    ));
    if report.clean() {
        out.push_str("result: PASS — every permuted merge matched the serial bytes\n");
        Ok(out)
    } else {
        for m in &report.mismatches {
            out.push_str(&format!(
                "MISMATCH: seed {} with {} worker(s) diverged from serial\n",
                m.seed, m.workers
            ));
        }
        out.push_str(&format!(
            "result: FAIL — {} of {} ordering(s) diverged; reproduce with \
             `hcapp sanitize --parallel <workers> --orderings <n>` on the same flags\n",
            report.mismatches.len(),
            report.orderings
        ));
        Err(ArgError::Failed(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cli(flags: &str) -> Result<String, ArgError> {
        let argv: Vec<String> = flags.split_whitespace().map(|t| t.to_string()).collect();
        execute(&Args::parse(&argv)?)
    }

    #[test]
    fn sanitize_passes_on_the_pinned_executor() {
        let out = run_cli("--combo Low-Low --ms 1 --orderings 4 --parallel 2").unwrap();
        assert!(out.contains("PASS"), "{out}");
        assert!(out.contains("4 permuted ordering(s)"), "{out}");
    }

    #[test]
    fn default_worker_counts_cover_two_and_three() {
        let out = run_cli("--combo Low-Low --ms 1 --orderings 2").unwrap();
        assert!(out.contains("workers [2, 3]"), "{out}");
    }
}

//! Flag decoding shared by the run-like commands, plus the small
//! file-interchange helpers (output paths under `results/`, phase-trace
//! JSONL) that more than one subcommand needs.

use hcapp::controller::thermal_guard::ThermalConfig;
use hcapp::coordinator::{RunConfig, SoftwareConfig};
use hcapp::limits::PowerLimit;
use hcapp::scheme::ControlScheme;
use hcapp::software::ComponentKind;
use hcapp::system::SystemConfig;
use hcapp_pdn::RippleSpec;
use hcapp_sim_core::time::{SimDuration, SimTime};
use hcapp_sim_core::units::Watt;
use hcapp_workloads::benchmarks::Benchmark;
use hcapp_telemetry::json::{self, JsonValue, Obj};
use hcapp_workloads::combos::{combo_by_name, Combo};
use hcapp_workloads::phase::Phase;
use hcapp_workloads::trace::PhaseTrace;

use crate::args::{ArgError, Args};

fn bad(flag: &str, value: String, expected: &'static str) -> ArgError {
    ArgError::BadValue {
        flag: flag.to_string(),
        value,
        expected,
    }
}

/// Decode `--scheme` (`hcapp | rapl | sw | fixed[:volts] | custom:<us>`).
pub fn scheme(args: &Args) -> Result<ControlScheme, ArgError> {
    let s = args.string("scheme", "hcapp")?;
    let lower = s.to_ascii_lowercase();
    match lower.as_str() {
        "hcapp" => Ok(ControlScheme::Hcapp),
        "rapl" | "rapl-like" => Ok(ControlScheme::RaplLike),
        "sw" | "sw-like" | "software" => Ok(ControlScheme::SoftwareLike),
        "fixed" => Ok(ControlScheme::fixed_baseline()),
        other => {
            if let Some(v) = other.strip_prefix("fixed:") {
                let volts: f64 = v
                    .parse()
                    .map_err(|_| bad("scheme", s.clone(), "fixed:<volts>"))?;
                return Ok(ControlScheme::FixedVoltage(
                    hcapp_sim_core::units::Volt::new(volts),
                ));
            }
            if let Some(us) = other.strip_prefix("custom:") {
                let us: u64 = us
                    .parse()
                    .map_err(|_| bad("scheme", s.clone(), "custom:<microseconds>"))?;
                return Ok(ControlScheme::CustomPeriod(SimDuration::from_micros(
                    us.max(1),
                )));
            }
            Err(bad(
                "scheme",
                s,
                "hcapp, rapl, sw, fixed[:volts] or custom:<us>",
            ))
        }
    }
}

/// Decode `--combo` or the `--cpu`/`--gpu` pair.
pub fn combo(args: &Args) -> Result<Combo, ArgError> {
    let named = args.opt_string("combo")?;
    let cpu = args.opt_string("cpu")?;
    let gpu = args.opt_string("gpu")?;
    match (named, cpu, gpu) {
        (Some(name), None, None) => {
            combo_by_name(&name).ok_or_else(|| bad("combo", name, "a Table 3 combo name"))
        }
        (None, Some(c), Some(g)) => {
            let cpu = Benchmark::by_name(&c)
                .filter(|b| b.is_cpu())
                .ok_or_else(|| bad("cpu", c, "a CPU benchmark name"))?;
            let gpu = Benchmark::by_name(&g)
                .filter(|b| !b.is_cpu())
                .ok_or_else(|| bad("gpu", g, "a GPU benchmark name"))?;
            Ok(Combo::new("custom", cpu, gpu))
        }
        (None, None, None) => Ok(combo_by_name("Hi-Hi").expect("default combo")),
        _ => Err(bad(
            "combo",
            "(mixed)".to_string(),
            "either --combo NAME or both --cpu and --gpu",
        )),
    }
}

/// Decode the power limit flags.
pub fn limit(args: &Args) -> Result<PowerLimit, ArgError> {
    let budget = args.f64("budget", 100.0)?;
    let window_us = args.u64("window-us", 20)?;
    if budget <= 0.0 {
        return Err(bad("budget", budget.to_string(), "a positive wattage"));
    }
    Ok(PowerLimit::new(
        Watt::new(budget),
        SimDuration::from_micros(window_us.max(1)),
    ))
}

/// Decode the degraded-mode tuning flags (`--stale-after`,
/// `--stale-dwell`, `--faulted-after`, `--violation-window`,
/// `--safe-ratio`) over the default [`hcapp::DegradedConfig`].
/// Inconsistent values surface as a clean [`ArgError`] through
/// [`hcapp::DegradedConfig::try_validate`] — never as the panicking
/// internal `validate`.
pub fn degraded(args: &Args) -> Result<hcapp::DegradedConfig, ArgError> {
    let mut cfg = hcapp::DegradedConfig::default();
    cfg.stale_after = args.u64("stale-after", u64::from(cfg.stale_after))? as u32;
    cfg.stale_dwell = args.u64("stale-dwell", u64::from(cfg.stale_dwell))? as u32;
    cfg.faulted_after = args.u64("faulted-after", u64::from(cfg.faulted_after))? as u32;
    cfg.violation_window = args.u64("violation-window", u64::from(cfg.violation_window))? as u32;
    cfg.safe_ratio = args.f64("safe-ratio", cfg.safe_ratio)?;
    cfg.try_validate()
        .map_err(|msg| ArgError::Failed(format!("invalid degraded config: {msg}")))?;
    Ok(cfg)
}

/// Decode `--parallel N`: `None` (flag absent or `0`) selects the serial
/// coordinator, `Some(n)` the pooled executor with `n` workers. `--parallel
/// 1` therefore means "pooled with one worker" — useful for isolating
/// executor overhead — and every subcommand decodes the flag identically.
pub fn parallel_workers(args: &Args) -> Result<Option<usize>, ArgError> {
    Ok(match args.u64("parallel", 0)? as usize {
        0 => None,
        n => Some(n),
    })
}

/// Run a built simulation on the executor `--parallel` selected.
pub fn execute_sim(
    sim: hcapp::coordinator::Simulation,
    workers: Option<usize>,
) -> hcapp::outcome::RunOutcome {
    match workers {
        Some(n) => sim.run_parallel(n),
        None => sim.run(),
    }
}

/// Build the system + run configs from the shared flags.
pub fn build(args: &Args) -> Result<(SystemConfig, RunConfig, PowerLimit), ArgError> {
    let combo = combo(args)?;
    let scheme = scheme(args)?;
    let limit = limit(args)?;
    let ms = args.u64("ms", 50)?.max(1);
    let seed = args.u64("seed", 11)?;

    let mut sys = if args.switch("memory")? {
        SystemConfig::paper_system_with_memory(combo, seed)
    } else {
        SystemConfig::paper_system(combo, seed)
    };
    // Recorded-trace overrides for the compute sides. Both interchange
    // formats replay bit-exactly: the JSONL form `hcapp record` writes by
    // default (first byte `{`) and the legacy CSV.
    let load_trace = |flag: &str, path: &str| -> Result<std::sync::Arc<PhaseTrace>, ArgError> {
        let text = std::fs::read_to_string(path).map_err(|e| bad(
            flag,
            format!("{path}: {e}"),
            "a readable trace file (JSONL or CSV)",
        ))?;
        let parsed = if text.trim_start().starts_with('{') {
            phase_trace_from_jsonl(path, &text)
        } else {
            PhaseTrace::from_csv(path.to_string(), &text).map_err(|e| e.to_string())
        };
        parsed
            .map(std::sync::Arc::new)
            .map_err(|e| bad(flag, format!("{path}: {e}"), "a recorded phase trace"))
    };
    if let Some(path) = args.opt_string("cpu-trace")? {
        let trace = load_trace("cpu-trace", &path)?;
        for d in &mut sys.domains {
            if let hcapp::system::DomainSpec::Cpu { workload, .. } = d {
                *workload = trace.clone().into();
            }
        }
    }
    if let Some(path) = args.opt_string("gpu-trace")? {
        let trace = load_trace("gpu-trace", &path)?;
        for d in &mut sys.domains {
            if let hcapp::system::DomainSpec::Gpu { workload, .. } = d {
                *workload = trace.clone().into();
            }
        }
    }
    if args.switch("adversarial-accel")? {
        sys = sys.with_adversarial_accel();
    }
    match args.opt_string("ripple")?.as_deref() {
        None => {}
        Some("moderate") => sys.ripple = Some(RippleSpec::moderate()),
        Some("severe") => sys.ripple = Some(RippleSpec::severe()),
        Some(other) => {
            return Err(bad("ripple", other.to_string(), "moderate or severe"));
        }
    }
    if args.switch("thermal")? {
        sys.thermal = Some(ThermalConfig::default_package());
    }

    let mut run = RunConfig::new(
        SimDuration::from_millis(ms),
        scheme,
        limit.guardbanded_target(),
    )
    .with_degraded(degraded(args)?);
    run.track_windows = vec![
        limit.window,
        SimDuration::from_micros(20),
        SimDuration::from_millis(1),
    ];
    run.track_windows.dedup();
    match args.opt_string("priority")?.as_deref() {
        None => {}
        Some("cpu") => run.software = SoftwareConfig::StaticPriority(ComponentKind::Cpu),
        Some("gpu") => run.software = SoftwareConfig::StaticPriority(ComponentKind::Gpu),
        Some("sha") => run.software = SoftwareConfig::StaticPriority(ComponentKind::Sha),
        Some("dynamic") => run.software = SoftwareConfig::DynamicBacklog,
        Some(other) => {
            return Err(bad("priority", other.to_string(), "cpu, gpu, sha or dynamic"));
        }
    }
    // `--retarget MS:W[,MS:W...]`: schedule mid-run target changes (§5.2's
    // dynamically adjustable limit). Times are milliseconds from run start
    // (fractions allowed), values are raw watts — deliberately *not*
    // guardbanded, so the spec reads exactly as it will appear in the
    // trace's retarget events.
    if let Some(spec) = args.opt_string("retarget")? {
        let mut last: Option<SimTime> = None;
        for part in spec.split(',') {
            let Some((ms_s, w_s)) = part.split_once(':') else {
                return Err(bad("retarget", part.to_string(), "MS:WATTS[,MS:WATTS...]"));
            };
            let at_ms: f64 = ms_s
                .trim()
                .parse()
                .map_err(|_| bad("retarget", part.to_string(), "a numeric millisecond offset"))?;
            let watts: f64 = w_s
                .trim()
                .parse()
                .map_err(|_| bad("retarget", part.to_string(), "a numeric wattage"))?;
            if !(at_ms >= 0.0) || !(watts > 0.0) {
                return Err(bad(
                    "retarget",
                    part.to_string(),
                    "a non-negative time and positive wattage",
                ));
            }
            let at = SimTime::from_nanos((at_ms * 1e6) as u64);
            // Duplicate or rewound timestamps would make the analyzer's
            // epoch fold mis-bucket the run — reject the offending entry
            // by name rather than silently keeping last-writer-wins.
            if last.is_some_and(|prev| at <= prev) {
                return Err(bad(
                    "retarget",
                    part.to_string(),
                    "strictly increasing timestamps",
                ));
            }
            last = Some(at);
            run = run.with_retarget(at, Watt::new(watts));
        }
    }
    Ok((sys, run, limit))
}

/// Write a command's output file, creating parent directories (the CLI
/// defaults its artifacts to `results/`, which need not exist yet).
pub fn write_output(path: &str, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, contents)
}

/// Schema tag for recorded phase traces in JSONL form.
pub const PHASE_TRACE_SCHEMA: &str = "hcapp.phase-trace";
/// Current phase-trace schema version.
pub const PHASE_TRACE_VERSION: u64 = 1;

/// Serialize a phase trace as self-describing JSONL: a header line naming
/// the schema, then one object per phase.
pub fn phase_trace_to_jsonl(trace: &PhaseTrace) -> String {
    let mut out = Obj::new()
        .str("schema", PHASE_TRACE_SCHEMA)
        .int("version", PHASE_TRACE_VERSION)
        .str("bench", trace.name())
        .int("phases", trace.phases().len() as u64)
        .finish();
    out.push('\n');
    for p in trace.phases() {
        out.push_str(
            &Obj::new()
                .num("activity", p.activity)
                .num("mem_intensity", p.mem_intensity)
                .num("work_ns", p.work_ns)
                .finish(),
        );
        out.push('\n');
    }
    out
}

/// Parse a phase trace from the JSONL form written by
/// [`phase_trace_to_jsonl`]. `name` labels the resulting trace.
pub fn phase_trace_from_jsonl(name: &str, text: &str) -> Result<PhaseTrace, String> {
    let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
    let (_, first) = lines.next().ok_or("empty phase trace")?;
    let head = json::parse(first).map_err(|e| format!("header: {e}"))?;
    match head.get("schema").and_then(JsonValue::as_str) {
        Some(s) if s == PHASE_TRACE_SCHEMA => {}
        Some(s) => return Err(format!("unknown schema {s:?} (expected {PHASE_TRACE_SCHEMA:?})")),
        None => return Err("header missing \"schema\"".into()),
    }
    match head.get("version").and_then(JsonValue::as_f64) {
        Some(v) if v == PHASE_TRACE_VERSION as f64 => {}
        other => return Err(format!("unsupported phase-trace version {other:?}")),
    }
    let mut phases = Vec::new();
    for (i, line) in lines {
        let row = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let field = |k: &str| {
            row.get(k)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("line {}: missing numeric {k:?}", i + 1))
        };
        let work_ns = field("work_ns")?;
        if !(work_ns > 0.0) {
            return Err(format!("line {}: non-positive work_ns {work_ns}", i + 1));
        }
        phases.push(Phase::new(field("activity")?, field("mem_intensity")?, work_ns));
    }
    if phases.is_empty() {
        return Err("phase trace has no phases".into());
    }
    Ok(PhaseTrace::new(name, phases))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(&s.split_whitespace().map(|t| t.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn scheme_decoding() {
        assert_eq!(scheme(&parse("--scheme hcapp")).unwrap(), ControlScheme::Hcapp);
        assert_eq!(scheme(&parse("--scheme rapl")).unwrap(), ControlScheme::RaplLike);
        assert_eq!(scheme(&parse("")).unwrap(), ControlScheme::Hcapp);
        assert_eq!(
            scheme(&parse("--scheme custom:10")).unwrap(),
            ControlScheme::CustomPeriod(SimDuration::from_micros(10))
        );
        assert!(scheme(&parse("--scheme warp")).is_err());
    }

    #[test]
    fn combo_decoding() {
        assert_eq!(combo(&parse("--combo hi-hi")).unwrap().name, "Hi-Hi");
        let custom = combo(&parse("--cpu ferret --gpu hotspot")).unwrap();
        assert_eq!(custom.cpu.name(), "ferret");
        assert_eq!(custom.gpu.name(), "hotspot");
        // Wrong side rejected.
        assert!(combo(&parse("--cpu bfs --gpu hotspot")).is_err());
        // Mixing forms rejected.
        assert!(combo(&parse("--combo Hi-Hi --cpu ferret --gpu bfs")).is_err());
    }

    #[test]
    fn limit_decoding() {
        let l = limit(&parse("--budget 120 --window-us 1000")).unwrap();
        assert_eq!(l.budget.value(), 120.0);
        assert_eq!(l.window, SimDuration::from_millis(1));
        assert!(limit(&parse("--budget -5")).is_err());
    }

    #[test]
    fn build_applies_toggles() {
        let (sys, run, _) = build(&parse(
            "--combo Low-Low --scheme rapl --ms 3 --memory --adversarial-accel --ripple severe --thermal --priority gpu",
        ))
        .unwrap();
        assert_eq!(sys.domains.len(), 4, "memory domain added");
        assert!(sys.ripple.is_some());
        assert!(sys.thermal.is_some());
        assert_eq!(run.scheme, ControlScheme::RaplLike);
        assert_eq!(
            run.software,
            SoftwareConfig::StaticPriority(ComponentKind::Gpu)
        );
    }

    #[test]
    fn retarget_decoding() {
        let (_, run, _) = build(&parse("--combo Low-Low --ms 4 --retarget 1:90,2.5:70")).unwrap();
        assert_eq!(
            run.retargets,
            vec![
                (SimTime::from_micros(1000), Watt::new(90.0)),
                (SimTime::from_micros(2500), Watt::new(70.0)),
            ]
        );
        // Malformed specs are flag errors, not panics.
        assert!(build(&parse("--combo Low-Low --retarget nonsense")).is_err());
        assert!(build(&parse("--combo Low-Low --retarget 1:-5")).is_err());
        assert!(build(&parse("--combo Low-Low --retarget 2:70,1:90")).is_err());
        // Duplicate timestamps are rejected too — last-writer-wins would
        // silently shadow the earlier entry and confuse the epoch fold —
        // and the error names the offending entry, not the whole spec.
        let e = build(&parse("--combo Low-Low --retarget 1:90,1:70"))
            .unwrap_err()
            .to_string();
        assert!(e.contains("1:70"), "{e}");
        assert!(e.contains("strictly increasing"), "{e}");
        let e = build(&parse("--combo Low-Low --retarget 2:70,1:90"))
            .unwrap_err()
            .to_string();
        assert!(e.contains("1:90"), "{e}");
        // A single entry at t=0 stays valid.
        assert!(build(&parse("--combo Low-Low --ms 2 --retarget 0:90")).is_ok());
    }

    #[test]
    fn degraded_flags_apply_and_invalid_values_are_arg_errors_not_panics() {
        let (_, run, _) = build(&parse(
            "--combo Low-Low --ms 2 --stale-after 3 --stale-dwell 5 --faulted-after 9 --violation-window 40 --safe-ratio 0.5",
        ))
        .unwrap();
        assert_eq!(run.degraded.stale_after, 3);
        assert_eq!(run.degraded.stale_dwell, 5);
        assert_eq!(run.degraded.faulted_after, 9);
        assert_eq!(run.degraded.violation_window, 40);
        assert_eq!(run.degraded.safe_ratio, 0.5);

        // `faulted_after < stale_after` is inconsistent: a clean ArgError
        // naming the field, not a panic from the internal validate().
        let e = build(&parse("--combo Low-Low --stale-after 9 --faulted-after 3"))
            .unwrap_err()
            .to_string();
        assert!(e.contains("faulted_after"), "{e}");
        let e = build(&parse("--combo Low-Low --safe-ratio 1.5"))
            .unwrap_err()
            .to_string();
        assert!(e.contains("safe_ratio"), "{e}");
    }

    #[test]
    fn phase_trace_jsonl_round_trips() {
        let trace = PhaseTrace::new(
            "rt",
            vec![Phase::new(0.8, 0.1, 1000.0), Phase::new(0.25, 0.9, 2500.5)],
        );
        let text = phase_trace_to_jsonl(&trace);
        assert!(text.starts_with('{'));
        assert!(text.contains(PHASE_TRACE_SCHEMA));
        let back = phase_trace_from_jsonl("rt", &text).unwrap();
        assert_eq!(back.phases(), trace.phases());
    }

    #[test]
    fn phase_trace_jsonl_rejects_bad_input() {
        assert!(phase_trace_from_jsonl("x", "").is_err());
        assert!(phase_trace_from_jsonl("x", "{\"schema\":\"other\"}\n").is_err());
        let no_rows = format!(
            "{{\"schema\":\"{PHASE_TRACE_SCHEMA}\",\"version\":1}}\n"
        );
        assert!(phase_trace_from_jsonl("x", &no_rows).is_err());
        let bad_work = format!(
            "{{\"schema\":\"{PHASE_TRACE_SCHEMA}\",\"version\":1}}\n{{\"activity\":1,\"mem_intensity\":0,\"work_ns\":0}}\n"
        );
        assert!(phase_trace_from_jsonl("x", &bad_work).is_err());
    }

    #[test]
    fn write_output_creates_parent_dirs() {
        let dir = std::env::temp_dir().join("hcapp_shared_write_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.txt");
        write_output(path.to_str().unwrap(), "hello").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "hello");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

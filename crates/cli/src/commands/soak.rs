//! `hcapp soak` — chaos soak harness for the crash-safe checkpoint/resume
//! driver.
//!
//! Campaign mode (the default) runs the configured scenario once,
//! uninterrupted, as the oracle; then replays it as a checkpointing run
//! that is killed at injector-chosen quanta (derived from `--seed`) and
//! resumed from its latest `hcapp.ckpt` after each kill. The stitched
//! result is gated at **tolerance zero**: the final [`RunOutcome`], the
//! JSONL trace stream and the replayed `hcapp.report` must be byte-identical
//! to the oracle, and every over-budget episode must sit inside the
//! documented reaction bound (the same bound `hcapp faults --check`
//! enforces).
//!
//! Worker mode (`--worker`) runs a single checkpoint/resume link and prints
//! a machine-readable line; `scripts/soak.sh` spawns workers and kills them
//! with real `SIGKILL` to exercise the same contract across process death.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use hcapp::cache::encode_outcome;
use hcapp::coordinator::{RunConfig, Simulation};
use hcapp::resume::{outcome_digest, run_resumable, total_quanta, ResumeEnd, ResumeOptions};
use hcapp::system::SystemConfig;
use hcapp_analyze::StreamAnalyzer;
use hcapp_faults::FaultPlan;
use hcapp_metrics::over_cap;
use hcapp_sim_core::report::Table;
use hcapp_sim_core::rng::DeterministicRng;
use hcapp_telemetry::{jsonl, RingTracer, SharedTracer};

use crate::args::{ArgError, Args};
use crate::commands::{faults, shared};

/// RNG stream id for kill-quantum selection (distinct from every simulator
/// stream, which all derive from component indices).
const KILL_STREAM: u64 = 0x5041_6b69_6c6c; // "PAkill"

fn bad(flag: &str, value: String, expected: &'static str) -> ArgError {
    ArgError::BadValue {
        flag: flag.to_string(),
        value,
        expected,
    }
}

fn io_fail(what: &str, e: std::io::Error) -> ArgError {
    ArgError::Failed(format!("soak: {what}: {e}"))
}

/// Everything both modes decode from the command line.
struct SoakSetup {
    sys: SystemConfig,
    run: RunConfig,
    budget: f64,
    seed: u64,
    kills: u64,
    dir: PathBuf,
    opts: ResumeOptions,
    keep: bool,
}

fn setup(args: &Args) -> Result<SoakSetup, ArgError> {
    let (sys, run, limit) = shared::build(args)?;
    let seed = args.u64("seed", 11)?;
    let plan_name = args.string("plan", "moderate")?;
    let kills = args.u64("kills", 3)?;
    let every = args.u64("every", 64)?;
    let workers = shared::parallel_workers(args)?.unwrap_or(0);
    let permute = args.u64("permute-seed", 0)?;
    let dir = PathBuf::from(args.string("dir", "results/soak")?);
    let keep = args.switch("keep")?;

    // Power trace on, so the over-budget gate has data to inspect.
    let mut run = run.with_trace();
    if plan_name != "none" {
        let plan = FaultPlan::preset(&plan_name, seed).ok_or_else(|| {
            bad(
                "plan",
                plan_name.clone(),
                "one of the fault-plan presets (quiet, light, moderate, severe) or none",
            )
        })?;
        run = run.with_faults(plan);
    }

    let mut opts = ResumeOptions::new(dir.join("hcapp.ckpt"))
        .with_checkpoint_every(every.max(1))
        .with_workers(workers)
        .with_trace_sink(dir.join("hcapp.trace"))
        .with_trace_extra("case", "soak")
        .with_trace_extra("seed", &seed.to_string());
    if permute != 0 {
        opts = opts.with_permute_seed(permute);
    }
    Ok(SoakSetup {
        sys,
        run,
        budget: limit.budget.value(),
        seed,
        kills,
        dir,
        opts,
        keep,
    })
}

/// Execute `hcapp soak`.
pub fn execute(args: &Args) -> Result<String, ArgError> {
    let worker_mode = args.switch("worker")?;
    let stop_at = match args.opt_string("stop-at")? {
        None => None,
        Some(v) => Some(v.parse::<u64>().map_err(|_| {
            bad("stop-at", v, "a control-quantum count")
        })?),
    };
    let s = setup(args)?;
    args.finish()?;
    if worker_mode {
        worker(s, stop_at)
    } else {
        campaign(s)
    }
}

/// One checkpoint/resume link, reported machine-readably. `scripts/soak.sh`
/// SIGKILLs these mid-run; a killed worker simply prints nothing.
fn worker(s: SoakSetup, stop_at: Option<u64>) -> Result<String, ArgError> {
    let opts = match stop_at {
        Some(q) => s.opts.clone().with_stop_at(q),
        None => s.opts.clone(),
    };
    let summary = run_resumable(s.sys, s.run, &opts).map_err(|e| io_fail("worker run", e))?;
    let resumed = summary
        .resumed_from
        .map(|q| q.to_string())
        .unwrap_or_else(|| "none".to_string());
    Ok(match summary.end {
        ResumeEnd::Completed(out) => format!(
            "soak-worker completed outcome={} resumed_from={resumed} checkpoints={}\n",
            outcome_digest(&out),
            summary.checkpoints_written
        ),
        ResumeEnd::Stopped { quantum } => format!(
            "soak-worker stopped quantum={quantum} resumed_from={resumed} checkpoints={}\n",
            summary.checkpoints_written
        ),
    })
}

/// Seeded in-process chaos campaign: oracle, kill chain, zero-tolerance
/// gates.
fn campaign(s: SoakSetup) -> Result<String, ArgError> {
    let fail = |msg: String| ArgError::Failed(format!("soak FAILED: {msg}"));
    let total = total_quanta(&s.sys, &s.run);
    if total < 2 {
        return Err(fail(format!("run too short to kill ({total} quanta)")));
    }

    // Injector-chosen kill quanta: distinct, sorted, strictly inside the
    // run so every kill lands mid-flight.
    let mut rng = DeterministicRng::derive(s.seed, KILL_STREAM);
    let want_kills = s.kills.min(total - 1);
    let mut kill_quanta = BTreeSet::new();
    while (kill_quanta.len() as u64) < want_kills {
        kill_quanta.insert(1 + rng.below(total - 1));
    }

    // Oracle: the identical configuration, never interrupted, traced
    // through a ring into the same JSONL form the stitched sink uses.
    let ring = Arc::new(Mutex::new(RingTracer::new(1 << 20)));
    let mut oracle_run = s.run.clone();
    oracle_run.tracer = Some(ring.clone() as SharedTracer);
    let want = Simulation::new(s.sys.clone(), oracle_run).run();
    let events = ring
        .lock()
        .expect("invariant: tracer mutex never poisoned")
        .drain();
    let seed_str = s.seed.to_string();
    let want_trace = jsonl::export(&events, &[("case", "soak"), ("seed", &seed_str)]);

    // The kill chain: each link dies at its quantum, the next resumes.
    fs::create_dir_all(&s.dir).map_err(|e| io_fail("create --dir", e))?;
    let mut resumes = Vec::new();
    let mut checkpoints = 0u64;
    for &q in &kill_quanta {
        let link = run_resumable(
            s.sys.clone(),
            s.run.clone(),
            &s.opts.clone().with_stop_at(q),
        )
        .map_err(|e| io_fail("kill link", e))?;
        checkpoints += link.checkpoints_written;
        if let Some(from) = link.resumed_from {
            resumes.push(from);
        }
        match link.end {
            ResumeEnd::Stopped { .. } => {}
            ResumeEnd::Completed(_) => {
                return Err(fail(format!("kill at quantum {q} was never reached")));
            }
        }
    }
    let fin = run_resumable(s.sys.clone(), s.run.clone(), &s.opts)
        .map_err(|e| io_fail("final link", e))?;
    checkpoints += fin.checkpoints_written;
    if let Some(from) = fin.resumed_from {
        resumes.push(from);
    }
    let got = match fin.end {
        ResumeEnd::Completed(out) => out,
        ResumeEnd::Stopped { quantum } => {
            return Err(fail(format!("final link stopped at quantum {quantum}")));
        }
    };

    // Gate 1: bit-identical outcome.
    if encode_outcome(&got) != encode_outcome(&want) {
        return Err(fail(format!(
            "stitched outcome diverged from the oracle (digest {} vs {})",
            outcome_digest(&got),
            outcome_digest(&want)
        )));
    }
    // Gate 2: byte-identical stitched trace, and it validates.
    let trace_path = s.dir.join("hcapp.trace");
    let got_trace =
        fs::read_to_string(&trace_path).map_err(|e| io_fail("read stitched trace", e))?;
    if got_trace != want_trace {
        return Err(fail(format!(
            "stitched trace diverged from the oracle ({} vs {} bytes)",
            got_trace.len(),
            want_trace.len()
        )));
    }
    jsonl::validate(&got_trace)
        .map_err(|e| fail(format!("stitched trace failed validation: {e}")))?;
    // Gate 3: identical replayed report.
    let report = |text: &str| -> Result<String, ArgError> {
        let mut a = StreamAnalyzer::new();
        a.consume_jsonl(text)
            .map_err(|e| fail(format!("trace replay failed: {e}")))?;
        Ok(a.report().to_json())
    };
    if report(&got_trace)? != report(&want_trace)? {
        return Err(fail("replayed hcapp.report diverged from the oracle".to_string()));
    }
    // Gate 4: the PR 3 contract still holds across the seams.
    let trace = got
        .trace
        .as_ref()
        .expect("invariant: soak always records a power trace");
    let over = over_cap(trace, s.budget);
    let bound = faults::reaction_bound();
    if over.longest > bound {
        return Err(fail(format!(
            "over-budget episode {} exceeds the reaction bound {bound}",
            over.longest
        )));
    }

    if !s.keep {
        clean_artifacts(&s.dir);
    }
    let mut t = Table::new(
        format!(
            "soak ok: {} kill(s), zero-tolerance gates passed (seed {})",
            kill_quanta.len(),
            s.seed
        ),
        &["metric", "value"],
    );
    let list = |xs: &[u64]| {
        xs.iter()
            .map(|q| q.to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    let kill_list: Vec<u64> = kill_quanta.iter().copied().collect();
    t.add_row(vec!["total quanta".into(), total.to_string()]);
    t.add_row(vec!["killed at".into(), list(&kill_list)]);
    t.add_row(vec!["resumed from".into(), list(&resumes)]);
    t.add_row(vec!["checkpoints written".into(), checkpoints.to_string()]);
    t.add_row(vec!["outcome digest".into(), outcome_digest(&got)]);
    t.add_row(vec![
        "trace bytes (stitched == oracle)".into(),
        got_trace.len().to_string(),
    ]);
    t.add_row(vec!["report identical".into(), "yes".into()]);
    t.add_row(vec![
        format!("longest over-budget (bound {bound})"),
        format!("{}", over.longest),
    ]);
    Ok(t.render())
}

/// Remove the campaign's scratch files (never the directory itself — it may
/// be a shared `results/` tree).
fn clean_artifacts(dir: &Path) {
    for name in ["hcapp.ckpt", "hcapp.ckpt.1", "hcapp.trace"] {
        let _ = fs::remove_file(dir.join(name));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cli(s: &str) -> Result<String, ArgError> {
        let toks: Vec<String> = s.split_whitespace().map(|t| t.to_string()).collect();
        execute(&Args::parse(&toks).unwrap())
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hcapp_soak_cmd_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn campaign_passes_all_gates() {
        let dir = scratch("campaign");
        let out = run_cli(&format!(
            "--combo Low-Low --ms 1 --kills 2 --every 16 --seed 5 --dir {}",
            dir.display()
        ))
        .unwrap();
        assert!(out.contains("soak ok: 2 kill(s)"), "{out}");
        assert!(out.contains("report identical"), "{out}");
        // Artifacts cleaned by default.
        assert!(!dir.join("hcapp.trace").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn campaign_keep_retains_the_stitched_trace() {
        let dir = scratch("keep");
        run_cli(&format!(
            "--combo Low-Low --ms 1 --kills 1 --every 32 --seed 9 --keep --dir {}",
            dir.display()
        ))
        .unwrap();
        let text = fs::read_to_string(dir.join("hcapp.trace")).unwrap();
        jsonl::validate(&text).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn worker_stop_resume_chain_reports_digest() {
        let dir = scratch("worker");
        let base = format!("--combo Low-Low --ms 1 --every 32 --seed 7 --dir {}", dir.display());
        let stopped = run_cli(&format!("{base} --worker --stop-at 200")).unwrap();
        assert!(stopped.contains("soak-worker stopped quantum=200"), "{stopped}");
        let done = run_cli(&format!("{base} --worker")).unwrap();
        assert!(done.contains("soak-worker completed outcome="), "{done}");
        assert!(done.contains("resumed_from=192"), "{done}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_plan_is_a_flag_error_naming_the_presets() {
        let e = run_cli("--combo Low-Low --ms 1 --plan loud").unwrap_err().to_string();
        for name in hcapp_faults::PRESET_NAMES {
            assert!(e.contains(name), "{e}");
        }
        assert!(e.contains("none"), "{e}");
    }

    #[test]
    fn zero_kills_still_gates_the_fresh_run() {
        let dir = scratch("zero");
        let out = run_cli(&format!(
            "--combo Low-Low --ms 1 --kills 0 --plan none --dir {}",
            dir.display()
        ))
        .unwrap();
        assert!(out.contains("soak ok: 0 kill(s)"), "{out}");
        let _ = fs::remove_dir_all(&dir);
    }
}

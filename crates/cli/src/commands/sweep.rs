//! `hcapp sweep` — run the Table 3 suite for one or more schemes.

use hcapp::coordinator::RunConfig;
use hcapp::parallel::run_all;
use hcapp::scheme::ControlScheme;
use hcapp::system::SystemConfig;
use hcapp_metrics::suite::{ComboRow, SuiteSummary};
use hcapp_sim_core::time::SimDuration;
use hcapp_workloads::combos::combo_suite;

use crate::args::{ArgError, Args};
use crate::commands::shared;

fn parse_schemes(list: &str) -> Result<Vec<ControlScheme>, ArgError> {
    list.split(',')
        .map(|tok| {
            let args = crate::args::Args::parse(&[
                "--scheme".to_string(),
                tok.trim().to_string(),
            ])
            .expect("literal flags");
            shared::scheme(&args)
        })
        .collect()
}

/// Execute `hcapp sweep`.
pub fn execute(args: &Args) -> Result<String, ArgError> {
    let limit = shared::limit(args)?;
    let ms = args.u64("ms", 50)?.max(1);
    let seed = args.u64("seed", 11)?;
    let scheme_list = args.string("scheme", "hcapp,rapl,sw")?;
    args.finish()?;
    let schemes = parse_schemes(&scheme_list)?;

    let combos = combo_suite();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    // Baseline first, then each requested scheme; one job pool.
    let mut jobs = Vec::new();
    for scheme in std::iter::once(ControlScheme::fixed_baseline()).chain(schemes.iter().copied()) {
        for &combo in &combos {
            jobs.push((
                SystemConfig::paper_system(combo, seed),
                RunConfig::new(
                    SimDuration::from_millis(ms),
                    scheme,
                    limit.guardbanded_target(),
                ),
            ));
        }
    }
    let mut outcomes = run_all(jobs, workers).into_iter();
    let baseline: Vec<_> = combos.iter().map(|_| outcomes.next().unwrap()).collect();

    let mut out = String::new();
    for &scheme in &schemes {
        let mut summary = SuiteSummary::new(scheme.name());
        for (i, &combo) in combos.iter().enumerate() {
            let o = outcomes.next().expect("one outcome per job");
            summary.push(ComboRow {
                combo: combo.name.to_string(),
                max_ratio: o.max_ratio(&limit).unwrap_or(0.0),
                ppe: o.ppe(limit.budget),
                speedup: o.speedup_vs(&baseline[i]),
            });
        }
        out.push_str(&summary.to_table().render());
        out.push_str(&format!(
            "viable under the limit: {}\n\n",
            if summary.viable() { "yes" } else { "NO" }
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_renders_summaries() {
        let toks: Vec<String> = "--scheme hcapp --ms 1"
            .split_whitespace()
            .map(|t| t.to_string())
            .collect();
        let out = execute(&Args::parse(&toks).unwrap()).unwrap();
        assert!(out.contains("HCAPP across the Table 3 suite"));
        assert!(out.contains("Ave."));
        assert!(out.contains("viable under the limit"));
    }

    #[test]
    fn scheme_list_parsing() {
        let s = parse_schemes("hcapp, rapl,sw").unwrap();
        assert_eq!(s.len(), 3);
        assert!(parse_schemes("hcapp,bogus").is_err());
    }
}

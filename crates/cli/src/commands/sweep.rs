//! `hcapp sweep` — run the Table 3 suite for one or more schemes.
//!
//! Sweeps are memoized through the content-addressed result cache
//! (`results/cache/` by default): re-running an identical sweep replays
//! bit-identical outcomes from disk instead of re-simulating. `--no-cache`
//! bypasses the cache, `--cache-dir PATH` relocates it, and `--wipe-cache`
//! clears it before running (always safe — every entry is derivable).

use hcapp::cache::{run_all_cached, CacheStats, RunCache};
use hcapp::coordinator::RunConfig;
use hcapp::parallel::run_all;
use hcapp::scheme::ControlScheme;
use hcapp::system::SystemConfig;
use hcapp_metrics::suite::{ComboRow, SuiteSummary};
use hcapp_sim_core::time::SimDuration;
use hcapp_workloads::combos::combo_suite;

use crate::args::{ArgError, Args};
use crate::commands::shared;

fn parse_schemes(list: &str) -> Result<Vec<ControlScheme>, ArgError> {
    list.split(',')
        .map(|tok| {
            let args = crate::args::Args::parse(&[
                "--scheme".to_string(),
                tok.trim().to_string(),
            ])
            .expect("literal flags");
            shared::scheme(&args)
        })
        .collect()
}

/// Execute `hcapp sweep`.
pub fn execute(args: &Args) -> Result<String, ArgError> {
    let limit = shared::limit(args)?;
    let ms = args.u64("ms", 50)?.max(1);
    let seed = args.u64("seed", 11)?;
    let scheme_list = args.string("scheme", "hcapp,rapl,sw")?;
    // `--parallel N` like the other run commands; the sweep defaults to one
    // worker per core instead of serial because its job list is the whole
    // Table 3 matrix.
    let workers = shared::parallel_workers(args)?.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    });
    let no_cache = args.switch("no-cache")?;
    let cache_dir = args.string(
        "cache-dir",
        hcapp::cache::default_cache_dir()
            .to_str()
            .unwrap_or("results/cache"),
    )?;
    let wipe_cache = args.switch("wipe-cache")?;
    args.finish()?;
    let schemes = parse_schemes(&scheme_list)?;

    let combos = combo_suite();
    let cache = RunCache::new(&cache_dir);
    let wiped = if wipe_cache { Some(cache.wipe()) } else { None };

    // Baseline first, then each requested scheme; one job pool.
    let mut jobs = Vec::new();
    for scheme in std::iter::once(ControlScheme::fixed_baseline()).chain(schemes.iter().copied()) {
        for &combo in &combos {
            jobs.push((
                SystemConfig::paper_system(combo, seed),
                RunConfig::new(
                    SimDuration::from_millis(ms),
                    scheme,
                    limit.guardbanded_target(),
                ),
            ));
        }
    }
    let (outcomes, stats): (Vec<_>, Option<CacheStats>) = if no_cache {
        (run_all(jobs, workers), None)
    } else {
        let (outcomes, stats) = run_all_cached(jobs, workers, &cache);
        (outcomes, Some(stats))
    };
    let mut outcomes = outcomes.into_iter();
    let baseline: Vec<_> = combos.iter().map(|_| outcomes.next().unwrap()).collect();

    let mut out = String::new();
    if let Some(n) = wiped {
        out.push_str(&format!("cache: wiped {n} entries from {cache_dir}\n"));
    }
    if let Some(s) = stats {
        out.push_str(&format!(
            "cache: {} hits, {} misses, {} corrupt ({cache_dir})\n\n",
            s.hits, s.misses, s.corrupt
        ));
    }
    for &scheme in &schemes {
        let mut summary = SuiteSummary::new(scheme.name());
        for (i, &combo) in combos.iter().enumerate() {
            let o = outcomes.next().expect("one outcome per job");
            summary.push(ComboRow {
                combo: combo.name.to_string(),
                max_ratio: o.max_ratio(&limit).unwrap_or(0.0),
                ppe: o.ppe(limit.budget),
                speedup: o.speedup_vs(&baseline[i]),
            });
        }
        out.push_str(&summary.to_table().render());
        out.push_str(&format!(
            "viable under the limit: {}\n\n",
            if summary.viable() { "yes" } else { "NO" }
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cli(s: &str) -> String {
        let toks: Vec<String> = s.split_whitespace().map(|t| t.to_string()).collect();
        execute(&Args::parse(&toks).unwrap()).unwrap()
    }

    #[test]
    fn sweep_renders_summaries() {
        // --no-cache so the test never leaves entries in the repo's
        // working-directory cache.
        let out = run_cli("--scheme hcapp --ms 1 --no-cache");
        assert!(out.contains("HCAPP across the Table 3 suite"));
        assert!(out.contains("Ave."));
        assert!(out.contains("viable under the limit"));
        assert!(!out.contains("cache:"), "--no-cache must skip the cache line");
    }

    #[test]
    fn warm_sweep_hits_cache_and_matches_cold_output() {
        let dir = std::env::temp_dir().join(format!(
            "hcapp_sweep_cache_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let flags = format!(
            "--scheme hcapp --ms 1 --parallel 2 --cache-dir {}",
            dir.display()
        );
        let cold = run_cli(&flags);
        let warm = run_cli(&flags);
        assert!(cold.contains("cache: 0 hits, 16 misses, 0 corrupt"), "{cold}");
        assert!(warm.contains("cache: 16 hits, 0 misses, 0 corrupt"), "{warm}");
        // Identical tables after the cache line: cached replay is exact.
        let tail = |s: &str| s.split_once("\n\n").map(|(_, t)| t.to_string()).unwrap();
        assert_eq!(tail(&cold), tail(&warm));
        // --wipe-cache empties it again.
        let wiped = run_cli(&format!("{flags} --wipe-cache"));
        assert!(wiped.contains("cache: wiped 16 entries"), "{wiped}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parallel_one_means_pooled_single_worker() {
        let out = run_cli("--scheme hcapp --ms 1 --parallel 1 --no-cache");
        assert!(out.contains("viable under the limit"));
    }

    #[test]
    fn scheme_list_parsing() {
        let s = parse_schemes("hcapp, rapl,sw").unwrap();
        assert_eq!(s.len(), 3);
        assert!(parse_schemes("hcapp,bogus").is_err());
    }
}

//! `hcapp trace` — run one configuration with the structured tracer
//! attached and export the event stream as self-describing JSONL
//! (schema `hcapp.trace`), plus a wall-clock profile of the run loop.
//!
//! `--check PATH` skips the simulation and validates an existing trace
//! file instead, so scripts can assert a trace is well formed without
//! re-running anything.

use std::sync::{Arc, Mutex};

use hcapp::coordinator::Simulation;
use hcapp_sim_core::report::Table;
use hcapp_telemetry::{jsonl, Profiler, RingTracer, SharedTracer, EVENT_KINDS};

use crate::args::{ArgError, Args};
use crate::commands::shared;

fn bad(flag: &str, value: String, expected: &'static str) -> ArgError {
    ArgError::BadValue {
        flag: flag.to_string(),
        value,
        expected,
    }
}

/// Execute `hcapp trace`.
pub fn execute(args: &Args) -> Result<String, ArgError> {
    if let Some(path) = args.opt_string("check")? {
        args.finish()?;
        return check(&path);
    }

    let (sys, run, limit) = shared::build(args)?;
    let out_path = args.string("out", "results/trace.jsonl")?;
    let cap = args.u64("events", 1 << 16)?.max(1) as usize;
    let workers = shared::parallel_workers(args)?;
    args.finish()?;

    // Keep a concrete handle so the ring's events survive the run; the
    // simulation only sees the type-erased `SharedTracer` view of it.
    let ring = Arc::new(Mutex::new(RingTracer::new(cap)));
    let profiler = Arc::new(Profiler::new());
    let run = run
        .with_tracer(ring.clone() as SharedTracer)
        .with_profiler(profiler.clone());
    let scheme = run.scheme;
    let duration = run.duration;
    let outcome = shared::execute_sim(Simulation::new(sys, run), workers);

    let mut guard = ring.lock().expect("invariant: tracer mutex never poisoned");
    let dropped = guard.dropped();
    let near_misses = guard.stats().near_misses();
    let peak = guard.stats().peak_power();
    let mean_sensed = guard.stats().power_histogram().mean();
    let events = guard.drain();
    drop(guard);

    let scheme_s = format!("{scheme}");
    let duration_s = format!("{duration}");
    let text = jsonl::export(
        &events,
        &[("scheme", &scheme_s), ("duration", &duration_s)],
    );
    shared::write_output(&out_path, &text).map_err(|e| bad(
        "out",
        format!("{out_path}: {e}"),
        "a writable path",
    ))?;
    // Round-trip through the validator so a malformed export can never
    // be reported as success.
    let report = jsonl::validate(&text)
        .map_err(|e| bad("out", format!("{out_path}: invalid export: {e}"), "a bug-free exporter"))?;

    let mut t = Table::new(
        format!("{scheme_s} trace for {duration_s} (limit {:.0})", limit.budget),
        &["metric", "value"],
    );
    t.add_row(vec!["events written".into(), report.events.to_string()]);
    for kind in EVENT_KINDS {
        t.add_row(vec![format!("  {kind}"), report.count(kind).to_string()]);
    }
    t.add_row(vec![
        format!("dropped (ring capacity {cap})"),
        dropped.to_string(),
    ]);
    t.add_row(vec![
        "setpoint reached (quanta)".into(),
        near_misses.to_string(),
    ]);
    t.add_row(vec!["peak sensed power".into(), format!("{peak:.2}")]);
    t.add_row(vec![
        "mean sensed power".into(),
        format!("{mean_sensed:.2} W"),
    ]);
    t.add_row(vec![
        "avg power".into(),
        format!("{:.2}", outcome.avg_power),
    ]);
    t.add_row(vec!["trace file".into(), out_path]);

    let mut out = t.render();
    out.push('\n');
    out.push_str(&profiler.report("wall-clock profile (host time, not simulated)").render());
    Ok(out)
}

/// `hcapp trace --check PATH`: validate an existing JSONL trace.
fn check(path: &str) -> Result<String, ArgError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| bad("check", format!("{path}: {e}"), "a readable trace file"))?;
    let report = jsonl::validate(&text)
        .map_err(|e| bad("check", format!("{path}: {e}"), "a valid hcapp.trace JSONL file"))?;
    let mut t = Table::new(format!("{path}: valid hcapp.trace v{}", report.version), &[
        "metric", "value",
    ]);
    t.add_row(vec!["events".into(), report.events.to_string()]);
    for kind in EVENT_KINDS {
        t.add_row(vec![format!("  {kind}"), report.count(kind).to_string()]);
    }
    if let Some(t_ns) = report.last_t_ns {
        t.add_row(vec!["last t_ns".into(), t_ns.to_string()]);
    }
    Ok(t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cli(s: &str) -> Result<String, ArgError> {
        let toks: Vec<String> = s.split_whitespace().map(|t| t.to_string()).collect();
        execute(&Args::parse(&toks).unwrap())
    }

    #[test]
    fn traces_a_run_and_validates_it() {
        let path = std::env::temp_dir().join("hcapp_cli_trace_test.jsonl");
        let _ = std::fs::remove_file(&path);
        let out = run_cli(&format!(
            "--combo Hi-Hi --scheme hcapp --ms 2 --out {}",
            path.display()
        ))
        .unwrap();
        assert!(out.contains("events written"));
        assert!(out.contains("global_pid"));
        assert!(out.contains("wall-clock profile"));
        // The file on disk is itself a valid trace.
        let checked = run_cli(&format!("--check {}", path.display())).unwrap();
        assert!(checked.contains("valid hcapp.trace"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn serial_and_parallel_trace_files_match() {
        let dir = std::env::temp_dir();
        let a = dir.join("hcapp_cli_trace_ser.jsonl");
        let b = dir.join("hcapp_cli_trace_par.jsonl");
        run_cli(&format!("--combo Mid-Mid --ms 2 --out {}", a.display())).unwrap();
        run_cli(&format!(
            "--combo Mid-Mid --ms 2 --parallel 3 --out {}",
            b.display()
        ))
        .unwrap();
        let ta = std::fs::read_to_string(&a).unwrap();
        let tb = std::fs::read_to_string(&b).unwrap();
        assert_eq!(ta, tb, "serial and parallel traces must be byte-identical");
        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
    }

    #[test]
    fn small_ring_reports_drops() {
        let path = std::env::temp_dir().join("hcapp_cli_trace_small.jsonl");
        let out = run_cli(&format!(
            "--combo Low-Low --ms 2 --events 4 --out {}",
            path.display()
        ))
        .unwrap();
        assert!(out.contains("dropped (ring capacity 4)"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn check_rejects_garbage() {
        let path = std::env::temp_dir().join("hcapp_cli_trace_garbage.jsonl");
        std::fs::write(&path, "not json\n").unwrap();
        assert!(run_cli(&format!("--check {}", path.display())).is_err());
        let _ = std::fs::remove_file(&path);
    }
}

//! `hcapp tune` — run the §3.1 PID tuning recipe and report the sweeps.

use hcapp::tuning;
use hcapp_sim_core::report::Table;
use hcapp_sim_core::time::SimDuration;
use hcapp_sim_core::units::Watt;
use hcapp_workloads::combos::combo_by_name;

use crate::args::{ArgError, Args};

/// Execute `hcapp tune`.
pub fn execute(args: &Args) -> Result<String, ArgError> {
    let ms = args.u64("ms", 20)?.max(1);
    let seed = args.u64("seed", 3)?;
    let target = args.f64("target", 86.0)?;
    let combo_name = args.string("combo", "Hi-Hi")?;
    args.finish()?;
    let combo = combo_by_name(&combo_name).ok_or_else(|| ArgError::BadValue {
        flag: "combo".into(),
        value: combo_name,
        expected: "a Table 3 combo name",
    })?;

    let report = tuning::tune(
        combo,
        seed,
        Watt::new(target),
        SimDuration::from_millis(ms),
    );

    let mut out = String::new();
    let mut kp = Table::new(
        "Step 1: proportional sweep (ki = 0) until instability",
        &["kp", "avg power", "oscillation", "stable?"],
    );
    for s in &report.kp_sweep {
        kp.add_row(vec![
            format!("{:.3}", s.gain),
            format!("{:.1} W", s.avg_power),
            format!("{:.3}", s.oscillation),
            if s.stable { "yes" } else { "NO" }.into(),
        ]);
    }
    out.push_str(&kp.render());

    let mut ki = Table::new(
        "Step 2: integral sweep until steady-state error closes",
        &["ki", "avg power", "ss error", "stable?"],
    );
    for s in &report.ki_sweep {
        ki.add_row(vec![
            format!("{:.0}", s.gain),
            format!("{:.1} W", s.avg_power),
            format!("{:.1}%", s.steady_state_error * 100.0),
            if s.stable { "yes" } else { "NO" }.into(),
        ]);
    }
    out.push_str(&ki.render());
    out.push_str(&format!(
        "\nchosen: kp={:.4} ki={:.0} kd={} (PI form, per the paper)\n",
        report.chosen.kp, report.chosen.ki, report.chosen.kd
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tune_renders_both_sweeps() {
        let toks: Vec<String> = "--ms 1".split_whitespace().map(|t| t.to_string()).collect();
        let out = execute(&Args::parse(&toks).unwrap()).unwrap();
        assert!(out.contains("Step 1"));
        assert!(out.contains("Step 2"));
        assert!(out.contains("chosen: kp="));
    }
}

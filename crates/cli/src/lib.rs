//! `hcapp` — command-line interface to the HCAPP simulator.
//!
//! ```text
//! hcapp run   --combo Hi-Hi --scheme hcapp --ms 50        # one run
//! hcapp run   --cpu ferret --gpu hotspot --scheme rapl    # custom combo
//! hcapp sweep --ms 50 --window-us 1000                    # whole suite
//! hcapp hist  --combo Burst-Burst --scheme fixed          # power histogram
//! hcapp tune  --ms 20                                     # §3.1 PID tuning
//! hcapp trace --combo Hi-Hi --scheme hcapp --ms 2         # JSONL event trace
//! hcapp faults --plan severe --ms 4                       # fault campaign
//! hcapp faults --check --seed 7                           # resilience self-test
//! hcapp soak --ms 2 --kills 3                             # kill/resume chaos soak
//! hcapp list                                              # combos/benchmarks/schemes
//! ```
//!
//! The library half exists so the argument parser and command
//! implementations are unit-testable; `main.rs` is a thin shell.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod args;
pub mod commands;

pub use args::{ArgError, Args};

/// Entry point shared by `main.rs` and the tests: dispatch on the
/// subcommand, returning the rendered output or an error message.
pub fn dispatch(argv: &[String]) -> Result<String, String> {
    let Some((command, rest)) = argv.split_first() else {
        return Ok(commands::help());
    };
    let args = Args::parse(rest).map_err(|e| e.to_string())?;
    match command.as_str() {
        "run" => commands::run::execute(&args).map_err(|e| e.to_string()),
        "sweep" => commands::sweep::execute(&args).map_err(|e| e.to_string()),
        "hist" => commands::hist::execute(&args).map_err(|e| e.to_string()),
        "compare" => commands::compare::execute(&args).map_err(|e| e.to_string()),
        "tune" => commands::tune::execute(&args).map_err(|e| e.to_string()),
        "trace" => commands::trace::execute(&args).map_err(|e| e.to_string()),
        "analyze" => commands::analyze::execute(&args).map_err(|e| e.to_string()),
        "bench" => commands::bench::execute(&args).map_err(|e| e.to_string()),
        "record" => commands::record::execute(&args).map_err(|e| e.to_string()),
        "faults" => commands::faults::execute(&args).map_err(|e| e.to_string()),
        "sanitize" => commands::sanitize::execute(&args).map_err(|e| e.to_string()),
        "soak" => commands::soak::execute(&args).map_err(|e| e.to_string()),
        "fuzz" => commands::fuzz::execute(&args).map_err(|e| e.to_string()),
        "list" => Ok(commands::list()),
        "help" | "--help" | "-h" => Ok(commands::help()),
        other => Err(format!(
            "unknown command '{other}' (try `hcapp help`)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|t| t.to_string()).collect()
    }

    #[test]
    fn empty_argv_prints_help() {
        let out = dispatch(&[]).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn help_aliases() {
        for cmd in ["help", "--help", "-h"] {
            assert!(dispatch(&argv(cmd)).unwrap().contains("USAGE"));
        }
    }

    #[test]
    fn list_dispatches() {
        assert!(dispatch(&argv("list")).unwrap().contains("combos"));
    }

    #[test]
    fn unknown_command_is_an_error() {
        let e = dispatch(&argv("frobnicate")).unwrap_err();
        assert!(e.contains("frobnicate"));
    }

    #[test]
    fn run_dispatches_end_to_end() {
        let out = dispatch(&argv("run --combo Low-Low --ms 1")).unwrap();
        assert!(out.contains("avg power"));
    }

    #[test]
    fn flag_errors_surface() {
        let e = dispatch(&argv("run --scheme nope --ms 1")).unwrap_err();
        assert!(e.contains("scheme"));
    }
}

//! The `hcapp` binary: parse argv, dispatch, print.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match hcapp_cli::dispatch(&argv) {
        Ok(output) => print!("{output}"),
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    }
}

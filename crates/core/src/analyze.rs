//! Run-path integration for `hcapp-analyze`: execute a simulation with an
//! [`AnalyzingTracer`] attached and return the [`RunReport`] alongside the
//! [`RunOutcome`].
//!
//! This is the convenience layer the CLI and the experiment binaries use:
//! it wraps whatever tracer the `RunConfig` already carries (so trace
//! export keeps working), runs serially or on the worker pool, and reads
//! the aggregated report back out — one call, no trace-file round trip.

use std::sync::{Arc, Mutex};

use crate::coordinator::{RunConfig, Simulation};
use crate::outcome::RunOutcome;
use crate::system::SystemConfig;
use hcapp_analyze::{AnalyzingTracer, RunReport};
use hcapp_telemetry::SharedTracer;

/// Execute `run` on `sys` with streaming analytics attached.
///
/// Any tracer already present on `run` keeps receiving every event (the
/// analyzer forwards to it), so callers can collect a ring-buffer trace
/// and a report from the same run. `workers` selects the executor:
/// `None`/`Some(1)` runs serially, `Some(n > 1)` uses the worker pool —
/// the report is byte-identical either way (pinned by the determinism
/// suite in `crates/analyze/tests`).
pub fn run_analyzed(
    sys: SystemConfig,
    mut run: RunConfig,
    workers: Option<usize>,
) -> (RunOutcome, RunReport) {
    let analyzer = match run.tracer.take() {
        Some(inner) => AnalyzingTracer::wrapping(inner),
        None => AnalyzingTracer::new(),
    };
    let handle = Arc::new(Mutex::new(analyzer));
    run.tracer = Some(handle.clone() as SharedTracer);
    let sim = Simulation::new(sys, run);
    let outcome = match workers {
        Some(w) if w > 1 => sim.run_parallel(w),
        _ => sim.run(),
    };
    let report = handle
        .lock()
        .expect("invariant: analyzer mutex is never poisoned")
        .report();
    (outcome, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::ControlScheme;
    use hcapp_sim_core::time::{SimDuration, SimTime};
    use hcapp_sim_core::units::Watt;
    use hcapp_telemetry::RingTracer;
    use hcapp_workloads::combo_suite;

    fn config() -> (SystemConfig, RunConfig) {
        let sys = SystemConfig::paper_system(combo_suite()[3], 7); // Hi-Hi
        let run = RunConfig::new(
            SimDuration::from_millis(1),
            ControlScheme::Hcapp,
            Watt::new(84.0),
        )
        .with_retarget(SimTime::from_micros(500), Watt::new(67.0));
        (sys, run)
    }

    #[test]
    fn live_report_covers_the_whole_run() {
        let (sys, run) = config();
        let (outcome, report) = run_analyzed(sys, run, None);
        assert!(outcome.avg_power.value() > 0.0);
        // Initial programming + the scheduled change.
        assert_eq!(report.get("retargets"), Some(2.0));
        assert_eq!(report.get("epochs"), Some(2.0));
        let steps = report.get("pid_steps").unwrap_or(0.0);
        assert!(steps > 900.0, "1 ms of 1 µs quanta, got {steps}");
        assert!(report.get("mean_p_now_w").is_some_and(|v| v > 0.0));
    }

    #[test]
    fn wrapped_tracer_still_receives_the_trace() {
        let (sys, run) = config();
        let ring = Arc::new(Mutex::new(RingTracer::new(1 << 16)));
        let run = run.with_tracer(ring.clone() as SharedTracer);
        let (_, report) = run_analyzed(sys, run, None);
        let stored = ring.lock().expect("ring lock for inspection").events().count() as f64;
        assert!(stored > 0.0, "inner tracer must keep receiving events");
        assert_eq!(report.get("events"), Some(stored));
    }

    #[test]
    fn serial_and_pooled_reports_agree() {
        let (sys, run) = config();
        let (_, serial) = run_analyzed(sys.clone(), run.clone(), None);
        let (_, pooled) = run_analyzed(sys, run, Some(4));
        assert_eq!(serial.to_json(), pooled.to_json());
    }
}

//! Content-addressed memoization of simulation runs.
//!
//! The simulator is deterministic: a run's [`RunOutcome`] is a pure
//! function of its `(SystemConfig, RunConfig)` pair (the fault plan rides
//! inside `RunConfig`). This module derives a 128-bit content key for that
//! pair ([`job_key`]), round-trips outcomes through a bit-exact text codec
//! ([`encode_outcome`] / [`decode_outcome`]), and layers both over the
//! generic `hcapp-cache` file store so campaign code can skip cells that
//! have already been computed ([`run_all_cached`]).
//!
//! # What is hashed
//!
//! The key covers everything that feeds the run loop: the full
//! `SystemConfig` (via its derived `Debug` rendering — deterministic
//! because simlint rule L3 bans `HashMap`/`HashSet` from library crates,
//! and injective for floats because Rust's `f64` Debug is
//! shortest-roundtrip) plus every `RunConfig` field **except**
//! `batch_quanta` (an execution-strategy knob; the determinism tests pin
//! that it never changes results) and the `tracer`/`profiler` hooks.
//! Runs with a tracer or profiler attached are *uncacheable* ([`job_key`]
//! returns `None`): their value is the side-channel stream, which the
//! cache does not capture, so replaying them from disk would silently
//! drop it.
//!
//! # Invalidation
//!
//! Keys are salted with [`SCHEMA`]. Any change that alters simulation
//! results (a model fix, a controller change) must bump it — stale
//! entries then miss instead of resurrecting old physics. `hcapp sweep
//! --wipe-cache`, [`RunCache::wipe`], or simply deleting `results/cache/`
//! clears the store; every entry is derivable, so wiping is always safe.

use std::path::{Path, PathBuf};

use hcapp_cache::{CacheStore, ContentHash, Hasher};
use hcapp_sim_core::series::TimeSeries;
use hcapp_sim_core::time::SimDuration;
use hcapp_sim_core::units::Watt;

use crate::coordinator::RunConfig;
use crate::outcome::{ResilienceCounters, RunOutcome};
use crate::scheme::ControlScheme;
use crate::software::ComponentKind;
use crate::system::SystemConfig;

/// Cache schema version, salted into every key and stamped on every entry.
/// Bump on any change that alters simulation results or the codec below.
pub const SCHEMA: &str = "hcapp-cache-v1";

/// The conventional on-disk location, relative to the working directory.
pub fn default_cache_dir() -> PathBuf {
    Path::new("results").join("cache")
}

/// The content key of one simulation job, or `None` when the job is
/// uncacheable (a tracer or profiler is attached — their side-channel
/// output is the point of the run and is not captured by the cache).
pub fn job_key(sys: &SystemConfig, run: &RunConfig) -> Option<ContentHash> {
    if run.tracer.is_some() || run.profiler.is_some() {
        return None;
    }
    let mut h = Hasher::new();
    h.write_str(SCHEMA);
    h.write_str(&format!("{sys:?}"));
    h.write_u64(run.duration.as_nanos());
    h.write_str(&format!("{:?}", run.scheme));
    h.write_f64(run.power_target.value());
    h.write_str(&format!("{:?}", run.retargets));
    h.write_str(&format!("{:?}", run.track_windows));
    h.write_bool(run.record_trace);
    h.write_bool(run.record_voltage_trace);
    h.write_u64(run.trace_interval.as_nanos());
    h.write_str(&format!("{:?}", run.software));
    h.write_str(&format!("{:?}", run.faults));
    h.write_str(&format!("{:?}", run.degraded));
    // run.batch_quanta deliberately omitted: execution strategy, not physics.
    Some(h.finish())
}

fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_f64(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

fn scheme_tag(s: ControlScheme) -> String {
    match s {
        ControlScheme::Hcapp => "hcapp".into(),
        ControlScheme::RaplLike => "rapl".into(),
        ControlScheme::SoftwareLike => "software".into(),
        ControlScheme::FixedVoltage(v) => format!("fixed {}", f64_hex(v.value())),
        ControlScheme::CustomPeriod(d) => format!("custom {}", d.as_nanos()),
    }
}

fn parse_scheme(tag: &str) -> Option<ControlScheme> {
    let mut parts = tag.split(' ');
    match (parts.next(), parts.next()) {
        (Some("hcapp"), None) => Some(ControlScheme::Hcapp),
        (Some("rapl"), None) => Some(ControlScheme::RaplLike),
        (Some("software"), None) => Some(ControlScheme::SoftwareLike),
        (Some("fixed"), Some(v)) => {
            Some(ControlScheme::FixedVoltage(hcapp_sim_core::units::Volt::new(parse_f64(v)?)))
        }
        (Some("custom"), Some(ns)) => {
            Some(ControlScheme::CustomPeriod(SimDuration::from_nanos(ns.parse().ok()?)))
        }
        _ => None,
    }
}

fn parse_kind(name: &str) -> Option<ComponentKind> {
    [
        ComponentKind::Cpu,
        ComponentKind::Gpu,
        ComponentKind::Sha,
        ComponentKind::Memory,
    ]
    .into_iter()
    .find(|k| k.name() == name)
}

fn encode_series(out: &mut String, label: &str, series: Option<&TimeSeries>) {
    match series {
        None => out.push_str(&format!("{label} none\n")),
        Some(ts) => {
            out.push_str(&format!("{label} {} {}\n", ts.dt().as_nanos(), ts.len()));
            for &v in ts.values() {
                out.push_str(&f64_hex(v));
                out.push('\n');
            }
        }
    }
}

fn decode_series<'a>(
    label: &str,
    lines: &mut impl Iterator<Item = &'a str>,
) -> Option<Option<TimeSeries>> {
    let head = lines.next()?;
    let rest = head.strip_prefix(label)?.strip_prefix(' ')?;
    if rest == "none" {
        return Some(None);
    }
    let mut parts = rest.split(' ');
    let dt_ns: u64 = parts.next()?.parse().ok()?;
    let n: usize = parts.next()?.parse().ok()?;
    if dt_ns == 0 {
        return None;
    }
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(parse_f64(lines.next()?)?);
    }
    Some(Some(TimeSeries::from_values(
        SimDuration::from_nanos(dt_ns),
        values,
    )))
}

/// Serialize an outcome to the cache's line-oriented text form. Floats are
/// written as IEEE-754 bit patterns in hex, so decoding reproduces the
/// outcome *bit-exactly* — the cached result is byte-identical to the run
/// that produced it (pinned by the determinism tests).
pub fn encode_outcome(out: &RunOutcome) -> String {
    let mut s = String::new();
    s.push_str(SCHEMA);
    s.push('\n');
    s.push_str(&format!("scheme {}\n", scheme_tag(out.scheme)));
    s.push_str(&format!("duration_ns {}\n", out.duration.as_nanos()));
    s.push_str(&format!("avg_power {}\n", f64_hex(out.avg_power.value())));
    s.push_str(&format!("energy_j {}\n", f64_hex(out.energy_j)));
    s.push_str(&format!("mean_v {}\n", f64_hex(out.mean_global_voltage)));
    s.push_str(&format!("windowed_max {}\n", out.windowed_max.len()));
    for (w, p) in &out.windowed_max {
        s.push_str(&format!("wm {} {}\n", w.as_nanos(), f64_hex(p.value())));
    }
    s.push_str(&format!("work {}\n", out.work.len()));
    for (k, w) in &out.work {
        s.push_str(&format!("wk {} {}\n", k.name(), f64_hex(*w)));
    }
    let r = &out.resilience;
    s.push_str(&format!(
        "resilience {} {} {} {}\n",
        r.faults_injected, r.health_transitions, r.emergency_engagements, r.emergency_quanta
    ));
    encode_series(&mut s, "trace", out.trace.as_ref());
    encode_series(&mut s, "voltage_trace", out.voltage_trace.as_ref());
    s
}

fn field<'a>(lines: &mut impl Iterator<Item = &'a str>, label: &str) -> Option<String> {
    lines
        .next()?
        .strip_prefix(label)?
        .strip_prefix(' ')
        .map(str::to_string)
}

/// Parse a cache entry back into an outcome. Any malformed, truncated or
/// schema-mismatched body yields `None` — callers treat that as a miss and
/// recompute, so on-disk corruption can never poison a campaign.
pub fn decode_outcome(body: &str) -> Option<RunOutcome> {
    let mut lines = body.lines();
    if lines.next()? != SCHEMA {
        return None;
    }
    let scheme = parse_scheme(&field(&mut lines, "scheme")?)?;
    let duration = SimDuration::from_nanos(field(&mut lines, "duration_ns")?.parse().ok()?);
    let avg_power = Watt::new(parse_f64(&field(&mut lines, "avg_power")?)?);
    let energy_j = parse_f64(&field(&mut lines, "energy_j")?)?;
    let mean_global_voltage = parse_f64(&field(&mut lines, "mean_v")?)?;

    let n_wm: usize = field(&mut lines, "windowed_max")?.parse().ok()?;
    let mut windowed_max = Vec::with_capacity(n_wm);
    for _ in 0..n_wm {
        let row = field(&mut lines, "wm")?;
        let mut parts = row.split(' ');
        let w = SimDuration::from_nanos(parts.next()?.parse().ok()?);
        let p = Watt::new(parse_f64(parts.next()?)?);
        windowed_max.push((w, p));
    }

    let n_wk: usize = field(&mut lines, "work")?.parse().ok()?;
    let mut work = Vec::with_capacity(n_wk);
    for _ in 0..n_wk {
        let row = field(&mut lines, "wk")?;
        let mut parts = row.split(' ');
        let kind = parse_kind(parts.next()?)?;
        let w = parse_f64(parts.next()?)?;
        work.push((kind, w));
    }

    let res = field(&mut lines, "resilience")?;
    let mut parts = res.split(' ');
    let resilience = ResilienceCounters {
        faults_injected: parts.next()?.parse().ok()?,
        health_transitions: parts.next()?.parse().ok()?,
        emergency_engagements: parts.next()?.parse().ok()?,
        emergency_quanta: parts.next()?.parse().ok()?,
    };

    let trace = decode_series("trace", &mut lines)?;
    let voltage_trace = decode_series("voltage_trace", &mut lines)?;
    if lines.next().is_some() {
        return None;
    }

    Some(RunOutcome {
        scheme,
        duration,
        avg_power,
        energy_j,
        windowed_max,
        work,
        mean_global_voltage,
        trace,
        voltage_trace,
        resilience,
    })
}

/// Statistics from one cached campaign dispatch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Jobs answered from disk.
    pub hits: usize,
    /// Cacheable jobs whose key was simply absent — the ordinary cold
    /// path. They ran and were then stored.
    pub misses: usize,
    /// Jobs that cannot be cached (tracer/profiler attached).
    pub uncacheable: usize,
    /// Cacheable jobs whose entry existed on disk but was unreadable or
    /// undecodable. The damaged entry is deleted, the job reruns, and the
    /// fresh outcome is re-stored — but the count is surfaced separately
    /// because persistent corruption is an operational signal (failing
    /// disk, schema drift, a concurrent writer misbehaving), not a cold
    /// cache.
    pub corrupt: usize,
}

impl CacheStats {
    /// `hits + misses + uncacheable + corrupt`.
    pub fn total(&self) -> usize {
        self.hits + self.misses + self.uncacheable + self.corrupt
    }
}

/// Outcome of a classified cache probe ([`RunCache::lookup_classified`]).
#[derive(Debug, Clone)]
pub enum Lookup {
    /// The entry existed and decoded bit-exactly.
    Hit(Box<RunOutcome>),
    /// No entry for this key — the ordinary miss.
    Absent,
    /// An entry file existed but was unreadable or failed to decode; it
    /// has been deleted so the follow-up insert repairs the store.
    Corrupt,
}

/// A [`CacheStore`] specialized to simulation outcomes.
#[derive(Debug, Clone)]
pub struct RunCache {
    store: CacheStore,
}

impl RunCache {
    /// A cache rooted at `dir` (created lazily on first insert).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        RunCache {
            store: CacheStore::new(dir),
        }
    }

    /// A cache at the conventional `results/cache/` location.
    pub fn at_default() -> Self {
        Self::new(default_cache_dir())
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        self.store.dir()
    }

    /// Fetch a cached outcome; `None` on miss or undecodable entry.
    /// Campaign code that should distinguish (and clean up) damaged
    /// entries uses [`RunCache::lookup_classified`].
    pub fn lookup(&self, key: ContentHash) -> Option<RunOutcome> {
        match self.lookup_classified(key) {
            Lookup::Hit(out) => Some(*out),
            Lookup::Absent | Lookup::Corrupt => None,
        }
    }

    /// Fetch a cached outcome, telling a cold key apart from a damaged
    /// entry. "Damaged" covers both an unreadable file and a readable body
    /// that fails [`decode_outcome`] (truncated flush, foreign schema,
    /// bit rot); either way the entry is deleted on the spot so the
    /// recompute-and-insert that follows repairs the store instead of
    /// tripping over the same carcass every warm pass.
    pub fn lookup_classified(&self, key: ContentHash) -> Lookup {
        match self.store.load_classified(key) {
            hcapp_cache::Load::Hit(body) => match decode_outcome(&body) {
                Some(out) => Lookup::Hit(Box::new(out)),
                None => {
                    self.store.remove(key);
                    Lookup::Corrupt
                }
            },
            hcapp_cache::Load::Absent => Lookup::Absent,
            hcapp_cache::Load::Unreadable => {
                self.store.remove(key);
                Lookup::Corrupt
            }
        }
    }

    /// Store an outcome under `key`.
    pub fn insert(&self, key: ContentHash, outcome: &RunOutcome) -> bool {
        self.store.save(key, &encode_outcome(outcome))
    }

    /// Delete every entry; returns how many were removed.
    pub fn wipe(&self) -> usize {
        self.store.wipe()
    }

    /// Number of entries on disk.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }
}

/// [`crate::parallel::run_all`] with memoization: cache hits are answered
/// from disk, only misses are dispatched to the worker pool, and every
/// cacheable miss is stored on the way out. Result order matches job
/// order, and each result is bit-identical to what an uncached run would
/// produce (the codec round-trips floats exactly).
pub fn run_all_cached(
    jobs: Vec<(SystemConfig, RunConfig)>,
    workers: usize,
    cache: &RunCache,
) -> (Vec<RunOutcome>, CacheStats) {
    let mut stats = CacheStats::default();
    let mut slots: Vec<Option<RunOutcome>> = Vec::with_capacity(jobs.len());
    let mut misses: Vec<(usize, Option<ContentHash>)> = Vec::new();
    let mut miss_jobs: Vec<(SystemConfig, RunConfig)> = Vec::new();
    for (i, (sys, run)) in jobs.into_iter().enumerate() {
        let key = job_key(&sys, &run);
        let probe = key.map(|k| cache.lookup_classified(k));
        if let Some(Lookup::Hit(hit)) = probe {
            stats.hits += 1;
            slots.push(Some(*hit));
        } else {
            match probe {
                Some(Lookup::Corrupt) => stats.corrupt += 1,
                Some(_) => stats.misses += 1,
                None => stats.uncacheable += 1,
            }
            slots.push(None);
            misses.push((i, key));
            miss_jobs.push((sys, run));
        }
    }
    let fresh = crate::parallel::run_all(miss_jobs, workers);
    for ((i, key), outcome) in misses.into_iter().zip(fresh) {
        if let Some(k) = key {
            cache.insert(k, &outcome);
        }
        slots[i] = Some(outcome);
    }
    let results = slots
        .into_iter()
        .map(|s| s.expect("invariant: every job slot is filled by a cache hit or a fresh run"))
        .collect();
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limits::PowerLimit;
    use hcapp_sim_core::units::Volt;
    use hcapp_workloads::combos::combo_suite;

    fn temp_cache(tag: &str) -> RunCache {
        let dir = std::env::temp_dir().join(format!("hcapp_run_cache_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        RunCache::new(dir)
    }

    fn job() -> (SystemConfig, RunConfig) {
        let sys = SystemConfig::paper_system(combo_suite()[0], 7);
        let run = RunConfig::new(
            SimDuration::from_micros(200),
            ControlScheme::Hcapp,
            PowerLimit::package_pin().guardbanded_target(),
        );
        (sys, run)
    }

    #[test]
    fn key_is_stable_and_config_sensitive() {
        let (sys, run) = job();
        assert_eq!(job_key(&sys, &run), job_key(&sys, &run));
        let mut sys2 = sys.clone();
        sys2.seed += 1;
        assert_ne!(job_key(&sys, &run), job_key(&sys2, &run));
        let mut run2 = run.clone();
        run2.duration = SimDuration::from_micros(300);
        assert_ne!(job_key(&sys, &run), job_key(&sys, &run2));
    }

    #[test]
    fn key_ignores_batch_quanta() {
        let (sys, run) = job();
        let rebatched = run.clone().with_batch_quanta(1);
        assert_eq!(job_key(&sys, &run), job_key(&sys, &rebatched));
    }

    #[test]
    fn codec_roundtrips_bit_exactly() {
        let (sys, run) = job();
        let out = crate::coordinator::Simulation::new(sys, run.with_trace()).run();
        let decoded = decode_outcome(&encode_outcome(&out)).expect("own encoding decodes");
        assert_eq!(decoded.scheme, out.scheme);
        assert_eq!(decoded.duration, out.duration);
        assert_eq!(decoded.avg_power.value().to_bits(), out.avg_power.value().to_bits());
        assert_eq!(decoded.energy_j.to_bits(), out.energy_j.to_bits());
        assert_eq!(decoded.windowed_max, out.windowed_max);
        assert_eq!(decoded.work, out.work);
        assert_eq!(
            decoded.mean_global_voltage.to_bits(),
            out.mean_global_voltage.to_bits()
        );
        assert_eq!(decoded.trace, out.trace);
        assert_eq!(decoded.voltage_trace, out.voltage_trace);
        assert_eq!(decoded.resilience, out.resilience);
        // And the re-encoding is byte-identical.
        assert_eq!(encode_outcome(&decoded), encode_outcome(&out));
    }

    #[test]
    fn corrupt_entries_decode_to_none() {
        assert!(decode_outcome("").is_none());
        assert!(decode_outcome("not-the-schema\n").is_none());
        let (sys, run) = job();
        let out = crate::coordinator::Simulation::new(sys, run).run();
        let body = encode_outcome(&out);
        let truncated = &body[..body.len() / 2];
        assert!(decode_outcome(truncated).is_none());
        let trailing = format!("{body}garbage\n");
        assert!(decode_outcome(&trailing).is_none());
    }

    #[test]
    fn scheme_tags_roundtrip() {
        for s in [
            ControlScheme::Hcapp,
            ControlScheme::RaplLike,
            ControlScheme::SoftwareLike,
            ControlScheme::FixedVoltage(Volt::new(0.9371)),
            ControlScheme::CustomPeriod(SimDuration::from_micros(37)),
        ] {
            assert_eq!(parse_scheme(&scheme_tag(s)), Some(s));
        }
        assert_eq!(parse_scheme("bogus"), None);
    }

    #[test]
    fn traced_jobs_are_uncacheable() {
        let (sys, mut run) = job();
        assert!(job_key(&sys, &run).is_some());
        run.tracer = Some(hcapp_telemetry::tracer::shared(hcapp_telemetry::NullTracer));
        assert!(job_key(&sys, &run).is_none());
    }

    #[test]
    fn warm_lookup_is_bit_identical_to_cold_run() {
        let cache = temp_cache("warm");
        let (sys, run) = job();
        let (cold, s1) = run_all_cached(vec![(sys.clone(), run.clone())], 2, &cache);
        assert_eq!((s1.hits, s1.misses, s1.corrupt), (0, 1, 0));
        let (warm, s2) = run_all_cached(vec![(sys, run)], 2, &cache);
        assert_eq!((s2.hits, s2.misses, s2.corrupt), (1, 0, 0));
        assert_eq!(encode_outcome(&warm[0]), encode_outcome(&cold[0]));
        assert_eq!(cache.wipe(), 1);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_entry_is_counted_deleted_and_repaired() {
        let cache = temp_cache("corrupt");
        let (sys, run) = job();
        let key = job_key(&sys, &run).expect("untraced job is cacheable");
        let (cold, _) = run_all_cached(vec![(sys.clone(), run.clone())], 2, &cache);

        // Truncate the entry on disk: a readable file that no longer
        // decodes. The classified probe must call it corrupt (not a plain
        // miss) and evict it.
        let path = cache.dir().join(format!("{}.entry", key.to_hex()));
        let body = std::fs::read_to_string(&path).expect("entry written");
        std::fs::write(&path, &body[..body.len() / 2]).expect("writable cache dir");
        assert!(matches!(cache.lookup_classified(key), Lookup::Corrupt));
        assert!(!path.exists(), "corrupt entry must be deleted");
        assert!(matches!(cache.lookup_classified(key), Lookup::Absent));

        // Same thing end-to-end through a campaign dispatch: the damaged
        // entry is counted as corrupt, rerun, and the store repaired —
        // so the next pass is a clean hit again.
        cache.insert(key, &cold[0]);
        std::fs::write(&path, "hcapp-cache-v1\ngarbage").expect("writable cache dir");
        let (again, s) = run_all_cached(vec![(sys.clone(), run.clone())], 2, &cache);
        assert_eq!((s.hits, s.misses, s.corrupt), (0, 0, 1));
        assert_eq!(s.total(), 1);
        assert_eq!(encode_outcome(&again[0]), encode_outcome(&cold[0]));
        let (_, s) = run_all_cached(vec![(sys, run)], 2, &cache);
        assert_eq!((s.hits, s.misses, s.corrupt), (1, 0, 0));
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}

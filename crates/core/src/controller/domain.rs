//! The domain controller (§3.2).
//!
//! One per chiplet. Normalizes the global voltage to the chiplet's legal
//! range through its domain VR — "a processor may need a voltage in the
//! range of 1 V while a specific accelerator needs the input voltage to be
//! between 0.6 V and 0.8 V" — and applies the software priority register:
//! the incoming global voltage is multiplied by the priority value *before*
//! domain-specific scaling. Domains that need a constant voltage (memory)
//! use [`DomainMode::Fixed`].

use hcapp_sim_core::units::Volt;

/// How a domain derives its voltage from the global voltage (§3.2's two
/// domain classes: tracking and constant).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DomainMode {
    /// `V_dom = clamp(V_global · priority · scale)` — tracking domains
    /// (CPU scale 1.0, GPU/SHA scale 0.75 in the paper system).
    Scaled {
        /// Ratio of the domain voltage to the global voltage.
        scale: f64,
    },
    /// A constant voltage regardless of the global voltage (memory, §3.2).
    Fixed {
        /// The constant output voltage.
        voltage: Volt,
    },
}

/// Level-2 controller of the HCAPP hierarchy (§3.2): global voltage →
/// chiplet domain voltage.
#[derive(Debug, Clone)]
pub struct DomainController {
    mode: DomainMode,
    /// Legal output range of the domain VR.
    v_min: Volt,
    v_max: Volt,
    /// The software priority register (§3.2). 1.0 = neutral.
    priority: f64,
}

impl DomainController {
    /// Create a tracking domain with the given scale and legal range
    /// (§3.2; the paper system uses scale 1.0 for CPU, 0.75 for GPU/SHA).
    pub fn scaled(scale: f64, v_min: Volt, v_max: Volt) -> Self {
        assert!(scale > 0.0, "non-positive domain scale");
        assert!(v_min.value() <= v_max.value(), "inverted domain range");
        DomainController {
            mode: DomainMode::Scaled { scale },
            v_min,
            v_max,
            priority: 1.0,
        }
    }

    /// Create a fixed-voltage domain (memory-style, §3.2).
    pub fn fixed(voltage: Volt) -> Self {
        DomainController {
            mode: DomainMode::Fixed { voltage },
            v_min: voltage,
            v_max: voltage,
            priority: 1.0,
        }
    }

    /// The domain's derivation mode (§3.2).
    pub fn mode(&self) -> DomainMode {
        self.mode
    }

    /// Current value of the software priority register (§3.2).
    pub fn priority(&self) -> f64 {
        self.priority
    }

    /// Software interface: write the priority register (§3.2 — the paper's
    /// de-prioritization hook). Values are clamped to a sane `[0.5, 1.5]`
    /// band (a register implementation would have a bounded field).
    pub fn set_priority(&mut self, priority: f64) {
        self.priority = priority.clamp(0.5, 1.5);
    }

    /// The domain voltage for the given (delivered) global voltage:
    /// `V_dom = clamp(V_global · priority · scale)` per §3.2.
    pub fn domain_voltage(&self, v_global: Volt) -> Volt {
        match self.mode {
            DomainMode::Scaled { scale } => {
                Volt::new(v_global.value() * self.priority * scale).clamp(self.v_min, self.v_max)
            }
            DomainMode::Fixed { voltage } => voltage,
        }
    }

    /// Legal output range of the domain VR (§3.2's per-chiplet voltage
    /// constraints).
    pub fn range(&self) -> (Volt, Volt) {
        (self.v_min, self.v_max)
    }
}

impl hcapp_sim_core::state::Snapshot for DomainController {
    fn save_state(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        // `mode` / `v_min` / `v_max` are construction-time configuration;
        // only the software priority register mutates during a run.
        w.f64("domctl.priority", self.priority);
    }

    fn load_state(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        let priority = r.f64("domctl.priority")?;
        if !(priority > 0.0) {
            return None;
        }
        self.priority = priority;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::assert_close;

    #[test]
    fn scaled_tracks_global() {
        let d = DomainController::scaled(0.75, Volt::new(0.45), Volt::new(0.98));
        assert_close!(d.domain_voltage(Volt::new(1.0)).value(), 0.75, 1e-12);
        assert_close!(d.domain_voltage(Volt::new(0.8)).value(), 0.60, 1e-12);
    }

    #[test]
    fn scaled_clamps_to_legal_range() {
        let d = DomainController::scaled(0.75, Volt::new(0.45), Volt::new(0.80));
        // 1.3 × 0.75 = 0.975 → clamped to 0.80.
        assert_close!(d.domain_voltage(Volt::new(1.3)).value(), 0.80, 1e-12);
        // 0.5 × 0.75 = 0.375 → clamped to 0.45.
        assert_close!(d.domain_voltage(Volt::new(0.5)).value(), 0.45, 1e-12);
    }

    #[test]
    fn priority_scales_before_domain_scaling() {
        // The paper's example: de-prioritized by 10% → global × 0.9.
        let mut d = DomainController::scaled(1.0, Volt::new(0.6), Volt::new(1.3));
        d.set_priority(0.9);
        assert_close!(d.domain_voltage(Volt::new(1.0)).value(), 0.9, 1e-12);
    }

    #[test]
    fn priority_register_is_clamped() {
        let mut d = DomainController::scaled(1.0, Volt::new(0.6), Volt::new(1.3));
        d.set_priority(5.0);
        assert_close!(d.priority(), 1.5, 1e-12);
        d.set_priority(-1.0);
        assert_close!(d.priority(), 0.5, 1e-12);
    }

    #[test]
    fn fixed_domain_ignores_global_and_priority() {
        let mut d = DomainController::fixed(Volt::new(1.1));
        d.set_priority(0.5);
        assert_close!(d.domain_voltage(Volt::new(0.6)).value(), 1.1, 1e-12);
        assert_close!(d.domain_voltage(Volt::new(1.3)).value(), 1.1, 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-positive domain scale")]
    fn zero_scale_panics() {
        let _ = DomainController::scaled(0.0, Volt::new(0.5), Volt::new(1.0));
    }
}

//! The global controller (§3.1).
//!
//! Runs once per control period. Reads the package power from the global
//! VR's sensing circuitry, forms the cube-root voltage error of Eq. 1 —
//!
//! ```text
//! V_err = cbrt(P_SPEC − P_NOW)
//! ```
//!
//! (cube root because power is approximately cubic in voltage, see
//! `hcapp-power-model`) — and feeds it through the feed-forward PID of
//! Eq. 2 to produce the next global VR setpoint.

use hcapp_sim_core::time::SimDuration;
use hcapp_sim_core::units::{Volt, Watt};

use crate::pid::{PidController, PidGains};

/// Level-1 controller of the HCAPP hierarchy (§3.1): package power →
/// global voltage setpoint via the cube-root error (Eq. 1) and PID (Eq. 2).
#[derive(Debug, Clone)]
pub struct GlobalController {
    pid: PidController,
    target: Watt,
}

impl GlobalController {
    /// Create a controller regulating to `target` watts (`P_SPEC` of
    /// Eq. 1).
    pub fn new(gains: PidGains, target: Watt) -> Self {
        assert!(target.value() > 0.0, "non-positive power target");
        GlobalController {
            pid: PidController::new(gains),
            target,
        }
    }

    /// The regulated power target (`P_SPEC` of Eq. 1).
    pub fn target(&self) -> Watt {
        self.target
    }

    /// Change the power target at runtime (the paper notes the limit "could
    /// be changed dynamically during a run without needing costly PID
    /// analysis", §5.2).
    pub fn set_target(&mut self, target: Watt) {
        assert!(target.value() > 0.0, "non-positive power target");
        self.target = target;
    }

    /// Eq. 1: the signed cube root of the power error.
    #[inline]
    pub fn voltage_error(&self, p_now: Watt) -> f64 {
        let err = self.target.value() - p_now.value();
        err.signum() * err.abs().cbrt()
    }

    /// One control step (§3.1): sensed power in, next global voltage
    /// setpoint out — Eq. 1's error through Eq. 2's feed-forward PID.
    pub fn update(&mut self, p_now: Watt, period: SimDuration) -> Volt {
        let v_err = self.voltage_error(p_now);
        Volt::new(self.pid.update(v_err, period))
    }

    /// Reset controller dynamics (the integral state of Eq. 2).
    pub fn reset(&mut self) {
        self.pid.reset();
    }

    /// Access the inner PID of Eq. 2 (diagnostics, tuning).
    pub fn pid(&self) -> &PidController {
        &self.pid
    }
}

impl hcapp_sim_core::state::Snapshot for GlobalController {
    fn save_state(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        hcapp_sim_core::state::Snapshot::save_state(&self.pid, w);
        w.f64("global.target", self.target.value());
    }

    fn load_state(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        hcapp_sim_core::state::Snapshot::load_state(&mut self.pid, r)?;
        let target = r.f64("global.target")?;
        if !(target > 0.0) {
            return None;
        }
        self.target = Watt::new(target);
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::assert_close;

    fn ctl(target: f64) -> GlobalController {
        GlobalController::new(PidGains::paper_default(), Watt::new(target))
    }

    #[test]
    fn cube_root_error_is_signed() {
        let c = ctl(100.0);
        assert_close!(c.voltage_error(Watt::new(92.0)), 2.0, 1e-12);
        assert_close!(c.voltage_error(Watt::new(108.0)), -2.0, 1e-12);
        assert_close!(c.voltage_error(Watt::new(100.0)), 0.0, 1e-12);
    }

    #[test]
    fn cube_root_compresses_large_errors() {
        let c = ctl(100.0);
        let small = c.voltage_error(Watt::new(99.0));
        let large = c.voltage_error(Watt::new(0.0));
        // 100× the power error is only ~4.6× the voltage error.
        assert!(large / small < 5.0);
        assert!(large / small > 4.0);
    }

    #[test]
    fn under_target_raises_voltage() {
        let mut c = ctl(100.0);
        let v = c.update(Watt::new(60.0), SimDuration::from_micros(1));
        assert!(v.value() > 0.95, "voltage should rise above offset, got {v}");
    }

    #[test]
    fn over_target_lowers_voltage() {
        let mut c = ctl(100.0);
        let v = c.update(Watt::new(140.0), SimDuration::from_micros(1));
        assert!(v.value() < 0.95, "voltage should fall below offset, got {v}");
    }

    #[test]
    fn output_respects_global_range() {
        let mut c = ctl(100.0);
        // Massive sustained under-draw saturates at the ceiling.
        let mut v = Volt::ZERO;
        for _ in 0..100_000 {
            v = c.update(Watt::new(1.0), SimDuration::from_micros(1));
        }
        assert_close!(v.value(), PidGains::paper_default().out_max, 1e-9);
        // And over-draw at the floor.
        c.reset();
        for _ in 0..100_000 {
            v = c.update(Watt::new(500.0), SimDuration::from_micros(1));
        }
        assert_close!(v.value(), PidGains::paper_default().out_min, 1e-9);
    }

    #[test]
    fn converges_on_cubic_plant() {
        // Closed loop against a P = k·V³ plant: should settle near the
        // voltage where k·V³ = target.
        let mut c = ctl(86.0);
        let k = 86.0 / 0.95f64.powi(3); // plant calibrated so 0.95 V = 86 W
        let dt = SimDuration::from_micros(1);
        let mut v: f64 = 0.8;
        let mut settled = Vec::new();
        for i in 0..20_000 {
            let p = k * v.powi(3);
            v = c.update(Watt::new(p), dt).value();
            if i >= 15_000 {
                settled.push(p);
            }
        }
        // The loop regulates *power*: the mean settled power sits on the
        // target even though the voltage limit-cycles slightly below the
        // equivalent DC point (power is convex in voltage).
        let mean_p = settled.iter().sum::<f64>() / settled.len() as f64;
        assert_close!(mean_p, 86.0, 2.0);
        assert_close!(v, 0.95, 0.05);
    }

    #[test]
    fn retarget_mid_run() {
        let mut c = ctl(100.0);
        c.set_target(Watt::new(80.0));
        assert_close!(c.target().value(), 80.0, 1e-12);
        assert_close!(c.voltage_error(Watt::new(80.0)), 0.0, 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-positive power target")]
    fn zero_target_panics() {
        let _ = ctl(0.0);
    }
}

//! Local controllers (§3.3).
//!
//! One per locally-controllable unit (CPU core, GPU SM) or per chiplet
//! (accelerator pass-through). Each maintains a *local voltage ratio* the
//! unit's supply is derived from (`V_unit = V_domain · ratio`) and adjusts
//! it from local metrics:
//!
//! * [`CpuIpcStaticController`] — CAPP's design (§3.3.1/§4.2): if the core's
//!   IPC exceeds 60% of the maximum possible IPC the ratio rises by 0.05; if
//!   it falls below 30% the ratio drops by 0.05.
//! * [`GpuIpcDynamicController`] — GPU-CAPP's dynamic-IPC design (§3.3.2 /
//!   §4.3): same per-SM rule, but the thresholds themselves move ±5% per
//!   cycle to steer the *domain* voltage toward a preset target (1.05 V in
//!   the paper's GPU scale; our GPU domain is calibrated around 0.72 V),
//!   with a 5% dead zone. This spreads SMs into a balanced distribution of
//!   higher and lower ratios instead of letting static thresholds go stale.
//! * [`PassThroughController`] — §3.3.3's accelerator controller: ratio 1.0
//!   with over/under-voltage protection only (the protection clamps live in
//!   the component simulators).
//! * [`AdversarialController`] — §3.3.3's thought experiment: always demands
//!   the maximum ratio and ignores software de-prioritization; HCAPP's
//!   global level still enforces the cap (verified by an integration test).

use hcapp_sim_core::units::Volt;

/// A level-3 controller of the HCAPP hierarchy (§3.3) for the units of one
/// domain.
pub trait LocalController: Send + std::fmt::Debug {
    /// Update the per-unit ratios from the units' measured IPC fractions
    /// and the current domain voltage. Called once per control period.
    fn update(&mut self, ipc_fractions: &[f64], v_domain: Volt);

    /// The current per-unit local voltage ratios (`ratios().len()` equals
    /// the unit count, or 1 for chiplet-granular controllers).
    fn ratios(&self) -> &[f64];

    /// Reset to the initial state.
    fn reset(&mut self);

    /// Controller name for reports.
    fn name(&self) -> &'static str;

    /// The `(up, down)` IPC thresholds the §3.3 ratio rule currently
    /// compares against, for telemetry. `None` for controllers without an
    /// IPC rule (pass-through, adversarial).
    fn decision_thresholds(&self) -> Option<(f64, f64)> {
        None
    }

    /// Checkpoint the controller's mutable state (default: stateless —
    /// writes nothing). Stateful controllers override both methods.
    fn save_state(&self, _w: &mut hcapp_sim_core::state::StateWriter) {}

    /// Restore state written by [`LocalController::save_state`] (default:
    /// stateless — reads nothing).
    fn load_state(&mut self, _r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        Some(())
    }
}

/// Bounds shared by the ratio-stepping controllers.
const RATIO_MIN: f64 = 0.70;
const RATIO_MAX: f64 = 1.00;
const RATIO_STEP: f64 = 0.05;

/// CAPP's static-threshold IPC controller (§3.3.1), one ratio per core.
#[derive(Debug, Clone)]
pub struct CpuIpcStaticController {
    ratios: Vec<f64>,
    /// Raise the ratio above this IPC fraction (paper: 0.6).
    pub up_threshold: f64,
    /// Lower the ratio below this IPC fraction (paper: 0.3).
    pub down_threshold: f64,
}

impl CpuIpcStaticController {
    /// The paper's configuration: thresholds 60% / 30% of peak IPC.
    pub fn new(units: usize) -> Self {
        Self::with_thresholds(units, 0.6, 0.3)
    }

    /// Custom thresholds around §3.3.1's rule (used by the threshold
    /// ablation).
    pub fn with_thresholds(units: usize, up: f64, down: f64) -> Self {
        assert!(units > 0, "need at least one unit");
        assert!(down < up, "down threshold must be below up threshold");
        CpuIpcStaticController {
            ratios: vec![RATIO_MAX; units],
            up_threshold: up,
            down_threshold: down,
        }
    }
}

impl LocalController for CpuIpcStaticController {
    fn update(&mut self, ipc_fractions: &[f64], _v_domain: Volt) {
        debug_assert_eq!(ipc_fractions.len(), self.ratios.len());
        for (r, &ipc) in self.ratios.iter_mut().zip(ipc_fractions) {
            if ipc > self.up_threshold {
                *r = (*r + RATIO_STEP).min(RATIO_MAX);
            } else if ipc < self.down_threshold {
                *r = (*r - RATIO_STEP).max(RATIO_MIN);
            }
        }
    }

    fn ratios(&self) -> &[f64] {
        &self.ratios
    }

    fn reset(&mut self) {
        self.ratios.fill(RATIO_MAX);
    }

    fn name(&self) -> &'static str {
        "cpu-ipc-static"
    }

    fn decision_thresholds(&self) -> Option<(f64, f64)> {
        Some((self.up_threshold, self.down_threshold))
    }

    fn save_state(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        // Thresholds are configuration; only the ratios mutate.
        w.f64_slice("local.ratios", &self.ratios);
    }

    fn load_state(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        let ratios = r.f64_vec("local.ratios")?;
        if ratios.len() != self.ratios.len() {
            return None;
        }
        self.ratios = ratios;
        Some(())
    }
}

/// GPU-CAPP's dynamic-IPC controller (§3.3.2), one ratio per SM with
/// shared moving thresholds.
#[derive(Debug, Clone)]
pub struct GpuIpcDynamicController {
    ratios: Vec<f64>,
    up_threshold: f64,
    down_threshold: f64,
    /// The domain voltage the threshold adaptation steers toward.
    pub target_domain_voltage: Volt,
    /// Relative dead zone around the target (paper: 5%).
    pub dead_zone: f64,
    /// Relative threshold step per control cycle (paper: ±5%).
    pub threshold_step: f64,
}

impl GpuIpcDynamicController {
    /// The paper's configuration with a given domain voltage target.
    pub fn new(units: usize, target_domain_voltage: Volt) -> Self {
        assert!(units > 0, "need at least one unit");
        GpuIpcDynamicController {
            ratios: vec![RATIO_MAX; units],
            up_threshold: 0.6,
            down_threshold: 0.3,
            target_domain_voltage,
            dead_zone: 0.05,
            threshold_step: 0.05,
        }
    }

    /// The current (moving) thresholds of §3.3.2's adaptation, `(up, down)`.
    pub fn thresholds(&self) -> (f64, f64) {
        (self.up_threshold, self.down_threshold)
    }
}

impl LocalController for GpuIpcDynamicController {
    fn update(&mut self, ipc_fractions: &[f64], v_domain: Volt) {
        debug_assert_eq!(ipc_fractions.len(), self.ratios.len());
        // §3.3.2: when the domain voltage is below target, raise the
        // thresholds (more SMs fail them and shed voltage, lowering power so
        // the global controller can raise the rail); above target, lower
        // them.
        let target = self.target_domain_voltage.value();
        let dv = v_domain.value();
        if dv < target * (1.0 - self.dead_zone) {
            self.up_threshold *= 1.0 + self.threshold_step;
            self.down_threshold *= 1.0 + self.threshold_step;
        } else if dv > target * (1.0 + self.dead_zone) {
            self.up_threshold *= 1.0 - self.threshold_step;
            self.down_threshold *= 1.0 - self.threshold_step;
        }
        // Keep thresholds ordered and in the meaningful (0, 1) band.
        self.up_threshold = self.up_threshold.clamp(0.10, 0.95);
        self.down_threshold = self.down_threshold.clamp(0.02, self.up_threshold - 0.05);

        for (r, &ipc) in self.ratios.iter_mut().zip(ipc_fractions) {
            if ipc > self.up_threshold {
                *r = (*r + RATIO_STEP).min(RATIO_MAX);
            } else if ipc < self.down_threshold {
                *r = (*r - RATIO_STEP).max(RATIO_MIN);
            }
        }
    }

    fn ratios(&self) -> &[f64] {
        &self.ratios
    }

    fn reset(&mut self) {
        self.ratios.fill(RATIO_MAX);
        self.up_threshold = 0.6;
        self.down_threshold = 0.3;
    }

    fn name(&self) -> &'static str {
        "gpu-ipc-dynamic"
    }

    fn decision_thresholds(&self) -> Option<(f64, f64)> {
        Some(self.thresholds())
    }

    fn save_state(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        w.f64_slice("local.ratios", &self.ratios);
        // Unlike the static controller, the thresholds themselves adapt.
        w.f64("local.up", self.up_threshold);
        w.f64("local.down", self.down_threshold);
    }

    fn load_state(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        let ratios = r.f64_vec("local.ratios")?;
        if ratios.len() != self.ratios.len() {
            return None;
        }
        let up = r.f64("local.up")?;
        let down = r.f64("local.down")?;
        if !(0.0 < down && down < up && up < 1.0) {
            return None;
        }
        self.ratios = ratios;
        self.up_threshold = up;
        self.down_threshold = down;
        Some(())
    }
}

/// §3.3.3's accelerator controller: fixed full ratio; over/under-voltage
/// protection is handled by the component's own clamps.
#[derive(Debug, Clone)]
pub struct PassThroughController {
    ratios: [f64; 1],
}

impl PassThroughController {
    /// Create a pass-through controller (§3.3.3; chiplet-granular: one
    /// ratio).
    pub fn new() -> Self {
        PassThroughController { ratios: [1.0] }
    }
}

impl Default for PassThroughController {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalController for PassThroughController {
    fn update(&mut self, _ipc_fractions: &[f64], _v_domain: Volt) {}

    fn ratios(&self) -> &[f64] {
        &self.ratios
    }

    fn reset(&mut self) {}

    fn name(&self) -> &'static str {
        "pass-through"
    }
}

/// §3.3.3's adversarial design: always demands every volt available,
/// ignoring local metrics. Functionally a pass-through pinned at the
/// maximum ratio — the point is that HCAPP's *global* level still maintains
/// the package limit around it.
#[derive(Debug, Clone)]
pub struct AdversarialController {
    ratios: [f64; 1],
}

impl AdversarialController {
    /// Create an adversarial controller (§3.3.3's thought experiment).
    pub fn new() -> Self {
        AdversarialController { ratios: [RATIO_MAX] }
    }
}

impl Default for AdversarialController {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalController for AdversarialController {
    fn update(&mut self, _ipc_fractions: &[f64], _v_domain: Volt) {
        // Never yields, never reduces.
        self.ratios[0] = RATIO_MAX;
    }

    fn ratios(&self) -> &[f64] {
        &self.ratios
    }

    fn reset(&mut self) {
        self.ratios[0] = RATIO_MAX;
    }

    fn name(&self) -> &'static str {
        "adversarial"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::assert_close;

    #[test]
    fn cpu_static_raises_on_high_ipc() {
        let mut c = CpuIpcStaticController::new(2);
        // Pre-drop both ratios so a raise is observable.
        c.update(&[0.1, 0.1], Volt::new(1.0));
        assert_close!(c.ratios()[0], 0.95, 1e-12);
        c.update(&[0.8, 0.1], Volt::new(1.0));
        assert_close!(c.ratios()[0], 1.0, 1e-12); // raised (and capped)
        assert_close!(c.ratios()[1], 0.90, 1e-12); // lowered again
    }

    #[test]
    fn cpu_static_holds_between_thresholds() {
        let mut c = CpuIpcStaticController::new(1);
        c.update(&[0.45], Volt::new(1.0));
        assert_close!(c.ratios()[0], 1.0, 1e-12);
    }

    #[test]
    fn cpu_static_ratio_floor() {
        let mut c = CpuIpcStaticController::new(1);
        for _ in 0..100 {
            c.update(&[0.0], Volt::new(1.0));
        }
        assert_close!(c.ratios()[0], RATIO_MIN, 1e-12);
    }

    #[test]
    fn cpu_reset_restores_full_ratio() {
        let mut c = CpuIpcStaticController::new(3);
        c.update(&[0.0, 0.0, 0.0], Volt::new(1.0));
        c.reset();
        assert!(c.ratios().iter().all(|&r| (r - 1.0).abs() < 1e-12));
    }

    #[test]
    fn gpu_thresholds_rise_when_domain_voltage_low() {
        let mut c = GpuIpcDynamicController::new(4, Volt::new(0.72));
        let (up0, down0) = c.thresholds();
        c.update(&[0.5; 4], Volt::new(0.60)); // well below target
        let (up1, down1) = c.thresholds();
        assert!(up1 > up0);
        assert!(down1 > down0);
    }

    #[test]
    fn gpu_thresholds_fall_when_domain_voltage_high() {
        let mut c = GpuIpcDynamicController::new(4, Volt::new(0.72));
        let (up0, _) = c.thresholds();
        c.update(&[0.5; 4], Volt::new(0.85));
        let (up1, _) = c.thresholds();
        assert!(up1 < up0);
    }

    #[test]
    fn gpu_thresholds_hold_in_dead_zone() {
        let mut c = GpuIpcDynamicController::new(4, Volt::new(0.72));
        let before = c.thresholds();
        c.update(&[0.5; 4], Volt::new(0.72));
        assert_eq!(c.thresholds(), before);
    }

    #[test]
    fn gpu_thresholds_stay_ordered_under_pressure() {
        let mut c = GpuIpcDynamicController::new(2, Volt::new(0.72));
        for _ in 0..500 {
            c.update(&[0.5, 0.5], Volt::new(0.50));
        }
        let (up, down) = c.thresholds();
        assert!(down < up);
        assert!(up <= 0.95);
        for _ in 0..500 {
            c.update(&[0.5, 0.5], Volt::new(0.95));
        }
        let (up, down) = c.thresholds();
        assert!(down < up);
        assert!(down >= 0.02);
    }

    #[test]
    fn gpu_separates_busy_and_idle_sms() {
        let mut c = GpuIpcDynamicController::new(2, Volt::new(0.72));
        for _ in 0..20 {
            c.update(&[0.9, 0.05], Volt::new(0.72));
        }
        assert!(c.ratios()[0] > c.ratios()[1]);
        assert_close!(c.ratios()[1], RATIO_MIN, 1e-12);
    }

    #[test]
    fn pass_through_is_inert() {
        let mut c = PassThroughController::new();
        c.update(&[0.0], Volt::new(0.3));
        assert_eq!(c.ratios(), &[1.0]);
        assert_eq!(c.name(), "pass-through");
    }

    #[test]
    fn adversarial_never_yields() {
        let mut c = AdversarialController::new();
        for _ in 0..10 {
            c.update(&[0.0], Volt::new(0.3));
            assert_eq!(c.ratios(), &[RATIO_MAX]);
        }
    }

    #[test]
    #[should_panic(expected = "down threshold")]
    fn inverted_thresholds_panic() {
        let _ = CpuIpcStaticController::with_thresholds(1, 0.3, 0.6);
    }
}

//! The three controller levels of HCAPP (§3).
//!
//! * [`global`] — level 1: enforce the package power target through the
//!   global VR voltage.
//! * [`domain`] — level 2: normalize the global voltage per chiplet and
//!   expose the software priority interface.
//! * [`local`] — level 3: per-core/SM voltage-ratio controllers driven by
//!   local metrics (IPC).

pub mod domain;
pub mod global;
pub mod local;
pub mod thermal_guard;

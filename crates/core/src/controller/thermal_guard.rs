//! Thermal clamping (§3.3 extension).
//!
//! "The local controller also monitors the component for any thermal
//! effects using local thermal sensors. … If thermal effects did exist
//! throughout the workload, the local controller would reduce the local
//! voltage at the affected component to prevent failure."
//!
//! The paper's evaluation disables this by choosing power limits below the
//! TDP; we implement it anyway as the documented extension. Each guarded
//! domain carries a lumped RC thermal node fed by its own power; when the
//! junction temperature crosses the limit, the guard derates the domain
//! voltage proportionally to the excursion (a proportional thermal
//! throttle), and releases the derate as the silicon cools.

use hcapp_power_model::ThermalModel;
use hcapp_sim_core::time::SimDuration;
use hcapp_sim_core::units::Watt;

/// Thermal-guard parameters for a domain (§3.3's local thermal-sensor
/// extension).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalConfig {
    /// Thermal resistance junction→ambient in K/W.
    pub r_th: f64,
    /// Thermal capacitance in J/K.
    pub c_th: f64,
    /// Ambient temperature in kelvin.
    pub t_ambient: f64,
    /// Junction temperature limit in kelvin.
    pub t_limit: f64,
    /// Voltage derate per kelvin of excursion above the limit.
    pub derate_per_kelvin: f64,
    /// Floor on the derate factor (never throttle below this fraction).
    pub derate_floor: f64,
}

impl ThermalConfig {
    /// A laptop-class package: 1.2 K/W to ambient at 320 K, limit 358 K
    /// (85 °C), 2%/K derate. The paper's evaluation (§5) keeps power limits
    /// below TDP so this never engages there; these defaults make the
    /// extension observable.
    pub fn default_package() -> Self {
        ThermalConfig {
            r_th: 1.2,
            c_th: 5e-3,
            t_ambient: 320.0,
            t_limit: 358.0,
            derate_per_kelvin: 0.02,
            derate_floor: 0.70,
        }
    }

    /// Validate invariants of the §3.3 thermal extension's parameters.
    ///
    /// # Panics
    /// Panics on non-physical parameters.
    pub fn validate(&self) {
        assert!(self.r_th > 0.0 && self.c_th > 0.0, "non-positive RC");
        assert!(self.t_limit > self.t_ambient, "limit below ambient");
        assert!(self.derate_per_kelvin >= 0.0);
        assert!((0.0..=1.0).contains(&self.derate_floor));
    }
}

/// Per-domain thermal sensor + proportional throttle implementing §3.3's
/// "local thermal sensors" clause.
#[derive(Debug, Clone)]
pub struct ThermalGuard {
    cfg: ThermalConfig,
    node: ThermalModel,
    derate: f64,
}

impl ThermalGuard {
    /// Create a guard at ambient temperature (§3.3 extension).
    pub fn new(cfg: ThermalConfig) -> Self {
        cfg.validate();
        ThermalGuard {
            node: ThermalModel::new(cfg.r_th, cfg.c_th, cfg.t_ambient),
            cfg,
            derate: 1.0,
        }
    }

    /// Feed one interval of domain power; returns the voltage derate factor
    /// to apply next interval (1.0 = no throttle). This is §3.3's "reduce
    /// the local voltage at the affected component to prevent failure".
    pub fn update(&mut self, domain_power: Watt, dt: SimDuration) -> f64 {
        self.node.step(domain_power, dt);
        let excess = self.node.temperature() - self.cfg.t_limit;
        self.derate = if excess > 0.0 {
            (1.0 - self.cfg.derate_per_kelvin * excess).max(self.cfg.derate_floor)
        } else {
            1.0
        };
        self.derate
    }

    /// Current junction temperature in kelvin (the §3.3 local thermal
    /// sensor reading).
    pub fn temperature(&self) -> f64 {
        self.node.temperature()
    }

    /// Current derate factor applied by the §3.3 thermal throttle.
    pub fn derate(&self) -> f64 {
        self.derate
    }

    /// Whether the §3.3 thermal throttle is currently engaged.
    pub fn throttling(&self) -> bool {
        self.derate < 1.0
    }
}

impl hcapp_sim_core::state::Snapshot for ThermalGuard {
    fn save_state(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        hcapp_sim_core::state::Snapshot::save_state(&self.node, w);
        w.f64("guard.derate", self.derate);
    }

    fn load_state(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        hcapp_sim_core::state::Snapshot::load_state(&mut self.node, r)?;
        let derate = r.f64("guard.derate")?;
        if !(0.0..=1.0).contains(&derate) {
            return None;
        }
        self.derate = derate;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guard() -> ThermalGuard {
        ThermalGuard::new(ThermalConfig::default_package())
    }

    #[test]
    fn cool_domain_is_untouched() {
        let mut g = guard();
        // 20 W: steady state 320 + 24 = 344 K, below the 358 K limit.
        for _ in 0..100_000 {
            let d = g.update(Watt::new(20.0), SimDuration::from_micros(1));
            assert_eq!(d, 1.0);
        }
        assert!(!g.throttling());
        assert!(g.temperature() < 358.0);
    }

    #[test]
    fn hot_domain_gets_throttled() {
        let mut g = guard();
        // 40 W: steady state 368 K, 10 K over the limit.
        for _ in 0..200_000 {
            g.update(Watt::new(40.0), SimDuration::from_micros(1));
        }
        assert!(g.throttling());
        assert!(g.derate() < 1.0);
        assert!(g.derate() >= 0.70);
    }

    #[test]
    fn throttle_releases_after_cooling() {
        let mut g = guard();
        for _ in 0..200_000 {
            g.update(Watt::new(45.0), SimDuration::from_micros(1));
        }
        assert!(g.throttling());
        for _ in 0..200_000 {
            g.update(Watt::new(5.0), SimDuration::from_micros(1));
        }
        assert!(!g.throttling(), "guard stuck at {:.3}", g.derate());
    }

    #[test]
    fn derate_floor_holds() {
        let mut g = ThermalGuard::new(ThermalConfig {
            derate_per_kelvin: 1.0, // absurdly aggressive
            ..ThermalConfig::default_package()
        });
        for _ in 0..300_000 {
            g.update(Watt::new(60.0), SimDuration::from_micros(1));
        }
        assert!((g.derate() - 0.70).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "limit below ambient")]
    fn bad_config_panics() {
        let _ = ThermalGuard::new(ThermalConfig {
            t_limit: 300.0,
            ..ThermalConfig::default_package()
        });
    }
}

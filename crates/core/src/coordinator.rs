//! The central simulation controller (§4.1).
//!
//! "The central simulation controller serves two purposes: modeling the
//! global controller and managing the overall simulation state between the
//! various connected simulators." [`Simulation`] is that controller: it owns
//! the global PID loop, the global VR, the sensing circuitry and the
//! metrics, and advances the domains one *control quantum* at a time.
//!
//! Time is organized in quanta because the global voltage schedule for a
//! quantum is fully determined at its boundary (the VR slews toward a fixed
//! setpoint), so domains are independent inside a quantum. The run loop is
//! generic over a `DomainExecutor`; the serial executor here and the
//! worker-pool executor in [`crate::parallel`] share [`Domain::run_quantum`]
//! and produce bit-identical results (per-domain powers are merged in domain
//! order in both).

use std::sync::Arc;

use hcapp_faults::{CtlFault, FaultInjector, FaultPlan};
use hcapp_pdn::{LinkFault, PowerSensor, SensorFault, VoltageRegulator};
use hcapp_sim_core::series::TimeSeries;
use hcapp_sim_core::time::{SimDuration, SimTime};
use hcapp_sim_core::units::{Volt, Watt};
use hcapp_sim_core::window::WindowedMaxTracker;
use hcapp_telemetry::{Profiler, SharedTracer, TraceEvent};

use crate::controller::global::GlobalController;
use crate::health::{DegradedConfig, EmergencyThrottle, HealthState, SensorWatchdog};
use crate::kernel::{BatchArena, DomainLanes, StepperPath};
use crate::outcome::{ResilienceCounters, RunOutcome};
use crate::scheme::ControlScheme;
use crate::software::{
    ComponentKind, DomainProgress, DynamicBacklogPolicy, NoPolicy, SoftwarePolicy,
    StaticPriorityPolicy,
};
use crate::system::{Domain, SystemConfig};

/// Which software policy a run uses (§5.3 / §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SoftwareConfig {
    /// Hardware-only HCAPP.
    None,
    /// §5.3's static priority: prioritize one component by de-prioritizing
    /// the others by 10%.
    StaticPriority(ComponentKind),
    /// §6's future-work dynamic policy.
    DynamicBacklog,
}

impl SoftwareConfig {
    fn build(&self) -> Box<dyn SoftwarePolicy> {
        match self {
            SoftwareConfig::None => Box::new(NoPolicy),
            SoftwareConfig::StaticPriority(kind) => Box::new(StaticPriorityPolicy::paper(*kind)),
            SoftwareConfig::DynamicBacklog => Box::<DynamicBacklogPolicy>::default(),
        }
    }
}

/// Everything the coordinator tells one domain for one quantum: the
/// software priority it should adopt, the degradation throttle on its
/// voltage, and any faults active on its command/broadcast paths. A clean
/// run uses [`QuantumCtl::clean`] — unit throttle (bitwise `1.0`, so the
/// multiply is an identity) and no faults — which keeps fault-free runs
/// byte-identical to the pre-fault-injection coordinator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantumCtl {
    /// Software priority to write to the domain's priority register.
    pub priority: f64,
    /// Voltage scale imposed by the degradation layer (domain-health hold ×
    /// emergency throttle); exactly `1.0` when the domain is trusted.
    pub throttle: f64,
    /// Fault on the global-voltage broadcast to this domain this quantum.
    pub link_fault: Option<LinkFault>,
    /// Fault on the domain's own controllers this quantum.
    pub ctl_fault: Option<CtlFault>,
}

impl QuantumCtl {
    /// A fault-free command carrying only a priority.
    pub fn clean(priority: f64) -> Self {
        QuantumCtl {
            priority,
            throttle: 1.0,
            link_fault: None,
            ctl_fault: None,
        }
    }
}

/// Per-run configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Simulated duration.
    pub duration: SimDuration,
    /// Control scheme.
    pub scheme: ControlScheme,
    /// The global controller's power target (`P_SPEC`), normally
    /// [`crate::limits::PowerLimit::guardbanded_target`].
    pub power_target: Watt,
    /// Scheduled mid-run target changes, `(when, new target)` — §5.2 notes
    /// the limit "could be changed dynamically during a run without needing
    /// costly PID analysis"; this is that knob. Must be sorted by time.
    pub retargets: Vec<(SimTime, Watt)>,
    /// Limit windows to track maxima over (default: 20 µs, 1 ms, 10 ms).
    pub track_windows: Vec<SimDuration>,
    /// Record the package power trace.
    pub record_trace: bool,
    /// Record the global voltage trace (same sample interval).
    pub record_voltage_trace: bool,
    /// Trace sample interval (default 1 µs, as plotted in Figure 1).
    pub trace_interval: SimDuration,
    /// Software policy.
    pub software: SoftwareConfig,
    /// Structured-telemetry sink. `None` (the default) keeps the run loop on
    /// its zero-cost path: the hook's `enabled()` is read once per run, and
    /// no event is ever constructed when it is absent or disabled. Events
    /// are buffered per quantum and recorded with one lock acquisition, in
    /// an order independent of the executor (serial == parallel).
    pub tracer: Option<SharedTracer>,
    /// Wall-clock phase profiler. Strictly observational: its readings never
    /// feed back into simulated time or control decisions (see simlint L3),
    /// so attaching one cannot perturb a run's results.
    pub profiler: Option<Arc<Profiler>>,
    /// Deterministic fault plan. `None` (the default) keeps the run loop on
    /// its exact pre-fault code path — no injector is built, no watchdog
    /// runs, and results are byte-identical to a build without this field.
    pub faults: Option<FaultPlan>,
    /// Degradation tuning, consulted only when `faults` is set.
    pub degraded: DegradedConfig,
    /// Upper bound on how many control quanta the coordinator ships to the
    /// executor per dispatch (default [`BATCH_QUANTA`]). Batching only
    /// engages when there is no per-quantum feedback into the coordinator —
    /// see [`BATCH_QUANTA`] — so this knob trades executor round trips
    /// against working-set size and never changes results (pinned by the
    /// determinism tests). `1` forces per-quantum dispatch, which the
    /// scaling bench uses as its comparison point.
    pub batch_quanta: usize,
    /// Which tick loop the serial executor drives (default
    /// [`StepperPath::Kernel`]). [`StepperPath::Legacy`] selects the
    /// pre-kernel reference path — byte-identical results, pre-kernel
    /// cost model — and is honored by the serial executor only; the
    /// pooled executor always runs the kernel path.
    pub stepper: StepperPath,
}

impl RunConfig {
    /// A standard evaluation run of `duration` under `scheme` targeting
    /// `power_target`.
    pub fn new(duration: SimDuration, scheme: ControlScheme, power_target: Watt) -> Self {
        RunConfig {
            duration,
            scheme,
            power_target,
            retargets: Vec::new(),
            track_windows: vec![
                SimDuration::from_micros(20),
                SimDuration::from_millis(1),
                SimDuration::from_millis(10),
            ],
            record_trace: false,
            record_voltage_trace: false,
            trace_interval: SimDuration::from_micros(1),
            software: SoftwareConfig::None,
            tracer: None,
            profiler: None,
            faults: None,
            degraded: DegradedConfig::default(),
            batch_quanta: BATCH_QUANTA,
            stepper: StepperPath::default(),
        }
    }

    /// Select the serial executor's stepper path (builder style). The
    /// legacy path reproduces the pre-kernel per-tick cost model with
    /// byte-identical results — the scaling bench's in-run baseline.
    pub fn with_stepper(mut self, stepper: StepperPath) -> Self {
        self.stepper = stepper;
        self
    }

    /// Override the executor batch bound (builder style). `1` forces
    /// per-quantum dispatch; larger values only take effect on runs with no
    /// per-quantum feedback (see [`BATCH_QUANTA`]).
    pub fn with_batch_quanta(mut self, batch_quanta: usize) -> Self {
        self.batch_quanta = batch_quanta.max(1);
        self
    }

    /// Enable power-trace recording (builder style).
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Enable global-voltage-trace recording (builder style).
    pub fn with_voltage_trace(mut self) -> Self {
        self.record_voltage_trace = true;
        self
    }

    /// Select a software policy (builder style).
    pub fn with_software(mut self, sw: SoftwareConfig) -> Self {
        self.software = sw;
        self
    }

    /// Attach a structured-telemetry sink (builder style). Keep a clone of
    /// the handle to read the trace back after the run.
    pub fn with_tracer(mut self, tracer: SharedTracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Attach a wall-clock phase profiler (builder style).
    pub fn with_profiler(mut self, profiler: Arc<Profiler>) -> Self {
        self.profiler = Some(profiler);
        self
    }

    /// Attach a deterministic fault plan (builder style). This also arms the
    /// degradation layer — watchdogs, holds and the emergency throttle.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Override the degradation tuning (builder style).
    pub fn with_degraded(mut self, degraded: DegradedConfig) -> Self {
        self.degraded = degraded;
        self
    }

    /// Schedule a mid-run power-target change (builder style; keep calls in
    /// chronological order).
    pub fn with_retarget(mut self, at: SimTime, target: Watt) -> Self {
        if let Some(&(prev, _)) = self.retargets.last() {
            assert!(prev <= at, "retargets must be chronological");
        }
        self.retargets.push((at, target));
        self
    }

    /// Validate invariants against a system configuration.
    ///
    /// # Panics
    /// Panics if durations don't divide by the system tick.
    pub fn validate(&self, sys: &SystemConfig) {
        assert!(!self.duration.is_zero(), "zero run duration");
        assert!(self.power_target.value() > 0.0, "non-positive target");
        let tick = sys.tick.as_nanos();
        assert!(
            self.duration.as_nanos().is_multiple_of(tick),
            "duration must be a multiple of the tick"
        );
        for w in &self.track_windows {
            assert!(
                w.as_nanos() % tick == 0,
                "tracked window {w} must be a multiple of the tick"
            );
        }
        if let Some(p) = self.scheme.control_period() {
            assert!(
                p.as_nanos() % tick == 0,
                "control period must be a multiple of the tick"
            );
        }
        assert!(self.batch_quanta >= 1, "zero batch bound");
        self.degraded.validate();
        if let Some(plan) = &self.faults {
            plan.validate();
        }
    }
}

/// The fallback quantum for the uncontrolled fixed-voltage baseline.
pub(crate) const FIXED_QUANTUM: SimDuration = SimDuration::from_micros(100);

/// Default number of control quanta the coordinator ships to an executor in
/// one batch. Batching only happens when there is provably no per-quantum
/// feedback into the coordinator — the fixed-voltage baseline with no fault
/// plan and no tracer attached. The dynamic schemes *cannot* batch across
/// quanta without changing results: the global PID reads the previous
/// quantum's sensed power at every boundary (§4.1), so each quantum's
/// voltage schedule depends on the one before it. For those, the win comes
/// from the pooled executor's per-worker reply merging instead (see
/// [`crate::parallel`]). The value therefore trades executor round trips
/// against working-set size, never correctness.
pub const BATCH_QUANTA: usize = 32;

/// One control quantum's worth of executor input, referencing slices of the
/// batch-wide `v_sched`/`power_acc` buffers via `offset..offset + n`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct QuantumSpec {
    /// Start time of the quantum.
    pub(crate) t0: SimTime,
    /// First tick of this quantum inside the batch buffers.
    pub(crate) offset: usize,
    /// Number of ticks in this quantum.
    pub(crate) n: usize,
    /// Whether local controllers update at this quantum's boundary.
    pub(crate) update_local: bool,
}

/// Abstraction over how the domain set advances through a *batch* of
/// quanta — serial in this module, worker-pool in [`crate::parallel`].
pub(crate) trait DomainExecutor {
    /// Component kind of each domain, in order.
    fn kinds(&self) -> Vec<ComponentKind>;
    /// Nominal work rate of each domain (see [`Domain::nominal_rate`]).
    fn nominal_rates(&self) -> Vec<f64>;
    /// Current cumulative work per domain.
    fn work_done(&mut self) -> Vec<f64>;
    /// Advance all domains through `quanta`, adding per-tick powers into
    /// `power_acc` (indexed by each spec's `offset..offset + n`) in domain
    /// order, so the floating-point sums are bit-identical across
    /// executors. `ctls` carries the per-domain command (priority,
    /// throttle, faults) shared by every quantum of the batch — the
    /// coordinator only batches when the commands are quantum-invariant.
    /// Each domain's heartbeat for the batch's *last* quantum is written
    /// into `heartbeats` at the domain's index (the health watchdogs only
    /// run under a fault plan, where batches are single-quantum). When
    /// `events` is `Some`, the batch is a single quantum and per-domain
    /// trace events are appended *in domain order* regardless of execution
    /// order, so traces are executor-independent too.
    #[allow(clippy::too_many_arguments)]
    fn run_batch(
        &mut self,
        quanta: &[QuantumSpec],
        v_sched: &[f64],
        ctls: &[QuantumCtl],
        tick: SimDuration,
        power_acc: &mut [f64],
        heartbeats: &mut [bool],
        events: Option<&mut Vec<TraceEvent>>,
    );

    /// Serialize every domain's checkpoint payload, in domain-index order
    /// (the resume layer stores them as `domain.<i>` sections). Must only
    /// be called at a batch boundary, where no quantum is in flight.
    fn domain_states(&mut self) -> Vec<String>;

    /// Restore payloads produced by [`DomainExecutor::domain_states`]
    /// (same indexing). `None` if any payload is missing, malformed, or
    /// shaped for a different system configuration.
    fn restore_domain_states(&mut self, states: &[String]) -> Option<()>;
}

/// Serialize one domain with the sim-core state codec.
pub(crate) fn encode_domain_state(d: &Domain) -> String {
    use hcapp_sim_core::state::Snapshot;
    let mut w = hcapp_sim_core::state::StateWriter::new();
    d.save_state(&mut w);
    w.finish()
}

/// Restore one domain from [`encode_domain_state`]'s payload, requiring the
/// payload to be fully consumed.
pub(crate) fn decode_domain_state(d: &mut Domain, payload: &str) -> Option<()> {
    use hcapp_sim_core::state::Snapshot;
    let mut r = hcapp_sim_core::state::StateReader::new(payload);
    d.load_state(&mut r)?;
    r.finished()
}

/// In-process executor over the owned domain list.
pub(crate) struct SerialExecutor {
    pub(crate) domains: Vec<Domain>,
    /// Drive the pre-kernel reference path ([`StepperPath::Legacy`]):
    /// per-quantum dispatch with the original per-dispatch allocation
    /// pattern and unmemoized chiplet stepping. Byte-identical results;
    /// used by the scaling bench as its in-run baseline.
    pub(crate) legacy: bool,
}

impl DomainExecutor for SerialExecutor {
    fn kinds(&self) -> Vec<ComponentKind> {
        self.domains.iter().map(|d| d.kind).collect()
    }

    fn nominal_rates(&self) -> Vec<f64> {
        self.domains.iter().map(|d| d.nominal_rate).collect()
    }

    fn work_done(&mut self) -> Vec<f64> {
        self.domains.iter().map(|d| d.sim.work_done()).collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn run_batch(
        &mut self,
        quanta: &[QuantumSpec],
        v_sched: &[f64],
        ctls: &[QuantumCtl],
        tick: SimDuration,
        power_acc: &mut [f64],
        heartbeats: &mut [bool],
        mut events: Option<&mut Vec<TraceEvent>>,
    ) {
        if self.legacy {
            // The pre-kernel reference shim: per-quantum dispatch with the
            // allocation pattern the executors had before the arena
            // refactor — fresh per-domain power buffers and cloned command
            // slices every dispatch (mirroring the pooled worker's old
            // inner loop) — and `run_quantum_legacy`'s unmemoized chiplet
            // stepping. Merging each domain's zero-seeded buffer into the
            // shared accumulator in domain order reproduces the kernel
            // path's per-slot addition order, so results stay
            // byte-identical (`0.0 + p` is bitwise `p`).
            for q in quanta {
                let v = v_sched[q.offset..q.offset + q.n].to_vec();
                let cmds = ctls.to_vec();
                for (i, d) in self.domains.iter_mut().enumerate() {
                    let mut powers = vec![0.0f64; q.n];
                    heartbeats[i] = d.run_quantum_legacy(
                        q.t0,
                        &v,
                        q.update_local,
                        &cmds[i],
                        tick,
                        &mut powers,
                        events.as_deref_mut(),
                    );
                    for (slot, p) in power_acc[q.offset..q.offset + q.n].iter_mut().zip(&powers)
                    {
                        *slot += p;
                    }
                }
            }
            return;
        }
        // Quantum-major, domain-minor: the same tick order the original
        // per-quantum loop executed, which appends events in domain order
        // within each quantum.
        for q in quanta {
            for (i, (d, c)) in self.domains.iter_mut().zip(ctls).enumerate() {
                heartbeats[i] = d.run_quantum(
                    q.t0,
                    &v_sched[q.offset..q.offset + q.n],
                    q.update_local,
                    c,
                    tick,
                    &mut power_acc[q.offset..q.offset + q.n],
                    events.as_deref_mut(),
                );
            }
        }
    }

    fn domain_states(&mut self) -> Vec<String> {
        self.domains.iter().map(encode_domain_state).collect()
    }

    fn restore_domain_states(&mut self, states: &[String]) -> Option<()> {
        if states.len() != self.domains.len() {
            return None;
        }
        for (d, s) in self.domains.iter_mut().zip(states) {
            decode_domain_state(d, s)?;
        }
        Some(())
    }
}

/// The central simulation controller.
pub struct Simulation {
    pub(crate) sys: SystemConfig,
    pub(crate) run: RunConfig,
    pub(crate) domains: Vec<Domain>,
    pub(crate) global_ctl: GlobalController,
    pub(crate) vr: VoltageRegulator,
    pub(crate) sensor: PowerSensor,
    pub(crate) policy: Box<dyn SoftwarePolicy>,
}

impl Simulation {
    /// Build a simulation.
    pub fn new(sys: SystemConfig, run: RunConfig) -> Self {
        sys.validate();
        run.validate(&sys);
        let domains: Vec<Domain> = sys
            .domains
            .iter()
            .enumerate()
            .map(|(i, d)| Domain::build(d, &sys, i))
            .collect();
        let gains = sys.pid;
        let v_init = match run.scheme {
            ControlScheme::FixedVoltage(v) => v,
            _ => sys.v_init,
        };
        let vr = VoltageRegulator::raven(
            Volt::new(gains.out_min),
            Volt::new(gains.out_max),
            v_init,
        );
        let sensor = PowerSensor::new(sys.sensor_delay_ticks, sys.sensor_resolution);
        let global_ctl = GlobalController::new(gains, run.power_target);
        let policy = run.software.build();
        Simulation {
            sys,
            run,
            domains,
            global_ctl,
            vr,
            sensor,
            policy,
        }
    }

    /// The domains (for inspection in tests).
    pub fn domains(&self) -> &[Domain] {
        &self.domains
    }

    /// Run to completion with the serial executor.
    pub fn run(self) -> RunOutcome {
        let Simulation {
            sys,
            run,
            domains,
            global_ctl,
            vr,
            sensor,
            policy,
        } = self;
        let legacy = run.stepper == StepperPath::Legacy;
        let executor = SerialExecutor { domains, legacy };
        run_loop(sys, run, global_ctl, vr, sensor, policy, executor)
    }
}

/// The quantum-granular run loop shared by the serial and parallel
/// executors.
pub(crate) fn run_loop<E: DomainExecutor>(
    sys: SystemConfig,
    run: RunConfig,
    global_ctl: GlobalController,
    vr: VoltageRegulator,
    sensor: PowerSensor,
    policy: Box<dyn SoftwarePolicy>,
    executor: E,
) -> RunOutcome {
    let mut driver = LoopDriver::new(sys, run, global_ctl, vr, sensor, policy, executor);
    while !driver.is_done() {
        driver.step_batch();
    }
    driver.finish()
}

/// The run loop reified as a stepwise driver, so the checkpoint/resume
/// layer ([`crate::resume`]) can pause a run at any batch boundary.
/// `new` + `step_batch`-until-done + `finish` execute the exact statement
/// sequence the single-function loop used to, so the reification cannot
/// change results — [`run_loop`] is that composition, and every existing
/// determinism test pins it.
pub(crate) struct LoopDriver<E: DomainExecutor> {
    // Configuration and values derived from it once in `new` (rebuilt, not
    // checkpointed: a resumed run re-derives them from the same config).
    sys: SystemConfig,
    run: RunConfig,
    tick: SimDuration,
    tick_s: f64,
    dynamic: bool,
    period: SimDuration,
    quantum_ticks: usize,
    total_ticks: usize,
    trace_ticks: usize,
    kinds: Vec<ComponentKind>,
    nominal_rates: Vec<f64>,
    sw_interval: u64,
    n_domains: usize,
    injector: Option<FaultInjector>,
    degraded: DegradedConfig,
    tracer: Option<SharedTracer>,
    tracing: bool,
    profiler: Option<Arc<Profiler>>,
    v_floor: Volt,
    v_ceil: Volt,
    max_batch: usize,
    // The controlled components.
    global_ctl: GlobalController,
    vr: VoltageRegulator,
    sensor: PowerSensor,
    policy: Box<dyn SoftwarePolicy>,
    executor: E,
    // Loop state proper (checkpointed by `save_sections`).
    trackers: Vec<WindowedMaxTracker>,
    trace: Option<TimeSeries>,
    voltage_trace: Option<TimeSeries>,
    trace_sum: f64,
    vtrace_sum: f64,
    trace_count: usize,
    energy: f64,
    voltage_sum: f64,
    /// Per-domain state lanes (the struct-of-arrays half of the kernel
    /// layout — see [`crate::kernel`]).
    lanes: DomainLanes,
    last_policy_tick: usize,
    sensor_dog: SensorWatchdog,
    emergency: EmergencyThrottle,
    held_reading: Watt,
    sensor_fault_active: bool,
    slew_fault_active: bool,
    resilience: ResilienceCounters,
    ev_buf: Vec<TraceEvent>,
    done: usize,
    quantum_index: u64,
    peak_hold: f64,
    retarget_cursor: usize,
    prev_t0: Option<SimTime>,
    /// Batch-scoped scratch buffers, allocated once and reused per batch
    /// (never live across a boundary; see [`crate::kernel`]).
    arena: BatchArena,
}

impl<E: DomainExecutor> LoopDriver<E> {
    /// Everything the original loop did before its first iteration.
    pub(crate) fn new(
        sys: SystemConfig,
        run: RunConfig,
        global_ctl: GlobalController,
        mut vr: VoltageRegulator,
        sensor: PowerSensor,
        policy: Box<dyn SoftwarePolicy>,
        mut executor: E,
    ) -> Self {
        let tick = sys.tick;
        let tick_s = tick.as_secs_f64();
        let dynamic = run.scheme.control_period().is_some();
        let period = run.scheme.control_period().unwrap_or(FIXED_QUANTUM);
        let quantum_ticks = period.ticks(tick) as usize;
        let total_ticks = run.duration.ticks(tick) as usize;

        let trackers: Vec<WindowedMaxTracker> = run
            .track_windows
            .iter()
            .map(|w| WindowedMaxTracker::new(w.ticks(tick) as usize))
            .collect();

        let trace = run.record_trace.then(|| {
            TimeSeries::with_capacity(
                run.trace_interval,
                (run.duration / run.trace_interval) as usize + 1,
            )
        });
        let voltage_trace = run.record_voltage_trace.then(|| {
            TimeSeries::with_capacity(
                run.trace_interval,
                (run.duration / run.trace_interval) as usize + 1,
            )
        });
        let trace_ticks = run.trace_interval.ticks(tick) as usize;

        // Software-policy bookkeeping.
        let kinds = executor.kinds();
        let nominal_rates = executor.nominal_rates();
        let sw_interval = policy.interval_periods().max(1);
        let work_snapshot = executor.work_done();
        let progress: Vec<DomainProgress> = kinds
            .iter()
            .map(|&kind| DomainProgress {
                kind,
                relative_rate: 1.0,
            })
            .collect();

        // Fault injection + graceful degradation. Without a plan the
        // injector is never built and every guard below is a single branch
        // on `None`; the clean path multiplies by bitwise-1.0 throttles
        // only, so fault-free runs stay byte-identical to a coordinator
        // without this layer.
        let n_domains = kinds.len();
        let injector = run
            .faults
            .as_ref()
            .map(|p| FaultInjector::new(p.clone(), period));
        let degraded = run.degraded;
        let lanes = DomainLanes::new(work_snapshot, progress);

        // Telemetry: resolve the hooks once per run. Without a tracer (or
        // with a disabled one, e.g. NullTracer) `tracing` stays false and no
        // event is ever constructed on the quantum path below.
        let tracer = run.tracer.clone();
        let tracing = tracer
            .as_ref()
            .map(|t| {
                t.lock()
                    .expect("invariant: tracer mutex never poisoned")
                    .enabled()
            })
            .unwrap_or(false);
        let profiler = run.profiler.clone();
        let mut ev_buf: Vec<TraceEvent> = Vec::new();
        if tracing {
            // Make every trace self-contained: the initial target is emitted
            // as a retarget at t = 0, so a reader sees all target changes.
            ev_buf.push(TraceEvent::Retarget {
                t: SimTime::ZERO,
                target: run.power_target,
            });
        }

        // Fixed baseline: pin the VR target once.
        if let ControlScheme::FixedVoltage(v) = run.scheme {
            vr.set_target(SimTime::ZERO, v);
        }

        let (v_floor, v_ceil) = (Volt::new(sys.pid.out_min), Volt::new(sys.pid.out_max));

        // Batch sizing. Multi-quantum dispatch is only sound when nothing
        // below consumes per-quantum feedback: no dynamic control (the
        // global PID reads the previous quantum's sensed power at every
        // boundary), no fault plan (injection decisions and the watchdogs
        // act per quantum) and no tracer (events flush per quantum).
        // Otherwise every batch is a single quantum, which reproduces the
        // pre-batching loop op for op.
        let max_batch = if dynamic || injector.is_some() || tracing {
            1
        } else {
            run.batch_quanta.max(1)
        };
        let arena = BatchArena::new(quantum_ticks, max_batch);

        LoopDriver {
            sys,
            run,
            tick,
            tick_s,
            dynamic,
            period,
            quantum_ticks,
            total_ticks,
            trace_ticks,
            kinds,
            nominal_rates,
            sw_interval,
            n_domains,
            injector,
            degraded,
            tracer,
            tracing,
            profiler,
            v_floor,
            v_ceil,
            max_batch,
            global_ctl,
            vr,
            sensor,
            policy,
            executor,
            trackers,
            trace,
            voltage_trace,
            trace_sum: 0.0,
            vtrace_sum: 0.0,
            trace_count: 0,
            energy: 0.0,
            voltage_sum: 0.0,
            lanes,
            last_policy_tick: 0,
            sensor_dog: SensorWatchdog::new(),
            emergency: EmergencyThrottle::new(),
            held_reading: Watt::ZERO,
            sensor_fault_active: false,
            slew_fault_active: false,
            resilience: ResilienceCounters::default(),
            ev_buf,
            done: 0,
            quantum_index: 0,
            peak_hold: 0.0,
            retarget_cursor: 0,
            prev_t0: None,
            arena,
        }
    }

    /// True once every tick of the run has been simulated.
    pub(crate) fn is_done(&self) -> bool {
        self.done >= self.total_ticks
    }

    /// Control quanta completed so far.
    pub(crate) fn quanta_completed(&self) -> u64 {
        self.quantum_index
    }

    /// One iteration of the original `while done < total_ticks` loop:
    /// assemble a batch of quanta, dispatch it to the executor, fold the
    /// results into the package-level accumulators. After it returns the
    /// driver sits at a batch boundary — the only place a checkpoint is
    /// coherent.
    pub(crate) fn step_batch(&mut self) {
        // Assemble up to `max_batch` quanta. The per-quantum head (fault
        // injection, global control, VR scheduling, command assembly) runs
        // once per quantum exactly as before; only the executor dispatch
        // below is amortized across the batch.
        self.arena.batch.clear();
        let mut batch_ticks = 0usize;
        while self.arena.batch.len() < self.max_batch && self.done + batch_ticks < self.total_ticks {
            let n = self.quantum_ticks.min(self.total_ticks - self.done - batch_ticks);
            let t0 = SimTime::from_nanos((self.done + batch_ticks) as u64 * self.tick.as_nanos());
            crate::invariants::check_time_monotonic("run_loop quantum", self.prev_t0, t0);
            self.prev_t0 = Some(t0);

            // VR-side faults apply at the quantum boundary, before the
            // control step, so the controller reacts to a post-droop world.
            if let Some(inj) = self.injector.as_ref() {
                if let Some(depth) = inj.vr_droop(t0) {
                    self.vr.droop(depth);
                    self.resilience.faults_injected += 1;
                    if self.tracing {
                        self.ev_buf.push(TraceEvent::FaultInjected {
                            t: t0,
                            point: "vr_droop",
                            domain: None,
                            magnitude: depth,
                        });
                    }
                }
                let derate = inj.vr_slew_derate(t0);
                self.vr.set_slew_derate(derate.unwrap_or(1.0));
                if let Some(factor) = derate {
                    if !self.slew_fault_active {
                        self.resilience.faults_injected += 1;
                        if self.tracing {
                            self.ev_buf.push(TraceEvent::FaultInjected {
                                t: t0,
                                point: "vr_slew_derate",
                                domain: None,
                                magnitude: factor,
                            });
                        }
                    }
                }
                self.slew_fault_active = derate.is_some();
            }

            if self.dynamic {
                let _span = self.profiler.as_deref().map(|p| p.span("control"));
                // Apply any scheduled power-target changes that have
                // matured.
                while self.retarget_cursor < self.run.retargets.len() {
                    // simlint: allow(L6): cursor bounds-checked by the loop condition one line up
                    let (at, target) = self.run.retargets[self.retarget_cursor];
                    if at <= t0 {
                        self.global_ctl.set_target(target);
                        if self.tracing {
                            self.ev_buf.push(TraceEvent::Retarget { t: t0, target });
                        }
                        self.retarget_cursor += 1;
                    } else {
                        break;
                    }
                }
                // Software policy at its (much slower) interval.
                if self.quantum_index.is_multiple_of(self.sw_interval) {
                    let work_now = self.executor.work_done();
                    let elapsed_ticks = (self.done - self.last_policy_tick).max(1);
                    let elapsed_ns = elapsed_ticks as f64 * self.tick.as_nanos() as f64;
                    for (i, kind) in self.kinds.iter().enumerate() {
                        let delta = work_now[i] - self.lanes.work_snapshot[i];
                        self.lanes.progress[i] = DomainProgress {
                            kind: *kind,
                            relative_rate: if self.nominal_rates[i] > 0.0 {
                                delta / (elapsed_ns * self.nominal_rates[i])
                            } else {
                                1.0
                            },
                        };
                    }
                    self.lanes.work_snapshot = work_now;
                    self.policy.update(&self.lanes.progress, &mut self.lanes.priorities);
                    self.last_policy_tick = self.done;
                }
                // Global control action (Eq. 1 + Eq. 2). The controller
                // reads the sensing circuitry's *peak-hold* register — the
                // maximum power observed since its last action. For HCAPP's
                // 1 µs period this is essentially the instantaneous power;
                // for the slower schemes it is what a capping firmware
                // actually consults, and it is what makes them conservative
                // (they see every spike they were too slow to prevent).
                let sensed = self.peak_hold.max(self.sensor.read().value());
                self.peak_hold = 0.0;
                let mut p_input = Watt::new(sensed);
                let mut clamped = false;
                if let Some(inj) = self.injector.as_ref() {
                    // Pass the true reading through any active sensor fault
                    // — the controller only ever sees the (possibly lying)
                    // result, never the injector's oracle.
                    let fault = inj.sensor_fault(t0);
                    let reading = match fault {
                        Some(f) => {
                            PowerSensor::faulted_reading(Watt::new(sensed), f, self.held_reading)
                        }
                        None => {
                            self.held_reading = Watt::new(sensed);
                            Watt::new(sensed)
                        }
                    };
                    if let Some(f) = fault {
                        if !self.sensor_fault_active {
                            self.resilience.faults_injected += 1;
                            if self.tracing {
                                let (point, magnitude) = match f {
                                    SensorFault::Noise { factor } => ("sensor_noise", factor),
                                    SensorFault::StuckAt => ("sensor_stuck", f64::NAN),
                                    SensorFault::Dropout => ("sensor_dropout", f64::NAN),
                                };
                                self.ev_buf.push(TraceEvent::FaultInjected {
                                    t: t0,
                                    point,
                                    domain: None,
                                    magnitude,
                                });
                            }
                        }
                    }
                    self.sensor_fault_active = fault.is_some();
                    // Watchdog on the observable symptom: a reading that
                    // stays frozen while the rail moves away from it.
                    if let Some((from, to)) =
                        self.sensor_dog
                            .observe(reading.value(), self.vr.output().value(), &self.degraded)
                    {
                        self.resilience.health_transitions += 1;
                        if self.tracing {
                            self.ev_buf.push(TraceEvent::HealthTransition {
                                t: t0,
                                subject: "sensor",
                                domain: None,
                                from: from.name(),
                                to: to.name(),
                            });
                        }
                    }
                    // A faulted sensor is replaced by the worst-case power
                    // at the present rail voltage: regulation errs low, not
                    // blind.
                    p_input = if self.sensor_dog.state() == HealthState::Faulted {
                        self.sys.peak_power_at(self.vr.output())
                    } else {
                        reading
                    };
                    // Trip strictly above P_SPEC × margin: settled
                    // regulation hovers a hair over the setpoint by design
                    // (see the near-miss counter), and must not engage the
                    // clamp.
                    let over = p_input.value()
                        > self.global_ctl.target().value() * self.degraded.trip_margin;
                    if let Some(engaged) = self.emergency.observe(over, &self.degraded) {
                        if engaged {
                            self.resilience.emergency_engagements += 1;
                        }
                        if self.tracing {
                            self.ev_buf.push(TraceEvent::EmergencyThrottle {
                                t: t0,
                                engaged,
                                estimate: p_input,
                                target: self.global_ctl.target(),
                                scale: self.emergency.scale(),
                            });
                        }
                    }
                    clamped = self.emergency.engaged();
                }
                if clamped {
                    // Emergency: rail pinned to its floor, PID frozen (its
                    // state resumes unchanged on release, so the incident
                    // does not wind up the integrator).
                    self.resilience.emergency_quanta += 1;
                    self.vr.set_target(t0, self.v_floor);
                } else {
                    let v_next = self.global_ctl.update(p_input, self.period);
                    self.vr.set_target(t0, v_next);
                    if self.tracing {
                        let terms = self.global_ctl.pid().last_terms();
                        self.ev_buf.push(TraceEvent::GlobalPidStep {
                            t: t0,
                            p_now: p_input,
                            setpoint: self.global_ctl.target(),
                            v_err: terms.error,
                            p_term: terms.p,
                            i_term: terms.i,
                            d_term: terms.d,
                            v_next,
                        });
                    }
                }
            }

            // Precompute the global voltage schedule for this quantum, into
            // this quantum's slice of the batch-wide buffer.
            {
                let _span = self.profiler.as_deref().map(|p| p.span("vr-schedule"));
                let sched = &mut self.arena.v_sched[batch_ticks..batch_ticks + n];
                self.vr.schedule_into(t0, self.tick, sched);
                for &v in sched.iter() {
                    crate::invariants::check_voltage_in_range(
                        "run_loop voltage schedule",
                        Volt::new(v),
                        self.v_floor,
                        self.v_ceil,
                    );
                }
            }
            if self.tracing {
                self.ev_buf.push(TraceEvent::VrSlew {
                    t: t0,
                    setpoint: self.vr.target(),
                    start: Volt::new(self.arena.v_sched[batch_ticks]),
                    end: Volt::new(self.arena.v_sched[batch_ticks + n - 1]),
                });
            }

            // Assemble this quantum's per-domain commands. All fault
            // decisions are made here, on the coordinator thread, from pure
            // functions of (seed, point, domain index, quantum index) — the
            // executors only ever see the resulting `QuantumCtl`s, which is
            // why serial and pooled runs are byte-identical under any plan.
            if let Some(inj) = self.injector.as_ref() {
                let em_scale = self.emergency.scale();
                for i in 0..self.n_domains {
                    let link = inj.link_fault(t0, i);
                    let ctlf = inj.ctl_fault(t0, i);
                    if let Some(f) = link {
                        if !self.lanes.link_fault_active[i] {
                            self.resilience.faults_injected += 1;
                            if self.tracing {
                                let (point, magnitude) = match f {
                                    LinkFault::Delay { ticks } => {
                                        ("link_delay", f64::from(ticks))
                                    }
                                    LinkFault::Loss => ("link_loss", f64::NAN),
                                };
                                self.ev_buf.push(TraceEvent::FaultInjected {
                                    t: t0,
                                    point,
                                    domain: Some(i as u32),
                                    magnitude,
                                });
                            }
                        }
                    }
                    self.lanes.link_fault_active[i] = link.is_some();
                    if let Some(f) = ctlf {
                        if !self.lanes.ctl_fault_active[i] {
                            self.resilience.faults_injected += 1;
                            if self.tracing {
                                let point = match f {
                                    CtlFault::DomainStuck => "ctl_stuck",
                                    CtlFault::LocalSilent => "ctl_silent",
                                };
                                self.ev_buf.push(TraceEvent::FaultInjected {
                                    t: t0,
                                    point,
                                    domain: Some(i as u32),
                                    magnitude: f64::NAN,
                                });
                            }
                        }
                    }
                    self.lanes.ctl_fault_active[i] = ctlf.is_some();
                    self.lanes.ctls[i] = QuantumCtl {
                        priority: self.lanes.priorities[i],
                        throttle: self.lanes.dom_health[i].throttle() * em_scale,
                        link_fault: link,
                        ctl_fault: ctlf,
                    };
                }
            } else {
                for (c, &p) in self.lanes.ctls.iter_mut().zip(&self.lanes.priorities) {
                    c.priority = p;
                }
            }

            self.arena.batch.push(QuantumSpec {
                t0,
                offset: batch_ticks,
                n,
                update_local: self.dynamic,
            });
            batch_ticks += n;
            self.quantum_index += 1;
        }

        // Advance every domain through the batch.
        self.arena.power_acc[..batch_ticks].fill(0.0);
        {
            let _span = self.profiler.as_deref().map(|p| p.span("domains"));
            self.executor.run_batch(
                &self.arena.batch,
                &self.arena.v_sched[..batch_ticks],
                &self.lanes.ctls,
                self.tick,
                &mut self.arena.power_acc[..batch_ticks],
                &mut self.lanes.heartbeats,
                self.tracing.then_some(&mut self.ev_buf),
            );
        }
        // Feed the heartbeats back into the per-domain watchdogs — appended
        // after the executor's per-domain events, still in domain order. A
        // fault plan forces single-quantum batches, so the batch's last (and
        // only) quantum is the one the heartbeats belong to.
        if self.injector.is_some() {
            let t_beat = self
                .arena
                .batch
                .last()
                .expect("invariant: the run loop never dispatches an empty batch")
                .t0;
            for (i, dh) in self.lanes.dom_health.iter_mut().enumerate() {
                if let Some((from, to)) = dh.observe(self.lanes.heartbeats[i], &self.degraded) {
                    self.resilience.health_transitions += 1;
                    if self.tracing {
                        self.ev_buf.push(TraceEvent::HealthTransition {
                            t: t_beat,
                            subject: "domain",
                            domain: Some(i as u32),
                            from: from.name(),
                            to: to.name(),
                        });
                    }
                }
            }
        }
        for &p in &self.arena.power_acc[..batch_ticks] {
            crate::invariants::check_power_sane("run_loop package power", Watt::new(p));
        }
        // Flush the quantum's events with a single lock acquisition. The
        // buffer holds global events first, then per-domain events in
        // domain order — identical for the serial and parallel executors.
        if self.tracing {
            if let Some(t) = self.tracer.as_ref() {
                t.lock()
                    .expect("invariant: tracer mutex never poisoned")
                    .record_all(&mut self.ev_buf);
            }
        }

        // Aggregate package-level signals, tick-ordered across the batch.
        let _agg_span = self.profiler.as_deref().map(|p| p.span("aggregate"));
        for i in 0..batch_ticks {
            let p = self.arena.power_acc[i];
            let seen = self.sensor.sample(Watt::new(p)).value();
            if seen > self.peak_hold {
                self.peak_hold = seen;
            }
            for tr in &mut self.trackers {
                tr.push(p);
            }
            self.energy += p * self.tick_s;
            self.voltage_sum += self.arena.v_sched[i];
            if self.trace.is_some() || self.voltage_trace.is_some() {
                self.trace_sum += p;
                self.vtrace_sum += self.arena.v_sched[i];
                self.trace_count += 1;
                if self.trace_count == self.trace_ticks {
                    if let Some(series) = self.trace.as_mut() {
                        series.push(self.trace_sum / self.trace_ticks as f64);
                    }
                    if let Some(series) = self.voltage_trace.as_mut() {
                        series.push(self.vtrace_sum / self.trace_ticks as f64);
                    }
                    self.trace_sum = 0.0;
                    self.vtrace_sum = 0.0;
                    self.trace_count = 0;
                }
            }
        }

        self.done += batch_ticks;
    }

    /// Everything the original loop did after its last iteration.
    pub(crate) fn finish(mut self) -> RunOutcome {
        let duration_s = self.run.duration.as_secs_f64();
        let final_work = self.executor.work_done();
        RunOutcome {
            scheme: self.run.scheme,
            duration: self.run.duration,
            avg_power: Watt::new(self.energy / duration_s),
            energy_j: self.energy,
            windowed_max: self
                .run
                .track_windows
                .iter()
                .zip(&self.trackers)
                .map(|(w, tr)| (*w, Watt::new(tr.max().unwrap_or(0.0))))
                .collect(),
            work: self.kinds.into_iter().zip(final_work).collect(),
            mean_global_voltage: self.voltage_sum / self.total_ticks as f64,
            trace: self.trace,
            voltage_trace: self.voltage_trace,
            resilience: self.resilience,
        }
    }
}

impl<E: DomainExecutor> LoopDriver<E> {
    /// Collect every checkpoint section at a batch boundary, in a fixed
    /// order: the coordinator's own loop state, the three package-level
    /// components, then one section per domain. Panics if called
    /// mid-quantum (unflushed trace events) — the resume driver only calls
    /// it right after `step_batch`.
    pub(crate) fn save_sections(&mut self) -> Vec<(String, String)> {
        use hcapp_sim_core::state::{Snapshot, StateWriter};
        assert!(
            self.ev_buf.is_empty(),
            "checkpoint mid-quantum: unflushed trace events"
        );
        let mut sections = Vec::with_capacity(4 + self.n_domains);
        let mut w = StateWriter::new();
        self.save_loop(&mut w);
        sections.push(("loop".to_string(), w.finish()));
        let mut w = StateWriter::new();
        self.global_ctl.save_state(&mut w);
        sections.push(("pid".to_string(), w.finish()));
        let mut w = StateWriter::new();
        self.vr.save_state(&mut w);
        sections.push(("vr".to_string(), w.finish()));
        let mut w = StateWriter::new();
        self.sensor.save_state(&mut w);
        sections.push(("sensor".to_string(), w.finish()));
        for (i, s) in self.executor.domain_states().into_iter().enumerate() {
            sections.push((format!("domain.{i}"), s));
        }
        sections
    }

    /// Restore a freshly-built driver from [`LoopDriver::save_sections`]
    /// payloads (`get` maps a section name to its payload). `None` on any
    /// missing/malformed section or configuration mismatch — the caller
    /// falls back to a fresh run.
    pub(crate) fn restore_sections<'a>(
        &mut self,
        get: impl Fn(&str) -> Option<&'a str>,
    ) -> Option<()> {
        use hcapp_sim_core::state::{Snapshot, StateReader};
        let mut r = StateReader::new(get("loop")?);
        self.load_loop(&mut r)?;
        r.finished()?;
        let mut r = StateReader::new(get("pid")?);
        self.global_ctl.load_state(&mut r)?;
        r.finished()?;
        let mut r = StateReader::new(get("vr")?);
        self.vr.load_state(&mut r)?;
        r.finished()?;
        let mut r = StateReader::new(get("sensor")?);
        self.sensor.load_state(&mut r)?;
        r.finished()?;
        let states: Vec<String> = (0..self.n_domains)
            .map(|i| get(&format!("domain.{i}")).map(str::to_string))
            .collect::<Option<_>>()?;
        self.executor.restore_domain_states(&states)?;
        // The original process already flushed its boundary events
        // (including the t = 0 retarget preamble `new` re-pushed); a
        // resumed run must not emit them again.
        self.ev_buf.clear();
        Some(())
    }

    /// The coordinator-side mutable state, one tagged line per field.
    fn save_loop(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        use hcapp_sim_core::state::Snapshot;
        w.usize("loop.done", self.done);
        w.u64("loop.quantum_index", self.quantum_index);
        w.usize("loop.retarget_cursor", self.retarget_cursor);
        w.opt_u64("loop.prev_t0", self.prev_t0.map(|t| t.as_nanos()));
        w.f64("loop.peak_hold", self.peak_hold);
        w.f64("loop.energy", self.energy);
        w.f64("loop.voltage_sum", self.voltage_sum);
        w.f64("loop.trace_sum", self.trace_sum);
        w.f64("loop.vtrace_sum", self.vtrace_sum);
        w.usize("loop.trace_count", self.trace_count);
        for tr in &self.trackers {
            tr.save_state(w);
        }
        w.bool("loop.trace", self.trace.is_some());
        if let Some(series) = self.trace.as_ref() {
            series.save_state(w);
        }
        w.bool("loop.voltage_trace", self.voltage_trace.is_some());
        if let Some(series) = self.voltage_trace.as_ref() {
            series.save_state(w);
        }
        w.f64_slice("loop.work_snapshot", &self.lanes.work_snapshot);
        let rates: Vec<f64> = self.lanes.progress.iter().map(|p| p.relative_rate).collect();
        w.f64_slice("loop.progress", &rates);
        w.f64_slice("loop.priorities", &self.lanes.priorities);
        w.usize("loop.last_policy_tick", self.last_policy_tick);
        for dh in &self.lanes.dom_health {
            dh.save_state(w);
        }
        self.sensor_dog.save_state(w);
        self.emergency.save_state(w);
        w.f64("loop.held_reading", self.held_reading.value());
        w.bool("loop.sensor_fault_active", self.sensor_fault_active);
        w.bool("loop.slew_fault_active", self.slew_fault_active);
        w.u64_slice("loop.link_fault_active", &bools_to_u64(&self.lanes.link_fault_active));
        w.u64_slice("loop.ctl_fault_active", &bools_to_u64(&self.lanes.ctl_fault_active));
        w.u64("loop.res.faults_injected", self.resilience.faults_injected);
        w.u64("loop.res.health_transitions", self.resilience.health_transitions);
        w.u64(
            "loop.res.emergency_engagements",
            self.resilience.emergency_engagements,
        );
        w.u64("loop.res.emergency_quanta", self.resilience.emergency_quanta);
    }

    /// Inverse of [`LoopDriver::save_loop`], with shape checks against the
    /// (rebuilt) configuration. Not restored because they are rebuilt or
    /// batch-scoped: `ctls`/`heartbeats` (fully reassembled before every
    /// use), `ev_buf` (flushed at every boundary), and the
    /// `v_sched`/`power_acc`/`batch` scratch buffers.
    fn load_loop(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        use hcapp_sim_core::state::Snapshot;
        let done = r.usize("loop.done")?;
        if done > self.total_ticks {
            return None;
        }
        self.done = done;
        self.quantum_index = r.u64("loop.quantum_index")?;
        let cursor = r.usize("loop.retarget_cursor")?;
        if cursor > self.run.retargets.len() {
            return None;
        }
        self.retarget_cursor = cursor;
        self.prev_t0 = r.opt_u64("loop.prev_t0")?.map(SimTime::from_nanos);
        self.peak_hold = r.f64("loop.peak_hold")?;
        self.energy = r.f64("loop.energy")?;
        self.voltage_sum = r.f64("loop.voltage_sum")?;
        self.trace_sum = r.f64("loop.trace_sum")?;
        self.vtrace_sum = r.f64("loop.vtrace_sum")?;
        self.trace_count = r.usize("loop.trace_count")?;
        for tr in &mut self.trackers {
            tr.load_state(r)?;
        }
        if r.bool("loop.trace")? != self.trace.is_some() {
            return None;
        }
        if let Some(series) = self.trace.as_mut() {
            series.load_state(r)?;
        }
        if r.bool("loop.voltage_trace")? != self.voltage_trace.is_some() {
            return None;
        }
        if let Some(series) = self.voltage_trace.as_mut() {
            series.load_state(r)?;
        }
        let work_snapshot = r.f64_vec("loop.work_snapshot")?;
        if work_snapshot.len() != self.n_domains {
            return None;
        }
        self.lanes.work_snapshot = work_snapshot;
        let rates = r.f64_vec("loop.progress")?;
        if rates.len() != self.n_domains {
            return None;
        }
        for (p, rate) in self.lanes.progress.iter_mut().zip(rates) {
            p.relative_rate = rate;
        }
        let priorities = r.f64_vec("loop.priorities")?;
        if priorities.len() != self.n_domains {
            return None;
        }
        self.lanes.priorities = priorities;
        self.last_policy_tick = r.usize("loop.last_policy_tick")?;
        for dh in &mut self.lanes.dom_health {
            dh.load_state(r)?;
        }
        self.sensor_dog.load_state(r)?;
        self.emergency.load_state(r)?;
        self.held_reading = Watt::new(r.f64("loop.held_reading")?);
        self.sensor_fault_active = r.bool("loop.sensor_fault_active")?;
        self.slew_fault_active = r.bool("loop.slew_fault_active")?;
        self.lanes.link_fault_active = u64_to_bools(&r.u64_vec("loop.link_fault_active")?, self.n_domains)?;
        self.lanes.ctl_fault_active = u64_to_bools(&r.u64_vec("loop.ctl_fault_active")?, self.n_domains)?;
        self.resilience.faults_injected = r.u64("loop.res.faults_injected")?;
        self.resilience.health_transitions = r.u64("loop.res.health_transitions")?;
        self.resilience.emergency_engagements = r.u64("loop.res.emergency_engagements")?;
        self.resilience.emergency_quanta = r.u64("loop.res.emergency_quanta")?;
        Some(())
    }
}

/// Bool-vector codec for the checkpoint (the state format has no bool
/// slices; 0/1 words keep the lines grep-able).
fn bools_to_u64(bs: &[bool]) -> Vec<u64> {
    bs.iter().map(|&b| u64::from(b)).collect()
}

/// Inverse of [`bools_to_u64`], length-checked and rejecting non-0/1 words.
fn u64_to_bools(vs: &[u64], expect: usize) -> Option<Vec<bool>> {
    if vs.len() != expect || vs.iter().any(|&v| v > 1) {
        return None;
    }
    Some(vs.iter().map(|&v| v == 1).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limits::PowerLimit;
    use crate::pid::PidGains;
    use hcapp_workloads::combos::combo_suite;

    fn short_run(scheme: ControlScheme) -> RunOutcome {
        let sys = SystemConfig::paper_system(combo_suite()[3], 11); // Hi-Hi
        let target = PowerLimit::package_pin().guardbanded_target();
        let run = RunConfig::new(SimDuration::from_millis(4), scheme, target);
        Simulation::new(sys, run).run()
    }

    #[test]
    fn fixed_baseline_runs_and_draws_power() {
        let out = short_run(ControlScheme::fixed_baseline());
        assert!(out.avg_power.value() > 20.0, "avg {} too low", out.avg_power);
        assert!(
            out.avg_power.value() < 100.0,
            "avg {} too high",
            out.avg_power
        );
        for (_, w) in &out.work {
            assert!(*w > 0.0);
        }
    }

    #[test]
    fn hcapp_tracks_target() {
        let out = short_run(ControlScheme::Hcapp);
        let target = PowerLimit::package_pin().guardbanded_target().value();
        assert!(
            out.avg_power.value() > 0.80 * target,
            "avg {} too far below target {target}",
            out.avg_power
        );
        assert!(
            out.avg_power.value() < 1.05 * target,
            "avg {} above target {target}",
            out.avg_power
        );
    }

    #[test]
    fn hcapp_faster_than_fixed_on_hi_hi() {
        let fixed = short_run(ControlScheme::fixed_baseline());
        let hcapp = short_run(ControlScheme::Hcapp);
        let s = hcapp.speedup_vs(&fixed);
        assert!(s > 1.0, "HCAPP speedup {s} should exceed 1.0");
    }

    #[test]
    fn deterministic_across_runs() {
        let a = short_run(ControlScheme::Hcapp);
        let b = short_run(ControlScheme::Hcapp);
        assert_eq!(a.avg_power, b.avg_power);
        assert_eq!(a.work, b.work);
        assert_eq!(a.windowed_max, b.windowed_max);
    }

    #[test]
    fn trace_recording_shape() {
        let sys = SystemConfig::paper_system(combo_suite()[0], 5);
        let run = RunConfig::new(
            SimDuration::from_millis(2),
            ControlScheme::fixed_baseline(),
            Watt::new(86.0),
        )
        .with_trace();
        let out = Simulation::new(sys, run).run();
        let trace = out.trace.expect("trace requested");
        assert_eq!(trace.len(), 2000); // 2 ms at 1 µs samples
        assert!(trace.mean() > 0.0);
    }

    #[test]
    fn voltage_trace_reflects_scheme() {
        let limit = PowerLimit::package_pin();
        let mk = |scheme| {
            let sys = SystemConfig::paper_system(combo_suite()[6], 5); // Low-Low
            let run = RunConfig::new(
                SimDuration::from_millis(2),
                scheme,
                limit.guardbanded_target(),
            )
            .with_voltage_trace();
            Simulation::new(sys, run).run()
        };
        let fixed = mk(ControlScheme::fixed_baseline());
        let hcapp = mk(ControlScheme::Hcapp);
        let vf = fixed.voltage_trace.expect("trace");
        let vh = hcapp.voltage_trace.expect("trace");
        // Fixed: flat at 0.95 V.
        assert!((vf.max().unwrap() - 0.95).abs() < 1e-6);
        assert!((vf.min().unwrap() - 0.95).abs() < 1e-6);
        // HCAPP on a light workload raises the rail well above the fixed
        // point to soak up the budget.
        assert!(vh.mean() > 1.0, "HCAPP mean voltage {}", vh.mean());
        // And the trace stays within the PID's legal output range.
        assert!(vh.max().unwrap() <= PidGains::paper_default().out_max + 1e-9);
        assert!(vh.min().unwrap() >= PidGains::paper_default().out_min - 1e-9);
    }

    #[test]
    fn windowed_max_at_least_average() {
        let out = short_run(ControlScheme::fixed_baseline());
        for (_, max) in &out.windowed_max {
            if max.value() > 0.0 {
                assert!(max.value() >= out.avg_power.value() - 1e-6);
            }
        }
    }

    #[test]
    fn custom_period_between_schemes() {
        let out = short_run(ControlScheme::CustomPeriod(SimDuration::from_micros(10)));
        assert!(out.avg_power.value() > 0.0);
    }

    #[test]
    fn static_priority_policy_boosts_target_component() {
        let sys = SystemConfig::paper_system(combo_suite()[3], 11);
        let target = PowerLimit::package_pin().guardbanded_target();
        let base = Simulation::new(
            sys.clone(),
            RunConfig::new(SimDuration::from_millis(4), ControlScheme::Hcapp, target),
        )
        .run();
        let pri = Simulation::new(
            sys,
            RunConfig::new(SimDuration::from_millis(4), ControlScheme::Hcapp, target)
                .with_software(SoftwareConfig::StaticPriority(ComponentKind::Sha)),
        )
        .run();
        let sha_base = base.work_for(ComponentKind::Sha).unwrap();
        let sha_pri = pri.work_for(ComponentKind::Sha).unwrap();
        assert!(
            sha_pri > sha_base,
            "prioritized SHA should do more work: {sha_pri} vs {sha_base}"
        );
    }

    #[test]
    #[should_panic(expected = "duration must be a multiple")]
    fn misaligned_duration_panics() {
        let sys = SystemConfig::paper_system(combo_suite()[0], 1);
        let run = RunConfig::new(
            SimDuration::from_nanos(12345),
            ControlScheme::Hcapp,
            Watt::new(86.0),
        );
        let _ = Simulation::new(sys, run);
    }
}

#[cfg(test)]
mod retarget_tests {
    use super::*;
    use crate::limits::PowerLimit;
    use hcapp_sim_core::window::WindowedMaxTracker;
    use hcapp_workloads::combos::combo_suite;

    /// §5.2's claim: the power target can change mid-run without re-tuning.
    /// We drop the target from 84 W to 60 W halfway through and check both
    /// halves regulate to their own setpoints with the same PID constants.
    #[test]
    fn mid_run_retarget_converges_without_retuning() {
        let sys = SystemConfig::paper_system(combo_suite()[3], 11); // Hi-Hi
        let run = RunConfig::new(
            SimDuration::from_millis(8),
            ControlScheme::Hcapp,
            Watt::new(84.0),
        )
        .with_retarget(SimTime::from_millis(4), Watt::new(60.0))
        .with_trace();
        let out = Simulation::new(sys, run).run();
        let trace = out.trace.expect("trace");
        let half = trace.len() / 2;
        // Skip 1 ms of settling on each side.
        let first: f64 = trace.values()[1_000..half].iter().sum::<f64>()
            / (half - 1_000) as f64;
        let second: f64 = trace.values()[half + 1_000..].iter().sum::<f64>()
            / (trace.len() - half - 1_000) as f64;
        assert!(
            (first - 84.0).abs() < 8.0,
            "first half should regulate near 84 W, got {first}"
        );
        assert!(
            (second - 60.0).abs() < 8.0,
            "second half should regulate near 60 W, got {second}"
        );

        // The new, lower cap is respected over 20 µs windows in the second
        // half (re-check with a fresh tracker over the trace).
        let mut tracker = WindowedMaxTracker::new(20);
        for &p in &trace.values()[half + 1_000..] {
            tracker.push(p);
        }
        let max2 = tracker.max().unwrap();
        assert!(
            max2 <= 60.0 / PowerLimit::package_pin().guardband_factor() * 1.02,
            "second-half max {max2} too high for a 60 W target"
        );
    }

    #[test]
    #[should_panic(expected = "chronological")]
    fn out_of_order_retargets_panic() {
        let _ = RunConfig::new(
            SimDuration::from_millis(1),
            ControlScheme::Hcapp,
            Watt::new(84.0),
        )
        .with_retarget(SimTime::from_millis(2), Watt::new(60.0))
        .with_retarget(SimTime::from_millis(1), Watt::new(70.0));
    }
}

//! Graceful degradation: health watchdogs and the emergency throttle.
//!
//! The fault injector (`hcapp-faults`) is an *oracle* — it knows what it
//! broke. The controllers must not: a production power controller only
//! ever sees symptoms (a reading that stopped changing, a domain that
//! stopped answering). Everything in this module is therefore driven by
//! observable signals:
//!
//! * [`SensorWatchdog`] — watches the package power reading the global
//!   controller consumes. Bit-identical consecutive readings are the
//!   symptom of a stuck/dead sense path (quantization makes long accidental
//!   freezes of a live ~100 W signal vanishingly rare); after enough frozen
//!   steps the sensor is declared [`HealthState::Faulted`] and the
//!   coordinator switches the PID input to the *worst-case* power estimate
//!   at the present rail voltage, so regulation errs low instead of
//!   chasing a lie.
//! * [`DomainHealth`] — watches per-domain heartbeats (did the domain's
//!   controller accept commands this quantum). A faulted domain gets its
//!   voltage held and decayed toward a safe ratio — enforced by the
//!   domain's regulator path, which still obeys the coordinator even when
//!   the domain's own controller is dead.
//! * [`EmergencyThrottle`] — a leaky-bucket trip on "estimate above
//!   `P_SPEC`". Sustained over-cap estimates beyond the violation window
//!   engage a package-wide clamp: the global VR is pinned to its floor and
//!   every domain ratio is scaled by the safe ratio until the bucket
//!   drains, then the scale ramps back geometrically.
//!
//! All three are pure, allocation-free state machines stepped once per
//! control quantum on the coordinator thread — the parallel executor never
//! sees them, which is one half of the serial/parallel determinism
//! contract (the other half: fault decisions are pure functions of the
//! plan seed).

/// Health of one watched subject (sensor or domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Behaving normally.
    Healthy,
    /// Suspicious for a few quanta (symptom present but short of the
    /// fault threshold) — observed, not yet acted on.
    Stale,
    /// Declared faulted: degraded-mode handling is in force.
    Faulted,
}

impl HealthState {
    /// Lower-case name used in telemetry (`health_transition` events).
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Stale => "stale",
            HealthState::Faulted => "faulted",
        }
    }

    /// Inverse of [`HealthState::name`] (checkpoint decoding).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "healthy" => Some(HealthState::Healthy),
            "stale" => Some(HealthState::Stale),
            "faulted" => Some(HealthState::Faulted),
            _ => None,
        }
    }
}

/// Tuning for the degradation layer. The defaults are expressed in control
/// quanta, so the same config scales from HCAPP's 1 µs period to the
/// RAPL-like 100 µs period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradedConfig {
    /// Consecutive bad quanta before a subject turns `Stale`.
    pub stale_after: u32,
    /// Consecutive bad quanta before a subject turns `Faulted`.
    pub faulted_after: u32,
    /// Consecutive good quanta a `Faulted` subject needs to recover.
    pub recover_after: u32,
    /// Consecutive good quanta a `Stale` subject must dwell before it is
    /// trusted again. Without this hysteresis a subject flapping right at
    /// the stale boundary (bad streaks of `stale_after`, one good sample,
    /// repeat) re-trips every cycle, spamming `health_transition` events
    /// and churning any consumer keyed on them.
    pub stale_dwell: u32,
    /// Consecutive over-estimate quanta (leaky bucket level) that engage
    /// the emergency throttle — the "configurable violation window".
    pub violation_window: u32,
    /// Ratio a faulted domain's voltage decays toward, and the package
    /// scale applied while the emergency throttle is engaged.
    pub safe_ratio: f64,
    /// Per-quantum geometric decay of a faulted domain's hold value toward
    /// `safe_ratio` (closer to 1.0 = gentler).
    pub hold_decay: f64,
    /// Per-quantum geometric ramp back to 1.0 after recovery (must exceed
    /// 1.0).
    pub recovery_growth: f64,
    /// Emergency trip threshold as a multiple of `P_SPEC`. A settled PID
    /// legitimately hovers a hair above its setpoint (that is what the
    /// near-miss counter tracks), so tripping at exactly `P_SPEC` would
    /// clamp healthy runs; the default 1.1 sits between normal regulation
    /// dither and the budget the guardband protects (`budget/P_SPEC` ≈
    /// 1.19).
    pub trip_margin: f64,
    /// Rail movement (volts) beyond which a frozen reading is suspicious.
    /// Quantization makes a *settled* reading freeze legitimately — the
    /// symptom of a dead sense path is a reading that stays bit-identical
    /// *while the rail moves away* from where the freeze began. Under this
    /// deadband a frozen reading is also a harmless lie: the rail is parked
    /// where the held value was true.
    pub sensor_deadband_v: f64,
}

impl Default for DegradedConfig {
    fn default() -> Self {
        DegradedConfig {
            stale_after: 4,
            faulted_after: 12,
            recover_after: 8,
            stale_dwell: 3,
            violation_window: 8,
            safe_ratio: 0.7,
            hold_decay: 0.85,
            recovery_growth: 1.05,
            trip_margin: 1.1,
            sensor_deadband_v: 0.02,
        }
    }
}

impl DegradedConfig {
    /// Sanity-check thresholds and ratios, reporting the first offending
    /// field instead of panicking. This is the entry point for
    /// externally-sourced configs (CLI flags, files); internal invariants
    /// keep using [`DegradedConfig::validate`].
    pub fn try_validate(&self) -> Result<(), String> {
        fn req(ok: bool, msg: &str) -> Result<(), String> {
            if ok {
                Ok(())
            } else {
                Err(msg.to_string())
            }
        }
        req(self.stale_after >= 1, "stale_after must be at least 1")?;
        req(
            self.faulted_after >= self.stale_after,
            "faulted_after below stale_after",
        )?;
        req(self.recover_after >= 1, "recover_after must be at least 1")?;
        req(self.stale_dwell >= 1, "stale_dwell must be at least 1")?;
        req(
            self.violation_window >= 1,
            "violation_window must be at least 1",
        )?;
        req(
            self.safe_ratio > 0.0 && self.safe_ratio <= 1.0,
            "safe_ratio outside (0, 1]",
        )?;
        req(
            self.hold_decay > 0.0 && self.hold_decay < 1.0,
            "hold_decay outside (0, 1)",
        )?;
        req(self.recovery_growth > 1.0, "recovery_growth must exceed 1.0")?;
        req(self.trip_margin >= 1.0, "trip_margin below 1.0")?;
        req(
            self.sensor_deadband_v > 0.0,
            "sensor_deadband_v must be positive",
        )?;
        Ok(())
    }

    /// Sanity-check thresholds and ratios.
    ///
    /// # Panics
    /// Panics (naming the field) on a zero window, inverted thresholds, or
    /// ratios outside their documented ranges.
    pub fn validate(&self) {
        if let Err(msg) = self.try_validate() {
            // simlint: allow(L2, L6): documented panicking validator for internal invariants; externally-sourced configs go through try_validate
            panic!("invalid DegradedConfig: {msg}");
        }
    }

    /// Upper bound (in control quanta) on the reaction path from "a fault
    /// starts lying to the controller" to "the package is being actively
    /// clamped": the fault must first be *detectable* for `faulted_after`
    /// quanta (a stuck sensor looks healthy until then), the violation
    /// bucket then needs `violation_window` over-estimates, plus slack for
    /// the sensor pipeline, VR response delay and one quantum for throttles
    /// to reach the domains. The acceptance tests bound observed over-cap
    /// episodes by this.
    pub fn reaction_quanta(&self) -> u32 {
        self.faulted_after + self.violation_window + REACTION_SLACK_QUANTA
    }
}

/// Detection/actuation slack (sensor delay, VR response, command transport)
/// folded into [`DegradedConfig::reaction_quanta`].
const REACTION_SLACK_QUANTA: u32 = 8;

/// A generic consecutive-counter state machine shared by both watchdogs.
#[derive(Debug, Clone)]
struct Watchdog {
    state: HealthState,
    bad_streak: u32,
    good_streak: u32,
}

impl Watchdog {
    fn new() -> Self {
        Watchdog {
            state: HealthState::Healthy,
            bad_streak: 0,
            good_streak: 0,
        }
    }

    /// Step with one observation; returns `(from, to)` when the state
    /// changed.
    fn observe(&mut self, bad: bool, cfg: &DegradedConfig) -> Option<(HealthState, HealthState)> {
        let from = self.state;
        if bad {
            self.bad_streak = self.bad_streak.saturating_add(1);
            self.good_streak = 0;
        } else {
            self.good_streak = self.good_streak.saturating_add(1);
            self.bad_streak = 0;
        }
        self.state = match from {
            HealthState::Healthy if self.bad_streak >= cfg.stale_after => HealthState::Stale,
            HealthState::Stale if self.bad_streak >= cfg.faulted_after => HealthState::Faulted,
            // Suspicion clears only after a dwell of consecutive good
            // samples — one good reading amid a flapping signal is not
            // trust; a declared fault needs an even longer sustained run.
            HealthState::Stale if self.good_streak >= cfg.stale_dwell => HealthState::Healthy,
            HealthState::Faulted if self.good_streak >= cfg.recover_after => HealthState::Healthy,
            s => s,
        };
        (from != self.state).then_some((from, self.state))
    }
}

/// Frozen-reading detector for the package power sensor.
///
/// A reading is *suspicious* only when it stays bit-identical while the
/// rail has moved more than [`DegradedConfig::sensor_deadband_v`] away from
/// where the freeze began: the sensor's quantization makes a settled
/// reading freeze legitimately, but a live sense path cannot ignore a real
/// voltage excursion (power moves watts per rail percent, far beyond the
/// quantization step).
#[derive(Debug, Clone)]
pub struct SensorWatchdog {
    dog: Watchdog,
    /// Bit pattern of the last reading; NaN so the first reading never
    /// matches.
    last_bits: u64,
    /// Rail voltage at the quantum where the current freeze began.
    anchor_v: f64,
}

impl SensorWatchdog {
    /// A fresh watchdog (healthy, nothing seen).
    pub fn new() -> Self {
        SensorWatchdog {
            dog: Watchdog::new(),
            last_bits: f64::NAN.to_bits(),
            anchor_v: f64::NAN,
        }
    }

    /// Feed the reading the controller is about to consume (in watts) and
    /// the present rail voltage; returns a state transition if one
    /// occurred.
    pub fn observe(
        &mut self,
        reading_w: f64,
        rail_v: f64,
        cfg: &DegradedConfig,
    ) -> Option<(HealthState, HealthState)> {
        let bits = reading_w.to_bits();
        let frozen = bits == self.last_bits;
        self.last_bits = bits;
        if !frozen {
            self.anchor_v = rail_v;
        }
        // NaN anchor (first sample) compares false — not suspicious.
        let bad = frozen && (rail_v - self.anchor_v).abs() > cfg.sensor_deadband_v;
        self.dog.observe(bad, cfg)
    }

    /// Current health.
    pub fn state(&self) -> HealthState {
        self.dog.state
    }
}

impl Default for SensorWatchdog {
    fn default() -> Self {
        Self::new()
    }
}

/// Heartbeat watchdog plus last-good-value hold for one domain.
#[derive(Debug, Clone)]
pub struct DomainHealth {
    dog: Watchdog,
    /// Voltage scale applied to the domain: 1.0 while trusted, decaying
    /// toward `safe_ratio` while faulted, ramping back after recovery.
    throttle: f64,
}

impl DomainHealth {
    /// A fresh, healthy domain.
    pub fn new() -> Self {
        DomainHealth {
            dog: Watchdog::new(),
            throttle: 1.0,
        }
    }

    /// Feed one quantum's heartbeat (`responded` = the domain's controller
    /// accepted commands); returns a state transition if one occurred.
    pub fn observe(
        &mut self,
        responded: bool,
        cfg: &DegradedConfig,
    ) -> Option<(HealthState, HealthState)> {
        let transition = self.dog.observe(!responded, cfg);
        self.throttle = match self.dog.state {
            // Last-good-value hold with exponential decay toward the safe
            // ratio: the longer the domain stays dark, the less rail it
            // gets, bounding what an uncontrolled domain can burn.
            HealthState::Faulted => {
                cfg.safe_ratio + (self.throttle - cfg.safe_ratio) * cfg.hold_decay
            }
            // Ramp back instead of stepping, so recovery cannot slam the
            // package over the cap in a single quantum.
            _ => (self.throttle * cfg.recovery_growth).min(1.0),
        };
        transition
    }

    /// Current health.
    pub fn state(&self) -> HealthState {
        self.dog.state
    }

    /// The voltage scale currently imposed on the domain.
    pub fn throttle(&self) -> f64 {
        self.throttle
    }
}

impl Default for DomainHealth {
    fn default() -> Self {
        Self::new()
    }
}

/// Package-level emergency clamp on sustained over-cap estimates.
#[derive(Debug, Clone)]
pub struct EmergencyThrottle {
    level: u32,
    engaged: bool,
    scale: f64,
}

impl EmergencyThrottle {
    /// Disengaged, empty bucket, unit scale.
    pub fn new() -> Self {
        EmergencyThrottle {
            level: 0,
            engaged: false,
            scale: 1.0,
        }
    }

    /// Feed one control step's verdict (`over` = the power estimate
    /// exceeded `P_SPEC`). Returns `Some(true)` on engagement,
    /// `Some(false)` on release, `None` otherwise.
    pub fn observe(&mut self, over: bool, cfg: &DegradedConfig) -> Option<bool> {
        // Leaky bucket: +1 per over step, -1 per clean step, capped so a
        // long incident cannot wind up unbounded release latency.
        if over {
            self.level = (self.level + 1).min(cfg.violation_window * 2);
        } else {
            self.level = self.level.saturating_sub(1);
        }
        if !self.engaged && self.level >= cfg.violation_window {
            self.engaged = true;
            self.scale = cfg.safe_ratio;
            return Some(true);
        }
        if self.engaged && self.level == 0 {
            self.engaged = false;
            return Some(false);
        }
        if !self.engaged && self.scale < 1.0 {
            self.scale = (self.scale * cfg.recovery_growth).min(1.0);
        }
        None
    }

    /// True while the clamp is in force.
    pub fn engaged(&self) -> bool {
        self.engaged
    }

    /// The package-wide domain-voltage scale (1.0 when fully released).
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl Default for EmergencyThrottle {
    fn default() -> Self {
        Self::new()
    }
}

impl hcapp_sim_core::state::Snapshot for Watchdog {
    fn save_state(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        w.token("dog.state", self.state.name());
        w.u32("dog.bad", self.bad_streak);
        w.u32("dog.good", self.good_streak);
    }

    fn load_state(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        self.state = HealthState::from_name(r.token("dog.state")?)?;
        self.bad_streak = r.u32("dog.bad")?;
        self.good_streak = r.u32("dog.good")?;
        Some(())
    }
}

impl hcapp_sim_core::state::Snapshot for SensorWatchdog {
    fn save_state(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        self.dog.save_state(w);
        w.u64("sw.last_bits", self.last_bits);
        w.f64("sw.anchor_v", self.anchor_v);
    }

    fn load_state(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        self.dog.load_state(r)?;
        self.last_bits = r.u64("sw.last_bits")?;
        self.anchor_v = r.f64("sw.anchor_v")?;
        Some(())
    }
}

impl hcapp_sim_core::state::Snapshot for DomainHealth {
    fn save_state(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        self.dog.save_state(w);
        w.f64("dh.throttle", self.throttle);
    }

    fn load_state(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        self.dog.load_state(r)?;
        let throttle = r.f64("dh.throttle")?;
        if !(0.0..=1.0).contains(&throttle) {
            return None;
        }
        self.throttle = throttle;
        Some(())
    }
}

impl hcapp_sim_core::state::Snapshot for EmergencyThrottle {
    fn save_state(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        w.u32("em.level", self.level);
        w.bool("em.engaged", self.engaged);
        w.f64("em.scale", self.scale);
    }

    fn load_state(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        self.level = r.u32("em.level")?;
        self.engaged = r.bool("em.engaged")?;
        let scale = r.f64("em.scale")?;
        if !(0.0..=1.0).contains(&scale) {
            return None;
        }
        self.scale = scale;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DegradedConfig {
        DegradedConfig::default()
    }

    #[test]
    fn default_config_validates() {
        cfg().validate();
    }

    #[test]
    #[should_panic(expected = "faulted_after")]
    fn inverted_thresholds_rejected() {
        let c = DegradedConfig {
            stale_after: 10,
            faulted_after: 2,
            ..cfg()
        };
        c.validate();
    }

    #[test]
    fn sensor_watchdog_walks_healthy_stale_faulted() {
        let c = cfg();
        let mut w = SensorWatchdog::new();
        // A changing signal stays healthy whatever the rail does.
        for i in 0..10 {
            assert_eq!(w.observe(80.0 + f64::from(i), 0.95, &c), None);
        }
        assert_eq!(w.state(), HealthState::Healthy);
        // Freeze the reading while the rail climbs well past the deadband:
        // stale after 4 suspicious repeats, faulted after 12.
        let mut transitions = Vec::new();
        w.observe(99.0, 0.95, &c); // last fresh value anchors the rail
        for _ in 0..20 {
            if let Some(tr) = w.observe(99.0, 1.10, &c) {
                transitions.push(tr);
            }
        }
        assert_eq!(
            transitions,
            vec![
                (HealthState::Healthy, HealthState::Stale),
                (HealthState::Stale, HealthState::Faulted),
            ]
        );
        // Recovery needs a sustained run of changing samples.
        for i in 0..(c.recover_after - 1) {
            assert_eq!(w.observe(100.0 + f64::from(i), 1.10, &c), None);
        }
        assert_eq!(
            w.observe(200.0, 1.10, &c),
            Some((HealthState::Faulted, HealthState::Healthy))
        );
    }

    #[test]
    fn settled_quantized_reading_is_not_suspicious() {
        // A regulated run with a parked rail freezes its quantized reading
        // legitimately — the watchdog must not trip (this was a real false
        // positive: declaring the sensor dead engaged the emergency clamp
        // on a perfectly healthy run).
        let c = cfg();
        let mut w = SensorWatchdog::new();
        for _ in 0..1000 {
            // Rail dithers inside the deadband, reading pinned by
            // quantization.
            assert_eq!(w.observe(84.0, 0.951, &c), None);
            assert_eq!(w.observe(84.0, 0.949, &c), None);
        }
        assert_eq!(w.state(), HealthState::Healthy);
    }

    #[test]
    fn brief_sensor_freeze_only_reaches_stale() {
        let c = cfg();
        let mut w = SensorWatchdog::new();
        w.observe(80.0, 0.95, &c);
        for _ in 0..(c.stale_after + 1) {
            w.observe(80.0, 1.10, &c);
        }
        assert_eq!(w.state(), HealthState::Stale);
        // Fresh readings clear suspicion only after the dwell window — a
        // single good sample is not trust.
        for i in 0..(c.stale_dwell - 1) {
            assert_eq!(w.observe(81.0 + f64::from(i), 1.10, &c), None);
            assert_eq!(w.state(), HealthState::Stale);
        }
        assert_eq!(
            w.observe(90.0, 1.10, &c),
            Some((HealthState::Stale, HealthState::Healthy))
        );
    }

    #[test]
    fn flapping_sensor_at_the_stale_boundary_does_not_retrip() {
        // Regression: a sensor alternating between "frozen long enough to
        // go stale" and one fresh sample used to bounce Stale -> Healthy ->
        // Stale forever, emitting a transition pair per cycle. With the
        // dwell window it trips once and then *stays* stale until the
        // signal is good for `stale_dwell` consecutive quanta.
        let c = cfg();
        let mut w = SensorWatchdog::new();
        let mut reading = 80.0;
        w.observe(reading, 0.95, &c);
        let mut transitions = Vec::new();
        for _ in 0..10 {
            // The reading freezes while the rail walks away — a bad streak
            // exactly at the stale boundary...
            for _ in 0..c.stale_after {
                if let Some(tr) = w.observe(reading, 1.10, &c) {
                    transitions.push(tr);
                }
            }
            // ...then a single fresh sample back at the anchor rail.
            reading += 1.0;
            if let Some(tr) = w.observe(reading, 0.95, &c) {
                transitions.push(tr);
            }
        }
        assert_eq!(
            transitions,
            vec![(HealthState::Healthy, HealthState::Stale)],
            "flapping must trip exactly once, not once per cycle"
        );
        assert_eq!(w.state(), HealthState::Stale);
        // A genuinely recovered signal still clears after the dwell.
        for _ in 0..c.stale_dwell {
            reading += 1.0;
            w.observe(reading, 0.95, &c);
        }
        assert_eq!(w.state(), HealthState::Healthy);
    }

    #[test]
    fn domain_throttle_decays_toward_safe_ratio_and_ramps_back() {
        let c = cfg();
        let mut d = DomainHealth::new();
        for _ in 0..c.faulted_after {
            d.observe(false, &c);
        }
        assert_eq!(d.state(), HealthState::Faulted);
        // While faulted the throttle decays toward (never below) safe_ratio.
        let mut prev = d.throttle();
        for _ in 0..50 {
            d.observe(false, &c);
            let t = d.throttle();
            assert!(t <= prev + 1e-12 && t >= c.safe_ratio - 1e-12);
            prev = t;
        }
        assert!((prev - c.safe_ratio).abs() < 0.01, "decayed to {prev}");
        // Heartbeats return: recover, then ramp monotonically to 1.0.
        for _ in 0..c.recover_after {
            d.observe(true, &c);
        }
        assert_eq!(d.state(), HealthState::Healthy);
        let mut prev = d.throttle();
        for _ in 0..200 {
            d.observe(true, &c);
            assert!(d.throttle() >= prev);
            prev = d.throttle();
        }
        assert!((prev - 1.0).abs() < 1e-12, "ramped back to {prev}");
    }

    #[test]
    fn healthy_domain_keeps_unit_throttle_exactly() {
        let c = cfg();
        let mut d = DomainHealth::new();
        for _ in 0..100 {
            d.observe(true, &c);
            // Bitwise 1.0, so multiplying by it cannot perturb clean runs.
            assert_eq!(d.throttle().to_bits(), 1.0f64.to_bits());
        }
    }

    #[test]
    fn emergency_engages_after_window_and_releases_when_drained() {
        let c = cfg();
        let mut e = EmergencyThrottle::new();
        let mut engaged_at = None;
        for i in 0..(c.violation_window * 3) {
            match e.observe(true, &c) {
                Some(true) => {
                    engaged_at = Some(i);
                    break;
                }
                Some(false) => unreachable!("released while over"),
                None => {}
            }
        }
        assert_eq!(engaged_at, Some(c.violation_window - 1));
        assert!(e.engaged());
        assert!((e.scale() - c.safe_ratio).abs() < 1e-12);
        // Clean steps drain the bucket; release fires exactly once.
        let mut released = 0;
        for _ in 0..(c.violation_window * 3) {
            if e.observe(false, &c) == Some(false) {
                released += 1;
            }
        }
        assert_eq!(released, 1);
        assert!(!e.engaged());
        // After release the scale ramps back up to 1.0.
        for _ in 0..200 {
            e.observe(false, &c);
        }
        assert!((e.scale() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn intermittent_overs_below_duty_cycle_never_engage() {
        let c = cfg();
        let mut e = EmergencyThrottle::new();
        // 50% duty cycle: the bucket never accumulates.
        for i in 0..1000 {
            assert_eq!(e.observe(i % 2 == 0, &c), None);
        }
        assert!(!e.engaged());
    }

    #[test]
    fn reaction_bound_is_finite_and_scales_with_config() {
        let c = cfg();
        assert!(c.reaction_quanta() >= c.faulted_after + c.violation_window);
        let wider = DegradedConfig {
            violation_window: 100,
            ..c
        };
        assert!(wider.reaction_quanta() > c.reaction_quanta());
    }
}

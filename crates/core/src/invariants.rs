//! Runtime invariant checks (debug builds only).
//!
//! simlint (the static layer) keeps panic sites and raw-unit arithmetic out
//! of the library crates; this module is the *dynamic* complement: cheap
//! `debug_assert!`-based checks wired into the hot control paths that catch
//! physically-impossible states the moment they appear instead of letting
//! them propagate into a sweep's CSV output. All helpers compile to nothing
//! with `debug-assertions` off (`cargo build --release`), so the release
//! simulation pays zero cost.
//!
//! The checked invariants mirror the paper's physical model:
//!
//! * voltages stay inside the legal VR output range (§3.1/§3.2 — the global
//!   and domain VRs have bounded ranges),
//! * package/domain power is finite and non-negative (the P ∝ V³ model of
//!   Eq. 3 can never go negative),
//! * simulation time is strictly monotonic across control quanta (§4.1's
//!   central controller advances quantum by quantum),
//! * the PID integral honours its anti-windup bound (Eq. 2's integral term
//!   is clamped so saturation cannot poison later transients).

use hcapp_sim_core::time::SimTime;
use hcapp_sim_core::units::{Volt, Watt};

/// Tolerance for floating-point boundary comparisons: the checks guard
/// against *violations*, not representation noise at the clamp edge.
const EPS: f64 = 1e-9;

/// Debug-assert that `v` lies in the legal `[v_min, v_max]` VR range
/// (§3.1's global VR / §3.2's domain VR output bounds).
#[inline]
pub fn check_voltage_in_range(context: &str, v: Volt, v_min: Volt, v_max: Volt) {
    debug_assert!(
        v.value() >= v_min.value() - EPS && v.value() <= v_max.value() + EPS,
        "invariant violated [{context}]: voltage {v} outside legal range [{v_min}, {v_max}]"
    );
}

/// Debug-assert that a power reading is finite and non-negative (Eq. 3's
/// P ∝ V³ model cannot produce a negative draw).
#[inline]
pub fn check_power_sane(context: &str, p: Watt) {
    debug_assert!(
        p.value().is_finite() && p.value() >= 0.0,
        "invariant violated [{context}]: non-physical power {p}"
    );
}

/// Debug-assert that simulated time advances strictly monotonically across
/// control quanta (§4.1's central controller never revisits a quantum).
#[inline]
pub fn check_time_monotonic(context: &str, prev: Option<SimTime>, now: SimTime) {
    debug_assert!(
        prev.is_none_or(|p| now > p),
        "invariant violated [{context}]: sim time went backwards ({prev:?} -> {now})"
    );
}

/// Debug-assert that the PID integral contribution respects the anti-windup
/// clamp of Eq. 2 (`|K_I · ∫V_err dt| ≤ integral_limit`).
#[inline]
pub fn check_integral_bounded(context: &str, contribution_v: f64, limit_v: f64) {
    debug_assert!(
        contribution_v.abs() <= limit_v + EPS,
        "invariant violated [{context}]: integral contribution {contribution_v} V exceeds \
         anti-windup limit {limit_v} V"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_values_pass() {
        check_voltage_in_range("test", Volt::new(0.9), Volt::new(0.6), Volt::new(1.3));
        // Representation noise at the clamp edge is tolerated.
        check_voltage_in_range(
            "test",
            Volt::new(1.3 + 1e-12),
            Volt::new(0.6),
            Volt::new(1.3),
        );
        check_power_sane("test", Watt::new(0.0));
        check_power_sane("test", Watt::new(95.5));
        check_time_monotonic("test", None, SimTime::ZERO);
        check_time_monotonic("test", Some(SimTime::ZERO), SimTime::from_nanos(1));
        check_integral_bounded("test", 0.399, 0.40);
        check_integral_bounded("test", -0.40, 0.40);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "checks compile out in release")]
    #[should_panic(expected = "outside legal range")]
    fn out_of_range_voltage_panics() {
        check_voltage_in_range("test", Volt::new(1.5), Volt::new(0.6), Volt::new(1.3));
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "checks compile out in release")]
    #[should_panic(expected = "non-physical power")]
    fn negative_power_panics() {
        check_power_sane("test", Watt::new(-1.0));
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "checks compile out in release")]
    #[should_panic(expected = "non-physical power")]
    fn nan_power_panics() {
        check_power_sane("test", Watt::new(f64::NAN));
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "checks compile out in release")]
    #[should_panic(expected = "went backwards")]
    fn backwards_time_panics() {
        check_time_monotonic("test", Some(SimTime::from_nanos(5)), SimTime::from_nanos(5));
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "checks compile out in release")]
    #[should_panic(expected = "anti-windup")]
    fn integral_over_limit_panics() {
        check_integral_bounded("test", 0.5, 0.40);
    }
}

//! The quantum-stepper kernel's data layout.
//!
//! The run loop's hot path is a struct-of-arrays machine: every per-domain
//! signal lives in its own contiguous lane, and every batch-scoped scratch
//! buffer lives in an arena sized once at construction. This module names
//! that layout — [`DomainLanes`] for the lanes, [`BatchArena`] for the
//! scratch — so the coordinator's field list says what is *per-domain
//! state* (checkpointed, stepped by tight index loops) versus *batch
//! scratch* (never alive across a batch boundary, never checkpointed).
//!
//! Grouping is all this module does: the lanes hold exactly the vectors the
//! [`LoopDriver`](crate::coordinator) held as loose fields before the
//! kernel refactor, in the same per-domain indexing, and the checkpoint
//! codec (`save_loop`/`load_loop`) still serializes them field by field in
//! the pre-kernel order, so on-disk checkpoints are unchanged.
//!
//! [`StepperPath`] selects which tick loop the serial executor drives:
//! the allocation-free kernel path (production) or the pre-kernel
//! reference path (the scaling bench's baseline and the equivalence
//! property's oracle). The two are byte-identical by contract — see
//! `DESIGN.md` §6j for the proof obligations.

use crate::coordinator::{QuantumCtl, QuantumSpec};
use crate::health::DomainHealth;
use crate::software::DomainProgress;

/// Which tick loop the serial executor drives domains with.
///
/// Both paths produce byte-identical outcomes, traces and checkpoints
/// (pinned by the golden-digest corpus and the stepper-equivalence
/// property); the legacy path exists so a single run can measure the
/// kernel's speedup against the pre-kernel cost model, not as a fallback.
/// The pooled executor always runs the kernel path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StepperPath {
    /// The allocation-free struct-of-arrays kernel (default): memoized
    /// operating points, borrow-based `step_into` dispatch.
    #[default]
    Kernel,
    /// The pre-kernel reference path: per-quantum dispatch with the
    /// original per-dispatch allocation pattern and unmemoized per-chiplet
    /// `step` methods. Serial executor only.
    Legacy,
}

/// Per-domain state lanes, indexed by domain position — the
/// struct-of-arrays half of the kernel layout. Every lane has exactly
/// `n_domains` slots for the whole run.
#[derive(Debug)]
pub(crate) struct DomainLanes {
    /// Software-policy priority per domain (written at policy intervals,
    /// read into every quantum's command).
    pub(crate) priorities: Vec<f64>,
    /// Did the domain accept commands last batch (watchdog input).
    pub(crate) heartbeats: Vec<bool>,
    /// Cumulative work per domain at the last policy invocation.
    pub(crate) work_snapshot: Vec<f64>,
    /// Per-domain progress observations handed to the software policy.
    pub(crate) progress: Vec<DomainProgress>,
    /// Link-fault episode tracking (edge detection for telemetry).
    pub(crate) link_fault_active: Vec<bool>,
    /// Controller-fault episode tracking (edge detection for telemetry).
    pub(crate) ctl_fault_active: Vec<bool>,
    /// Per-domain health watchdogs.
    pub(crate) dom_health: Vec<DomainHealth>,
    /// The per-domain quantum commands, reassembled every quantum and
    /// shipped to the executor by reference.
    pub(crate) ctls: Vec<QuantumCtl>,
}

impl DomainLanes {
    /// Lanes for `n_domains` domains. `work_snapshot` seeds from the
    /// executor's initial cumulative work; `progress` mirrors the domain
    /// kinds at a neutral relative rate.
    pub(crate) fn new(work_snapshot: Vec<f64>, progress: Vec<DomainProgress>) -> Self {
        let n = work_snapshot.len();
        assert_eq!(progress.len(), n, "lane length mismatch");
        DomainLanes {
            priorities: vec![1.0; n],
            heartbeats: vec![true; n],
            work_snapshot,
            progress,
            link_fault_active: vec![false; n],
            ctl_fault_active: vec![false; n],
            dom_health: vec![DomainHealth::new(); n],
            ctls: vec![QuantumCtl::clean(1.0); n],
        }
    }
}

/// Batch-scoped scratch, allocated once at driver construction and reused
/// by every batch — the reusable-arena half of the kernel layout. Nothing
/// in here lives across a batch boundary, so none of it is checkpointed.
#[derive(Debug)]
pub(crate) struct BatchArena {
    /// Global voltage schedule, one slot per tick of the batch.
    pub(crate) v_sched: Vec<f64>,
    /// Package power accumulator, one slot per tick of the batch.
    pub(crate) power_acc: Vec<f64>,
    /// The batch's quantum specs (offsets into the tick buffers).
    pub(crate) batch: Vec<QuantumSpec>,
}

impl BatchArena {
    /// An arena sized for batches of up to `max_batch` quanta of
    /// `quantum_ticks` ticks each.
    pub(crate) fn new(quantum_ticks: usize, max_batch: usize) -> Self {
        BatchArena {
            v_sched: vec![0.0f64; quantum_ticks * max_batch],
            power_acc: vec![0.0f64; quantum_ticks * max_batch],
            batch: Vec::with_capacity(max_batch),
        }
    }
}

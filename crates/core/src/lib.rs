//! HCAPP: Heterogeneous Constant Average Power Processing.
//!
//! The paper's primary contribution: a decentralized, hardware-speed power
//! capping scheme for heterogeneous 2.5D packages. Three controller levels
//! (§3) cooperate *through the power supply network* — the global voltage is
//! the only broadcast channel, so the design scales with chiplet count:
//!
//! 1. [`controller::global::GlobalController`] — a PID loop on the global VR
//!    output with the cube-root power-error term of Eq. 1/2, enforcing the
//!    package power target at a 1 µs period (justified by the Table 1 delay
//!    budget in `hcapp-pdn`).
//! 2. [`controller::domain::DomainController`] — per-chiplet voltage
//!    normalization plus the software priority interface (a register the OS
//!    writes; de-prioritizing a domain by 10% scales its voltage by 0.9×).
//! 3. [`controller::local`] — per-core/SM controllers that trade local
//!    voltage ratio against measured IPC: static thresholds for CPU cores
//!    (CAPP), dynamic thresholds for GPU SMs (GPU-CAPP), pass-through and
//!    adversarial variants for accelerators.
//!
//! [`scheme::ControlScheme`] selects between HCAPP (1 µs), RAPL-like
//! (100 µs), software-like (10 ms) and a fixed-voltage baseline — the four
//! systems the evaluation compares. [`system`] assembles an N-domain package
//! (the paper's CPU+GPU+SHA system is [`system::SystemConfig::paper_system`]),
//! [`coordinator::Simulation`] is the central simulation controller (§4.1),
//! and [`parallel`] provides deterministic parallel execution for sweeps and
//! many-chiplet scaling studies.
//!
//! Attaching a seeded `hcapp-faults` plan to a run
//! ([`coordinator::RunConfig::with_faults`]) turns on the [`health`]
//! degradation layer: watchdogs declare sensors and domains faulted from
//! observable symptoms alone, faulted domains are held at decaying
//! last-good voltage ratios, and a package-wide emergency throttle clamps
//! the system when the (worst-case-estimated) power stays above `P_SPEC`
//! beyond the configured violation window. Fault decisions are pure
//! functions of the plan seed and simulated time, so the serial and
//! parallel executors stay bit-identical under any plan.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod analyze;
pub mod cache;
pub mod controller;
pub mod coordinator;
pub mod health;
pub mod invariants;
pub mod kernel;
pub mod limits;
pub mod outcome;
pub mod parallel;
pub mod pid;
pub mod resume;
pub mod scheme;
pub mod simsan;
pub mod software;
pub mod system;
#[cfg(any(test, feature = "testutil"))]
pub mod testutil;
pub mod tuning;

pub use analyze::run_analyzed;
pub use cache::{run_all_cached, CacheStats, Lookup, RunCache};
pub use controller::domain::DomainController;
pub use controller::global::GlobalController;
pub use controller::local::{
    AdversarialController, CpuIpcStaticController, GpuIpcDynamicController, LocalController,
    PassThroughController,
};
pub use controller::thermal_guard::{ThermalConfig, ThermalGuard};
pub use coordinator::{QuantumCtl, RunConfig, Simulation};
pub use health::{DegradedConfig, HealthState};
pub use kernel::StepperPath;
pub use limits::PowerLimit;
pub use outcome::{ResilienceCounters, RunOutcome};
pub use pid::{PidController, PidGains};
pub use resume::{
    outcome_digest, run_resumable, total_quanta, ResumeEnd, ResumeOptions, ResumeSummary,
};
pub use scheme::ControlScheme;
pub use software::{ComponentKind, SoftwarePolicy, StaticPriorityPolicy};
pub use system::{ConfigError, DomainSpec, SystemConfig};

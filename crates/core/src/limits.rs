//! Power limits and the guardband policy.
//!
//! A power limit is "at most `budget` watts averaged over `window`" (§1:
//! "Power limits dictate a maximum power and a time window over which that
//! maximum power is evaluated"). The evaluation uses two:
//!
//! * the **package-pin limit** — 100 W over 20 µs (§5.1), the time for a
//!   current change to reach the package pins;
//! * the **off-package VR limit** — 100 W over 1 ms (§5.2), the regulator's
//!   sustained-current specification.
//!
//! A controller regulating *instantaneous* power to the raw budget would
//! still violate a short window during transients (the control loop takes a
//! few periods to rein in a power spike). The designer therefore targets the
//! budget minus a guardband that shrinks as the window grows — this is why
//! the paper's HCAPP achieves 79.3% PPE under the 20 µs limit but 93.9%
//! under the 1 ms limit (§5.1 vs §5.2): the slow window simply needs less
//! headroom. [`PowerLimit::guardbanded_target`] encodes that policy.

use hcapp_sim_core::time::SimDuration;
use hcapp_sim_core::units::Watt;

/// A power limit: `budget` watts averaged over `window`.
///
/// ```
/// use hcapp::limits::PowerLimit;
///
/// let pin = PowerLimit::package_pin();       // 100 W over 20 µs
/// let vr = PowerLimit::off_package_vr();     // 100 W over 1 ms
/// // Shorter windows demand more transient headroom, so the controller
/// // targets less of the budget — the §5.1-vs-§5.2 PPE gap.
/// assert!(pin.guardbanded_target().value() < vr.guardbanded_target().value());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLimit {
    /// The provisioned power budget.
    pub budget: Watt,
    /// The averaging window of the specification.
    pub window: SimDuration,
}

impl PowerLimit {
    /// Construct a limit.
    ///
    /// # Panics
    /// Panics on a non-positive budget or zero window.
    pub fn new(budget: Watt, window: SimDuration) -> Self {
        assert!(budget.value() > 0.0, "non-positive power budget");
        assert!(!window.is_zero(), "zero limit window");
        PowerLimit { budget, window }
    }

    /// The package-pin limit of §5.1: 100 W over 20 µs.
    pub fn package_pin() -> Self {
        PowerLimit::new(Watt::new(100.0), SimDuration::from_micros(20))
    }

    /// The off-package VR limit of §5.2: 100 W over 1 ms.
    pub fn off_package_vr() -> Self {
        PowerLimit::new(Watt::new(100.0), SimDuration::from_millis(1))
    }

    /// The power target the global controller regulates to: the budget
    /// scaled by a window-dependent guardband.
    ///
    /// Shorter windows leave less room for the control loop's transient
    /// excursions, so they need more headroom. The factors were set with the
    /// guardband ablation (`hcapp-experiments`, ablation binary): the
    /// smallest headroom for which HCAPP's windowed maximum stays under the
    /// budget across the whole Table 3 suite.
    pub fn guardbanded_target(&self) -> Watt {
        self.budget * self.guardband_factor()
    }

    /// The guardband factor for this limit's window.
    pub fn guardband_factor(&self) -> f64 {
        let w = self.window.as_nanos();
        if w <= 50_000 {
            // Tens-of-µs windows (package pins): transients of a few control
            // periods occupy a large share of the window.
            0.84
        } else if w <= 2_000_000 {
            // ~1 ms windows (off-package VR): transients mostly average out.
            0.965
        } else {
            // ≥ 10 ms windows: essentially the steady-state average.
            0.98
        }
    }

    /// Window length in simulation ticks.
    ///
    /// # Panics
    /// Panics if `tick` does not divide the window.
    pub fn window_ticks(&self, tick: SimDuration) -> usize {
        self.window.ticks(tick) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::assert_close;

    #[test]
    fn paper_limits() {
        let pin = PowerLimit::package_pin();
        assert_close!(pin.budget.value(), 100.0, 1e-12);
        assert_eq!(pin.window, SimDuration::from_micros(20));
        let vr = PowerLimit::off_package_vr();
        assert_eq!(vr.window, SimDuration::from_millis(1));
    }

    #[test]
    fn guardband_shrinks_with_window() {
        let fast = PowerLimit::package_pin().guardband_factor();
        let slow = PowerLimit::off_package_vr().guardband_factor();
        let very_slow = PowerLimit::new(Watt::new(100.0), SimDuration::from_millis(10))
            .guardband_factor();
        assert!(fast < slow);
        assert!(slow < very_slow);
        assert!(very_slow < 1.0);
    }

    #[test]
    fn targets_leave_headroom() {
        let pin = PowerLimit::package_pin();
        assert!(pin.guardbanded_target().value() < pin.budget.value());
        assert_close!(pin.guardbanded_target().value(), 84.0, 1e-9);
        let vr = PowerLimit::off_package_vr();
        assert_close!(vr.guardbanded_target().value(), 96.5, 1e-9);
    }

    #[test]
    fn window_ticks() {
        let pin = PowerLimit::package_pin();
        assert_eq!(pin.window_ticks(SimDuration::from_nanos(100)), 200);
    }

    #[test]
    #[should_panic(expected = "zero limit window")]
    fn zero_window_panics() {
        let _ = PowerLimit::new(Watt::new(100.0), SimDuration::ZERO);
    }
}

//! Results of one simulated run.
//!
//! [`RunOutcome`] carries everything the paper's metrics need: average
//! power (→ PPE, Eq. 4), windowed maxima (→ the max-power/limit ratios of
//! Figures 4/7), per-component work (→ the geomean speedups of Eq. 3 /
//! Figures 5/8/10) and, optionally, the decimated power trace (→ Figures
//! 1/2).

use hcapp_sim_core::series::TimeSeries;
use hcapp_sim_core::stats::geometric_mean;
use hcapp_sim_core::time::SimDuration;
use hcapp_sim_core::units::Watt;

use crate::limits::PowerLimit;
use crate::scheme::ControlScheme;
use crate::software::ComponentKind;

/// Fault-campaign counters accumulated by the run loop. All zero for a run
/// without a fault plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceCounters {
    /// Fault episodes that started (one count per onset, not per quantum).
    pub faults_injected: u64,
    /// Health-state transitions across the sensor and domain watchdogs.
    pub health_transitions: u64,
    /// Times the emergency throttle engaged.
    pub emergency_engagements: u64,
    /// Control quanta spent with the emergency throttle engaged.
    pub emergency_quanta: u64,
}

/// Everything measured during one run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The scheme that produced this run.
    pub scheme: ControlScheme,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Run-average package power.
    pub avg_power: Watt,
    /// Total package energy in joules.
    pub energy_j: f64,
    /// Maximum windowed-average power per tracked window.
    pub windowed_max: Vec<(SimDuration, Watt)>,
    /// Work completed per domain, in the domain's own units (nominal ns for
    /// CPU/GPU, gigabits for SHA). Order matches the system's domain list.
    pub work: Vec<(ComponentKind, f64)>,
    /// Mean global VR output voltage over the run.
    pub mean_global_voltage: f64,
    /// Package power trace (one sample per trace interval), if recorded.
    pub trace: Option<TimeSeries>,
    /// Global VR output voltage trace, if recorded.
    pub voltage_trace: Option<TimeSeries>,
    /// Fault/degradation counters (all zero without a fault plan).
    pub resilience: ResilienceCounters,
}

impl RunOutcome {
    /// Provisioned Power Efficiency (Eq. 4): average power over the
    /// provisioned budget.
    pub fn ppe(&self, provisioned: Watt) -> f64 {
        self.avg_power / provisioned
    }

    /// Maximum windowed power divided by the limit's budget — the Figure
    /// 4/7 metric. `None` if the limit's window was not tracked.
    pub fn max_ratio(&self, limit: &PowerLimit) -> Option<f64> {
        self.windowed_max
            .iter()
            .find(|(w, _)| *w == limit.window)
            .map(|(_, p)| *p / limit.budget)
    }

    /// Whether the run respects `limit` (max windowed power ≤ budget, with a
    /// hair of numerical slack).
    pub fn respects(&self, limit: &PowerLimit) -> Option<bool> {
        self.max_ratio(limit).map(|r| r <= 1.0 + 1e-9)
    }

    /// Work completed by the first domain of the given kind.
    pub fn work_for(&self, kind: ComponentKind) -> Option<f64> {
        self.work.iter().find(|(k, _)| *k == kind).map(|(_, w)| *w)
    }

    /// Per-component speedups versus a baseline run (same combo, same
    /// duration): ratio of work completed.
    pub fn component_speedups(&self, baseline: &RunOutcome) -> Vec<(ComponentKind, f64)> {
        self.work
            .iter()
            .zip(&baseline.work)
            .map(|((k, w), (kb, wb))| {
                debug_assert_eq!(k, kb, "mismatched domain order");
                (*k, if *wb > 0.0 { w / wb } else { 1.0 })
            })
            .collect()
    }

    /// Eq. 3: the total speedup is the geometric mean of the component
    /// speedups (`cbrt(S_CPU · S_GPU · S_Accel)` for the 3-domain system).
    pub fn speedup_vs(&self, baseline: &RunOutcome) -> f64 {
        let s: Vec<f64> = self
            .component_speedups(baseline)
            .into_iter()
            .map(|(_, s)| s)
            .collect();
        geometric_mean(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::assert_close;

    fn outcome(avg: f64, max20us: f64, work: [f64; 3]) -> RunOutcome {
        RunOutcome {
            scheme: ControlScheme::Hcapp,
            duration: SimDuration::from_millis(10),
            avg_power: Watt::new(avg),
            energy_j: avg * 0.01,
            windowed_max: vec![
                (SimDuration::from_micros(20), Watt::new(max20us)),
                (SimDuration::from_millis(1), Watt::new(max20us * 0.9)),
            ],
            work: vec![
                (ComponentKind::Cpu, work[0]),
                (ComponentKind::Gpu, work[1]),
                (ComponentKind::Sha, work[2]),
            ],
            mean_global_voltage: 0.95,
            trace: None,
            voltage_trace: None,
            resilience: ResilienceCounters::default(),
        }
    }

    #[test]
    fn ppe_definition() {
        let o = outcome(79.3, 99.0, [1.0, 1.0, 1.0]);
        assert_close!(o.ppe(Watt::new(100.0)), 0.793, 1e-12);
    }

    #[test]
    fn max_ratio_lookup() {
        let o = outcome(80.0, 95.0, [1.0; 3]);
        let pin = PowerLimit::package_pin();
        assert_close!(o.max_ratio(&pin).unwrap(), 0.95, 1e-12);
        assert_eq!(o.respects(&pin), Some(true));
        let over = outcome(80.0, 120.0, [1.0; 3]);
        assert_eq!(over.respects(&pin), Some(false));
        // Untracked window → None.
        let odd = PowerLimit::new(Watt::new(100.0), SimDuration::from_micros(7));
        assert_eq!(o.max_ratio(&odd), None);
    }

    #[test]
    fn eq3_geomean_speedup() {
        let base = outcome(70.0, 90.0, [100.0, 200.0, 300.0]);
        let fast = outcome(90.0, 99.0, [121.0, 240.0, 330.0]);
        let s = fast.speedup_vs(&base);
        let expect = (1.21f64 * 1.2 * 1.1).cbrt();
        assert_close!(s, expect, 1e-12);
        let per = fast.component_speedups(&base);
        assert_close!(per[0].1, 1.21, 1e-12);
        assert_close!(per[2].1, 1.10, 1e-12);
    }

    #[test]
    fn work_lookup_by_kind() {
        let o = outcome(70.0, 90.0, [1.0, 2.0, 3.0]);
        assert_eq!(o.work_for(ComponentKind::Gpu), Some(2.0));
        assert_eq!(o.work_for(ComponentKind::Sha), Some(3.0));
    }

    #[test]
    fn zero_baseline_work_degrades_to_unity() {
        let base = outcome(70.0, 90.0, [0.0, 1.0, 1.0]);
        let fast = outcome(90.0, 99.0, [5.0, 1.0, 1.0]);
        let per = fast.component_speedups(&base);
        assert_close!(per[0].1, 1.0, 1e-12);
    }
}

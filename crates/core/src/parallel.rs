//! Parallel execution.
//!
//! Two levels of parallelism, both deterministic, both built on the standard
//! library only (`std::sync::mpsc` channels, `std::thread::scope`,
//! `std::sync::Mutex`) so the workspace stays hermetic — simlint rule L4
//! forbids registry dependencies, and rule L3 plus the determinism
//! regression tests in this module keep the parallel paths bit-identical to
//! the serial ones:
//!
//! 1. **Run-level** ([`run_all`]) — the experiment sweeps (8 combos × 4
//!    schemes × limits) are embarrassingly parallel: a mutex-guarded work
//!    queue feeds system/run configs to scoped worker threads; results land
//!    in input order. This is the workhorse for regenerating the figures.
//!
//! 2. **Chiplet-level** ([`Simulation::run_parallel`]) — inside one run,
//!    domains are independent within a control quantum (the global voltage
//!    schedule is fixed at the boundary), so each worker thread owns a
//!    subset of domains and advances them per quantum. Per-domain power
//!    vectors are merged *in domain order*, making the result bit-identical
//!    to the serial executor — an integration test asserts this. Worthwhile
//!    when quanta are long (SW-like control) or the package is large (the
//!    scaling study's 32-chiplet systems); for the 3-domain paper system at
//!    a 1 µs quantum the channel traffic outweighs the win, which the
//!    `scaling` bench quantifies.

use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread;

use hcapp_sim_core::time::{SimDuration, SimTime};
use hcapp_telemetry::TraceEvent;

use crate::coordinator::{run_loop, DomainExecutor, QuantumCtl, RunConfig, Simulation};
use crate::outcome::RunOutcome;
use crate::software::ComponentKind;
use crate::system::{Domain, SystemConfig};

/// Run many independent simulations on `workers` threads, preserving input
/// order in the result.
pub fn run_all(jobs: Vec<(SystemConfig, RunConfig)>, workers: usize) -> Vec<RunOutcome> {
    let workers = workers.max(1).min(jobs.len().max(1));
    let n = jobs.len();
    // Shared pull queue: cheaper than one channel per worker and keeps the
    // dynamic load balancing crossbeam's shared receiver used to provide.
    let queue: Arc<Mutex<VecDeque<(usize, SystemConfig, RunConfig)>>> = Arc::new(Mutex::new(
        jobs.into_iter()
            .enumerate()
            .map(|(i, (sys, run))| (i, sys, run))
            .collect(),
    ));
    let (res_tx, res_rx) = channel::<(usize, RunOutcome)>();

    thread::scope(|scope| {
        for _ in 0..workers {
            let queue = Arc::clone(&queue);
            let res_tx = res_tx.clone();
            scope.spawn(move || loop {
                let job = {
                    let mut q = queue.lock().expect("invariant: no worker panics while holding the job-queue lock");
                    q.pop_front()
                };
                let Some((i, sys, run)) = job else { return };
                let outcome = Simulation::new(sys, run).run();
                if res_tx.send((i, outcome)).is_err() {
                    return;
                }
            });
        }
        drop(res_tx);
        let mut slots: Vec<Option<RunOutcome>> = (0..n).map(|_| None).collect();
        for (i, outcome) in res_rx.iter() {
            slots[i] = Some(outcome);
        }
        slots
            .into_iter()
            .map(|s| s.expect("invariant: every queued job sends exactly one result before its worker exits"))
            .collect()
    })
}

/// A quantum command broadcast to every domain worker.
struct QuantumCmd {
    /// Start time of the quantum.
    t0: SimTime,
    /// Global voltage per tick of the quantum.
    v_sched: Arc<Vec<f64>>,
    /// Number of valid ticks in `v_sched`.
    n: usize,
    /// Whether local controllers update at this boundary.
    update_local: bool,
    /// Per-domain quantum commands (priority, throttle, faults), one per
    /// domain (global indexing).
    ctls: Arc<Vec<QuantumCtl>>,
    tick: SimDuration,
    /// Whether workers should collect trace events this quantum.
    collect_events: bool,
}

/// One domain's reply for a quantum.
struct QuantumReply {
    domain_idx: usize,
    powers: Vec<f64>,
    work_done: f64,
    /// Heartbeat: the domain's controller accepted this quantum's commands.
    responded: bool,
    /// Trace events this domain emitted (empty unless collecting).
    events: Vec<TraceEvent>,
}

enum WorkerMsg {
    Quantum(QuantumCmd),
    /// Request current work figures without advancing.
    ReportWork,
}

/// Executor that fans domains out to persistent worker threads.
struct PooledExecutor<'scope> {
    cmd_txs: Vec<Sender<WorkerMsg>>,
    reply_rx: Receiver<QuantumReply>,
    kinds: Vec<ComponentKind>,
    nominal_rates: Vec<f64>,
    last_work: Vec<f64>,
    n_domains: usize,
    _marker: std::marker::PhantomData<&'scope ()>,
}

impl DomainExecutor for PooledExecutor<'_> {
    fn kinds(&self) -> Vec<ComponentKind> {
        self.kinds.clone()
    }

    fn nominal_rates(&self) -> Vec<f64> {
        self.nominal_rates.clone()
    }

    fn work_done(&mut self) -> Vec<f64> {
        for tx in &self.cmd_txs {
            tx.send(WorkerMsg::ReportWork)
                .expect("invariant: workers outlive the executor inside the thread scope");
        }
        for _ in 0..self.n_domains {
            let r = self
                .reply_rx
                .recv()
                .expect("invariant: each worker replies once per domain it owns");
            self.last_work[r.domain_idx] = r.work_done;
        }
        self.last_work.clone()
    }

    #[allow(clippy::too_many_arguments)]
    fn run_quantum(
        &mut self,
        t0: SimTime,
        v_sched: &[f64],
        update_local: bool,
        ctls: &[QuantumCtl],
        tick: SimDuration,
        power_acc: &mut [f64],
        heartbeats: &mut [bool],
        events: Option<&mut Vec<TraceEvent>>,
    ) {
        let v = Arc::new(v_sched.to_vec());
        let c = Arc::new(ctls.to_vec());
        for tx in &self.cmd_txs {
            tx.send(WorkerMsg::Quantum(QuantumCmd {
                t0,
                v_sched: v.clone(),
                n: v_sched.len(),
                update_local,
                ctls: c.clone(),
                tick,
                collect_events: events.is_some(),
            }))
            .expect("invariant: workers outlive the executor inside the thread scope");
        }
        // Collect one reply per domain, then merge in domain order so the
        // floating-point sums — and the event stream — match the serial
        // executor exactly, whatever order the workers finished in.
        let mut replies: Vec<Option<QuantumReply>> = (0..self.n_domains).map(|_| None).collect();
        for _ in 0..self.n_domains {
            let r = self
                .reply_rx
                .recv()
                .expect("invariant: each worker replies once per domain it owns");
            self.last_work[r.domain_idx] = r.work_done;
            heartbeats[r.domain_idx] = r.responded;
            let idx = r.domain_idx;
            replies[idx] = Some(r);
        }
        let mut events = events;
        for r in replies.into_iter().flatten() {
            for (acc, p) in power_acc.iter_mut().zip(&r.powers) {
                *acc += p;
            }
            if let Some(buf) = events.as_deref_mut() {
                buf.extend(r.events);
            }
        }
    }
}

impl Simulation {
    /// Run to completion with the chiplet-parallel executor on `workers`
    /// threads. Produces results bit-identical to [`Simulation::run`].
    pub fn run_parallel(self, workers: usize) -> RunOutcome {
        let Simulation {
            sys,
            run,
            domains,
            global_ctl,
            vr,
            sensor,
            policy,
        } = self;

        let n_domains = domains.len();
        let workers = workers.max(1).min(n_domains);
        let kinds: Vec<ComponentKind> = domains.iter().map(|d| d.kind).collect();
        let nominal_rates: Vec<f64> = domains.iter().map(|d| d.nominal_rate).collect();
        let initial_work: Vec<f64> = domains.iter().map(|d| d.sim.work_done()).collect();

        // Partition domains round-robin so heterogeneous chiplets spread
        // across workers.
        let mut partitions: Vec<Vec<(usize, Domain)>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, d) in domains.into_iter().enumerate() {
            partitions[i % workers].push((i, d));
        }

        thread::scope(|scope| {
            let (reply_tx, reply_rx) = channel::<QuantumReply>();
            let mut cmd_txs = Vec::with_capacity(workers);
            for part in partitions {
                let (cmd_tx, cmd_rx) = channel::<WorkerMsg>();
                cmd_txs.push(cmd_tx);
                let reply_tx = reply_tx.clone();
                scope.spawn(move || {
                    let mut part = part;
                    while let Ok(msg) = cmd_rx.recv() {
                        match msg {
                            WorkerMsg::Quantum(cmd) => {
                                for (idx, d) in part.iter_mut() {
                                    let mut powers = vec![0.0f64; cmd.n];
                                    let mut events = Vec::new();
                                    let responded = d.run_quantum(
                                        cmd.t0,
                                        &cmd.v_sched[..cmd.n],
                                        cmd.update_local,
                                        &cmd.ctls[*idx],
                                        cmd.tick,
                                        &mut powers,
                                        cmd.collect_events.then_some(&mut events),
                                    );
                                    if reply_tx
                                        .send(QuantumReply {
                                            domain_idx: *idx,
                                            powers,
                                            work_done: d.sim.work_done(),
                                            responded,
                                            events,
                                        })
                                        .is_err()
                                    {
                                        return;
                                    }
                                }
                            }
                            WorkerMsg::ReportWork => {
                                for (idx, d) in part.iter() {
                                    if reply_tx
                                        .send(QuantumReply {
                                            domain_idx: *idx,
                                            powers: Vec::new(),
                                            work_done: d.sim.work_done(),
                                            responded: true,
                                            events: Vec::new(),
                                        })
                                        .is_err()
                                    {
                                        return;
                                    }
                                }
                            }
                        }
                    }
                });
            }
            drop(reply_tx);

            let executor = PooledExecutor {
                cmd_txs,
                reply_rx,
                kinds,
                nominal_rates,
                last_work: initial_work,
                n_domains,
                _marker: std::marker::PhantomData,
            };
            // Workers exit when their command channels drop with the
            // executor at the end of run_loop.
            run_loop(sys, run, global_ctl, vr, sensor, policy, executor)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limits::PowerLimit;
    use crate::scheme::ControlScheme;

    use hcapp_workloads::combos::combo_suite;

    fn job(seed: u64) -> (SystemConfig, RunConfig) {
        let sys = SystemConfig::paper_system(combo_suite()[4], seed); // Hi-Low
        let target = PowerLimit::package_pin().guardbanded_target();
        let run = RunConfig::new(
            SimDuration::from_millis(2),
            ControlScheme::Hcapp,
            target,
        );
        (sys, run)
    }

    #[test]
    fn run_all_preserves_order_and_determinism() {
        let jobs: Vec<_> = (0..4).map(job).collect();
        let par = run_all(jobs.clone(), 4);
        let ser: Vec<RunOutcome> = jobs
            .into_iter()
            .map(|(s, r)| Simulation::new(s, r).run())
            .collect();
        assert_eq!(par.len(), ser.len());
        for (p, s) in par.iter().zip(&ser) {
            assert_eq!(p.avg_power, s.avg_power);
            assert_eq!(p.work, s.work);
        }
    }

    #[test]
    fn run_all_with_single_worker() {
        let out = run_all(vec![job(9)], 1);
        assert_eq!(out.len(), 1);
        assert!(out[0].avg_power.value() > 0.0);
    }

    #[test]
    fn run_all_with_more_workers_than_jobs() {
        let out = run_all(vec![job(3), job(5)], 16);
        assert_eq!(out.len(), 2);
        for o in &out {
            assert!(o.avg_power.value() > 0.0);
        }
    }

    #[test]
    fn chiplet_parallel_matches_serial_bitwise() {
        let (sys, run) = job(13);
        let ser = Simulation::new(sys.clone(), run.clone()).run();
        let par = Simulation::new(sys, run).run_parallel(3);
        assert_eq!(ser.avg_power, par.avg_power, "avg power differs");
        assert_eq!(ser.energy_j, par.energy_j, "energy differs");
        assert_eq!(ser.work, par.work, "work differs");
        assert_eq!(ser.windowed_max, par.windowed_max, "windowed max differs");
        assert_eq!(
            ser.mean_global_voltage, par.mean_global_voltage,
            "mean voltage differs"
        );
    }

    #[test]
    fn chiplet_parallel_with_more_workers_than_domains() {
        let (sys, run) = job(17);
        let out = Simulation::new(sys, run).run_parallel(16);
        assert!(out.avg_power.value() > 0.0);
    }

    #[test]
    fn chiplet_parallel_with_software_policy() {
        let (sys, run) = job(21);
        let run = run.with_software(crate::coordinator::SoftwareConfig::StaticPriority(
            ComponentKind::Cpu,
        ));
        let ser = Simulation::new(sys.clone(), run.clone()).run();
        let par = Simulation::new(sys, run).run_parallel(2);
        assert_eq!(ser.work, par.work);
    }
}

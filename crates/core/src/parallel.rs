//! Parallel execution.
//!
//! Two levels of parallelism, both deterministic, both built on the standard
//! library only (`std::sync::mpsc` channels, `std::sync::Mutex`/`Condvar`)
//! so the workspace stays hermetic — simlint rule L4 forbids registry
//! dependencies, and rule L3 plus the determinism regression tests in this
//! module keep the parallel paths bit-identical to the serial ones:
//!
//! 1. **Run-level** ([`run_all`] / [`WorkerPool`]) — the experiment sweeps
//!    (8 combos × 4 schemes × limits) are embarrassingly parallel: a
//!    mutex-guarded work queue feeds system/run configs to worker threads;
//!    results land in input order. [`WorkerPool`] keeps the threads alive
//!    between sweeps, so an experiment campaign pays thread spawn/join once
//!    instead of once per figure; [`shared_pool`] hands out one
//!    process-wide pool for exactly that use.
//!
//! 2. **Chiplet-level** ([`Simulation::run_parallel`]) — inside one run,
//!    domains are independent within a control quantum (the global voltage
//!    schedule is fixed at the boundary), so each worker thread owns a
//!    subset of domains and advances them per dispatched *batch* of quanta.
//!    Two protocol choices keep channel traffic off the critical path:
//!    the coordinator ships multi-quantum batches whenever the run has no
//!    per-quantum feedback (see [`crate::coordinator::BATCH_QUANTA`]), and
//!    each worker sends **one reply per batch** covering all the domains it
//!    owns — so a quantum costs `workers` receives, not `n_domains`, which
//!    is what used to make the 1 µs HCAPP quantum lose to serial on small
//!    systems. Per-domain power vectors are still merged *in domain
//!    order*, making the result bit-identical to the serial executor — an
//!    integration test asserts this.

use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

use hcapp_sim_core::time::SimDuration;
use hcapp_telemetry::TraceEvent;

use crate::coordinator::{
    decode_domain_state, encode_domain_state, run_loop, DomainExecutor, QuantumCtl, QuantumSpec,
    RunConfig, Simulation,
};
use crate::outcome::RunOutcome;
use crate::software::ComponentKind;
use crate::system::{Domain, SystemConfig};

/// One queued run-level job: input index, its configs, and the channel its
/// result goes back on (each [`WorkerPool::run_all`] call brings its own).
type PoolJob = (
    usize,
    SystemConfig,
    RunConfig,
    Sender<(usize, RunOutcome)>,
);

/// Shared state between a [`WorkerPool`]'s owner and its threads.
struct PoolShared {
    /// Pending jobs plus the shutdown flag, under one lock.
    queue: Mutex<(VecDeque<PoolJob>, bool)>,
    /// Signaled when jobs arrive or shutdown is requested.
    ready: Condvar,
}

/// A persistent run-level worker pool.
///
/// Threads are spawned once and then parked on a condvar between
/// submissions, so a campaign of sweeps (the figure binaries, `hcapp
/// sweep`, the scaling study) reuses them instead of re-spawning a scoped
/// pool per sweep. Dropping the pool shuts the threads down and joins them.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<thread::JoinHandle<()>>,
    workers: usize,
}

impl WorkerPool {
    /// Spawn a pool of `workers` threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || loop {
                    let job = {
                        let mut guard = shared
                            .queue
                            .lock()
                            .expect("invariant: no worker panics while holding the job-queue lock");
                        loop {
                            if let Some(job) = guard.0.pop_front() {
                                break Some(job);
                            }
                            if guard.1 {
                                break None;
                            }
                            guard = shared
                                .ready
                                .wait(guard)
                                .expect("invariant: no worker panics while holding the job-queue lock");
                        }
                    };
                    let Some((i, sys, run, tx)) = job else { return };
                    let outcome = Simulation::new(sys, run).run();
                    // A dropped receiver just means the submitter gave up on
                    // this batch; the pool itself stays healthy.
                    let _ = tx.send((i, outcome));
                })
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            workers,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run `jobs` on the pool, blocking until all complete; results are in
    /// input order. Concurrent calls from different threads interleave
    /// safely (each call collects only its own results).
    pub fn run_all(&self, jobs: Vec<(SystemConfig, RunConfig)>) -> Vec<RunOutcome> {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let (tx, rx) = channel::<(usize, RunOutcome)>();
        {
            let mut guard = self
                .shared
                .queue
                .lock()
                .expect("invariant: no worker panics while holding the job-queue lock");
            for (i, (sys, run)) in jobs.into_iter().enumerate() {
                guard.0.push_back((i, sys, run, tx.clone()));
            }
        }
        self.shared.ready.notify_all();
        drop(tx);
        let mut slots: Vec<Option<RunOutcome>> = (0..n).map(|_| None).collect();
        for (i, outcome) in rx.iter() {
            slots[i] = Some(outcome);
        }
        slots
            .into_iter()
            .map(|s| s.expect("invariant: every queued job sends exactly one result"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut guard = self
                .shared
                .queue
                .lock()
                .expect("invariant: no worker panics while holding the job-queue lock");
            guard.1 = true;
        }
        self.shared.ready.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The process-wide run-level pool, created on first use with `workers`
/// threads (later calls reuse the first pool regardless of the argument —
/// callers across one campaign pass the same configured worker count).
/// Threads persist for the process lifetime, parked when idle.
pub fn shared_pool(workers: usize) -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| WorkerPool::new(workers))
}

/// Run many independent simulations on a persistent pool of `workers`
/// threads, preserving input order in the result.
///
/// The pool behind this function is the process-wide [`shared_pool`], so an
/// experiment campaign that issues many sweeps reuses one set of threads
/// instead of re-spawning per sweep. The first call fixes the pool size;
/// later calls with a different `workers` still run every job (idle workers
/// wait on the queue, a smaller pool just drains it more slowly), and
/// results never depend on the worker count. Callers needing an exactly
/// sized private pool can hold a [`WorkerPool`] directly.
pub fn run_all(jobs: Vec<(SystemConfig, RunConfig)>, workers: usize) -> Vec<RunOutcome> {
    if jobs.is_empty() {
        return Vec::new();
    }
    shared_pool(workers.max(1)).run_all(jobs)
}

/// A batch command broadcast to every domain worker: the coordinator's
/// quantum specs plus the batch-wide voltage schedule they index into.
struct BatchCmd {
    /// The quanta of this batch, in time order.
    quanta: Vec<QuantumSpec>,
    /// Global voltage per tick across the whole batch.
    v_sched: Vec<f64>,
    /// Per-domain commands (priority, throttle, faults), global indexing,
    /// shared by every quantum of the batch (the coordinator only batches
    /// when they are quantum-invariant).
    ctls: Vec<QuantumCtl>,
    tick: SimDuration,
    /// Whether workers should collect trace events (single-quantum batches
    /// only — the coordinator never batches a traced run).
    collect_events: bool,
}

/// One domain's results for a batch, inside its worker's reply.
struct DomainBatch {
    domain_idx: usize,
    /// Per-tick power across the whole batch.
    powers: Vec<f64>,
    work_done: f64,
    /// Heartbeat: the domain's controller accepted the batch's last quantum
    /// (for a `LoadState` reply: the payload restored cleanly).
    responded: bool,
    /// Trace events this domain emitted (empty unless collecting).
    events: Vec<TraceEvent>,
    /// Serialized domain state (non-empty only for `SaveState` replies).
    state: String,
}

/// One worker's reply to a [`WorkerMsg`]: results for every domain it owns.
/// Replying per worker instead of per domain divides the coordinator's
/// receive count per quantum by the domains-per-worker ratio — the receive
/// path is what dominates at the paper's 1 µs control quantum.
struct WorkerReply {
    domains: Vec<DomainBatch>,
}

enum WorkerMsg {
    /// Advance through a batch. The second field carries recycled
    /// [`DomainBatch`] shells from previous replies — the worker drains
    /// their buffers (cleared and re-zeroed, so values are identical to
    /// fresh allocations) instead of allocating per domain per dispatch.
    Batch(Arc<BatchCmd>, Vec<DomainBatch>),
    /// Request current work figures without advancing.
    ReportWork,
    /// Serialize each owned domain's checkpoint payload without advancing.
    SaveState,
    /// Restore each owned domain from the payload at its global index.
    LoadState(Arc<Vec<String>>),
}

/// Deterministic splitmix64 step — the sanitizer's only entropy source, so
/// a failing ordering is reproducible from its seed alone.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Adversarial reply-order permuter for the schedule-permutation sanitizer
/// ([`crate::simsan`]). When installed on a [`PooledExecutor`], every
/// dispatch first drains *all* worker replies (a maximally delayed merge)
/// and then releases the per-domain batches in a seed-determined order —
/// modelling the worst legal message schedule the channel protocol allows.
/// The executor's results must not change: merging happens by domain
/// index, so any arrival order is equivalent. The sanitizer makes that
/// claim executable.
pub(crate) struct ReplyPermuter {
    seed: u64,
    /// Per-run dispatch counter, so every batch sees a fresh ordering.
    dispatch: u64,
}

impl ReplyPermuter {
    pub(crate) fn new(seed: u64) -> ReplyPermuter {
        ReplyPermuter { seed, dispatch: 0 }
    }

    /// Reorder `batch` by deterministic per-element sort keys (a keyed
    /// shuffle — no index arithmetic, no shared state).
    fn shuffle<T>(&mut self, batch: Vec<T>) -> Vec<T> {
        self.dispatch = self.dispatch.wrapping_add(1);
        let base = splitmix64(self.seed ^ splitmix64(self.dispatch));
        let mut keyed: Vec<(u64, T)> = batch
            .into_iter()
            .enumerate()
            .map(|(i, item)| (splitmix64(base ^ (i as u64)), item))
            .collect();
        keyed.sort_by_key(|(k, _)| *k);
        keyed.into_iter().map(|(_, item)| item).collect()
    }
}

/// Executor that fans domains out to persistent worker threads.
pub(crate) struct PooledExecutor<'scope> {
    cmd_txs: Vec<Sender<WorkerMsg>>,
    reply_rx: Receiver<WorkerReply>,
    kinds: Vec<ComponentKind>,
    nominal_rates: Vec<f64>,
    last_work: Vec<f64>,
    n_domains: usize,
    /// Installed only by the sanitizer entry points; `None` in production.
    permuter: Option<ReplyPermuter>,
    /// Recycled batch command. After a dispatch the workers drop their
    /// handles, so by the next `run_batch` this is the only strong
    /// reference and `Arc::get_mut` lets the command's vectors be refilled
    /// in place instead of reallocated.
    cmd_slot: Option<Arc<BatchCmd>>,
    /// Recycled [`DomainBatch`] shells (power/event buffers), collected
    /// after each merge and shipped back out with the next batch.
    spares: Vec<DomainBatch>,
    /// Domains owned by each worker, in `cmd_txs` order — how many spare
    /// shells each worker gets per dispatch.
    part_sizes: Vec<usize>,
    /// Scatter buffer for merging replies in domain order, reused across
    /// dispatches (all `None` between them).
    results: Vec<Option<DomainBatch>>,
    _marker: std::marker::PhantomData<&'scope ()>,
}

impl PooledExecutor<'_> {
    /// Receive one reply per worker, handing each per-domain result to
    /// `sink`. Results are scattered by domain index afterwards, so arrival
    /// order never matters. Under the sanitizer's [`ReplyPermuter`] the
    /// batches are additionally buffered and released in an adversarially
    /// permuted order before sinking.
    fn collect_replies(&mut self, mut sink: impl FnMut(DomainBatch)) {
        let mut pending: Vec<DomainBatch> = Vec::new();
        let mut seen = 0usize;
        while seen < self.n_domains {
            let reply = self
                .reply_rx
                .recv()
                .expect("invariant: each worker replies once per dispatch");
            for dom in reply.domains {
                seen += 1;
                if self.permuter.is_some() {
                    pending.push(dom);
                } else {
                    self.last_work[dom.domain_idx] = dom.work_done;
                    sink(dom);
                }
            }
        }
        if let Some(p) = self.permuter.as_mut() {
            for dom in p.shuffle(pending) {
                // simlint: allow(L6): domain_idx < n_domains is the worker
                // protocol invariant; the streaming arm above is the same
                // (baselined) access
                self.last_work[dom.domain_idx] = dom.work_done;
                sink(dom);
            }
        }
    }
}

impl DomainExecutor for PooledExecutor<'_> {
    fn kinds(&self) -> Vec<ComponentKind> {
        self.kinds.clone()
    }

    fn nominal_rates(&self) -> Vec<f64> {
        self.nominal_rates.clone()
    }

    fn work_done(&mut self) -> Vec<f64> {
        for tx in &self.cmd_txs {
            tx.send(WorkerMsg::ReportWork)
                .expect("invariant: workers outlive the executor inside the thread scope");
        }
        self.collect_replies(|_| {});
        self.last_work.clone()
    }

    #[allow(clippy::too_many_arguments)]
    fn run_batch(
        &mut self,
        quanta: &[QuantumSpec],
        v_sched: &[f64],
        ctls: &[QuantumCtl],
        tick: SimDuration,
        power_acc: &mut [f64],
        heartbeats: &mut [bool],
        events: Option<&mut Vec<TraceEvent>>,
    ) {
        debug_assert!(
            events.is_none() || quanta.len() == 1,
            "traced runs dispatch single-quantum batches"
        );
        // Refill the previous dispatch's command in place when the workers
        // have all dropped their handles (the steady state); fall back to a
        // fresh allocation on the first dispatch or when a permuter has
        // delayed a drop.
        let cmd = match self.cmd_slot.take().map(|mut arc| {
            match Arc::get_mut(&mut arc) {
                Some(slot) => {
                    slot.quanta.clear();
                    slot.quanta.extend_from_slice(quanta);
                    slot.v_sched.clear();
                    slot.v_sched.extend_from_slice(v_sched);
                    slot.ctls.clear();
                    slot.ctls.extend_from_slice(ctls);
                    slot.tick = tick;
                    slot.collect_events = events.is_some();
                    Ok(arc)
                }
                None => Err(()),
            }
        }) {
            Some(Ok(arc)) => arc,
            _ => Arc::new(BatchCmd {
                quanta: quanta.to_vec(),
                v_sched: v_sched.to_vec(),
                ctls: ctls.to_vec(),
                tick,
                collect_events: events.is_some(),
            }),
        };
        // Ship each worker its share of recycled result shells along with
        // the command (none on the first dispatch — workers then allocate).
        for (w, tx) in self.cmd_txs.iter().enumerate() {
            // simlint: allow(L6): part_sizes is built with one entry per
            // worker channel, so w < part_sizes.len() by construction
            let take = self.part_sizes[w].min(self.spares.len());
            let shells = self.spares.split_off(self.spares.len() - take);
            tx.send(WorkerMsg::Batch(Arc::clone(&cmd), shells))
                .expect("invariant: workers outlive the executor inside the thread scope");
        }
        self.cmd_slot = Some(cmd);
        // Collect one reply per worker, then merge in domain order so the
        // floating-point sums — and the event stream — match the serial
        // executor exactly, whatever order the workers finished in.
        let mut results = std::mem::take(&mut self.results);
        self.collect_replies(|dom| {
            heartbeats[dom.domain_idx] = dom.responded;
            let idx = dom.domain_idx;
            results[idx] = Some(dom);
        });
        let mut events = events;
        for slot in results.iter_mut() {
            if let Some(mut dom) = slot.take() {
                for (acc, p) in power_acc.iter_mut().zip(&dom.powers) {
                    *acc += p;
                }
                if let Some(buf) = events.as_deref_mut() {
                    buf.append(&mut dom.events);
                }
                self.spares.push(dom);
            }
        }
        self.results = results;
    }

    fn domain_states(&mut self) -> Vec<String> {
        for tx in &self.cmd_txs {
            tx.send(WorkerMsg::SaveState)
                // simlint: allow(L6): checkpoint boundary, not per-tick; worker channels live for the executor scope
                .expect("invariant: workers outlive the executor inside the thread scope");
        }
        let mut states = vec![String::new(); self.n_domains];
        self.collect_replies(|dom| {
            // simlint: allow(L6): checkpoint boundary; domain_idx < n_domains by construction
            states[dom.domain_idx] = dom.state;
        });
        states
    }

    fn restore_domain_states(&mut self, states: &[String]) -> Option<()> {
        if states.len() != self.n_domains {
            return None;
        }
        let payload = Arc::new(states.to_vec());
        for tx in &self.cmd_txs {
            tx.send(WorkerMsg::LoadState(Arc::clone(&payload)))
                // simlint: allow(L6): checkpoint boundary, not per-tick; worker channels live for the executor scope
                .expect("invariant: workers outlive the executor inside the thread scope");
        }
        let mut ok = true;
        self.collect_replies(|dom| {
            ok &= dom.responded;
        });
        ok.then_some(())
    }
}

impl Simulation {
    /// Run to completion with the chiplet-parallel executor on `workers`
    /// threads. Produces results bit-identical to [`Simulation::run`].
    pub fn run_parallel(self, workers: usize) -> RunOutcome {
        self.run_parallel_inner(workers, None)
    }

    /// Sanitizer entry point: like [`Simulation::run_parallel`], but worker
    /// replies are buffered per dispatch and merged in the adversarial
    /// order derived from `permute_seed`. A correct executor produces
    /// byte-identical outcomes for every seed; [`crate::simsan`] asserts
    /// exactly that against the serial run.
    pub fn run_parallel_permuted(self, workers: usize, permute_seed: u64) -> RunOutcome {
        self.run_parallel_inner(workers, Some(ReplyPermuter::new(permute_seed)))
    }

    fn run_parallel_inner(self, workers: usize, permuter: Option<ReplyPermuter>) -> RunOutcome {
        let Simulation {
            sys,
            run,
            domains,
            global_ctl,
            vr,
            sensor,
            policy,
        } = self;
        with_pooled_executor(domains, workers, permuter, move |executor| {
            run_loop(sys, run, global_ctl, vr, sensor, policy, executor)
        })
    }
}

/// Spawn the chiplet-parallel worker threads for `domains`, build the
/// [`PooledExecutor`] over them, and hand it to `f`. Workers exit when the
/// executor's command channels drop at the end of `f`. Shared by
/// [`Simulation::run_parallel`] and the resume driver
/// ([`crate::resume::run_resumable`]), which needs the same executor under
/// a stepwise loop instead of `run_loop`.
pub(crate) fn with_pooled_executor<R>(
    domains: Vec<Domain>,
    workers: usize,
    permuter: Option<ReplyPermuter>,
    f: impl FnOnce(PooledExecutor<'_>) -> R,
) -> R {
    {
        let n_domains = domains.len();
        let workers = workers.max(1).min(n_domains);
        let kinds: Vec<ComponentKind> = domains.iter().map(|d| d.kind).collect();
        let nominal_rates: Vec<f64> = domains.iter().map(|d| d.nominal_rate).collect();
        let initial_work: Vec<f64> = domains.iter().map(|d| d.sim.work_done()).collect();

        // Partition domains round-robin so heterogeneous chiplets spread
        // across workers.
        let mut partitions: Vec<Vec<(usize, Domain)>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, d) in domains.into_iter().enumerate() {
            partitions[i % workers].push((i, d));
        }
        let part_sizes: Vec<usize> = partitions.iter().map(Vec::len).collect();

        thread::scope(|scope| {
            let (reply_tx, reply_rx) = channel::<WorkerReply>();
            let mut cmd_txs = Vec::with_capacity(workers);
            for part in partitions {
                let (cmd_tx, cmd_rx) = channel::<WorkerMsg>();
                cmd_txs.push(cmd_tx);
                let reply_tx = reply_tx.clone();
                scope.spawn(move || {
                    let mut part = part;
                    while let Ok(msg) = cmd_rx.recv() {
                        let reply = match msg {
                            WorkerMsg::Batch(cmd, mut shells) => {
                                let n_ticks = cmd.v_sched.len();
                                let mut domains = Vec::with_capacity(part.len());
                                for (idx, d) in part.iter_mut() {
                                    // Drain a recycled shell's buffers when
                                    // one was shipped with the command; the
                                    // cleared-and-rezeroed buffers hold the
                                    // same values a fresh allocation would.
                                    let (mut powers, mut events) = match shells.pop() {
                                        Some(shell) => (shell.powers, shell.events),
                                        None => (Vec::new(), Vec::new()),
                                    };
                                    powers.clear();
                                    powers.resize(n_ticks, 0.0);
                                    events.clear();
                                    let mut responded = true;
                                    for q in &cmd.quanta {
                                        responded = d.run_quantum(
                                            q.t0,
                                            &cmd.v_sched[q.offset..q.offset + q.n],
                                            q.update_local,
                                            &cmd.ctls[*idx],
                                            cmd.tick,
                                            &mut powers[q.offset..q.offset + q.n],
                                            cmd.collect_events.then_some(&mut events),
                                        );
                                    }
                                    domains.push(DomainBatch {
                                        domain_idx: *idx,
                                        powers,
                                        work_done: d.sim.work_done(),
                                        responded,
                                        events,
                                        state: String::new(),
                                    });
                                }
                                WorkerReply { domains }
                            }
                            WorkerMsg::ReportWork => WorkerReply {
                                domains: part
                                    .iter()
                                    .map(|(idx, d)| DomainBatch {
                                        domain_idx: *idx,
                                        powers: Vec::new(),
                                        work_done: d.sim.work_done(),
                                        responded: true,
                                        events: Vec::new(),
                                        state: String::new(),
                                    })
                                    .collect(),
                            },
                            WorkerMsg::SaveState => WorkerReply {
                                domains: part
                                    .iter()
                                    .map(|(idx, d)| DomainBatch {
                                        domain_idx: *idx,
                                        powers: Vec::new(),
                                        work_done: d.sim.work_done(),
                                        responded: true,
                                        events: Vec::new(),
                                        state: encode_domain_state(d),
                                    })
                                    .collect(),
                            },
                            WorkerMsg::LoadState(states) => WorkerReply {
                                domains: part
                                    .iter_mut()
                                    .map(|(idx, d)| {
                                        let ok = states
                                            .get(*idx)
                                            .and_then(|s| decode_domain_state(d, s))
                                            .is_some();
                                        DomainBatch {
                                            domain_idx: *idx,
                                            powers: Vec::new(),
                                            work_done: d.sim.work_done(),
                                            responded: ok,
                                            events: Vec::new(),
                                            state: String::new(),
                                        }
                                    })
                                    .collect(),
                            },
                        };
                        if reply_tx.send(reply).is_err() {
                            return;
                        }
                    }
                });
            }
            drop(reply_tx);

            let executor = PooledExecutor {
                cmd_txs,
                reply_rx,
                kinds,
                nominal_rates,
                last_work: initial_work,
                n_domains,
                permuter,
                cmd_slot: None,
                spares: Vec::with_capacity(n_domains),
                part_sizes,
                results: (0..n_domains).map(|_| None).collect(),
                _marker: std::marker::PhantomData,
            };
            // Workers exit when their command channels drop with the
            // executor at the end of `f`.
            f(executor)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limits::PowerLimit;
    use crate::scheme::ControlScheme;

    use hcapp_sim_core::time::SimDuration;
    use hcapp_workloads::combos::combo_suite;

    fn job(seed: u64) -> (SystemConfig, RunConfig) {
        let sys = SystemConfig::paper_system(combo_suite()[4], seed); // Hi-Low
        let target = PowerLimit::package_pin().guardbanded_target();
        let run = RunConfig::new(
            SimDuration::from_millis(2),
            ControlScheme::Hcapp,
            target,
        );
        (sys, run)
    }

    #[test]
    fn run_all_preserves_order_and_determinism() {
        let jobs: Vec<_> = (0..4).map(job).collect();
        let par = run_all(jobs.clone(), 4);
        let ser: Vec<RunOutcome> = jobs
            .into_iter()
            .map(|(s, r)| Simulation::new(s, r).run())
            .collect();
        assert_eq!(par.len(), ser.len());
        for (p, s) in par.iter().zip(&ser) {
            assert_eq!(p.avg_power, s.avg_power);
            assert_eq!(p.work, s.work);
        }
    }

    #[test]
    fn run_all_with_single_worker() {
        let out = run_all(vec![job(9)], 1);
        assert_eq!(out.len(), 1);
        assert!(out[0].avg_power.value() > 0.0);
    }

    #[test]
    fn run_all_with_more_workers_than_jobs() {
        let out = run_all(vec![job(3), job(5)], 16);
        assert_eq!(out.len(), 2);
        for o in &out {
            assert!(o.avg_power.value() > 0.0);
        }
    }

    #[test]
    fn run_all_with_empty_job_list() {
        let out = run_all(Vec::new(), 4);
        assert!(out.is_empty());
        // The pool form likewise returns without blocking on a condvar.
        let pool = WorkerPool::new(2);
        assert!(pool.run_all(Vec::new()).is_empty());
    }

    #[test]
    fn worker_pool_reused_across_submissions() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.workers(), 3);
        let first = pool.run_all(vec![job(3), job(5), job(7)]);
        let second = pool.run_all(vec![job(3)]);
        assert_eq!(first.len(), 3);
        assert_eq!(second.len(), 1);
        // Same job, same pool → bit-identical outcome on reuse.
        assert_eq!(first[0].avg_power, second[0].avg_power);
        assert_eq!(first[0].work, second[0].work);
    }

    #[test]
    fn chiplet_parallel_matches_serial_bitwise() {
        let (sys, run) = job(13);
        let ser = Simulation::new(sys.clone(), run.clone()).run();
        let par = Simulation::new(sys, run).run_parallel(3);
        assert_eq!(ser.avg_power, par.avg_power, "avg power differs");
        assert_eq!(ser.energy_j, par.energy_j, "energy differs");
        assert_eq!(ser.work, par.work, "work differs");
        assert_eq!(ser.windowed_max, par.windowed_max, "windowed max differs");
        assert_eq!(
            ser.mean_global_voltage, par.mean_global_voltage,
            "mean voltage differs"
        );
    }

    #[test]
    fn chiplet_parallel_with_more_workers_than_domains() {
        let (sys, run) = job(17);
        let out = Simulation::new(sys, run).run_parallel(16);
        assert!(out.avg_power.value() > 0.0);
    }

    #[test]
    fn chiplet_parallel_with_software_policy() {
        let (sys, run) = job(21);
        let run = run.with_software(crate::coordinator::SoftwareConfig::StaticPriority(
            ComponentKind::Cpu,
        ));
        let ser = Simulation::new(sys.clone(), run.clone()).run();
        let par = Simulation::new(sys, run).run_parallel(2);
        assert_eq!(ser.work, par.work);
    }

    #[test]
    fn batched_fixed_baseline_matches_per_quantum_bitwise() {
        // The fixed-voltage baseline is the feedback-free path where
        // multi-quantum batching actually engages; every batch bound must
        // produce the same bits, serial and pooled.
        let sys = SystemConfig::paper_system(combo_suite()[1], 23);
        let target = PowerLimit::package_pin().guardbanded_target();
        let mk = |batch: usize| {
            RunConfig::new(
                SimDuration::from_millis(2),
                ControlScheme::fixed_baseline(),
                target,
            )
            .with_trace()
            .with_batch_quanta(batch)
        };
        let reference = Simulation::new(sys.clone(), mk(1)).run();
        for batch in [2, 5, 32, 1000] {
            let ser = Simulation::new(sys.clone(), mk(batch)).run();
            let par = Simulation::new(sys.clone(), mk(batch)).run_parallel(2);
            for out in [&ser, &par] {
                assert_eq!(reference.avg_power, out.avg_power, "batch {batch}");
                assert_eq!(reference.energy_j, out.energy_j, "batch {batch}");
                assert_eq!(reference.work, out.work, "batch {batch}");
                assert_eq!(reference.windowed_max, out.windowed_max, "batch {batch}");
                assert_eq!(
                    reference.mean_global_voltage, out.mean_global_voltage,
                    "batch {batch}"
                );
                assert_eq!(
                    reference.trace.as_ref().map(|t| t.values().to_vec()),
                    out.trace.as_ref().map(|t| t.values().to_vec()),
                    "batch {batch}"
                );
            }
        }
    }
}

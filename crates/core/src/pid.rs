//! PID controller with feed-forward (Eq. 2).
//!
//! `V_next = V_offset + K_P·V_err + K_I·∫V_err dt + K_D·dV_err/dt`
//!
//! The paper uses the common feed-forward variant: `V_offset` is an open-
//! loop term "set to approximately the average voltage expected throughout
//! execution" (§3.1). The integral uses continuous-time units (per second),
//! so the same gains behave consistently across the 1 µs / 100 µs / 10 ms
//! control periods of the three schemes — exactly what the paper does when
//! it reuses HCAPP's constants for the RAPL-like and software-like variants.
//! Anti-windup clamps the integral so a long saturation (e.g. an idle
//! package pinned at the voltage ceiling) doesn't poison later transients.

use hcapp_sim_core::time::SimDuration;

/// Gains and limits for a [`PidController`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PidGains {
    /// Proportional gain (volts per unit error).
    pub kp: f64,
    /// Integral gain (volts per unit-error-second).
    pub ki: f64,
    /// Derivative gain (volt-seconds per unit error). The paper finds the
    /// derivative term "generally unneeded" (§3.1) — the tuned default is a
    /// PI controller.
    pub kd: f64,
    /// Feed-forward output offset (volts).
    pub offset: f64,
    /// Output clamp range (volts).
    pub out_min: f64,
    /// Output clamp upper bound (volts).
    pub out_max: f64,
    /// Anti-windup clamp on the integral *contribution* (volts).
    pub integral_limit: f64,
    /// Overshoot protection: multiplier on `kp` while the error is negative
    /// (power above target). Hardware cappers react asymmetrically — cutting
    /// an over-budget spike is urgent, using spare budget is not. 1.0
    /// disables the boost.
    pub overshoot_kp_boost: f64,
    /// Overshoot protection: per-period decay applied to the integral while
    /// the error is negative, draining the budget headroom accumulated
    /// during quiet phases (a conditional-integration anti-windup variant).
    /// 1.0 disables the decay.
    pub overshoot_integral_decay: f64,
    /// Largest change in the output per control action, in volts. Real
    /// controllers walk an operating-point ladder (P-states, VID steps)
    /// rather than jumping rail-to-rail in one command; this is what makes a
    /// slow controller *lag* the program phases instead of slamming between
    /// extremes. `f64::INFINITY` disables the limit.
    pub max_step: f64,
    /// Overshoot protection trigger, in error units (cube-root watts for
    /// the global controller): protection engages only when the error is
    /// below `-overshoot_deadband`, so ordinary regulation noise around the
    /// target keeps symmetric gains and only genuine spikes get the
    /// emergency response.
    pub overshoot_deadband: f64,
}

impl PidGains {
    /// The tuned constants for the paper system (see [`crate::tuning`] for
    /// the procedure that produced them). PI form, per §3.1.
    pub fn paper_default() -> Self {
        PidGains {
            kp: 0.012,
            ki: 900.0,
            kd: 0.0,
            offset: 0.95,
            out_min: 0.60,
            out_max: 1.30,
            integral_limit: 0.40,
            max_step: 0.05,
            overshoot_kp_boost: 4.0,
            overshoot_integral_decay: 0.80,
            overshoot_deadband: 1.6,
        }
    }

    /// Validate invariants.
    ///
    /// # Panics
    /// Panics on inverted output range or negative limits.
    pub fn validate(&self) {
        assert!(self.out_min <= self.out_max, "inverted output range");
        assert!(self.integral_limit >= 0.0, "negative integral limit");
        assert!(self.overshoot_kp_boost >= 1.0, "boost must be >= 1");
        assert!(
            self.overshoot_integral_decay > 0.0 && self.overshoot_integral_decay <= 1.0,
            "decay must be in (0, 1]"
        );
        assert!(self.overshoot_deadband >= 0.0, "negative deadband");
        assert!(self.max_step > 0.0, "non-positive max step");
    }
}

/// Breakdown of the most recent control action into its Eq. 2 terms, in
/// output units (volts for the global controller). Telemetry reads this to
/// expose *why* the controller moved, not just where it moved to.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PidTerms {
    /// The error the action was computed from.
    pub error: f64,
    /// Proportional contribution `K_P·V_err` (overshoot boost included).
    pub p: f64,
    /// Integral contribution `K_I·∫V_err dt` (after anti-windup clamping).
    pub i: f64,
    /// Derivative contribution `K_D·dV_err/dt`.
    pub d: f64,
    /// The final output after the step ladder and range clamps.
    pub output: f64,
}

/// Discrete PID controller state.
///
/// ```
/// use hcapp::pid::{PidController, PidGains};
/// use hcapp_sim_core::time::SimDuration;
///
/// let mut pid = PidController::new(PidGains::paper_default());
/// // Power below target (positive error) drives the voltage above the
/// // feed-forward offset; above target drives it below.
/// let up = pid.update(2.0, SimDuration::from_micros(1));
/// assert!(up > 0.95);
/// pid.reset();
/// let down = pid.update(-2.0, SimDuration::from_micros(1));
/// assert!(down < 0.95);
/// ```
#[derive(Debug, Clone)]
pub struct PidController {
    gains: PidGains,
    /// Integral of error over time (unit-error-seconds).
    integral: f64,
    prev_error: Option<f64>,
    prev_output: Option<f64>,
    last_terms: PidTerms,
}

impl PidController {
    /// Create a controller with the given gains.
    pub fn new(gains: PidGains) -> Self {
        gains.validate();
        PidController {
            gains,
            integral: 0.0,
            prev_error: None,
            prev_output: None,
            last_terms: PidTerms::default(),
        }
    }

    /// The configured gains.
    pub fn gains(&self) -> &PidGains {
        &self.gains
    }

    /// Advance one control period with the given error; returns the clamped
    /// output.
    pub fn update(&mut self, error: f64, dt: SimDuration) -> f64 {
        let dt_s = dt.as_secs_f64();
        // Overshoot protection: while clearly over budget, drain the
        // headroom the integral accumulated during quiet phases instead of
        // letting it hold the voltage up through a power spike.
        let overshooting = error < -self.gains.overshoot_deadband;
        if overshooting && self.gains.overshoot_integral_decay < 1.0 {
            self.integral *= self.gains.overshoot_integral_decay;
        }
        self.integral += error * dt_s;
        // Anti-windup: clamp the integral so its contribution stays within
        // ±integral_limit volts.
        // simlint: allow(L8): ki is a configured constant, never a computed
        // value; exact zero is the "integral term disabled" sentinel
        if self.gains.ki != 0.0 {
            let max_int = self.gains.integral_limit / self.gains.ki.abs();
            self.integral = self.integral.clamp(-max_int, max_int);
        }
        let derivative = match self.prev_error {
            Some(prev) if dt_s > 0.0 => (error - prev) / dt_s,
            _ => 0.0,
        };
        self.prev_error = Some(error);
        let kp = if overshooting {
            self.gains.kp * self.gains.overshoot_kp_boost
        } else {
            self.gains.kp
        };
        let mut out = self.gains.offset
            + kp * error
            + self.gains.ki * self.integral
            + self.gains.kd * derivative;
        // The ladder starts from the feed-forward point: the first action is
        // as step-limited as every later one.
        let prev = self.prev_output.unwrap_or(self.gains.offset);
        out = out.clamp(prev - self.gains.max_step, prev + self.gains.max_step);
        let out = out.clamp(self.gains.out_min, self.gains.out_max);
        self.prev_output = Some(out);
        self.last_terms = PidTerms {
            error,
            p: kp * error,
            i: self.gains.ki * self.integral,
            d: self.gains.kd * derivative,
            output: out,
        };
        crate::invariants::check_integral_bounded(
            "PidController::update",
            self.integral_contribution(),
            self.gains.integral_limit,
        );
        out
    }

    /// Reset dynamic state (integral and derivative history).
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.prev_error = None;
        self.prev_output = None;
        self.last_terms = PidTerms::default();
    }

    /// Term-by-term breakdown of the most recent [`update`] call (all zeros
    /// before the first call and after a [`reset`]).
    ///
    /// [`update`]: PidController::update
    /// [`reset`]: PidController::reset
    pub fn last_terms(&self) -> PidTerms {
        self.last_terms
    }

    /// Current integral contribution in volts (for diagnostics/tests).
    pub fn integral_contribution(&self) -> f64 {
        self.gains.ki * self.integral
    }
}

impl hcapp_sim_core::state::Snapshot for PidController {
    fn save_state(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        w.f64("pid.integral", self.integral);
        w.opt_f64("pid.prev_error", self.prev_error);
        w.opt_f64("pid.prev_output", self.prev_output);
        w.f64("pid.t.error", self.last_terms.error);
        w.f64("pid.t.p", self.last_terms.p);
        w.f64("pid.t.i", self.last_terms.i);
        w.f64("pid.t.d", self.last_terms.d);
        w.f64("pid.t.output", self.last_terms.output);
    }

    fn load_state(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        self.integral = r.f64("pid.integral")?;
        self.prev_error = r.opt_f64("pid.prev_error")?;
        self.prev_output = r.opt_f64("pid.prev_output")?;
        self.last_terms.error = r.f64("pid.t.error")?;
        self.last_terms.p = r.f64("pid.t.p")?;
        self.last_terms.i = r.f64("pid.t.i")?;
        self.last_terms.d = r.f64("pid.t.d")?;
        self.last_terms.output = r.f64("pid.t.output")?;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::assert_close;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    fn gains() -> PidGains {
        PidGains {
            kp: 0.1,
            ki: 1000.0,
            kd: 0.0,
            offset: 1.0,
            out_min: 0.5,
            out_max: 1.5,
            integral_limit: 0.3,
            max_step: f64::INFINITY,
            overshoot_kp_boost: 1.0,
            overshoot_integral_decay: 1.0,
            overshoot_deadband: 0.0,
        }
    }

    #[test]
    fn step_limit_walks_the_ladder() {
        let g = PidGains {
            ki: 0.0,
            max_step: 0.1,
            ..gains()
        };
        let mut pid = PidController::new(g);
        // Every action — including the first, anchored at the offset —
        // moves at most 0.1 V along the ladder.
        let first = pid.update(100.0, us(1));
        assert_close!(first, 1.1, 1e-12);
        let second = pid.update(100.0, us(1));
        assert_close!(second, 1.2, 1e-12);
        let down = pid.update(-100.0, us(1));
        assert_close!(down, 1.1, 1e-12);
    }

    #[test]
    fn overshoot_boost_asymmetry() {
        let g = PidGains {
            ki: 0.0,
            overshoot_kp_boost: 4.0,
            ..gains()
        };
        let mut pid = PidController::new(g);
        let up = pid.update(1.0, us(1)) - 1.0;
        let down = 1.0 - pid.update(-1.0, us(1));
        assert_close!(down / up, 4.0, 1e-9);
    }

    #[test]
    fn overshoot_decay_drains_integral() {
        let g = PidGains {
            kp: 0.0,
            overshoot_integral_decay: 0.5,
            ..gains()
        };
        let mut pid = PidController::new(g);
        for _ in 0..200 {
            pid.update(1.0, us(1));
        }
        let wound = pid.integral_contribution();
        assert!(wound > 0.1);
        // A handful of over-budget periods drains it geometrically.
        for _ in 0..10 {
            pid.update(-0.1, us(1));
        }
        assert!(
            pid.integral_contribution() < wound * 0.01,
            "integral should drain fast on overshoot"
        );
    }

    #[test]
    fn zero_error_outputs_offset() {
        let mut pid = PidController::new(gains());
        assert_close!(pid.update(0.0, us(1)), 1.0, 1e-12);
    }

    #[test]
    fn proportional_action() {
        let mut pid = PidController::new(PidGains {
            ki: 0.0,
            ..gains()
        });
        // offset + kp*err = 1.0 + 0.1*2 = 1.2
        assert_close!(pid.update(2.0, us(1)), 1.2, 1e-12);
        assert_close!(pid.update(-2.0, us(1)), 0.8, 1e-12);
    }

    #[test]
    fn integral_accumulates() {
        let mut pid = PidController::new(PidGains {
            kp: 0.0,
            ..gains()
        });
        // 1000 µs of error 1 → integral = 1e-3, contribution = 1.0 … but
        // anti-windup clamps at 0.3.
        let mut out = 0.0;
        for _ in 0..1000 {
            out = pid.update(1.0, us(1));
        }
        assert_close!(pid.integral_contribution(), 0.3, 1e-9);
        assert_close!(out, 1.3, 1e-9);
    }

    #[test]
    fn integral_recovers_after_windup() {
        let mut pid = PidController::new(PidGains {
            kp: 0.0,
            ..gains()
        });
        for _ in 0..10_000 {
            pid.update(5.0, us(1));
        }
        // Reverse error: contribution falls immediately because the integral
        // was clamped, not left to grow unbounded.
        let before = pid.integral_contribution();
        for _ in 0..300 {
            pid.update(-5.0, us(1));
        }
        assert!(pid.integral_contribution() < before);
    }

    #[test]
    fn derivative_action() {
        let mut pid = PidController::new(PidGains {
            kp: 0.0,
            ki: 0.0,
            kd: 1e-6,
            ..gains()
        });
        pid.update(0.0, us(1));
        // Error jumps 0 → 1 over 1 µs: derivative = 1e6, kd*deriv = 1.
        let out = pid.update(1.0, us(1));
        assert_close!(out, 1.5, 1e-9); // clamped at out_max
    }

    #[test]
    fn output_clamped() {
        let mut pid = PidController::new(gains());
        assert_close!(pid.update(100.0, us(1)), 1.5, 1e-12);
        let mut pid = PidController::new(gains());
        assert_close!(pid.update(-100.0, us(1)), 0.5, 1e-12);
    }

    #[test]
    fn reset_clears_state() {
        let mut pid = PidController::new(gains());
        for _ in 0..100 {
            pid.update(3.0, us(10));
        }
        pid.reset();
        assert_close!(pid.integral_contribution(), 0.0, 1e-12);
        assert_close!(pid.update(0.0, us(1)), 1.0, 1e-12);
    }

    #[test]
    fn time_scaled_integral_is_period_consistent() {
        // Same wall-clock error history through 1 µs vs 100 µs periods
        // accumulates the same integral.
        let g = PidGains {
            kp: 0.0,
            integral_limit: 10.0,
            ..gains()
        };
        let mut fast = PidController::new(g);
        let mut slow = PidController::new(g);
        for _ in 0..1000 {
            fast.update(0.5, us(1));
        }
        for _ in 0..10 {
            slow.update(0.5, us(100));
        }
        assert_close!(
            fast.integral_contribution(),
            slow.integral_contribution(),
            1e-9
        );
    }

    #[test]
    fn last_terms_decompose_output() {
        let mut pid = PidController::new(gains());
        let out = pid.update(2.0, us(1));
        let t = pid.last_terms();
        assert_eq!(t.output, out);
        assert_close!(t.error, 2.0, 1e-12);
        // No clamp engaged for this small move: output = offset + P + I + D.
        assert_close!(out, 1.0 + t.p + t.i + t.d, 1e-12);
        pid.reset();
        assert_eq!(pid.last_terms(), PidTerms::default());
    }

    #[test]
    fn paper_default_validates() {
        PidGains::paper_default().validate();
        assert_eq!(PidGains::paper_default().kd, 0.0, "paper uses PI form");
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn bad_gains_panic() {
        let _ = PidController::new(PidGains {
            out_min: 2.0,
            out_max: 1.0,
            ..gains()
        });
    }
}

//! Crash-safe checkpoint/resume driver: `run_resumable`.
//!
//! The coordinator's [`crate::coordinator`] loop is reified as a stepwise
//! `LoopDriver`; this module drives it batch by batch, persisting an
//! `hcapp.ckpt` snapshot ([`hcapp_resume::Checkpoint`]) every
//! `checkpoint_every` control quanta. The correctness contract, pinned by
//! the kill-matrix tests and the `scripts/check.sh` soak smoke step:
//!
//! > A run killed at **any** quantum and resumed from its last valid
//! > checkpoint produces a byte-identical [`RunOutcome`], trace stream and
//! > `hcapp.report` to the run that was never interrupted — across the
//! > serial, pooled and batched executors, under any valid fault plan.
//!
//! Why it holds (DESIGN §6h has the full argument):
//!
//! * Every piece of mutable run state lives behind a
//!   [`hcapp_sim_core::state::Snapshot`] impl that round-trips f64s as
//!   IEEE-754 bit patterns, so a restore is *exact*, not approximate.
//! * Checkpoints are only taken at batch boundaries, where the per-quantum
//!   event buffer is empty (asserted) and no scratch state is live.
//! * Stateless collaborators (the fault injector, software policies, the
//!   reply permuter's per-dispatch derivation) are pure functions of
//!   configuration and simulated time, which the checkpoint pins via its
//!   config fingerprint instead of serializing them.
//!
//! The trace seam: with a sink attached, the driver drains the in-memory
//! ring into the JSONL file immediately *before* each checkpoint and
//! records the file length in the snapshot. On resume the sink is truncated
//! back to that offset, erasing anything the killed process appended after
//! its last checkpoint; the stitched file is byte-identical to an
//! uninterrupted `jsonl::export`.

use std::fs::{self, OpenOptions};
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use hcapp_cache::Hasher;
use hcapp_resume::{Checkpoint, CheckpointStore};
use hcapp_sim_core::state::{Snapshot, StateReader, StateWriter};
use hcapp_telemetry::jsonl;
use hcapp_telemetry::tracer::{RingTracer, SharedTracer};

use crate::coordinator::{run_loop, DomainExecutor, LoopDriver, RunConfig, Simulation};
use crate::outcome::RunOutcome;
use crate::parallel::{with_pooled_executor, ReplyPermuter};
use crate::coordinator::SerialExecutor;
use crate::system::SystemConfig;

/// How a resumable run ended.
#[derive(Debug, Clone)]
pub enum ResumeEnd {
    /// The run reached its configured duration; the outcome is final.
    Completed(RunOutcome),
    /// The run was stopped at the given completed-quantum count by
    /// [`ResumeOptions::stop_at`] — the in-process stand-in for SIGKILL.
    /// Nothing was flushed past the last checkpoint, exactly as if the
    /// process had died.
    Stopped {
        /// Control quanta completed when the run stopped.
        quantum: u64,
    },
}

/// What [`run_resumable`] did, beyond the outcome itself.
#[derive(Debug, Clone)]
pub struct ResumeSummary {
    /// How the run ended.
    pub end: ResumeEnd,
    /// `Some(q)` when the run restored a checkpoint taken at quantum `q`;
    /// `None` when it started fresh.
    pub resumed_from: Option<u64>,
    /// Checkpoints written during this invocation.
    pub checkpoints_written: u64,
}

/// Configuration of the checkpoint/resume driver.
#[derive(Debug, Clone)]
pub struct ResumeOptions {
    /// Primary checkpoint path (`hcapp.ckpt`; the previous snapshot rotates
    /// to `<path>.1`).
    pub ckpt_path: PathBuf,
    /// Snapshot cadence in control quanta (clamped to at least 1).
    pub checkpoint_every: u64,
    /// Worker threads for the pooled executor; 0 runs serially.
    pub workers: usize,
    /// Adversarial reply-order seed for the pooled executor (the simsan
    /// permutation); `None` merges replies in arrival order.
    pub permute_seed: Option<u64>,
    /// Stop (without flushing) once this many quanta have completed — the
    /// deterministic in-process equivalent of `kill -9`.
    pub stop_at: Option<u64>,
    /// JSONL trace sink stitched across kills. When set, the driver owns a
    /// [`RingTracer`] and the run configuration must not carry a tracer of
    /// its own.
    pub trace_sink: Option<PathBuf>,
    /// Capacity of the owned ring tracer (events buffered between
    /// checkpoints).
    pub trace_capacity: usize,
    /// Extra `(key, value)` metadata for the trace header line.
    pub trace_extra: Vec<(String, String)>,
}

impl ResumeOptions {
    /// Defaults: serial execution, checkpoint every 64 quanta, no trace
    /// sink, no stop.
    pub fn new(ckpt_path: impl Into<PathBuf>) -> Self {
        ResumeOptions {
            ckpt_path: ckpt_path.into(),
            checkpoint_every: 64,
            workers: 0,
            permute_seed: None,
            stop_at: None,
            trace_sink: None,
            trace_capacity: 1 << 20,
            trace_extra: Vec::new(),
        }
    }

    /// Set the snapshot cadence in quanta.
    pub fn with_checkpoint_every(mut self, every: u64) -> Self {
        self.checkpoint_every = every;
        self
    }

    /// Use the pooled executor with this many workers (0 = serial).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Use the pooled executor with adversarially permuted reply order.
    pub fn with_permute_seed(mut self, seed: u64) -> Self {
        self.permute_seed = Some(seed);
        self
    }

    /// Stop without flushing after this many quanta (simulated kill).
    pub fn with_stop_at(mut self, quantum: u64) -> Self {
        self.stop_at = Some(quantum);
        self
    }

    /// Stitch a JSONL trace into the given file across kills.
    pub fn with_trace_sink(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace_sink = Some(path.into());
        self
    }

    /// Add a `(key, value)` pair to the trace header line.
    pub fn with_trace_extra(mut self, key: &str, value: &str) -> Self {
        self.trace_extra.push((key.to_string(), value.to_string()));
        self
    }
}

/// 32-hex fingerprint of everything that determines a run's results (and
/// its trace stream). Two invocations with equal fingerprints are the same
/// physical run, so a checkpoint from one may seed the other. Execution
/// strategy (`batch_quanta`, worker count, reply permutation) is excluded —
/// the executors are bit-identical by construction — but whether a trace
/// sink is attached is included, because tracing changes what must be
/// stitched on resume.
pub fn config_fingerprint(sys: &SystemConfig, run: &RunConfig, traced: bool) -> String {
    let mut h = Hasher::new();
    h.write_str(hcapp_resume::SCHEMA);
    h.write_str(&format!("{sys:?}"));
    h.write_u64(run.duration.as_nanos());
    h.write_str(&format!("{:?}", run.scheme));
    h.write_f64(run.power_target.value());
    h.write_str(&format!("{:?}", run.retargets));
    h.write_str(&format!("{:?}", run.track_windows));
    h.write_bool(run.record_trace);
    h.write_bool(run.record_voltage_trace);
    h.write_u64(run.trace_interval.as_nanos());
    h.write_str(&format!("{:?}", run.software));
    h.write_str(&format!("{:?}", run.faults));
    h.write_str(&format!("{:?}", run.degraded));
    h.write_bool(traced);
    h.finish().to_hex()
}

/// Run a simulation with periodic crash-safe checkpoints, resuming from the
/// newest valid `hcapp.ckpt` if one matches the configuration.
///
/// The run configuration must not carry its own tracer or profiler — the
/// driver owns the trace hook (see [`ResumeOptions::trace_sink`]) and a
/// profiler's wall-clock samples cannot survive a kill.
///
/// # Panics
/// Panics if `run.tracer` or `run.profiler` is set, or on invalid
/// system/run configuration (the same validation as [`Simulation::new`]).
///
/// # Errors
/// Propagates I/O failures from the checkpoint store or the trace sink.
pub fn run_resumable(
    sys: SystemConfig,
    run: RunConfig,
    opts: &ResumeOptions,
) -> io::Result<ResumeSummary> {
    assert!(
        run.tracer.is_none(),
        "run_resumable owns the trace hook; use ResumeOptions::trace_sink"
    );
    assert!(
        run.profiler.is_none(),
        "run_resumable cannot checkpoint a profiler's wall-clock samples"
    );
    let fingerprint = config_fingerprint(&sys, &run, opts.trace_sink.is_some());
    let store = CheckpointStore::new(&opts.ckpt_path);
    let candidate = store.latest_valid(&fingerprint).map(|(ck, _)| ck);

    // The restore path mutates a freshly-built driver; if a section fails
    // to apply (a "cannot happen" given the checksum and fingerprint both
    // matched, but robustness demands the branch), the partially-restored
    // driver is unusable. Clear the store and retry from scratch — the
    // recursion terminates because the second call finds no candidate.
    match run_once(&sys, &run, opts, &fingerprint, &store, candidate)? {
        Some(summary) => Ok(summary),
        None => {
            store.clear()?;
            run_resumable(sys, run, opts)
        }
    }
}

/// One attempt: `Ok(None)` means the candidate checkpoint failed to apply
/// and the caller should fall back to a fresh start.
fn run_once(
    sys: &SystemConfig,
    run: &RunConfig,
    opts: &ResumeOptions,
    fingerprint: &str,
    store: &CheckpointStore,
    candidate: Option<Checkpoint>,
) -> io::Result<Option<ResumeSummary>> {
    // The driver owns the concrete ring; the run config gets the same ring
    // behind the `SharedTracer` unsize coercion.
    let ring: Option<Arc<Mutex<RingTracer>>> = opts
        .trace_sink
        .as_ref()
        .map(|_| Arc::new(Mutex::new(RingTracer::new(opts.trace_capacity.max(1)))));
    let mut run = run.clone();
    if let Some(ring) = ring.as_ref() {
        let shared: SharedTracer = ring.clone();
        run.tracer = Some(shared);
    }
    let sim = Simulation::new(sys.clone(), run);
    let Simulation {
        sys,
        run,
        domains,
        global_ctl,
        vr,
        sensor,
        policy,
    } = sim;

    let ctx = DriveCtx {
        opts,
        fingerprint,
        store,
        ring: ring.as_deref(),
    };
    if opts.workers == 0 {
        let legacy = run.stepper == crate::kernel::StepperPath::Legacy;
        let executor = SerialExecutor { domains, legacy };
        let driver = LoopDriver::new(sys, run, global_ctl, vr, sensor, policy, executor);
        drive(driver, candidate, &ctx)
    } else {
        let permuter = opts.permute_seed.map(ReplyPermuter::new);
        with_pooled_executor(domains, opts.workers, permuter, move |executor| {
            let driver = LoopDriver::new(sys, run, global_ctl, vr, sensor, policy, executor);
            drive(driver, candidate, &ctx)
        })
    }
}

/// Shared context threaded through the generic driver loop.
struct DriveCtx<'a> {
    opts: &'a ResumeOptions,
    fingerprint: &'a str,
    store: &'a CheckpointStore,
    ring: Option<&'a Mutex<RingTracer>>,
}

/// The stepwise loop: restore (or initialize the trace sink), then
/// `step_batch` to completion, checkpointing on cadence. Returns `Ok(None)`
/// when the candidate checkpoint failed to apply.
fn drive<E: DomainExecutor>(
    mut driver: LoopDriver<E>,
    candidate: Option<Checkpoint>,
    ctx: &DriveCtx<'_>,
) -> io::Result<Option<ResumeSummary>> {
    let opts = ctx.opts;
    let every = opts.checkpoint_every.max(1);
    let mut resumed_from = None;
    // Byte length of the trace sink at the last durable point; `None` when
    // no sink is attached.
    let mut sink_len: Option<u64> = None;

    if let Some(ck) = candidate {
        if restore(&mut driver, &ck, ctx).is_none() {
            return Ok(None);
        }
        if ctx.ring.is_some() {
            // Erase whatever the killed process appended past its last
            // checkpoint; those quanta will be re-executed bit-exactly.
            truncate_sink(opts, ck.trace_offset)?;
            sink_len = Some(ck.trace_offset);
        }
        resumed_from = Some(ck.quantum);
    } else if let Some(path) = opts.trace_sink.as_ref() {
        // Fresh start: (re)create the sink with just the header line.
        let extra: Vec<(&str, &str)> = opts
            .trace_extra
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        let mut text = jsonl::header(&extra);
        text.push('\n');
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        fs::write(path, &text)?;
        sink_len = Some(text.len() as u64);
    }

    let mut checkpoints_written = 0u64;
    let mut next_mark = next_multiple(driver.quanta_completed(), every);
    while !driver.is_done() {
        driver.step_batch();
        let q = driver.quanta_completed();
        if q >= next_mark && !driver.is_done() {
            sink_len = flush_ring(ctx, opts, sink_len)?;
            save_checkpoint(&mut driver, ctx, sink_len)?;
            checkpoints_written += 1;
            next_mark = next_multiple(q, every);
        }
        if let Some(stop) = opts.stop_at {
            if q >= stop {
                // Simulated SIGKILL: drop everything on the floor. Events
                // still buffered in the ring are lost, exactly as a dead
                // process would lose them.
                return Ok(Some(ResumeSummary {
                    end: ResumeEnd::Stopped { quantum: q },
                    resumed_from,
                    checkpoints_written,
                }));
            }
        }
    }

    // Completion: flush the tail of the trace, then fold the outcome.
    flush_ring(ctx, opts, sink_len)?;
    let outcome = driver.finish();
    Ok(Some(ResumeSummary {
        end: ResumeEnd::Completed(outcome),
        resumed_from,
        checkpoints_written,
    }))
}

/// Smallest multiple of `every` strictly greater than `q`.
fn next_multiple(q: u64, every: u64) -> u64 {
    (q / every + 1) * every
}

/// Apply a checkpoint to a freshly-built driver (coordinator sections plus
/// the ring tracer's counters). `None` leaves the driver partially mutated;
/// the caller discards it.
fn restore<E: DomainExecutor>(
    driver: &mut LoopDriver<E>,
    ck: &Checkpoint,
    ctx: &DriveCtx<'_>,
) -> Option<()> {
    driver.restore_sections(|name| ck.section(name))?;
    match ctx.ring {
        Some(ring) => {
            let mut r = StateReader::new(ck.section("tracer")?);
            let mut ring = ring.lock().expect("invariant: tracer mutex never poisoned");
            ring.load_state(&mut r)?;
            r.finished()
        }
        None => match ck.section("tracer") {
            Some(_) => None,
            None => Some(()),
        },
    }
}

/// Truncate the trace sink back to the checkpoint's recorded offset.
/// A missing or too-short sink is an I/O error surfaced to the caller —
/// the checkpoint recorded bytes that no longer exist, so silently
/// restarting the trace would violate the stitching contract.
fn truncate_sink(opts: &ResumeOptions, offset: u64) -> io::Result<()> {
    let path = opts
        .trace_sink
        .as_ref()
        .expect("truncate_sink called without a sink");
    let f = OpenOptions::new().write(true).open(path)?;
    if f.metadata()?.len() < offset {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "trace sink {} is shorter than the checkpoint's {offset}-byte offset",
                path.display()
            ),
        ));
    }
    f.set_len(offset)
}

/// Drain the ring into the sink (append mode) and return the new durable
/// byte length. A no-op without a sink.
fn flush_ring(
    ctx: &DriveCtx<'_>,
    opts: &ResumeOptions,
    sink_len: Option<u64>,
) -> io::Result<Option<u64>> {
    let Some(ring) = ctx.ring else {
        return Ok(sink_len);
    };
    let path = opts
        .trace_sink
        .as_ref()
        .expect("ring without a sink path");
    let events = ring
        .lock()
        .expect("invariant: tracer mutex never poisoned")
        .drain();
    let mut len = sink_len.expect("sink length tracked from initialization");
    if !events.is_empty() {
        let mut text = String::new();
        for e in &events {
            text.push_str(&jsonl::event_line(e));
            text.push('\n');
        }
        let mut f = OpenOptions::new().append(true).open(path)?;
        f.write_all(text.as_bytes())?;
        f.flush()?;
        len += text.len() as u64;
    }
    Ok(Some(len))
}

/// Snapshot the driver (and the ring's counters) into the store.
fn save_checkpoint<E: DomainExecutor>(
    driver: &mut LoopDriver<E>,
    ctx: &DriveCtx<'_>,
    sink_len: Option<u64>,
) -> io::Result<()> {
    let mut ck = Checkpoint::new(
        ctx.fingerprint,
        driver.quanta_completed(),
        sink_len.unwrap_or(0),
    );
    for (name, payload) in driver.save_sections() {
        ck.add_section(&name, payload);
    }
    if let Some(ring) = ctx.ring {
        let mut w = StateWriter::new();
        ring.lock()
            .expect("invariant: tracer mutex never poisoned")
            .save_state(&mut w);
        ck.add_section("tracer", w.finish());
    }
    ctx.store.save(&ck)
}

/// Total control quanta the configuration will execute. Kill quanta must be
/// strictly below this for a [`ResumeOptions::stop_at`] to land mid-run.
pub fn total_quanta(sys: &SystemConfig, run: &RunConfig) -> u64 {
    let period = run
        .scheme
        .control_period()
        .unwrap_or(crate::coordinator::FIXED_QUANTUM);
    let quantum_ticks = period.ticks(sys.tick).max(1);
    let total_ticks = run.duration.ticks(sys.tick);
    total_ticks.div_ceil(quantum_ticks)
}

/// 32-hex digest of [`crate::cache::encode_outcome`] — a compact identity
/// for "these two runs produced bit-identical results", printable by the
/// soak harness and comparable across processes.
pub fn outcome_digest(out: &RunOutcome) -> String {
    let mut h = Hasher::new();
    h.write_str(&crate::cache::encode_outcome(out));
    h.finish().to_hex()
}

/// Reference oracle: the same configuration run uninterrupted (serial,
/// untraced path goes through the plain coordinator; a traced oracle
/// collects into a ring and exports, matching the stitched sink bytes).
pub fn run_uninterrupted(sys: SystemConfig, run: RunConfig) -> RunOutcome {
    let sim = Simulation::new(sys, run);
    let Simulation {
        sys,
        run,
        domains,
        global_ctl,
        vr,
        sensor,
        policy,
    } = sim;
    let legacy = run.stepper == crate::kernel::StepperPath::Legacy;
    let executor = SerialExecutor { domains, legacy };
    run_loop(sys, run, global_ctl, vr, sensor, policy, executor)
}

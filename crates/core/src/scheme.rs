//! The four control schemes the evaluation compares (§4.6).
//!
//! The paper evaluates HCAPP against itself running at slower control
//! frequencies — "RAPL-like" (100 µs, an aggressive firmware controller) and
//! "software-like" (10 ms, an aggressive software controller) — plus a fixed
//! 0.95 V baseline with no local controllers. Everything except the control
//! period (and, for the baseline, the absence of control) is held equal, so
//! the comparison isolates reaction time.

use hcapp_sim_core::time::SimDuration;
use hcapp_sim_core::units::Volt;

/// A power control scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ControlScheme {
    /// Full HCAPP: hardware-speed decentralized control at 1 µs.
    Hcapp,
    /// The same controller stack at a 100 µs period — an aggressive model of
    /// a centralized firmware controller like RAPL.
    RaplLike,
    /// The same stack at a 10 ms period — an aggressive model of a software
    /// controller.
    SoftwareLike,
    /// No dynamic control: a fixed global voltage (0.95 V in the paper) and
    /// no local controllers.
    FixedVoltage(Volt),
    /// The HCAPP stack at an arbitrary control period — used by the
    /// control-period sweep ablation and by the scaling study's model of a
    /// centralized controller whose aggregation time grows with chiplet
    /// count.
    CustomPeriod(SimDuration),
}

impl ControlScheme {
    /// The paper's fixed-voltage baseline (0.95 V, §4: "the highest
    /// performance without violating the power target").
    pub fn fixed_baseline() -> Self {
        ControlScheme::FixedVoltage(Volt::new(0.95))
    }

    /// The three dynamic schemes, fastest first.
    pub fn dynamic_schemes() -> [ControlScheme; 3] {
        [
            ControlScheme::Hcapp,
            ControlScheme::RaplLike,
            ControlScheme::SoftwareLike,
        ]
    }

    /// All four evaluated schemes (baseline last).
    pub fn all() -> [ControlScheme; 4] {
        [
            ControlScheme::Hcapp,
            ControlScheme::RaplLike,
            ControlScheme::SoftwareLike,
            ControlScheme::fixed_baseline(),
        ]
    }

    /// The global control period, or `None` for the uncontrolled baseline.
    pub fn control_period(&self) -> Option<SimDuration> {
        match self {
            ControlScheme::Hcapp => Some(SimDuration::from_micros(1)),
            ControlScheme::RaplLike => Some(SimDuration::from_micros(100)),
            ControlScheme::SoftwareLike => Some(SimDuration::from_millis(10)),
            ControlScheme::FixedVoltage(_) => None,
            ControlScheme::CustomPeriod(d) => Some(*d),
        }
    }

    /// Whether the scheme runs the local (per-core/SM) controllers. The
    /// fixed baseline runs none (§4).
    pub fn uses_local_controllers(&self) -> bool {
        !matches!(self, ControlScheme::FixedVoltage(_))
    }

    /// Display name as used in the figures.
    pub fn name(&self) -> &'static str {
        match self {
            ControlScheme::Hcapp => "HCAPP",
            ControlScheme::RaplLike => "RAPL-like HCAPP",
            ControlScheme::SoftwareLike => "SW-like HCAPP",
            ControlScheme::FixedVoltage(_) => "Fixed Voltage",
            ControlScheme::CustomPeriod(_) => "Custom-period HCAPP",
        }
    }
}

impl std::fmt::Display for ControlScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlScheme::FixedVoltage(v) => write!(f, "Fixed Voltage ({v})"),
            ControlScheme::CustomPeriod(d) => write!(f, "HCAPP @ {d}"),
            other => f.write_str(other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periods_match_section_4_6() {
        assert_eq!(
            ControlScheme::Hcapp.control_period(),
            Some(SimDuration::from_micros(1))
        );
        assert_eq!(
            ControlScheme::RaplLike.control_period(),
            Some(SimDuration::from_micros(100))
        );
        assert_eq!(
            ControlScheme::SoftwareLike.control_period(),
            Some(SimDuration::from_millis(10))
        );
        assert_eq!(ControlScheme::fixed_baseline().control_period(), None);
    }

    #[test]
    fn baseline_voltage_is_095() {
        if let ControlScheme::FixedVoltage(v) = ControlScheme::fixed_baseline() {
            assert!((v.value() - 0.95).abs() < 1e-12);
        } else {
            panic!("not fixed");
        }
    }

    #[test]
    fn local_controllers_off_for_baseline_only() {
        for s in ControlScheme::dynamic_schemes() {
            assert!(s.uses_local_controllers());
        }
        assert!(!ControlScheme::fixed_baseline().uses_local_controllers());
    }

    #[test]
    fn names_and_display() {
        assert_eq!(ControlScheme::Hcapp.name(), "HCAPP");
        assert_eq!(ControlScheme::RaplLike.name(), "RAPL-like HCAPP");
        let s = format!("{}", ControlScheme::fixed_baseline());
        assert!(s.contains("Fixed Voltage"));
    }

    #[test]
    fn all_contains_four() {
        assert_eq!(ControlScheme::all().len(), 4);
    }
}

//! simsan — the schedule-permutation sanitizer.
//!
//! The static side of the concurrency story is simlint rule L7 (lock
//! discipline over the worker pool's token stream); this module is the
//! dynamic counterpart that makes the same model *executable*: the pooled
//! executor's result must not depend on the order worker replies arrive
//! or on how long batch merges are delayed. The production code guarantees
//! this by scattering replies by domain index and merging in domain order
//! ([`crate::parallel`]); simsan re-runs the executor under adversarially
//! permuted reply schedules and asserts every outcome is **byte-identical**
//! to the serial run — compared through [`crate::cache::encode_outcome`],
//! which spells every f64 as its IEEE-754 bit pattern, so "identical"
//! means identical bits, not approximately-equal floats.
//!
//! Each ordering is derived from a seed via splitmix64, so a failure
//! reproduces from `(seed, workers)` alone — the report carries exactly
//! that.

use crate::cache::encode_outcome;
use crate::coordinator::{RunConfig, Simulation};
use crate::system::SystemConfig;

/// One permuted run that differed from the serial reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Permutation seed whose ordering produced the divergent outcome.
    pub seed: u64,
    /// Worker count the divergent run used.
    pub workers: usize,
}

/// Result of a sanitizer sweep.
#[derive(Debug, Clone)]
pub struct SanitizerReport {
    /// Distinct reply orderings exercised.
    pub orderings: usize,
    /// Worker counts exercised (each seed runs once per count).
    pub worker_counts: Vec<usize>,
    /// Every `(seed, workers)` whose outcome differed from serial.
    pub mismatches: Vec<Mismatch>,
    /// Byte length of the serial reference encoding (a cheap fingerprint
    /// for logs; equality was checked on the full encoding).
    pub reference_len: usize,
}

impl SanitizerReport {
    /// Whether every permuted ordering matched the serial reference.
    pub fn clean(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// The default seed set: `0..n`. Seeds only feed splitmix64, so small
/// consecutive integers still produce unrelated orderings.
pub fn default_seeds(n: usize) -> Vec<u64> {
    (0..n as u64).collect()
}

/// Run the sanitizer: one serial reference run, then one permuted pooled
/// run per `(seed, worker count)`, comparing encoded outcomes bytewise.
pub fn check_permutations(
    sys: &SystemConfig,
    run: &RunConfig,
    worker_counts: &[usize],
    seeds: &[u64],
) -> SanitizerReport {
    let serial = Simulation::new(sys.clone(), run.clone()).run();
    let reference = encode_outcome(&serial);
    let mut mismatches = Vec::new();
    for &workers in worker_counts {
        for &seed in seeds {
            let out = Simulation::new(sys.clone(), run.clone())
                .run_parallel_permuted(workers, seed);
            if encode_outcome(&out) != reference {
                mismatches.push(Mismatch { seed, workers });
            }
        }
    }
    SanitizerReport {
        orderings: seeds.len() * worker_counts.len(),
        worker_counts: worker_counts.to_vec(),
        mismatches,
        reference_len: reference.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limits::PowerLimit;
    use crate::scheme::ControlScheme;
    use hcapp_sim_core::time::SimDuration;
    use hcapp_workloads::combos::combo_suite;

    fn job(seed: u64) -> (SystemConfig, RunConfig) {
        let sys = SystemConfig::paper_system(combo_suite()[2], seed);
        let target = PowerLimit::package_pin().guardbanded_target();
        let run = RunConfig::new(
            SimDuration::from_millis(1),
            ControlScheme::Hcapp,
            target,
        );
        (sys, run)
    }

    #[test]
    fn sixteen_permuted_orderings_match_serial_bytewise() {
        let (sys, run) = job(29);
        let report = check_permutations(&sys, &run, &[3], &default_seeds(16));
        assert_eq!(report.orderings, 16);
        assert!(
            report.clean(),
            "permuted reply orders changed the outcome: {:?}",
            report.mismatches
        );
    }

    #[test]
    fn permutations_hold_across_worker_counts() {
        let (sys, run) = job(31);
        let report = check_permutations(&sys, &run, &[1, 2, 5], &default_seeds(4));
        assert_eq!(report.orderings, 12);
        assert!(report.clean(), "mismatches: {:?}", report.mismatches);
    }

    #[test]
    fn batched_dispatch_survives_permutation() {
        // Multi-quantum batching is the path with the most in-flight state
        // per reply; permuted merges must still be bit-exact.
        let sys = SystemConfig::paper_system(combo_suite()[1], 37);
        let target = PowerLimit::package_pin().guardbanded_target();
        let run = RunConfig::new(
            SimDuration::from_millis(1),
            ControlScheme::fixed_baseline(),
            target,
        )
        .with_batch_quanta(32);
        let report = check_permutations(&sys, &run, &[2], &default_seeds(8));
        assert!(report.clean(), "mismatches: {:?}", report.mismatches);
    }
}

//! The software control interface (§3.2, §5.3, §6).
//!
//! The domain controller exposes a per-domain *priority register* the
//! operating system can write: the incoming global voltage is multiplied by
//! the priority value before domain-specific scaling, so "when a domain is
//! de-prioritized by 10%, the domain voltage controller multiplies the
//! global voltage by 0.9×". The power freed by de-prioritized domains raises
//! the global voltage (the global controller sees spare budget), which the
//! prioritized domain receives in full — that is the entire §5.3 mechanism.
//!
//! Policies:
//! * [`NoPolicy`] — hardware-only HCAPP (priorities stay 1.0).
//! * [`StaticPriorityPolicy`] — the paper's §5.3 proof of concept: one
//!   component prioritized for the whole run by de-prioritizing the others.
//! * [`DynamicBacklogPolicy`] — the §6 future-work extension: periodically
//!   re-prioritize whichever component is making the least relative
//!   progress.

/// Which component a priority targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComponentKind {
    /// The CPU chiplet.
    Cpu,
    /// The GPU chiplet.
    Gpu,
    /// The SHA accelerator chiplet.
    Sha,
    /// A fixed-voltage memory stack (§3.2). Not a priority target — its
    /// domain ignores the global voltage, so it is excluded from
    /// [`ComponentKind::ALL`] (the compute components Eq. 3 covers).
    Memory,
}

impl ComponentKind {
    /// The paper system's three *compute* components — the priority targets
    /// of §5.3 and the factors of Eq. 3.
    pub const ALL: [ComponentKind; 3] = [ComponentKind::Cpu, ComponentKind::Gpu, ComponentKind::Sha];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ComponentKind::Cpu => "CPU",
            ComponentKind::Gpu => "GPU",
            ComponentKind::Sha => "SHA",
            ComponentKind::Memory => "MEM",
        }
    }
}

/// A view of per-domain progress the software controller can read
/// (normalized work rates since the last policy invocation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DomainProgress {
    /// Which component this is.
    pub kind: ComponentKind,
    /// Work completed since the last policy call, normalized to nominal
    /// full-speed progress (1.0 = nominal rate).
    pub relative_rate: f64,
}

/// A software power-control policy: maps progress observations to priority
/// register writes.
pub trait SoftwarePolicy: Send {
    /// Called once per software control interval with the per-domain
    /// progress; writes new priorities (one per domain, same order).
    fn update(&mut self, progress: &[DomainProgress], priorities: &mut [f64]);

    /// How often the policy runs, in global control periods (software acts
    /// much more slowly than the hardware loop).
    fn interval_periods(&self) -> u64 {
        1000
    }

    /// Human-readable policy name for reports.
    fn name(&self) -> &'static str;
}

/// Hardware-only operation: priorities stay at 1.0.
#[derive(Debug, Clone, Default)]
pub struct NoPolicy;

impl SoftwarePolicy for NoPolicy {
    fn update(&mut self, _progress: &[DomainProgress], priorities: &mut [f64]) {
        priorities.fill(1.0);
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

/// §5.3's static priority: the target keeps priority 1.0, every other domain
/// is de-prioritized by a fixed fraction (10% in the paper).
#[derive(Debug, Clone)]
pub struct StaticPriorityPolicy {
    /// The prioritized component.
    pub target: ComponentKind,
    /// Priority applied to the non-target domains (paper: 0.9).
    pub others: f64,
}

impl StaticPriorityPolicy {
    /// The paper's configuration: de-prioritize the others by 10%.
    pub fn paper(target: ComponentKind) -> Self {
        StaticPriorityPolicy {
            target,
            others: 0.9,
        }
    }
}

impl SoftwarePolicy for StaticPriorityPolicy {
    fn update(&mut self, progress: &[DomainProgress], priorities: &mut [f64]) {
        for (i, p) in progress.iter().enumerate() {
            priorities[i] = if p.kind == self.target { 1.0 } else { self.others };
        }
    }

    fn name(&self) -> &'static str {
        "static-priority"
    }
}

/// §6 future-work extension: periodically boost whichever domain has made
/// the least relative progress (proactive re-balancing).
#[derive(Debug, Clone)]
pub struct DynamicBacklogPolicy {
    /// De-prioritization applied to the domains not being boosted.
    pub others: f64,
    /// Dead band: only re-prioritize when the slowest domain's rate is below
    /// `dead_band` × the fastest domain's rate.
    pub dead_band: f64,
}

impl Default for DynamicBacklogPolicy {
    fn default() -> Self {
        DynamicBacklogPolicy {
            others: 0.92,
            dead_band: 0.8,
        }
    }
}

impl SoftwarePolicy for DynamicBacklogPolicy {
    fn update(&mut self, progress: &[DomainProgress], priorities: &mut [f64]) {
        let Some((slowest, s)) = progress
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.relative_rate.total_cmp(&b.1.relative_rate))
        else {
            return;
        };
        let fastest = progress
            .iter()
            .map(|p| p.relative_rate)
            .fold(f64::NEG_INFINITY, f64::max);
        if s.relative_rate < self.dead_band * fastest {
            for (i, p) in priorities.iter_mut().enumerate() {
                *p = if i == slowest { 1.0 } else { self.others };
            }
        } else {
            priorities.fill(1.0);
        }
    }

    fn name(&self) -> &'static str {
        "dynamic-backlog"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn progress(rates: [f64; 3]) -> Vec<DomainProgress> {
        ComponentKind::ALL
            .iter()
            .zip(rates)
            .map(|(&kind, relative_rate)| DomainProgress {
                kind,
                relative_rate,
            })
            .collect()
    }

    #[test]
    fn no_policy_keeps_unity() {
        let mut p = [0.5, 0.5, 0.5];
        NoPolicy.update(&progress([1.0, 1.0, 1.0]), &mut p);
        assert_eq!(p, [1.0, 1.0, 1.0]);
    }

    #[test]
    fn static_priority_deprioritizes_others() {
        let mut policy = StaticPriorityPolicy::paper(ComponentKind::Gpu);
        let mut p = [1.0, 1.0, 1.0];
        policy.update(&progress([1.0, 1.0, 1.0]), &mut p);
        assert_eq!(p, [0.9, 1.0, 0.9]);
    }

    #[test]
    fn dynamic_policy_boosts_laggard() {
        let mut policy = DynamicBacklogPolicy::default();
        let mut p = [1.0, 1.0, 1.0];
        policy.update(&progress([1.0, 0.4, 0.9]), &mut p);
        assert_eq!(p[1], 1.0);
        assert!(p[0] < 1.0 && p[2] < 1.0);
    }

    #[test]
    fn dynamic_policy_idles_in_dead_band() {
        let mut policy = DynamicBacklogPolicy::default();
        let mut p = [0.5, 0.5, 0.5];
        policy.update(&progress([1.0, 0.95, 0.9]), &mut p);
        assert_eq!(p, [1.0, 1.0, 1.0]);
    }

    #[test]
    fn component_names() {
        assert_eq!(ComponentKind::Cpu.name(), "CPU");
        assert_eq!(ComponentKind::ALL.len(), 3);
    }
}

//! Package assembly: domains, chiplets and their controllers.
//!
//! A package is a list of [`DomainSpec`]s; the paper's target system
//! ([`SystemConfig::paper_system`]) is CPU + GPU + SHA, but nothing limits
//! the domain count — the scaling study instantiates dozens of chiplets to
//! demonstrate HCAPP's decentralized scaling claim.
//!
//! The runtime [`Domain`] bundles one chiplet simulator with its level-2
//! domain controller, its level-3 local controller, and its branch of the
//! supply network. [`Domain::run_quantum`] advances the domain through one
//! control quantum against a precomputed global-voltage schedule; because
//! the global voltage is the *only* coupling between domains inside a
//! quantum, the serial and parallel coordinators share this code and produce
//! bit-identical results.

use hcapp_accel_sim::{ShaAccelerator, ShaConfig};
use hcapp_power_model::MemoryStack;
use hcapp_cpu_sim::{CpuChiplet, CpuConfig};
use hcapp_gpu_sim::{GpuChiplet, GpuConfig};
use hcapp_faults::CtlFault;
use hcapp_pdn::{BroadcastLink, RippleInjector, RippleSpec, SupplyNetwork};
use hcapp_sim_core::time::SimDuration;
use hcapp_sim_core::units::{Volt, Watt};
use hcapp_telemetry::TraceEvent;
use hcapp_workloads::combos::Combo;
use hcapp_workloads::program::WorkloadSource;
use hcapp_workloads::spec::BenchmarkSpec;

use crate::controller::domain::DomainController;
use crate::controller::local::{
    AdversarialController, CpuIpcStaticController, GpuIpcDynamicController, LocalController,
    PassThroughController,
};
use crate::controller::thermal_guard::{ThermalConfig, ThermalGuard};
use crate::coordinator::QuantumCtl;
use crate::pid::PidGains;
use crate::software::ComponentKind;

/// System-construction errors. Constructors that take user-supplied
/// shape parameters (scaled chiplet counts) return these instead of
/// building a package that [`SystemConfig::validate`] would panic on
/// when the simulation starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// The requested package has no domains at all.
    EmptyPackage,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::EmptyPackage => {
                write!(f, "scaled system needs at least one chiplet (cpu + gpu + sha counts are all zero)")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Which local controller an accelerator domain runs (§3.3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccelLocalKind {
    /// The default pass-through with voltage protection.
    PassThrough,
    /// The adversarial always-max design.
    Adversarial,
}

/// Specification of one domain (chiplet + workload).
#[derive(Debug, Clone)]
pub enum DomainSpec {
    /// A CPU chiplet running a PARSEC-class workload (generated or a
    /// recorded trace).
    Cpu {
        /// Chiplet configuration.
        config: CpuConfig,
        /// Workload source.
        workload: WorkloadSource,
    },
    /// A GPU chiplet running a Rodinia-class workload (generated or a
    /// recorded trace).
    Gpu {
        /// Chiplet configuration.
        config: GpuConfig,
        /// Workload source.
        workload: WorkloadSource,
    },
    /// The SHA accelerator with its modelled stream.
    Sha {
        /// Accelerator configuration.
        config: ShaConfig,
        /// Local controller variant.
        local: AccelLocalKind,
    },
    /// A fixed-voltage memory stack (§3.2): its domain controller runs in
    /// fixed mode and ignores the global voltage; its traffic follows the
    /// given pattern.
    Memory {
        /// The stack's power model.
        stack: MemoryStack,
        /// Traffic utilization pattern (the activity channel is used as the
        /// traffic level).
        traffic: BenchmarkSpec,
    },
}

impl DomainSpec {
    /// The component kind of this spec.
    pub fn kind(&self) -> ComponentKind {
        match self {
            DomainSpec::Cpu { .. } => ComponentKind::Cpu,
            DomainSpec::Gpu { .. } => ComponentKind::Gpu,
            DomainSpec::Sha { .. } => ComponentKind::Sha,
            DomainSpec::Memory { .. } => ComponentKind::Memory,
        }
    }
}

/// Full system configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// The domains on the interposer.
    pub domains: Vec<DomainSpec>,
    /// Run seed (workload jitter, per-unit decorrelation).
    pub seed: u64,
    /// Simulation tick (default 100 ns — finer than every delay in the
    /// Table 1 budget).
    pub tick: SimDuration,
    /// Global controller PID gains (Eq. 2).
    pub pid: PidGains,
    /// Initial global VR output voltage.
    pub v_init: Volt,
    /// GPU domain-voltage target for the dynamic-IPC local controller.
    pub gpu_domain_target: Volt,
    /// Power sensor pipeline delay in ticks (Table 1 sensing row).
    pub sensor_delay_ticks: usize,
    /// Power sensor resolution in watts (0 = ideal).
    pub sensor_resolution: f64,
    /// Supply-network propagation delay in ticks (Table 1 PSN row).
    pub network_delay_ticks: usize,
    /// Supply-network branch resistance in ohms (0 disables IR drop).
    pub network_resistance: f64,
    /// GPU/SHA domain scale relative to the global voltage (§4.3/§4.4:
    /// "scales the global voltage by 75%").
    pub low_voltage_domain_scale: f64,
    /// Run the level-3 local controllers (true for every scheme in the
    /// paper except the fixed baseline; the local-controller ablation turns
    /// them off while keeping the global loop).
    pub local_controllers_enabled: bool,
    /// Optional supply ripple / droop-glitch injection per branch (failure
    /// injection; `None` = clean rail, the evaluation default).
    pub ripple: Option<RippleSpec>,
    /// Optional per-domain thermal guard (§3.3 extension). `None` matches
    /// the paper's assumption that the power limit sits below the TDP.
    pub thermal: Option<ThermalConfig>,
}

impl SystemConfig {
    /// The paper's target system: one CPU chiplet, one GPU chiplet, one SHA
    /// accelerator, running `combo` from Table 3.
    pub fn paper_system(combo: Combo, seed: u64) -> Self {
        SystemConfig {
            domains: vec![
                DomainSpec::Cpu {
                    config: CpuConfig::default(),
                    workload: combo.cpu.spec().into(),
                },
                DomainSpec::Gpu {
                    config: GpuConfig::default(),
                    workload: combo.gpu.spec().into(),
                },
                DomainSpec::Sha {
                    config: ShaConfig::default(),
                    local: AccelLocalKind::PassThrough,
                },
            ],
            seed,
            tick: SimDuration::from_nanos(100),
            pid: PidGains::paper_default(),
            v_init: Volt::new(0.95),
            gpu_domain_target: Volt::new(0.72),
            sensor_delay_ticks: 1,
            sensor_resolution: 0.1,
            network_delay_ticks: 1,
            network_resistance: 0.0,
            low_voltage_domain_scale: 0.75,
            local_controllers_enabled: true,
            ripple: None,
            thermal: None,
        }
    }

    /// The paper system plus a fixed-voltage HBM stack — exercises §3.2's
    /// constant-voltage domains end to end. The stack's performance is
    /// scheme-independent by construction, so Eq. 3 comparisons should use
    /// the compute components only ([`ComponentKind::ALL`]).
    pub fn paper_system_with_memory(combo: Combo, seed: u64) -> Self {
        use hcapp_workloads::spec::{DurRange, PhasePattern};
        let mut sys = Self::paper_system(combo, seed);
        sys.domains.push(DomainSpec::Memory {
            stack: MemoryStack::hbm_default(),
            traffic: BenchmarkSpec {
                name: "memory-traffic",
                pattern: PhasePattern::Steady {
                    activity: 0.5,
                    jitter: 0.2,
                    dur: DurRange::micros(500.0, 2_000.0),
                },
                mem_intensity: 0.0,
                mem_jitter: 0.0,
            },
        });
        sys
    }

    /// A many-chiplet system for the scaling study: `n_cpu` CPU and `n_gpu`
    /// GPU chiplets plus `n_sha` accelerators, cycling through the combo's
    /// workloads.
    ///
    /// Rejects an all-zero chiplet count here, at construction, instead of
    /// letting the empty package trip [`SystemConfig::validate`]'s panic
    /// inside `Simulation::new` — scaled counts are usually user input
    /// (CLI flags, bench knobs), so they fail fast with a value error.
    pub fn scaled_system(
        combo: Combo,
        n_cpu: usize,
        n_gpu: usize,
        n_sha: usize,
        seed: u64,
    ) -> Result<Self, ConfigError> {
        if n_cpu + n_gpu + n_sha == 0 {
            return Err(ConfigError::EmptyPackage);
        }
        let mut base = Self::paper_system(combo, seed);
        let mut domains = Vec::with_capacity(n_cpu + n_gpu + n_sha);
        for _ in 0..n_cpu {
            domains.push(DomainSpec::Cpu {
                config: CpuConfig::default(),
                workload: combo.cpu.spec().into(),
            });
        }
        for _ in 0..n_gpu {
            domains.push(DomainSpec::Gpu {
                config: GpuConfig::default(),
                workload: combo.gpu.spec().into(),
            });
        }
        for _ in 0..n_sha {
            domains.push(DomainSpec::Sha {
                config: ShaConfig::default(),
                local: AccelLocalKind::PassThrough,
            });
        }
        base.domains = domains;
        Ok(base)
    }

    /// Replace the accelerator's local controller with the adversarial
    /// variant (§3.3.3 experiment).
    pub fn with_adversarial_accel(mut self) -> Self {
        for d in &mut self.domains {
            if let DomainSpec::Sha { local, .. } = d {
                *local = AccelLocalKind::Adversarial;
            }
        }
        self
    }

    /// Validate invariants.
    ///
    /// # Panics
    /// Panics on an empty domain list or bad tick.
    pub fn validate(&self) {
        assert!(!self.domains.is_empty(), "system needs at least one domain");
        assert!(!self.tick.is_zero(), "zero tick");
        self.pid.validate();
        assert!(self.low_voltage_domain_scale > 0.0);
    }

    /// Theoretical peak package power at global voltage `v` (for
    /// calibration checks and reports).
    pub fn peak_power_at(&self, v: Volt) -> Watt {
        let mut total = Watt::ZERO;
        for d in &self.domains {
            total += match d {
                DomainSpec::Cpu { config, .. } => config.peak_power_at(
                    v.clamp(config.v_min, config.v_max),
                ),
                DomainSpec::Gpu { config, .. } => {
                    let vd = Volt::new(v.value() * self.low_voltage_domain_scale);
                    config.peak_power_at(vd.clamp(config.v_min, config.v_max))
                }
                DomainSpec::Sha { config, .. } => {
                    let vd = Volt::new(v.value() * self.low_voltage_domain_scale);
                    Watt::new(config.busy_power_w(vd))
                }
                DomainSpec::Memory { stack, .. } => stack.static_power + stack.peak_dynamic,
            };
        }
        total
    }
}

/// One chiplet simulator behind a uniform stepping interface.
#[derive(Debug, Clone)]
pub enum ChipletSim {
    /// CPU chiplet.
    Cpu(CpuChiplet),
    /// GPU chiplet.
    Gpu(GpuChiplet),
    /// SHA accelerator.
    Sha(ShaAccelerator),
    /// Fixed-voltage memory stack with its traffic pattern.
    Memory(MemoryStack, hcapp_workloads::cursor::PhaseCursor),
}

impl ChipletSim {
    /// Number of locally-controllable units.
    pub fn units(&self) -> usize {
        match self {
            ChipletSim::Cpu(c) => c.units(),
            ChipletSim::Gpu(g) => g.units(),
            ChipletSim::Sha(_) | ChipletSim::Memory(..) => 1,
        }
    }

    /// Advance one tick with per-unit voltages; returns chiplet power.
    pub fn step(&mut self, unit_voltages: &[Volt], dt: SimDuration) -> Watt {
        match self {
            ChipletSim::Cpu(c) => c.step(unit_voltages, dt),
            ChipletSim::Gpu(g) => g.step(unit_voltages, dt),
            ChipletSim::Sha(s) => s.step(unit_voltages[0], dt),
            ChipletSim::Memory(m, traffic) => {
                // The traffic pattern advances in wall-clock time (memory
                // demand does not speed up with the compute voltage).
                traffic.advance(dt.as_nanos() as f64);
                m.set_traffic(traffic.sample().activity);
                m.step(dt)
            }
        }
    }

    /// Advance one tick through a borrowed [`StepFrame`] — the
    /// quantum-stepper kernel's dispatch point. Adds this chiplet's power
    /// to `frame.power_acc`; bit-identical to [`ChipletSim::step`] (each
    /// chiplet's `step_into` is pinned against its `step` by a
    /// `step_into_matches_step` unit test, and the whole path by the
    /// golden-digest corpus).
    ///
    /// [`StepFrame`]: hcapp_sim_core::frame::StepFrame
    pub fn step_into(&mut self, frame: &mut hcapp_sim_core::frame::StepFrame<'_>) {
        match self {
            ChipletSim::Cpu(c) => c.step_into(frame),
            ChipletSim::Gpu(g) => g.step_into(frame),
            ChipletSim::Sha(s) => s.step_into(frame),
            ChipletSim::Memory(m, traffic) => {
                // Same ordering as `step`: traffic advances in wall-clock
                // time, then the stack integrates the sampled activity.
                traffic.advance(frame.dt.as_nanos() as f64);
                m.set_traffic(traffic.sample().activity);
                *frame.power_acc += m.step(frame.dt).value();
            }
        }
    }

    /// Per-unit IPC fractions from the last step (empty-slice semantics for
    /// the accelerator: pass-through controllers ignore it).
    pub fn ipc_fractions(&self) -> &[f64] {
        match self {
            ChipletSim::Cpu(c) => c.ipc_fractions(),
            ChipletSim::Gpu(g) => g.ipc_fractions(),
            ChipletSim::Sha(_) | ChipletSim::Memory(..) => &[1.0],
        }
    }

    /// Work completed so far (nominal ns for CPU/GPU, gigabits for SHA).
    pub fn work_done(&self) -> f64 {
        match self {
            ChipletSim::Cpu(c) => c.work_done(),
            ChipletSim::Gpu(g) => g.work_done(),
            ChipletSim::Sha(s) => s.work_done(),
            ChipletSim::Memory(m, _) => m.work_done(),
        }
    }
}

/// A runtime domain: chiplet + controllers + supply branch.
#[derive(Debug)]
pub struct Domain {
    /// Position in the system's domain list (stable id for telemetry).
    pub index: usize,
    /// Component kind (for reports and software policies).
    pub kind: ComponentKind,
    /// Level-2 controller.
    pub ctl: DomainController,
    /// Level-3 controller.
    pub local: Box<dyn LocalController>,
    /// The chiplet simulator.
    pub sim: ChipletSim,
    /// This domain's branch of the supply network.
    pub network: SupplyNetwork,
    /// Receiver end of the global-voltage broadcast (fault-aware: models
    /// delayed and lost updates, holds the last good value on loss).
    pub link: BroadcastLink,
    /// Nominal work rate (work units per ns at the nominal operating point)
    /// — normalizes progress for software policies.
    pub nominal_rate: f64,
    /// Optional ripple/glitch injector for this branch.
    pub ripple: Option<RippleInjector>,
    /// Optional thermal guard (§3.3 extension).
    pub thermal: Option<ThermalGuard>,
    /// Workhorse buffer of per-unit voltages (reused every tick).
    unit_voltages: Vec<Volt>,
    /// Chiplet power from the previous tick (IR-drop input).
    pub last_power: Watt,
    /// Last delivered (post-network) global voltage seen by this domain.
    pub last_delivered: Volt,
}

impl Domain {
    /// Build the runtime domain for a spec.
    pub fn build(spec: &DomainSpec, cfg: &SystemConfig, index: usize) -> Domain {
        // Stream ids: give each domain a wide id band so unit streams never
        // collide across domains.
        let stream_base = 1_000 * (index as u64 + 1);
        let (kind, ctl, local, sim, nominal_rate): (
            ComponentKind,
            DomainController,
            Box<dyn LocalController>,
            ChipletSim,
            f64,
        ) = match spec {
            DomainSpec::Cpu { config, workload } => {
                let chiplet =
                    CpuChiplet::new(config.clone(), workload.clone(), cfg.seed, stream_base);
                let local: Box<dyn LocalController> = if cfg.local_controllers_enabled {
                    Box::new(CpuIpcStaticController::new(chiplet.units()))
                } else {
                    Box::new(AdversarialController::new())
                };
                (
                    ComponentKind::Cpu,
                    DomainController::scaled(1.0, config.v_min, config.v_max),
                    local,
                    ChipletSim::Cpu(chiplet),
                    1.0,
                )
            }
            DomainSpec::Gpu { config, workload } => {
                let chiplet =
                    GpuChiplet::new(config.clone(), workload.clone(), cfg.seed, stream_base);
                let local: Box<dyn LocalController> = if cfg.local_controllers_enabled {
                    Box::new(GpuIpcDynamicController::new(
                        chiplet.units(),
                        cfg.gpu_domain_target,
                    ))
                } else {
                    Box::new(AdversarialController::new())
                };
                (
                    ComponentKind::Gpu,
                    DomainController::scaled(
                        cfg.low_voltage_domain_scale,
                        config.v_min,
                        config.v_max,
                    ),
                    local,
                    ChipletSim::Gpu(chiplet),
                    1.0,
                )
            }
            DomainSpec::Memory { stack, traffic } => {
                let cursor =
                    hcapp_workloads::cursor::PhaseCursor::new(*traffic, cfg.seed, stream_base);
                let rate = stack.peak_bandwidth * traffic.mean_activity() * 1e-9;
                (
                    ComponentKind::Memory,
                    DomainController::fixed(stack.voltage),
                    Box::new(PassThroughController::new()) as Box<dyn LocalController>,
                    ChipletSim::Memory(stack.clone(), cursor),
                    rate,
                )
            }
            DomainSpec::Sha { config, local } => {
                let accel = ShaAccelerator::new(config.clone());
                let nominal_v = Volt::new(cfg.v_init.value() * cfg.low_voltage_domain_scale);
                let rate = config.throughput_gbps(nominal_v) * 1e-9; // gbits per ns
                let local: Box<dyn LocalController> = match local {
                    AccelLocalKind::PassThrough => Box::new(PassThroughController::new()),
                    AccelLocalKind::Adversarial => Box::new(AdversarialController::new()),
                };
                (
                    ComponentKind::Sha,
                    DomainController::scaled(
                        cfg.low_voltage_domain_scale,
                        config.v_min,
                        config.v_max,
                    ),
                    local,
                    ChipletSim::Sha(accel),
                    rate,
                )
            }
        };
        let units = sim.units();
        Domain {
            index,
            kind,
            ctl,
            local,
            sim,
            network: SupplyNetwork::new(1, cfg.network_delay_ticks, cfg.network_resistance),
            link: BroadcastLink::new(),
            nominal_rate,
            ripple: cfg
                .ripple
                .map(|spec| RippleInjector::new(spec, cfg.seed, 500_000 + index as u64)),
            thermal: cfg.thermal.map(ThermalGuard::new),
            unit_voltages: vec![Volt::ZERO; units],
            last_power: Watt::ZERO,
            last_delivered: cfg.v_init,
        }
    }

    /// Run one control quantum under the coordinator's command `ctl`.
    ///
    /// `v_global` holds the global VR output for each tick of the quantum
    /// (precomputed by the coordinator). If `update_local` is set, the local
    /// controller is updated once at the quantum boundary (from the IPC
    /// fractions of the previous quantum, matching the paper's control
    /// ordering). Per-tick chiplet powers are *added into* `power_acc`
    /// (which the coordinators pre-zero or share across domains).
    ///
    /// `ctl` carries the priority write, the degradation throttle and any
    /// active faults: a `DomainStuck` fault makes the priority register
    /// ignore the write, a `LocalSilent` fault skips the level-3 update
    /// (the telemetry events still fire — an observer sees the *stale*
    /// decision a silent controller keeps applying), and a link fault
    /// perturbs the broadcast the domain receives. The returned heartbeat
    /// is `false` exactly when a controller fault was active — the
    /// observable "did the domain accept commands" signal the coordinator's
    /// watchdogs consume.
    ///
    /// When `events` is `Some`, the boundary-time level-2/level-3 control
    /// observations (`DomainScale`, `LocalDecision`) are appended to it —
    /// the coordinators then merge per-domain buffers in domain order so
    /// serial and parallel traces are identical.
    #[allow(clippy::too_many_arguments)]
    pub fn run_quantum(
        &mut self,
        t0: hcapp_sim_core::time::SimTime,
        v_global: &[f64],
        update_local: bool,
        ctl: &QuantumCtl,
        tick: SimDuration,
        power_acc: &mut [f64],
        events: Option<&mut Vec<TraceEvent>>,
    ) -> bool {
        debug_assert_eq!(v_global.len(), power_acc.len());
        let thermal_derate = self.quantum_boundary(t0, v_global.len(), update_local, ctl, tick, events);
        for i in 0..v_global.len() {
            let vg = self.link.receive(v_global, i, ctl.link_fault);
            let mut delivered = self.network.deliver(0, Volt::new(vg), self.last_power);
            if let Some(injector) = self.ripple.as_mut() {
                delivered = injector.perturb(delivered, t0 + tick * i as u64);
            }
            self.last_delivered = delivered;
            // The throttle multiply is a bitwise identity at 1.0, so clean
            // runs are unperturbed by the degradation layer.
            let v_dom = Volt::new(
                self.ctl.domain_voltage(delivered).value() * thermal_derate * ctl.throttle,
            );
            let ratios = self.local.ratios();
            if ratios.len() == 1 {
                let v = Volt::new(v_dom.value() * ratios[0]);
                self.unit_voltages.fill(v);
            } else {
                for (uv, &r) in self.unit_voltages.iter_mut().zip(ratios) {
                    *uv = Volt::new(v_dom.value() * r);
                }
            }
            // The kernel path: the chiplet adds its tick power into a fresh
            // accumulator (`0.0 + p` is bitwise `p` for the non-negative
            // powers the models produce), so the slot update below is
            // byte-identical to the legacy `power_acc[i] += p.value()`.
            let mut p = 0.0f64;
            let mut frame =
                hcapp_sim_core::frame::StepFrame::new(&self.unit_voltages, tick, &mut p);
            self.sim.step_into(&mut frame);
            self.last_power = Watt::new(p);
            power_acc[i] += p;
        }
        ctl.ctl_fault.is_none()
    }

    /// [`Domain::run_quantum`] on the pre-kernel reference path: identical
    /// boundary control flow, but every tick dispatches through
    /// [`ChipletSim::step`] (the unmemoized per-chiplet `step` methods).
    /// The scaling bench's legacy shim and the stepper-equivalence property
    /// drive this to prove the kernel byte-identical; it is not used by
    /// production runs.
    #[allow(clippy::too_many_arguments)]
    pub fn run_quantum_legacy(
        &mut self,
        t0: hcapp_sim_core::time::SimTime,
        v_global: &[f64],
        update_local: bool,
        ctl: &QuantumCtl,
        tick: SimDuration,
        power_acc: &mut [f64],
        events: Option<&mut Vec<TraceEvent>>,
    ) -> bool {
        debug_assert_eq!(v_global.len(), power_acc.len());
        let thermal_derate = self.quantum_boundary(t0, v_global.len(), update_local, ctl, tick, events);
        for i in 0..v_global.len() {
            let vg = self.link.receive(v_global, i, ctl.link_fault);
            let mut delivered = self.network.deliver(0, Volt::new(vg), self.last_power);
            if let Some(injector) = self.ripple.as_mut() {
                delivered = injector.perturb(delivered, t0 + tick * i as u64);
            }
            self.last_delivered = delivered;
            let v_dom = Volt::new(
                self.ctl.domain_voltage(delivered).value() * thermal_derate * ctl.throttle,
            );
            let ratios = self.local.ratios();
            if ratios.len() == 1 {
                let v = Volt::new(v_dom.value() * ratios[0]);
                self.unit_voltages.fill(v);
            } else {
                for (uv, &r) in self.unit_voltages.iter_mut().zip(ratios) {
                    *uv = Volt::new(v_dom.value() * r);
                }
            }
            let p = self.sim.step(&self.unit_voltages, tick);
            self.last_power = p;
            power_acc[i] += p.value();
        }
        ctl.ctl_fault.is_none()
    }

    /// The quantum-boundary control work shared by both stepper paths:
    /// priority write, optional level-3 update (with its telemetry
    /// observations), and the thermal-guard integration. Returns the
    /// thermal derate factor for the quantum's tick loop.
    fn quantum_boundary(
        &mut self,
        t0: hcapp_sim_core::time::SimTime,
        quantum_ticks: usize,
        update_local: bool,
        ctl: &QuantumCtl,
        tick: SimDuration,
        events: Option<&mut Vec<TraceEvent>>,
    ) -> f64 {
        if ctl.ctl_fault != Some(CtlFault::DomainStuck) {
            self.ctl.set_priority(ctl.priority);
        }
        if update_local {
            let v_dom = self.ctl.domain_voltage(self.last_delivered);
            let pre_mean_ipc = if events.is_some() {
                mean(self.sim.ipc_fractions())
            } else {
                0.0
            };
            if ctl.ctl_fault != Some(CtlFault::LocalSilent) {
                self.local.update(self.sim.ipc_fractions(), v_dom);
            }
            if let Some(buf) = events {
                let delivered = self.last_delivered;
                let normalized = if delivered.value() > 0.0 {
                    v_dom.value() / delivered.value()
                } else {
                    f64::NAN
                };
                buf.push(TraceEvent::DomainScale {
                    t: t0,
                    domain: self.index as u32,
                    kind: self.kind.name(),
                    v_domain: v_dom,
                    normalized_v: normalized,
                    priority: self.ctl.priority(),
                });
                let (up, down) = self
                    .local
                    .decision_thresholds()
                    .unwrap_or((f64::NAN, f64::NAN));
                buf.push(TraceEvent::LocalDecision {
                    t: t0,
                    domain: self.index as u32,
                    controller: self.local.name(),
                    mean_ipc: pre_mean_ipc,
                    up_threshold: up,
                    down_threshold: down,
                    mean_ratio: mean(self.local.ratios()),
                });
            }
        }
        // §3.3 thermal extension: the guard integrates last quantum's power
        // and derates this quantum's domain voltage while over-temperature.
        match self.thermal.as_mut() {
            Some(guard) => {
                let quantum = tick * quantum_ticks as u64;
                guard.update(self.last_power, quantum)
            }
            None => 1.0,
        }
    }
}

/// Arithmetic mean of a slice (NaN for an empty slice, which telemetry
/// serializes as null).
fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

impl hcapp_sim_core::state::Snapshot for ChipletSim {
    fn save_state(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        match self {
            ChipletSim::Cpu(c) => c.save_state(w),
            ChipletSim::Gpu(g) => g.save_state(w),
            ChipletSim::Sha(s) => s.save_state(w),
            ChipletSim::Memory(m, traffic) => {
                m.save_state(w);
                traffic.save_state(w);
            }
        }
    }

    fn load_state(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        match self {
            ChipletSim::Cpu(c) => c.load_state(r),
            ChipletSim::Gpu(g) => g.load_state(r),
            ChipletSim::Sha(s) => s.load_state(r),
            ChipletSim::Memory(m, traffic) => {
                m.load_state(r)?;
                traffic.load_state(r)
            }
        }
    }
}

impl hcapp_sim_core::state::Snapshot for Domain {
    /// Everything `run_quantum` mutates, in declaration order. Deliberately
    /// *not* saved: `index`/`kind`/`nominal_rate` (configuration) and
    /// `unit_voltages` (a scratch buffer fully overwritten every tick
    /// before it is read).
    fn save_state(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        self.ctl.save_state(w);
        self.local.save_state(w);
        self.sim.save_state(w);
        self.network.save_state(w);
        self.link.save_state(w);
        w.bool("domain.ripple", self.ripple.is_some());
        if let Some(injector) = self.ripple.as_ref() {
            injector.save_state(w);
        }
        w.bool("domain.thermal", self.thermal.is_some());
        if let Some(guard) = self.thermal.as_ref() {
            guard.save_state(w);
        }
        w.f64("domain.last_power", self.last_power.value());
        w.f64("domain.last_delivered", self.last_delivered.value());
    }

    fn load_state(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        self.ctl.load_state(r)?;
        self.local.load_state(r)?;
        self.sim.load_state(r)?;
        self.network.load_state(r)?;
        self.link.load_state(r)?;
        // Optional-part presence is fixed by the system config; a mismatch
        // means the checkpoint belongs to a different configuration.
        if r.bool("domain.ripple")? != self.ripple.is_some() {
            return None;
        }
        if let Some(injector) = self.ripple.as_mut() {
            injector.load_state(r)?;
        }
        if r.bool("domain.thermal")? != self.thermal.is_some() {
            return None;
        }
        if let Some(guard) = self.thermal.as_mut() {
            guard.load_state(r)?;
        }
        self.last_power = Watt::new(r.f64("domain.last_power")?);
        self.last_delivered = Volt::new(r.f64("domain.last_delivered")?);
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_workloads::combos::combo_suite;

    fn cfg() -> SystemConfig {
        SystemConfig::paper_system(combo_suite()[3], 7) // Hi-Hi
    }

    #[test]
    fn paper_system_shape() {
        let c = cfg();
        c.validate();
        assert_eq!(c.domains.len(), 3);
        assert_eq!(c.domains[0].kind(), ComponentKind::Cpu);
        assert_eq!(c.domains[1].kind(), ComponentKind::Gpu);
        assert_eq!(c.domains[2].kind(), ComponentKind::Sha);
    }

    #[test]
    fn peak_power_exceeds_budget() {
        // The whole point of power capping: the package can physically draw
        // more than the 100 W budget.
        let c = cfg();
        let peak = c.peak_power_at(Volt::new(1.0)).value();
        assert!(peak > 100.0, "peak {peak} W should exceed the budget");
        // …but not absurdly more (calibration sanity).
        assert!(peak < 200.0, "peak {peak} W implausibly high");
    }

    #[test]
    fn domains_build_with_expected_units() {
        let c = cfg();
        let d0 = Domain::build(&c.domains[0], &c, 0);
        let d1 = Domain::build(&c.domains[1], &c, 1);
        let d2 = Domain::build(&c.domains[2], &c, 2);
        assert_eq!(d0.sim.units(), 8);
        assert_eq!(d1.sim.units(), 15);
        assert_eq!(d2.sim.units(), 1);
        assert!(d2.nominal_rate > 0.0);
    }

    #[test]
    fn run_quantum_accumulates_power() {
        let c = cfg();
        let mut d = Domain::build(&c.domains[0], &c, 0);
        let v_global = vec![0.95; 10];
        let mut acc = vec![0.0; 10];
        let ok = d.run_quantum(
            hcapp_sim_core::time::SimTime::ZERO,
            &v_global,
            true,
            &QuantumCtl::clean(1.0),
            c.tick,
            &mut acc,
            None,
        );
        assert!(ok, "fault-free quantum must report a heartbeat");
        assert!(acc.iter().all(|&p| p > 0.0));
        assert!(d.sim.work_done() > 0.0);
    }

    #[test]
    fn quantum_splitting_is_equivalent() {
        // One 20-tick quantum == two 10-tick quanta (no local updates).
        let c = cfg();
        let mut whole = Domain::build(&c.domains[1], &c, 1);
        let mut split = Domain::build(&c.domains[1], &c, 1);
        let v = vec![0.92; 20];
        let mut acc_whole = vec![0.0; 20];
        let clean = QuantumCtl::clean(1.0);
        whole.run_quantum(hcapp_sim_core::time::SimTime::ZERO, &v, false, &clean, c.tick, &mut acc_whole, None);
        let mut acc_a = vec![0.0; 10];
        let mut acc_b = vec![0.0; 10];
        split.run_quantum(hcapp_sim_core::time::SimTime::ZERO, &v[..10], false, &clean, c.tick, &mut acc_a, None);
        split.run_quantum(hcapp_sim_core::time::SimTime::from_nanos(1_000), &v[10..], false, &clean, c.tick, &mut acc_b, None);
        let rejoined: Vec<f64> = acc_a.into_iter().chain(acc_b).collect();
        assert_eq!(acc_whole, rejoined);
        assert_eq!(whole.sim.work_done(), split.sim.work_done());
    }

    #[test]
    fn scaled_system_counts() {
        let c = SystemConfig::scaled_system(combo_suite()[0], 4, 3, 2, 1).unwrap();
        assert_eq!(c.domains.len(), 9);
        c.validate();
    }

    #[test]
    fn scaled_system_rejects_zero_domains() {
        let e = SystemConfig::scaled_system(combo_suite()[0], 0, 0, 0, 1).unwrap_err();
        assert_eq!(e, crate::system::ConfigError::EmptyPackage);
        assert!(e.to_string().contains("at least one chiplet"));
        // Any single nonzero count is a valid (if degenerate) package.
        for (nc, ng, ns) in [(1, 0, 0), (0, 1, 0), (0, 0, 1)] {
            let c = SystemConfig::scaled_system(combo_suite()[0], nc, ng, ns, 1).unwrap();
            assert_eq!(c.domains.len(), 1);
            c.validate();
        }
    }

    #[test]
    fn adversarial_toggle() {
        let c = cfg().with_adversarial_accel();
        let d = Domain::build(&c.domains[2], &c, 2);
        assert_eq!(d.local.name(), "adversarial");
    }
}

#[cfg(test)]
mod memory_tests {
    use super::*;
    use crate::coordinator::{RunConfig, Simulation};
    use crate::limits::PowerLimit;
    use crate::scheme::ControlScheme;
    use hcapp_workloads::combos::combo_suite;

    #[test]
    fn memory_domain_holds_fixed_voltage() {
        let sys = SystemConfig::paper_system_with_memory(combo_suite()[3], 5);
        assert_eq!(sys.domains.len(), 4);
        let d = Domain::build(&sys.domains[3], &sys, 3);
        assert_eq!(d.kind, ComponentKind::Memory);
        // Fixed mode: domain voltage ignores the global voltage entirely.
        let lo = d.ctl.domain_voltage(Volt::new(0.6));
        let hi = d.ctl.domain_voltage(Volt::new(1.3));
        assert_eq!(lo, hi);
        assert!((lo.value() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn memory_work_rate_is_scheme_independent() {
        let limit = PowerLimit::package_pin();
        let mut works = Vec::new();
        for scheme in [ControlScheme::fixed_baseline(), ControlScheme::Hcapp] {
            let sys = SystemConfig::paper_system_with_memory(combo_suite()[3], 5);
            let run = RunConfig::new(
                SimDuration::from_millis(2),
                scheme,
                limit.guardbanded_target(),
            );
            let out = Simulation::new(sys, run).run();
            works.push(out.work_for(ComponentKind::Memory).unwrap());
        }
        // The stack runs at its own fixed voltage: identical service under
        // any control scheme.
        assert_eq!(works[0], works[1]);
        assert!(works[0] > 0.0);
    }

    #[test]
    fn memory_power_is_accounted_in_the_package() {
        let limit = PowerLimit::package_pin();
        let with = Simulation::new(
            SystemConfig::paper_system_with_memory(combo_suite()[6], 5),
            RunConfig::new(
                SimDuration::from_millis(2),
                ControlScheme::fixed_baseline(),
                limit.guardbanded_target(),
            ),
        )
        .run();
        let without = Simulation::new(
            SystemConfig::paper_system(combo_suite()[6], 5),
            RunConfig::new(
                SimDuration::from_millis(2),
                ControlScheme::fixed_baseline(),
                limit.guardbanded_target(),
            ),
        )
        .run();
        let delta = with.avg_power.value() - without.avg_power.value();
        // Static 3 W + ~0.5 traffic × 6 W ≈ 6 W.
        assert!((3.0..=9.5).contains(&delta), "memory adds {delta} W");
    }
}

//! Shared test fixtures and digest helpers.
//!
//! The integration suites (the root package's `tests/end_to_end.rs`,
//! `tests/props.rs` and `tests/golden_outcomes.rs`, plus this crate's own
//! kill-matrix tests) all build the same paper-system runs; this module is
//! the single place that builds them so fixture drift can't split the
//! suites apart. It is compiled only for tests — either this crate's unit
//! tests (`cfg(test)`) or downstream test crates that enable the
//! `testutil` cargo feature from their `[dev-dependencies]` — so nothing
//! here ships in a normal build.

use hcapp_sim_core::time::SimDuration;
use hcapp_workloads::combos::{combo_by_name, combo_suite, Combo};

use crate::coordinator::{RunConfig, Simulation};
use crate::limits::PowerLimit;
use crate::outcome::RunOutcome;
use crate::scheme::ControlScheme;
use crate::system::SystemConfig;

/// Look a Table 3 combo up by name, panicking with the name on a miss
/// (tests want the typo, not an `Option`).
// simlint: allow(L2): test-only fixture helper (cfg(test)/testutil feature);
// panicking with the offending combo name is the desired test ergonomics.
pub fn combo(name: &str) -> Combo {
    combo_by_name(name).unwrap_or_else(|| panic!("unknown combo {name:?}"))
}

/// The whole Table 3 suite, in its canonical order.
pub fn all_combos() -> [Combo; 8] {
    combo_suite()
}

/// The standard run fixture: the paper's 3-domain package for `combo`,
/// driven at the package-pin guardbanded target for `ms` simulated
/// milliseconds. Every integration suite builds its runs through here.
pub fn paper_config(
    combo: Combo,
    scheme: ControlScheme,
    seed: u64,
    ms: u64,
) -> (SystemConfig, RunConfig) {
    let sys = SystemConfig::paper_system(combo, seed);
    let run = RunConfig::new(
        SimDuration::from_millis(ms),
        scheme,
        PowerLimit::package_pin().guardbanded_target(),
    );
    (sys, run)
}

/// Build and serially execute the standard fixture (the old `quick_run`
/// helper each suite used to re-implement).
pub fn paper_run(combo_name: &str, scheme: ControlScheme, seed: u64, ms: u64) -> RunOutcome {
    let (sys, run) = paper_config(combo(combo_name), scheme, seed, ms);
    Simulation::new(sys, run).run()
}

/// 64-bit FNV-1a over `bytes` — the digest primitive the golden-outcome
/// fixture pins. Stable by construction (pure integer arithmetic); any
/// change to it invalidates `tests/golden_digests.txt`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// [`fnv1a64`] rendered as fixed-width hex, the form the golden fixture
/// file stores.
pub fn digest_hex(text: &str) -> String {
    format!("{:016x}", fnv1a64(text.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn paper_run_is_deterministic() {
        let a = paper_run("Low-Low", ControlScheme::Hcapp, 3, 1);
        let b = paper_run("Low-Low", ControlScheme::Hcapp, 3, 1);
        assert_eq!(crate::cache::encode_outcome(&a), crate::cache::encode_outcome(&b));
    }

    #[test]
    #[should_panic(expected = "unknown combo")]
    fn combo_miss_names_the_culprit() {
        combo("No-Such");
    }
}

//! PID tuning (§3.1).
//!
//! The paper's procedure: "run a single workload combination over a range of
//! proportional gain values until the behavior became unstable. Then …
//! increase the integral gain value until the steady state output reached
//! the desired behavior. The derivative portion … is generally unneeded"
//! (producing a PI controller), and finally "the tuning for a single
//! benchmark must be verified against the entire experiment workload set."
//!
//! [`tune`] automates exactly that recipe against the simulator, and
//! [`verify`] is the cross-suite check. The shipped
//! [`PidGains::paper_default`] constants were produced this way.

use hcapp_sim_core::time::SimDuration;
use hcapp_sim_core::units::Watt;
use hcapp_workloads::combos::Combo;

use crate::coordinator::{RunConfig, Simulation};
use crate::pid::PidGains;
use crate::scheme::ControlScheme;
use crate::system::SystemConfig;

/// Stability/accuracy measurements of one candidate gain set.
#[derive(Debug, Clone)]
pub struct TuneScore {
    /// The gain value this score belongs to.
    pub gain: f64,
    /// Run-average power in watts.
    pub avg_power: f64,
    /// Relative steady-state error `|avg − target| / target`.
    pub steady_state_error: f64,
    /// Power oscillation measure: std-dev of the 1 µs power trace divided
    /// by its mean, after a warm-up prefix.
    pub oscillation: f64,
    /// Whether the candidate is judged stable.
    pub stable: bool,
}

/// The outcome of a tuning session.
#[derive(Debug, Clone)]
pub struct TuningReport {
    /// The chosen gains.
    pub chosen: PidGains,
    /// Scores from the proportional sweep (ki = 0).
    pub kp_sweep: Vec<TuneScore>,
    /// Scores from the integral sweep (kp fixed).
    pub ki_sweep: Vec<TuneScore>,
}

/// Oscillation level above which a proportional candidate counts as
/// unstable. Workload phase changes themselves produce ~0.1–0.2; control-
/// induced oscillation pushes well past that.
const OSCILLATION_LIMIT: f64 = 0.35;

fn score_run(
    combo: Combo,
    seed: u64,
    gains: PidGains,
    target: Watt,
    duration: SimDuration,
    gain: f64,
) -> TuneScore {
    let mut sys = SystemConfig::paper_system(combo, seed);
    sys.pid = gains;
    let run = RunConfig::new(duration, ControlScheme::Hcapp, target).with_trace();
    let out = Simulation::new(sys, run).run();
    let trace = out.trace.expect("trace requested");
    // Skip the first quarter as warm-up.
    let vals = &trace.values()[trace.len() / 4..];
    let mean = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
    let var = vals
        .iter()
        .map(|v| (v - mean) * (v - mean))
        .sum::<f64>()
        / vals.len().max(1) as f64;
    let oscillation = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
    let steady_state_error = (out.avg_power.value() - target.value()).abs() / target.value();
    TuneScore {
        gain,
        avg_power: out.avg_power.value(),
        steady_state_error,
        oscillation,
        stable: oscillation < OSCILLATION_LIMIT,
    }
}

/// Run the §3.1 tuning recipe on one combo. `duration` trades fidelity for
/// time (the shipped constants used 20 ms; tests use 1–2 ms).
pub fn tune(combo: Combo, seed: u64, target: Watt, duration: SimDuration) -> TuningReport {
    let base = PidGains::paper_default();

    // Step 1: raise kp until the loop destabilizes; keep the largest stable
    // value (then back off one notch for margin).
    let kp_grid = [0.002, 0.004, 0.008, 0.016, 0.032, 0.064, 0.128];
    let mut kp_sweep = Vec::with_capacity(kp_grid.len());
    let mut best_kp = kp_grid[0];
    for &kp in &kp_grid {
        let gains = PidGains {
            kp,
            ki: 0.0,
            kd: 0.0,
            ..base
        };
        let s = score_run(combo, seed, gains, target, duration, kp);
        if s.stable {
            best_kp = kp;
        } else {
            kp_sweep.push(s);
            break;
        }
        kp_sweep.push(s);
    }
    // Back off one grid notch from the stability edge.
    let kp = (best_kp / 2.0).max(kp_grid[0]);

    // Step 2: raise ki until the steady-state error is within tolerance.
    let ki_grid = [100.0, 300.0, 900.0, 2700.0, 8100.0];
    let mut ki_sweep = Vec::with_capacity(ki_grid.len());
    let mut chosen_ki = ki_grid[0];
    for &ki in &ki_grid {
        let gains = PidGains {
            kp,
            ki,
            kd: 0.0,
            ..base
        };
        let s = score_run(combo, seed, gains, target, duration, ki);
        let good = s.stable && s.steady_state_error < 0.03;
        ki_sweep.push(s);
        chosen_ki = ki;
        if good {
            break;
        }
    }

    TuningReport {
        chosen: PidGains {
            kp,
            ki: chosen_ki,
            kd: 0.0,
            ..base
        },
        kp_sweep,
        ki_sweep,
    }
}

/// §3.1's final step: verify a gain set across the whole workload suite.
/// Returns per-combo scores; the caller checks every one is stable.
pub fn verify(
    gains: PidGains,
    combos: &[Combo],
    seed: u64,
    target: Watt,
    duration: SimDuration,
) -> Vec<(Combo, TuneScore)> {
    combos
        .iter()
        .map(|&combo| {
            let s = score_run(combo, seed, gains, target, duration, gains.kp);
            (combo, s)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_workloads::combos::combo_suite;

    #[test]
    fn tuning_produces_stable_pi_gains() {
        let report = tune(
            combo_suite()[3], // Hi-Hi, as the paper tunes on one combo
            3,
            Watt::new(86.0),
            SimDuration::from_millis(1),
        );
        assert_eq!(report.chosen.kd, 0.0, "recipe yields a PI controller");
        assert!(report.chosen.kp > 0.0);
        assert!(report.chosen.ki > 0.0);
        assert!(!report.kp_sweep.is_empty());
        assert!(!report.ki_sweep.is_empty());
    }

    #[test]
    fn shipped_default_verifies_on_sample_combos() {
        let combos = [combo_suite()[3], combo_suite()[6]]; // Hi-Hi, Low-Low
        let results = verify(
            PidGains::paper_default(),
            &combos,
            3,
            Watt::new(86.0),
            SimDuration::from_millis(1),
        );
        for (combo, score) in results {
            assert!(
                score.stable,
                "{}: oscillation {} too high",
                combo.name, score.oscillation
            );
        }
    }
}

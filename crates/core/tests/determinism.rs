//! Determinism regression tests backing simlint rule L3: the property the
//! static rule protects (bit-identical reruns, serial == parallel) checked
//! end-to-end on the paper system. If someone allowlists their way past L3
//! with something genuinely nondeterministic, these fail.

use hcapp::coordinator::{RunConfig, Simulation};
use hcapp::scheme::ControlScheme;
use hcapp::system::SystemConfig;
use hcapp_sim_core::time::SimDuration;
use hcapp_sim_core::units::Watt;
use hcapp_workloads::combos::combo_suite;

fn sim() -> Simulation {
    let sys = SystemConfig::paper_system(combo_suite()[3], 7); // Hi-Hi
    let run = RunConfig::new(
        SimDuration::from_millis(2),
        ControlScheme::Hcapp,
        Watt::new(84.0),
    )
    .with_trace()
    .with_voltage_trace();
    Simulation::new(sys, run)
}

#[test]
fn serial_equals_parallel_bitwise() {
    let serial = sim().run();
    for workers in [1, 2, 4] {
        let parallel = sim().run_parallel(workers);
        assert_eq!(serial.avg_power, parallel.avg_power, "{workers} workers");
        assert_eq!(serial.energy_j, parallel.energy_j, "{workers} workers");
        assert_eq!(serial.work, parallel.work, "{workers} workers");
        assert_eq!(serial.windowed_max, parallel.windowed_max);
        assert_eq!(
            serial.mean_global_voltage,
            parallel.mean_global_voltage
        );
        let ts = serial.trace.as_ref().expect("trace requested");
        let tp = parallel.trace.as_ref().expect("trace requested");
        assert_eq!(ts.values(), tp.values(), "{workers} workers");
        let vs = serial.voltage_trace.as_ref().expect("trace requested");
        let vp = parallel.voltage_trace.as_ref().expect("trace requested");
        assert_eq!(vs.values(), vp.values(), "{workers} workers");
    }
}

#[test]
fn rerun_is_bit_identical() {
    let a = sim().run();
    let b = sim().run();
    assert_eq!(a.avg_power, b.avg_power);
    assert_eq!(a.energy_j, b.energy_j);
    assert_eq!(a.work, b.work);
    assert_eq!(
        a.trace.expect("trace").values(),
        b.trace.expect("trace").values()
    );
}

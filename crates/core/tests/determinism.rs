//! Determinism regression tests backing simlint rule L3: the property the
//! static rule protects (bit-identical reruns, serial == parallel) checked
//! end-to-end on the paper system. If someone allowlists their way past L3
//! with something genuinely nondeterministic, these fail.

use hcapp::cache::{decode_outcome, encode_outcome, job_key, run_all_cached, RunCache};
use hcapp::coordinator::{RunConfig, Simulation};
use hcapp::outcome::RunOutcome;
use hcapp::scheme::ControlScheme;
use hcapp::system::SystemConfig;
use hcapp_sim_core::time::SimDuration;
use hcapp_sim_core::units::Watt;
use hcapp_workloads::combos::combo_suite;

fn config(scheme: ControlScheme, batch_quanta: usize) -> (SystemConfig, RunConfig) {
    let sys = SystemConfig::paper_system(combo_suite()[3], 7); // Hi-Hi
    let run = RunConfig::new(SimDuration::from_millis(2), scheme, Watt::new(84.0))
        .with_trace()
        .with_voltage_trace()
        .with_batch_quanta(batch_quanta);
    (sys, run)
}

fn sim() -> Simulation {
    let (sys, run) = config(ControlScheme::Hcapp, 1);
    Simulation::new(sys, run)
}

/// Field-by-field bitwise comparison of two outcomes.
fn assert_outcomes_identical(a: &RunOutcome, b: &RunOutcome, what: &str) {
    assert_eq!(a.avg_power, b.avg_power, "{what}");
    assert_eq!(a.energy_j, b.energy_j, "{what}");
    assert_eq!(a.work, b.work, "{what}");
    assert_eq!(a.windowed_max, b.windowed_max, "{what}");
    assert_eq!(a.mean_global_voltage, b.mean_global_voltage, "{what}");
    assert_eq!(a.trace, b.trace, "{what}");
    assert_eq!(a.voltage_trace, b.voltage_trace, "{what}");
    assert_eq!(a.resilience, b.resilience, "{what}");
}

#[test]
fn serial_equals_parallel_bitwise() {
    let serial = sim().run();
    for workers in [1, 2, 4] {
        let parallel = sim().run_parallel(workers);
        assert_eq!(serial.avg_power, parallel.avg_power, "{workers} workers");
        assert_eq!(serial.energy_j, parallel.energy_j, "{workers} workers");
        assert_eq!(serial.work, parallel.work, "{workers} workers");
        assert_eq!(serial.windowed_max, parallel.windowed_max);
        assert_eq!(
            serial.mean_global_voltage,
            parallel.mean_global_voltage
        );
        let ts = serial.trace.as_ref().expect("trace requested");
        let tp = parallel.trace.as_ref().expect("trace requested");
        assert_eq!(ts.values(), tp.values(), "{workers} workers");
        let vs = serial.voltage_trace.as_ref().expect("trace requested");
        let vp = parallel.voltage_trace.as_ref().expect("trace requested");
        assert_eq!(vs.values(), vp.values(), "{workers} workers");
    }
}

/// The full acceptance matrix: serial, pooled, batched-pooled and cached
/// outcomes must all be byte-identical, for a dynamic scheme (batching is
/// internally disabled — PID feedback — but the knob must still be a
/// no-op) and for the fixed baseline (where multi-quantum batches really
/// ship).
#[test]
fn serial_pooled_batched_cached_all_bitwise_identical() {
    let cache_dir = std::env::temp_dir().join(format!(
        "hcapp_determinism_cache_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let cache = RunCache::new(&cache_dir);

    for scheme in [ControlScheme::Hcapp, ControlScheme::fixed_baseline()] {
        let (sys, run) = config(scheme, 1);
        let reference = Simulation::new(sys.clone(), run.clone()).run();

        for batch in [1, 32, 1000] {
            let (bs, br) = config(scheme, batch);
            let serial = Simulation::new(bs.clone(), br.clone()).run();
            assert_outcomes_identical(&reference, &serial, "serial batch knob");
            for workers in [1, 3] {
                let pooled = Simulation::new(bs.clone(), br.clone()).run_parallel(workers);
                assert_outcomes_identical(
                    &reference,
                    &pooled,
                    &format!("{scheme:?} batch={batch} workers={workers}"),
                );
            }
        }

        // Cached replay: cold run populates, warm run replays bit-exactly.
        let (cold, s1) = run_all_cached(vec![(sys.clone(), run.clone())], 2, &cache);
        assert_eq!((s1.hits, s1.misses), (0, 1));
        assert_outcomes_identical(&reference, &cold[0], "cold cached run");
        let (warm, s2) = run_all_cached(vec![(sys, run)], 2, &cache);
        assert_eq!((s2.hits, s2.misses), (1, 0));
        assert_outcomes_identical(&reference, &warm[0], "warm cached run");
        assert_eq!(encode_outcome(&warm[0]), encode_outcome(&reference));
    }

    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// The cache key must see through everything that changes results and
/// ignore the one knob that does not, and the codec must round-trip the
/// outcome of a real run exactly.
#[test]
fn cache_key_and_codec_contract() {
    let (sys, run) = config(ControlScheme::Hcapp, 1);
    let key = job_key(&sys, &run).expect("untraced runs are cacheable");
    assert_eq!(Some(key), job_key(&sys, &run.clone().with_batch_quanta(64)));
    let (sys2, run2) = config(ControlScheme::fixed_baseline(), 1);
    assert_ne!(Some(key), job_key(&sys2, &run2));

    let out = Simulation::new(sys, run).run();
    let decoded = decode_outcome(&encode_outcome(&out)).expect("codec round-trip");
    assert_outcomes_identical(&out, &decoded, "codec round-trip");
}

#[test]
fn rerun_is_bit_identical() {
    let a = sim().run();
    let b = sim().run();
    assert_eq!(a.avg_power, b.avg_power);
    assert_eq!(a.energy_j, b.energy_j);
    assert_eq!(a.work, b.work);
    assert_eq!(
        a.trace.expect("trace").values(),
        b.trace.expect("trace").values()
    );
}

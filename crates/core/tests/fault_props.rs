//! Property-based fault-campaign tests: for *arbitrary* valid fault plans,
//! the degraded-mode controller keeps over-budget excursions inside the
//! documented reaction bound, and fault-free invariants survive.
//!
//! Compiled only with `--features proptest` (local shim, no registry). Runs
//! are short (1 ms) and case counts small — each case is a full simulation.

#![cfg(feature = "proptest")]

use hcapp::coordinator::{RunConfig, Simulation};
use hcapp::limits::PowerLimit;
use hcapp::scheme::ControlScheme;
use hcapp::system::SystemConfig;
use hcapp_faults::{EpisodeSpec, FaultPlan};
use hcapp_metrics::over_cap;
use hcapp_sim_core::time::SimDuration;
use hcapp_workloads::combos::combo_suite;
use proptest::prelude::*;

/// Worst-case slew-down stretch from a `vr_slew_derate` fault (mirrors
/// `MIN_SLEW_DERATE` = 0.25 in `hcapp-faults`).
const SLEW_STRETCH: u32 = 4;

fn arb_spec(max_rate: f64) -> impl Strategy<Value = EpisodeSpec> {
    (0.0f64..max_rate, 1u32..48).prop_map(|(rate, dur)| EpisodeSpec::new(rate, dur))
}

fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        arb_spec(0.01),
        arb_spec(0.005),
        arb_spec(0.005),
        arb_spec(0.01),
        (arb_spec(0.005), arb_spec(0.01), arb_spec(0.005)),
        (arb_spec(0.003), arb_spec(0.003)),
        (0.0f64..0.3, 0.0f64..0.15, 0.25f64..1.0, 1u32..8),
    )
        .prop_map(
            |(
                seed,
                sensor_noise,
                sensor_stuck,
                sensor_dropout,
                vr_droop,
                (vr_slew_derate, link_delay, link_loss),
                (ctl_stuck, ctl_silent),
                (noise_amplitude, droop_depth, slew_floor, delay_ticks),
            )| FaultPlan {
                seed,
                sensor_noise,
                sensor_stuck,
                sensor_dropout,
                vr_droop,
                vr_slew_derate,
                link_delay,
                link_loss,
                ctl_stuck,
                ctl_silent,
                noise_amplitude,
                droop_depth,
                slew_floor,
                delay_ticks,
            },
        )
}

fn run_with(plan: FaultPlan) -> hcapp::RunOutcome {
    let sys = SystemConfig::paper_system(combo_suite()[3], 11); // Hi-Hi
    let limit = PowerLimit::package_pin();
    let run = RunConfig::new(
        SimDuration::from_millis(1),
        ControlScheme::Hcapp,
        limit.guardbanded_target(),
    )
    .with_trace()
    .with_faults(plan);
    Simulation::new(sys, run).run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The acceptance bound, universally quantified over plans: every
    /// maximal over-budget episode ends within the reaction bound times the
    /// worst-case slew stretch.
    #[test]
    fn over_budget_episodes_bounded_for_arbitrary_plans(plan in arb_plan()) {
        let degraded = hcapp::DegradedConfig::default();
        let bound = SimDuration::from_micros(
            u64::from(degraded.reaction_quanta() * SLEW_STRETCH),
        );
        let out = run_with(plan);
        let trace = out.trace.as_ref().expect("trace requested");
        let r = over_cap(trace, PowerLimit::package_pin().budget.value());
        prop_assert!(
            r.longest <= bound,
            "over-budget episode {} exceeds bound {}", r.longest, bound
        );
    }

    /// Whatever the plan does, the run keeps making progress and the power
    /// trace stays physical (finite, non-negative).
    #[test]
    fn faulted_runs_stay_physical(plan in arb_plan()) {
        let out = run_with(plan);
        prop_assert!(out.avg_power.value() >= 0.0);
        prop_assert!(out.avg_power.value().is_finite());
        for (_, w) in &out.work {
            prop_assert!(*w >= 0.0, "negative work");
        }
        for &p in out.trace.as_ref().expect("trace").values() {
            prop_assert!(p.is_finite() && p >= 0.0, "unphysical power {p}");
        }
    }

    /// Determinism under faults, universally quantified: the same plan
    /// yields the same outcome when re-run.
    #[test]
    fn faulted_reruns_are_identical(plan in arb_plan()) {
        let a = run_with(plan.clone());
        let b = run_with(plan);
        prop_assert_eq!(a.avg_power, b.avg_power);
        prop_assert_eq!(a.energy_j, b.energy_j);
        prop_assert_eq!(a.resilience, b.resilience);
    }
}

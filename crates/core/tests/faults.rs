//! Fault-campaign acceptance tests: the degraded-mode controller bounds how
//! long the package can stay above its power budget under a seeded fault
//! plan, and the resilience counters faithfully report what happened.
//!
//! The bound tested here is the contract documented in DESIGN.md: with any
//! valid plan, every maximal run of consecutive 1 µs trace samples above the
//! *budget* (`P_SPEC` before guardband) is at most
//! [`hcapp::DegradedConfig::reaction_quanta`] control quanta for detection
//! plus a slew-down allowance — a `vr_slew_derate` fault can slow the rail's
//! descent by up to 4× (`MIN_SLEW_DERATE` = 0.25), so the time to *exit* an
//! over-budget excursion stretches accordingly.

use hcapp::coordinator::{RunConfig, Simulation};
use hcapp::limits::PowerLimit;
use hcapp::outcome::RunOutcome;
use hcapp::scheme::ControlScheme;
use hcapp::system::SystemConfig;
use hcapp_faults::FaultPlan;
use hcapp_metrics::over_cap;
use hcapp_sim_core::time::SimDuration;
use hcapp_workloads::combos::combo_suite;

/// Worst-case slew-down stretch from a `vr_slew_derate` fault
/// (1 / `MIN_SLEW_DERATE`).
const SLEW_STRETCH: u32 = 4;

fn faulted_run(plan: Option<FaultPlan>) -> RunOutcome {
    let sys = SystemConfig::paper_system(combo_suite()[3], 11); // Hi-Hi
    let limit = PowerLimit::package_pin();
    let mut run = RunConfig::new(
        SimDuration::from_millis(4),
        ControlScheme::Hcapp,
        limit.guardbanded_target(),
    )
    .with_trace();
    if let Some(p) = plan {
        run = run.with_faults(p);
    }
    Simulation::new(sys, run).run()
}

#[test]
fn over_budget_episodes_stay_bounded_across_seeds_and_severities() {
    let limit = PowerLimit::package_pin();
    let degraded = hcapp::DegradedConfig::default();
    let bound =
        SimDuration::from_micros(u64::from(degraded.reaction_quanta() * SLEW_STRETCH));
    for seed in [1u64, 7, 42, 1234] {
        for plan in [FaultPlan::moderate(seed), FaultPlan::severe(seed)] {
            let out = faulted_run(Some(plan));
            let trace = out.trace.as_ref().expect("trace requested");
            let r = over_cap(trace, limit.budget.value());
            println!(
                "seed {seed}: episodes {} longest {} over_fraction {:.4} \
                 faults {} transitions {} engagements {} em_quanta {}",
                r.episodes,
                r.longest,
                r.over_fraction(),
                out.resilience.faults_injected,
                out.resilience.health_transitions,
                out.resilience.emergency_engagements,
                out.resilience.emergency_quanta,
            );
            assert!(
                r.longest <= bound,
                "seed {seed}: over-budget episode {} exceeds the reaction bound {bound}",
                r.longest
            );
        }
    }
}

#[test]
fn clean_run_reports_zero_resilience_counters() {
    let out = faulted_run(None);
    assert_eq!(out.resilience, hcapp::ResilienceCounters::default());
}

#[test]
fn severe_plan_populates_resilience_counters() {
    let out = faulted_run(Some(FaultPlan::severe(3)));
    let r = out.resilience;
    assert!(r.faults_injected > 0, "severe plan injected nothing");
    assert!(r.health_transitions > 0, "no watchdog ever tripped");
}

#[test]
fn quiet_plan_changes_nothing_measurable() {
    // A plan with every class off arms the degradation layer but injects no
    // fault; the outcome must match the clean run exactly (the watchdogs
    // observe only healthy signals and all throttles stay bitwise 1.0).
    let clean = faulted_run(None);
    let quiet = faulted_run(Some(FaultPlan::quiet(5)));
    println!("quiet counters: {:?}", quiet.resilience);
    assert_eq!(clean.avg_power, quiet.avg_power);
    assert_eq!(clean.energy_j, quiet.energy_j);
    assert_eq!(clean.work, quiet.work);
    assert_eq!(quiet.resilience.faults_injected, 0);
}

#[test]
fn faulted_outcome_is_identical_across_serial_and_parallel() {
    let sys = SystemConfig::paper_system(combo_suite()[4], 13); // Hi-Low
    let limit = PowerLimit::package_pin();
    let run = RunConfig::new(
        SimDuration::from_millis(2),
        ControlScheme::Hcapp,
        limit.guardbanded_target(),
    )
    .with_trace()
    .with_faults(FaultPlan::severe(13));
    let ser = Simulation::new(sys.clone(), run.clone()).run();
    let par = Simulation::new(sys, run).run_parallel(3);
    assert_eq!(ser.avg_power, par.avg_power);
    assert_eq!(ser.energy_j, par.energy_j);
    assert_eq!(ser.work, par.work);
    assert_eq!(ser.resilience, par.resilience);
    assert_eq!(
        ser.trace.as_ref().map(|t| t.values().to_vec()),
        par.trace.as_ref().map(|t| t.values().to_vec())
    );
}

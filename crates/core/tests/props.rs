//! Property-based tests for the controller hierarchy.
//!
//! Compiled only with `--features proptest` so the default `cargo test -q`
//! stays lean; the suite runs against the local proptest shim
//! (`crates/proptest-shim`), so no registry access is needed either way.
#![cfg(feature = "proptest")]

use hcapp::controller::domain::DomainController;
use hcapp::controller::global::GlobalController;
use hcapp::controller::local::{
    CpuIpcStaticController, GpuIpcDynamicController, LocalController,
};
use hcapp::pid::{PidController, PidGains};
use hcapp_sim_core::time::SimDuration;
use hcapp_sim_core::units::{Volt, Watt};
use proptest::prelude::*;

fn arb_gains() -> impl Strategy<Value = PidGains> {
    (
        0.001f64..0.1,   // kp
        0.0f64..5_000.0, // ki
        0.5f64..1.2,     // offset
        0.01f64..0.5,    // integral limit
        1.0f64..8.0,     // boost
        0.5f64..1.0,     // decay
        0.0f64..3.0,     // deadband
        0.01f64..0.2,    // max step
    )
        .prop_map(|(kp, ki, offset, il, boost, decay, dead, step)| PidGains {
            kp,
            ki,
            kd: 0.0,
            offset,
            out_min: 0.6,
            out_max: 1.3,
            integral_limit: il,
            max_step: step,
            overshoot_kp_boost: boost,
            overshoot_integral_decay: decay,
            overshoot_deadband: dead,
        })
}

proptest! {
    /// The PID output is always within its clamp range, for any error
    /// sequence and any sane gain set.
    #[test]
    fn pid_output_always_clamped(gains in arb_gains(),
                                 errors in prop::collection::vec(-50.0f64..50.0, 1..300)) {
        let mut pid = PidController::new(gains);
        for e in errors {
            let out = pid.update(e, SimDuration::from_micros(1));
            prop_assert!((gains.out_min..=gains.out_max).contains(&out),
                "output {out} escaped [{}, {}]", gains.out_min, gains.out_max);
            prop_assert!(out.is_finite());
        }
    }

    /// Consecutive outputs never differ by more than the step limit.
    #[test]
    fn pid_respects_step_limit(gains in arb_gains(),
                               errors in prop::collection::vec(-50.0f64..50.0, 2..300)) {
        let mut pid = PidController::new(gains);
        let mut prev = None;
        for e in errors {
            let out = pid.update(e, SimDuration::from_micros(1));
            if let Some(p) = prev {
                let delta: f64 = out - p;
                prop_assert!(delta.abs() <= gains.max_step + 1e-12,
                    "step {delta} exceeds limit {}", gains.max_step);
            }
            prev = Some(out);
        }
    }

    /// The global controller's voltage error has the sign of the power
    /// error and is monotone in it.
    #[test]
    fn global_error_sign_and_monotonicity(target in 50.0f64..120.0,
                                          p1 in 0.0f64..200.0, p2 in 0.0f64..200.0) {
        let ctl = GlobalController::new(PidGains::paper_default(), Watt::new(target));
        let e1 = ctl.voltage_error(Watt::new(p1));
        let e2 = ctl.voltage_error(Watt::new(p2));
        prop_assert_eq!(e1 > 0.0, p1 < target);
        if p1 < p2 {
            prop_assert!(e1 >= e2);
        }
    }

    /// CPU local ratios always stay in [0.7, 1.0] and never change by more
    /// than one step per update.
    #[test]
    fn cpu_local_ratio_invariants(ipcs in prop::collection::vec(
        prop::collection::vec(0.0f64..1.0, 4), 1..100)) {
        let mut c = CpuIpcStaticController::new(4);
        let mut prev: Vec<f64> = c.ratios().to_vec();
        for frame in ipcs {
            c.update(&frame, Volt::new(1.0));
            for (r, p) in c.ratios().iter().zip(&prev) {
                prop_assert!((0.7..=1.0).contains(r), "ratio {r} out of band");
                prop_assert!((r - p).abs() <= 0.05 + 1e-12, "jumped {} -> {}", p, r);
            }
            prev = c.ratios().to_vec();
        }
    }

    /// GPU dynamic thresholds always stay ordered (down < up) and inside
    /// their clamps under any voltage/ipc history.
    #[test]
    fn gpu_thresholds_always_ordered(volts in prop::collection::vec(0.4f64..1.0, 1..200),
                                     ipc in 0.0f64..1.0) {
        let mut g = GpuIpcDynamicController::new(3, Volt::new(0.72));
        let frame = [ipc; 3];
        for v in volts {
            g.update(&frame, Volt::new(v));
            let (up, down) = g.thresholds();
            prop_assert!(down < up, "thresholds crossed: {down} >= {up}");
            prop_assert!(up <= 0.95 && down >= 0.02);
            for r in g.ratios() {
                prop_assert!((0.7..=1.0).contains(r));
            }
        }
    }

    /// Domain voltage is always inside the domain's legal range and is
    /// monotone in the global voltage.
    #[test]
    fn domain_voltage_invariants(scale in 0.3f64..1.2,
                                 lo in 0.3f64..0.7, span in 0.05f64..0.6,
                                 pri in 0.5f64..1.5,
                                 v1 in 0.0f64..2.0, v2 in 0.0f64..2.0) {
        let v_min = Volt::new(lo);
        let v_max = Volt::new(lo + span);
        let mut d = DomainController::scaled(scale, v_min, v_max);
        d.set_priority(pri);
        let d1 = d.domain_voltage(Volt::new(v1));
        let d2 = d.domain_voltage(Volt::new(v2));
        for dv in [d1, d2] {
            prop_assert!(dv.value() >= v_min.value() - 1e-12);
            prop_assert!(dv.value() <= v_max.value() + 1e-12);
        }
        if v1 <= v2 {
            prop_assert!(d1.value() <= d2.value() + 1e-12);
        }
    }
}

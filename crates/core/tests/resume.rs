//! Kill-at-any-quantum resume equivalence: the crash-safe contract of
//! `hcapp::resume` (DESIGN §6h).
//!
//! Each case runs the same configuration twice: once uninterrupted (the
//! oracle) and once as a chain of `run_resumable` invocations where every
//! link but the last is stopped at an injector-chosen quantum — the
//! in-process equivalent of `kill -9`, since a stopped run flushes nothing
//! past its last checkpoint. The stitched result must be **byte-identical**
//! to the oracle on all three artifacts:
//!
//! * the [`hcapp::RunOutcome`], compared through the cache codec
//!   (`encode_outcome`, IEEE-754 bit patterns);
//! * the JSONL `hcapp.trace` sink, compared as raw bytes against
//!   `jsonl::export` of the oracle's ring;
//! * the `hcapp.report`, replayed offline from each trace.
//!
//! The matrix crosses fault plans (none/light/moderate/severe), kill quanta
//! (early, mid, seam-adjacent, chained double kills), and executors
//! (serial, pooled, pooled + adversarial reply permutation, and the
//! batched fixed-voltage path).

use std::fs;
use std::path::PathBuf;

use hcapp::cache::encode_outcome;
use hcapp::coordinator::{RunConfig, Simulation};
use hcapp::limits::PowerLimit;
use hcapp::outcome::RunOutcome;
use hcapp::resume::{run_resumable, ResumeEnd, ResumeOptions};
use hcapp::scheme::ControlScheme;
use hcapp::system::SystemConfig;
use hcapp_analyze::StreamAnalyzer;
use hcapp_faults::FaultPlan;
use hcapp_sim_core::time::{SimDuration, SimTime};
use hcapp_sim_core::units::{Volt, Watt};
use hcapp_telemetry::jsonl;
use hcapp_telemetry::tracer::{RingTracer, SharedTracer};
use hcapp_workloads::combos::combo_suite;

/// Fresh scratch directory per case (process id + case tag keep parallel
/// test binaries and cases from colliding).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hcapp_resume_it_{}_{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// The scenario under test: a 1 ms paper-system run with a mid-run
/// retarget, so the checkpoint must carry PID state, retarget cursor and
/// window trackers, not just the domains.
fn scenario(plan: Option<FaultPlan>, scheme: ControlScheme, batch: usize) -> (SystemConfig, RunConfig) {
    let sys = SystemConfig::paper_system(combo_suite()[3], 11); // Hi-Hi
    let limit = PowerLimit::package_pin();
    let mut run = RunConfig::new(
        SimDuration::from_millis(1),
        scheme,
        limit.guardbanded_target(),
    )
    .with_trace()
    .with_voltage_trace()
    .with_retarget(SimTime::from_micros(400), Watt::new(70.0))
    .with_batch_quanta(batch);
    run.track_windows = vec![SimDuration::from_micros(100)];
    if let Some(p) = plan {
        run = run.with_faults(p);
    }
    (sys, run)
}

/// Uninterrupted oracle: plain serial run with a ring tracer attached,
/// exported through the stock `jsonl::export` path.
fn oracle(sys: &SystemConfig, run: &RunConfig) -> (RunOutcome, String) {
    let ring = std::sync::Arc::new(std::sync::Mutex::new(RingTracer::new(1 << 20)));
    let handle: SharedTracer = ring.clone();
    let mut run = run.clone();
    run.tracer = Some(handle);
    let out = Simulation::new(sys.clone(), run).run();
    let events = ring.lock().unwrap().drain();
    let text = jsonl::export(events.iter(), &[("case", "resume-equivalence")]);
    (out, text)
}

/// Chain of resumable invocations: each `kill` quantum stops one link, the
/// final link runs to completion. Asserts every link but the first resumes
/// from a checkpoint when one exists.
fn chained(
    sys: &SystemConfig,
    run: &RunConfig,
    dir: &PathBuf,
    every: u64,
    workers: usize,
    permute_seed: Option<u64>,
    kills: &[u64],
) -> (RunOutcome, String) {
    let mut base = ResumeOptions::new(dir.join("hcapp.ckpt"))
        .with_checkpoint_every(every)
        .with_trace_sink(dir.join("hcapp.trace"))
        .with_trace_extra("case", "resume-equivalence");
    base.workers = workers;
    base.permute_seed = permute_seed;
    for (i, &kill) in kills.iter().enumerate() {
        let opts = base.clone().with_stop_at(kill);
        let summary = run_resumable(sys.clone(), run.clone(), &opts).unwrap();
        match summary.end {
            ResumeEnd::Stopped { quantum } => assert!(
                quantum >= kill,
                "link {i} stopped at {quantum}, before its kill quantum {kill}"
            ),
            ResumeEnd::Completed(_) => panic!("link {i} completed despite stop_at {kill}"),
        }
        // A link that got past the first checkpoint leaves one behind for
        // the next link to find.
        if kill >= every {
            assert!(summary.checkpoints_written > 0 || summary.resumed_from.is_some());
        }
    }
    let summary = run_resumable(sys.clone(), run.clone(), &base).unwrap();
    if kills.iter().any(|&k| k >= every) {
        assert!(
            summary.resumed_from.is_some(),
            "final link should resume from the kill chain's checkpoint"
        );
    }
    let out = match summary.end {
        ResumeEnd::Completed(out) => out,
        ResumeEnd::Stopped { quantum } => panic!("final link stopped at {quantum}"),
    };
    let text = fs::read_to_string(dir.join("hcapp.trace")).unwrap();
    (out, text)
}

/// Offline `hcapp.report` replay of a JSONL trace.
fn report_of(trace: &str) -> String {
    let mut a = StreamAnalyzer::new();
    a.consume_jsonl(trace).unwrap();
    a.report().to_json()
}

/// One matrix case: oracle vs killed-and-resumed chain, all three
/// artifacts byte-identical.
fn assert_equivalent(
    tag: &str,
    plan: Option<FaultPlan>,
    scheme: ControlScheme,
    batch: usize,
    every: u64,
    workers: usize,
    permute_seed: Option<u64>,
    kills: &[u64],
) {
    let dir = scratch(tag);
    let (sys, run) = scenario(plan, scheme, batch);
    let (want_out, want_trace) = oracle(&sys, &run);
    let (got_out, got_trace) = chained(&sys, &run, &dir, every, workers, permute_seed, kills);
    assert_eq!(
        encode_outcome(&got_out),
        encode_outcome(&want_out),
        "{tag}: RunOutcome diverged across the kill/resume seam"
    );
    assert_eq!(got_trace, want_trace, "{tag}: stitched trace is not byte-identical");
    // The stitched trace passes the validator (monotone timestamps, no
    // duplicated unique-per-quantum events across the seam)...
    jsonl::validate(&got_trace).unwrap();
    // ...and replays to the same report.
    assert_eq!(report_of(&got_trace), report_of(&want_trace), "{tag}: report diverged");
    let _ = fs::remove_dir_all(&dir);
}

// The 1 ms scenario has 1000 HCAPP quanta; checkpoints land every 64.

#[test]
fn serial_moderate_plan_killed_early() {
    assert_equivalent(
        "serial_moderate_early",
        Some(FaultPlan::moderate(7)),
        ControlScheme::Hcapp,
        1,
        64,
        0,
        None,
        &[137],
    );
}

#[test]
fn serial_severe_plan_killed_mid_run() {
    assert_equivalent(
        "serial_severe_mid",
        Some(FaultPlan::severe(42)),
        ControlScheme::Hcapp,
        1,
        64,
        0,
        None,
        &[500],
    );
}

#[test]
fn serial_light_plan_killed_on_final_quantum() {
    assert_equivalent(
        "serial_light_final",
        Some(FaultPlan::light(3)),
        ControlScheme::Hcapp,
        1,
        64,
        0,
        None,
        &[999],
    );
}

#[test]
fn serial_clean_run_killed_exactly_on_a_checkpoint_boundary() {
    assert_equivalent(
        "serial_clean_boundary",
        None,
        ControlScheme::Hcapp,
        1,
        64,
        0,
        None,
        &[256],
    );
}

#[test]
fn serial_quiet_plan_double_kill_chain() {
    assert_equivalent(
        "serial_quiet_double",
        Some(FaultPlan::quiet(5)),
        ControlScheme::Hcapp,
        1,
        64,
        0,
        None,
        &[137, 700],
    );
}

#[test]
fn pooled_moderate_plan_killed_early() {
    assert_equivalent(
        "pooled_moderate_early",
        Some(FaultPlan::moderate(7)),
        ControlScheme::Hcapp,
        1,
        64,
        2,
        None,
        &[137],
    );
}

#[test]
fn pooled_permuted_severe_plan_killed_late() {
    assert_equivalent(
        "pooled_permuted_severe_late",
        Some(FaultPlan::severe(42)),
        ControlScheme::Hcapp,
        1,
        64,
        3,
        Some(9),
        &[613],
    );
}

#[test]
fn serial_kill_before_first_checkpoint_restarts_fresh() {
    // Killed at quantum 10 < every 64: no checkpoint exists, the final
    // link starts fresh — and must still match the oracle exactly.
    assert_equivalent(
        "serial_fresh_restart",
        Some(FaultPlan::moderate(21)),
        ControlScheme::Hcapp,
        1,
        64,
        0,
        None,
        &[10],
    );
}

/// The batched fixed-voltage path: no tracer is attachable (tracing forces
/// single-quantum batches), so this case pins outcome equivalence only —
/// checkpoints land at 32-quantum batch boundaries and the resumed run
/// re-batches identically.
fn assert_batched_equivalent(tag: &str, workers: usize, permute_seed: Option<u64>, kills: &[u64]) {
    let dir = scratch(tag);
    let sys = SystemConfig::paper_system(combo_suite()[3], 11);
    // 10 ms at the 100 µs fixed quantum = 100 quanta = four 32-quantum
    // batches, so kills and checkpoints land at interior batch boundaries.
    let run = RunConfig::new(
        SimDuration::from_millis(10),
        ControlScheme::FixedVoltage(Volt::new(1.0)),
        PowerLimit::package_pin().guardbanded_target(),
    )
    .with_batch_quanta(32);
    let want = Simulation::new(sys.clone(), run.clone()).run();
    let mut base = ResumeOptions::new(dir.join("hcapp.ckpt")).with_checkpoint_every(2);
    base.workers = workers;
    base.permute_seed = permute_seed;
    for &kill in kills {
        let opts = base.clone().with_stop_at(kill);
        match run_resumable(sys.clone(), run.clone(), &opts).unwrap().end {
            ResumeEnd::Stopped { .. } => {}
            ResumeEnd::Completed(_) => panic!("{tag}: link completed despite stop_at {kill}"),
        }
    }
    let summary = run_resumable(sys.clone(), run.clone(), &base).unwrap();
    assert!(summary.resumed_from.is_some(), "{tag}: expected a resume");
    let got = match summary.end {
        ResumeEnd::Completed(out) => out,
        ResumeEnd::Stopped { quantum } => panic!("{tag}: final link stopped at {quantum}"),
    };
    assert_eq!(
        encode_outcome(&got),
        encode_outcome(&want),
        "{tag}: batched outcome diverged across the kill/resume seam"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn batched_serial_killed_mid_run() {
    assert_batched_equivalent("batched_serial", 0, None, &[40]);
}

#[test]
fn batched_pooled_permuted_killed_mid_run() {
    assert_batched_equivalent("batched_pooled_permuted", 2, Some(17), &[40]);
}

#[test]
fn resumable_fresh_run_matches_plain_run() {
    // No kills at all: the resumable driver itself must not perturb the
    // physics or the trace.
    assert_equivalent(
        "fresh_noop",
        Some(FaultPlan::moderate(99)),
        ControlScheme::Hcapp,
        1,
        64,
        0,
        None,
        &[],
    );
}

#[test]
fn validator_rejects_a_double_emitted_seam_quantum() {
    // Simulate a broken resume that forgot to truncate the sink: the seam
    // quantum's unique-per-quantum events appear twice. The JSONL
    // validator must reject the splice, while the correctly stitched trace
    // (same events, emitted once) passes.
    let dir = scratch("seam_double_emit");
    let (sys, run) = scenario(Some(FaultPlan::moderate(7)), ControlScheme::Hcapp, 1);
    let (_, trace) = oracle(&sys, &run);
    jsonl::validate(&trace).unwrap();
    // Find the last global_pid line and splice a copy of everything from
    // there to the end — the shape a non-truncating resume would produce.
    let lines: Vec<&str> = trace.lines().collect();
    let seam = lines
        .iter()
        .rposition(|l| l.contains("\"kind\":\"global_pid\""))
        .expect("trace has global_pid events");
    let mut doubled = String::new();
    for l in &lines {
        doubled.push_str(l);
        doubled.push('\n');
    }
    for l in &lines[seam..] {
        doubled.push_str(l);
        doubled.push('\n');
    }
    let err = jsonl::validate(&doubled).unwrap_err();
    assert!(err.contains("duplicate"), "unexpected validator error: {err}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn foreign_config_checkpoint_is_ignored() {
    let dir = scratch("foreign_config");
    let (sys, run) = scenario(Some(FaultPlan::moderate(7)), ControlScheme::Hcapp, 1);
    let base = ResumeOptions::new(dir.join("hcapp.ckpt"))
        .with_checkpoint_every(64)
        .with_trace_sink(dir.join("hcapp.trace"))
        .with_trace_extra("case", "resume-equivalence");
    // Leave a checkpoint behind from one configuration...
    let opts = base.clone().with_stop_at(200);
    run_resumable(sys.clone(), run.clone(), &opts).unwrap();
    // ...then run a *different* configuration against the same store: the
    // foreign checkpoint must be skipped, not applied.
    let (sys2, run2) = scenario(Some(FaultPlan::severe(8)), ControlScheme::Hcapp, 1);
    let summary = run_resumable(sys2.clone(), run2.clone(), &base).unwrap();
    assert!(summary.resumed_from.is_none(), "resumed from a foreign config's checkpoint");
    let got = match summary.end {
        ResumeEnd::Completed(out) => out,
        ResumeEnd::Stopped { quantum } => panic!("stopped at {quantum}"),
    };
    let (want, want_trace) = oracle(&sys2, &run2);
    assert_eq!(encode_outcome(&got), encode_outcome(&want));
    assert_eq!(fs::read_to_string(dir.join("hcapp.trace")).unwrap(), want_trace);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_checkpoint_falls_back_to_fresh_start() {
    let dir = scratch("corrupt_ckpt");
    let (sys, run) = scenario(None, ControlScheme::Hcapp, 1);
    let base = ResumeOptions::new(dir.join("hcapp.ckpt"))
        .with_checkpoint_every(64)
        .with_trace_sink(dir.join("hcapp.trace"))
        .with_trace_extra("case", "resume-equivalence");
    run_resumable(sys.clone(), run.clone(), &base.clone().with_stop_at(200)).unwrap();
    // Flip bytes in both slots so neither passes its checksum.
    for name in ["hcapp.ckpt", "hcapp.ckpt.1"] {
        let p = dir.join(name);
        if let Ok(text) = fs::read_to_string(&p) {
            fs::write(&p, text.replace("loop.", "l00p.")).unwrap();
        }
    }
    let summary = run_resumable(sys.clone(), run.clone(), &base).unwrap();
    assert!(summary.resumed_from.is_none(), "resumed from a corrupt checkpoint");
    let got = match summary.end {
        ResumeEnd::Completed(out) => out,
        ResumeEnd::Stopped { quantum } => panic!("stopped at {quantum}"),
    };
    let (want, want_trace) = oracle(&sys, &run);
    assert_eq!(encode_outcome(&got), encode_outcome(&want));
    assert_eq!(fs::read_to_string(dir.join("hcapp.trace")).unwrap(), want_trace);
    let _ = fs::remove_dir_all(&dir);
}

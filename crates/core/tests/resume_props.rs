//! Property-based resume equivalence: for *arbitrary* valid fault plans,
//! kill quanta, and checkpoint cadences, a killed-and-resumed run encodes
//! to the same bytes as the uninterrupted run (`encode_outcome`, IEEE-754
//! bit patterns — satellite of the crash-safe checkpoint/resume contract,
//! DESIGN §6h).
//!
//! Compiled only with `--features proptest` (local shim, no registry).
//! Each case is two full 1 ms simulations plus a resume, so case counts
//! stay small.

#![cfg(feature = "proptest")]

use std::fs;
use std::path::PathBuf;

use hcapp::cache::encode_outcome;
use hcapp::coordinator::{RunConfig, Simulation};
use hcapp::limits::PowerLimit;
use hcapp::resume::{run_resumable, ResumeEnd, ResumeOptions};
use hcapp::scheme::ControlScheme;
use hcapp::system::SystemConfig;
use hcapp_faults::{EpisodeSpec, FaultPlan};
use hcapp_sim_core::time::SimDuration;
use hcapp_workloads::combos::combo_suite;
use proptest::prelude::*;

fn arb_spec(max_rate: f64) -> impl Strategy<Value = EpisodeSpec> {
    (0.0f64..max_rate, 1u32..48).prop_map(|(rate, dur)| EpisodeSpec::new(rate, dur))
}

fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        arb_spec(0.01),
        arb_spec(0.005),
        arb_spec(0.005),
        arb_spec(0.01),
        (arb_spec(0.005), arb_spec(0.01), arb_spec(0.005)),
        (arb_spec(0.003), arb_spec(0.003)),
        (0.0f64..0.3, 0.0f64..0.15, 0.25f64..1.0, 1u32..8),
    )
        .prop_map(
            |(
                seed,
                sensor_noise,
                sensor_stuck,
                sensor_dropout,
                vr_droop,
                (vr_slew_derate, link_delay, link_loss),
                (ctl_stuck, ctl_silent),
                (noise_amplitude, droop_depth, slew_floor, delay_ticks),
            )| FaultPlan {
                seed,
                sensor_noise,
                sensor_stuck,
                sensor_dropout,
                vr_droop,
                vr_slew_derate,
                link_delay,
                link_loss,
                ctl_stuck,
                ctl_silent,
                noise_amplitude,
                droop_depth,
                slew_floor,
                delay_ticks,
            },
        )
}

/// The 1 ms HCAPP scenario under test: 1000 control quanta.
fn scenario(plan: FaultPlan) -> (SystemConfig, RunConfig) {
    let sys = SystemConfig::paper_system(combo_suite()[3], 11); // Hi-Hi
    let run = RunConfig::new(
        SimDuration::from_millis(1),
        ControlScheme::Hcapp,
        PowerLimit::package_pin().guardbanded_target(),
    )
    .with_faults(plan);
    (sys, run)
}

fn scratch(case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hcapp_resume_prop_{}_{case}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// ∀ (plan, kill quantum, checkpoint cadence): killing at the quantum
    /// and resuming from the last checkpoint reproduces the uninterrupted
    /// outcome bit-exactly.
    #[test]
    fn killed_and_resumed_outcome_is_bit_identical(
        plan in arb_plan(),
        kill in 1u64..1000,
        every in 1u64..200,
    ) {
        let (sys, run) = scenario(plan);
        let want = Simulation::new(sys.clone(), run.clone()).run();
        // A distinct scratch dir per generated case (the kill/cadence pair
        // is as good a discriminator as any).
        let dir = scratch(kill * 1000 + every);
        let base = ResumeOptions::new(dir.join("hcapp.ckpt")).with_checkpoint_every(every);
        let stopped = run_resumable(sys.clone(), run.clone(), &base.clone().with_stop_at(kill))
            .expect("checkpointing run failed");
        prop_assert!(
            matches!(stopped.end, ResumeEnd::Stopped { .. }),
            "kill at {kill} did not stop the run"
        );
        let resumed = run_resumable(sys, run, &base).expect("resumed run failed");
        if kill >= every {
            prop_assert!(
                resumed.resumed_from.is_some(),
                "kill at {kill} with cadence {every} left no checkpoint to resume"
            );
        }
        let got = match resumed.end {
            ResumeEnd::Completed(out) => out,
            ResumeEnd::Stopped { quantum } => {
                let _ = fs::remove_dir_all(&dir);
                return Err(proptest::test_runner::TestCaseError::Fail(format!(
                    "final run stopped at {quantum}"
                )));
            }
        };
        let _ = fs::remove_dir_all(&dir);
        prop_assert_eq!(encode_outcome(&got), encode_outcome(&want));
    }
}

//! End-to-end telemetry tests: the traced event stream must be a pure
//! function of the simulation inputs — identical across reruns and across
//! serial vs. parallel execution — and the default (no tracer / disabled
//! tracer) path must emit nothing at all.

use std::sync::{Arc, Mutex};

use hcapp::coordinator::{RunConfig, Simulation};
use hcapp::scheme::ControlScheme;
use hcapp::system::SystemConfig;
use hcapp_faults::FaultPlan;
use hcapp_sim_core::time::SimDuration;
use hcapp_sim_core::units::Watt;
use hcapp_telemetry::{NullTracer, RingTracer, SharedTracer, TraceEvent, Tracer, EVENT_KINDS};
use hcapp_workloads::combos::combo_suite;

/// Event kinds every traced dynamic-scheme run emits; the remaining
/// [`EVENT_KINDS`] (`fault_injected`, `health_transition`,
/// `emergency_throttle`) appear only under a fault plan.
const BASE_KINDS: [&str; 5] = [
    "retarget",
    "global_pid",
    "vr_slew",
    "domain_scale",
    "local_decision",
];

fn sim(tracer: Option<SharedTracer>, faults: Option<FaultPlan>) -> Simulation {
    let sys = SystemConfig::paper_system(combo_suite()[3], 7); // Hi-Hi
    let mut run = RunConfig::new(
        SimDuration::from_millis(2),
        ControlScheme::Hcapp,
        Watt::new(84.0),
    );
    if let Some(t) = tracer {
        run = run.with_tracer(t);
    }
    if let Some(p) = faults {
        run = run.with_faults(p);
    }
    Simulation::new(sys, run)
}

/// Run serially (`workers == None`) or with a worker pool, returning the
/// full traced event stream from a large ring (nothing dropped).
fn traced_events_with(workers: Option<usize>, faults: Option<FaultPlan>) -> Vec<TraceEvent> {
    let ring = Arc::new(Mutex::new(RingTracer::new(1 << 16)));
    let s = sim(Some(ring.clone() as SharedTracer), faults);
    match workers {
        None => {
            s.run();
        }
        Some(w) => {
            s.run_parallel(w);
        }
    }
    let mut guard = ring.lock().expect("ring lock");
    assert_eq!(guard.dropped(), 0, "ring must be large enough for the run");
    guard.drain()
}

fn traced_events(workers: Option<usize>) -> Vec<TraceEvent> {
    traced_events_with(workers, None)
}

/// Canonical byte form of an event stream. `TraceEvent` derives `PartialEq`,
/// but controllers without IPC thresholds report `NaN`, and `NaN != NaN`;
/// the JSONL export canonicalizes non-finite values to `null`, so comparing
/// the exported bytes is the right notion of "bitwise identical traces".
fn canonical(events: &[TraceEvent]) -> String {
    hcapp_telemetry::jsonl::export(events, &[])
}

#[test]
fn serial_and_parallel_traces_are_identical() {
    let serial = traced_events(None);
    assert!(!serial.is_empty());
    for workers in [1, 2, 4] {
        let parallel = traced_events(Some(workers));
        assert_eq!(canonical(&serial), canonical(&parallel), "{workers} workers");
    }
}

#[test]
fn traced_stream_is_time_ordered_and_covers_base_kinds() {
    let events = traced_events(None);
    let mut last = 0u64;
    for e in &events {
        let t = e.time().as_nanos();
        assert!(t >= last, "events out of order at t={t}");
        last = t;
    }
    for kind in BASE_KINDS {
        assert!(
            events.iter().any(|e| e.kind() == kind),
            "no {kind} event in an hcapp run"
        );
    }
    // Fault-free runs must never emit fault-campaign events.
    for kind in EVENT_KINDS.iter().filter(|k| !BASE_KINDS.contains(k)) {
        assert!(
            !events.iter().any(|e| e.kind() == *kind),
            "{kind} event leaked into a clean run"
        );
    }
}

#[test]
fn faulted_run_is_time_ordered_and_covers_all_kinds() {
    let events = traced_events_with(None, Some(FaultPlan::severe(11)));
    let mut last = 0u64;
    for e in &events {
        let t = e.time().as_nanos();
        assert!(t >= last, "events out of order at t={t}");
        last = t;
    }
    for kind in EVENT_KINDS {
        assert!(
            events.iter().any(|e| e.kind() == *kind),
            "no {kind} event in a severe-plan run"
        );
    }
}

/// The acceptance criterion in one test: the same seed yields byte-identical
/// traces from the serial and pooled executors *while a fault plan is
/// active* — fault decisions are keyed on simulated time and stable domain
/// index, never on execution order.
#[test]
fn faulted_serial_and_parallel_traces_are_identical() {
    let serial = traced_events_with(None, Some(FaultPlan::severe(23)));
    assert!(!serial.is_empty());
    assert!(
        serial.iter().any(|e| e.kind() == "fault_injected"),
        "plan must actually bite for this test to mean anything"
    );
    for workers in [1, 2, 4] {
        let parallel = traced_events_with(Some(workers), Some(FaultPlan::severe(23)));
        assert_eq!(canonical(&serial), canonical(&parallel), "{workers} workers");
    }
}

#[test]
fn rerun_traces_are_identical() {
    let a = traced_events(None);
    let b = traced_events(None);
    assert_eq!(canonical(&a), canonical(&b));
}

/// A disabled tracer that fails the test if the run loop ever hands it an
/// event: proves the `NullTracer`-style `enabled() == false` path really is
/// event-free, not merely event-discarding.
#[derive(Debug)]
struct RejectingTracer;

impl Tracer for RejectingTracer {
    fn enabled(&self) -> bool {
        false
    }
    fn record(&mut self, e: TraceEvent) {
        panic!("disabled tracer received an event: {e:?}");
    }
    fn record_all(&mut self, events: &mut Vec<TraceEvent>) {
        assert!(events.is_empty(), "disabled tracer received {events:?}");
    }
}

#[test]
fn disabled_tracer_sees_no_events_and_does_not_perturb_results() {
    let baseline = sim(None, None).run();
    let with_null = sim(Some(hcapp_telemetry::shared(NullTracer)), None).run();
    let with_rejecting = sim(Some(hcapp_telemetry::shared(RejectingTracer)), None).run();
    for out in [&with_null, &with_rejecting] {
        assert_eq!(baseline.avg_power, out.avg_power);
        assert_eq!(baseline.energy_j, out.energy_j);
        assert_eq!(baseline.work, out.work);
    }
}

#[test]
fn saturated_ring_counts_drops_and_keeps_newest() {
    let ring = Arc::new(Mutex::new(RingTracer::new(8)));
    sim(Some(ring.clone() as SharedTracer), None).run();
    let guard = ring.lock().expect("ring lock");
    assert_eq!(guard.len(), 8);
    assert!(guard.dropped() > 0, "a 2 ms hcapp run must overflow 8 slots");
    // Stats see every event, including the dropped ones.
    assert_eq!(guard.stats().total(), 8 + guard.dropped());
    // Survivors are the newest events, still time-ordered.
    let times: Vec<u64> = guard.events().map(|e| e.time().as_nanos()).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]));
}

//! The 8-core CPU chiplet.
//!
//! Owns the cores, the shared workload program (one cursor/player per
//! chiplet — PARSEC apps are data-parallel, so phases are barrier-coupled
//! across cores), the uncore power model, and the McPAT-style energy
//! breakdown. The chiplet is stepped with one supply voltage per core (the
//! local controllers in `hcapp` compute those) and exposes the per-core IPC
//! fractions those controllers need next cycle.

use hcapp_power_model::ComponentPowerModel;
use hcapp_sim_core::rng::DeterministicRng;
use hcapp_sim_core::time::SimDuration;
use hcapp_sim_core::units::{Volt, Watt};
use hcapp_workloads::program::{WorkloadProgram, WorkloadSource};

use crate::config::CpuConfig;
use crate::core::Core;
use crate::mcpat::PowerBreakdown;

/// The CPU chiplet simulator.
#[derive(Debug, Clone)]
pub struct CpuChiplet {
    cfg: CpuConfig,
    cores: Vec<Core>,
    uncore: ComponentPowerModel,
    program: WorkloadProgram,
    workload_name: String,
    /// Per-core measured IPC fractions from the last step.
    last_ipc: Vec<f64>,
    /// Total chiplet power from the last step.
    last_power: Watt,
    breakdown: PowerBreakdown,
}

impl CpuChiplet {
    /// Build a chiplet running `workload` (a [`BenchmarkSpec`] or a recorded
    /// trace via [`WorkloadSource`]), with randomness derived from
    /// `(seed, stream_base)`.
    ///
    /// [`BenchmarkSpec`]: hcapp_workloads::spec::BenchmarkSpec
    pub fn new(
        cfg: CpuConfig,
        workload: impl Into<WorkloadSource>,
        seed: u64,
        stream_base: u64,
    ) -> Self {
        let workload = workload.into();
        cfg.validate();
        let fm = cfg.frequency_model();
        let core_model = ComponentPowerModel::calibrated(
            fm.clone(),
            cfg.v_nominal,
            cfg.core_peak_dynamic,
            cfg.core_leakage,
        );
        let uncore = ComponentPowerModel::calibrated(
            fm,
            cfg.v_nominal,
            cfg.uncore_peak_dynamic,
            cfg.uncore_leakage,
        );
        let f_nominal = core_model.frequency(cfg.v_nominal).value();
        // Jitter resample period in 100 ns ticks is computed from the config
        // assuming the canonical tick; any tick works, the period just
        // shifts.
        let jitter_ticks = (cfg.jitter_resample_ns / 100).max(1);
        let cores = (0..cfg.cores)
            .map(|i| {
                Core::new(
                    core_model.clone(),
                    f_nominal,
                    cfg.core_jitter_std,
                    jitter_ticks,
                    DeterministicRng::derive(seed, stream_base + 1 + i as u64),
                )
            })
            .collect();
        let program = workload.instantiate(seed, stream_base);
        CpuChiplet {
            last_ipc: vec![0.0; cfg.cores],
            cfg,
            cores,
            uncore,
            workload_name: workload.name().to_string(),
            program,
            last_power: Watt::ZERO,
            breakdown: PowerBreakdown::new(),
        }
    }

    /// Number of locally-controllable units (cores).
    pub fn units(&self) -> usize {
        self.cores.len()
    }

    /// The chiplet configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// Advance one tick.
    ///
    /// `core_voltages[i]` is the supply voltage the local controller chose
    /// for core `i` (clamped here to the safe range — the pass-through
    /// over/under-voltage protection of §3.3). Returns total chiplet power.
    ///
    /// # Panics
    /// Panics if `core_voltages.len() != units()`.
    pub fn step(&mut self, core_voltages: &[Volt], dt: SimDuration) -> Watt {
        assert_eq!(
            core_voltages.len(),
            self.cores.len(),
            "need one voltage per core"
        );
        let sample = self.program.sample();
        let mut total_core_power = Watt::ZERO;
        let mut total_dynamic = Watt::ZERO;
        let mut total_rate = 0.0;
        let dt_ns = dt.as_nanos() as f64;
        for (i, core) in self.cores.iter_mut().enumerate() {
            let v = core_voltages[i].clamp(self.cfg.v_min, self.cfg.v_max);
            let out = core.step(v, sample, dt);
            total_core_power += out.power;
            total_dynamic += out.power - core.model().leakage_power(v);
            total_rate += out.work_ns / dt_ns;
            self.last_ipc[i] = out.ipc_fraction;
        }
        // The shared program advances at the average core rate (barrier-
        // coupled data parallelism).
        let avg_rate = total_rate / self.cores.len() as f64;
        self.program.advance(avg_rate * dt_ns);

        // Uncore runs at the mean core voltage; its switching tracks memory
        // traffic (≈ mem_intensity of the current phase, scaled by how busy
        // the cores are).
        let mean_v = Volt::new(
            core_voltages
                .iter()
                .map(|v| v.clamp(self.cfg.v_min, self.cfg.v_max).value())
                .sum::<f64>()
                / self.cores.len() as f64,
        );
        let uncore_activity = sample.mem_intensity * sample.activity;
        let uncore_power = self.uncore.power(mean_v, uncore_activity);

        let leakage = total_core_power - total_dynamic;
        self.breakdown.record(total_dynamic, leakage, uncore_power, dt);

        self.last_power = total_core_power + uncore_power;
        self.last_power
    }

    /// Advance one tick through a borrowed [`StepFrame`] — the
    /// quantum-stepper kernel's entry point.
    ///
    /// Bit-identical to [`CpuChiplet::step`] (pinned by
    /// `step_into_matches_step` below and the golden-digest corpus), but
    /// engineered for the hot loop: the voltage-only model evaluations
    /// (frequency, leakage) are computed once per *distinct consecutive*
    /// core voltage and shared across cores holding that voltage — under
    /// uniform local-controller ratios that is one evaluation per tick
    /// instead of three per core ([`Core::step`] evaluates the frequency
    /// curve twice and the leakage curve twice per call).
    ///
    /// [`StepFrame`]: hcapp_sim_core::frame::StepFrame
    ///
    /// # Panics
    /// Panics if `frame.voltages.len() != units()`.
    pub fn step_into(&mut self, frame: &mut hcapp_sim_core::frame::StepFrame<'_>) {
        assert_eq!(
            frame.voltages.len(),
            self.cores.len(),
            "need one voltage per core"
        );
        let dt = frame.dt;
        let sample = self.program.sample();
        let mut total_core_power = Watt::ZERO;
        let mut total_dynamic = Watt::ZERO;
        let mut total_rate = 0.0;
        let mut v_sum = 0.0;
        let dt_ns = dt.as_nanos() as f64;
        // One-entry operating-point memo, keyed on the voltage's bit
        // pattern: frequency_at and leakage.power are pure, so reuse is
        // value-identical to recomputation.
        let mut memo_v = f64::NAN.to_bits();
        let mut memo_f = hcapp_sim_core::units::Hertz::ZERO;
        let mut memo_leak = Watt::ZERO;
        for (i, core) in self.cores.iter_mut().enumerate() {
            let v = frame.voltages[i].clamp(self.cfg.v_min, self.cfg.v_max);
            v_sum += v.value();
            if v.value().to_bits() != memo_v {
                let (f, leak) = core.model().operating_point(v);
                memo_v = v.value().to_bits();
                memo_f = f;
                memo_leak = leak;
            }
            let out = core.step_at(v, memo_f, memo_leak, sample, dt);
            total_core_power += out.power;
            total_dynamic += out.power - memo_leak;
            total_rate += out.work_ns / dt_ns;
            self.last_ipc[i] = out.ipc_fraction;
        }
        let avg_rate = total_rate / self.cores.len() as f64;
        self.program.advance(avg_rate * dt_ns);

        let mean_v = Volt::new(v_sum / self.cores.len() as f64);
        let uncore_activity = sample.mem_intensity * sample.activity;
        let uncore_power = self.uncore.power(mean_v, uncore_activity);

        let leakage = total_core_power - total_dynamic;
        self.breakdown.record(total_dynamic, leakage, uncore_power, dt);

        self.last_power = total_core_power + uncore_power;
        *frame.power_acc += self.last_power.value();
    }

    /// Per-core measured IPC fractions from the last step (local-controller
    /// inputs).
    pub fn ipc_fractions(&self) -> &[f64] {
        &self.last_ipc
    }

    /// Total chiplet power from the last step.
    pub fn power(&self) -> Watt {
        self.last_power
    }

    /// Program work completed so far, in nominal nanoseconds.
    pub fn work_done(&self) -> f64 {
        self.program.work_done()
    }

    /// McPAT-style energy breakdown.
    pub fn breakdown(&self) -> &PowerBreakdown {
        &self.breakdown
    }

    /// The name of the workload this chiplet runs.
    pub fn workload_name(&self) -> &str {
        &self.workload_name
    }
}

impl hcapp_sim_core::state::Snapshot for CpuChiplet {
    fn save_state(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        for core in &self.cores {
            core.save_state(w);
        }
        self.program.save_state(w);
        w.f64_slice("cpu.last_ipc", &self.last_ipc);
        w.f64("cpu.last_power", self.last_power.0);
        self.breakdown.save_state(w);
    }

    fn load_state(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        for core in &mut self.cores {
            core.load_state(r)?;
        }
        self.program.load_state(r)?;
        let ipc = r.f64_vec("cpu.last_ipc")?;
        if ipc.len() != self.last_ipc.len() {
            return None;
        }
        self.last_ipc = ipc;
        self.last_power = Watt(r.f64("cpu.last_power")?);
        self.breakdown.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_workloads::benchmarks::Benchmark;

    fn chiplet(b: Benchmark) -> CpuChiplet {
        CpuChiplet::new(CpuConfig::default(), b.spec(), 42, 100)
    }

    fn run(c: &mut CpuChiplet, v: f64, ticks: usize) -> (f64, f64) {
        let volts = vec![Volt::new(v); c.units()];
        let dt = SimDuration::from_nanos(100);
        let mut energy = 0.0;
        for _ in 0..ticks {
            energy += c.step(&volts, dt).value() * dt.as_secs_f64();
        }
        (energy, c.work_done())
    }

    #[test]
    fn eight_units_by_default() {
        assert_eq!(chiplet(Benchmark::Swaptions).units(), 8);
    }

    #[test]
    fn step_into_matches_step() {
        // The kernel entry point must be bit-identical to the reference
        // path — same power, same IPC, same workload cursor, same
        // breakdown — including under per-core voltage spreads that defeat
        // the operating-point memo.
        use hcapp_sim_core::frame::StepFrame;
        let mut reference = chiplet(Benchmark::Ferret);
        let mut kernel = chiplet(Benchmark::Ferret);
        let dt = SimDuration::from_nanos(100);
        let n = reference.units();
        for t in 0..20_000u64 {
            let volts: Vec<Volt> = (0..n)
                .map(|i| {
                    // Mostly uniform, periodically spread per core.
                    let spread = if t % 7 == 0 { 0.01 * i as f64 } else { 0.0 };
                    Volt::new(0.85 + 0.2 * ((t % 100) as f64 / 100.0) + spread)
                })
                .collect();
            let p_ref = reference.step(&volts, dt).value();
            let mut acc = 0.0;
            kernel.step_into(&mut StepFrame::new(&volts, dt, &mut acc));
            assert_eq!(p_ref.to_bits(), acc.to_bits(), "tick {t}: power diverged");
            assert_eq!(reference.ipc_fractions(), kernel.ipc_fractions());
        }
        assert_eq!(
            reference.work_done().to_bits(),
            kernel.work_done().to_bits()
        );
        assert_eq!(
            reference.breakdown().total_joules().to_bits(),
            kernel.breakdown().total_joules().to_bits()
        );
    }

    #[test]
    fn power_positive_and_below_theoretical_peak() {
        let mut c = chiplet(Benchmark::Fluidanimate);
        let volts = vec![Volt::new(1.0); c.units()];
        let dt = SimDuration::from_nanos(100);
        let peak = c.config().peak_power_at(Volt::new(1.0)).value();
        for _ in 0..10_000 {
            let p = c.step(&volts, dt).value();
            assert!(p > 0.0);
            assert!(p <= peak * 1.0 + 1e-6, "power {p} above peak {peak}");
        }
    }

    #[test]
    fn higher_voltage_completes_more_work() {
        let mut slow = chiplet(Benchmark::Swaptions);
        let mut fast = chiplet(Benchmark::Swaptions);
        let (_, w_slow) = run(&mut slow, 0.85, 20_000);
        let (_, w_fast) = run(&mut fast, 1.15, 20_000);
        assert!(
            w_fast > w_slow * 1.2,
            "work {w_fast} vs {w_slow}: speedup too small"
        );
    }

    #[test]
    fn low_class_draws_less_than_hi_class() {
        let mut low = chiplet(Benchmark::Blackscholes);
        let mut hi = chiplet(Benchmark::Fluidanimate);
        let (e_low, _) = run(&mut low, 0.95, 50_000);
        let (e_hi, _) = run(&mut hi, 0.95, 50_000);
        assert!(e_hi > e_low * 1.3, "Hi {e_hi} J vs Low {e_low} J");
    }

    #[test]
    fn ipc_fractions_populated_and_bounded() {
        let mut c = chiplet(Benchmark::Ferret);
        let volts = vec![Volt::new(0.95); c.units()];
        c.step(&volts, SimDuration::from_nanos(100));
        assert_eq!(c.ipc_fractions().len(), 8);
        for &f in c.ipc_fractions() {
            assert!((0.0..=1.0).contains(&f), "ipc fraction {f} out of range");
        }
    }

    #[test]
    fn deterministic_replay() {
        let mut a = chiplet(Benchmark::Ferret);
        let mut b = chiplet(Benchmark::Ferret);
        let volts = vec![Volt::new(0.95); a.units()];
        let dt = SimDuration::from_nanos(100);
        for _ in 0..5_000 {
            let pa = a.step(&volts, dt);
            let pb = b.step(&volts, dt);
            assert_eq!(pa, pb);
        }
        assert_eq!(a.work_done(), b.work_done());
    }

    #[test]
    fn breakdown_energy_matches_integrated_power() {
        let mut c = chiplet(Benchmark::Swaptions);
        let (energy, _) = run(&mut c, 1.0, 10_000);
        let acc = c.breakdown().total_joules();
        assert!(
            (acc - energy).abs() < 1e-6 * energy.max(1.0),
            "breakdown {acc} J vs integrated {energy} J"
        );
    }

    #[test]
    #[should_panic(expected = "one voltage per core")]
    fn wrong_voltage_arity_panics() {
        let mut c = chiplet(Benchmark::Swaptions);
        let volts = vec![Volt::new(1.0); 3];
        c.step(&volts, SimDuration::from_nanos(100));
    }
}

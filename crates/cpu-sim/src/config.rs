//! CPU chiplet configuration (Table 2, CPU column).
//!
//! The paper simulates the Nehalem model shipped with Sniper: 8 cores,
//! 32 kB L1, 256 kB L2, 0.8–2 GHz. Power calibration constants are chosen so
//! the chiplet peaks around 60 W — a Nehalem-class chiplet share of the
//! 100 W package budget (see DESIGN.md's calibration notes).

use hcapp_power_model::FrequencyModel;
use hcapp_sim_core::units::{Hertz, Volt, Watt};

/// Static configuration of the CPU chiplet.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuConfig {
    /// Number of cores (Table 2: 8).
    pub cores: usize,
    /// L1 data cache per core in kB (Table 2: 32).
    pub l1_kb: u32,
    /// L2 cache per core in kB (Table 2: 256).
    pub l2_kb: u32,
    /// Maximum core frequency (Table 2: 2 GHz).
    pub f_max: Hertz,
    /// Minimum core frequency (Table 2: 800 MHz).
    pub f_min: Hertz,
    /// Device threshold voltage for the frequency model.
    pub v_threshold: Volt,
    /// Voltage at which `f_max` is reached.
    pub v_fmax: Volt,
    /// Nominal (design/calibration) voltage.
    pub v_nominal: Volt,
    /// Lowest safe core voltage (undervoltage protection).
    pub v_min: Volt,
    /// Highest safe core voltage (overvoltage protection).
    pub v_max: Volt,
    /// Per-core peak dynamic power at `v_nominal`, activity 1.0.
    pub core_peak_dynamic: Watt,
    /// Per-core leakage at `v_nominal`.
    pub core_leakage: Watt,
    /// Uncore (L3 slice, ring, memory controller) peak dynamic power at
    /// `v_nominal` — scaled by memory traffic.
    pub uncore_peak_dynamic: Watt,
    /// Uncore leakage at `v_nominal`.
    pub uncore_leakage: Watt,
    /// Relative std-dev of the slowly-varying per-core activity jitter.
    pub core_jitter_std: f64,
    /// How often the per-core jitter is resampled, in nanoseconds.
    pub jitter_resample_ns: u64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            cores: 8,
            l1_kb: 32,
            l2_kb: 256,
            f_max: Hertz::from_ghz(2.0),
            f_min: Hertz::from_mhz(800.0),
            v_threshold: Volt::new(0.50),
            v_fmax: Volt::new(1.25),
            v_nominal: Volt::new(1.00),
            v_min: Volt::new(0.60),
            v_max: Volt::new(1.30),
            core_peak_dynamic: Watt::new(6.5),
            core_leakage: Watt::new(0.8),
            uncore_peak_dynamic: Watt::new(4.0),
            uncore_leakage: Watt::new(2.0),
            core_jitter_std: 0.05,
            jitter_resample_ns: 50_000,
        }
    }
}

impl CpuConfig {
    /// The frequency model the cores share.
    pub fn frequency_model(&self) -> FrequencyModel {
        FrequencyModel::new(self.v_threshold, self.v_fmax, self.f_min, self.f_max)
    }

    /// Theoretical peak chiplet power at voltage `v` (all cores at activity
    /// 1.0, uncore saturated) — used for calibration checks.
    pub fn peak_power_at(&self, v: Volt) -> Watt {
        use hcapp_power_model::ComponentPowerModel;
        let fm = self.frequency_model();
        let core = ComponentPowerModel::calibrated(
            fm.clone(),
            self.v_nominal,
            self.core_peak_dynamic,
            self.core_leakage,
        );
        let uncore = ComponentPowerModel::calibrated(
            fm,
            self.v_nominal,
            self.uncore_peak_dynamic,
            self.uncore_leakage,
        );
        core.power(v, 1.0) * self.cores as f64 + uncore.power(v, 1.0)
    }

    /// Validate invariants (positive sizes, ordered voltage points).
    ///
    /// # Panics
    /// Panics on an invalid configuration.
    pub fn validate(&self) {
        assert!(self.cores > 0, "need at least one core");
        assert!(
            self.v_min.value() <= self.v_nominal.value()
                && self.v_nominal.value() <= self.v_max.value(),
            "nominal voltage outside [v_min, v_max]"
        );
        assert!(self.core_jitter_std >= 0.0);
        assert!(self.jitter_resample_ns > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_2() {
        let c = CpuConfig::default();
        assert_eq!(c.cores, 8);
        assert_eq!(c.l1_kb, 32);
        assert_eq!(c.l2_kb, 256);
        assert_eq!(c.f_max, Hertz::from_ghz(2.0));
        assert_eq!(c.f_min, Hertz::from_mhz(800.0));
        c.validate();
    }

    #[test]
    fn peak_power_in_calibration_band() {
        // At nominal voltage the chiplet should peak in the 55–70 W band —
        // a CPU-chiplet share of the 100 W package (DESIGN.md).
        let c = CpuConfig::default();
        let p = c.peak_power_at(c.v_nominal).value();
        assert!((55.0..=70.0).contains(&p), "peak {p} W out of band");
    }

    #[test]
    fn peak_power_monotone_in_voltage() {
        let c = CpuConfig::default();
        let lo = c.peak_power_at(Volt::new(0.8)).value();
        let hi = c.peak_power_at(Volt::new(1.2)).value();
        assert!(lo < hi);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_invalid() {
        let c = CpuConfig {
            cores: 0,
            ..CpuConfig::default()
        };
        c.validate();
    }
}

//! The per-core interval model.
//!
//! Each core executes the chiplet's shared workload phase with its own
//! slowly-varying activity jitter. Per tick it produces the three outputs
//! the rest of the system consumes: power draw, work progress rate, and the
//! measured IPC fraction that drives the CAPP-style local controller.

use hcapp_power_model::ComponentPowerModel;
use hcapp_sim_core::rng::DeterministicRng;
use hcapp_sim_core::time::SimDuration;
use hcapp_sim_core::units::{Volt, Watt};
use hcapp_workloads::phase::{progress_rate, PhaseSample};

/// Measured IPC as a fraction of the core's peak IPC.
///
/// `activity` is the fraction of cycles the program could issue; the memory
/// term models issue slots lost to stalls that worsen as the core outruns
/// memory: `IPC/IPC_peak = a / (1 + m·f/f_nom)`.
#[inline]
pub fn ipc_fraction(sample: PhaseSample, f_ratio: f64) -> f64 {
    sample.activity / (1.0 + sample.mem_intensity * f_ratio)
}

/// One core's outputs for a tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreStep {
    /// Power drawn this tick.
    pub power: Watt,
    /// Work completed this tick in nominal nanoseconds.
    pub work_ns: f64,
    /// Measured IPC fraction (local-controller input).
    pub ipc_fraction: f64,
}

/// A single CPU core.
#[derive(Debug, Clone)]
pub struct Core {
    model: ComponentPowerModel,
    /// Nominal frequency used to normalize `f_ratio` (the frequency at the
    /// calibration voltage).
    f_nominal: f64,
    /// Current multiplicative activity jitter.
    jitter: f64,
    jitter_std: f64,
    /// Ticks until the jitter is resampled.
    jitter_countdown: u64,
    jitter_period_ticks: u64,
    rng: DeterministicRng,
}

impl Core {
    /// Create a core.
    ///
    /// `f_nominal_hz` is the frequency at the calibration voltage (work
    /// rates are normalized to it). Jitter is resampled every
    /// `jitter_period_ticks` ticks from `N(1, jitter_std)`.
    pub fn new(
        model: ComponentPowerModel,
        f_nominal_hz: f64,
        jitter_std: f64,
        jitter_period_ticks: u64,
        rng: DeterministicRng,
    ) -> Self {
        assert!(f_nominal_hz > 0.0, "non-positive nominal frequency");
        assert!(jitter_period_ticks > 0, "zero jitter period");
        let mut core = Core {
            model,
            f_nominal: f_nominal_hz,
            jitter: 1.0,
            jitter_std,
            jitter_countdown: 0,
            jitter_period_ticks,
            rng,
        };
        core.resample_jitter();
        core
    }

    fn resample_jitter(&mut self) {
        self.jitter = if self.jitter_std > 0.0 {
            self.rng.normal(1.0, self.jitter_std).clamp(0.5, 1.5)
        } else {
            1.0
        };
        self.jitter_countdown = self.jitter_period_ticks;
    }

    /// Advance the core one tick at supply voltage `v` running `sample`.
    pub fn step(&mut self, v: Volt, sample: PhaseSample, dt: SimDuration) -> CoreStep {
        if self.jitter_countdown == 0 {
            self.resample_jitter();
        }
        self.jitter_countdown -= 1;

        let f = self.model.frequency(v);
        let f_ratio = f.value() / self.f_nominal;
        let activity = (sample.activity * self.jitter).clamp(0.0, 1.0);
        let jittered = PhaseSample {
            activity,
            mem_intensity: sample.mem_intensity,
        };
        let power = self.model.power(v, activity);
        let work_ns = progress_rate(jittered, f_ratio) * dt.as_nanos() as f64
            * if activity > 0.0 { 1.0 } else { 0.0 };
        CoreStep {
            power,
            work_ns,
            ipc_fraction: ipc_fraction(jittered, f_ratio),
        }
    }

    /// Advance one tick with a precomputed operating point for `v`.
    ///
    /// The quantum-stepper kernel computes `(f, leak) =
    /// model.operating_point(v)` once per distinct voltage and shares it
    /// across every core at that voltage; this must stay bit-identical to
    /// [`Core::step`] (pinned by the `step_into_matches_step` tests), so
    /// any change to `step` has to be mirrored here.
    pub fn step_at(
        &mut self,
        v: Volt,
        f: hcapp_sim_core::units::Hertz,
        leak: Watt,
        sample: PhaseSample,
        dt: SimDuration,
    ) -> CoreStep {
        if self.jitter_countdown == 0 {
            self.resample_jitter();
        }
        self.jitter_countdown -= 1;

        let f_ratio = f.value() / self.f_nominal;
        let activity = (sample.activity * self.jitter).clamp(0.0, 1.0);
        let jittered = PhaseSample {
            activity,
            mem_intensity: sample.mem_intensity,
        };
        let power = self.model.power_at(v, f, leak, activity);
        let work_ns = progress_rate(jittered, f_ratio) * dt.as_nanos() as f64
            * if activity > 0.0 { 1.0 } else { 0.0 };
        CoreStep {
            power,
            work_ns,
            ipc_fraction: ipc_fraction(jittered, f_ratio),
        }
    }

    /// The core's power model (for reporting).
    pub fn model(&self) -> &ComponentPowerModel {
        &self.model
    }
}

impl hcapp_sim_core::state::Snapshot for Core {
    fn save_state(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        w.f64("core.jitter", self.jitter);
        w.u64("core.jitter_countdown", self.jitter_countdown);
        self.rng.save_state(w);
    }

    fn load_state(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        self.jitter = r.f64("core.jitter")?;
        self.jitter_countdown = r.u64("core.jitter_countdown")?;
        self.rng.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CpuConfig;
    use hcapp_power_model::ComponentPowerModel;
    use hcapp_sim_core::assert_close;

    fn test_core(jitter_std: f64) -> Core {
        let cfg = CpuConfig::default();
        let model = ComponentPowerModel::calibrated(
            cfg.frequency_model(),
            cfg.v_nominal,
            cfg.core_peak_dynamic,
            cfg.core_leakage,
        );
        let f_nom = model.frequency(cfg.v_nominal).value();
        Core::new(model, f_nom, jitter_std, 500, DeterministicRng::new(3))
    }

    fn busy() -> PhaseSample {
        PhaseSample {
            activity: 1.0,
            mem_intensity: 0.0,
        }
    }

    #[test]
    fn nominal_step_matches_calibration() {
        let mut c = test_core(0.0);
        let s = c.step(Volt::new(1.0), busy(), SimDuration::from_nanos(100));
        assert_close!(s.power.value(), 6.5 + 0.8, 1e-9);
        // Compute-bound at nominal frequency: work = dt.
        assert_close!(s.work_ns, 100.0, 1e-9);
        assert_close!(s.ipc_fraction, 1.0, 1e-9);
    }

    #[test]
    fn higher_voltage_more_work_more_power() {
        let mut c = test_core(0.0);
        let dt = SimDuration::from_nanos(100);
        let lo = c.step(Volt::new(0.9), busy(), dt);
        let hi = c.step(Volt::new(1.1), busy(), dt);
        assert!(hi.power.value() > lo.power.value());
        assert!(hi.work_ns > lo.work_ns);
    }

    #[test]
    fn memory_bound_caps_ipc_and_work() {
        let mut c = test_core(0.0);
        let dt = SimDuration::from_nanos(100);
        let mem = PhaseSample {
            activity: 1.0,
            mem_intensity: 0.8,
        };
        let lo = c.step(Volt::new(1.0), mem, dt);
        let hi = c.step(Volt::new(1.25), mem, dt);
        // Frequency rises 1.0 → 1.5 GHz-equivalent ratio but work gains less
        // than proportionally and measured IPC drops.
        let f_gain = 1.5;
        assert!(hi.work_ns / lo.work_ns < f_gain);
        assert!(hi.ipc_fraction < lo.ipc_fraction);
    }

    #[test]
    fn idle_core_draws_leakage_only_and_does_no_work() {
        let mut c = test_core(0.0);
        let s = c.step(Volt::new(1.0), PhaseSample::IDLE, SimDuration::from_nanos(100));
        assert_close!(s.power.value(), 0.8, 1e-9);
        assert_close!(s.work_ns, 0.0, 1e-12);
        assert_close!(s.ipc_fraction, 0.0, 1e-12);
    }

    #[test]
    fn jitter_varies_but_is_bounded() {
        let mut c = test_core(0.1);
        let dt = SimDuration::from_nanos(100);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        // Step across several jitter periods.
        for _ in 0..5_000 {
            let s = c.step(Volt::new(1.0), busy(), dt);
            min = min.min(s.power.value());
            max = max.max(s.power.value());
        }
        assert!(max > min, "jitter should vary power");
        // activity clamp keeps power within [0.5, 1.5]× dynamic + leakage.
        assert!(min >= 0.5 * 6.5 + 0.8 - 1e-6);
        assert!(max <= 1.0 * 6.5 + 0.8 + 1e-6); // activity clamped at 1.0
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = test_core(0.08);
        let mut b = test_core(0.08);
        let dt = SimDuration::from_nanos(100);
        for _ in 0..2_000 {
            let sa = a.step(Volt::new(1.0), busy(), dt);
            let sb = b.step(Volt::new(1.0), busy(), dt);
            assert_eq!(sa, sb);
        }
    }
}

//! Interval-style CPU chiplet simulator.
//!
//! Stands in for the paper's Sniper (interval simulation) + McPAT (power)
//! stack (§4.2). The chiplet runs one PARSEC-class workload program shared
//! by its eight cores (PARSEC apps are data-parallel with barrier-coupled
//! phases, which is what makes package power swing at the *program*
//! timescale in Figure 1), with slowly-varying per-core jitter so cores are
//! not identical — that per-core variation is what the CAPP-style local
//! controllers react to.
//!
//! Every tick the chiplet receives one supply voltage per core (domain
//! voltage × that core's local ratio), and reports:
//! * total chiplet power (core dynamic + core leakage + uncore),
//! * per-core measured IPC fraction (the local-controller metric),
//! * program work completed (the performance metric).
//!
//! * [`config`] — Table 2's CPU column plus power calibration.
//! * [`core`] — the per-core interval model.
//! * [`chiplet`] — the 8-core chiplet with its shared workload program.
//! * [`mcpat`] — McPAT-style energy breakdown by block.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod chiplet;
pub mod config;
pub mod core;
pub mod mcpat;

pub use chiplet::CpuChiplet;
pub use config::CpuConfig;
pub use core::{Core, CoreStep};
pub use mcpat::PowerBreakdown;

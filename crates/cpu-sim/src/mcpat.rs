//! McPAT-style power/energy breakdown.
//!
//! The paper uses McPAT to turn Sniper's activity into power. The actual
//! accumulator is the shared [`hcapp_power_model::breakdown::PowerBreakdown`]
//! (GPUWattch reports the same split for the GPU); this module re-exports it
//! under the CPU stack's name.

pub use hcapp_power_model::breakdown::PowerBreakdown;

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::time::SimDuration;
    use hcapp_sim_core::units::Watt;

    #[test]
    fn reexport_is_usable() {
        let mut b = PowerBreakdown::new();
        b.record(
            Watt::new(1.0),
            Watt::new(1.0),
            Watt::new(1.0),
            SimDuration::from_millis(1),
        );
        assert!(b.total_joules() > 0.0);
    }
}

//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! None of these are paper figures; they justify the knobs the reproduction
//! introduces (guardband policy, overshoot protection, step-limited control
//! actions) and the paper's own design choices (local controllers, §3.3;
//! the adversarial accelerator discussion, §3.3.3; the control-period
//! continuum between the three schemes, §4.6).

use hcapp::coordinator::RunConfig;
use hcapp::limits::PowerLimit;
use hcapp::outcome::RunOutcome;
use hcapp::parallel::run_all;
use hcapp::scheme::ControlScheme;
use hcapp::system::SystemConfig;
use hcapp_sim_core::report::Table;
use hcapp_sim_core::time::SimDuration;
use hcapp_workloads::combos::{combo_by_name, combo_suite};

use crate::config::ExperimentConfig;

fn worst_and_mean(outs: &[RunOutcome], limit: &PowerLimit) -> (f64, f64) {
    let ratios: Vec<f64> = outs
        .iter()
        .map(|o| o.max_ratio(limit).unwrap_or(0.0))
        .collect();
    let worst = ratios.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let ppe = outs.iter().map(|o| o.ppe(limit.budget)).sum::<f64>() / outs.len() as f64;
    (worst, ppe)
}

/// Guardband sweep: how much headroom does the 20 µs window actually need?
///
/// For each candidate target fraction, run the whole suite under HCAPP and
/// report the worst-case max-power ratio and the average PPE. The shipped
/// guardband (0.84) is the largest fraction that keeps the worst case under
/// 1.0 — more headroom wastes PPE, less violates the limit.
pub fn guardband_sweep(cfg: &ExperimentConfig) -> Table {
    let limit = PowerLimit::package_pin();
    let fractions = [0.78, 0.81, 0.84, 0.87, 0.90, 0.95, 1.00];
    let mut t = Table::new(
        "Ablation: guardband fraction vs worst 20 us max-power and PPE",
        &["target fraction", "worst max/limit", "avg PPE", "legal?"],
    );
    for &frac in &fractions {
        let jobs: Vec<_> = combo_suite()
            .iter()
            .map(|&combo| {
                let sys = SystemConfig::paper_system(combo, cfg.seed);
                let run = RunConfig::new(
                    cfg.duration,
                    ControlScheme::Hcapp,
                    limit.budget * frac,
                );
                (sys, run)
            })
            .collect();
        let outs = run_all(jobs, cfg.workers);
        let (worst, ppe) = worst_and_mean(&outs, &limit);
        t.add_row(vec![
            format!("{frac:.2}"),
            format!("{worst:.3}"),
            format!("{:.1}%", ppe * 100.0),
            if worst <= 1.0 { "yes" } else { "no" }.into(),
        ]);
    }
    t.write_csv(cfg.csv_path("ablation_guardband"))
        .expect("write csv");
    t
}

/// Control-period sweep: the continuum between HCAPP (1 µs), RAPL-like
/// (100 µs) and SW-like (10 ms) — §4.6's "importance of fast adaptation
/// time" as a curve instead of three points.
pub fn period_sweep(cfg: &ExperimentConfig) -> Table {
    let limit = PowerLimit::off_package_vr();
    let periods_us: [u64; 7] = [1, 5, 20, 100, 500, 2_000, 10_000];
    let combo = combo_by_name("Hi-Hi").expect("combo");
    let mut t = Table::new(
        "Ablation: control period vs 1 ms max-power and PPE (Hi-Hi)",
        &["period", "max/limit", "PPE"],
    );
    let jobs: Vec<_> = periods_us
        .iter()
        .map(|&us| {
            let sys = SystemConfig::paper_system(combo, cfg.seed);
            let scheme = ControlScheme::CustomPeriod(SimDuration::from_micros(us));
            (sys, RunConfig::new(cfg.duration, scheme, limit.guardbanded_target()))
        })
        .collect();
    let outs = run_all(jobs, cfg.workers);
    for (&us, out) in periods_us.iter().zip(&outs) {
        t.add_row(vec![
            format!("{} us", us),
            format!("{:.3}", out.max_ratio(&limit).unwrap_or(0.0)),
            format!("{:.1}%", out.ppe(limit.budget) * 100.0),
        ]);
    }
    t.write_csv(cfg.csv_path("ablation_period")).expect("write csv");
    t
}

/// Local controllers on/off: §3.3's claim that IPC-guided local ratios use
/// power more efficiently. Same global control, same target; with the local
/// level disabled every unit takes the full domain voltage.
pub fn local_controller_ablation(cfg: &ExperimentConfig) -> Table {
    let limit = PowerLimit::package_pin();
    let mut t = Table::new(
        "Ablation: local controllers on vs off (HCAPP, 20 us limit)",
        &["combo", "speedup with local", "speedup without", "delta"],
    );
    let combos = combo_suite();
    let mut jobs = Vec::new();
    for &combo in &combos {
        // Baseline for speedups.
        jobs.push((
            SystemConfig::paper_system(combo, cfg.seed),
            RunConfig::new(
                cfg.duration,
                ControlScheme::fixed_baseline(),
                limit.guardbanded_target(),
            ),
        ));
    }
    for enabled in [true, false] {
        for &combo in &combos {
            let mut sys = SystemConfig::paper_system(combo, cfg.seed);
            sys.local_controllers_enabled = enabled;
            jobs.push((
                sys,
                RunConfig::new(cfg.duration, ControlScheme::Hcapp, limit.guardbanded_target()),
            ));
        }
    }
    let outs = run_all(jobs, cfg.workers);
    let (base, rest) = outs.split_at(combos.len());
    let (with_local, without_local) = rest.split_at(combos.len());
    let mut sum_with = 0.0;
    let mut sum_without = 0.0;
    for (i, combo) in combos.iter().enumerate() {
        let sw = with_local[i].speedup_vs(&base[i]);
        let so = without_local[i].speedup_vs(&base[i]);
        sum_with += sw;
        sum_without += so;
        t.add_row(vec![
            combo.name.to_string(),
            format!("{sw:.3}x"),
            format!("{so:.3}x"),
            format!("{:+.1}%", (sw / so - 1.0) * 100.0),
        ]);
    }
    let n = combos.len() as f64;
    t.add_row(vec![
        "Ave.".into(),
        format!("{:.3}x", sum_with / n),
        format!("{:.3}x", sum_without / n),
        format!("{:+.1}%", (sum_with / sum_without - 1.0) * 100.0),
    ]);
    t.write_csv(cfg.csv_path("ablation_local")).expect("write csv");
    t
}

/// §3.3.3's adversarial accelerator: a local controller that always demands
/// every volt. The global controller must still hold the package limit.
pub fn adversarial_accel(cfg: &ExperimentConfig) -> Table {
    let limit = PowerLimit::package_pin();
    let mut t = Table::new(
        "Ablation: adversarial accelerator local controller (HCAPP, 20 us limit)",
        &["combo", "max/limit (pass-through)", "max/limit (adversarial)", "both legal?"],
    );
    let combos = combo_suite();
    let mut jobs = Vec::new();
    for adversarial in [false, true] {
        for &combo in &combos {
            let mut sys = SystemConfig::paper_system(combo, cfg.seed);
            if adversarial {
                sys = sys.with_adversarial_accel();
            }
            jobs.push((
                sys,
                RunConfig::new(cfg.duration, ControlScheme::Hcapp, limit.guardbanded_target()),
            ));
        }
    }
    let outs = run_all(jobs, cfg.workers);
    let (normal, adv) = outs.split_at(combos.len());
    for (i, combo) in combos.iter().enumerate() {
        let rn = normal[i].max_ratio(&limit).unwrap_or(0.0);
        let ra = adv[i].max_ratio(&limit).unwrap_or(0.0);
        t.add_row(vec![
            combo.name.to_string(),
            format!("{rn:.3}"),
            format!("{ra:.3}"),
            if rn <= 1.0 && ra <= 1.0 { "yes" } else { "NO" }.into(),
        ]);
    }
    t.write_csv(cfg.csv_path("ablation_adversarial"))
        .expect("write csv");
    t
}

/// Overshoot protection on/off: without the asymmetric response, quiet-phase
/// headroom lets bursts through the 20 µs window (how Figure 4's HCAPP bar
/// would look without it).
pub fn overshoot_protection_ablation(cfg: &ExperimentConfig) -> Table {
    let limit = PowerLimit::package_pin();
    let mut t = Table::new(
        "Ablation: overshoot protection on vs off (HCAPP, 20 us limit)",
        &["combo", "max/limit (on)", "max/limit (off)"],
    );
    let combos = combo_suite();
    let mut jobs = Vec::new();
    for protected in [true, false] {
        for &combo in &combos {
            let mut sys = SystemConfig::paper_system(combo, cfg.seed);
            if !protected {
                sys.pid.overshoot_kp_boost = 1.0;
                sys.pid.overshoot_integral_decay = 1.0;
            }
            jobs.push((
                sys,
                RunConfig::new(cfg.duration, ControlScheme::Hcapp, limit.guardbanded_target()),
            ));
        }
    }
    let outs = run_all(jobs, cfg.workers);
    let (on, off) = outs.split_at(combos.len());
    for (i, combo) in combos.iter().enumerate() {
        t.add_row(vec![
            combo.name.to_string(),
            format!("{:.3}", on[i].max_ratio(&limit).unwrap_or(0.0)),
            format!("{:.3}", off[i].max_ratio(&limit).unwrap_or(0.0)),
        ]);
    }
    t.write_csv(cfg.csv_path("ablation_overshoot"))
        .expect("write csv");
    t
}

/// §6's future-work software controller: the dynamic backlog policy versus
/// hardware-only HCAPP, measured as Eq. 3 speedup against the same baseline.
pub fn dynamic_software_policy(cfg: &ExperimentConfig) -> Table {
    use hcapp::coordinator::SoftwareConfig;
    let limit = PowerLimit::package_pin();
    let combos = combo_suite();
    let mut jobs = Vec::new();
    for sw in [SoftwareConfig::None, SoftwareConfig::DynamicBacklog] {
        for &combo in &combos {
            jobs.push((
                SystemConfig::paper_system(combo, cfg.seed),
                RunConfig::new(cfg.duration, ControlScheme::Hcapp, limit.guardbanded_target())
                    .with_software(sw),
            ));
        }
    }
    let outs = run_all(jobs, cfg.workers);
    let (plain, dynamic) = outs.split_at(combos.len());
    let mut t = Table::new(
        "Extension: dynamic backlog software policy vs hardware-only HCAPP",
        &["combo", "geomean work ratio (dynamic/plain)", "slowest-component ratio"],
    );
    for (i, combo) in combos.iter().enumerate() {
        let geo = dynamic[i].speedup_vs(&plain[i]);
        let worst = dynamic[i]
            .component_speedups(&plain[i])
            .into_iter()
            .map(|(_, s)| s)
            .fold(f64::INFINITY, f64::min);
        t.add_row(vec![
            combo.name.to_string(),
            format!("{geo:.3}x"),
            format!("{worst:.3}x"),
        ]);
    }
    t.write_csv(cfg.csv_path("ablation_dynamic_sw"))
        .expect("write csv");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guardband_monotonicity() {
        // Looser targets must not reduce the worst max-power ratio.
        let cfg = ExperimentConfig::quick(4);
        let t = guardband_sweep(&cfg);
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn adversarial_accel_still_capped() {
        let cfg = ExperimentConfig::quick(4);
        let t = adversarial_accel(&cfg);
        let rendered = t.render();
        assert!(
            !rendered.contains("NO"),
            "adversarial accel broke the cap: {rendered}"
        );
    }

    #[test]
    fn period_sweep_runs() {
        let cfg = ExperimentConfig::quick(4);
        let t = period_sweep(&cfg);
        assert_eq!(t.len(), 7);
    }
}

//! Run every ablation study (guardband, control period, local controllers,
//! adversarial accelerator, overshoot protection, dynamic software policy).
fn main() {
    let cfg = hcapp_experiments::ExperimentConfig::from_env();
    std::fs::create_dir_all(&cfg.out_dir).expect("create results dir");
    use hcapp_experiments::ablations as ab;
    for table in [
        ab::guardband_sweep(&cfg),
        ab::period_sweep(&cfg),
        ab::local_controller_ablation(&cfg),
        ab::adversarial_accel(&cfg),
        ab::overshoot_protection_ablation(&cfg),
        ab::dynamic_software_policy(&cfg),
    ] {
        println!("{}", table.render());
    }
}

//! Regenerate every table and figure in sequence (the full reproduction).
fn main() {
    let cfg = hcapp_experiments::ExperimentConfig::from_env();
    std::fs::create_dir_all(&cfg.out_dir).expect("create results dir");
    use hcapp_experiments::{figures, scaling, summary, tables};
    let t0 = std::time::Instant::now();
    for table in [
        tables::table1(&cfg),
        tables::table2(&cfg),
        tables::table3(&cfg),
        figures::fig01::run(&cfg),
        figures::fig02::run(&cfg),
        figures::fig03::run(&cfg),
        figures::fig04::run(&cfg),
        figures::fig05::run(&cfg),
        figures::fig06::run(&cfg),
        figures::fig07::run(&cfg),
        figures::fig08::run(&cfg),
        figures::fig09::run(&cfg),
        figures::fig10::run(&cfg),
        summary::run(&cfg),
        scaling::run(&cfg),
        hcapp_experiments::robustness::run(&cfg),
        hcapp_experiments::faults::run(&cfg),
        hcapp_experiments::soak::run(&cfg),
    ] {
        println!("{}", table.render());
    }
    eprintln!("total wall time: {:.1}s", t0.elapsed().as_secs_f64());
}

//! Wall-clock bench of the executor and cache paths, JSON-reported so the
//! perf trajectory is tracked across PRs (`scripts/bench_smoke.sh` runs
//! this in smoke mode from `scripts/check.sh`).
//!
//! Three comparisons, matching the PR acceptance criteria:
//!
//! 1. **Serial vs pooled at the paper's 1 µs quantum** on a scaled
//!    package — the pooled executor's per-worker batched replies are what
//!    make it competitive at this quantum (dynamic schemes re-plan every
//!    quantum, so multi-quantum batching cannot engage; the win comes from
//!    collapsing one reply per *domain* into one reply per *worker*).
//! 2. **Per-quantum vs batched dispatch** on the pooled executor for the
//!    fixed-voltage baseline (`batch_quanta` 1 vs 32), where whole batches
//!    of quanta really do ship in one message. Run on a coarse tick that
//!    reproduces the paper's 1 µs-quantum dispatch-to-compute ratio, the
//!    regime quantum batching exists for.
//! 3. **Cold vs warm result cache** over a suite sweep — the warm rerun
//!    must replay from disk in a small fraction of the cold wall-clock.
//!
//! Timings use `std::time::Instant`, which is legal here: `experiments` is
//! a host crate, outside simlint L3's library-crate scope, and nothing
//! measured feeds back into simulated time.

use std::time::Instant;

use hcapp::cache::{run_all_cached, RunCache};
use hcapp::coordinator::{RunConfig, Simulation};
use hcapp::limits::PowerLimit;
use hcapp::scheme::ControlScheme;
use hcapp::system::SystemConfig;
use hcapp_experiments::ExperimentConfig;
use hcapp_sim_core::time::SimDuration;
use hcapp_workloads::combos::combo_suite;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Best-of-N wall clock: the minimum is the standard noise filter for
/// short benchmarks (scheduler hiccups only ever make a trial slower).
fn secs_min(trials: u64, mut f: impl FnMut()) -> f64 {
    (0..trials.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn scaled(n_each: usize, ms: u64, scheme: ControlScheme, batch: usize) -> Simulation {
    scaled_with_tick(n_each, ms, scheme, batch, SimDuration::from_nanos(100))
}

/// Like [`scaled`] but with an explicit model tick. The batch comparison
/// uses a coarser tick so each quantum carries less compute and the
/// executor's per-quantum dispatch cost — the thing batching amortizes —
/// is a measurable fraction of the wall clock instead of sub-percent
/// noise under the 1000-tick default quantum.
fn scaled_with_tick(
    n_each: usize,
    ms: u64,
    scheme: ControlScheme,
    batch: usize,
    tick: SimDuration,
) -> Simulation {
    let mut sys = SystemConfig::scaled_system(combo_suite()[3], n_each, n_each, n_each, 7)
        .expect("n_each is clamped to >= 1");
    sys.tick = tick;
    let run = RunConfig::new(
        SimDuration::from_millis(ms),
        scheme,
        PowerLimit::package_pin().guardbanded_target(),
    )
    .with_batch_quanta(batch);
    Simulation::new(sys, run)
}

fn main() {
    // Smoke defaults (~seconds); raise HCAPP_BENCH_MS / HCAPP_BENCH_SCALE
    // for a steadier signal.
    let ms = env_u64("HCAPP_BENCH_MS", 20).max(1);
    let n_each = env_u64("HCAPP_BENCH_SCALE", 4).max(1) as usize;
    // Default to 4 workers even on small hosts: the interesting cost is the
    // per-quantum dispatch/park/unpark cycle of a multi-worker pool, which
    // is exactly what quantum batching amortizes.
    let workers = env_u64("HCAPP_BENCH_WORKERS", 4).max(1) as usize;
    let trials = env_u64("HCAPP_BENCH_TRIALS", 3).max(1);
    let domains = n_each * 3;

    eprintln!(
        "bench_parallel: {ms} ms runs, {domains} domains, {workers} workers, best of {trials}"
    );

    // 1. HCAPP at 1 µs: serial vs pooled (per-worker batched replies).
    let hcapp_serial_s = secs_min(trials, || {
        scaled(n_each, ms, ControlScheme::Hcapp, 1).run();
    });
    let hcapp_pooled_s = secs_min(trials, || {
        scaled(n_each, ms, ControlScheme::Hcapp, 1).run_parallel(workers);
    });

    // 2. Fixed baseline on the pooled executor: per-quantum dispatch
    //    (batch_quanta = 1) vs batched dispatch (the default 32), on a
    //    coarse 10 µs tick: 10 ticks per quantum, the same dispatch-to-
    //    compute ratio the paper's 1 µs control quantum has at the default
    //    100 ns tick, so dispatch cost is actually visible.
    let coarse = SimDuration::from_micros(10);
    let fixed_batch1_s = secs_min(trials, || {
        scaled_with_tick(n_each, ms, ControlScheme::fixed_baseline(), 1, coarse)
            .run_parallel(workers);
    });
    let fixed_batch32_s = secs_min(trials, || {
        scaled_with_tick(n_each, ms, ControlScheme::fixed_baseline(), 32, coarse)
            .run_parallel(workers);
    });

    // 3. Suite sweep, cold cache vs warm cache.
    let cache_dir = std::env::temp_dir().join(format!("hcapp_bench_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let cache = RunCache::new(&cache_dir);
    let jobs = || -> Vec<(SystemConfig, RunConfig)> {
        let limit = PowerLimit::package_pin();
        combo_suite()
            .iter()
            .flat_map(|&combo| {
                ControlScheme::all().into_iter().map(move |scheme| {
                    (
                        SystemConfig::paper_system(combo, 7),
                        RunConfig::new(
                            SimDuration::from_millis(ms),
                            scheme,
                            limit.guardbanded_target(),
                        ),
                    )
                })
            })
            .collect()
    };
    // Cold is necessarily single-shot (the first run populates the cache);
    // warm reruns replay from disk, so best-of-N is fair.
    let sweep_cold_s = secs_min(1, || {
        run_all_cached(jobs(), workers, &cache);
    });
    let sweep_warm_s = secs_min(trials, || {
        run_all_cached(jobs(), workers, &cache);
    });
    let _ = std::fs::remove_dir_all(&cache_dir);

    let json = format!(
        "{{\n  \"schema\": \"hcapp.bench-parallel\",\n  \"version\": 1,\n  \
         \"ms\": {ms},\n  \"domains\": {domains},\n  \"workers\": {workers},\n  \
         \"hcapp_1us_serial_s\": {hcapp_serial_s:.6},\n  \
         \"hcapp_1us_pooled_s\": {hcapp_pooled_s:.6},\n  \
         \"fixed_pooled_batch1_s\": {fixed_batch1_s:.6},\n  \
         \"fixed_pooled_batch32_s\": {fixed_batch32_s:.6},\n  \
         \"sweep_cold_s\": {sweep_cold_s:.6},\n  \
         \"sweep_warm_s\": {sweep_warm_s:.6},\n  \
         \"batched_speedup\": {:.3},\n  \
         \"warm_over_cold\": {:.4}\n}}\n",
        fixed_batch1_s / fixed_batch32_s.max(1e-9),
        sweep_warm_s / sweep_cold_s.max(1e-9),
    );

    let out = ExperimentConfig::from_env().out_dir.join("BENCH_parallel.json");
    if let Some(parent) = out.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
    print!("{json}");

    if fixed_batch32_s >= fixed_batch1_s {
        eprintln!(
            "WARNING: batched dispatch ({fixed_batch32_s:.3}s) did not beat \
             per-quantum dispatch ({fixed_batch1_s:.3}s) — rerun with a \
             larger HCAPP_BENCH_MS for a steadier signal"
        );
    }
    if sweep_warm_s > 0.25 * sweep_cold_s {
        eprintln!(
            "WARNING: warm sweep ({sweep_warm_s:.3}s) took more than 25% of \
             the cold sweep ({sweep_cold_s:.3}s)"
        );
    }
}

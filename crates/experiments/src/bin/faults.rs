//! Fault campaign: HCAPP vs the baselines under identical fault plans.
fn main() {
    let cfg = hcapp_experiments::ExperimentConfig::from_env();
    std::fs::create_dir_all(&cfg.out_dir).expect("create results dir");
    let table = hcapp_experiments::faults::run(&cfg);
    print!("{}", table.render());
}

//! Regenerate Figure 3 (the architecture diagram) from the built system.
fn main() {
    let cfg = hcapp_experiments::ExperimentConfig::from_env();
    std::fs::create_dir_all(&cfg.out_dir).expect("create results dir");
    let table = hcapp_experiments::figures::fig03::run(&cfg);
    print!("{}", table.render());
}

//! Regenerate Figure 08 of the paper. See DESIGN.md's experiment index.
fn main() {
    let cfg = hcapp_experiments::ExperimentConfig::from_env();
    std::fs::create_dir_all(&cfg.out_dir).expect("create results dir");
    let table = hcapp_experiments::figures::fig08::run(&cfg);
    print!("{}", table.render());
    println!("(csv written to {})", cfg.csv_path("fig08").display());
}

//! Long-form fuzz campaign: sweep the determinism contract and the
//! metamorphic paper invariants across many seeded configurations.
//!
//! Environment knobs (same convention as the other experiment bins):
//! `HCAPP_FUZZ_SEED` (default 0xC0FFEE), `HCAPP_FUZZ_CASES` (default 256),
//! `HCAPP_OUT_DIR` (default `results`). The byte-stable campaign log is
//! written to `<out>/fuzz/campaign-<seed>.log`; any shrunk repro is
//! written next to it as an `hcapp.fuzzcase` that `hcapp fuzz --replay`
//! reruns exactly. Exits nonzero on any caught divergence.

use std::path::PathBuf;

use hcapp_fuzz::{run_campaign, CampaignConfig, Plant};

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| {
            let v = v.trim();
            v.strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16).ok())
                .unwrap_or_else(|| v.parse().ok())
        })
        .unwrap_or(default)
}

fn main() {
    let seed = env_u64("HCAPP_FUZZ_SEED", 0xC0FFEE);
    let cases = env_u64("HCAPP_FUZZ_CASES", 256).max(1);
    let out_dir = PathBuf::from(
        std::env::var("HCAPP_OUT_DIR").unwrap_or_else(|_| "results".to_string()),
    )
    .join("fuzz");
    std::fs::create_dir_all(&out_dir).expect("create results dir");

    let report = run_campaign(&CampaignConfig {
        seed,
        cases,
        plant: Plant::None,
    });
    let log_path = out_dir.join(format!("campaign-{seed:#x}.log"));
    std::fs::write(&log_path, &report.log).expect("write campaign log");
    print!("{}", report.log);
    println!("log: {}", log_path.display());

    if !report.clean() {
        for (i, f) in report.findings.iter().enumerate() {
            let path = out_dir.join(format!("finding-{seed:#x}-{i:03}.fuzzcase"));
            std::fs::write(&path, f.shrunk.encode()).expect("write fuzzcase");
            println!("repro {i}: {}", path.display());
        }
        eprintln!(
            "fuzz campaign FAILED: {} of {} cases diverged",
            report.findings.len(),
            report.cases
        );
        std::process::exit(1);
    }
}

//! Run-loop wall-clock profile: serial vs. worker-pool executors.
fn main() {
    let cfg = hcapp_experiments::ExperimentConfig::from_env();
    std::fs::create_dir_all(&cfg.out_dir).expect("create results dir");
    let table = hcapp_experiments::profile::run(&cfg);
    print!("{}", table.render());
}

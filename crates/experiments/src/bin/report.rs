//! Per-scheme control-loop analytics reports (`hcapp.report`): run the
//! Hi-Hi paper system with a mid-run retarget under each control scheme,
//! with the streaming analyzer attached, and write one report per scheme
//! to `results/REPORT_<scheme>.json` plus a side-by-side summary table.
//!
//! This is the report counterpart of the figure binaries: where they
//! regenerate the paper's plots, this regenerates the quantified
//! control-quality numbers (settling, overshoot, steady-state error,
//! over-budget residency) that the analyze gate in `scripts/check.sh`
//! diffs against its committed baseline.
//!
//! Knobs: `HCAPP_REPORT_MS` (run length, default 2), `HCAPP_REPORT_SEED`.

use hcapp::analyze::run_analyzed;
use hcapp::coordinator::RunConfig;
use hcapp::limits::PowerLimit;
use hcapp::scheme::ControlScheme;
use hcapp::system::SystemConfig;
use hcapp_experiments::ExperimentConfig;
use hcapp_sim_core::report::Table;
use hcapp_sim_core::time::{SimDuration, SimTime};
use hcapp_workloads::combos::combo_suite;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let cfg = ExperimentConfig::from_env();
    std::fs::create_dir_all(&cfg.out_dir).expect("create results dir");
    let ms = env_u64("HCAPP_REPORT_MS", 2).max(2);
    let seed = env_u64("HCAPP_REPORT_SEED", 7);

    let limit = PowerLimit::package_pin();
    let target = limit.guardbanded_target();
    let schemes = [
        ("hcapp", ControlScheme::Hcapp),
        ("rapl", ControlScheme::RaplLike),
        ("sw", ControlScheme::SoftwareLike),
    ];

    let mut table = Table::new(
        format!("control-loop analytics, Hi-Hi, {ms} ms, retarget to 80% at t={}ms", ms / 2),
        &[
            "scheme",
            "settling p50 (ns)",
            "overshoot max (W)",
            "steady err (W)",
            "over-budget frac",
        ],
    );
    for (name, scheme) in schemes {
        let sys = SystemConfig::paper_system(combo_suite()[3], seed);
        let run = RunConfig::new(SimDuration::from_millis(ms), scheme, target)
            .with_retarget(SimTime::from_millis(ms / 2), target * 0.8);
        let (_, report) = run_analyzed(sys, run, None);
        let path = cfg.out_dir.join(format!("REPORT_{name}.json"));
        std::fs::write(&path, report.to_json()).expect("write report");
        println!("wrote {}", path.display());
        let m = |k: &str| {
            report
                .get(k)
                .map_or("n/a".to_string(), |v| format!("{v:.3}"))
        };
        table.add_row(vec![
            name.to_string(),
            m("settling_ns_p50"),
            m("overshoot_w_max"),
            m("steady_err_w_mean"),
            m("over_budget_frac"),
        ]);
    }
    print!("{}", table.render());
}

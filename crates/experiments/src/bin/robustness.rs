//! Seed-sensitivity study of the §5.1 aggregates.
fn main() {
    let cfg = hcapp_experiments::ExperimentConfig::from_env();
    std::fs::create_dir_all(&cfg.out_dir).expect("create results dir");
    let table = hcapp_experiments::robustness::run(&cfg);
    print!("{}", table.render());
}

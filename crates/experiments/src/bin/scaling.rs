//! Chiplet-count scaling study: HCAPP vs a centralized-aggregation model.
fn main() {
    let cfg = hcapp_experiments::ExperimentConfig::from_env();
    std::fs::create_dir_all(&cfg.out_dir).expect("create results dir");
    let table = hcapp_experiments::scaling::run(&cfg);
    print!("{}", table.render());
}

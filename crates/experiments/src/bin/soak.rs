//! Chaos soak: kill/resume bit-equivalence across plans and executors.
fn main() {
    let cfg = hcapp_experiments::ExperimentConfig::from_env();
    std::fs::create_dir_all(&cfg.out_dir).expect("create results dir");
    let table = hcapp_experiments::soak::run(&cfg);
    print!("{}", table.render());
}

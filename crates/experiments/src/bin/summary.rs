//! Compute the abstract's headline numbers (paper vs measured).
fn main() {
    let cfg = hcapp_experiments::ExperimentConfig::from_env();
    std::fs::create_dir_all(&cfg.out_dir).expect("create results dir");
    let table = hcapp_experiments::summary::run(&cfg);
    print!("{}", table.render());
}

//! Regenerate Table 1 of the paper.
fn main() {
    let cfg = hcapp_experiments::ExperimentConfig::from_env();
    std::fs::create_dir_all(&cfg.out_dir).expect("create results dir");
    let table = hcapp_experiments::tables::table1(&cfg);
    print!("{}", table.render());
    println!("(csv written to {})", cfg.csv_path("table1").display());
}

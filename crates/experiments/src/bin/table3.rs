//! Regenerate Table 3 of the paper.
fn main() {
    let cfg = hcapp_experiments::ExperimentConfig::from_env();
    std::fs::create_dir_all(&cfg.out_dir).expect("create results dir");
    let table = hcapp_experiments::tables::table3(&cfg);
    print!("{}", table.render());
    println!("(csv written to {})", cfg.csv_path("table3").display());
}

//! Experiment configuration.
//!
//! All experiments share a duration, a seed, a worker count and an output
//! directory. The paper's runs cover roughly 200 ms of simulated time
//! (Figure 1's axis); that is the release default. `HCAPP_DURATION_MS`,
//! `HCAPP_SEED` and `HCAPP_OUT` override from the environment so CI and
//! tests can run abbreviated versions of the exact same code path.

use std::path::PathBuf;

use hcapp_sim_core::time::SimDuration;

/// Shared experiment knobs.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Simulated duration per run.
    pub duration: SimDuration,
    /// Run seed.
    pub seed: u64,
    /// Worker threads for the run-level sweep.
    pub workers: usize,
    /// Directory CSVs are written into.
    pub out_dir: PathBuf,
    /// Memoize runs in `<out_dir>/cache` so re-running an experiment after
    /// touching one scheme only recomputes affected cells. `HCAPP_CACHE=0`
    /// (or `off`) disables; wiping the cache directory is always safe.
    pub cache: bool,
}

impl ExperimentConfig {
    /// The paper-scale configuration (200 ms runs), with environment
    /// overrides applied.
    pub fn from_env() -> Self {
        let ms = std::env::var("HCAPP_DURATION_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(200);
        let seed = std::env::var("HCAPP_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(11);
        let out_dir = std::env::var("HCAPP_OUT")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("results"));
        let cache = !matches!(
            std::env::var("HCAPP_CACHE").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        );
        ExperimentConfig {
            duration: SimDuration::from_millis(ms.max(1)),
            seed,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            out_dir,
            cache,
        }
    }

    /// An abbreviated configuration for tests (a few ms; same code path).
    pub fn quick(ms: u64) -> Self {
        ExperimentConfig {
            duration: SimDuration::from_millis(ms.max(1)),
            seed: 11,
            workers: 2,
            out_dir: std::env::temp_dir().join("hcapp_quick_results"),
            // Tests should exercise the real simulation path, not replay
            // each other's results through a shared temp directory.
            cache: false,
        }
    }

    /// Path for an experiment's CSV output.
    pub fn csv_path(&self, name: &str) -> PathBuf {
        self.out_dir.join(format!("{name}.csv"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config() {
        let c = ExperimentConfig::quick(3);
        assert_eq!(c.duration, SimDuration::from_millis(3));
        assert!(c.csv_path("fig04").to_string_lossy().ends_with("fig04.csv"));
    }

    #[test]
    fn quick_zero_clamps_to_one_ms() {
        assert_eq!(
            ExperimentConfig::quick(0).duration,
            SimDuration::from_millis(1)
        );
    }
}

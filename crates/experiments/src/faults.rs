//! Fault-campaign study: resilience under identical fault plans.
//!
//! Subjects HCAPP, RAPL-like and Software-like control to the *same*
//! seeded [`FaultPlan`] on the Hi-Hi combination and compares what each
//! gives up (PPE versus its own clean run) against what it buys (how long
//! the package stays over budget). HCAPP's 1 µs control quantum gives its
//! degradation layer a proportionally tighter reaction bound than the
//! 100 µs schemes — the same watchdog thresholds, counted in quanta, span
//! 100× less wall-clock time.

use hcapp::coordinator::{RunConfig, Simulation};
use hcapp::limits::PowerLimit;
use hcapp::outcome::RunOutcome;
use hcapp::scheme::ControlScheme;
use hcapp::system::SystemConfig;
use hcapp::DegradedConfig;
use hcapp_faults::FaultPlan;
use hcapp_metrics::{over_cap, ppe_drop};
use hcapp_sim_core::report::Table;
use hcapp_sim_core::time::SimDuration;
use hcapp_workloads::combos::combo_by_name;

use crate::config::ExperimentConfig;

/// Worst-case slew-down stretch from a `vr_slew_derate` fault
/// (1 / `MIN_SLEW_DERATE`).
const SLEW_STRETCH: u32 = 4;

/// One scheme's clean-vs-faulted comparison.
#[derive(Debug, Clone)]
pub struct FaultRow {
    /// The control scheme.
    pub scheme: ControlScheme,
    /// PPE of the clean run.
    pub clean_ppe: f64,
    /// PPE of the faulted run.
    pub faulted_ppe: f64,
    /// Fault episodes injected (identical plan, but per-domain rolls scale
    /// with quantum count, so faster schemes see more).
    pub faults_injected: u64,
    /// Health-state transitions observed by the watchdogs.
    pub health_transitions: u64,
    /// Longest run of consecutive over-budget trace samples.
    pub longest_over: SimDuration,
    /// The scheme's own reaction bound: `reaction_quanta` control periods
    /// stretched by the worst-case slew derate.
    pub bound: SimDuration,
}

impl FaultRow {
    /// PPE given up under the plan.
    pub fn ppe_cost(&self) -> f64 {
        ppe_drop(self.clean_ppe, self.faulted_ppe)
    }

    /// Whether the longest excursion respects the scheme's reaction bound.
    pub fn within_bound(&self) -> bool {
        self.longest_over <= self.bound
    }
}

/// Run the campaign for every dynamic scheme under one moderate plan.
pub fn compute(cfg: &ExperimentConfig) -> Vec<FaultRow> {
    let limit = PowerLimit::package_pin();
    let combo = combo_by_name("Hi-Hi").expect("known combo");
    let plan = FaultPlan::moderate(cfg.seed);
    let degraded = DegradedConfig::default();
    let schemes = [
        ControlScheme::Hcapp,
        ControlScheme::RaplLike,
        ControlScheme::SoftwareLike,
    ];
    let mut rows = Vec::with_capacity(schemes.len());
    for scheme in schemes {
        let go = |faults: Option<FaultPlan>| -> RunOutcome {
            let sys = SystemConfig::paper_system(combo, cfg.seed);
            let mut run = RunConfig::new(cfg.duration, scheme, limit.guardbanded_target())
                .with_trace();
            if let Some(p) = faults {
                run = run.with_faults(p);
            }
            Simulation::new(sys, run).run()
        };
        let clean = go(None);
        let faulted = go(Some(plan.clone()));
        let trace = faulted
            .trace
            .as_ref()
            .expect("invariant: with_trace always records a trace");
        let over = over_cap(trace, limit.budget.value());
        let period = scheme
            .control_period()
            .expect("all campaign schemes are dynamic");
        rows.push(FaultRow {
            scheme,
            clean_ppe: clean.ppe(limit.budget),
            faulted_ppe: faulted.ppe(limit.budget),
            faults_injected: faulted.resilience.faults_injected,
            health_transitions: faulted.resilience.health_transitions,
            longest_over: over.longest,
            bound: period * u64::from(degraded.reaction_quanta() * SLEW_STRETCH),
        });
    }
    rows
}

/// Execute, render and write CSV.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let rows = compute(cfg);
    let mut t = Table::new(
        format!(
            "Fault campaign: moderate plan, seed {}, Hi-Hi, limit 100 W",
            cfg.seed
        ),
        &[
            "scheme",
            "clean PPE",
            "faulted PPE",
            "PPE cost",
            "faults",
            "transitions",
            "longest over",
            "bound",
            "bounded?",
        ],
    );
    for r in &rows {
        t.add_row(vec![
            r.scheme.name().to_string(),
            format!("{:.1}%", r.clean_ppe * 100.0),
            format!("{:.1}%", r.faulted_ppe * 100.0),
            format!("{:.1}%", r.ppe_cost() * 100.0),
            r.faults_injected.to_string(),
            r.health_transitions.to_string(),
            format!("{}", r.longest_over),
            format!("{}", r.bound),
            if r.within_bound() { "yes" } else { "NO" }.into(),
        ]);
    }
    t.write_csv(cfg.csv_path("faults")).expect("write csv");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_bounded_and_costs_little() {
        let cfg = ExperimentConfig::quick(4);
        let rows = compute(&cfg);
        assert_eq!(rows.len(), 3);
        // Rates are per control quantum, so at a 4 ms test duration only
        // HCAPP (1 µs quanta, 4000 rolls) is guaranteed to see episodes;
        // the 100 µs schemes get 40 rolls and may legitimately see none.
        assert!(rows[0].faults_injected > 0, "HCAPP saw no fault episodes");
        for r in &rows {
            assert!(
                r.within_bound(),
                "{}: longest over-budget {} exceeds bound {}",
                r.scheme.name(),
                r.longest_over,
                r.bound
            );
            assert!(
                r.ppe_cost().abs() < 0.25,
                "{}: implausible PPE cost {}",
                r.scheme.name(),
                r.ppe_cost()
            );
        }
        // HCAPP's 1 µs quantum makes its reaction bound the tightest.
        assert!(rows[0].bound < rows[1].bound);
    }
}

//! Figure 1: power trace of the static configuration.
//!
//! "Power usage of heterogeneous system running workloads on all
//! subcomponents in a static configuration normalized to the average power."
//! The paper's trace peaks ≈ 1.6× and dips ≈ 0.65× the average over a
//! ~200 ms run — the volatility that motivates dynamic control. We run the
//! Hi-Hi combo (all subcomponents busy) at the fixed 0.95 V with no local
//! controllers, record the 1 µs package power trace and normalize it to its
//! own mean.

use hcapp::coordinator::{RunConfig, Simulation};
use hcapp::scheme::ControlScheme;
use hcapp::system::SystemConfig;
use hcapp_sim_core::report::{write_series_csv, Table};
use hcapp_sim_core::series::TimeSeries;
use hcapp_sim_core::units::Watt;
use hcapp_workloads::combos::combo_suite;

use crate::config::ExperimentConfig;

/// The normalized trace plus its headline statistics.
pub struct Fig01 {
    /// Power normalized to the run average, 1 µs samples.
    pub normalized: TimeSeries,
    /// Run-average package power (the normalization constant).
    pub average: Watt,
}

impl Fig01 {
    /// Peak of the normalized trace (paper: ≈ 1.6).
    pub fn peak_ratio(&self) -> f64 {
        self.normalized.max().unwrap_or(0.0)
    }

    /// Trough of the normalized trace (paper: ≈ 0.65).
    pub fn trough_ratio(&self) -> f64 {
        self.normalized.min().unwrap_or(0.0)
    }

    /// The implied PPE if pins were provisioned for the observed peak
    /// (the paper's §1 example computes 62.5%).
    pub fn implied_ppe(&self) -> f64 {
        let peak = self.peak_ratio();
        if peak > 0.0 {
            1.0 / peak
        } else {
            0.0
        }
    }
}

/// Compute the figure.
pub fn compute(cfg: &ExperimentConfig) -> Fig01 {
    // Static configuration: fixed voltage, no controllers.
    let combo = combo_suite()[3]; // Hi-Hi: workloads on all subcomponents
    let sys = SystemConfig::paper_system(combo, cfg.seed);
    let run = RunConfig::new(
        cfg.duration,
        ControlScheme::fixed_baseline(),
        Watt::new(100.0),
    )
    .with_trace();
    let out = Simulation::new(sys, run).run();
    let trace = out.trace.expect("trace requested");
    Fig01 {
        normalized: trace.normalized_to_mean(),
        average: out.avg_power,
    }
}

/// Compute, print the summary table and write the series CSV.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let fig = compute(cfg);
    let thin = fig.normalized.thin_to(4_000);
    let (t, v): (Vec<f64>, Vec<f64>) = thin.iter_us().unzip();
    write_series_csv(
        cfg.csv_path("fig01"),
        "time_us",
        &t,
        &[("normalized_power", v.as_slice())],
    )
    .expect("write fig01 csv");

    let mut chart = crate::plot::LineChart::new(
        "Figure 1: static-configuration power, normalized to average",
        "time (us)",
        "power / average",
    );
    chart.add_series("normalized power", t.iter().copied().zip(v.iter().copied()).collect());
    chart
        .write(cfg.out_dir.join("fig01.svg"))
        .expect("write fig01 svg");

    let mut table = Table::new(
        "Figure 1: static-configuration power, normalized to average",
        &["metric", "value", "paper"],
    );
    table.add_row(vec![
        "average power".into(),
        format!("{:.1}", fig.average),
        "(normalization)".into(),
    ]);
    table.add_row(vec![
        "peak / average".into(),
        format!("{:.2}", fig.peak_ratio()),
        "~1.6".into(),
    ]);
    table.add_row(vec![
        "trough / average".into(),
        format!("{:.2}", fig.trough_ratio()),
        "~0.65".into(),
    ]);
    table.add_row(vec![
        "implied PPE at peak-provisioning".into(),
        format!("{:.1}%", fig.implied_ppe() * 100.0),
        "62.5%".into(),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_trace_is_volatile() {
        let fig = compute(&ExperimentConfig::quick(8));
        // Normalized mean is 1 by construction.
        assert!((fig.normalized.mean() - 1.0).abs() < 1e-9);
        // The motivating observation: peaks well above, troughs well below.
        assert!(fig.peak_ratio() > 1.2, "peak {}", fig.peak_ratio());
        assert!(fig.trough_ratio() < 0.85, "trough {}", fig.trough_ratio());
        assert!(fig.implied_ppe() < 0.85);
    }

    #[test]
    fn run_emits_table_and_csv() {
        let cfg = ExperimentConfig::quick(2);
        let table = run(&cfg);
        assert_eq!(table.len(), 4);
        assert!(cfg.csv_path("fig01").exists());
        let _ = std::fs::remove_file(cfg.csv_path("fig01"));
    }
}

//! Figure 2: the Figure 1 trace through different limit windows.
//!
//! "Note that the power peaks seen at the 20 µs time window are not visible
//! at the other time windows. This represents power behavior that
//! firmware-based or software-based controllers could not account for
//! without guardbanding." We pass the static trace through trailing moving
//! averages at the three window lengths and report each view's peak.

use hcapp_sim_core::report::{write_series_csv, Table};
use hcapp_sim_core::series::TimeSeries;
use hcapp_sim_core::time::SimDuration;

use crate::config::ExperimentConfig;
use crate::figures::fig01;

/// The three windowed views of the normalized trace.
pub struct Fig02 {
    /// 20 µs view (the package-pin constraint, grey curve).
    pub w20us: TimeSeries,
    /// 1 ms view (blue curve).
    pub w1ms: TimeSeries,
    /// 10 ms view (red curve).
    pub w10ms: TimeSeries,
}

/// Compute the figure from the Figure 1 trace.
pub fn compute(cfg: &ExperimentConfig) -> Fig02 {
    let fig1 = fig01::compute(cfg);
    let t = &fig1.normalized;
    Fig02 {
        w20us: t.windowed(SimDuration::from_micros(20)),
        w1ms: t.windowed(SimDuration::from_millis(1).min(t.duration())),
        w10ms: t.windowed(SimDuration::from_millis(10).min(t.duration())),
    }
}

/// Compute, print peaks per window and write the multi-series CSV.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let fig = compute(cfg);
    let points = 4_000;
    let a = fig.w20us.thin_to(points);
    let factor = fig.w20us.len().div_ceil(points);
    let b = fig.w1ms.decimate(factor.max(1));
    let c = fig.w10ms.decimate(factor.max(1));
    let (t, va): (Vec<f64>, Vec<f64>) = a.iter_us().unzip();
    let vb: Vec<f64> = b.values()[..t.len().min(b.len())].to_vec();
    let vc: Vec<f64> = c.values()[..t.len().min(c.len())].to_vec();
    let n = t.len().min(vb.len()).min(vc.len());
    write_series_csv(
        cfg.csv_path("fig02"),
        "time_us",
        &t[..n],
        &[
            ("window_20us", &va[..n]),
            ("window_1ms", &vb[..n]),
            ("window_10ms", &vc[..n]),
        ],
    )
    .expect("write fig02 csv");

    let mut chart = crate::plot::LineChart::new(
        "Figure 2: normalized power through the limit time windows",
        "time (us)",
        "power / average",
    );
    for (name, vals) in [("20 us window", &va), ("1 ms window", &vb), ("10 ms window", &vc)] {
        chart.add_series(
            name,
            t[..n].iter().copied().zip(vals[..n].iter().copied()).collect(),
        );
    }
    chart
        .write(cfg.out_dir.join("fig02.svg"))
        .expect("write fig02 svg");

    let mut table = Table::new(
        "Figure 2: normalized power peaks by limit time window",
        &["window", "peak / average", "note"],
    );
    let rows = [
        ("20 us", fig.w20us.max().unwrap_or(0.0), "package-pin constraint"),
        ("1 ms", fig.w1ms.max().unwrap_or(0.0), "off-package VR"),
        ("10 ms", fig.w10ms.max().unwrap_or(0.0), "software timescale"),
    ];
    for (w, peak, note) in rows {
        table.add_row(vec![w.into(), format!("{peak:.3}"), note.into()]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slower_windows_hide_fast_peaks() {
        let fig = compute(&ExperimentConfig::quick(8));
        let p20 = fig.w20us.max().unwrap();
        let p1m = fig.w1ms.max().unwrap();
        let p10m = fig.w10ms.max().unwrap();
        // The figure's whole point: each wider window flattens the peak.
        assert!(p20 > p1m, "20us peak {p20} should exceed 1ms peak {p1m}");
        assert!(p1m >= p10m, "1ms peak {p1m} should be >= 10ms peak {p10m}");
        // And the 10 ms view is essentially the average.
        assert!(p10m < 1.25, "10ms peak {p10m} should be near 1.0");
    }

    #[test]
    fn run_emits_csv() {
        let cfg = ExperimentConfig::quick(2);
        let table = run(&cfg);
        assert_eq!(table.len(), 3);
        assert!(cfg.csv_path("fig02").exists());
        let _ = std::fs::remove_file(cfg.csv_path("fig02"));
    }
}

//! Figure 3: the HCAPP high-level architecture.
//!
//! The paper's Figure 3 is the block diagram of the controller hierarchy.
//! We render the same diagram from the *built* system — global controller
//! and VR at the top, one domain controller per chiplet with its scale and
//! local-controller type, and the unit counts underneath — so the diagram
//! is guaranteed to match the code that runs.

use hcapp::system::{Domain, SystemConfig};
use hcapp_sim_core::report::Table;
use hcapp_workloads::combos::combo_suite;

use crate::config::ExperimentConfig;

/// Render the architecture of `sys` as a table (one row per level/domain).
pub fn render(sys: &SystemConfig) -> Table {
    let mut t = Table::new(
        "Figure 3: HCAPP high-level architecture (as built)",
        &["level", "block", "role", "units"],
    );
    t.add_row(vec![
        "1".into(),
        "global controller + global VR".into(),
        format!(
            "PID on cbrt(P_spec - P_now); output {:.2}-{:.2} V; period per scheme",
            sys.pid.out_min, sys.pid.out_max
        ),
        "1".into(),
    ]);
    for (i, spec) in sys.domains.iter().enumerate() {
        let d = Domain::build(spec, sys, i);
        let mode = match d.ctl.mode() {
            hcapp::controller::domain::DomainMode::Scaled { scale } => {
                format!("scaled x{scale:.2} of global")
            }
            hcapp::controller::domain::DomainMode::Fixed { voltage } => {
                format!("fixed at {voltage}")
            }
        };
        t.add_row(vec![
            "2".into(),
            format!("{} domain controller + VR", d.kind.name()),
            format!("{mode}; priority register (software interface)"),
            "1".into(),
        ]);
        t.add_row(vec![
            "3".into(),
            format!("{} local controllers", d.kind.name()),
            d.local.name().to_string(),
            format!("{}", d.sim.units()),
        ]);
    }
    t.add_row(vec![
        "-".into(),
        "power supply network".into(),
        "the communication fabric: voltage down, current draw up".into(),
        format!("{} branches", sys.domains.len()),
    ]);
    t
}

/// Render the paper system's architecture and write CSV.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let sys = SystemConfig::paper_system(combo_suite()[3], cfg.seed);
    let table = render(&sys);
    table.write_csv(cfg.csv_path("fig03")).expect("write fig03 csv");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagram_matches_the_paper_system() {
        let sys = SystemConfig::paper_system(combo_suite()[0], 1);
        let r = render(&sys).render();
        // Three levels.
        assert!(r.contains("global controller"));
        assert!(r.contains("CPU domain controller"));
        assert!(r.contains("GPU domain controller"));
        assert!(r.contains("SHA domain controller"));
        // The right local controllers with the right unit counts.
        assert!(r.contains("cpu-ipc-static"));
        assert!(r.contains("gpu-ipc-dynamic"));
        assert!(r.contains("pass-through"));
        assert!(r.contains('8'));
        assert!(r.contains("15"));
        // The fabric.
        assert!(r.contains("power supply network"));
    }

    #[test]
    fn memory_domain_appears_as_fixed() {
        let sys = SystemConfig::paper_system_with_memory(combo_suite()[0], 1);
        let r = render(&sys).render();
        assert!(r.contains("MEM domain controller"));
        assert!(r.contains("fixed at"));
    }
}

//! Figure 4: maximum power under the 100 W / 20 µs package-pin limit.
//!
//! Paper result: Fixed Voltage and HCAPP stay below the 1.0 line on every
//! combo; RAPL-like and SW-like HCAPP "greatly exceed the 1.0 mark causing a
//! power failure" and are declared invalid under this limit (§5.1).

use hcapp::limits::PowerLimit;
use hcapp::scheme::ControlScheme;
use hcapp_metrics::violation::classify;
use hcapp_sim_core::report::Table;

use crate::config::ExperimentConfig;
use crate::runner::SuiteRun;

/// Execute the §5.1 sweep (all four schemes, fast limit).
pub fn sweep(cfg: &ExperimentConfig) -> SuiteRun {
    SuiteRun::execute(
        cfg,
        PowerLimit::package_pin(),
        &[
            ControlScheme::Hcapp,
            ControlScheme::RaplLike,
            ControlScheme::SoftwareLike,
        ],
    )
}

/// Build the Figure 4 table from a fast-limit sweep.
pub fn compute(run: &SuiteRun) -> Table {
    let mut table = Table::new(
        "Figure 4: max power / limit under 100 W over 20 us",
        &["combo", "Fixed Voltage", "HCAPP", "RAPL-like", "SW-like"],
    );
    let schemes = [
        ControlScheme::Hcapp,
        ControlScheme::RaplLike,
        ControlScheme::SoftwareLike,
    ];
    for (i, (combo, fixed)) in run.baseline.iter().enumerate() {
        let mut cells = vec![
            combo.name.to_string(),
            format!("{:.3}", fixed.max_ratio(&run.limit).unwrap_or(0.0)),
        ];
        for s in schemes {
            let out = &run.scheme(s).expect("scheme present")[i].1;
            let r = out.max_ratio(&run.limit).unwrap_or(0.0);
            cells.push(format!("{:.3}", r));
        }
        table.add_row(cells);
    }
    // Verdict row (the §5.1 viability call).
    let mut verdict = vec!["viable?".to_string()];
    let fixed_worst = run
        .baseline
        .iter()
        .map(|(_, o)| o.max_ratio(&run.limit).unwrap_or(0.0))
        .fold(f64::NEG_INFINITY, f64::max);
    verdict.push(classify(fixed_worst).marker().to_string());
    for s in schemes {
        let worst = run
            .scheme(s)
            .expect("scheme present")
            .iter()
            .map(|(_, o)| o.max_ratio(&run.limit).unwrap_or(0.0))
            .fold(f64::NEG_INFINITY, f64::max);
        verdict.push(classify(worst).marker().to_string());
    }
    table.add_row(verdict);
    table
}

/// Execute, print and write CSV.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let sweep = sweep(cfg);
    let table = compute(&sweep);
    table.write_csv(cfg.csv_path("fig04")).expect("write fig04 csv");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_limit_viability_matches_paper() {
        // SW-like only acts every 10 ms, so the abbreviated run must still
        // cover several of its control periods.
        let cfg = ExperimentConfig::quick(32);
        let sweep = sweep(&cfg);
        let worst = |rows: &[(hcapp_workloads::combos::Combo, hcapp::outcome::RunOutcome)]| {
            rows.iter()
                .map(|(_, o)| o.max_ratio(&sweep.limit).unwrap())
                .fold(f64::NEG_INFINITY, f64::max)
        };
        let hcapp_worst = worst(sweep.scheme(ControlScheme::Hcapp).unwrap());
        // Fixed and HCAPP respect the package-pin limit on every combo.
        assert!(worst(&sweep.baseline) <= 1.0, "fixed violates");
        assert!(hcapp_worst <= 1.0, "HCAPP violates");
        // RAPL-like greatly exceeds it.
        assert!(
            worst(sweep.scheme(ControlScheme::RaplLike).unwrap()) > 1.1,
            "RAPL-like should violate"
        );
        // SW-like exceeds it too at paper scale; in this abbreviated run it
        // must at least clearly exceed HCAPP's worst case and graze the
        // line (the 200 ms runs recorded in EXPERIMENTS.md cross it).
        let sw_worst = worst(sweep.scheme(ControlScheme::SoftwareLike).unwrap());
        assert!(
            sw_worst > hcapp_worst && sw_worst > 0.97,
            "SW-like worst {sw_worst} should exceed HCAPP worst {hcapp_worst}"
        );
    }
}

//! Figure 5: speedup of HCAPP versus the fixed-voltage baseline under the
//! package-pin limit.
//!
//! Paper result: HCAPP (the only viable dynamic scheme under this limit)
//! speeds execution up by 21% on average across the suite, by using the
//! provisioned pins more efficiently.

use hcapp::limits::PowerLimit;
use hcapp::scheme::ControlScheme;
use hcapp_sim_core::report::Table;
use hcapp_sim_core::stats::arithmetic_mean;

use crate::config::ExperimentConfig;
use crate::runner::SuiteRun;

/// Per-combo Eq. 3 speedups of HCAPP vs fixed, plus the "Ave." value.
pub fn compute(run: &SuiteRun) -> (Table, f64) {
    let hcapp = run.scheme(ControlScheme::Hcapp).expect("HCAPP present");
    let mut table = Table::new(
        "Figure 5: HCAPP speedup vs fixed voltage (0.95 V), 100 W / 20 us",
        &["combo", "speedup (Eq. 3)", "CPU", "GPU", "SHA"],
    );
    let mut totals = Vec::with_capacity(hcapp.len());
    for (combo, out) in hcapp {
        let base = run.baseline_for(combo);
        let per = out.component_speedups(base);
        let s = out.speedup_vs(base);
        totals.push(s);
        table.add_row(vec![
            combo.name.to_string(),
            format!("{s:.3}x"),
            format!("{:.3}x", per[0].1),
            format!("{:.3}x", per[1].1),
            format!("{:.3}x", per[2].1),
        ]);
    }
    let ave = arithmetic_mean(&totals);
    table.add_row(vec![
        "Ave.".into(),
        format!("{ave:.3}x"),
        String::new(),
        String::new(),
        String::new(),
    ]);
    (table, ave)
}

/// Execute, print and write CSV.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let sweep = SuiteRun::execute(cfg, PowerLimit::package_pin(), &[ControlScheme::Hcapp]);
    let (table, _) = compute(&sweep);
    table.write_csv(cfg.csv_path("fig05")).expect("write fig05 csv");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hcapp_speeds_up_the_suite() {
        let cfg = ExperimentConfig::quick(8);
        let sweep = SuiteRun::execute(&cfg, PowerLimit::package_pin(), &[ControlScheme::Hcapp]);
        let (_, ave) = compute(&sweep);
        // Paper: +21%. Band: clearly positive.
        assert!(ave > 1.05, "average speedup {ave} too small");
        assert!(ave < 1.6, "average speedup {ave} implausibly large");
    }
}

//! Figure 6: Provisioned Power Efficiency under the package-pin limit.
//!
//! Paper result: HCAPP raises PPE from 69.1% (fixed voltage) to 79.3% —
//! +10.2% of the provisioned pins put to work — with "very little variance"
//! across the suite because the controller applies many control cycles per
//! run.

use hcapp::limits::PowerLimit;
use hcapp::scheme::ControlScheme;
use hcapp_sim_core::report::Table;
use hcapp_sim_core::stats::arithmetic_mean;

use crate::config::ExperimentConfig;
use crate::runner::SuiteRun;

/// Per-combo PPE of fixed and HCAPP, plus `(fixed_avg, hcapp_avg)`.
pub fn compute(run: &SuiteRun) -> (Table, f64, f64) {
    let hcapp = run.scheme(ControlScheme::Hcapp).expect("HCAPP present");
    let mut table = Table::new(
        "Figure 6: Provisioned Power Efficiency, 100 W / 20 us",
        &["combo", "Fixed Voltage", "HCAPP"],
    );
    let mut fixed_ppes = Vec::new();
    let mut hcapp_ppes = Vec::new();
    for (combo, out) in hcapp {
        let base = run.baseline_for(combo);
        let pf = base.ppe(run.limit.budget);
        let ph = out.ppe(run.limit.budget);
        fixed_ppes.push(pf);
        hcapp_ppes.push(ph);
        table.add_row(vec![
            combo.name.to_string(),
            format!("{:.1}%", pf * 100.0),
            format!("{:.1}%", ph * 100.0),
        ]);
    }
    let fa = arithmetic_mean(&fixed_ppes);
    let ha = arithmetic_mean(&hcapp_ppes);
    table.add_row(vec![
        "Ave.".into(),
        format!("{:.1}%", fa * 100.0),
        format!("{:.1}%", ha * 100.0),
    ]);
    (table, fa, ha)
}

/// Execute, print and write CSV.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let sweep = SuiteRun::execute(cfg, PowerLimit::package_pin(), &[ControlScheme::Hcapp]);
    let (table, _, _) = compute(&sweep);
    table.write_csv(cfg.csv_path("fig06")).expect("write fig06 csv");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hcapp_improves_ppe_with_low_variance() {
        let cfg = ExperimentConfig::quick(8);
        let sweep = SuiteRun::execute(&cfg, PowerLimit::package_pin(), &[ControlScheme::Hcapp]);
        let (_, fixed, hcapp) = compute(&sweep);
        // Paper: 69.1% -> 79.3%.
        assert!(
            hcapp > fixed + 0.05,
            "HCAPP PPE {hcapp} should clearly beat fixed {fixed}"
        );
        assert!((0.70..=0.90).contains(&hcapp), "HCAPP PPE {hcapp} out of band");

        // "Very little variance": per-combo HCAPP PPE within a tight band.
        let rows = sweep.scheme(ControlScheme::Hcapp).unwrap();
        let ppes: Vec<f64> = rows.iter().map(|(_, o)| o.ppe(sweep.limit.budget)).collect();
        let spread = ppes.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - ppes.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread < 0.10, "HCAPP PPE spread {spread} too wide");
    }
}

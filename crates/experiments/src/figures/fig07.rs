//! Figure 7: maximum power under the 100 W / 1 ms off-package VR limit.
//!
//! Paper result: HCAPP is the only dynamic scheme that stays under the
//! limit; RAPL-like narrowly exceeds it (on Const-Burst in the paper) and
//! SW-like exceeds it more broadly — but both are then analyzed anyway "for
//! the sake of analysis" (§5.2).

use hcapp::limits::PowerLimit;
use hcapp::scheme::ControlScheme;
use hcapp_metrics::violation::classify;
use hcapp_sim_core::report::Table;

use crate::config::ExperimentConfig;
use crate::runner::SuiteRun;

/// Execute the §5.2 sweep (three dynamic schemes, slow limit).
pub fn sweep(cfg: &ExperimentConfig) -> SuiteRun {
    SuiteRun::execute(
        cfg,
        PowerLimit::off_package_vr(),
        &[
            ControlScheme::Hcapp,
            ControlScheme::RaplLike,
            ControlScheme::SoftwareLike,
        ],
    )
}

/// Build the Figure 7 table from a slow-limit sweep.
pub fn compute(run: &SuiteRun) -> Table {
    let schemes = [
        ControlScheme::Hcapp,
        ControlScheme::RaplLike,
        ControlScheme::SoftwareLike,
    ];
    let mut table = Table::new(
        "Figure 7: max power / limit under 100 W over 1 ms",
        &["combo", "HCAPP", "RAPL-like", "SW-like"],
    );
    for (i, (combo, _)) in run.baseline.iter().enumerate() {
        let mut cells = vec![combo.name.to_string()];
        for s in schemes {
            let out = &run.scheme(s).expect("scheme present")[i].1;
            cells.push(format!("{:.3}", out.max_ratio(&run.limit).unwrap_or(0.0)));
        }
        table.add_row(cells);
    }
    let mut verdict = vec!["viable?".to_string()];
    for s in schemes {
        let worst = run
            .scheme(s)
            .expect("scheme present")
            .iter()
            .map(|(_, o)| o.max_ratio(&run.limit).unwrap_or(0.0))
            .fold(f64::NEG_INFINITY, f64::max);
        verdict.push(classify(worst).marker().to_string());
    }
    table.add_row(verdict);
    table
}

/// Execute, print and write CSV.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let sweep = sweep(cfg);
    let table = compute(&sweep);
    table.write_csv(cfg.csv_path("fig07")).expect("write fig07 csv");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_limit_viability_matches_paper() {
        let cfg = ExperimentConfig::quick(24);
        let sweep = sweep(&cfg);
        let worst = |s: ControlScheme| {
            sweep
                .scheme(s)
                .unwrap()
                .iter()
                .map(|(_, o)| o.max_ratio(&sweep.limit).unwrap())
                .fold(f64::NEG_INFINITY, f64::max)
        };
        // HCAPP respects the 1 ms limit on every combo.
        assert!(worst(ControlScheme::Hcapp) <= 1.0, "HCAPP violates 1 ms limit");
        // The slower schemes exceed it — RAPL-like narrowly, SW-like too.
        assert!(worst(ControlScheme::RaplLike) > 1.0);
        assert!(
            worst(ControlScheme::RaplLike) < 1.3,
            "RAPL-like violation should be narrow-ish"
        );
        assert!(worst(ControlScheme::SoftwareLike) > 1.0);
    }
}

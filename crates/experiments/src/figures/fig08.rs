//! Figure 8: speedup under the off-package VR limit.
//!
//! Paper result: HCAPP averages 43% speedup, RAPL-like 36%, SW-like shows
//! little benefit; bursty (ferret) combos are the exception where RAPL-like
//! edges out HCAPP because HCAPP throttles the short bursts that RAPL-like
//! never sees in time (§5.2).

use hcapp::scheme::ControlScheme;
use hcapp_sim_core::report::Table;
use hcapp_sim_core::stats::arithmetic_mean;

use crate::config::ExperimentConfig;
use crate::figures::fig07;
use crate::runner::SuiteRun;

/// Build the Figure 8 table; returns the per-scheme "Ave." speedups
/// `(hcapp, rapl, sw)`.
pub fn compute(run: &SuiteRun) -> (Table, f64, f64, f64) {
    let schemes = [
        ControlScheme::Hcapp,
        ControlScheme::RaplLike,
        ControlScheme::SoftwareLike,
    ];
    let mut table = Table::new(
        "Figure 8: speedup vs fixed voltage under 100 W over 1 ms",
        &["combo", "HCAPP", "RAPL-like", "SW-like"],
    );
    let mut aves = [Vec::new(), Vec::new(), Vec::new()];
    for (i, (combo, _)) in run.baseline.iter().enumerate() {
        let base = run.baseline_for(combo);
        let mut cells = vec![combo.name.to_string()];
        for (j, s) in schemes.iter().enumerate() {
            let out = &run.scheme(*s).expect("scheme present")[i].1;
            let sp = out.speedup_vs(base);
            aves[j].push(sp);
            cells.push(format!("{sp:.3}x"));
        }
        table.add_row(cells);
    }
    let h = arithmetic_mean(&aves[0]);
    let r = arithmetic_mean(&aves[1]);
    let s = arithmetic_mean(&aves[2]);
    table.add_row(vec![
        "Ave.".into(),
        format!("{h:.3}x"),
        format!("{r:.3}x"),
        format!("{s:.3}x"),
    ]);
    (table, h, r, s)
}

/// Execute, print and write CSV.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let sweep = fig07::sweep(cfg);
    let (table, _, _, _) = compute(&sweep);
    table.write_csv(cfg.csv_path("fig08")).expect("write fig08 csv");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_ordering_matches_paper() {
        let cfg = ExperimentConfig::quick(24);
        let sweep = fig07::sweep(&cfg);
        let (_, hcapp, rapl, sw) = compute(&sweep);
        // Paper: HCAPP 1.43 > RAPL-like 1.36 >> SW-like.
        assert!(hcapp > rapl, "HCAPP {hcapp} should beat RAPL-like {rapl}");
        assert!(rapl > sw, "RAPL-like {rapl} should beat SW-like {sw}");
        assert!(hcapp > 1.15, "HCAPP speedup {hcapp} too small");
        assert!(sw < hcapp - 0.05, "SW-like {sw} should clearly trail");
    }
}

//! Figure 9: Provisioned Power Efficiency under the off-package VR limit.
//!
//! Paper result: HCAPP averages 93.9% PPE, RAPL-like 79.7%, SW-like 69.2%
//! (below even the fixed baseline — its slow corrections lag the program
//! phases). HCAPP and RAPL-like show little variance across the suite.

use hcapp::scheme::ControlScheme;
use hcapp_sim_core::report::Table;
use hcapp_sim_core::stats::arithmetic_mean;

use crate::config::ExperimentConfig;
use crate::figures::fig07;
use crate::runner::SuiteRun;

/// Build the Figure 9 table; returns the per-scheme average PPEs
/// `(hcapp, rapl, sw, fixed)`.
pub fn compute(run: &SuiteRun) -> (Table, f64, f64, f64, f64) {
    let schemes = [
        ControlScheme::Hcapp,
        ControlScheme::RaplLike,
        ControlScheme::SoftwareLike,
    ];
    let mut table = Table::new(
        "Figure 9: Provisioned Power Efficiency under 100 W over 1 ms",
        &["combo", "HCAPP", "RAPL-like", "SW-like", "Fixed (ref)"],
    );
    let mut aves = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for (i, (combo, fixed)) in run.baseline.iter().enumerate() {
        let mut cells = vec![combo.name.to_string()];
        for (j, s) in schemes.iter().enumerate() {
            let out = &run.scheme(*s).expect("scheme present")[i].1;
            let p = out.ppe(run.limit.budget);
            aves[j].push(p);
            cells.push(format!("{:.1}%", p * 100.0));
        }
        let pf = fixed.ppe(run.limit.budget);
        aves[3].push(pf);
        cells.push(format!("{:.1}%", pf * 100.0));
        table.add_row(cells);
    }
    let h = arithmetic_mean(&aves[0]);
    let r = arithmetic_mean(&aves[1]);
    let s = arithmetic_mean(&aves[2]);
    let f = arithmetic_mean(&aves[3]);
    table.add_row(vec![
        "Ave.".into(),
        format!("{:.1}%", h * 100.0),
        format!("{:.1}%", r * 100.0),
        format!("{:.1}%", s * 100.0),
        format!("{:.1}%", f * 100.0),
    ]);
    (table, h, r, s, f)
}

/// Execute, print and write CSV.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let sweep = fig07::sweep(cfg);
    let (table, _, _, _, _) = compute(&sweep);
    table.write_csv(cfg.csv_path("fig09")).expect("write fig09 csv");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppe_ordering_matches_paper() {
        let cfg = ExperimentConfig::quick(24);
        let sweep = fig07::sweep(&cfg);
        let (_, hcapp, rapl, sw, fixed) = compute(&sweep);
        // Paper: 93.9% > 79.7% > 69.2% ~= fixed 69.1%.
        assert!(hcapp > rapl, "HCAPP {hcapp} should beat RAPL-like {rapl}");
        assert!(rapl > sw, "RAPL-like {rapl} should beat SW-like {sw}");
        assert!(hcapp > 0.85, "HCAPP PPE {hcapp} too low");
        // SW-like lags the phases and lands near (or below) the fixed
        // baseline.
        assert!(
            (sw - fixed).abs() < 0.20,
            "SW-like {sw} should be near fixed {fixed}"
        );
    }
}

//! Figure 10: the software priority interface (§5.3).
//!
//! Three extra suites, each with one component statically prioritized (the
//! other domains de-prioritized by 10% through the domain controllers'
//! priority registers), under the package-pin limit. Reported value: the
//! *prioritized component's* speedup versus the unprioritized HCAPP run.
//! Paper averages: CPU +8.3%, GPU +5.4%, SHA +12%.

use hcapp::coordinator::SoftwareConfig;
use hcapp::limits::PowerLimit;
use hcapp::scheme::ControlScheme;
use hcapp::software::ComponentKind;
use hcapp_sim_core::report::Table;
use hcapp_sim_core::stats::arithmetic_mean;

use crate::config::ExperimentConfig;
use crate::runner::scheme_outcomes;

/// Per-combo prioritized-component speedups for each priority target;
/// returns the table plus the per-component averages `(cpu, gpu, sha)`.
pub fn compute(cfg: &ExperimentConfig) -> (Table, f64, f64, f64) {
    let limit = PowerLimit::package_pin();
    let unprioritized = scheme_outcomes(cfg, ControlScheme::Hcapp, &limit, SoftwareConfig::None);

    let mut table = Table::new(
        "Figure 10: speedup of the prioritized component vs unprioritized HCAPP",
        &["combo", "CPU prioritized", "GPU prioritized", "SHA prioritized"],
    );
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let mut rows: Vec<Vec<String>> = unprioritized
        .iter()
        .map(|(c, _)| vec![c.name.to_string()])
        .collect();

    for (k, kind) in ComponentKind::ALL.iter().enumerate() {
        let prioritized = scheme_outcomes(
            cfg,
            ControlScheme::Hcapp,
            &limit,
            SoftwareConfig::StaticPriority(*kind),
        );
        for (i, ((_, base), (_, pri))) in unprioritized.iter().zip(&prioritized).enumerate() {
            let b = base.work_for(*kind).expect("component present");
            let p = pri.work_for(*kind).expect("component present");
            let s = if b > 0.0 { p / b } else { 1.0 };
            columns[k].push(s);
            rows[i].push(format!("{:+.1}%", (s - 1.0) * 100.0));
        }
    }
    for row in rows {
        table.add_row(row);
    }
    let cpu = arithmetic_mean(&columns[0]);
    let gpu = arithmetic_mean(&columns[1]);
    let sha = arithmetic_mean(&columns[2]);
    table.add_row(vec![
        "Ave.".into(),
        format!("{:+.1}%", (cpu - 1.0) * 100.0),
        format!("{:+.1}%", (gpu - 1.0) * 100.0),
        format!("{:+.1}%", (sha - 1.0) * 100.0),
    ]);
    (table, cpu, gpu, sha)
}

/// Execute, print and write CSV.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let (table, _, _, _) = compute(cfg);
    table.write_csv(cfg.csv_path("fig10")).expect("write fig10 csv");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prioritization_speeds_up_the_target() {
        let cfg = ExperimentConfig::quick(8);
        let (_, cpu, gpu, sha) = compute(&cfg);
        // Paper: CPU +8.3%, GPU +5.4%, SHA +12% — all positive, SHA largest.
        assert!(cpu > 1.0, "CPU priority speedup {cpu} should be positive");
        assert!(gpu > 1.0, "GPU priority speedup {gpu} should be positive");
        assert!(sha > 1.0, "SHA priority speedup {sha} should be positive");
        assert!(
            sha > cpu.min(gpu),
            "SHA ({sha}) should gain at least as much as the weakest of CPU/GPU"
        );
    }
}

//! One module per evaluation figure.

pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;

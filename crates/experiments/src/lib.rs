//! Regeneration harness for every table and figure in the HCAPP paper.
//!
//! Each experiment is a library function (testable at short durations) plus
//! a binary that prints the same rows/series the paper reports and writes a
//! CSV under `results/`. The per-experiment index lives in `DESIGN.md`;
//! paper-vs-measured numbers are recorded in `EXPERIMENTS.md`.
//!
//! | target | reproduces |
//! |---|---|
//! | `fig01` | Figure 1: normalized power trace of the static configuration |
//! | `fig02` | Figure 2: the same trace through 20 µs / 1 ms / 10 ms windows |
//! | `table1` | Table 1: the control-loop delay budget |
//! | `table2` | Table 2: CPU/GPU configuration |
//! | `table3` | Table 3: the benchmark combinations |
//! | `fig04`–`fig06` | §5.1: max power, speedup, PPE under 100 W / 20 µs |
//! | `fig07`–`fig09` | §5.2: the same under 100 W / 1 ms |
//! | `fig10` | §5.3: the software priority interface |
//! | `summary` | the abstract's headline numbers |
//! | `ablations` | guardband / control-period / local-controller / overshoot-protection / adversarial-accelerator studies |
//! | `scaling` | chiplet-count scaling: HCAPP vs a centralized-aggregation model |
//! | `robustness` | seed-sensitivity of the §5.1 aggregates |
//! | `faults` | fault campaign: resilience of each scheme under identical fault plans |
//! | `profile` | run-loop wall-clock profile: serial vs. worker-pool executors |
//! | `all` | everything above in sequence |
//!
//! Run e.g. `cargo run --release -p hcapp-experiments --bin fig04`.
//! Durations default to the paper's 200 ms; set `HCAPP_DURATION_MS` to
//! trade fidelity for time (tests use 2–8 ms).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod ablations;
pub mod config;
pub mod faults;
pub mod figures;
pub mod plot;
pub mod profile;
pub mod robustness;
pub mod runner;
pub mod scaling;
pub mod soak;
pub mod summary;
pub mod tables;

pub use config::ExperimentConfig;
pub use runner::{baseline_outcomes, scheme_outcomes, SuiteRun};

//! Minimal SVG line charts.
//!
//! The figure binaries emit CSVs for external plotting; for a zero-
//! dependency quick look they also render the trace figures (1 and 2) as
//! standalone SVG. This is a deliberately small chart kit: linear axes,
//! ticks, one polyline per series, a legend — enough to eyeball the power
//! traces without leaving the repository.

use std::fmt::Write as _;

/// One named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Data points (x ascending for a sensible polyline).
    pub points: Vec<(f64, f64)>,
    /// Stroke color (any SVG color string).
    pub color: String,
}

/// A simple line chart.
#[derive(Debug, Clone)]
pub struct LineChart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
}

const WIDTH: f64 = 900.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 30.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 50.0;

/// Default series palette.
pub const PALETTE: [&str; 5] = ["#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4"];

impl LineChart {
    /// Create an empty chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        LineChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Add a series (colors cycle through [`PALETTE`]).
    pub fn add_series(&mut self, name: impl Into<String>, points: Vec<(f64, f64)>) {
        let color = PALETTE[self.series.len() % PALETTE.len()].to_string();
        self.series.push(Series {
            name: name.into(),
            points,
            color,
        });
    }

    fn bounds(&self) -> (f64, f64, f64, f64) {
        let (mut min_x, mut max_x, mut min_y, mut max_y) =
            (f64::INFINITY, f64::NEG_INFINITY, f64::INFINITY, f64::NEG_INFINITY);
        for s in &self.series {
            for &(x, y) in &s.points {
                min_x = min_x.min(x);
                max_x = max_x.max(x);
                min_y = min_y.min(y);
                max_y = max_y.max(y);
            }
        }
        if !min_x.is_finite() {
            return (0.0, 1.0, 0.0, 1.0);
        }
        // Pad y a little; never collapse a flat series.
        let span_y = (max_y - min_y).max(1e-9);
        (
            min_x,
            max_x.max(min_x + 1e-9),
            min_y - 0.05 * span_y,
            max_y + 0.05 * span_y,
        )
    }

    /// Render the SVG document.
    pub fn render(&self) -> String {
        let (min_x, max_x, min_y, max_y) = self.bounds();
        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
        let sx = |x: f64| MARGIN_L + (x - min_x) / (max_x - min_x) * plot_w;
        let sy = |y: f64| MARGIN_T + plot_h - (y - min_y) / (max_y - min_y) * plot_h;

        let mut out = String::new();
        let _ = writeln!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">"#
        );
        let _ = writeln!(out, r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#);
        let _ = writeln!(
            out,
            r#"<text x="{}" y="22" font-size="15" text-anchor="middle">{}</text>"#,
            WIDTH / 2.0,
            xml_escape(&self.title)
        );

        // Axes.
        let _ = writeln!(
            out,
            r#"<line x1="{MARGIN_L}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
            MARGIN_T + plot_h,
            MARGIN_L + plot_w,
            MARGIN_T + plot_h
        );
        let _ = writeln!(
            out,
            r#"<line x1="{MARGIN_L}" y1="{MARGIN_T}" x2="{MARGIN_L}" y2="{}" stroke="black"/>"#,
            MARGIN_T + plot_h
        );

        // Ticks (5 per axis).
        for i in 0..=5 {
            let fx = min_x + (max_x - min_x) * i as f64 / 5.0;
            let px = sx(fx);
            let _ = writeln!(
                out,
                r#"<line x1="{px}" y1="{}" x2="{px}" y2="{}" stroke="black"/><text x="{px}" y="{}" font-size="11" text-anchor="middle">{}</text>"#,
                MARGIN_T + plot_h,
                MARGIN_T + plot_h + 5.0,
                MARGIN_T + plot_h + 20.0,
                fmt_tick(fx)
            );
            let fy = min_y + (max_y - min_y) * i as f64 / 5.0;
            let py = sy(fy);
            let _ = writeln!(
                out,
                r#"<line x1="{}" y1="{py}" x2="{MARGIN_L}" y2="{py}" stroke="black"/><text x="{}" y="{}" font-size="11" text-anchor="end">{}</text>"#,
                MARGIN_L - 5.0,
                MARGIN_L - 9.0,
                py + 4.0,
                fmt_tick(fy)
            );
        }

        // Axis labels.
        let _ = writeln!(
            out,
            r#"<text x="{}" y="{}" font-size="12" text-anchor="middle">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            HEIGHT - 10.0,
            xml_escape(&self.x_label)
        );
        let _ = writeln!(
            out,
            r#"<text x="16" y="{}" font-size="12" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            xml_escape(&self.y_label)
        );

        // Series polylines + legend.
        for (i, s) in self.series.iter().enumerate() {
            let mut pts = String::new();
            for &(x, y) in &s.points {
                let _ = write!(pts, "{:.1},{:.1} ", sx(x), sy(y));
            }
            let _ = writeln!(
                out,
                r#"<polyline points="{}" fill="none" stroke="{}" stroke-width="1.2"/>"#,
                pts.trim_end(),
                s.color
            );
            let lx = MARGIN_L + 12.0 + 170.0 * i as f64;
            let _ = writeln!(
                out,
                r#"<line x1="{lx}" y1="{}" x2="{}" y2="{}" stroke="{}" stroke-width="3"/><text x="{}" y="{}" font-size="12">{}</text>"#,
                MARGIN_T - 8.0,
                lx + 24.0,
                MARGIN_T - 8.0,
                s.color,
                lx + 30.0,
                MARGIN_T - 4.0,
                xml_escape(&s.name)
            );
        }
        let _ = writeln!(out, "</svg>");
        out
    }

    /// Write the SVG to disk, creating parent directories.
    pub fn write(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.render())
    }
}

fn fmt_tick(v: f64) -> String {
    if v.abs() >= 10_000.0 {
        format!("{:.0}k", v / 1_000.0)
    } else if v.abs() >= 10.0 || v == 0.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> LineChart {
        let mut c = LineChart::new("Demo <chart>", "time (us)", "power (W)");
        c.add_series("a", vec![(0.0, 50.0), (1.0, 80.0), (2.0, 60.0)]);
        c.add_series("b", vec![(0.0, 20.0), (1.0, 25.0), (2.0, 22.0)]);
        c
    }

    #[test]
    fn renders_valid_looking_svg() {
        let svg = chart().render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        // Title escaped.
        assert!(svg.contains("Demo &lt;chart&gt;"));
        // Legend entries.
        assert!(svg.contains(">a</text>"));
        assert!(svg.contains(">b</text>"));
    }

    #[test]
    fn coordinates_stay_inside_the_canvas() {
        let svg = chart().render();
        for cap in svg.split("points=\"").skip(1) {
            let pts = cap.split('"').next().unwrap();
            for pair in pts.split_whitespace() {
                let (x, y) = pair.split_once(',').unwrap();
                let x: f64 = x.parse().unwrap();
                let y: f64 = y.parse().unwrap();
                assert!((0.0..=WIDTH).contains(&x), "x {x} out of canvas");
                assert!((0.0..=HEIGHT).contains(&y), "y {y} out of canvas");
            }
        }
    }

    #[test]
    fn empty_chart_renders() {
        let c = LineChart::new("empty", "x", "y");
        let svg = c.render();
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn writes_to_disk() {
        let path = std::env::temp_dir().join("hcapp_plot_test.svg");
        chart().write(&path).unwrap();
        assert!(std::fs::read_to_string(&path).unwrap().contains("<svg"));
        let _ = std::fs::remove_file(&path);
    }
}

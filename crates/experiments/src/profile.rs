//! Wall-clock profiling study: where does the host spend its time when
//! simulating a quantum, serially vs. with the worker pool?
//!
//! The ROADMAP's performance work needs per-stage timing of the run loop
//! before any hot path can be attacked. This experiment attaches the
//! telemetry profiler (`hcapp_telemetry::Profiler`) to a Hi-Hi run under
//! both executors and reports each phase's call count and wall-clock cost
//! side by side. Timings are host measurements and vary run to run; the
//! *structure* (phases, call counts) is deterministic and is what the
//! test asserts.

use std::sync::Arc;

use hcapp::coordinator::{RunConfig, Simulation};
use hcapp::limits::PowerLimit;
use hcapp::scheme::ControlScheme;
use hcapp::system::SystemConfig;
use hcapp_sim_core::report::Table;
use hcapp_telemetry::{PhaseStat, Profiler};
use hcapp_workloads::combos::combo_by_name;

use crate::config::ExperimentConfig;

/// Run one profiled Hi-Hi simulation and return the per-phase stats in
/// first-seen order. `workers <= 1` uses the serial executor.
pub fn profile_run(cfg: &ExperimentConfig, workers: usize) -> Vec<(&'static str, PhaseStat)> {
    let combo = combo_by_name("Hi-Hi").expect("combo");
    let sys = SystemConfig::paper_system(combo, cfg.seed);
    let target = PowerLimit::package_pin().guardbanded_target();
    let profiler = Arc::new(Profiler::new());
    let run = RunConfig::new(cfg.duration, ControlScheme::Hcapp, target)
        .with_profiler(profiler.clone());
    let sim = Simulation::new(sys, run);
    if workers > 1 {
        sim.run_parallel(workers);
    } else {
        sim.run();
    }
    profiler.phases()
}

/// Execute both executors, render the comparison and write CSV.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let workers = cfg.workers.max(2);
    let serial = profile_run(cfg, 1);
    let pooled = profile_run(cfg, workers);
    let mut t = Table::new(
        format!("Run-loop wall-clock profile: serial vs. {workers}-worker pool (Hi-Hi, hcapp)"),
        &[
            "phase",
            "calls",
            "serial total (ms)",
            "pool total (ms)",
            "pool/serial",
        ],
    );
    for (name, s) in &serial {
        let p = pooled
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| *p)
            .unwrap_or_default();
        let s_ms = s.total.as_secs_f64() * 1e3;
        let p_ms = p.total.as_secs_f64() * 1e3;
        let ratio = if s_ms > 0.0 { p_ms / s_ms } else { 0.0 };
        t.add_row(vec![
            name.to_string(),
            s.calls.to_string(),
            format!("{s_ms:.2}"),
            format!("{p_ms:.2}"),
            format!("{ratio:.2}"),
        ]);
    }
    t.write_csv(cfg.csv_path("profile")).expect("write csv");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_executors_record_the_same_phases() {
        let cfg = ExperimentConfig::quick(2);
        let serial = profile_run(&cfg, 1);
        let pooled = profile_run(&cfg, 3);
        let names: Vec<&str> = serial.iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"control"), "phases: {names:?}");
        assert!(names.contains(&"domains"), "phases: {names:?}");
        assert!(names.contains(&"aggregate"), "phases: {names:?}");
        // Same phases in the same first-seen order, executor-independent.
        let pooled_names: Vec<&str> = pooled.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, pooled_names);
        // Call counts are simulated-time-driven, hence identical too.
        for ((n, s), (_, p)) in serial.iter().zip(&pooled) {
            assert_eq!(s.calls, p.calls, "phase {n}");
            assert!(s.calls > 0, "phase {n} never ran");
        }
    }
}

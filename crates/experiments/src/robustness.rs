//! Seed-sensitivity study.
//!
//! Everything in the reproduction is deterministic given a seed; this study
//! checks that the headline conclusions do not hinge on the particular seed
//! the figures use. For several seeds it recomputes the §5.1 aggregates
//! (HCAPP's suite-average PPE and speedup, and the worst max-power ratio)
//! and reports mean ± spread — the reproduction-quality analogue of error
//! bars.

use hcapp::coordinator::RunConfig;
use hcapp::limits::PowerLimit;
use hcapp::parallel::run_all;
use hcapp::scheme::ControlScheme;
use hcapp::system::SystemConfig;
use hcapp_sim_core::report::Table;
use hcapp_sim_core::stats::OnlineStats;
use hcapp_workloads::combos::combo_suite;

use crate::config::ExperimentConfig;

/// Aggregates for one seed.
#[derive(Debug, Clone, Copy)]
pub struct SeedRow {
    /// The run seed.
    pub seed: u64,
    /// HCAPP suite-average PPE under the fast limit.
    pub ppe: f64,
    /// HCAPP suite-average Eq. 3 speedup vs fixed.
    pub speedup: f64,
    /// Worst HCAPP max-power/limit ratio across the suite.
    pub worst_ratio: f64,
}

/// Run the study across `seeds`.
pub fn compute(cfg: &ExperimentConfig, seeds: &[u64]) -> Vec<SeedRow> {
    let limit = PowerLimit::package_pin();
    let combos = combo_suite();
    let mut rows = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let mut jobs = Vec::with_capacity(combos.len() * 2);
        for scheme in [ControlScheme::fixed_baseline(), ControlScheme::Hcapp] {
            for &combo in &combos {
                jobs.push((
                    SystemConfig::paper_system(combo, seed),
                    RunConfig::new(cfg.duration, scheme, limit.guardbanded_target()),
                ));
            }
        }
        let outs = run_all(jobs, cfg.workers);
        let (fixed, hcapp) = outs.split_at(combos.len());
        let n = combos.len() as f64;
        let ppe = hcapp.iter().map(|o| o.ppe(limit.budget)).sum::<f64>() / n;
        let speedup = hcapp
            .iter()
            .zip(fixed)
            .map(|(h, f)| h.speedup_vs(f))
            .sum::<f64>()
            / n;
        let worst_ratio = hcapp
            .iter()
            .map(|o| o.max_ratio(&limit).unwrap_or(0.0))
            .fold(f64::NEG_INFINITY, f64::max);
        rows.push(SeedRow {
            seed,
            ppe,
            speedup,
            worst_ratio,
        });
    }
    rows
}

/// Execute with the default seed set, render and write CSV.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let seeds = [11, 23, 57, 101, 977];
    let rows = compute(cfg, &seeds);
    let mut t = Table::new(
        "Robustness: §5.1 aggregates across seeds (HCAPP, 100 W / 20 us)",
        &["seed", "avg PPE", "avg speedup", "worst max/limit", "legal?"],
    );
    let mut ppe = OnlineStats::new();
    let mut sp = OnlineStats::new();
    for r in &rows {
        ppe.push(r.ppe);
        sp.push(r.speedup);
        t.add_row(vec![
            format!("{}", r.seed),
            format!("{:.1}%", r.ppe * 100.0),
            format!("{:.3}x", r.speedup),
            format!("{:.3}", r.worst_ratio),
            if r.worst_ratio <= 1.0 { "yes" } else { "NO" }.into(),
        ]);
    }
    t.add_row(vec![
        "mean ± std".into(),
        format!("{:.1}% ± {:.1}", ppe.mean() * 100.0, ppe.std_dev() * 100.0),
        format!("{:.3}x ± {:.3}", sp.mean(), sp.std_dev()),
        String::new(),
        String::new(),
    ]);
    t.write_csv(cfg.csv_path("robustness")).expect("write csv");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conclusions_hold_across_seeds() {
        let cfg = ExperimentConfig::quick(4);
        let rows = compute(&cfg, &[1, 2, 3]);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.worst_ratio <= 1.0, "seed {} violates: {}", r.seed, r.worst_ratio);
            assert!(r.speedup > 1.0, "seed {} shows no speedup", r.seed);
            assert!(
                (0.70..=0.90).contains(&r.ppe),
                "seed {} PPE {} out of band",
                r.seed,
                r.ppe
            );
        }
        // Seeds differ in detail…
        assert!(rows.windows(2).any(|w| w[0].ppe != w[1].ppe));
        // …but the spread is tight (regulation dominates workload noise).
        let max = rows.iter().map(|r| r.ppe).fold(f64::NEG_INFINITY, f64::max);
        let min = rows.iter().map(|r| r.ppe).fold(f64::INFINITY, f64::min);
        assert!(max - min < 0.05, "PPE spread {} too wide", max - min);
    }
}

//! Shared sweep machinery.
//!
//! Every §5 figure needs the same matrix: each Table 3 combo run under some
//! set of schemes against one power limit, plus the fixed-voltage baseline
//! for speedup normalization. [`SuiteRun`] materializes that matrix once
//! (in parallel, deterministically) so e.g. the Figure 7/8/9 binaries can
//! share one sweep.

use hcapp::cache::{run_all_cached, RunCache};
use hcapp::coordinator::{RunConfig, SoftwareConfig};
use hcapp::limits::PowerLimit;
use hcapp::outcome::RunOutcome;
use hcapp::parallel::run_all;
use hcapp::scheme::ControlScheme;
use hcapp::system::SystemConfig;
use hcapp_workloads::combos::{combo_suite, Combo};

use crate::config::ExperimentConfig;

/// Dispatch a job list according to the config: memoized through
/// `<out_dir>/cache` when `cfg.cache` is set, straight to the shared worker
/// pool otherwise. Results are identical either way (the cache codec
/// round-trips outcomes bit-exactly); only wall-clock differs.
pub fn dispatch(cfg: &ExperimentConfig, jobs: Vec<(SystemConfig, RunConfig)>) -> Vec<RunOutcome> {
    if cfg.cache {
        let cache = RunCache::new(cfg.out_dir.join("cache"));
        run_all_cached(jobs, cfg.workers, &cache).0
    } else {
        run_all(jobs, cfg.workers)
    }
}

/// Run the fixed-voltage baseline on every combo.
pub fn baseline_outcomes(cfg: &ExperimentConfig, limit: &PowerLimit) -> Vec<(Combo, RunOutcome)> {
    scheme_outcomes(cfg, ControlScheme::fixed_baseline(), limit, SoftwareConfig::None)
}

/// Run one scheme on every combo under `limit`'s guardbanded target.
pub fn scheme_outcomes(
    cfg: &ExperimentConfig,
    scheme: ControlScheme,
    limit: &PowerLimit,
    software: SoftwareConfig,
) -> Vec<(Combo, RunOutcome)> {
    let combos = combo_suite();
    let jobs: Vec<_> = combos
        .iter()
        .map(|&combo| {
            let sys = SystemConfig::paper_system(combo, cfg.seed);
            let run = RunConfig::new(cfg.duration, scheme, limit.guardbanded_target())
                .with_software(software);
            (sys, run)
        })
        .collect();
    let outcomes = dispatch(cfg, jobs);
    combos.into_iter().zip(outcomes).collect()
}

/// The full matrix one evaluation section needs: a baseline plus N schemes,
/// all on the same limit.
pub struct SuiteRun {
    /// The power limit the runs target.
    pub limit: PowerLimit,
    /// Fixed-voltage baseline outcomes per combo.
    pub baseline: Vec<(Combo, RunOutcome)>,
    /// `(scheme, per-combo outcomes)` in the order requested.
    pub schemes: Vec<(ControlScheme, Vec<(Combo, RunOutcome)>)>,
}

impl SuiteRun {
    /// Execute the matrix. All runs across all schemes are dispatched to one
    /// parallel pool.
    pub fn execute(cfg: &ExperimentConfig, limit: PowerLimit, schemes: &[ControlScheme]) -> Self {
        let combos = combo_suite();
        let mut jobs = Vec::with_capacity(combos.len() * (schemes.len() + 1));
        let all_schemes: Vec<ControlScheme> = std::iter::once(ControlScheme::fixed_baseline())
            .chain(schemes.iter().copied())
            .collect();
        for &scheme in &all_schemes {
            for &combo in &combos {
                let sys = SystemConfig::paper_system(combo, cfg.seed);
                let run = RunConfig::new(cfg.duration, scheme, limit.guardbanded_target());
                jobs.push((sys, run));
            }
        }
        let mut outcomes = dispatch(cfg, jobs).into_iter();
        let mut per_scheme = Vec::with_capacity(all_schemes.len());
        for &scheme in &all_schemes {
            let rows: Vec<(Combo, RunOutcome)> = combos
                .iter()
                .map(|&c| (c, outcomes.next().expect("job per combo")))
                .collect();
            per_scheme.push((scheme, rows));
        }
        let baseline = per_scheme.remove(0).1;
        SuiteRun {
            limit,
            baseline,
            schemes: per_scheme,
        }
    }

    /// The baseline outcome for `combo`.
    pub fn baseline_for(&self, combo: &Combo) -> &RunOutcome {
        &self
            .baseline
            .iter()
            .find(|(c, _)| c == combo)
            .expect("combo in baseline")
            .1
    }

    /// The outcomes for one scheme.
    pub fn scheme(&self, scheme: ControlScheme) -> Option<&[(Combo, RunOutcome)]> {
        self.schemes
            .iter()
            .find(|(s, _)| *s == scheme)
            .map(|(_, rows)| rows.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_run_shape() {
        let cfg = ExperimentConfig::quick(1);
        let run = SuiteRun::execute(
            &cfg,
            PowerLimit::package_pin(),
            &[ControlScheme::Hcapp],
        );
        assert_eq!(run.baseline.len(), 8);
        assert_eq!(run.schemes.len(), 1);
        let hcapp = run.scheme(ControlScheme::Hcapp).unwrap();
        assert_eq!(hcapp.len(), 8);
        // Combos align between baseline and scheme rows.
        for ((cb, _), (cs, _)) in run.baseline.iter().zip(hcapp) {
            assert_eq!(cb, cs);
        }
        assert!(run.scheme(ControlScheme::SoftwareLike).is_none());
    }

    #[test]
    fn scheme_outcomes_cover_suite() {
        let cfg = ExperimentConfig::quick(1);
        let rows = scheme_outcomes(
            &cfg,
            ControlScheme::fixed_baseline(),
            &PowerLimit::package_pin(),
            SoftwareConfig::None,
        );
        assert_eq!(rows.len(), 8);
        for (_, out) in rows {
            assert!(out.avg_power.value() > 0.0);
        }
    }
}

//! Chiplet-count scaling study.
//!
//! The paper's third motivating problem (§1) is that centralized designs
//! "cannot scale easily": aggregating metrics from every component to one
//! controller needs global wires or shared buses whose latency grows with
//! the system. HCAPP's control period is set by the *physical* supply
//! network (Table 1) and does not grow with chiplet count.
//!
//! We model the centralized alternative as the same controller whose period
//! grows linearly with the number of domains (an aggregation hop per
//! domain over a shared bus), and sweep package sizes. The budget scales
//! with the domain count so every size is power-constrained to the same
//! degree.

use hcapp::coordinator::{RunConfig, Simulation};
use hcapp::limits::PowerLimit;
use hcapp::scheme::ControlScheme;
use hcapp::system::SystemConfig;
use hcapp_sim_core::report::Table;
use hcapp_sim_core::time::SimDuration;
use hcapp_sim_core::units::Watt;
use hcapp_workloads::combos::combo_by_name;

use crate::config::ExperimentConfig;

/// Package sizes to sweep: (CPU chiplets, GPU chiplets, SHA chiplets).
pub const SIZES: [(usize, usize, usize); 4] = [(1, 1, 1), (2, 2, 2), (4, 4, 4), (8, 8, 8)];

/// Aggregation latency per domain for the centralized model (per §2's
/// global-wire/bus congestion argument): 2 µs of bus time per domain.
const CENTRAL_AGGREGATION_PER_DOMAIN: SimDuration = SimDuration::from_micros(2);

/// Run the sweep; rows are `(domains, hcapp max-ratio, hcapp ppe,
/// centralized max-ratio, centralized ppe)`.
pub fn compute(cfg: &ExperimentConfig) -> Vec<(usize, f64, f64, f64, f64)> {
    let combo = combo_by_name("Hi-Hi").expect("combo");
    let mut rows = Vec::with_capacity(SIZES.len());
    for &(nc, ng, ns) in &SIZES {
        let n_domains = nc + ng + ns;
        // Budget scales with package size; same per-chiplet pressure.
        let budget = Watt::new(100.0 / 3.0 * n_domains as f64);
        let limit = PowerLimit::new(budget, SimDuration::from_micros(20));
        let target = budget * limit.guardband_factor();

        let sys = SystemConfig::scaled_system(combo, nc, ng, ns, cfg.seed)
            .expect("SIZES rows are nonzero");
        let hcapp = Simulation::new(
            sys.clone(),
            RunConfig::new(cfg.duration, ControlScheme::Hcapp, target),
        )
        .run_parallel(cfg.workers);

        let central_period = SimDuration::from_micros(1)
            + CENTRAL_AGGREGATION_PER_DOMAIN * n_domains as u64;
        let central = Simulation::new(
            sys,
            RunConfig::new(
                cfg.duration,
                ControlScheme::CustomPeriod(central_period),
                target,
            ),
        )
        .run_parallel(cfg.workers);

        rows.push((
            n_domains,
            hcapp.max_ratio(&limit).unwrap_or(0.0),
            hcapp.ppe(budget),
            central.max_ratio(&limit).unwrap_or(0.0),
            central.ppe(budget),
        ));
    }
    rows
}

/// Execute, render and write CSV.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let rows = compute(cfg);
    let mut t = Table::new(
        "Scaling: HCAPP vs centralized aggregation (20 us window, Hi-Hi workloads)",
        &[
            "domains",
            "HCAPP max/limit",
            "HCAPP PPE",
            "centralized max/limit",
            "centralized PPE",
        ],
    );
    for (n, hm, hp, cm, cp) in rows {
        t.add_row(vec![
            format!("{n}"),
            format!("{hm:.3}"),
            format!("{:.1}%", hp * 100.0),
            format!("{cm:.3}"),
            format!("{:.1}%", cp * 100.0),
        ]);
    }
    t.write_csv(cfg.csv_path("scaling")).expect("write csv");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hcapp_stays_legal_while_centralized_degrades() {
        let mut cfg = ExperimentConfig::quick(4);
        cfg.workers = 4;
        let rows = compute(&cfg);
        assert_eq!(rows.len(), SIZES.len());
        // HCAPP's worst-case ratio stays legal at every size.
        for &(n, hm, _, _, _) in &rows {
            assert!(hm <= 1.0, "HCAPP violates at {n} domains: {hm}");
        }
        // The centralized model violates the fast window at the largest
        // size (its period has grown well past the burst timescale).
        let last = rows.last().unwrap();
        assert!(
            last.3 > 1.0,
            "centralized model should violate at {} domains (got {})",
            last.0,
            last.3
        );
    }
}

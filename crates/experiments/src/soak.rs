//! Chaos-soak study: crash-safe resume equivalence across the scenario
//! matrix.
//!
//! Every cell runs one scenario twice: once uninterrupted (the oracle) and
//! once as a checkpointing run that is killed at injector-chosen quanta and
//! resumed from its latest `hcapp.ckpt`. The stitched run must reproduce
//! the oracle **bit-exactly** — outcome encoding, JSONL trace stream and
//! replayed `hcapp.report` — and its over-budget episodes must respect the
//! same reaction bound the fault campaign enforces. The matrix crosses
//! fault plans with executors (serial, pooled, pooled + adversarial reply
//! permutation) so the seams are soaked everywhere determinism is claimed.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use hcapp::cache::encode_outcome;
use hcapp::coordinator::{RunConfig, Simulation};
use hcapp::limits::PowerLimit;
use hcapp::resume::{outcome_digest, run_resumable, total_quanta, ResumeEnd, ResumeOptions};
use hcapp::scheme::ControlScheme;
use hcapp::system::SystemConfig;
use hcapp::DegradedConfig;
use hcapp_analyze::StreamAnalyzer;
use hcapp_faults::FaultPlan;
use hcapp_metrics::over_cap;
use hcapp_sim_core::report::Table;
use hcapp_sim_core::rng::DeterministicRng;
use hcapp_sim_core::time::SimDuration;
use hcapp_telemetry::{jsonl, RingTracer, SharedTracer};
use hcapp_workloads::combos::combo_by_name;

use crate::config::ExperimentConfig;

/// Worst-case slew-down stretch from a `vr_slew_derate` fault
/// (1 / `MIN_SLEW_DERATE`).
const SLEW_STRETCH: u32 = 4;

/// RNG stream id for kill-quantum selection, decorrelated per cell.
const KILL_STREAM: u64 = 0x5041_6b69_6c6c; // "PAkill"

/// How a cell executes the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Executor {
    /// The serial coordinator.
    Serial,
    /// The pooled executor with this many workers.
    Pooled(usize),
    /// Pooled with adversarially permuted reply order (seeded).
    Permuted(usize, u64),
}

impl Executor {
    fn label(self) -> String {
        match self {
            Executor::Serial => "serial".to_string(),
            Executor::Pooled(n) => format!("pooled({n})"),
            Executor::Permuted(n, s) => format!("permuted({n},seed {s})"),
        }
    }

    fn apply(self, opts: ResumeOptions) -> ResumeOptions {
        match self {
            Executor::Serial => opts,
            Executor::Pooled(n) => opts.with_workers(n),
            Executor::Permuted(n, s) => opts.with_workers(n).with_permute_seed(s),
        }
    }
}

/// One cell's soak verdict.
#[derive(Debug, Clone)]
pub struct SoakRow {
    /// Fault-plan preset name (`none` for a clean run).
    pub plan: String,
    /// Execution strategy.
    pub executor: Executor,
    /// Checkpoint cadence in control quanta.
    pub every: u64,
    /// Quanta the run was killed at (sorted).
    pub kills: Vec<u64>,
    /// Checkpoints written across all links.
    pub checkpoints: u64,
    /// 32-hex digest of the stitched outcome.
    pub digest: String,
    /// Outcome + trace + report all byte-identical to the oracle.
    pub identical: bool,
    /// Longest over-budget excursion of the stitched run.
    pub longest_over: SimDuration,
    /// The reaction bound the excursion must respect.
    pub bound: SimDuration,
}

impl SoakRow {
    /// Whether the stitched run respects the reaction bound.
    pub fn within_bound(&self) -> bool {
        self.longest_over <= self.bound
    }
}

/// The scenario matrix: plans × executors, two kills per cell.
pub fn compute(cfg: &ExperimentConfig) -> Vec<SoakRow> {
    let cells: [(&str, Executor, u64); 6] = [
        ("none", Executor::Serial, 32),
        ("quiet", Executor::Pooled(2), 64),
        ("moderate", Executor::Serial, 64),
        ("moderate", Executor::Permuted(3, 9), 48),
        ("severe", Executor::Pooled(2), 16),
        ("severe", Executor::Permuted(2, 5), 64),
    ];
    cells
        .iter()
        .map(|&(plan, executor, every)| soak_cell(cfg, plan, executor, every, 2))
        .collect()
}

/// Run one cell: oracle, kill chain, bit-identity checks.
fn soak_cell(
    cfg: &ExperimentConfig,
    plan: &str,
    executor: Executor,
    every: u64,
    kills: u64,
) -> SoakRow {
    let limit = PowerLimit::package_pin();
    let combo = combo_by_name("Hi-Hi").expect("known combo");
    let sys = SystemConfig::paper_system(combo, cfg.seed);
    let mut run = RunConfig::new(
        cfg.duration,
        ControlScheme::Hcapp,
        limit.guardbanded_target(),
    )
    .with_trace();
    if plan != "none" {
        run = run.with_faults(FaultPlan::preset(plan, cfg.seed).expect("matrix presets are valid"));
    }

    // Injector-chosen kill quanta, decorrelated per cell.
    let total = total_quanta(&sys, &run);
    let mut rng = DeterministicRng::derive(cfg.seed ^ every, KILL_STREAM);
    let mut kill_quanta = BTreeSet::new();
    while (kill_quanta.len() as u64) < kills.min(total - 1) {
        kill_quanta.insert(1 + rng.below(total - 1));
    }

    // Oracle.
    let ring = Arc::new(Mutex::new(RingTracer::new(1 << 20)));
    let mut oracle_run = run.clone();
    oracle_run.tracer = Some(ring.clone() as SharedTracer);
    let want = Simulation::new(sys.clone(), oracle_run).run();
    let events = ring
        .lock()
        .expect("invariant: tracer mutex never poisoned")
        .drain();
    let want_trace = jsonl::export(&events, &[("case", "soak"), ("plan", plan)]);

    // Kill chain in a per-cell scratch directory.
    let dir = scratch_dir(cfg, plan, executor, every);
    let opts = executor.apply(
        ResumeOptions::new(dir.join("hcapp.ckpt"))
            .with_checkpoint_every(every)
            .with_trace_sink(dir.join("hcapp.trace"))
            .with_trace_extra("case", "soak")
            .with_trace_extra("plan", plan),
    );
    let mut checkpoints = 0u64;
    for &q in &kill_quanta {
        let link = run_resumable(sys.clone(), run.clone(), &opts.clone().with_stop_at(q))
            .expect("kill link failed");
        checkpoints += link.checkpoints_written;
        assert!(
            matches!(link.end, ResumeEnd::Stopped { .. }),
            "kill at {q} was never reached"
        );
    }
    let fin = run_resumable(sys, run, &opts).expect("final link failed");
    checkpoints += fin.checkpoints_written;
    let got = match fin.end {
        ResumeEnd::Completed(out) => out,
        ResumeEnd::Stopped { quantum } => panic!("final link stopped at {quantum}"),
    };
    let got_trace = fs::read_to_string(dir.join("hcapp.trace")).expect("stitched trace readable");
    let _ = fs::remove_dir_all(&dir);

    let identical = encode_outcome(&got) == encode_outcome(&want)
        && got_trace == want_trace
        && replay_report(&got_trace) == replay_report(&want_trace);
    let over = over_cap(
        got.trace.as_ref().expect("soak cells always record a trace"),
        limit.budget.value(),
    );
    let period = ControlScheme::Hcapp
        .control_period()
        .expect("HCAPP is dynamic");
    SoakRow {
        plan: plan.to_string(),
        executor,
        every,
        kills: kill_quanta.into_iter().collect(),
        checkpoints,
        digest: outcome_digest(&got),
        identical,
        longest_over: over.longest,
        bound: period * u64::from(DegradedConfig::default().reaction_quanta() * SLEW_STRETCH),
    }
}

fn replay_report(text: &str) -> String {
    let mut a = StreamAnalyzer::new();
    a.consume_jsonl(text).expect("stitched trace replays");
    a.report().to_json()
}

fn scratch_dir(cfg: &ExperimentConfig, plan: &str, executor: Executor, every: u64) -> PathBuf {
    let dir = cfg.out_dir.join(format!(
        "soak-scratch/{plan}-{}-{every}",
        executor.label().replace([',', '(', ')', ' '], "_")
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create soak scratch dir");
    dir
}

/// Execute, render and write CSV.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let rows = compute(cfg);
    let mut t = Table::new(
        format!(
            "Chaos soak: kill/resume equivalence, seed {}, Hi-Hi, {} per cell",
            cfg.seed, cfg.duration
        ),
        &[
            "plan",
            "executor",
            "cadence",
            "killed at",
            "ckpts",
            "digest",
            "identical?",
            "longest over",
            "bound",
            "bounded?",
        ],
    );
    for r in &rows {
        t.add_row(vec![
            r.plan.clone(),
            r.executor.label(),
            r.every.to_string(),
            r.kills
                .iter()
                .map(|q| q.to_string())
                .collect::<Vec<_>>()
                .join(","),
            r.checkpoints.to_string(),
            r.digest.clone(),
            if r.identical { "yes" } else { "NO" }.into(),
            format!("{}", r.longest_over),
            format!("{}", r.bound),
            if r.within_bound() { "yes" } else { "NO" }.into(),
        ]);
    }
    t.write_csv(cfg.csv_path("soak")).expect("write csv");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cell_is_bit_identical_and_bounded() {
        let cfg = ExperimentConfig::quick(1);
        let rows = compute(&cfg);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert_eq!(r.kills.len(), 2, "{}/{}", r.plan, r.executor.label());
            assert!(
                r.identical,
                "{} on {} (cadence {}): stitched run diverged from the oracle",
                r.plan,
                r.executor.label(),
                r.every
            );
            assert!(
                r.within_bound(),
                "{} on {}: longest over-budget {} exceeds bound {}",
                r.plan,
                r.executor.label(),
                r.longest_over,
                r.bound
            );
        }
        // Distinct plans must actually change the run.
        assert_ne!(rows[0].digest, rows[2].digest);
    }
}

//! The abstract's headline numbers.
//!
//! "Overall, HCAPP achieves 7% speedup over a RAPL-like implementation. The
//! power utilization improves from 79.7% (RAPL-like) to 93.9% (HCAPP)" —
//! both derived from the §5.2 (off-package VR limit) suite. This module
//! computes the same derived quantities from our measured data.

use hcapp::scheme::ControlScheme;
use hcapp_sim_core::report::Table;

use crate::config::ExperimentConfig;
use crate::figures::{fig07, fig08, fig09};

/// The measured headline numbers.
#[derive(Debug, Clone, Copy)]
pub struct Headline {
    /// HCAPP's average speedup vs fixed under the slow limit.
    pub hcapp_speedup: f64,
    /// RAPL-like's average speedup vs fixed under the slow limit.
    pub rapl_speedup: f64,
    /// HCAPP's speedup over RAPL-like (paper: 7%).
    pub hcapp_over_rapl: f64,
    /// HCAPP average PPE (paper: 93.9%).
    pub hcapp_ppe: f64,
    /// RAPL-like average PPE (paper: 79.7%).
    pub rapl_ppe: f64,
    /// SW-like average PPE (paper: 69.2%).
    pub sw_ppe: f64,
}

/// Compute the headline numbers from one slow-limit sweep.
pub fn compute(cfg: &ExperimentConfig) -> Headline {
    let sweep = fig07::sweep(cfg);
    let (_, h_sp, r_sp, _) = fig08::compute(&sweep);
    let (_, h_ppe, r_ppe, s_ppe, _) = fig09::compute(&sweep);
    // Sanity: the sweep carries the schemes we rely on.
    debug_assert!(sweep.scheme(ControlScheme::Hcapp).is_some());
    Headline {
        hcapp_speedup: h_sp,
        rapl_speedup: r_sp,
        hcapp_over_rapl: h_sp / r_sp,
        hcapp_ppe: h_ppe,
        rapl_ppe: r_ppe,
        sw_ppe: s_ppe,
    }
}

/// Compute, render the paper-vs-measured table and write CSV.
pub fn run(cfg: &ExperimentConfig) -> Table {
    let h = compute(cfg);
    let mut t = Table::new(
        "Headline claims (abstract) — paper vs measured",
        &["claim", "paper", "measured"],
    );
    t.add_row(vec![
        "HCAPP speedup over RAPL-like".into(),
        "7%".into(),
        format!("{:+.1}%", (h.hcapp_over_rapl - 1.0) * 100.0),
    ]);
    t.add_row(vec![
        "HCAPP PPE".into(),
        "93.9%".into(),
        format!("{:.1}%", h.hcapp_ppe * 100.0),
    ]);
    t.add_row(vec![
        "RAPL-like PPE".into(),
        "79.7%".into(),
        format!("{:.1}%", h.rapl_ppe * 100.0),
    ]);
    t.add_row(vec![
        "SW-like PPE".into(),
        "69.2%".into(),
        format!("{:.1}%", h.sw_ppe * 100.0),
    ]);
    t.add_row(vec![
        "HCAPP speedup vs fixed (slow limit)".into(),
        "43%".into(),
        format!("{:+.1}%", (h.hcapp_speedup - 1.0) * 100.0),
    ]);
    t.add_row(vec![
        "RAPL-like speedup vs fixed (slow limit)".into(),
        "36%".into(),
        format!("{:+.1}%", (h.rapl_speedup - 1.0) * 100.0),
    ]);
    t.write_csv(cfg.csv_path("summary")).expect("write summary csv");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_directions() {
        let h = compute(&ExperimentConfig::quick(24));
        assert!(h.hcapp_over_rapl > 1.0, "HCAPP should beat RAPL-like");
        assert!(h.hcapp_ppe > h.rapl_ppe);
        assert!(h.rapl_ppe > h.sw_ppe);
    }
}

//! Tables 1–3 of the paper.
//!
//! These are configuration/definition tables rather than measurements, but
//! regenerating them from the code proves the implementation carries the
//! same system the paper describes (and the Table 1 totals are *computed*
//! from the per-component delays, so the arithmetic is checked).

use hcapp_cpu_sim::CpuConfig;
use hcapp_gpu_sim::GpuConfig;
use hcapp_pdn::delays::TransitionBudget;
use hcapp_sim_core::report::Table;
use hcapp_workloads::combos::combo_suite;

use crate::config::ExperimentConfig;

/// Table 1: the delay budget behind HCAPP's 1 µs control period.
pub fn table1(cfg: &ExperimentConfig) -> Table {
    let budget = TransitionBudget::paper();
    let mut t = Table::new(
        "Table 1: breakdown of delays for HCAPP transitions",
        &["component", "simulated (ns)", "scale", "scaled (ns)"],
    );
    for row in budget.rows() {
        let s = row.scaled();
        t.add_row(vec![
            row.component.to_string(),
            format!("{}-{}", row.simulated.min_ns, row.simulated.max_ns),
            format!("x{}", row.scale),
            format!("{}-{}", s.min_ns, s.max_ns),
        ]);
    }
    let total = budget.total();
    t.add_row(vec![
        "Total".into(),
        String::new(),
        String::new(),
        format!("{}-{}", total.min_ns, total.max_ns),
    ]);
    t.add_row(vec![
        "HCAPP Control Period".into(),
        String::new(),
        String::new(),
        format!("{}", budget.control_period().as_nanos()),
    ]);
    t.write_csv(cfg.csv_path("table1")).expect("write table1 csv");
    t
}

/// Table 2: CPU and GPU configuration.
pub fn table2(cfg: &ExperimentConfig) -> Table {
    let cpu = CpuConfig::default();
    let gpu = GpuConfig::default();
    let mut t = Table::new(
        "Table 2: details of CPU and GPU configuration",
        &["component", "CPU", "GPU"],
    );
    t.add_row(vec![
        "Units".into(),
        format!("{} Cores", cpu.cores),
        format!("{} SMs", gpu.sms),
    ]);
    t.add_row(vec![
        "Cores per SM".into(),
        "N/A".into(),
        format!("{}", gpu.cores_per_sm),
    ]);
    t.add_row(vec![
        "L1 Cache Size".into(),
        format!("{} kB", cpu.l1_kb),
        format!("{} kB", gpu.l1_kb),
    ]);
    t.add_row(vec![
        "Shared Memory Size".into(),
        "N/A".into(),
        format!("{} kB", gpu.shared_kb),
    ]);
    t.add_row(vec![
        "L2 Cache Size".into(),
        format!("{} kB", cpu.l2_kb),
        format!("{} kB", gpu.l2_kb),
    ]);
    t.add_row(vec![
        "Maximum Frequency".into(),
        format!("{:.0} GHz", cpu.f_max.as_ghz()),
        format!("{:.0} MHz", gpu.f_max.value() * 1e-6),
    ]);
    t.add_row(vec![
        "Minimum Frequency".into(),
        format!("{:.0} MHz", cpu.f_min.value() * 1e-6),
        format!("{:.0} MHz", gpu.f_min.value() * 1e-6),
    ]);
    t.write_csv(cfg.csv_path("table2")).expect("write table2 csv");
    t
}

/// Table 3: the benchmark combinations.
pub fn table3(cfg: &ExperimentConfig) -> Table {
    let mut t = Table::new(
        "Table 3: benchmark combinations used for validation",
        &["name", "CPU", "GPU", "SHA"],
    );
    for combo in combo_suite() {
        t.add_row(vec![
            combo.name.to_string(),
            combo.cpu.name().to_string(),
            combo.gpu.name().to_string(),
            "modeled".into(),
        ]);
    }
    t.write_csv(cfg.csv_path("table3")).expect("write table3 csv");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::quick(1)
    }

    #[test]
    fn table1_totals() {
        let t = table1(&cfg());
        let rendered = t.render();
        assert!(rendered.contains("147-617"), "total row missing: {rendered}");
        assert!(rendered.contains("1000"), "control period missing");
    }

    #[test]
    fn table2_matches_paper_numbers() {
        let t = table2(&cfg());
        let rendered = t.render();
        for needle in ["8 Cores", "15 SMs", "32 kB", "48 kB", "768 kB", "2 GHz", "700 MHz"] {
            assert!(rendered.contains(needle), "missing {needle}: {rendered}");
        }
    }

    #[test]
    fn table3_has_eight_combos() {
        let t = table3(&cfg());
        assert_eq!(t.len(), 8);
        let rendered = t.render();
        assert!(rendered.contains("blackscholes"));
        assert!(rendered.contains("myocyte"));
    }
}

//! The stateless fault oracle.
//!
//! [`FaultInjector`] answers "is injection point X faulted at time T for
//! domain D, and how hard?" as a pure function of the plan seed — no
//! mutable PRNG stream, so the answer does not depend on query order. The
//! coordinator asks once per control quantum on its own thread and ships
//! the decisions to the domain executors inside the per-quantum command,
//! which is what keeps serial and pooled runs byte-identical: workers never
//! roll dice.
//!
//! Hashing uses the splitmix64 output finalizer (Steele et al.,
//! "Fast Splittable Pseudorandom Number Generators", OOPSLA'14) over a key
//! mixed from `(seed, point id, quantum index, domain index)`.

use crate::plan::{EpisodeSpec, FaultPlan, MAX_EPISODE_QUANTA};
use hcapp_pdn::{LinkFault, SensorFault};
use hcapp_sim_core::time::{SimDuration, SimTime};

/// A fault on the control hierarchy itself (decided per domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtlFault {
    /// The domain controller ignores priority-register writes: the OS/
    /// coordinator can no longer re-prioritize the domain.
    DomainStuck,
    /// The local controllers stop evaluating: per-unit voltage ratios stay
    /// frozen at their last decision.
    LocalSilent,
}

/// Sentinel "domain" index for package-global injection points.
const GLOBAL: u64 = u64::MAX;

// Injection-point ids (part of the hash key, hence of the determinism
// contract — renumbering changes every seeded run).
const P_NOISE: u64 = 1;
const P_NOISE_MAG: u64 = 2;
const P_STUCK: u64 = 3;
const P_DROPOUT: u64 = 4;
const P_DROOP: u64 = 5;
const P_DROOP_MAG: u64 = 6;
const P_SLEW: u64 = 7;
const P_SLEW_MAG: u64 = 8;
const P_LINK_DELAY: u64 = 9;
const P_LINK_DELAY_MAG: u64 = 10;
const P_LINK_LOSS: u64 = 11;
const P_CTL_STUCK: u64 = 12;
const P_CTL_SILENT: u64 = 13;

/// splitmix64 output finalizer: a bijective avalanche over 64 bits.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hash one (point, domain, quantum) cell of one plan's decision lattice.
fn cell(seed: u64, point: u64, domain: u64, quantum: u64) -> u64 {
    // The golden-gamma increment splitmix64 uses for stream separation.
    const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut h = mix64(seed ^ point.wrapping_mul(GAMMA));
    h = mix64(h ^ domain.wrapping_add(GAMMA));
    mix64(h ^ quantum)
}

/// Map a hash to a uniform f64 in `[0, 1)` (53 mantissa bits).
fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 / 9_007_199_254_740_992.0
}

/// Deterministic per-run fault oracle over one [`FaultPlan`].
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    period_ns: u64,
}

impl FaultInjector {
    /// Build an injector for `plan`, quantized to the scheme's control
    /// `period` (faults are decided once per control quantum).
    ///
    /// # Panics
    /// Panics when the plan fails [`FaultPlan::validate`] or the period is
    /// zero.
    pub fn new(plan: FaultPlan, period: SimDuration) -> Self {
        plan.validate();
        assert!(!period.is_zero(), "control period must be positive");
        FaultInjector {
            period_ns: period.as_nanos(),
            plan,
        }
    }

    /// The plan this injector realizes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Quantum index of simulation time `t`.
    fn quantum(&self, t: SimTime) -> u64 {
        t.as_nanos() / self.period_ns
    }

    /// The start quantum of the episode covering `quantum`, if any.
    ///
    /// Scans back over the (bounded) episode length for the most recent
    /// successful start roll; the newest start wins so magnitudes stay
    /// stable for the tail of an extended episode.
    fn episode_start(&self, spec: &EpisodeSpec, point: u64, domain: u64, quantum: u64) -> Option<u64> {
        if spec.is_off() {
            return None;
        }
        let dur = u64::from(spec.duration_quanta.min(MAX_EPISODE_QUANTA));
        let lo = quantum.saturating_sub(dur - 1);
        let mut q = quantum + 1;
        while q > lo {
            q -= 1;
            if unit_f64(cell(self.plan.seed, point, domain, q)) < spec.rate {
                return Some(q);
            }
        }
        None
    }

    /// The package power-sensor fault active at `t`, if any.
    ///
    /// Dropout dominates stuck-at dominates noise when episodes overlap.
    /// The noise factor is redrawn every quantum (white multiplicative
    /// noise, mean one).
    pub fn sensor_fault(&self, t: SimTime) -> Option<SensorFault> {
        let q = self.quantum(t);
        if self
            .episode_start(&self.plan.sensor_dropout, P_DROPOUT, GLOBAL, q)
            .is_some()
        {
            return Some(SensorFault::Dropout);
        }
        if self
            .episode_start(&self.plan.sensor_stuck, P_STUCK, GLOBAL, q)
            .is_some()
        {
            return Some(SensorFault::StuckAt);
        }
        self.episode_start(&self.plan.sensor_noise, P_NOISE, GLOBAL, q)
            .map(|_| {
                let u = unit_f64(cell(self.plan.seed, P_NOISE_MAG, GLOBAL, q));
                SensorFault::Noise {
                    factor: 1.0 + self.plan.noise_amplitude * (2.0 * u - 1.0),
                }
            })
    }

    /// The droop impulse (volts) to apply at `t`, if a droop episode starts
    /// exactly at this quantum. Droop is an impulse, not a level: the VR
    /// immediately begins slewing back toward its setpoint.
    pub fn vr_droop(&self, t: SimTime) -> Option<f64> {
        let q = self.quantum(t);
        self.episode_start(&self.plan.vr_droop, P_DROOP, GLOBAL, q)
            .filter(|&start| start == q)
            .map(|start| {
                let u = unit_f64(cell(self.plan.seed, P_DROOP_MAG, GLOBAL, start));
                self.plan.droop_depth * (0.25 + 0.75 * u)
            })
    }

    /// The VR slew-derating factor active at `t`, if any (uniform in
    /// `[slew_floor, 1)`, constant over an episode).
    pub fn vr_slew_derate(&self, t: SimTime) -> Option<f64> {
        let q = self.quantum(t);
        self.episode_start(&self.plan.vr_slew_derate, P_SLEW, GLOBAL, q)
            .map(|start| {
                let u = unit_f64(cell(self.plan.seed, P_SLEW_MAG, GLOBAL, start));
                self.plan.slew_floor + (1.0 - self.plan.slew_floor) * u
            })
    }

    /// The broadcast-link fault active at `t` for `domain`, if any. Loss
    /// dominates delay when episodes overlap.
    pub fn link_fault(&self, t: SimTime, domain: usize) -> Option<LinkFault> {
        let q = self.quantum(t);
        let d = domain as u64;
        if self
            .episode_start(&self.plan.link_loss, P_LINK_LOSS, d, q)
            .is_some()
        {
            return Some(LinkFault::Loss);
        }
        self.episode_start(&self.plan.link_delay, P_LINK_DELAY, d, q)
            .map(|start| {
                let h = cell(self.plan.seed, P_LINK_DELAY_MAG, d, start);
                LinkFault::Delay {
                    ticks: 1 + (h % u64::from(self.plan.delay_ticks)) as u32,
                }
            })
    }

    /// The controller fault active at `t` for `domain`, if any. A stuck
    /// domain controller dominates silent locals when episodes overlap.
    pub fn ctl_fault(&self, t: SimTime, domain: usize) -> Option<CtlFault> {
        let q = self.quantum(t);
        let d = domain as u64;
        if self
            .episode_start(&self.plan.ctl_stuck, P_CTL_STUCK, d, q)
            .is_some()
        {
            return Some(CtlFault::DomainStuck);
        }
        self.episode_start(&self.plan.ctl_silent, P_CTL_SILENT, d, q)
            .map(|_| CtlFault::LocalSilent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::time::{SimDuration, SimTime};

    fn us(n: u64) -> SimTime {
        SimTime::from_nanos(n * 1_000)
    }

    fn injector(seed: u64) -> FaultInjector {
        FaultInjector::new(FaultPlan::severe(seed), SimDuration::from_micros(1))
    }

    #[test]
    fn decisions_are_pure_functions_of_the_seed() {
        let a = injector(42);
        let b = injector(42);
        for q in 0..2_000 {
            let t = us(q);
            assert_eq!(a.sensor_fault(t), b.sensor_fault(t));
            assert_eq!(a.vr_droop(t), b.vr_droop(t));
            assert_eq!(a.vr_slew_derate(t), b.vr_slew_derate(t));
            for d in 0..3 {
                assert_eq!(a.link_fault(t, d), b.link_fault(t, d));
                assert_eq!(a.ctl_fault(t, d), b.ctl_fault(t, d));
            }
        }
    }

    #[test]
    fn query_order_does_not_matter() {
        let inj = injector(7);
        let forward: Vec<_> = (0..500).map(|q| inj.ctl_fault(us(q), 1)).collect();
        let backward: Vec<_> = (0..500).rev().map(|q| inj.ctl_fault(us(q), 1)).collect();
        let reversed: Vec<_> = backward.into_iter().rev().collect();
        assert_eq!(forward, reversed);
    }

    #[test]
    fn different_seeds_differ() {
        let a = injector(1);
        let b = injector(2);
        let same = (0..4_000)
            .filter(|&q| a.sensor_fault(us(q)) == b.sensor_fault(us(q)))
            .count();
        assert!(same < 4_000, "seeds 1 and 2 produced identical sensor streams");
    }

    #[test]
    fn quiet_plan_never_fires() {
        let inj = FaultInjector::new(FaultPlan::quiet(9), SimDuration::from_micros(1));
        for q in 0..5_000 {
            let t = us(q);
            assert_eq!(inj.sensor_fault(t), None);
            assert_eq!(inj.vr_droop(t), None);
            assert_eq!(inj.vr_slew_derate(t), None);
            assert_eq!(inj.link_fault(t, 0), None);
            assert_eq!(inj.ctl_fault(t, 0), None);
        }
    }

    #[test]
    fn episodes_respect_duration_bound() {
        // With rate r and duration d, a fault can stay active for long
        // stretches only through re-triggering; after d quanta with no
        // start roll succeeding, it must clear. Check the mechanical bound:
        // every active quantum is within d-1 of a successful start roll.
        let plan = FaultPlan {
            ctl_stuck: EpisodeSpec::new(0.05, 6),
            ..FaultPlan::quiet(11)
        };
        let inj = FaultInjector::new(plan, SimDuration::from_micros(1));
        let mut last_start: Option<u64> = None;
        let mut active_seen = 0u32;
        for q in 0..10_000u64 {
            let active = inj.ctl_fault(us(q), 2).is_some();
            // Recompute the raw start roll the injector uses internally.
            let start_roll = unit_f64(cell(11, P_CTL_STUCK, 2, q)) < 0.05;
            if start_roll {
                last_start = Some(q);
            }
            if active {
                active_seen += 1;
                let s = last_start.expect("active fault without a start roll");
                assert!(q - s < 6, "episode live {} quanta after its last start", q - s);
            }
        }
        assert!(active_seen > 0, "rate 0.05 never fired in 10k quanta");
    }

    #[test]
    fn severe_plan_fires_every_class_in_a_few_ms() {
        let inj = injector(7);
        let (mut noise, mut stuck, mut drop, mut droop, mut slew) = (0, 0, 0, 0, 0);
        let (mut delay, mut loss, mut dstuck, mut silent) = (0, 0, 0, 0);
        for q in 0..8_000 {
            let t = us(q);
            match inj.sensor_fault(t) {
                Some(SensorFault::Noise { .. }) => noise += 1,
                Some(SensorFault::StuckAt) => stuck += 1,
                Some(SensorFault::Dropout) => drop += 1,
                None => {}
            }
            droop += i32::from(inj.vr_droop(t).is_some());
            slew += i32::from(inj.vr_slew_derate(t).is_some());
            for d in 0..4 {
                match inj.link_fault(t, d) {
                    Some(LinkFault::Delay { ticks }) => {
                        assert!((1..=8).contains(&ticks));
                        delay += 1;
                    }
                    Some(LinkFault::Loss) => loss += 1,
                    None => {}
                }
                match inj.ctl_fault(t, d) {
                    Some(CtlFault::DomainStuck) => dstuck += 1,
                    Some(CtlFault::LocalSilent) => silent += 1,
                    None => {}
                }
            }
        }
        for (name, n) in [
            ("noise", noise),
            ("stuck", stuck),
            ("dropout", drop),
            ("droop", droop),
            ("slew", slew),
            ("delay", delay),
            ("loss", loss),
            ("ctl_stuck", dstuck),
            ("ctl_silent", silent),
        ] {
            assert!(n > 0, "severe plan never fired {name} in 8 ms");
        }
    }

    #[test]
    fn noise_factor_stays_in_band() {
        let inj = injector(5);
        for q in 0..20_000 {
            if let Some(SensorFault::Noise { factor }) = inj.sensor_fault(us(q)) {
                assert!((0.7..=1.3).contains(&factor), "noise factor {factor}");
            }
        }
    }
}

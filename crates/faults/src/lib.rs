//! Deterministic fault injection for the HCAPP simulator.
//!
//! HCAPP's claim — a decentralized controller hierarchy holds the package
//! under its provisioned cap — is only credible if it survives the unhappy
//! path: sensors that freeze or drop out, regulators that droop or slew
//! slowly, broadcast links that delay or lose the global-voltage schedule,
//! and domain controllers that go silent (the perturbation classes
//! ControlPULP-style 2.5D controllers are validated against). This crate
//! provides the adversarial half of that test harness:
//!
//! * [`FaultPlan`] — a declarative, bounded description of *which* fault
//!   classes fire, *how often* and *how hard*, seeded by a single `u64`.
//! * [`FaultInjector`] — a stateless oracle over a plan. Every decision is
//!   a pure function of `(seed, injection point, quantum index, domain
//!   index)` computed with a splitmix64-style finalizer, so the serial and
//!   pooled executors see byte-identical fault sequences and a run can be
//!   replayed from its seed alone.
//!
//! The *mechanisms* faults act through live where the physics lives
//! ([`hcapp_pdn::SensorFault`], [`hcapp_pdn::LinkFault`], regulator droop /
//! slew derating); this crate only decides *when* they fire. The
//! graceful-degradation response (health state machines, emergency
//! throttle) lives in `hcapp::health` on top of both.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod injector;
pub mod plan;

pub use injector::{CtlFault, FaultInjector};
pub use plan::{EpisodeSpec, FaultPlan, PRESET_LIST, PRESET_NAMES};

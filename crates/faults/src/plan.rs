//! Declarative fault plans.
//!
//! A [`FaultPlan`] names every injection point the simulator exposes and
//! gives each an [`EpisodeSpec`]: a per-quantum start probability and an
//! episode length. Magnitude knobs (noise amplitude, droop depth, slew
//! floor, link delay) are bounded by [`FaultPlan::validate`] so that the
//! degraded-mode controller's cap guarantee has a finite worst case to
//! defend against — an unbounded plan (rail shorted to ground, sensor
//! reporting -∞) is a destroyed package, not a control problem.

/// Hard ceiling on a single episode's length, in control quanta.
///
/// Bounds both the injector's backward scan (see
/// [`crate::FaultInjector`]) and the longest uninterrupted perturbation the
/// degradation layer must ride out.
pub const MAX_EPISODE_QUANTA: u32 = 64;

/// Largest mean-one multiplicative sensor-noise amplitude a plan may ask
/// for (`reading * (1 ± amplitude)`).
pub const MAX_NOISE_AMPLITUDE: f64 = 0.3;

/// Deepest single VR droop impulse a plan may ask for, in volts.
pub const MAX_DROOP_DEPTH: f64 = 0.15;

/// Lowest slew-rate derating factor a plan may ask for. The VR always
/// retains at least this fraction of its nominal slew rate, so a full-range
/// transition still completes within a handful of control periods.
pub const MIN_SLEW_DERATE: f64 = 0.25;

/// Most ticks a broadcast-delay episode may lag the global-voltage
/// schedule by.
pub const MAX_LINK_DELAY_TICKS: u32 = 8;

/// Start probability and duration for one fault class.
///
/// Each control quantum rolls an independent start; a success keeps the
/// fault active for the next `duration_quanta` quanta (overlapping starts
/// simply extend the active window — the newest start supplies the episode
/// magnitude).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpisodeSpec {
    /// Probability in `[0, 1]` that a new episode starts at a given quantum.
    pub rate: f64,
    /// Length of one episode in control quanta (clamped to
    /// [`MAX_EPISODE_QUANTA`]; 0 disables the class entirely).
    pub duration_quanta: u32,
}

impl EpisodeSpec {
    /// A spec that never fires.
    pub const OFF: EpisodeSpec = EpisodeSpec {
        rate: 0.0,
        duration_quanta: 0,
    };

    /// A spec starting with probability `rate` and running for `quanta`.
    pub const fn new(rate: f64, quanta: u32) -> Self {
        EpisodeSpec {
            rate,
            duration_quanta: quanta,
        }
    }

    /// True when this spec can never produce an episode.
    pub fn is_off(&self) -> bool {
        self.rate <= 0.0 || self.duration_quanta == 0
    }

    fn check(&self, what: &str) {
        assert!(
            self.rate.is_finite() && (0.0..=1.0).contains(&self.rate),
            "{what}: episode rate {} outside [0, 1]",
            self.rate
        );
    }
}

/// A complete, seeded description of the faults one run is subjected to.
///
/// The names [`FaultPlan::preset`] accepts, in escalating severity.
pub const PRESET_NAMES: [&str; 4] = ["quiet", "light", "moderate", "severe"];

/// [`PRESET_NAMES`] pre-joined for CLI error messages ("expected ...").
pub const PRESET_LIST: &str = "one of the fault-plan presets: quiet, light, moderate or severe";

/// Global points (sensor, VR) perturb the package-level control loop; the
/// per-domain points (link, controller) roll independently for every
/// domain index, so a 40-chiplet run sees proportionally more of them.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Root seed. Two runs with equal plans are byte-identical.
    pub seed: u64,
    /// Mean-one multiplicative noise on the package power sensor.
    pub sensor_noise: EpisodeSpec,
    /// Sensor output frozen at its last pre-fault reading.
    pub sensor_stuck: EpisodeSpec,
    /// Sensor output dropped to zero (reads as no load).
    pub sensor_dropout: EpisodeSpec,
    /// Instantaneous droop impulse on the global VR output.
    pub vr_droop: EpisodeSpec,
    /// Global VR slew rate derated (setpoints chased more slowly).
    pub vr_slew_derate: EpisodeSpec,
    /// Per-domain: global-voltage broadcast delivered late.
    pub link_delay: EpisodeSpec,
    /// Per-domain: global-voltage broadcast lost (last good value reused).
    pub link_loss: EpisodeSpec,
    /// Per-domain: domain controller ignores priority-register writes.
    pub ctl_stuck: EpisodeSpec,
    /// Per-domain: local controllers silent (ratios frozen).
    pub ctl_silent: EpisodeSpec,
    /// Noise amplitude `a` in `reading * (1 ± a)`; at most
    /// [`MAX_NOISE_AMPLITUDE`].
    pub noise_amplitude: f64,
    /// Deepest droop impulse in volts; at most [`MAX_DROOP_DEPTH`]. Each
    /// episode draws its depth uniformly from `(0, droop_depth]`.
    pub droop_depth: f64,
    /// Floor of the slew derating factor; at least [`MIN_SLEW_DERATE`].
    /// Each episode draws its factor uniformly from `[slew_floor, 1)`.
    pub slew_floor: f64,
    /// Upper bound on broadcast delay in ticks; at most
    /// [`MAX_LINK_DELAY_TICKS`]. Each episode draws from `1..=this`.
    pub delay_ticks: u32,
}

impl FaultPlan {
    /// A plan with every injection point disabled. Attaching it still arms
    /// the degradation layer (watchdogs run), which makes it useful for
    /// measuring the overhead of the failsafe machinery itself.
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            sensor_noise: EpisodeSpec::OFF,
            sensor_stuck: EpisodeSpec::OFF,
            sensor_dropout: EpisodeSpec::OFF,
            vr_droop: EpisodeSpec::OFF,
            vr_slew_derate: EpisodeSpec::OFF,
            link_delay: EpisodeSpec::OFF,
            link_loss: EpisodeSpec::OFF,
            ctl_stuck: EpisodeSpec::OFF,
            ctl_silent: EpisodeSpec::OFF,
            noise_amplitude: 0.0,
            droop_depth: 0.0,
            slew_floor: 1.0,
            delay_ticks: 1,
        }
    }

    /// Rare, short, mild faults — a healthy part late in life.
    pub fn light(seed: u64) -> Self {
        FaultPlan {
            sensor_noise: EpisodeSpec::new(0.002, 8),
            sensor_stuck: EpisodeSpec::new(0.0005, 8),
            vr_slew_derate: EpisodeSpec::new(0.001, 16),
            link_loss: EpisodeSpec::new(0.001, 4),
            noise_amplitude: 0.1,
            slew_floor: 0.5,
            ..FaultPlan::quiet(seed)
        }
    }

    /// Every fault class active at rates that exercise all three health
    /// states and the emergency throttle within a few milliseconds.
    pub fn moderate(seed: u64) -> Self {
        FaultPlan {
            sensor_noise: EpisodeSpec::new(0.004, 12),
            sensor_stuck: EpisodeSpec::new(0.002, 24),
            sensor_dropout: EpisodeSpec::new(0.001, 24),
            vr_droop: EpisodeSpec::new(0.001, 1),
            vr_slew_derate: EpisodeSpec::new(0.002, 24),
            link_delay: EpisodeSpec::new(0.002, 8),
            link_loss: EpisodeSpec::new(0.002, 8),
            ctl_stuck: EpisodeSpec::new(0.001, 32),
            ctl_silent: EpisodeSpec::new(0.001, 32),
            noise_amplitude: 0.2,
            droop_depth: 0.08,
            slew_floor: 0.4,
            delay_ticks: 4,
            ..FaultPlan::quiet(seed)
        }
    }

    /// Maximum legal rates and magnitudes — the stress case the acceptance
    /// bound is checked against.
    pub fn severe(seed: u64) -> Self {
        FaultPlan {
            sensor_noise: EpisodeSpec::new(0.01, 24),
            sensor_stuck: EpisodeSpec::new(0.006, 48),
            sensor_dropout: EpisodeSpec::new(0.004, 48),
            vr_droop: EpisodeSpec::new(0.003, 1),
            vr_slew_derate: EpisodeSpec::new(0.006, 48),
            link_delay: EpisodeSpec::new(0.006, 16),
            link_loss: EpisodeSpec::new(0.006, 16),
            ctl_stuck: EpisodeSpec::new(0.003, 64),
            ctl_silent: EpisodeSpec::new(0.003, 64),
            noise_amplitude: MAX_NOISE_AMPLITUDE,
            droop_depth: MAX_DROOP_DEPTH,
            slew_floor: MIN_SLEW_DERATE,
            delay_ticks: MAX_LINK_DELAY_TICKS,
            ..FaultPlan::quiet(seed)
        }
    }

    /// Look a preset up by its CLI name; [`PRESET_NAMES`] lists the names
    /// this accepts.
    pub fn preset(name: &str, seed: u64) -> Option<FaultPlan> {
        match name {
            "quiet" => Some(FaultPlan::quiet(seed)),
            "light" => Some(FaultPlan::light(seed)),
            "moderate" => Some(FaultPlan::moderate(seed)),
            "severe" => Some(FaultPlan::severe(seed)),
            _ => None,
        }
    }

    /// Check every rate and magnitude against the crate-level bounds.
    ///
    /// # Panics
    /// Panics (with the offending field named) when a rate leaves `[0, 1]`
    /// or a magnitude exceeds its documented ceiling.
    pub fn validate(&self) {
        self.sensor_noise.check("sensor_noise");
        self.sensor_stuck.check("sensor_stuck");
        self.sensor_dropout.check("sensor_dropout");
        self.vr_droop.check("vr_droop");
        self.vr_slew_derate.check("vr_slew_derate");
        self.link_delay.check("link_delay");
        self.link_loss.check("link_loss");
        self.ctl_stuck.check("ctl_stuck");
        self.ctl_silent.check("ctl_silent");
        assert!(
            self.noise_amplitude >= 0.0 && self.noise_amplitude <= MAX_NOISE_AMPLITUDE,
            "noise_amplitude {} outside [0, {MAX_NOISE_AMPLITUDE}]",
            self.noise_amplitude
        );
        assert!(
            self.droop_depth >= 0.0 && self.droop_depth <= MAX_DROOP_DEPTH,
            "droop_depth {} outside [0, {MAX_DROOP_DEPTH}]",
            self.droop_depth
        );
        assert!(
            self.slew_floor >= MIN_SLEW_DERATE && self.slew_floor <= 1.0,
            "slew_floor {} outside [{MIN_SLEW_DERATE}, 1]",
            self.slew_floor
        );
        assert!(
            self.delay_ticks >= 1 && self.delay_ticks <= MAX_LINK_DELAY_TICKS,
            "delay_ticks {} outside [1, {MAX_LINK_DELAY_TICKS}]",
            self.delay_ticks
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for name in PRESET_NAMES {
            FaultPlan::preset(name, 7).expect("known preset").validate();
        }
        assert!(FaultPlan::preset("loud", 7).is_none());
    }

    #[test]
    fn preset_names_stay_in_sync_with_preset() {
        // Every advertised name resolves, and the pre-joined error-message
        // list mentions each one — so a CLI miss names every valid choice.
        for name in PRESET_NAMES {
            assert!(FaultPlan::preset(name, 1).is_some(), "{name} missing");
            assert!(PRESET_LIST.contains(name), "{name} absent from PRESET_LIST");
        }
    }

    #[test]
    fn quiet_plan_is_fully_off() {
        let p = FaultPlan::quiet(3);
        for spec in [
            p.sensor_noise,
            p.sensor_stuck,
            p.sensor_dropout,
            p.vr_droop,
            p.vr_slew_derate,
            p.link_delay,
            p.link_loss,
            p.ctl_stuck,
            p.ctl_silent,
        ] {
            assert!(spec.is_off());
        }
    }

    #[test]
    #[should_panic(expected = "noise_amplitude")]
    fn oversized_noise_rejected() {
        let p = FaultPlan {
            noise_amplitude: 0.9,
            ..FaultPlan::quiet(0)
        };
        p.validate();
    }

    #[test]
    #[should_panic(expected = "slew_floor")]
    fn slew_floor_below_minimum_rejected() {
        let p = FaultPlan {
            slew_floor: 0.01,
            ..FaultPlan::quiet(0)
        };
        p.validate();
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn out_of_range_rate_rejected() {
        let p = FaultPlan {
            sensor_stuck: EpisodeSpec::new(1.5, 4),
            ..FaultPlan::quiet(0)
        };
        p.validate();
    }
}

//! The batch driver behind `hcapp fuzz` and the soak script.
//!
//! [`run_campaign`] derives one independent splitmix stream per case from
//! the campaign seed, generates and checks each case in order, shrinks any
//! failure, and returns a byte-stable log — two invocations with the same
//! config produce identical output, which is what lets `scripts/check.sh`
//! gate the smoke corpus by literal byte comparison.

use crate::case::{FuzzCase, Plant};
use crate::gen::generate;
use crate::oracle::{check_case, Failure};
use crate::rng::derive;
use crate::shrink::shrink;

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Campaign seed; per-case seeds are derived from it.
    pub seed: u64,
    /// Number of cases to generate and check.
    pub cases: u64,
    /// Plant carried by every generated case (`Plant::None` for real
    /// fuzzing; a defect variant to exercise the catch/shrink pipeline).
    pub plant: Plant,
}

/// One caught divergence: the case as generated, its shrunk repro, and the
/// oracle legs that tripped.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The case exactly as the generator emitted it.
    pub original: FuzzCase,
    /// The locally-minimal repro that still fails.
    pub shrunk: FuzzCase,
    /// The failures the *original* case produced.
    pub failures: Vec<Failure>,
}

/// Everything a campaign produced.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Byte-stable per-case log (one line per case plus a summary line).
    pub log: String,
    /// Caught and shrunk divergences, in case order.
    pub findings: Vec<Finding>,
    /// Number of cases checked.
    pub cases: u64,
}

impl CampaignReport {
    /// True if every case upheld every oracle.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Run `cfg.cases` generated cases through the full oracle set, shrinking
/// every failure. Deterministic: the report (log included) is a pure
/// function of `cfg`.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let mut log = String::new();
    let mut findings = Vec::new();
    log.push_str(&format!(
        "hcapp-fuzz campaign seed={:#018x} cases={} plant={}\n",
        cfg.seed,
        cfg.cases,
        cfg.plant.tag()
    ));
    for i in 0..cfg.cases {
        let mut case = generate(derive(cfg.seed, i));
        case.plant = cfg.plant;
        let failures = check_case(&case);
        if failures.is_empty() {
            log.push_str(&format!("case {i:03} {} | ok\n", case.brief()));
        } else {
            let mut legs: Vec<&str> = failures.iter().map(|f| f.leg).collect();
            legs.dedup();
            log.push_str(&format!(
                "case {i:03} {} | FAIL {}\n",
                case.brief(),
                legs.join(",")
            ));
            let shrunk = shrink(&case);
            log.push_str(&format!("  shrunk -> {}\n", shrunk.brief()));
            for f in &failures {
                log.push_str(&format!("  {f}\n"));
            }
            findings.push(Finding {
                original: case,
                shrunk,
                failures,
            });
        }
    }
    log.push_str(&format!(
        "campaign done: {} cases, {} failing\n",
        cfg.cases,
        findings.len()
    ));
    CampaignReport {
        log,
        findings,
        cases: cfg.cases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_log_is_byte_stable() {
        let cfg = CampaignConfig {
            seed: 0xC0FFEE,
            cases: 3,
            plant: Plant::None,
        };
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert_eq!(a.log, b.log);
        assert!(a.clean(), "seed corpus regressed:\n{}", a.log);
        assert_eq!(a.cases, 3);
    }

    #[test]
    fn planted_campaign_catches_and_shrinks() {
        let cfg = CampaignConfig {
            seed: 5,
            cases: 1,
            plant: Plant::PooledBitflip,
        };
        let report = run_campaign(&cfg);
        assert_eq!(report.findings.len(), 1, "log:\n{}", report.log);
        let f = &report.findings[0];
        assert!(f.failures.iter().all(|x| x.leg == "pooled"));
        assert!(!check_case(&f.shrunk).is_empty(), "shrunk repro passes");
        assert!(report.log.contains("FAIL pooled"));
        assert!(report.log.contains("shrunk ->"));
    }
}

//! One fuzz case and the committed `hcapp.fuzzcase` interchange format.
//!
//! A [`FuzzCase`] is the complete, self-contained description of one
//! oracle evaluation: the system/run configuration under test, the
//! executor knobs the differential legs exercise (batch size, worker
//! count, permutation seed, kill point, checkpoint cadence), and any
//! [`Plant`]ed defect. The text codec round-trips every field exactly
//! (floats travel as IEEE-754 bit patterns), so `hcapp fuzz --replay`
//! reruns a shrunk repro bit-for-bit — including reproducing a planted
//! divergence, which is how the plant → catch → shrink → replay pipeline
//! is verified end to end.

use hcapp::coordinator::{RunConfig, SoftwareConfig};
use hcapp::scheme::ControlScheme;
use hcapp::software::ComponentKind;
use hcapp::system::SystemConfig;
use hcapp_faults::FaultPlan;
use hcapp_sim_core::time::{SimDuration, SimTime};
use hcapp_sim_core::units::{Volt, Watt};
use hcapp_workloads::combos::combo_suite;

/// Schema header of the interchange format; the version suffix gates
/// decoding, so a future field change cannot silently misparse old files.
pub const SCHEMA: &str = "hcapp.fuzzcase v1";

/// A deliberately-introduced defect carried by the case. `None` for real
/// fuzzing; the other variants perturb exactly one oracle leg so the
/// detection/shrinking/replay machinery can be exercised (and gated in CI)
/// without waiting for a genuine divergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Plant {
    /// No planted defect.
    None,
    /// Flip the lowest mantissa bit of the pooled leg's average power
    /// before comparison — the smallest possible executor divergence.
    PooledBitflip,
    /// Truncate the encoded outcome before the cache-roundtrip decode —
    /// a torn cache entry.
    CacheTruncate,
}

impl Plant {
    /// Stable tag used by the codec and the CLI `--plant` flag.
    pub fn tag(self) -> &'static str {
        match self {
            Plant::None => "none",
            Plant::PooledBitflip => "pooled-bitflip",
            Plant::CacheTruncate => "cache-truncate",
        }
    }

    /// Inverse of [`Plant::tag`].
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "none" => Some(Plant::None),
            "pooled-bitflip" => Some(Plant::PooledBitflip),
            "cache-truncate" => Some(Plant::CacheTruncate),
            _ => None,
        }
    }
}

/// One point in the fuzzed configuration space.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzCase {
    /// The case's own seed (identity in logs; also keys the metamorphic
    /// probe points).
    pub seed: u64,
    /// Index into the Table 3 combo suite (taken modulo its length).
    pub combo: usize,
    /// Use the 4-domain system with the memory domain.
    pub memory: bool,
    /// `SystemConfig` seed (workload phase alignment).
    pub sys_seed: u64,
    /// Control scheme under test.
    pub scheme: ControlScheme,
    /// Run duration in nanoseconds (whole microseconds, so every scheme's
    /// quantum stays tick-aligned).
    pub duration_ns: u64,
    /// Power target in watts (`P_SPEC`).
    pub target: f64,
    /// Software priority policy.
    pub software: SoftwareConfig,
    /// Fault plan as `(preset name, plan seed)`, if any.
    pub faults: Option<(String, u64)>,
    /// Scheduled mid-run retargets `(time ns, watts)`, strictly increasing
    /// in time. Only generated for dynamic schemes (the fixed baseline
    /// ignores them by construction).
    pub retargets: Vec<(u64, f64)>,
    /// Record the package power trace.
    pub record_trace: bool,
    /// Record the global voltage trace.
    pub record_vtrace: bool,
    /// `batch_quanta` for the batched leg.
    pub batch: usize,
    /// Worker count for the pooled/permuted legs.
    pub workers: usize,
    /// Adversarial reply-permutation seed for the permuted leg.
    pub permute_seed: u64,
    /// Quantum to kill at in the kill-and-resume leg (clamped to the run's
    /// total; 0 skips the kill and resumes nothing).
    pub kill_at: u64,
    /// Checkpoint cadence for the kill-and-resume leg.
    pub checkpoint_every: u64,
    /// Planted defect, if any.
    pub plant: Plant,
}

impl FuzzCase {
    /// Materialize the `(SystemConfig, RunConfig)` pair this case
    /// describes. The returned run carries no tracer/profiler — the oracle
    /// legs attach their own hooks per executor.
    pub fn build(&self) -> (SystemConfig, RunConfig) {
        let suite = combo_suite();
        // simlint: allow(L6): the index is reduced modulo the suite length on this line
        let combo = suite[self.combo % suite.len()];
        let sys = if self.memory {
            SystemConfig::paper_system_with_memory(combo, self.sys_seed)
        } else {
            SystemConfig::paper_system(combo, self.sys_seed)
        };
        let mut run = RunConfig::new(
            SimDuration::from_nanos(self.duration_ns),
            self.scheme,
            Watt::new(self.target),
        )
        .with_software(self.software)
        .with_batch_quanta(self.batch.max(1));
        if self.record_trace {
            run = run.with_trace();
        }
        if self.record_vtrace {
            run = run.with_voltage_trace();
        }
        if let Some((name, fseed)) = &self.faults {
            if let Some(plan) = FaultPlan::preset(name, *fseed) {
                run = run.with_faults(plan);
            }
        }
        for &(ns, w) in &self.retargets {
            run = run.with_retarget(SimTime::from_nanos(ns), Watt::new(w));
        }
        (sys, run)
    }

    /// One-line summary for campaign logs (deterministic: nothing but the
    /// case's own fields).
    pub fn brief(&self) -> String {
        format!(
            "seed={:#018x} combo={} mem={} scheme={} dur={}us target={} sw={} faults={} rt={} batch={} workers={} kill@{} ckpt={} plant={}",
            self.seed,
            self.combo,
            u8::from(self.memory),
            scheme_tag(self.scheme),
            self.duration_ns / 1_000,
            self.target,
            software_tag(self.software),
            match &self.faults {
                None => "none".to_string(),
                Some((name, s)) => format!("{name}:{s}"),
            },
            self.retargets.len(),
            self.batch,
            self.workers,
            self.kill_at,
            self.checkpoint_every,
            self.plant.tag(),
        )
    }

    /// Serialize to the committed `hcapp.fuzzcase` text form.
    pub fn encode(&self) -> String {
        let mut s = String::new();
        s.push_str(SCHEMA);
        s.push('\n');
        s.push_str(&format!("seed {}\n", self.seed));
        s.push_str(&format!("combo {}\n", self.combo));
        s.push_str(&format!("memory {}\n", u8::from(self.memory)));
        s.push_str(&format!("sys_seed {}\n", self.sys_seed));
        s.push_str(&format!("scheme {}\n", scheme_tag(self.scheme)));
        s.push_str(&format!("duration_ns {}\n", self.duration_ns));
        s.push_str(&format!("target {}\n", f64_hex(self.target)));
        s.push_str(&format!("software {}\n", software_tag(self.software)));
        match &self.faults {
            None => s.push_str("faults none\n"),
            Some((name, fseed)) => s.push_str(&format!("faults {name} {fseed}\n")),
        }
        s.push_str(&format!("record_trace {}\n", u8::from(self.record_trace)));
        s.push_str(&format!("record_vtrace {}\n", u8::from(self.record_vtrace)));
        s.push_str(&format!("batch {}\n", self.batch));
        s.push_str(&format!("workers {}\n", self.workers));
        s.push_str(&format!("permute_seed {}\n", self.permute_seed));
        s.push_str(&format!("kill_at {}\n", self.kill_at));
        s.push_str(&format!("checkpoint_every {}\n", self.checkpoint_every));
        s.push_str(&format!("plant {}\n", self.plant.tag()));
        s.push_str(&format!("retargets {}\n", self.retargets.len()));
        for (ns, w) in &self.retargets {
            s.push_str(&format!("rt {ns} {}\n", f64_hex(*w)));
        }
        s
    }

    /// Parse the text form back, validating every field — a hand-edited
    /// file that would panic the simulator (unsorted retargets, zero
    /// duration, misaligned times) is rejected here with a message naming
    /// the offense instead.
    pub fn decode(text: &str) -> Result<FuzzCase, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let head = lines.next().ok_or("empty fuzzcase")?;
        if head != SCHEMA {
            return Err(format!("unknown schema {head:?} (expected {SCHEMA:?})"));
        }
        let seed = parse_u64(&field(&mut lines, "seed")?)?;
        let combo = parse_u64(&field(&mut lines, "combo")?)? as usize;
        let memory = parse_bool(&field(&mut lines, "memory")?)?;
        let sys_seed = parse_u64(&field(&mut lines, "sys_seed")?)?;
        let scheme = parse_scheme(&field(&mut lines, "scheme")?)?;
        let duration_ns = parse_u64(&field(&mut lines, "duration_ns")?)?;
        let target = parse_f64_hex(&field(&mut lines, "target")?)?;
        let software = parse_software(&field(&mut lines, "software")?)?;
        let faults_field = field(&mut lines, "faults")?;
        let faults = if faults_field == "none" {
            None
        } else {
            let (name, fseed) = faults_field
                .split_once(' ')
                .ok_or("faults: expected `none` or `<preset> <seed>`")?;
            if FaultPlan::preset(name, 0).is_none() {
                return Err(format!("faults: unknown preset {name:?}"));
            }
            Some((name.to_string(), parse_u64(fseed)?))
        };
        let record_trace = parse_bool(&field(&mut lines, "record_trace")?)?;
        let record_vtrace = parse_bool(&field(&mut lines, "record_vtrace")?)?;
        let batch = parse_u64(&field(&mut lines, "batch")?)? as usize;
        let workers = parse_u64(&field(&mut lines, "workers")?)? as usize;
        let permute_seed = parse_u64(&field(&mut lines, "permute_seed")?)?;
        let kill_at = parse_u64(&field(&mut lines, "kill_at")?)?;
        let checkpoint_every = parse_u64(&field(&mut lines, "checkpoint_every")?)?;
        let plant = Plant::from_tag(&field(&mut lines, "plant")?)
            .ok_or("plant: unknown tag")?;
        let n_rt = parse_u64(&field(&mut lines, "retargets")?)? as usize;
        let mut retargets = Vec::with_capacity(n_rt);
        for _ in 0..n_rt {
            let row = field(&mut lines, "rt")?;
            let (ns, w) = row.split_once(' ').ok_or("rt: expected `<ns> <hex>`")?;
            retargets.push((parse_u64(ns)?, parse_f64_hex(w)?));
        }
        if lines.next().is_some() {
            return Err("trailing lines after retarget list".into());
        }
        let case = FuzzCase {
            seed,
            combo,
            memory,
            sys_seed,
            scheme,
            duration_ns,
            target,
            software,
            faults,
            retargets,
            record_trace,
            record_vtrace,
            batch,
            workers,
            permute_seed,
            kill_at,
            checkpoint_every,
            plant,
        };
        case.validate()?;
        Ok(case)
    }

    /// Field-level sanity: everything the simulator would `assert!` on is
    /// rejected with an error instead, so replaying an edited file can
    /// never panic.
    pub fn validate(&self) -> Result<(), String> {
        if self.duration_ns == 0 || self.duration_ns % 1_000 != 0 {
            return Err("duration_ns must be a positive whole microsecond".into());
        }
        if !(self.target.is_finite() && self.target > 0.0) {
            return Err("target must be a positive finite wattage".into());
        }
        if let ControlScheme::FixedVoltage(v) = self.scheme {
            if !(v.value().is_finite() && v.value() > 0.0) {
                return Err("fixed scheme voltage must be positive and finite".into());
            }
        }
        if self.batch == 0 {
            return Err("batch must be at least 1".into());
        }
        if self.workers == 0 {
            return Err("workers must be at least 1".into());
        }
        if self.checkpoint_every == 0 {
            return Err("checkpoint_every must be at least 1".into());
        }
        let mut last: Option<u64> = None;
        for &(ns, w) in &self.retargets {
            if last.is_some_and(|prev| ns <= prev) {
                return Err(format!("retarget at {ns} ns is not strictly increasing"));
            }
            if !(w.is_finite() && w > 0.0) {
                return Err(format!("retarget at {ns} ns has a non-positive wattage"));
            }
            last = Some(ns);
        }
        Ok(())
    }
}

fn field<'a>(lines: &mut impl Iterator<Item = &'a str>, label: &str) -> Result<String, String> {
    let line = lines.next().ok_or_else(|| format!("missing field {label:?}"))?;
    line.strip_prefix(label)
        .and_then(|r| r.strip_prefix(' '))
        .map(str::to_string)
        .ok_or_else(|| format!("expected field {label:?}, found {line:?}"))
}

fn parse_u64(s: &str) -> Result<u64, String> {
    s.trim().parse().map_err(|_| format!("bad integer {s:?}"))
}

fn parse_bool(s: &str) -> Result<bool, String> {
    match s.trim() {
        "0" => Ok(false),
        "1" => Ok(true),
        other => Err(format!("bad flag {other:?} (expected 0 or 1)")),
    }
}

/// IEEE-754 bit pattern in hex — the same convention the outcome codec
/// uses, so a fuzzcase survives the round trip bit-exactly.
pub fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_f64_hex(s: &str) -> Result<f64, String> {
    u64::from_str_radix(s.trim(), 16)
        .map(f64::from_bits)
        .map_err(|_| format!("bad f64 bit pattern {s:?}"))
}

fn scheme_tag(s: ControlScheme) -> String {
    match s {
        ControlScheme::Hcapp => "hcapp".into(),
        ControlScheme::RaplLike => "rapl".into(),
        ControlScheme::SoftwareLike => "software".into(),
        ControlScheme::FixedVoltage(v) => format!("fixed:{}", f64_hex(v.value())),
        ControlScheme::CustomPeriod(d) => format!("custom:{}", d.as_nanos()),
    }
}

fn parse_scheme(tag: &str) -> Result<ControlScheme, String> {
    match tag {
        "hcapp" => return Ok(ControlScheme::Hcapp),
        "rapl" => return Ok(ControlScheme::RaplLike),
        "software" => return Ok(ControlScheme::SoftwareLike),
        _ => {}
    }
    if let Some(hex) = tag.strip_prefix("fixed:") {
        return Ok(ControlScheme::FixedVoltage(Volt::new(parse_f64_hex(hex)?)));
    }
    if let Some(ns) = tag.strip_prefix("custom:") {
        let ns = parse_u64(ns)?;
        if ns == 0 || ns % 1_000 != 0 {
            return Err("custom period must be a positive whole microsecond".into());
        }
        return Ok(ControlScheme::CustomPeriod(SimDuration::from_nanos(ns)));
    }
    Err(format!("unknown scheme tag {tag:?}"))
}

fn software_tag(sw: SoftwareConfig) -> &'static str {
    match sw {
        SoftwareConfig::None => "none",
        SoftwareConfig::StaticPriority(ComponentKind::Cpu) => "cpu",
        SoftwareConfig::StaticPriority(ComponentKind::Gpu) => "gpu",
        SoftwareConfig::StaticPriority(ComponentKind::Sha) => "sha",
        SoftwareConfig::StaticPriority(ComponentKind::Memory) => "memory",
        SoftwareConfig::DynamicBacklog => "dynamic",
    }
}

fn parse_software(tag: &str) -> Result<SoftwareConfig, String> {
    match tag {
        "none" => Ok(SoftwareConfig::None),
        "cpu" => Ok(SoftwareConfig::StaticPriority(ComponentKind::Cpu)),
        "gpu" => Ok(SoftwareConfig::StaticPriority(ComponentKind::Gpu)),
        "sha" => Ok(SoftwareConfig::StaticPriority(ComponentKind::Sha)),
        "memory" => Ok(SoftwareConfig::StaticPriority(ComponentKind::Memory)),
        "dynamic" => Ok(SoftwareConfig::DynamicBacklog),
        _ => Err(format!("unknown software tag {tag:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FuzzCase {
        FuzzCase {
            seed: 0xDEAD_BEEF,
            combo: 3,
            memory: true,
            sys_seed: 17,
            scheme: ControlScheme::Hcapp,
            duration_ns: 200_000,
            target: 84.28,
            software: SoftwareConfig::StaticPriority(ComponentKind::Gpu),
            faults: Some(("light".into(), 9)),
            retargets: vec![(0, 90.0), (100_000, 70.5)],
            record_trace: true,
            record_vtrace: false,
            batch: 32,
            workers: 3,
            permute_seed: 0x5EED,
            kill_at: 77,
            checkpoint_every: 16,
            plant: Plant::None,
        }
    }

    #[test]
    fn codec_round_trips_every_field() {
        let case = sample();
        let text = case.encode();
        assert!(text.starts_with(SCHEMA));
        let back = FuzzCase::decode(&text).expect("own encoding decodes");
        assert_eq!(back, case);
        // Floats survive bit-exactly, including awkward values.
        let mut odd = case;
        odd.target = f64::from_bits(0x4055_1234_5678_9ABC);
        odd.plant = Plant::CacheTruncate;
        let back = FuzzCase::decode(&odd.encode()).expect("odd case decodes");
        assert_eq!(back.target.to_bits(), odd.target.to_bits());
        assert_eq!(back.plant, Plant::CacheTruncate);
    }

    #[test]
    fn decode_rejects_damage() {
        assert!(FuzzCase::decode("").is_err());
        assert!(FuzzCase::decode("not-a-fuzzcase\n").is_err());
        let good = sample().encode();
        // Truncation.
        assert!(FuzzCase::decode(&good[..good.len() / 2]).is_err());
        // Trailing junk.
        assert!(FuzzCase::decode(&format!("{good}extra\n")).is_err());
        // Unsorted retargets would panic `with_retarget`; rejected here.
        let mut bad = sample();
        bad.retargets = vec![(100_000, 90.0), (50_000, 70.0)];
        assert!(FuzzCase::decode(&bad.encode()).is_err());
        // Zero duration.
        let mut bad = sample();
        bad.duration_ns = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn build_produces_a_valid_simulation_config() {
        let (sys, run) = sample().build();
        assert_eq!(sys.domains.len(), 4, "memory case adds the 4th domain");
        run.validate(&sys);
        assert_eq!(run.retargets.len(), 2);
        assert!(run.faults.is_some());
    }

    #[test]
    fn plant_tags_round_trip() {
        for p in [Plant::None, Plant::PooledBitflip, Plant::CacheTruncate] {
            assert_eq!(Plant::from_tag(p.tag()), Some(p));
        }
        assert_eq!(Plant::from_tag("bogus"), None);
    }
}

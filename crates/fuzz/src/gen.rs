//! Seeded case generation: valid by construction, biased toward edges.
//!
//! `generate(seed)` is a pure function — same seed, same case, on every
//! machine — and every case it emits passes [`FuzzCase::validate`] and
//! builds a `(SystemConfig, RunConfig)` pair the simulator accepts without
//! panicking. Boundary bias is deliberate: retargets at `t = 0` and at the
//! run's end, single-quantum batches, one-worker pools, kill points at the
//! first and last resumable quantum — the places where off-by-one bugs in
//! the executors live.

use hcapp::coordinator::SoftwareConfig;
use hcapp::scheme::ControlScheme;
use hcapp::software::ComponentKind;
use hcapp::total_quanta;
use hcapp_faults::PRESET_NAMES;
use hcapp_sim_core::time::SimDuration;
use hcapp_sim_core::units::Volt;

use crate::case::{FuzzCase, Plant};
use crate::rng::SplitMix64;

/// Candidate fixed rail voltages (spanning the paper system's DVFS range).
const FIXED_RAILS: [f64; 4] = [0.7, 0.85, 1.0, 1.2];
/// Candidate custom control periods, in whole microseconds.
const CUSTOM_PERIODS_US: [u64; 4] = [2, 5, 10, 50];
/// Boundary-biased power targets in watts (the paper sweeps 40–110 W with
/// 84.28 W as the guardbanded sweet spot).
const TARGETS_W: [f64; 6] = [40.0, 60.0, 80.0, 84.28, 95.0, 110.0];
/// Boundary-biased run durations in whole microseconds.
const DURATIONS_US: [u64; 4] = [100, 200, 500, 1000];
/// Batch sizes: the degenerate 1, a non-divisor 3, the default 32, and an
/// oversized 64 (more quanta per dispatch than short runs even have).
const BATCHES: [usize; 4] = [1, 3, 32, 64];

/// Generate the fuzz case for `seed`. Deterministic and panic-free for
/// every seed; the emitted case always validates.
pub fn generate(seed: u64) -> FuzzCase {
    let mut r = SplitMix64::new(seed);
    let combo = r.below(8) as usize;
    let memory = r.chance(25);
    let sys_seed = 1 + r.below(1000);
    let scheme = gen_scheme(&mut r);
    let duration_us = if r.chance(50) {
        *r.pick(&DURATIONS_US)
    } else {
        100 + r.below(900)
    };
    let duration_ns = duration_us * 1_000;
    let target = if r.chance(70) {
        *r.pick(&TARGETS_W)
    } else {
        40.0 + r.below(71) as f64
    };
    let software = gen_software(&mut r);
    let faults = if r.chance(35) {
        Some(((*r.pick(&PRESET_NAMES)).to_string(), r.below(100)))
    } else {
        None
    };
    let record_trace = r.chance(30);
    let record_vtrace = r.chance(20);
    let retargets = gen_retargets(&mut r, scheme, duration_ns);
    let batch = *r.pick(&BATCHES);
    let workers = 1 + r.below(4) as usize;
    let permute_seed = r.next_u64();
    let checkpoint_every = if r.chance(80) {
        *r.pick(&[16u64, 64])
    } else {
        1 + r.below(8)
    };

    let mut case = FuzzCase {
        seed,
        combo,
        memory,
        sys_seed,
        scheme,
        duration_ns,
        target,
        software,
        faults,
        retargets,
        record_trace,
        record_vtrace,
        batch,
        workers,
        permute_seed,
        kill_at: 0,
        checkpoint_every,
        plant: Plant::None,
    };
    // The kill point needs the run's actual quantum count, which depends on
    // the scheme's period — build once and place it at a boundary: the
    // first resumable quantum, the midpoint, or the very last one.
    let (sys, run) = case.build();
    let total = total_quanta(&sys, &run).max(1);
    case.kill_at = match r.below(3) {
        0 => 1,
        1 => (total / 2).max(1),
        _ => total.saturating_sub(1).max(1),
    };
    case
}

fn gen_scheme(r: &mut SplitMix64) -> ControlScheme {
    match r.below(100) {
        0..=39 => ControlScheme::Hcapp,
        40..=59 => ControlScheme::RaplLike,
        60..=69 => ControlScheme::SoftwareLike,
        70..=84 => ControlScheme::FixedVoltage(Volt::new(*r.pick(&FIXED_RAILS))),
        _ => ControlScheme::CustomPeriod(SimDuration::from_nanos(
            r.pick(&CUSTOM_PERIODS_US) * 1_000,
        )),
    }
}

fn gen_software(r: &mut SplitMix64) -> SoftwareConfig {
    if r.chance(60) {
        return SoftwareConfig::None;
    }
    match r.below(4) {
        0 => SoftwareConfig::StaticPriority(ComponentKind::Cpu),
        1 => SoftwareConfig::StaticPriority(ComponentKind::Gpu),
        2 => SoftwareConfig::StaticPriority(ComponentKind::Sha),
        _ => SoftwareConfig::DynamicBacklog,
    }
}

/// Retargets only make sense for dynamic schemes — the fixed baseline
/// ignores them by construction, so attaching one there would just dilute
/// the corpus. Times are biased to the run's edges and kept strictly
/// increasing.
fn gen_retargets(r: &mut SplitMix64, scheme: ControlScheme, duration_ns: u64) -> Vec<(u64, f64)> {
    if scheme.control_period().is_none() {
        return Vec::new();
    }
    let n = r.below(4);
    let mut times: Vec<u64> = (0..n)
        .map(|_| match r.below(4) {
            0 => 0,
            1 => duration_ns,
            _ => r.below(duration_ns / 1_000) * 1_000,
        })
        .collect();
    times.sort_unstable();
    times.dedup();
    times
        .into_iter()
        .map(|t| (t, 50.0 + r.below(61) as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 0xC0FFEE, u64::MAX] {
            assert_eq!(generate(seed), generate(seed));
        }
        assert_ne!(generate(1), generate(2));
    }

    #[test]
    fn every_case_is_valid_by_construction() {
        for seed in 0..200u64 {
            let case = generate(seed);
            case.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let (sys, run) = case.build();
            sys.validate();
            run.validate(&sys);
            assert!(case.kill_at >= 1, "seed {seed}: kill point unset");
            if case.scheme.control_period().is_none() {
                assert!(case.retargets.is_empty(), "seed {seed}: retarget on fixed");
            }
        }
    }

    #[test]
    fn corpus_covers_the_interesting_axes() {
        let cases: Vec<FuzzCase> = (0..200).map(generate).collect();
        assert!(cases.iter().any(|c| c.memory));
        assert!(cases.iter().any(|c| c.faults.is_some()));
        assert!(cases.iter().any(|c| !c.retargets.is_empty()));
        assert!(cases.iter().any(|c| c.batch == 1));
        assert!(cases.iter().any(|c| c.batch > 1));
        assert!(cases.iter().any(|c| c.workers == 1));
        assert!(cases
            .iter()
            .any(|c| matches!(c.scheme, ControlScheme::FixedVoltage(_))));
        assert!(cases
            .iter()
            .any(|c| matches!(c.scheme, ControlScheme::CustomPeriod(_))));
        assert!(cases.iter().any(|c| c.retargets.iter().any(|&(t, _)| t == 0)));
    }
}

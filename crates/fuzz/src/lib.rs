//! Deterministic config-space fuzzer for the HCAPP executor fleet.
//!
//! The repo's determinism contract says five executors — serial, pooled,
//! batched, adversarially permuted, and killed-and-resumed — must agree
//! *byte for byte* on every run, and the cached replay of any outcome must
//! be bit-identical to the run that produced it. Hand-picked tests pin
//! that contract at a handful of points; this crate sweeps it across the
//! config × scheme × fault × retarget space:
//!
//! * [`gen`] — a seeded, fully deterministic case generator
//!   (splitmix64-keyed, no wall clock, no OS RNG) with boundary-value
//!   bias: retargets at `t = 0` and at the run's end, single-quantum
//!   batches, one-worker pools, kill points at the first and last
//!   checkpointable quantum.
//! * [`oracle`] — the differential oracle (six legs: serial reference,
//!   pooled, permuted, batched, kill-and-resume, cache-roundtrip; each
//!   diffing `encode_outcome` bytes, the JSONL trace, and the replayed
//!   `hcapp.report`) plus the metamorphic oracle checking three
//!   paper-derived invariants: PPE invariance under power-of-two unit
//!   scaling (Eq. 1–2 normalize by the provisioned power), last-write-wins
//!   priority-permutation symmetry of the domain controller (§5.3's
//!   register interface), and retarget time-shift equivariance (§5.2's
//!   dynamic limit applies at the next quantum boundary, so any shift
//!   within a boundary bucket is invisible).
//! * [`shrink`] — greedy failing-case reduction (retarget-list, duration,
//!   fault-plan, domain-count, executor-knob passes) to a minimal repro.
//! * [`case`] — the committed `hcapp.fuzzcase` text format that
//!   `hcapp fuzz --replay` reruns exactly, including any planted defect.
//! * [`campaign`] — the batch driver behind `hcapp fuzz --smoke` and the
//!   soak script, with a byte-stable log (two invocations with the same
//!   seed produce identical output).
//!
//! Everything here is observational: the fuzzer builds ordinary
//! `(SystemConfig, RunConfig)` pairs and drives the public executors, so a
//! reported divergence is always reproducible with the CLI alone.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod campaign;
pub mod case;
pub mod gen;
pub mod oracle;
pub mod rng;
pub mod shrink;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport};
pub use case::{FuzzCase, Plant};
pub use gen::generate;
pub use oracle::{check_case, Failure};
pub use shrink::shrink;

//! The differential and metamorphic oracles.
//!
//! [`check_case`] runs one [`FuzzCase`] through every executor the repo
//! ships and diffs three artifacts against the serial reference: the
//! encoded outcome (`encode_outcome` bytes — every float as its IEEE-754
//! bit pattern), the JSONL telemetry trace, and the `hcapp.report` replayed
//! offline from that trace. Six differential legs:
//!
//! 1. **serial** — the traced reference run.
//! 2. **pooled** — `run_parallel(workers)`.
//! 3. **permuted** — `run_parallel_permuted(workers, seed)`, the
//!    adversarial worker-reply ordering.
//! 4. **batched** — untraced serial at `batch_quanta = 1` and at the case's
//!    batch size.
//! 5. **resume** — kill at the case's quantum, resume from the checkpoint,
//!    compare the outcome *and* the stitched trace-sink bytes.
//! 6. **cache** — `encode_outcome` → `decode_outcome` → re-encode, plus a
//!    disk roundtrip through `RunCache`.
//!
//! Then three metamorphic invariants derived from the paper, checked on the
//! reference outcome (no second opinion needed — the transformed run must
//! agree with the original bit for bit):
//!
//! * **meta-ppe** — Eq. 1–2/4 normalize by the provisioned power, so
//!   scaling the provisioned budget by a power of two must scale PPE by
//!   exactly its inverse (power-of-two float ops touch only the exponent).
//! * **meta-priority** — §5.3's priority register is last-write-wins:
//!   permuting all but the final write cannot change any domain voltage.
//! * **meta-retarget** — §5.2's dynamic limit applies at the next control
//!   quantum boundary, so ceiling every retarget time to its boundary is
//!   outcome-invariant for dynamic schemes.
//!
//! A [`Plant`] carried by the case perturbs exactly one leg, which is how
//! the catch → shrink → replay pipeline is exercised end to end.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hcapp::cache::{decode_outcome, encode_outcome, job_key};
use hcapp::{
    run_resumable, total_quanta, DomainController, ResumeEnd, ResumeOptions, RunCache,
    RunOutcome, Simulation,
};
use hcapp_analyze::StreamAnalyzer;
use hcapp_sim_core::units::{Volt, Watt};
use hcapp_telemetry::{jsonl, RingTracer, SharedTracer};

use crate::case::{FuzzCase, Plant};
use crate::rng::SplitMix64;

/// One oracle violation: which leg tripped, and a deterministic description
/// (no paths, no timings — campaign logs must be byte-stable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// The oracle leg that tripped (`pooled`, `permuted`, `batched`,
    /// `resume`, `cache`, `meta-ppe`, `meta-priority`, `meta-retarget`).
    pub leg: &'static str,
    /// What diverged.
    pub detail: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.leg, self.detail)
    }
}

/// Run every oracle leg over `case`. An empty vector means the case upheld
/// the determinism contract and all three metamorphic invariants.
pub fn check_case(case: &FuzzCase) -> Vec<Failure> {
    let mut fails = Vec::new();

    // Leg 1: the traced serial reference.
    let (out_s, trace_s) = run_traced(case, Exec::Serial);
    let enc_s = encode_outcome(&out_s);
    let report_s = replay(&trace_s, "serial", &mut fails);

    // Leg 2: pooled executor.
    let (mut out_p, trace_p) = run_traced(case, Exec::Pooled);
    if case.plant == Plant::PooledBitflip {
        let bits = out_p.avg_power.value().to_bits();
        let flipped = bits ^ 1;
        out_p.avg_power = Watt::new(f64::from_bits(flipped));
    }
    diff_leg(
        &mut fails, "pooled", &enc_s, &encode_outcome(&out_p), &trace_s, &trace_p, &report_s,
    );

    // Leg 3: adversarially permuted pooled executor.
    let (out_m, trace_m) = run_traced(case, Exec::Permuted);
    diff_leg(
        &mut fails, "permuted", &enc_s, &encode_outcome(&out_m), &trace_s, &trace_m, &report_s,
    );

    // Leg 4: untraced serial at batch 1 and at the case's batch size.
    for batch in [1usize, case.batch] {
        let (sys, run) = case.build();
        let out = Simulation::new(sys, run.with_batch_quanta(batch)).run();
        let enc = encode_outcome(&out);
        if enc != enc_s {
            fails.push(Failure {
                leg: "batched",
                detail: format!(
                    "outcome at batch_quanta={batch} diverges from the traced reference ({})",
                    first_divergence(&enc_s, &enc)
                ),
            });
        }
    }

    // Leg 5: kill-and-resume.
    check_resume(case, &enc_s, &trace_s, &mut fails);

    // Leg 6: cache roundtrip (in-memory codec + disk store).
    check_cache(case, &out_s, &enc_s, &mut fails);

    // Metamorphic invariants.
    check_meta_ppe(case, &out_s, &mut fails);
    check_meta_priority(case, &mut fails);
    check_meta_retarget(case, &enc_s, &mut fails);

    fails
}

enum Exec {
    Serial,
    Pooled,
    Permuted,
}

/// Run the case with a ring tracer attached and export the trace through
/// the stock JSONL path (same bytes a `--trace` CLI run would write).
fn run_traced(case: &FuzzCase, exec: Exec) -> (RunOutcome, String) {
    let (sys, run) = case.build();
    let ring = Arc::new(Mutex::new(RingTracer::new(1 << 20)));
    let handle: SharedTracer = ring.clone();
    let run = run.with_tracer(handle);
    let sim = Simulation::new(sys, run);
    let out = match exec {
        Exec::Serial => sim.run(),
        Exec::Pooled => sim.run_parallel(case.workers),
        Exec::Permuted => sim.run_parallel_permuted(case.workers, case.permute_seed),
    };
    let events = ring.lock().expect("ring tracer lock").drain();
    (out, jsonl::export(events.iter(), &[]))
}

/// Replay a JSONL trace into an offline `hcapp.report`.
fn replay(trace: &str, leg: &'static str, fails: &mut Vec<Failure>) -> Option<String> {
    let mut a = StreamAnalyzer::new();
    if let Err(e) = a.consume_jsonl(trace) {
        fails.push(Failure {
            leg,
            detail: format!("trace replay rejected the {leg} trace: {e}"),
        });
        return None;
    }
    Some(a.report().to_json())
}

/// Diff one executor leg's three artifacts against the serial reference.
fn diff_leg(
    fails: &mut Vec<Failure>,
    leg: &'static str,
    enc_s: &str,
    enc: &str,
    trace_s: &str,
    trace: &str,
    report_s: &Option<String>,
) {
    if enc != enc_s {
        fails.push(Failure {
            leg,
            detail: format!(
                "encoded outcome diverges from the serial reference ({})",
                first_divergence(enc_s, enc)
            ),
        });
    }
    if trace != trace_s {
        fails.push(Failure {
            leg,
            detail: format!(
                "JSONL trace diverges from the serial reference ({})",
                first_divergence(trace_s, trace)
            ),
        });
    }
    if let Some(report_s) = report_s {
        // Only replay the leg's trace when its report could differ — if the
        // traces are byte-identical the reports are too.
        if trace != trace_s {
            let mut fresh = Vec::new();
            if let Some(report) = replay(trace, leg, &mut fresh) {
                if &report != report_s {
                    fails.push(Failure {
                        leg,
                        detail: format!(
                            "replayed hcapp.report diverges ({})",
                            first_divergence(report_s, &report)
                        ),
                    });
                }
            }
            fails.append(&mut fresh);
        }
    }
}

/// Kill the run at the case's quantum, resume it from the checkpoint, and
/// compare both the final outcome and the stitched trace-sink bytes.
fn check_resume(case: &FuzzCase, enc_s: &str, trace_s: &str, fails: &mut Vec<Failure>) {
    let (sys, run) = case.build();
    let total = total_quanta(&sys, &run);
    let kill = case.kill_at.min(total.saturating_sub(1));
    let dir = tmp_dir("resume", case.seed);
    if std::fs::create_dir_all(&dir).is_err() {
        fails.push(Failure {
            leg: "resume",
            detail: "could not create the scratch directory".into(),
        });
        return;
    }
    let base = ResumeOptions::new(dir.join("hcapp.ckpt"))
        .with_checkpoint_every(case.checkpoint_every)
        .with_trace_sink(dir.join("hcapp.trace"));
    if kill >= 1 {
        let opts = base.clone().with_stop_at(kill);
        match run_resumable(sys.clone(), run.clone(), &opts) {
            Ok(s) => {
                if let ResumeEnd::Completed(_) = s.end {
                    fails.push(Failure {
                        leg: "resume",
                        detail: format!("link completed despite stop_at {kill} (total {total})"),
                    });
                }
            }
            Err(e) => fails.push(Failure {
                leg: "resume",
                detail: format!("killed link failed: {}", e.kind()),
            }),
        }
    }
    match run_resumable(sys, run, &base) {
        Ok(s) => match s.end {
            ResumeEnd::Completed(out) => {
                let enc = encode_outcome(&out);
                if enc != enc_s {
                    fails.push(Failure {
                        leg: "resume",
                        detail: format!(
                            "resumed outcome diverges from the serial reference ({})",
                            first_divergence(enc_s, &enc)
                        ),
                    });
                }
                match std::fs::read_to_string(dir.join("hcapp.trace")) {
                    Ok(sink) => {
                        if sink != trace_s {
                            fails.push(Failure {
                                leg: "resume",
                                detail: format!(
                                    "stitched trace sink diverges from the serial trace ({})",
                                    first_divergence(trace_s, &sink)
                                ),
                            });
                        }
                    }
                    Err(e) => fails.push(Failure {
                        leg: "resume",
                        detail: format!("trace sink unreadable: {}", e.kind()),
                    }),
                }
            }
            ResumeEnd::Stopped { quantum } => fails.push(Failure {
                leg: "resume",
                detail: format!("final link stopped at quantum {quantum} with no stop_at"),
            }),
        },
        Err(e) => fails.push(Failure {
            leg: "resume",
            detail: format!("resume link failed: {}", e.kind()),
        }),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Codec + disk roundtrip: decode must re-encode to the same bytes, and a
/// `RunCache` store/load cycle must return the identical outcome.
fn check_cache(case: &FuzzCase, out_s: &RunOutcome, enc_s: &str, fails: &mut Vec<Failure>) {
    let mut body = enc_s.to_string();
    if case.plant == Plant::CacheTruncate {
        body.truncate(body.len() / 2);
    }
    match decode_outcome(&body) {
        Some(out) => {
            let enc = encode_outcome(&out);
            if enc != enc_s {
                fails.push(Failure {
                    leg: "cache",
                    detail: format!(
                        "decode → re-encode is not a fixpoint ({})",
                        first_divergence(enc_s, &enc)
                    ),
                });
            }
        }
        None => fails.push(Failure {
            leg: "cache",
            detail: "encoded outcome failed to decode".into(),
        }),
    }
    let (sys, run) = case.build();
    if let Some(key) = job_key(&sys, &run) {
        let dir = tmp_dir("cache", case.seed);
        let cache = RunCache::new(&dir);
        cache.insert(key, out_s);
        match cache.lookup(key) {
            Some(got) => {
                let enc = encode_outcome(&got);
                if enc != enc_s {
                    fails.push(Failure {
                        leg: "cache",
                        detail: format!(
                            "disk roundtrip changed the outcome ({})",
                            first_divergence(enc_s, &enc)
                        ),
                    });
                }
            }
            None => fails.push(Failure {
                leg: "cache",
                detail: "stored entry did not load back".into(),
            }),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Eq. 1–2/4: PPE normalizes by the provisioned power, so a power-of-two
/// budget scale must invert exactly (exponent-only float arithmetic).
fn check_meta_ppe(case: &FuzzCase, out_s: &RunOutcome, fails: &mut Vec<Failure>) {
    let reference = out_s.ppe(Watt::new(case.target));
    for k in [2.0f64, 4.0, 8.0] {
        let rescaled = out_s.ppe(Watt::new(case.target * k)) * k;
        if rescaled.to_bits() != reference.to_bits() {
            fails.push(Failure {
                leg: "meta-ppe",
                detail: format!(
                    "ppe not invariant under provisioned-power scale {k}: {} vs {}",
                    crate::case::f64_hex(reference),
                    crate::case::f64_hex(rescaled)
                ),
            });
        }
    }
}

/// §5.3: the domain priority register is last-write-wins, so permuting all
/// but the final write in a register sequence cannot change any voltage.
fn check_meta_priority(case: &FuzzCase, fails: &mut Vec<Failure>) {
    let mut r = SplitMix64::new(case.seed ^ 0x9D0F_55AA_C3E1_7B24);
    let prefix: Vec<f64> = (0..4).map(|_| 0.5 + r.below(101) as f64 / 100.0).collect();
    let last = 0.5 + r.below(101) as f64 / 100.0;
    let grid = [0.7, 0.9, 1.1, 1.3];
    let volts_of = |writes: &[f64]| -> Vec<u64> {
        let mut dc = DomainController::scaled(1.0, Volt::new(0.7), Volt::new(1.3));
        for &p in writes {
            dc.set_priority(p);
        }
        grid.iter()
            .map(|&vg| dc.domain_voltage(Volt::new(vg)).value().to_bits())
            .collect()
    };
    let mut fwd = prefix.clone();
    fwd.push(last);
    let mut rev: Vec<f64> = prefix.iter().rev().copied().collect();
    rev.push(last);
    if volts_of(&fwd) != volts_of(&rev) {
        fails.push(Failure {
            leg: "meta-priority",
            detail: "permuting non-final priority writes changed a domain voltage".into(),
        });
    }
}

/// §5.2: a dynamic retarget takes effect at the next control-quantum
/// boundary, so ceiling every retarget time onto its boundary must leave
/// the outcome bit-identical.
fn check_meta_retarget(case: &FuzzCase, enc_s: &str, fails: &mut Vec<Failure>) {
    let Some(period) = case.scheme.control_period() else {
        return;
    };
    if case.retargets.is_empty() {
        return;
    }
    let p_ns = period.as_nanos();
    let mut alt = case.clone();
    alt.retargets = case
        .retargets
        .iter()
        .map(|&(t, w)| (t.div_ceil(p_ns) * p_ns, w))
        .collect();
    // Ceiled times may collide on one boundary; `build` tolerates the
    // resulting non-strict ordering, and last-write-wins matches the
    // original bucketed application order.
    let (sys, run) = alt.build();
    let out = Simulation::new(sys, run).run();
    let enc = encode_outcome(&out);
    if enc != enc_s {
        fails.push(Failure {
            leg: "meta-retarget",
            detail: format!(
                "boundary-ceiled retargets changed the outcome ({})",
                first_divergence(enc_s, &enc)
            ),
        });
    }
}

/// Deterministic one-line description of where two artifacts diverge.
fn first_divergence(a: &str, b: &str) -> String {
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return format!("first divergence at line {}", i + 1);
        }
    }
    format!("lengths differ: {} vs {} bytes", a.len(), b.len())
}

static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A scratch directory unique to this process and call site. Under the OS
/// temp root, tagged so a crashed run's leftovers are identifiable.
fn tmp_dir(tag: &str, seed: u64) -> PathBuf {
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "hcapp_fuzz_{tag}_{}_{seed:016x}_{seq}",
        std::process::id()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn clean_cases_pass_every_leg() {
        // A handful of generated seeds; each exercises all six legs plus
        // the metamorphic trio.
        for seed in [3u64, 11, 42] {
            let case = generate(seed);
            let fails = check_case(&case);
            assert!(fails.is_empty(), "seed {seed}: {fails:?}");
        }
    }

    #[test]
    fn planted_pooled_bitflip_is_caught_only_on_the_pooled_leg() {
        let mut case = generate(7);
        case.plant = Plant::PooledBitflip;
        let fails = check_case(&case);
        assert!(!fails.is_empty(), "plant went undetected");
        assert!(
            fails.iter().all(|f| f.leg == "pooled"),
            "plant leaked into other legs: {fails:?}"
        );
    }

    #[test]
    fn planted_cache_truncation_is_caught_on_the_cache_leg() {
        let mut case = generate(9);
        case.plant = Plant::CacheTruncate;
        let fails = check_case(&case);
        assert!(
            fails.iter().any(|f| f.leg == "cache"),
            "truncated cache body decoded cleanly: {fails:?}"
        );
    }
}

//! The fuzzer's only entropy source: splitmix64, seeded explicitly.
//!
//! Everything the fuzzer does — generation, plant placement, metamorphic
//! probe points — flows from one of these streams, so a campaign is a pure
//! function of its seed (simlint rule L3 bans wall-clock and OS RNG from
//! library crates, and the fuzzer holds itself to the same bar as the
//! simulator it checks).

/// A splitmix64 stream. Small state, full 64-bit period, and — unlike a
/// hand-rolled LCG — no correlated low bits, which matters because the
/// generator carves many small ranges out of each draw.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded at `seed`. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n = 0` yields 0). The modulo bias is
    /// irrelevant at fuzzing ranges (n ≪ 2⁶⁴).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// True with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    /// Pick one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

/// Derive an independent per-case stream from a campaign seed and a case
/// index (one splitmix step keyed by both, then used as a fresh seed).
pub fn derive(seed: u64, index: u64) -> u64 {
    SplitMix64::new(seed ^ index.wrapping_mul(0xA076_1D64_78BD_642F)).next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SplitMix64::new(42);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn derive_separates_cases() {
        assert_ne!(derive(1, 0), derive(1, 1));
        assert_eq!(derive(1, 3), derive(1, 3));
    }
}

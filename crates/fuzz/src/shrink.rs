//! Greedy failing-case reduction.
//!
//! [`shrink`] takes a case the oracle rejects and repeatedly applies
//! structure-removing passes — drop retargets, halve the duration, strip
//! the fault plan, the memory domain, the software policy and the trace
//! flags, collapse the executor knobs to their minima — keeping a
//! candidate only if it *still* fails. Every pass strictly shrinks a
//! field, so the loop terminates at a local minimum: the smallest repro
//! this pass set can reach, emitted as the `hcapp.fuzzcase` the user
//! actually debugs.

use crate::case::{FuzzCase, Plant};
use crate::oracle::check_case;

/// Reduce `case` to a locally-minimal case that still fails the oracle.
/// If `case` passes the oracle it is returned unchanged (there is nothing
/// to preserve while shrinking).
pub fn shrink(case: &FuzzCase) -> FuzzCase {
    let mut best = case.clone();
    if check_case(&best).is_empty() {
        return best;
    }
    // Greedy descent: retry the pass list until no candidate both shrinks
    // and still fails. Each acceptance strictly reduces the size metric,
    // so the explicit round cap is a backstop, not a limiter.
    for _round in 0..40 {
        let mut improved = false;
        for cand in candidates(&best) {
            if cand.validate().is_err() || size(&cand) >= size(&best) {
                continue;
            }
            if !check_case(&cand).is_empty() {
                best = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    best
}

/// How much structure a case carries — the quantity shrinking minimizes.
fn size(c: &FuzzCase) -> u64 {
    let mut s = c.duration_ns / 1_000;
    s += c.retargets.len() as u64 * 50;
    s += u64::from(c.faults.is_some()) * 40;
    s += u64::from(c.memory) * 30;
    s += u64::from(!matches!(c.software, hcapp::coordinator::SoftwareConfig::None)) * 20;
    s += u64::from(c.record_trace) * 10;
    s += u64::from(c.record_vtrace) * 10;
    s += c.batch as u64;
    s += c.workers as u64 * 5;
    s += c.kill_at.min(100);
    s
}

/// The ordered candidate list: most structure removed first.
fn candidates(c: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();
    // Retarget passes: all, first half, each single element.
    if !c.retargets.is_empty() {
        let mut x = c.clone();
        x.retargets.clear();
        out.push(x);
        if c.retargets.len() > 1 {
            let mut x = c.clone();
            x.retargets.truncate(c.retargets.len() / 2);
            out.push(x);
            for i in 0..c.retargets.len() {
                let mut x = c.clone();
                x.retargets.remove(i);
                out.push(x);
            }
        }
    }
    // Halve the duration (whole microseconds, floored at 20 µs — below
    // that every scheme degenerates to a single quantum anyway).
    if c.duration_ns > 20_000 {
        let mut x = c.clone();
        x.duration_ns = ((c.duration_ns / 2) / 1_000).max(20) * 1_000;
        out.push(x);
    }
    if c.faults.is_some() {
        let mut x = c.clone();
        x.faults = None;
        out.push(x);
    }
    if c.memory {
        let mut x = c.clone();
        x.memory = false;
        out.push(x);
    }
    if !matches!(c.software, hcapp::coordinator::SoftwareConfig::None) {
        let mut x = c.clone();
        x.software = hcapp::coordinator::SoftwareConfig::None;
        out.push(x);
    }
    if c.record_trace || c.record_vtrace {
        let mut x = c.clone();
        x.record_trace = false;
        x.record_vtrace = false;
        out.push(x);
    }
    if c.batch > 1 {
        let mut x = c.clone();
        x.batch = 1;
        out.push(x);
    }
    if c.workers > 1 {
        let mut x = c.clone();
        x.workers = 1;
        out.push(x);
    }
    if c.kill_at > 1 {
        let mut x = c.clone();
        x.kill_at = 1;
        out.push(x);
    }
    out
}

/// True if the shrunk case kept the planted defect (plants are the failing
/// cause for planted cases, so passes never touch [`Plant`]).
pub fn keeps_plant(original: &FuzzCase, shrunk: &FuzzCase) -> bool {
    original.plant == Plant::None || original.plant == shrunk.plant
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn a_passing_case_is_returned_unchanged() {
        let case = generate(3);
        assert_eq!(shrink(&case), case);
    }

    #[test]
    fn a_planted_case_shrinks_to_a_smaller_failing_repro() {
        // Pick a seed whose generated case carries real structure to strip.
        let mut case = generate(21);
        case.memory = true;
        case.record_trace = true;
        case.duration_ns = 400_000;
        case.plant = Plant::PooledBitflip;
        assert!(!check_case(&case).is_empty(), "plant must fail pre-shrink");
        let small = shrink(&case);
        assert!(
            !check_case(&small).is_empty(),
            "shrunk case no longer fails: {small:?}"
        );
        assert!(size(&small) < size(&case), "no reduction: {small:?}");
        assert!(keeps_plant(&case, &small));
        // The bitflip fails regardless of structure, so the minimum is
        // deep: everything optional stripped.
        assert!(small.retargets.is_empty());
        assert!(small.faults.is_none());
        assert!(!small.memory);
        assert_eq!(small.workers, 1);
        assert_eq!(small.batch, 1);
        assert_eq!(small.duration_ns, 20_000);
    }
}

//! The fuzzer holds itself to the workspace lint bar it checks others by.

#[test]
fn simlint_workspace_clean() {
    simlint::assert_workspace_clean(env!("CARGO_MANIFEST_DIR"));
}

//! The 15-SM GPU chiplet.
//!
//! Structure mirrors `hcapp_cpu_sim::chiplet`: a shared workload program
//! (Rodinia kernels launch across all SMs), per-SM jitter, an uncore (L2 +
//! memory controllers) and a GPUWattch-style energy breakdown.

use hcapp_power_model::breakdown::PowerBreakdown;
use hcapp_power_model::ComponentPowerModel;
use hcapp_sim_core::rng::DeterministicRng;
use hcapp_sim_core::time::SimDuration;
use hcapp_sim_core::units::{Volt, Watt};
use hcapp_workloads::program::{WorkloadProgram, WorkloadSource};

use crate::config::GpuConfig;
use crate::sm::StreamingMultiprocessor;
use crate::warp::WarpModel;

/// The GPU chiplet simulator.
#[derive(Debug, Clone)]
pub struct GpuChiplet {
    cfg: GpuConfig,
    sms: Vec<StreamingMultiprocessor>,
    uncore: ComponentPowerModel,
    program: WorkloadProgram,
    workload_name: String,
    last_ipc: Vec<f64>,
    last_power: Watt,
    breakdown: PowerBreakdown,
}

impl GpuChiplet {
    /// Build a chiplet running `workload` (a [`BenchmarkSpec`] or a recorded
    /// trace via [`WorkloadSource`]), with randomness derived from
    /// `(seed, stream_base)`.
    ///
    /// [`BenchmarkSpec`]: hcapp_workloads::spec::BenchmarkSpec
    pub fn new(
        cfg: GpuConfig,
        workload: impl Into<WorkloadSource>,
        seed: u64,
        stream_base: u64,
    ) -> Self {
        let workload = workload.into();
        cfg.validate();
        let fm = cfg.frequency_model();
        let sm_model = ComponentPowerModel::calibrated(
            fm.clone(),
            cfg.v_nominal,
            cfg.sm_peak_dynamic,
            cfg.sm_leakage,
        );
        let uncore = ComponentPowerModel::calibrated(
            fm,
            cfg.v_nominal,
            cfg.uncore_peak_dynamic,
            cfg.uncore_leakage,
        );
        let f_nominal = sm_model.frequency(cfg.v_nominal).value();
        let warp = WarpModel::new(cfg.max_warps, cfg.warp_half_occupancy);
        let jitter_ticks = (cfg.jitter_resample_ns / 100).max(1);
        let sms = (0..cfg.sms)
            .map(|i| {
                StreamingMultiprocessor::new(
                    sm_model.clone(),
                    warp,
                    f_nominal,
                    cfg.sm_jitter_std,
                    jitter_ticks,
                    DeterministicRng::derive(seed, stream_base + 1 + i as u64),
                )
            })
            .collect();
        let program = workload.instantiate(seed, stream_base);
        GpuChiplet {
            last_ipc: vec![0.0; cfg.sms],
            cfg,
            sms,
            uncore,
            workload_name: workload.name().to_string(),
            program,
            last_power: Watt::ZERO,
            breakdown: PowerBreakdown::new(),
        }
    }

    /// Number of locally-controllable units (SMs).
    pub fn units(&self) -> usize {
        self.sms.len()
    }

    /// The chiplet configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Advance one tick with one supply voltage per SM. Returns total
    /// chiplet power.
    ///
    /// # Panics
    /// Panics if `sm_voltages.len() != units()`.
    pub fn step(&mut self, sm_voltages: &[Volt], dt: SimDuration) -> Watt {
        assert_eq!(
            sm_voltages.len(),
            self.sms.len(),
            "need one voltage per SM"
        );
        let sample = self.program.sample();
        let mut total_sm_power = Watt::ZERO;
        let mut total_dynamic = Watt::ZERO;
        let mut total_rate = 0.0;
        let dt_ns = dt.as_nanos() as f64;
        for (i, sm) in self.sms.iter_mut().enumerate() {
            let v = sm_voltages[i].clamp(self.cfg.v_min, self.cfg.v_max);
            let out = sm.step(v, sample, dt);
            total_sm_power += out.power;
            total_dynamic += out.power - sm.model().leakage_power(v);
            total_rate += out.work_ns / dt_ns;
            self.last_ipc[i] = out.ipc_fraction;
        }
        let avg_rate = total_rate / self.sms.len() as f64;
        self.program.advance(avg_rate * dt_ns);

        let mean_v = Volt::new(
            sm_voltages
                .iter()
                .map(|v| v.clamp(self.cfg.v_min, self.cfg.v_max).value())
                .sum::<f64>()
                / self.sms.len() as f64,
        );
        let uncore_activity = sample.mem_intensity * sample.activity;
        let uncore_power = self.uncore.power(mean_v, uncore_activity);

        let leakage = total_sm_power - total_dynamic;
        self.breakdown.record(total_dynamic, leakage, uncore_power, dt);

        self.last_power = total_sm_power + uncore_power;
        self.last_power
    }

    /// Advance one tick through a borrowed [`StepFrame`] — the
    /// quantum-stepper kernel's entry point.
    ///
    /// Bit-identical to [`GpuChiplet::step`] (pinned by
    /// `step_into_matches_step` below and the golden-digest corpus), with
    /// the voltage-only model evaluations (frequency, leakage) memoized
    /// per distinct consecutive SM voltage, exactly like the CPU chiplet.
    ///
    /// [`StepFrame`]: hcapp_sim_core::frame::StepFrame
    ///
    /// # Panics
    /// Panics if `frame.voltages.len() != units()`.
    pub fn step_into(&mut self, frame: &mut hcapp_sim_core::frame::StepFrame<'_>) {
        assert_eq!(
            frame.voltages.len(),
            self.sms.len(),
            "need one voltage per SM"
        );
        let dt = frame.dt;
        let sample = self.program.sample();
        let mut total_sm_power = Watt::ZERO;
        let mut total_dynamic = Watt::ZERO;
        let mut total_rate = 0.0;
        let mut v_sum = 0.0;
        let dt_ns = dt.as_nanos() as f64;
        let mut memo_v = f64::NAN.to_bits();
        let mut memo_f = hcapp_sim_core::units::Hertz::ZERO;
        let mut memo_leak = Watt::ZERO;
        for (i, sm) in self.sms.iter_mut().enumerate() {
            let v = frame.voltages[i].clamp(self.cfg.v_min, self.cfg.v_max);
            v_sum += v.value();
            if v.value().to_bits() != memo_v {
                let (f, leak) = sm.model().operating_point(v);
                memo_v = v.value().to_bits();
                memo_f = f;
                memo_leak = leak;
            }
            let out = sm.step_at(v, memo_f, memo_leak, sample, dt);
            total_sm_power += out.power;
            total_dynamic += out.power - memo_leak;
            total_rate += out.work_ns / dt_ns;
            self.last_ipc[i] = out.ipc_fraction;
        }
        let avg_rate = total_rate / self.sms.len() as f64;
        self.program.advance(avg_rate * dt_ns);

        let mean_v = Volt::new(v_sum / self.sms.len() as f64);
        let uncore_activity = sample.mem_intensity * sample.activity;
        let uncore_power = self.uncore.power(mean_v, uncore_activity);

        let leakage = total_sm_power - total_dynamic;
        self.breakdown.record(total_dynamic, leakage, uncore_power, dt);

        self.last_power = total_sm_power + uncore_power;
        *frame.power_acc += self.last_power.value();
    }

    /// Per-SM measured IPC fractions from the last step.
    pub fn ipc_fractions(&self) -> &[f64] {
        &self.last_ipc
    }

    /// Total chiplet power from the last step.
    pub fn power(&self) -> Watt {
        self.last_power
    }

    /// Program work completed so far, in nominal nanoseconds.
    pub fn work_done(&self) -> f64 {
        self.program.work_done()
    }

    /// GPUWattch-style energy breakdown.
    pub fn breakdown(&self) -> &PowerBreakdown {
        &self.breakdown
    }

    /// The name of the workload this chiplet runs.
    pub fn workload_name(&self) -> &str {
        &self.workload_name
    }
}

impl hcapp_sim_core::state::Snapshot for GpuChiplet {
    fn save_state(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        for sm in &self.sms {
            sm.save_state(w);
        }
        self.program.save_state(w);
        w.f64_slice("gpu.last_ipc", &self.last_ipc);
        w.f64("gpu.last_power", self.last_power.0);
        self.breakdown.save_state(w);
    }

    fn load_state(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        for sm in &mut self.sms {
            sm.load_state(r)?;
        }
        self.program.load_state(r)?;
        let ipc = r.f64_vec("gpu.last_ipc")?;
        if ipc.len() != self.last_ipc.len() {
            return None;
        }
        self.last_ipc = ipc;
        self.last_power = Watt(r.f64("gpu.last_power")?);
        self.breakdown.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_workloads::benchmarks::Benchmark;

    fn chiplet(b: Benchmark) -> GpuChiplet {
        GpuChiplet::new(GpuConfig::default(), b.spec(), 42, 200)
    }

    fn run(c: &mut GpuChiplet, v: f64, ticks: usize) -> (f64, f64) {
        let volts = vec![Volt::new(v); c.units()];
        let dt = SimDuration::from_nanos(100);
        let mut energy = 0.0;
        for _ in 0..ticks {
            energy += c.step(&volts, dt).value() * dt.as_secs_f64();
        }
        (energy, c.work_done())
    }

    #[test]
    fn fifteen_units_by_default() {
        assert_eq!(chiplet(Benchmark::Backprop).units(), 15);
    }

    #[test]
    fn step_into_matches_step() {
        // Kernel entry point vs reference path: bit-identical power, IPC,
        // cursor and breakdown, under uniform and spread SM voltages.
        use hcapp_sim_core::frame::StepFrame;
        let mut reference = chiplet(Benchmark::Bfs);
        let mut kernel = chiplet(Benchmark::Bfs);
        let dt = SimDuration::from_nanos(100);
        let n = reference.units();
        for t in 0..20_000u64 {
            let volts: Vec<Volt> = (0..n)
                .map(|i| {
                    let spread = if t % 11 == 0 { 0.005 * i as f64 } else { 0.0 };
                    Volt::new(0.55 + 0.3 * ((t % 90) as f64 / 90.0) + spread)
                })
                .collect();
            let p_ref = reference.step(&volts, dt).value();
            let mut acc = 0.0;
            kernel.step_into(&mut StepFrame::new(&volts, dt, &mut acc));
            assert_eq!(p_ref.to_bits(), acc.to_bits(), "tick {t}: power diverged");
            assert_eq!(reference.ipc_fractions(), kernel.ipc_fractions());
        }
        assert_eq!(
            reference.work_done().to_bits(),
            kernel.work_done().to_bits()
        );
        assert_eq!(
            reference.breakdown().total_joules().to_bits(),
            kernel.breakdown().total_joules().to_bits()
        );
    }

    #[test]
    fn power_bounded_by_peak() {
        let mut c = chiplet(Benchmark::Backprop);
        let volts = vec![Volt::new(0.72); c.units()];
        let dt = SimDuration::from_nanos(100);
        let peak = c.config().peak_power_at(Volt::new(0.72)).value();
        for _ in 0..10_000 {
            let p = c.step(&volts, dt).value();
            assert!(p > 0.0 && p <= peak + 1e-6, "power {p} vs peak {peak}");
        }
    }

    #[test]
    fn myocyte_draws_much_less_than_backprop() {
        let mut low = chiplet(Benchmark::Myocyte);
        let mut hi = chiplet(Benchmark::Backprop);
        let (e_low, _) = run(&mut low, 0.72, 50_000);
        let (e_hi, _) = run(&mut hi, 0.72, 50_000);
        assert!(e_hi > e_low * 1.5, "Hi {e_hi} J vs Low {e_low} J");
    }

    #[test]
    fn voltage_scales_work() {
        let mut slow = chiplet(Benchmark::Sradv2);
        let mut fast = chiplet(Benchmark::Sradv2);
        let (_, w_slow) = run(&mut slow, 0.55, 20_000);
        let (_, w_fast) = run(&mut fast, 0.90, 20_000);
        assert!(w_fast > w_slow * 1.3);
    }

    #[test]
    fn deterministic_replay() {
        let mut a = chiplet(Benchmark::Bfs);
        let mut b = chiplet(Benchmark::Bfs);
        let volts = vec![Volt::new(0.7); a.units()];
        let dt = SimDuration::from_nanos(100);
        for _ in 0..5_000 {
            assert_eq!(a.step(&volts, dt), b.step(&volts, dt));
        }
        assert_eq!(a.work_done(), b.work_done());
    }

    #[test]
    fn breakdown_consistency() {
        let mut c = chiplet(Benchmark::Backprop);
        let (energy, _) = run(&mut c, 0.72, 10_000);
        let acc = c.breakdown().total_joules();
        assert!((acc - energy).abs() < 1e-6 * energy.max(1.0));
    }

    #[test]
    fn ipc_fractions_bounded() {
        let mut c = chiplet(Benchmark::Myocyte);
        let volts = vec![Volt::new(0.72); c.units()];
        c.step(&volts, SimDuration::from_nanos(100));
        for &f in c.ipc_fractions() {
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "one voltage per SM")]
    fn wrong_arity_panics() {
        let mut c = chiplet(Benchmark::Bfs);
        c.step(&[Volt::new(0.7)], SimDuration::from_nanos(100));
    }
}

//! GPU chiplet configuration (Table 2, GPU column).
//!
//! The paper uses the GTX480 model because it is the newest *validated*
//! GPUWattch power model. We keep its shape: 15 SMs, 16 kB L1, 48 kB shared
//! memory, 768 kB L2, 100–700 MHz. The voltage scale is the GPU domain's
//! (the domain controller feeds this chiplet 75% of the global voltage,
//! §4.3), so the nominal point sits near 0.72 V; power calibration puts the
//! chiplet's peak near 50 W — its share of the 100 W package (DESIGN.md).

use hcapp_power_model::FrequencyModel;
use hcapp_sim_core::units::{Hertz, Volt, Watt};

/// Static configuration of the GPU chiplet.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors (Table 2: 15).
    pub sms: usize,
    /// CUDA cores per SM (Table 2 lists the per-SM organization as 1
    /// SM-level unit; the GTX480 has 32 lanes per SM — lanes are folded into
    /// the power calibration).
    pub cores_per_sm: usize,
    /// L1 cache per SM in kB (Table 2: 16).
    pub l1_kb: u32,
    /// Shared memory per SM in kB (Table 2: 48).
    pub shared_kb: u32,
    /// L2 cache in kB (Table 2: 768).
    pub l2_kb: u32,
    /// Maximum SM clock (Table 2: 700 MHz).
    pub f_max: Hertz,
    /// Minimum SM clock (Table 2: 100 MHz).
    pub f_min: Hertz,
    /// Device threshold voltage.
    pub v_threshold: Volt,
    /// Voltage reaching `f_max`.
    pub v_fmax: Volt,
    /// Nominal (calibration) voltage in the GPU domain scale.
    pub v_nominal: Volt,
    /// Lowest safe SM voltage.
    pub v_min: Volt,
    /// Highest safe SM voltage.
    pub v_max: Volt,
    /// Per-SM peak dynamic power at `v_nominal`, full occupancy.
    pub sm_peak_dynamic: Watt,
    /// Per-SM leakage at `v_nominal`.
    pub sm_leakage: Watt,
    /// Uncore (L2, memory controllers) peak dynamic power at `v_nominal`.
    pub uncore_peak_dynamic: Watt,
    /// Uncore leakage at `v_nominal`.
    pub uncore_leakage: Watt,
    /// Maximum resident warps per SM (GTX480: 48).
    pub max_warps: u32,
    /// Warp-model latency-hiding constant (warps needed to reach ~50% issue
    /// utilization).
    pub warp_half_occupancy: f64,
    /// Relative std-dev of the slowly-varying per-SM jitter.
    pub sm_jitter_std: f64,
    /// Jitter resample period in nanoseconds.
    pub jitter_resample_ns: u64,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            sms: 15,
            cores_per_sm: 1,
            l1_kb: 16,
            shared_kb: 48,
            l2_kb: 768,
            f_max: Hertz::from_mhz(700.0),
            f_min: Hertz::from_mhz(100.0),
            v_threshold: Volt::new(0.35),
            v_fmax: Volt::new(0.95),
            v_nominal: Volt::new(0.72),
            v_min: Volt::new(0.45),
            v_max: Volt::new(0.98),
            sm_peak_dynamic: Watt::new(2.6),
            sm_leakage: Watt::new(0.30),
            uncore_peak_dynamic: Watt::new(5.0),
            uncore_leakage: Watt::new(2.0),
            max_warps: 48,
            warp_half_occupancy: 24.0,
            sm_jitter_std: 0.06,
            jitter_resample_ns: 50_000,
        }
    }
}

impl GpuConfig {
    /// The frequency model the SMs share.
    pub fn frequency_model(&self) -> FrequencyModel {
        FrequencyModel::new(self.v_threshold, self.v_fmax, self.f_min, self.f_max)
    }

    /// Theoretical peak chiplet power at voltage `v`.
    pub fn peak_power_at(&self, v: Volt) -> Watt {
        use hcapp_power_model::ComponentPowerModel;
        let fm = self.frequency_model();
        let sm = ComponentPowerModel::calibrated(
            fm.clone(),
            self.v_nominal,
            self.sm_peak_dynamic,
            self.sm_leakage,
        );
        let uncore = ComponentPowerModel::calibrated(
            fm,
            self.v_nominal,
            self.uncore_peak_dynamic,
            self.uncore_leakage,
        );
        sm.power(v, 1.0) * self.sms as f64 + uncore.power(v, 1.0)
    }

    /// Validate invariants.
    ///
    /// # Panics
    /// Panics on an invalid configuration.
    pub fn validate(&self) {
        assert!(self.sms > 0, "need at least one SM");
        assert!(self.max_warps > 0, "need at least one warp slot");
        assert!(self.warp_half_occupancy > 0.0);
        assert!(
            self.v_min.value() <= self.v_nominal.value()
                && self.v_nominal.value() <= self.v_max.value(),
            "nominal voltage outside [v_min, v_max]"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_2() {
        let c = GpuConfig::default();
        assert_eq!(c.sms, 15);
        assert_eq!(c.l1_kb, 16);
        assert_eq!(c.shared_kb, 48);
        assert_eq!(c.l2_kb, 768);
        assert_eq!(c.f_max, Hertz::from_mhz(700.0));
        assert_eq!(c.f_min, Hertz::from_mhz(100.0));
        c.validate();
    }

    #[test]
    fn peak_power_in_calibration_band() {
        let c = GpuConfig::default();
        let p = c.peak_power_at(c.v_nominal).value();
        assert!((45.0..=60.0).contains(&p), "peak {p} W out of band");
    }

    #[test]
    fn gpu_domain_voltages_below_cpu_scale() {
        // The GPU domain runs at ~75% of the global voltage; its whole legal
        // window sits below the CPU's nominal 1.0 V.
        let c = GpuConfig::default();
        assert!(c.v_max.value() < 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one SM")]
    fn zero_sms_invalid() {
        let c = GpuConfig {
            sms: 0,
            ..GpuConfig::default()
        };
        c.validate();
    }
}

//! SM-granular GPU chiplet simulator.
//!
//! Stands in for the paper's GPGPU-Sim 3.2.2 + GPUWattch stack with its
//! validated GTX480 power model (§4.3). The chiplet runs one Rodinia-class
//! workload shared by its 15 streaming multiprocessors; each SM converts the
//! workload's parallelism into issue utilization through a coarse warp-
//! occupancy model ([`warp`]), then into power and progress exactly as the
//! CPU cores do — which is the level of detail HCAPP's controllers actually
//! observe (per-SM IPC and power).
//!
//! * [`config`] — Table 2's GPU column (GTX480 shape) plus calibration.
//! * [`warp`] — warp-level parallelism → issue-utilization model.
//! * [`sm`] — the per-SM model.
//! * [`chiplet`] — the 15-SM chiplet with shared workload and GPUWattch-
//!   style breakdown.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod chiplet;
pub mod config;
pub mod sm;
pub mod warp;

pub use chiplet::GpuChiplet;
pub use config::GpuConfig;
pub use sm::{StreamingMultiprocessor, SmStep};
pub use warp::WarpModel;

//! The per-SM model.
//!
//! Mirrors the CPU core model but routes the workload's activity through the
//! warp-occupancy model first: power and progress scale with *issue
//! utilization*, not raw activity, so low-parallelism kernels waste less
//! power but also advance more slowly — and their low measured IPC is what
//! lets the GPU-CAPP dynamic local controller steal their voltage headroom.

use hcapp_power_model::ComponentPowerModel;
use hcapp_sim_core::rng::DeterministicRng;
use hcapp_sim_core::time::SimDuration;
use hcapp_sim_core::units::{Volt, Watt};
use hcapp_workloads::phase::{progress_rate, PhaseSample};

use crate::warp::WarpModel;

/// One SM's outputs for a tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmStep {
    /// Power drawn this tick.
    pub power: Watt,
    /// Work completed this tick in nominal nanoseconds.
    pub work_ns: f64,
    /// Measured IPC fraction (local-controller input).
    pub ipc_fraction: f64,
}

/// A single streaming multiprocessor.
#[derive(Debug, Clone)]
pub struct StreamingMultiprocessor {
    model: ComponentPowerModel,
    warp: WarpModel,
    f_nominal: f64,
    jitter: f64,
    jitter_std: f64,
    jitter_countdown: u64,
    jitter_period_ticks: u64,
    rng: DeterministicRng,
}

impl StreamingMultiprocessor {
    /// Create an SM.
    pub fn new(
        model: ComponentPowerModel,
        warp: WarpModel,
        f_nominal_hz: f64,
        jitter_std: f64,
        jitter_period_ticks: u64,
        rng: DeterministicRng,
    ) -> Self {
        assert!(f_nominal_hz > 0.0, "non-positive nominal frequency");
        assert!(jitter_period_ticks > 0, "zero jitter period");
        let mut sm = StreamingMultiprocessor {
            model,
            warp,
            f_nominal: f_nominal_hz,
            jitter: 1.0,
            jitter_std,
            jitter_countdown: 0,
            jitter_period_ticks,
            rng,
        };
        sm.resample_jitter();
        sm
    }

    fn resample_jitter(&mut self) {
        self.jitter = if self.jitter_std > 0.0 {
            self.rng.normal(1.0, self.jitter_std).clamp(0.5, 1.5)
        } else {
            1.0
        };
        self.jitter_countdown = self.jitter_period_ticks;
    }

    /// Advance one tick at supply voltage `v` running `sample`.
    pub fn step(&mut self, v: Volt, sample: PhaseSample, dt: SimDuration) -> SmStep {
        if self.jitter_countdown == 0 {
            self.resample_jitter();
        }
        self.jitter_countdown -= 1;

        let f = self.model.frequency(v);
        let f_ratio = f.value() / self.f_nominal;
        let activity = (sample.activity * self.jitter).clamp(0.0, 1.0);
        let utilization = self.warp.utilization_from_activity(activity);
        let effective = PhaseSample {
            activity: utilization,
            mem_intensity: sample.mem_intensity,
        };
        let power = self.model.power(v, utilization);
        let work_ns = if utilization > 0.0 {
            progress_rate(effective, f_ratio) * dt.as_nanos() as f64 * utilization
        } else {
            0.0
        };
        let ipc_fraction = utilization / (1.0 + sample.mem_intensity * f_ratio);
        SmStep {
            power,
            work_ns,
            ipc_fraction,
        }
    }

    /// Advance one tick with a precomputed operating point for `v`.
    ///
    /// The quantum-stepper kernel computes `(f, leak) =
    /// model.operating_point(v)` once per distinct voltage and shares it
    /// across SMs at that voltage; must stay bit-identical to
    /// [`StreamingMultiprocessor::step`] (pinned by the
    /// `step_into_matches_step` test), so changes to `step` have to be
    /// mirrored here.
    pub fn step_at(
        &mut self,
        v: Volt,
        f: hcapp_sim_core::units::Hertz,
        leak: Watt,
        sample: PhaseSample,
        dt: SimDuration,
    ) -> SmStep {
        if self.jitter_countdown == 0 {
            self.resample_jitter();
        }
        self.jitter_countdown -= 1;

        let f_ratio = f.value() / self.f_nominal;
        let activity = (sample.activity * self.jitter).clamp(0.0, 1.0);
        let utilization = self.warp.utilization_from_activity(activity);
        let effective = PhaseSample {
            activity: utilization,
            mem_intensity: sample.mem_intensity,
        };
        let power = self.model.power_at(v, f, leak, utilization);
        let work_ns = if utilization > 0.0 {
            progress_rate(effective, f_ratio) * dt.as_nanos() as f64 * utilization
        } else {
            0.0
        };
        let ipc_fraction = utilization / (1.0 + sample.mem_intensity * f_ratio);
        SmStep {
            power,
            work_ns,
            ipc_fraction,
        }
    }

    /// The SM's power model (for reporting).
    pub fn model(&self) -> &ComponentPowerModel {
        &self.model
    }
}

impl hcapp_sim_core::state::Snapshot for StreamingMultiprocessor {
    fn save_state(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        w.f64("sm.jitter", self.jitter);
        w.u64("sm.jitter_countdown", self.jitter_countdown);
        self.rng.save_state(w);
    }

    fn load_state(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        self.jitter = r.f64("sm.jitter")?;
        self.jitter_countdown = r.u64("sm.jitter_countdown")?;
        self.rng.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use hcapp_power_model::ComponentPowerModel;
    use hcapp_sim_core::assert_close;

    fn test_sm(jitter_std: f64) -> StreamingMultiprocessor {
        let cfg = GpuConfig::default();
        let model = ComponentPowerModel::calibrated(
            cfg.frequency_model(),
            cfg.v_nominal,
            cfg.sm_peak_dynamic,
            cfg.sm_leakage,
        );
        let f_nom = model.frequency(cfg.v_nominal).value();
        StreamingMultiprocessor::new(
            model,
            WarpModel::new(cfg.max_warps, cfg.warp_half_occupancy),
            f_nom,
            jitter_std,
            500,
            DeterministicRng::new(9),
        )
    }

    fn full() -> PhaseSample {
        PhaseSample {
            activity: 1.0,
            mem_intensity: 0.0,
        }
    }

    #[test]
    fn full_occupancy_hits_calibration() {
        let mut sm = test_sm(0.0);
        let cfg = GpuConfig::default();
        let s = sm.step(cfg.v_nominal, full(), SimDuration::from_nanos(100));
        assert_close!(s.power.value(), 2.6 + 0.3, 1e-9);
        assert_close!(s.ipc_fraction, 1.0, 1e-9);
    }

    #[test]
    fn low_parallelism_draws_less_and_reports_low_ipc() {
        let mut sm = test_sm(0.0);
        let cfg = GpuConfig::default();
        let dt = SimDuration::from_nanos(100);
        let lo = sm.step(
            cfg.v_nominal,
            PhaseSample {
                activity: 0.2,
                mem_intensity: 0.0,
            },
            dt,
        );
        let hi = sm.step(cfg.v_nominal, full(), dt);
        assert!(lo.power.value() < hi.power.value());
        assert!(lo.ipc_fraction < hi.ipc_fraction);
        assert!(lo.work_ns < hi.work_ns);
    }

    #[test]
    fn occupancy_concavity_from_warp_model() {
        // 50% activity yields more than 50% of full-activity utilization
        // (latency hiding), visible in power.
        let mut sm = test_sm(0.0);
        let cfg = GpuConfig::default();
        let dt = SimDuration::from_nanos(100);
        let half = sm.step(
            cfg.v_nominal,
            PhaseSample {
                activity: 0.5,
                mem_intensity: 0.0,
            },
            dt,
        );
        let fullp = sm.step(cfg.v_nominal, full(), dt);
        let leak = 0.3;
        let dyn_half = half.power.value() - leak;
        let dyn_full = fullp.power.value() - leak;
        assert!(dyn_half / dyn_full > 0.5);
    }

    #[test]
    fn voltage_scales_work() {
        let mut sm = test_sm(0.0);
        let dt = SimDuration::from_nanos(100);
        let slow = sm.step(Volt::new(0.55), full(), dt);
        let fast = sm.step(Volt::new(0.90), full(), dt);
        assert!(fast.work_ns > slow.work_ns * 1.5);
    }

    #[test]
    fn idle_sm_draws_leakage_only() {
        let mut sm = test_sm(0.0);
        let s = sm.step(
            Volt::new(0.72),
            PhaseSample::IDLE,
            SimDuration::from_nanos(100),
        );
        assert_close!(s.power.value(), 0.3, 1e-9);
        assert_eq!(s.work_ns, 0.0);
    }
}

//! Warp-level parallelism → issue utilization.
//!
//! GPGPU-Sim models warp scheduling cycle by cycle; what survives to the
//! power/IPC level is how well the resident warps hide latency. We use the
//! standard saturating model: with `w` resident warps and a latency-hiding
//! constant `h` (warps needed for ~50% utilization),
//!
//! ```text
//! utilization(w) = w / (w + h)
//! ```
//!
//! The workload's activity factor sets the resident warp count
//! (`w = activity · max_warps`), so low-parallelism kernels like myocyte
//! produce low utilization — exactly the signal the GPU-CAPP dynamic-IPC
//! local controller keys on.

/// The saturating warp-occupancy model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarpModel {
    /// Maximum resident warps per SM.
    pub max_warps: f64,
    /// Warps needed to reach 50% issue utilization.
    pub half_occupancy: f64,
}

impl WarpModel {
    /// Create a model.
    ///
    /// # Panics
    /// Panics on non-positive parameters.
    pub fn new(max_warps: u32, half_occupancy: f64) -> Self {
        assert!(max_warps > 0, "need at least one warp slot");
        assert!(half_occupancy > 0.0, "non-positive half-occupancy");
        WarpModel {
            max_warps: max_warps as f64,
            half_occupancy,
        }
    }

    /// Issue utilization for `warps` resident warps.
    #[inline]
    pub fn utilization(&self, warps: f64) -> f64 {
        let w = warps.clamp(0.0, self.max_warps);
        w / (w + self.half_occupancy)
    }

    /// Issue utilization when the workload fills `activity ∈ [0,1]` of the
    /// warp slots, normalized so that `activity = 1` maps to the model's
    /// peak utilization = 1.0 (the calibration point for SM power).
    #[inline]
    pub fn utilization_from_activity(&self, activity: f64) -> f64 {
        let peak = self.utilization(self.max_warps);
        if peak <= 0.0 {
            return 0.0;
        }
        self.utilization(activity.clamp(0.0, 1.0) * self.max_warps) / peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::assert_close;

    #[test]
    fn half_occupancy_is_half() {
        let m = WarpModel::new(48, 8.0);
        assert_close!(m.utilization(8.0), 0.5, 1e-12);
    }

    #[test]
    fn utilization_saturates() {
        let m = WarpModel::new(48, 8.0);
        let u40 = m.utilization(40.0);
        let u48 = m.utilization(48.0);
        assert!(u48 > u40);
        // Diminishing returns: the last 8 warps add less than the first 8.
        assert!(u48 - u40 < m.utilization(8.0) - m.utilization(0.0));
        // Clamped above max_warps.
        assert_close!(m.utilization(100.0), u48, 1e-12);
    }

    #[test]
    fn normalized_activity_mapping() {
        let m = WarpModel::new(48, 8.0);
        assert_close!(m.utilization_from_activity(1.0), 1.0, 1e-12);
        assert_close!(m.utilization_from_activity(0.0), 0.0, 1e-12);
        // Concave: half the warps give more than half the (normalized)
        // utilization.
        assert!(m.utilization_from_activity(0.5) > 0.5);
    }

    #[test]
    fn monotone_in_activity() {
        let m = WarpModel::new(48, 8.0);
        let mut prev = -1.0;
        for i in 0..=20 {
            let u = m.utilization_from_activity(i as f64 / 20.0);
            assert!(u >= prev);
            prev = u;
        }
    }

    #[test]
    #[should_panic(expected = "warp slot")]
    fn zero_warps_panics() {
        let _ = WarpModel::new(0, 8.0);
    }
}

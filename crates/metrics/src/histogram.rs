//! Power-distribution analysis.
//!
//! The PPE and max-power metrics compress a run into two numbers; the
//! distribution in between explains *why* a scheme behaves as it does (a
//! fixed-voltage run has a long right tail the designer must provision for;
//! HCAPP's distribution is pinned near the target). [`PowerHistogram`] bins
//! a power trace, and [`percentiles`] extracts the quantiles the analysis
//! sections quote.

use hcapp_sim_core::report::Table;
use hcapp_sim_core::series::TimeSeries;

/// A fixed-bin histogram over a power trace.
#[derive(Debug, Clone)]
pub struct PowerHistogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    /// Samples below `lo` / above `hi`.
    under: u64,
    over: u64,
    /// NaN/±Inf samples. Kept out of every bin *and* out of `sum` — a
    /// single NaN would otherwise poison the mean — but counted and
    /// surfaced so a faulty sensor stream cannot hide.
    non_finite: u64,
    /// Running sum of every finite pushed sample, so
    /// [`PowerHistogram::mean`] is exact rather than bin-quantized.
    sum: f64,
}

impl PowerHistogram {
    /// Create a histogram over `[lo, hi)` with `bins` equal bins.
    ///
    /// # Panics
    /// Panics if the range is inverted or `bins` is zero.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "inverted histogram range");
        assert!(bins > 0, "zero bins");
        PowerHistogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            under: 0,
            over: 0,
            non_finite: 0,
            sum: 0.0,
        }
    }

    /// Add one sample. Non-finite samples (NaN, ±Inf) are tallied in
    /// [`PowerHistogram::non_finite`] instead of a bin: NaN compares false
    /// against both bounds, so it would otherwise land silently in bin 0
    /// and poison the running sum.
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        if !x.is_finite() {
            self.non_finite += 1;
            return;
        }
        self.sum += x;
        if x < self.lo {
            self.under += 1;
        } else if x >= self.hi {
            self.over += 1;
        } else {
            let n_bins = self.counts.len();
            let bin = ((x - self.lo) / (self.hi - self.lo) * n_bins as f64) as usize;
            self.counts[bin.min(n_bins - 1)] += 1;
        }
    }

    /// Build from a trace.
    pub fn from_series(series: &TimeSeries, lo: f64, hi: f64, bins: usize) -> Self {
        let mut h = PowerHistogram::new(lo, hi, bins);
        for &v in series.values() {
            h.push(v);
        }
        h
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Exact mean of every *finite* pushed sample (under- and overflow
    /// included, NaN/±Inf excluded); `0.0` when no finite sample arrived.
    pub fn mean(&self) -> f64 {
        let finite = self.total - self.non_finite;
        if finite == 0 {
            0.0
        } else {
            self.sum / finite as f64
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Samples in bin `i`. Out-of-range samples are *saturated* into the
    /// edge bins (underflow into the first, overflow into the last) rather
    /// than silently dropped — a distribution skewed off-scale by a fault
    /// still shows its mass at the edge it left through. The saturated
    /// counts remain separately visible via [`PowerHistogram::underflow`]
    /// and [`PowerHistogram::overflow`].
    pub fn count(&self, i: usize) -> u64 {
        let mut c = self.counts[i];
        if i == 0 {
            c += self.under;
        }
        if i + 1 == self.counts.len() {
            c += self.over;
        }
        c
    }

    /// Fraction of samples in bin `i` (saturated, see
    /// [`PowerHistogram::count`]).
    pub fn fraction(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(i) as f64 / self.total as f64
        }
    }

    /// Samples below the histogram's lower bound (saturated into bin 0).
    pub fn underflow(&self) -> u64 {
        self.under
    }

    /// Samples at or above the histogram's upper bound (saturated into the
    /// last bin).
    pub fn overflow(&self) -> u64 {
        self.over
    }

    /// Total out-of-range samples, either side.
    pub fn saturated(&self) -> u64 {
        self.under + self.over
    }

    /// Non-finite samples pushed (NaN, ±Inf) — excluded from every bin and
    /// from the mean.
    pub fn non_finite(&self) -> u64 {
        self.non_finite
    }

    /// Fraction of samples above the histogram's upper bound.
    pub fn overflow_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.over as f64 / self.total as f64
        }
    }

    /// Fraction of samples at or above `threshold` (threshold is snapped to
    /// a bin edge). Overflow samples always count — they are at least `hi`;
    /// underflow samples never do — they are below `lo`, hence below any
    /// meaningful threshold (the edge-bin saturation of
    /// [`PowerHistogram::count`] is display-side only and does not blur
    /// this tail statistic).
    pub fn fraction_at_or_above(&self, threshold: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut n = self.over;
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        for (i, &c) in self.counts.iter().enumerate() {
            let edge = self.lo + i as f64 * width;
            if edge >= threshold {
                n += c;
            }
        }
        n as f64 / self.total as f64
    }

    /// Render as an ASCII table (bin range, fraction, bar).
    pub fn to_table(&self, title: &str) -> Table {
        let mut t = Table::new(title, &["range (W)", "fraction", ""]);
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        for i in 0..self.counts.len() {
            let frac = self.fraction(i);
            let bar = "#".repeat((frac * 50.0).round() as usize);
            t.add_row(vec![
                format!("{:.0}-{:.0}", self.lo + i as f64 * width, self.lo + (i + 1) as f64 * width),
                format!("{:.1}%", frac * 100.0),
                bar,
            ]);
        }
        if self.non_finite > 0 {
            let frac = if self.total == 0 {
                0.0
            } else {
                self.non_finite as f64 / self.total as f64
            };
            t.add_row(vec![
                "non-finite".into(),
                format!("{:.1}%", frac * 100.0),
                String::new(),
            ]);
        }
        t
    }
}

/// Percentiles of a sample slice (nearest-rank). `qs` are in `[0, 1]`.
///
/// Empty input has no order statistics, so every requested quantile comes
/// back as `NaN` — the result is always `qs.len()` long, which keeps
/// positional consumers (the CLI's `hist` table, the analyzer's
/// `p50`/`p90` metrics) safe to index and lets "no data" flow through
/// report serialization as JSON `null` instead of panicking. The same
/// policy covers a malformed quantile: any `q` outside `[0, 1]` (NaN
/// included) yields `NaN` for that entry — in **every** build profile.
/// The earlier `debug_assert` + release-only clamp pair made debug and
/// release disagree, and a NaN quantile slipped past the clamp into a
/// garbage index; a per-entry error value keeps the whole result usable
/// while making the bad request visible instead of silently remapping it.
pub fn percentiles(values: &[f64], qs: &[f64]) -> Vec<f64> {
    if values.is_empty() {
        return vec![f64::NAN; qs.len()];
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    qs.iter()
        .map(|&q| {
            if !(0.0..=1.0).contains(&q) {
                return f64::NAN;
            }
            let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
            sorted[idx]
        })
        .collect()
}

impl hcapp_sim_core::state::Snapshot for PowerHistogram {
    fn save_state(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        w.u64_slice("hist.counts", &self.counts);
        w.u64("hist.total", self.total);
        w.u64("hist.under", self.under);
        w.u64("hist.over", self.over);
        w.u64("hist.non_finite", self.non_finite);
        w.f64("hist.sum", self.sum);
    }

    fn load_state(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        let counts = r.u64_vec("hist.counts")?;
        if counts.len() != self.counts.len() {
            return None;
        }
        self.counts = counts;
        self.total = r.u64("hist.total")?;
        self.under = r.u64("hist.under")?;
        self.over = r.u64("hist.over")?;
        self.non_finite = r.u64("hist.non_finite")?;
        self.sum = r.f64("hist.sum")?;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::assert_close;
    use hcapp_sim_core::time::SimDuration;

    #[test]
    fn bins_partition_samples() {
        let mut h = PowerHistogram::new(0.0, 100.0, 10);
        for i in 0..100 {
            h.push(i as f64);
        }
        assert_eq!(h.total(), 100);
        for i in 0..10 {
            assert_close!(h.fraction(i), 0.1, 1e-12);
        }
        assert_eq!(h.overflow_fraction(), 0.0);
    }

    #[test]
    fn overflow_and_underflow_tracked() {
        let mut h = PowerHistogram::new(10.0, 20.0, 2);
        h.push(5.0);
        h.push(15.0);
        h.push(25.0);
        h.push(30.0);
        assert_close!(h.overflow_fraction(), 0.5, 1e-12);
        assert_close!(h.fraction_at_or_above(15.0), 0.75, 1e-12);
        // Mean is exact, not bin-quantized, and counts the outliers.
        assert_close!(h.mean(), 18.75, 1e-12);
        assert_eq!(PowerHistogram::new(0.0, 1.0, 1).mean(), 0.0);
    }

    #[test]
    fn out_of_range_samples_saturate_into_edge_bins() {
        let mut h = PowerHistogram::new(10.0, 20.0, 2);
        h.push(5.0); // under
        h.push(15.0); // bin 1
        h.push(25.0); // over
        h.push(30.0); // over
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.saturated(), 3);
        // Every sample lands in a visible bucket: 5.0 in bin 0, the two
        // overflows folded into bin 1 alongside 15.0.
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 3);
        assert_eq!(h.count(0) + h.count(1), h.total());
        assert_close!(h.fraction(0), 0.25, 1e-12);
        assert_close!(h.fraction(1), 0.75, 1e-12);
        // A single-bin histogram absorbs both sides.
        let mut one = PowerHistogram::new(0.0, 1.0, 1);
        one.push(-2.0);
        one.push(3.0);
        assert_eq!(one.count(0), 2);
        assert_close!(one.fraction(0), 1.0, 1e-12);
    }

    #[test]
    fn saturated_samples_render_in_table() {
        let mut h = PowerHistogram::new(0.0, 10.0, 2);
        h.push(7.0);
        h.push(50.0); // off-scale high: shown in the last bucket
        let rendered = h.to_table("demo").render();
        assert!(rendered.contains("100.0%"), "{rendered}");
    }

    #[test]
    fn from_series() {
        let s = TimeSeries::from_values(SimDuration::from_micros(1), vec![50.0, 60.0, 70.0, 99.0]);
        let h = PowerHistogram::from_series(&s, 0.0, 100.0, 10);
        assert_eq!(h.total(), 4);
        assert_close!(h.fraction_at_or_above(90.0), 0.25, 1e-12);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let ps = percentiles(&xs, &[0.5, 0.95, 0.99, 1.0]);
        assert_close!(ps[0], 50.0, 1e-12);
        assert_close!(ps[1], 95.0, 1e-12);
        assert_close!(ps[2], 99.0, 1e-12);
        assert_close!(ps[3], 100.0, 1e-12);
    }

    #[test]
    fn empty_input_yields_one_nan_per_quantile() {
        // Pinned: the result stays `qs.len()` long so positional consumers
        // never index out of range, and each entry is NaN ("no data"), not
        // a panic — in release builds included.
        let ps = percentiles(&[], &[0.1, 0.5, 0.9]);
        assert_eq!(ps.len(), 3);
        assert!(ps.iter().all(|p| p.is_nan()), "{ps:?}");
        assert!(percentiles(&[], &[]).is_empty());
    }

    #[test]
    fn table_renders() {
        let mut h = PowerHistogram::new(0.0, 10.0, 2);
        h.push(1.0);
        h.push(7.0);
        let t = h.to_table("demo");
        assert_eq!(t.len(), 2);
        assert!(t.render().contains("50.0%"));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_range_panics() {
        let _ = PowerHistogram::new(10.0, 0.0, 4);
    }

    #[test]
    fn non_finite_samples_do_not_poison_the_mean() {
        let mut h = PowerHistogram::new(0.0, 100.0, 4);
        h.push(10.0);
        h.push(f64::NAN);
        h.push(30.0);
        h.push(f64::INFINITY);
        h.push(f64::NEG_INFINITY);
        assert_eq!(h.total(), 5);
        assert_eq!(h.non_finite(), 3);
        // NaN must not land in bin 0 (the old bug) nor in the saturation
        // counters.
        assert_eq!(h.count(0), 1);
        assert_eq!(h.saturated(), 0);
        // Mean over the finite samples only — and still a number.
        assert_close!(h.mean(), 20.0, 1e-12);
        // The table surfaces the bad samples.
        let rendered = h.to_table("faulty sensor").render();
        assert!(rendered.contains("non-finite"), "{rendered}");
        assert!(rendered.contains("60.0%"), "{rendered}");
    }

    #[test]
    fn clean_table_has_no_non_finite_row() {
        let mut h = PowerHistogram::new(0.0, 10.0, 2);
        h.push(5.0);
        assert!(!h.to_table("clean").render().contains("non-finite"));
    }

    #[test]
    fn all_out_of_range_samples_keep_stats_consistent() {
        let mut h = PowerHistogram::new(10.0, 20.0, 4);
        h.push(-5.0);
        h.push(100.0);
        h.push(200.0);
        assert_eq!(h.total(), 3);
        assert_eq!(h.saturated(), 3);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        // Edge bins absorb everything; interior bins stay empty.
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 0);
        assert_eq!(h.count(2), 0);
        assert_eq!(h.count(3), 2);
        assert_close!(h.mean(), (-5.0 + 100.0 + 200.0) / 3.0, 1e-12);
        assert_close!(h.fraction_at_or_above(15.0), 2.0 / 3.0, 1e-12);
    }

    #[test]
    fn only_non_finite_samples_mean_is_zero() {
        let mut h = PowerHistogram::new(0.0, 1.0, 1);
        h.push(f64::NAN);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.non_finite(), 1);
        assert_eq!(h.count(0), 0);
    }

    #[test]
    fn out_of_range_quantile_yields_nan_in_every_profile() {
        // Regression: the old debug_assert + release clamp pair made debug
        // and release disagree, and a NaN quantile slipped past the clamp
        // into a garbage index. Pinned uniform behavior, profile-free: a
        // bad entry is NaN, its well-formed neighbors still answer, and
        // nothing panics.
        let ps = percentiles(&[1.0, 2.0, 3.0], &[-0.5, 0.5, 1.5, f64::NAN]);
        assert_eq!(ps.len(), 4);
        assert!(ps[0].is_nan(), "{ps:?}");
        assert_eq!(ps[1], 2.0);
        assert!(ps[2].is_nan(), "{ps:?}");
        assert!(ps[3].is_nan(), "{ps:?}");
        // The boundaries themselves are legal, not errors.
        assert_eq!(percentiles(&[1.0, 2.0, 3.0], &[0.0, 1.0]), vec![1.0, 3.0]);
    }
}

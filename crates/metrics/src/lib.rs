//! Evaluation metrics and suite-level aggregation.
//!
//! The paper evaluates every scheme on three axes (§5):
//!
//! * **maximum power / limit** over the specification window (Figures 4/7) —
//!   [`violation`];
//! * **speedup** versus the fixed-voltage baseline, per component and as the
//!   Eq. 3 geometric mean (Figures 5/8/10) — [`speedup`];
//! * **Provisioned Power Efficiency** (Eq. 4, Figures 6/9) — [`ppe`].
//!
//! [`suite`] aggregates those per-combo numbers across the Table 3 test
//! suite the way the paper reports them (arithmetic mean of per-combo
//! values, e.g. "HCAPP averages a PPE of 93.9%").
//!
//! [`resilience`] extends the axes to fault-injected runs: over-cap episode
//! structure (time over cap, recovery time) and the PPE cost of graceful
//! degradation versus a clean run.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod histogram;
pub mod ppe;
pub mod resilience;
pub mod speedup;
pub mod suite;
pub mod violation;

pub use histogram::{percentiles, PowerHistogram};
pub use ppe::provisioned_power_efficiency;
pub use resilience::{over_cap, ppe_drop, OverCapReport};
pub use speedup::{component_speedup, eq3_total_speedup};
pub use suite::{ComboRow, SuiteSummary};
pub use violation::{classify, Violation};

//! Provisioned Power Efficiency (Eq. 4).
//!
//! `PPE = AveragePower / SystemProvisionedPower` — how much of the power the
//! package pins were provisioned for is actually used. The whole point of
//! HCAPP is raising this toward 1.0: "the SoC designer must provision (pay)
//! for 60% more pins for power delivery than are used on average" (§1).

use hcapp_sim_core::units::Watt;

/// Eq. 4.
///
/// # Panics
/// Panics (debug) on non-positive provisioned power.
#[inline]
pub fn provisioned_power_efficiency(average: Watt, provisioned: Watt) -> f64 {
    debug_assert!(provisioned.value() > 0.0, "non-positive provisioned power");
    average / provisioned
}

/// The pin over-provisioning factor implied by a PPE: how many more pins the
/// designer paid for than the average use (`1/PPE`). The paper's motivating
/// example: PPE 62.5% ⇒ 60% extra pins.
#[inline]
pub fn overprovision_factor(ppe: f64) -> f64 {
    debug_assert!(ppe > 0.0);
    1.0 / ppe
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::assert_close;

    #[test]
    fn eq4() {
        assert_close!(
            provisioned_power_efficiency(Watt::new(93.9), Watt::new(100.0)),
            0.939,
            1e-12
        );
    }

    #[test]
    fn paper_intro_example() {
        // §1: peak 60% above average ⇒ PPE 62.5% ⇒ paying for 60% more pins.
        let ppe = provisioned_power_efficiency(Watt::new(100.0), Watt::new(160.0));
        assert_close!(ppe, 0.625, 1e-12);
        assert_close!(overprovision_factor(ppe), 1.6, 1e-12);
    }
}

//! Resilience metrics for fault-injected runs.
//!
//! The fault campaign's question is not "what is the mean power" but "when
//! a fault pushes the package over its cap, how long does it stay there and
//! how fast does the degraded-mode controller pull it back". [`over_cap`]
//! scans a fixed-step power trace for over-cap *episodes* (maximal runs of
//! consecutive samples above the cap) and reports their count, total mass
//! and worst-case length — the longest episode is exactly the quantity the
//! acceptance bound ("never above `P_spec` beyond the violation window")
//! constrains. [`ppe_drop`] expresses what graceful degradation costs: the
//! PPE a scheme gives up under a fault plan relative to its clean run.

use hcapp_sim_core::series::TimeSeries;
use hcapp_sim_core::time::SimDuration;

/// Episode structure of a power trace relative to a cap.
#[derive(Debug, Clone, PartialEq)]
pub struct OverCapReport {
    /// Total samples scanned.
    pub samples: usize,
    /// Samples strictly above the cap.
    pub samples_over: usize,
    /// Maximal runs of consecutive over-cap samples.
    pub episodes: usize,
    /// Length of the longest episode.
    pub longest: SimDuration,
    /// Time from the start of the first episode until the trace first
    /// returns under the cap — the recovery time of the first fault that
    /// actually bit. `None` when the trace never goes over (or never
    /// comes back).
    pub first_recovery: Option<SimDuration>,
}

impl OverCapReport {
    /// Fraction of simulated time spent above the cap.
    pub fn over_fraction(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.samples_over as f64 / self.samples as f64
        }
    }

    /// Mean episode length (zero when there were none).
    pub fn mean_episode(&self, dt: SimDuration) -> SimDuration {
        if self.episodes == 0 {
            SimDuration::ZERO
        } else {
            dt * (self.samples_over / self.episodes) as u64
        }
    }
}

/// Scan `trace` for runs of consecutive samples strictly above `cap`
/// (watts). The trace's own sample interval scales the durations.
pub fn over_cap(trace: &TimeSeries, cap: f64) -> OverCapReport {
    let dt = trace.dt();
    let mut report = OverCapReport {
        samples: trace.len(),
        samples_over: 0,
        episodes: 0,
        longest: SimDuration::ZERO,
        first_recovery: None,
    };
    let mut run = 0u64;
    for &v in trace.values() {
        if v > cap {
            if run == 0 {
                report.episodes += 1;
            }
            run += 1;
            report.samples_over += 1;
            let len = dt * run;
            if len > report.longest {
                report.longest = len;
            }
        } else {
            if run > 0 && report.first_recovery.is_none() {
                report.first_recovery = Some(dt * run);
            }
            run = 0;
        }
    }
    report
}

/// PPE given up under faults: `clean_ppe - faulted_ppe`, in PPE points.
/// Positive means the faulted run is less efficient (the expected direction
/// — graceful degradation trades PPE for cap safety); a small negative
/// value just means the fault plan did not bite.
pub fn ppe_drop(clean_ppe: f64, faulted_ppe: f64) -> f64 {
    clean_ppe - faulted_ppe
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(vals: &[f64]) -> TimeSeries {
        TimeSeries::from_values(SimDuration::from_micros(1), vals.to_vec())
    }

    #[test]
    fn clean_trace_has_no_episodes() {
        let r = over_cap(&series(&[80.0, 82.0, 79.0]), 100.0);
        assert_eq!(r.episodes, 0);
        assert_eq!(r.samples_over, 0);
        assert_eq!(r.longest, SimDuration::ZERO);
        assert_eq!(r.first_recovery, None);
        assert_eq!(r.over_fraction(), 0.0);
    }

    #[test]
    fn episodes_counted_and_measured() {
        //                cap=100:  -    over over  -    over  -
        let r = over_cap(&series(&[90.0, 110.0, 105.0, 95.0, 120.0, 80.0]), 100.0);
        assert_eq!(r.episodes, 2);
        assert_eq!(r.samples_over, 3);
        assert_eq!(r.longest, SimDuration::from_micros(2));
        assert_eq!(r.first_recovery, Some(SimDuration::from_micros(2)));
        assert!((r.over_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(r.mean_episode(SimDuration::from_micros(1)), SimDuration::from_micros(1));
    }

    #[test]
    fn trailing_episode_counts_toward_longest() {
        let r = over_cap(&series(&[90.0, 120.0, 120.0, 120.0]), 100.0);
        assert_eq!(r.episodes, 1);
        assert_eq!(r.longest, SimDuration::from_micros(3));
        // Never recovered within the trace.
        assert_eq!(r.first_recovery, None);
    }

    #[test]
    fn exactly_at_cap_is_not_over() {
        let r = over_cap(&series(&[100.0, 100.0]), 100.0);
        assert_eq!(r.samples_over, 0);
    }

    #[test]
    fn ppe_drop_direction() {
        assert!((ppe_drop(0.93, 0.88) - 0.05).abs() < 1e-12);
        assert!(ppe_drop(0.90, 0.92) < 0.0);
    }
}

//! Speedup metrics (Eq. 3).
//!
//! Components run for the full test duration (short workloads are looped,
//! §4), so a component's speedup is the ratio of work it completes:
//! `S = work_scheme / work_baseline`. The test's total speedup is Eq. 3:
//! `S_total = cbrt(S_CPU · S_GPU · S_Accel)` — generalized here to the
//! geometric mean over any number of domains so the scaling study can reuse
//! it.

use hcapp_sim_core::stats::geometric_mean;

/// Per-component speedup: work ratio against the baseline run.
///
/// Returns 1.0 when the baseline did no work (idle component).
#[inline]
pub fn component_speedup(work: f64, baseline_work: f64) -> f64 {
    debug_assert!(work >= 0.0 && baseline_work >= 0.0);
    if baseline_work <= 0.0 {
        1.0
    } else {
        work / baseline_work
    }
}

/// Eq. 3: geometric mean of component speedups.
///
/// ```
/// use hcapp_metrics::speedup::eq3_total_speedup;
/// let total = eq3_total_speedup(&[1.083, 1.054, 1.12]);
/// assert!((total - (1.083f64 * 1.054 * 1.12).cbrt()).abs() < 1e-12);
/// ```
pub fn eq3_total_speedup(component_speedups: &[f64]) -> f64 {
    geometric_mean(component_speedups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::assert_close;

    #[test]
    fn work_ratio() {
        assert_close!(component_speedup(121.0, 100.0), 1.21, 1e-12);
        assert_close!(component_speedup(0.0, 0.0), 1.0, 1e-12);
    }

    #[test]
    fn eq3_exact_form() {
        let s = eq3_total_speedup(&[1.083, 1.054, 1.12]);
        assert_close!(s, (1.083f64 * 1.054 * 1.12).cbrt(), 1e-12);
    }

    #[test]
    fn slowdown_components_pull_total_down() {
        let with_slow = eq3_total_speedup(&[0.9, 1.4, 1.6]);
        let without = eq3_total_speedup(&[1.0, 1.4, 1.6]);
        assert!(with_slow < without);
        // But a strong pair still nets a speedup.
        assert!(with_slow > 1.0);
    }
}

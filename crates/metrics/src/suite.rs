//! Suite-level aggregation.
//!
//! The paper reports per-combo bars plus an "Ave." bar (arithmetic mean of
//! the per-combo values — Figure 5 explicitly has an "Ave." category).
//! [`SuiteSummary`] collects one [`ComboRow`] per Table 3 combo and provides
//! those averages, plus rendering into the shared table format.

use hcapp_sim_core::report::Table;

/// One combo's metrics under one scheme.
#[derive(Debug, Clone)]
pub struct ComboRow {
    /// Combo name (figure label).
    pub combo: String,
    /// Max windowed power / limit.
    pub max_ratio: f64,
    /// PPE (Eq. 4).
    pub ppe: f64,
    /// Eq. 3 total speedup versus the fixed baseline.
    pub speedup: f64,
}

/// All combos for one scheme.
#[derive(Debug, Clone)]
pub struct SuiteSummary {
    /// Scheme display name.
    pub scheme: String,
    /// Per-combo rows, in suite order.
    pub rows: Vec<ComboRow>,
}

impl SuiteSummary {
    /// Create an empty summary for a scheme.
    pub fn new(scheme: impl Into<String>) -> Self {
        SuiteSummary {
            scheme: scheme.into(),
            rows: Vec::new(),
        }
    }

    /// Append one combo's metrics.
    pub fn push(&mut self, row: ComboRow) {
        self.rows.push(row);
    }

    fn mean(&self, f: impl Fn(&ComboRow) -> f64) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(f).sum::<f64>() / self.rows.len() as f64
    }

    /// The figures' "Ave." bar for speedup.
    pub fn average_speedup(&self) -> f64 {
        self.mean(|r| r.speedup)
    }

    /// Average PPE across the suite ("HCAPP averages a PPE of 93.9%").
    pub fn average_ppe(&self) -> f64 {
        self.mean(|r| r.ppe)
    }

    /// Average max-power ratio.
    pub fn average_max_ratio(&self) -> f64 {
        self.mean(|r| r.max_ratio)
    }

    /// Worst (largest) max-power ratio — the §5.1 viability criterion
    /// applies to this value. `0.0` on an empty suite (the fold's natural
    /// `-inf` identity would leak into reports otherwise).
    pub fn worst_max_ratio(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.max_ratio)
            .fold(0.0, f64::max)
    }

    /// §5.1 viability: every combo under the limit.
    pub fn viable(&self) -> bool {
        crate::violation::suite_viable(
            &self.rows.iter().map(|r| r.max_ratio).collect::<Vec<_>>(),
        )
    }

    /// Render as a table with the "Ave." row the figures carry.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            format!("{} across the Table 3 suite", self.scheme),
            &["combo", "max power/limit", "PPE", "speedup"],
        );
        for r in &self.rows {
            t.add_row(vec![
                r.combo.clone(),
                format!("{:.3}", r.max_ratio),
                format!("{:.1}%", r.ppe * 100.0),
                format!("{:.3}x", r.speedup),
            ]);
        }
        t.add_row(vec![
            "Ave.".to_string(),
            format!("{:.3}", self.average_max_ratio()),
            format!("{:.1}%", self.average_ppe() * 100.0),
            format!("{:.3}x", self.average_speedup()),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::assert_close;

    fn summary() -> SuiteSummary {
        let mut s = SuiteSummary::new("HCAPP");
        for (i, name) in ["Hi-Hi", "Low-Low"].iter().enumerate() {
            s.push(ComboRow {
                combo: name.to_string(),
                max_ratio: 0.9 + 0.05 * i as f64,
                ppe: 0.90 + 0.02 * i as f64,
                speedup: 1.1 + 0.2 * i as f64,
            });
        }
        s
    }

    #[test]
    fn averages() {
        let s = summary();
        assert_close!(s.average_speedup(), 1.2, 1e-12);
        assert_close!(s.average_ppe(), 0.91, 1e-12);
        assert_close!(s.average_max_ratio(), 0.925, 1e-12);
        assert_close!(s.worst_max_ratio(), 0.95, 1e-12);
        assert!(s.viable());
    }

    #[test]
    fn viability_fails_on_one_violation() {
        let mut s = summary();
        s.push(ComboRow {
            combo: "Const-Burst".into(),
            max_ratio: 1.02,
            ppe: 0.9,
            speedup: 1.2,
        });
        assert!(!s.viable());
    }

    #[test]
    fn table_has_ave_row() {
        let t = summary().to_table();
        assert_eq!(t.len(), 3); // 2 combos + Ave.
        assert!(t.render().contains("Ave."));
    }

    #[test]
    fn empty_summary_is_calm() {
        let s = SuiteSummary::new("empty");
        // Every aggregate over zero rows must be a quiet, finite zero —
        // never NaN (0/0) or -inf (empty max fold).
        assert_eq!(s.average_speedup(), 0.0);
        assert_eq!(s.average_ppe(), 0.0);
        assert_eq!(s.average_max_ratio(), 0.0);
        assert_eq!(s.worst_max_ratio(), 0.0);
        assert!(s.viable());
        // And the table still renders (just the Ave. row).
        let t = s.to_table();
        assert_eq!(t.len(), 1);
        assert!(t.render().contains("Ave."));
    }
}

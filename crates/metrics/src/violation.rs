//! Power-limit violation classification.
//!
//! Figures 4 and 7 hinge on which schemes stay under the 1.0 line. §5.1:
//! "For an approach to be viable, all of the maximum powers across the
//! entire test suite must be below the 1.0 mark" — schemes that exceed it
//! are declared invalid and dropped from the speedup/PPE figures (the paper
//! then re-admits them "for the sake of analysis" in §5.2).

/// How a run relates to a power limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Violation {
    /// Max windowed power ≤ the limit.
    Respected,
    /// Exceeds the limit by at most 10% — the paper's "narrowly exceeds"
    /// (RAPL-like on Const-Burst under the 1 ms limit).
    Narrow,
    /// Exceeds the limit by more than 10%.
    Gross,
}

/// Classify a max-power/limit ratio.
pub fn classify(max_ratio: f64) -> Violation {
    if max_ratio <= 1.0 + 1e-9 {
        Violation::Respected
    } else if max_ratio <= 1.10 {
        Violation::Narrow
    } else {
        Violation::Gross
    }
}

impl Violation {
    /// §5.1 viability: a scheme is viable only if every combo respects the
    /// limit.
    pub fn is_viable(&self) -> bool {
        matches!(self, Violation::Respected)
    }

    /// Display marker used in the experiment tables.
    pub fn marker(&self) -> &'static str {
        match self {
            Violation::Respected => "ok",
            Violation::Narrow => "VIOLATES (narrow)",
            Violation::Gross => "VIOLATES",
        }
    }
}

/// A whole suite is viable iff every run respects the limit (§5.1).
pub fn suite_viable(max_ratios: &[f64]) -> bool {
    max_ratios.iter().all(|&r| classify(r).is_viable())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_bands() {
        assert_eq!(classify(0.95), Violation::Respected);
        assert_eq!(classify(1.0), Violation::Respected);
        assert_eq!(classify(1.05), Violation::Narrow);
        assert_eq!(classify(1.5), Violation::Gross);
    }

    #[test]
    fn viability() {
        assert!(classify(0.99).is_viable());
        assert!(!classify(1.01).is_viable());
        assert!(suite_viable(&[0.9, 0.95, 1.0]));
        assert!(!suite_viable(&[0.9, 1.2, 0.8]));
    }

    #[test]
    fn markers() {
        assert_eq!(classify(0.5).marker(), "ok");
        assert_eq!(classify(1.05).marker(), "VIOLATES (narrow)");
        assert_eq!(classify(2.0).marker(), "VIOLATES");
    }
}

//! The Table 1 delay budget.
//!
//! The paper derives HCAPP's 1 µs control period from the round-trip delay
//! of the control loop: global VR transition → supply-network propagation →
//! component current change → sensing → controller computation. The numbers
//! come from the Raven VR design \[16\], Cadence Spectre simulations, and the
//! Gupta et al. supply-network model scaled ×5 for 2.5D integration.
//!
//! This module encodes those numbers verbatim and reproduces the table's
//! arithmetic (per-component scaling factors, totals, and the conservative
//! rounding to 1 µs).

use hcapp_sim_core::time::{SimDuration, MICROSECOND};

/// A min–max delay range in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelayRange {
    /// Best-case delay in nanoseconds.
    pub min_ns: u64,
    /// Worst-case delay in nanoseconds.
    pub max_ns: u64,
}

impl DelayRange {
    /// Construct a range.
    ///
    /// # Panics
    /// Panics if `min_ns > max_ns`.
    pub const fn new(min_ns: u64, max_ns: u64) -> Self {
        assert!(min_ns <= max_ns, "inverted delay range");
        DelayRange { min_ns, max_ns }
    }

    /// Multiply both endpoints by an integer factor (the ×2 for the two VRs
    /// in the loop, the ×5 2.5D scaling of the supply-network model).
    pub const fn scaled(self, factor: u64) -> Self {
        DelayRange {
            min_ns: self.min_ns * factor,
            max_ns: self.max_ns * factor,
        }
    }

    /// Element-wise sum of two ranges.
    pub const fn plus(self, other: DelayRange) -> Self {
        DelayRange {
            min_ns: self.min_ns + other.min_ns,
            max_ns: self.max_ns + other.max_ns,
        }
    }

    /// The worst case as a [`SimDuration`].
    pub const fn worst(self) -> SimDuration {
        SimDuration::from_nanos(self.max_ns)
    }
}

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct BudgetRow {
    /// Component name as printed in the paper.
    pub component: &'static str,
    /// Simulated (unscaled) transition time.
    pub simulated: DelayRange,
    /// Scaling factor applied for the 2.5D system (1 = unscaled).
    pub scale: u64,
}

impl BudgetRow {
    /// The scaled transition time (the paper's right-hand column).
    pub fn scaled(&self) -> DelayRange {
        self.simulated.scaled(self.scale)
    }
}

/// The full Table 1 delay budget.
#[derive(Debug, Clone)]
pub struct TransitionBudget {
    rows: Vec<BudgetRow>,
}

impl Default for TransitionBudget {
    fn default() -> Self {
        Self::paper()
    }
}

impl TransitionBudget {
    /// The budget exactly as published in Table 1.
    pub fn paper() -> Self {
        TransitionBudget {
            rows: vec![
                BudgetRow {
                    component: "Voltage Regulator (global and domain)",
                    simulated: DelayRange::new(36, 226),
                    scale: 2,
                },
                BudgetRow {
                    component: "Sensing Circuitry",
                    simulated: DelayRange::new(50, 60),
                    scale: 1,
                },
                BudgetRow {
                    component: "Controller",
                    simulated: DelayRange::new(10, 30),
                    scale: 1,
                },
                BudgetRow {
                    component: "Power Supply Network",
                    simulated: DelayRange::new(3, 15),
                    scale: 5,
                },
            ],
        }
    }

    /// A custom budget (for scaling studies that add aggregation hops).
    pub fn new(rows: Vec<BudgetRow>) -> Self {
        assert!(!rows.is_empty(), "empty delay budget");
        TransitionBudget { rows }
    }

    /// The budget rows.
    pub fn rows(&self) -> &[BudgetRow] {
        &self.rows
    }

    /// Total scaled round-trip range (the paper's "Total" row: 147–617 ns).
    pub fn total(&self) -> DelayRange {
        self.rows
            .iter()
            .map(|r| r.scaled())
            .fold(DelayRange::new(0, 0), |acc, r| acc.plus(r))
    }

    /// Conservative control period: the worst-case total rounded up to the
    /// next microsecond (the paper rounds 617 ns to 1 µs).
    pub fn control_period(&self) -> SimDuration {
        let worst = self.total().max_ns;
        let us = worst.div_ceil(MICROSECOND.as_nanos());
        MICROSECOND * us.max(1)
    }
}

/// A transient fault on the global-voltage broadcast for one domain, as
/// decided by a fault plan (`hcapp-faults`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFault {
    /// The schedule arrives late: tick `i` of the quantum sees the value
    /// scheduled `ticks` earlier (floored at the quantum start).
    Delay {
        /// Lag in simulation ticks.
        ticks: u32,
    },
    /// The broadcast for this quantum is lost entirely; the receiver holds
    /// the last value it heard.
    Loss,
}

/// The receive side of the global-voltage "broadcast": how one domain reads
/// the per-quantum schedule the coordinator precomputed from the global VR.
///
/// Healthy operation is a zero-cost passthrough (`sched[i]`). Under a
/// [`LinkFault`] the link degrades the way a real voltage-observation path
/// would: delay re-reads an earlier slot, loss holds the last good sample —
/// never an invented value, so the result is always something the VR
/// actually output (and hence in its legal range).
#[derive(Debug, Clone, Default)]
pub struct BroadcastLink {
    last_good: Option<f64>,
}

impl BroadcastLink {
    /// A link that has heard nothing yet.
    pub fn new() -> Self {
        BroadcastLink::default()
    }

    /// Read slot `i` of this quantum's schedule through the link.
    pub fn receive(&mut self, sched: &[f64], i: usize, fault: Option<LinkFault>) -> f64 {
        let v = match fault {
            None => sched[i],
            Some(LinkFault::Delay { ticks }) => sched[i.saturating_sub(ticks as usize)],
            Some(LinkFault::Loss) => return self.last_good.unwrap_or(sched[i]),
        };
        self.last_good = Some(v);
        v
    }

    /// Forget the held sample (start-of-run reset).
    pub fn reset(&mut self) {
        self.last_good = None;
    }
}

impl hcapp_sim_core::state::Snapshot for BroadcastLink {
    fn save_state(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        w.opt_f64("link.last_good", self.last_good);
    }

    fn load_state(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        self.last_good = r.opt_f64("link.last_good")?;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_totals_match_table_1() {
        let b = TransitionBudget::paper();
        let total = b.total();
        assert_eq!(total.min_ns, 147);
        assert_eq!(total.max_ns, 617);
    }

    #[test]
    fn paper_scaled_rows_match() {
        let b = TransitionBudget::paper();
        let vr = b.rows()[0].scaled();
        assert_eq!((vr.min_ns, vr.max_ns), (72, 452));
        let psn = b.rows()[3].scaled();
        assert_eq!((psn.min_ns, psn.max_ns), (15, 75));
    }

    #[test]
    fn control_period_is_one_microsecond() {
        assert_eq!(TransitionBudget::paper().control_period(), MICROSECOND);
    }

    #[test]
    fn control_period_rounds_up() {
        let b = TransitionBudget::new(vec![BudgetRow {
            component: "slow aggregation bus",
            simulated: DelayRange::new(900, 1_700),
            scale: 1,
        }]);
        assert_eq!(b.control_period(), MICROSECOND * 2);
    }

    #[test]
    fn range_arithmetic() {
        let r = DelayRange::new(3, 15).scaled(5);
        assert_eq!((r.min_ns, r.max_ns), (15, 75));
        let s = r.plus(DelayRange::new(5, 5));
        assert_eq!((s.min_ns, s.max_ns), (20, 80));
        assert_eq!(s.worst(), SimDuration::from_nanos(80));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_range_panics() {
        let _ = DelayRange::new(10, 5);
    }

    #[test]
    fn healthy_link_is_passthrough() {
        let sched = [0.9, 0.91, 0.92, 0.93];
        let mut link = BroadcastLink::new();
        for (i, &v) in sched.iter().enumerate() {
            assert_eq!(link.receive(&sched, i, None), v);
        }
    }

    #[test]
    fn delayed_link_rereads_earlier_slots() {
        let sched = [0.9, 0.91, 0.92, 0.93];
        let mut link = BroadcastLink::new();
        let fault = Some(LinkFault::Delay { ticks: 2 });
        assert_eq!(link.receive(&sched, 0, fault), 0.9); // floored at slot 0
        assert_eq!(link.receive(&sched, 3, fault), 0.91);
    }

    #[test]
    fn lossy_link_holds_last_good_value() {
        let sched = [0.9, 0.95, 1.0, 1.05];
        let mut link = BroadcastLink::new();
        // Nothing heard yet: loss falls back to the live schedule.
        assert_eq!(link.receive(&sched, 0, Some(LinkFault::Loss)), 0.9);
        assert_eq!(link.receive(&sched, 1, None), 0.95);
        assert_eq!(link.receive(&sched, 3, Some(LinkFault::Loss)), 0.95);
        link.reset();
        assert_eq!(link.receive(&sched, 2, Some(LinkFault::Loss)), 1.0);
    }
}

//! Power delivery network models.
//!
//! HCAPP's defining trick is using the power supply network itself as the
//! communication fabric: the global controller speaks by moving the global
//! VR output voltage, and listens through current/voltage sensing built into
//! the VR. The physical behaviour of that fabric — regulator transition
//! times, sensing delay, supply-network propagation — dictates the minimum
//! control period (Table 1 of the paper: 147–617 ns worst case, rounded to a
//! conservative 1 µs).
//!
//! * [`delays`] — the Table 1 delay budget and the control-period derivation.
//! * [`regulator`] — a Raven-style [`VoltageRegulator`] with response delay,
//!   slew-rate-limited transitions and output clamping.
//! * [`sensing`] — a [`PowerSensor`] with measurement latency and optional
//!   quantization, as found in commercial VR controllers (e.g. the Richtek
//!   part the paper cites).
//! * [`network`] — per-chiplet voltage propagation delay and optional IR
//!   drop ([`SupplyNetwork`]).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod delays;
pub mod network;
pub mod regulator;
pub mod ripple;
pub mod sensing;

pub use delays::{BroadcastLink, DelayRange, LinkFault, TransitionBudget};
pub use network::SupplyNetwork;
pub use regulator::VoltageRegulator;
pub use ripple::{RippleInjector, RippleSpec};
pub use sensing::{PowerSensor, SensorFault};

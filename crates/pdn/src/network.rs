//! On-package power supply network.
//!
//! The global voltage takes time to propagate across the interposer to each
//! chiplet (Table 1: 3–15 ns on-chip, ×5 for 2.5D → 15–75 ns), and the grid
//! has finite resistance, so a heavily-drawing chiplet sees a slightly
//! depressed local voltage (IR drop). [`SupplyNetwork`] models both as a
//! per-chiplet delay line plus an optional resistive drop proportional to
//! the chiplet's current draw.

use hcapp_sim_core::units::{Volt, Watt};
use std::collections::VecDeque;

/// Per-chiplet voltage propagation with optional IR drop.
#[derive(Debug, Clone)]
pub struct SupplyNetwork {
    /// Propagation delay to each chiplet in whole simulation ticks.
    delay_ticks: usize,
    /// Effective grid resistance per chiplet branch in ohms (0 disables IR
    /// drop).
    branch_resistance: f64,
    /// One delay line per chiplet.
    lines: Vec<VecDeque<Volt>>,
    /// Last delivered voltage per chiplet (held while the pipeline fills).
    delivered: Vec<Volt>,
}

impl SupplyNetwork {
    /// Create a network serving `chiplets` branches with the given delay
    /// (simulation ticks) and branch resistance (ohms).
    ///
    /// # Panics
    /// Panics if `chiplets` is zero or resistance negative.
    pub fn new(chiplets: usize, delay_ticks: usize, branch_resistance: f64) -> Self {
        assert!(chiplets > 0, "network needs at least one chiplet");
        assert!(branch_resistance >= 0.0, "negative resistance");
        SupplyNetwork {
            delay_ticks,
            branch_resistance,
            lines: vec![VecDeque::with_capacity(delay_ticks + 1); chiplets],
            delivered: vec![Volt::ZERO; chiplets],
        }
    }

    /// An ideal network: instantaneous, lossless.
    pub fn ideal(chiplets: usize) -> Self {
        SupplyNetwork::new(chiplets, 0, 0.0)
    }

    /// A Table-1-like network for a 100 ns tick: 15–75 ns rounds to one
    /// tick; a small branch resistance for visible but mild IR drop.
    pub fn table1_default(chiplets: usize) -> Self {
        SupplyNetwork::new(chiplets, 1, 0.0)
    }

    /// Number of chiplet branches.
    pub fn chiplets(&self) -> usize {
        self.lines.len()
    }

    /// Propagate the global VR output `v_global` one tick and return the
    /// voltage delivered at chiplet `idx`, given that chiplet's power draw
    /// last tick (for the IR-drop term).
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn deliver(&mut self, idx: usize, v_global: Volt, last_power: Watt) -> Volt {
        let line = &mut self.lines[idx];
        line.push_back(v_global);
        if line.len() > self.delay_ticks {
            self.delivered[idx] = line.pop_front().expect("non-empty line");
        }
        let v = self.delivered[idx];
        // Numerical-stability epsilon, not a physical threshold: guards the
        // I = P/V division below against a (transiently) zero rail.
        // simlint: allow(unit-safety): epsilon guard on a transiently-zero
        // rail, not physical-unit arithmetic
        if self.branch_resistance > 0.0 && v.value() > 1e-9 {
            // I = P/V; ΔV = I·R.
            let current = last_power.value() / v.value();
            let drop = current * self.branch_resistance;
            Volt::new((v.value() - drop).max(0.0))
        } else {
            v
        }
    }

    /// Clear all delay lines.
    pub fn reset(&mut self) {
        for line in &mut self.lines {
            line.clear();
        }
        self.delivered.fill(Volt::ZERO);
    }
}

impl hcapp_sim_core::state::Snapshot for SupplyNetwork {
    fn save_state(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        w.usize("net.branches", self.lines.len());
        for line in &self.lines {
            let vs: Vec<f64> = line.iter().map(|v| v.0).collect();
            w.f64_slice("net.line", &vs);
        }
        let dv: Vec<f64> = self.delivered.iter().map(|v| v.0).collect();
        w.f64_slice("net.delivered", &dv);
    }

    fn load_state(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        if r.usize("net.branches")? != self.lines.len() {
            return None;
        }
        for line in &mut self.lines {
            *line = r.f64_vec("net.line")?.into_iter().map(Volt).collect();
        }
        let dv = r.f64_vec("net.delivered")?;
        if dv.len() != self.delivered.len() {
            return None;
        }
        self.delivered = dv.into_iter().map(Volt).collect();
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::assert_close;

    #[test]
    fn ideal_is_passthrough() {
        let mut n = SupplyNetwork::ideal(2);
        let v = n.deliver(0, Volt::new(1.0), Watt::ZERO);
        assert_close!(v.value(), 1.0, 1e-12);
        let v = n.deliver(1, Volt::new(0.8), Watt::ZERO);
        assert_close!(v.value(), 0.8, 1e-12);
    }

    #[test]
    fn delay_shifts_voltage() {
        let mut n = SupplyNetwork::new(1, 2, 0.0);
        assert_close!(n.deliver(0, Volt::new(1.0), Watt::ZERO).value(), 0.0, 1e-12);
        assert_close!(n.deliver(0, Volt::new(1.1), Watt::ZERO).value(), 0.0, 1e-12);
        assert_close!(n.deliver(0, Volt::new(1.2), Watt::ZERO).value(), 1.0, 1e-12);
        assert_close!(n.deliver(0, Volt::new(1.3), Watt::ZERO).value(), 1.1, 1e-12);
    }

    #[test]
    fn branches_are_independent() {
        let mut n = SupplyNetwork::new(2, 1, 0.0);
        n.deliver(0, Volt::new(1.0), Watt::ZERO);
        // Branch 1 has seen nothing yet.
        assert_close!(n.deliver(1, Volt::new(0.9), Watt::ZERO).value(), 0.0, 1e-12);
        assert_close!(n.deliver(0, Volt::new(1.0), Watt::ZERO).value(), 1.0, 1e-12);
    }

    #[test]
    fn ir_drop_scales_with_power() {
        let mut n = SupplyNetwork::new(1, 0, 0.001);
        // 100 W at 1 V = 100 A → 0.1 V drop across 1 mΩ.
        let v = n.deliver(0, Volt::new(1.0), Watt::new(100.0));
        assert_close!(v.value(), 0.9, 1e-9);
        // Idle chiplet sees the full voltage.
        let v = n.deliver(0, Volt::new(1.0), Watt::ZERO);
        assert_close!(v.value(), 1.0, 1e-9);
    }

    #[test]
    fn ir_drop_never_negative() {
        let mut n = SupplyNetwork::new(1, 0, 1.0);
        let v = n.deliver(0, Volt::new(0.5), Watt::new(1000.0));
        assert!(v.value() >= 0.0);
    }

    #[test]
    fn reset_refills_pipeline() {
        let mut n = SupplyNetwork::new(1, 1, 0.0);
        n.deliver(0, Volt::new(1.0), Watt::ZERO);
        n.deliver(0, Volt::new(1.0), Watt::ZERO);
        n.reset();
        assert_close!(n.deliver(0, Volt::new(1.2), Watt::ZERO).value(), 0.0, 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_chiplets_panics() {
        let _ = SupplyNetwork::ideal(0);
    }
}

//! Voltage regulator model.
//!
//! Modeled after the Raven switched-capacitor design the paper cites \[16\]:
//! a new setpoint takes effect after a short response delay and the output
//! then slews toward it at a finite rate, so a full-range transition
//! completes within the 36–226 ns the paper quotes. Output is clamped to the
//! regulator's legal range — the domain regulators use this to normalize the
//! global voltage into each chiplet's allowable window (§3.2).

use hcapp_sim_core::state::{Snapshot, StateReader, StateWriter};
use hcapp_sim_core::time::{SimDuration, SimTime};
use hcapp_sim_core::units::Volt;
use std::collections::VecDeque;

/// A slew-rate-limited, delay-modelled voltage regulator.
#[derive(Debug, Clone)]
pub struct VoltageRegulator {
    /// Lowest voltage the regulator can output.
    pub v_min: Volt,
    /// Highest voltage the regulator can output.
    pub v_max: Volt,
    /// Response delay between a setpoint command and the output starting to
    /// move (Raven: tens of ns).
    pub response_delay: SimDuration,
    /// Output slew rate in volts/second.
    pub slew_volts_per_sec: f64,
    /// Power conversion efficiency in (0, 1].
    pub efficiency: f64,
    output: Volt,
    target: Volt,
    /// Pending setpoints not yet past the response delay.
    pending: VecDeque<(SimTime, Volt)>,
    /// Transient slew-rate derating in (0, 1]; 1.0 = healthy. Set by fault
    /// injection (an aging or thermally stressed VR chases setpoints more
    /// slowly) and cleared when the episode ends.
    slew_derate: f64,
}

impl VoltageRegulator {
    /// Create a regulator producing `initial` volts.
    ///
    /// # Panics
    /// Panics on an inverted range, non-positive slew rate, efficiency
    /// outside (0, 1], or an initial voltage outside the range.
    pub fn new(
        v_min: Volt,
        v_max: Volt,
        initial: Volt,
        response_delay: SimDuration,
        slew_volts_per_sec: f64,
        efficiency: f64,
    ) -> Self {
        assert!(v_min.value() <= v_max.value(), "inverted voltage range");
        assert!(slew_volts_per_sec > 0.0, "non-positive slew rate");
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency out of (0,1]"
        );
        assert!(
            initial.value() >= v_min.value() && initial.value() <= v_max.value(),
            "initial voltage {initial} outside [{v_min}, {v_max}]"
        );
        VoltageRegulator {
            v_min,
            v_max,
            response_delay,
            slew_volts_per_sec,
            efficiency,
            output: initial,
            target: initial,
            pending: VecDeque::new(),
            slew_derate: 1.0,
        }
    }

    /// An idealized regulator (no delay, effectively instant slew) — used by
    /// unit tests and as the baseline for ablations.
    pub fn ideal(v_min: Volt, v_max: Volt, initial: Volt) -> Self {
        VoltageRegulator::new(v_min, v_max, initial, SimDuration::ZERO, 1e9, 1.0)
    }

    /// A Raven-like regulator: ~100 ns response, full 0.6 V span in ~200 ns.
    pub fn raven(v_min: Volt, v_max: Volt, initial: Volt) -> Self {
        VoltageRegulator::new(
            v_min,
            v_max,
            initial,
            SimDuration::from_nanos(100),
            3e6, // 0.6 V in 200 ns
            0.92,
        )
    }

    /// Command a new setpoint at time `now`. The setpoint is clamped to the
    /// regulator range and becomes active after the response delay.
    pub fn set_target(&mut self, now: SimTime, v: Volt) {
        let v = v.clamp(self.v_min, self.v_max);
        self.pending.push_back((now + self.response_delay, v));
    }

    /// Advance the regulator to time `now` over a step of `dt`, slewing the
    /// output toward the most recent matured setpoint.
    pub fn step(&mut self, now: SimTime, dt: SimDuration) {
        // Adopt every matured setpoint (the newest wins).
        while let Some(&(t, v)) = self.pending.front() {
            if t <= now {
                self.target = v;
                self.pending.pop_front();
            } else {
                break;
            }
        }
        let max_delta = self.slew_volts_per_sec * self.slew_derate * dt.as_secs_f64();
        let err = self.target.value() - self.output.value();
        let delta = err.clamp(-max_delta, max_delta);
        self.output = Volt::new(self.output.value() + delta).clamp(self.v_min, self.v_max);
    }

    /// The regulated output voltage.
    #[inline]
    pub fn output(&self) -> Volt {
        self.output
    }

    /// Fill `out` with the output schedule for `out.len()` consecutive
    /// ticks starting at `t0` — the quantum-stepper kernel's borrow-based
    /// entry point. Equivalent to calling [`VoltageRegulator::step`] at
    /// `t0 + tick * i` and reading [`VoltageRegulator::output`] for each
    /// slot, and bit-identical to that loop by construction (it *is* that
    /// loop, hoisted behind the borrow).
    pub fn schedule_into(&mut self, t0: SimTime, tick: SimDuration, out: &mut [f64]) {
        for (i, v) in out.iter_mut().enumerate() {
            self.step(t0 + tick * i as u64, tick);
            *v = self.output.value();
        }
    }

    /// Set the transient slew derating factor (1.0 = healthy). Values at or
    /// below zero are pinned to a small positive floor so the regulator
    /// always makes *some* progress toward its target.
    pub fn set_slew_derate(&mut self, factor: f64) {
        self.slew_derate = if factor.is_finite() {
            factor.clamp(1e-3, 1.0)
        } else {
            1.0
        };
    }

    /// The active slew derating factor.
    #[inline]
    pub fn slew_derate(&self) -> f64 {
        self.slew_derate
    }

    /// Apply an instantaneous droop of `dv` volts to the output (a load
    /// step or fault pulled the rail down). The output is clamped to the
    /// legal range and then recovers at the (possibly derated) slew rate as
    /// `step` keeps chasing the setpoint; negative or non-finite `dv` is
    /// ignored.
    pub fn droop(&mut self, dv: f64) {
        if dv.is_finite() && dv > 0.0 {
            self.output = Volt::new(self.output.value() - dv).clamp(self.v_min, self.v_max);
        }
    }

    /// The currently-active (matured) target.
    ///
    /// Telemetry's per-quantum `vr_slew` event records this as
    /// `setpoint_v`, alongside the quantum's first/last scheduled outputs
    /// (`start_v`/`end_v`), so a trace shows both where the VR is heading
    /// and how far the slew actually got.
    #[inline]
    pub fn target(&self) -> Volt {
        self.target
    }

    /// Input power needed to deliver `output_watts` at the current
    /// efficiency.
    #[inline]
    pub fn input_power(&self, output_watts: f64) -> f64 {
        output_watts / self.efficiency
    }

    /// Worst-case time to traverse the full output range at the slew rate
    /// (plus the response delay) — comparable to Table 1's VR row.
    pub fn full_transition_time(&self) -> SimDuration {
        let span = self.v_max.value() - self.v_min.value();
        self.response_delay + SimDuration::from_secs_f64(span / self.slew_volts_per_sec)
    }
}

impl Snapshot for VoltageRegulator {
    fn save_state(&self, w: &mut StateWriter) {
        w.f64("vr.output", self.output.0);
        w.f64("vr.target", self.target.0);
        w.usize("vr.pending", self.pending.len());
        for (t, v) in &self.pending {
            w.u64("vr.pending.t", t.as_nanos());
            w.f64("vr.pending.v", v.0);
        }
        w.f64("vr.slew_derate", self.slew_derate);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Option<()> {
        self.output = Volt(r.f64("vr.output")?);
        self.target = Volt(r.f64("vr.target")?);
        let n = r.usize("vr.pending")?;
        self.pending.clear();
        for _ in 0..n {
            let t = SimTime::from_nanos(r.u64("vr.pending.t")?);
            let v = Volt(r.f64("vr.pending.v")?);
            self.pending.push_back((t, v));
        }
        self.slew_derate = r.f64("vr.slew_derate")?;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::assert_close;

    fn ns(n: u64) -> SimDuration {
        SimDuration::from_nanos(n)
    }

    #[test]
    fn ideal_tracks_immediately() {
        let mut vr = VoltageRegulator::ideal(Volt::new(0.6), Volt::new(1.3), Volt::new(0.95));
        vr.set_target(SimTime::ZERO, Volt::new(1.1));
        vr.step(SimTime::ZERO, ns(100));
        assert_close!(vr.output().value(), 1.1, 1e-9);
    }

    #[test]
    fn clamps_target_to_range() {
        let mut vr = VoltageRegulator::ideal(Volt::new(0.6), Volt::new(1.3), Volt::new(0.95));
        vr.set_target(SimTime::ZERO, Volt::new(2.0));
        vr.step(SimTime::ZERO, ns(100));
        assert_close!(vr.output().value(), 1.3, 1e-9);
        vr.set_target(SimTime::from_nanos(100), Volt::new(0.0));
        vr.step(SimTime::from_nanos(100), ns(100));
        assert_close!(vr.output().value(), 0.6, 1e-9);
    }

    #[test]
    fn response_delay_holds_output() {
        let mut vr = VoltageRegulator::new(
            Volt::new(0.6),
            Volt::new(1.3),
            Volt::new(0.9),
            ns(100),
            1e9,
            1.0,
        );
        vr.set_target(SimTime::ZERO, Volt::new(1.2));
        // At t = 50 ns the setpoint has not matured.
        vr.step(SimTime::from_nanos(50), ns(50));
        assert_close!(vr.output().value(), 0.9, 1e-9);
        // At t = 100 ns it has.
        vr.step(SimTime::from_nanos(100), ns(50));
        assert_close!(vr.output().value(), 1.2, 1e-9);
    }

    #[test]
    fn slew_limits_rate() {
        // 1 V/µs slew: a 0.3 V move takes 300 ns.
        let mut vr = VoltageRegulator::new(
            Volt::new(0.6),
            Volt::new(1.3),
            Volt::new(0.9),
            SimDuration::ZERO,
            1e6,
            1.0,
        );
        vr.set_target(SimTime::ZERO, Volt::new(1.2));
        vr.step(SimTime::ZERO, ns(100));
        assert_close!(vr.output().value(), 1.0, 1e-9);
        vr.step(SimTime::from_nanos(100), ns(100));
        assert_close!(vr.output().value(), 1.1, 1e-9);
        vr.step(SimTime::from_nanos(200), ns(100));
        assert_close!(vr.output().value(), 1.2, 1e-9);
        // No overshoot.
        vr.step(SimTime::from_nanos(300), ns(100));
        assert_close!(vr.output().value(), 1.2, 1e-9);
    }

    #[test]
    fn schedule_into_matches_step_loop() {
        let mk = || {
            VoltageRegulator::new(
                Volt::new(0.6),
                Volt::new(1.3),
                Volt::new(0.9),
                ns(100),
                1e6,
                1.0,
            )
        };
        let mut stepped = mk();
        let mut scheduled = mk();
        let tick = ns(50);
        let mut t = SimTime::ZERO;
        for q in 0..40u64 {
            // Retarget every few quanta to keep pending setpoints in play.
            if q % 3 == 0 {
                let v = Volt::new(0.7 + 0.05 * (q % 9) as f64);
                stepped.set_target(t, v);
                scheduled.set_target(t, v);
            }
            let n = 4 + (q % 3) as usize;
            let mut expect = vec![0.0f64; n];
            for (i, v) in expect.iter_mut().enumerate() {
                stepped.step(t + tick * i as u64, tick);
                *v = stepped.output().value();
            }
            let mut got = vec![0.0f64; n];
            scheduled.schedule_into(t, tick, &mut got);
            for (i, (a, b)) in expect.iter().zip(&got).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "quantum {q} slot {i}");
            }
            t = t + tick * n as u64;
        }
        assert_eq!(
            stepped.output().value().to_bits(),
            scheduled.output().value().to_bits()
        );
    }

    #[test]
    fn newest_matured_setpoint_wins() {
        let mut vr = VoltageRegulator::ideal(Volt::new(0.6), Volt::new(1.3), Volt::new(0.9));
        vr.set_target(SimTime::ZERO, Volt::new(1.2));
        vr.set_target(SimTime::ZERO, Volt::new(0.8));
        vr.step(SimTime::ZERO, ns(10));
        assert_close!(vr.output().value(), 0.8, 1e-9);
    }

    #[test]
    fn raven_transition_within_table1_ballpark() {
        let vr = VoltageRegulator::raven(Volt::new(0.6), Volt::new(1.2), Volt::new(0.9));
        let t = vr.full_transition_time();
        assert!(
            t.as_nanos() >= 36 && t.as_nanos() <= 452,
            "transition {t} outside Table 1 range"
        );
    }

    #[test]
    fn efficiency_scales_input_power() {
        let vr = VoltageRegulator::new(
            Volt::new(0.6),
            Volt::new(1.3),
            Volt::new(0.9),
            SimDuration::ZERO,
            1e9,
            0.9,
        );
        assert_close!(vr.input_power(90.0), 100.0, 1e-9);
    }

    #[test]
    #[should_panic(expected = "initial voltage")]
    fn initial_out_of_range_panics() {
        let _ = VoltageRegulator::ideal(Volt::new(0.6), Volt::new(1.3), Volt::new(1.5));
    }

    #[test]
    fn droop_drops_then_recovers_at_slew_rate() {
        // 1 V/µs slew, output settled at 1.0 V.
        let mut vr = VoltageRegulator::new(
            Volt::new(0.6),
            Volt::new(1.3),
            Volt::new(1.0),
            SimDuration::ZERO,
            1e6,
            1.0,
        );
        vr.droop(0.2);
        assert_close!(vr.output().value(), 0.8, 1e-9);
        // Recovery toward the 1.0 V target: 0.1 V per 100 ns step.
        vr.step(SimTime::ZERO, ns(100));
        assert_close!(vr.output().value(), 0.9, 1e-9);
        vr.step(SimTime::from_nanos(100), ns(100));
        assert_close!(vr.output().value(), 1.0, 1e-9);
        // Negative and non-finite droops are ignored.
        vr.droop(-0.5);
        vr.droop(f64::NAN);
        assert_close!(vr.output().value(), 1.0, 1e-9);
    }

    #[test]
    fn droop_clamps_to_range_floor() {
        let mut vr = VoltageRegulator::ideal(Volt::new(0.6), Volt::new(1.3), Volt::new(0.7));
        vr.droop(5.0);
        assert_close!(vr.output().value(), 0.6, 1e-9);
    }

    #[test]
    fn slew_derate_slows_transitions() {
        let mut vr = VoltageRegulator::new(
            Volt::new(0.6),
            Volt::new(1.3),
            Volt::new(0.9),
            SimDuration::ZERO,
            1e6,
            1.0,
        );
        vr.set_slew_derate(0.5);
        assert_close!(vr.slew_derate(), 0.5, 1e-12);
        vr.set_target(SimTime::ZERO, Volt::new(1.2));
        // Nominal 0.1 V per 100 ns step, derated to 0.05 V.
        vr.step(SimTime::ZERO, ns(100));
        assert_close!(vr.output().value(), 0.95, 1e-9);
        // Clearing the derate restores the nominal rate.
        vr.set_slew_derate(1.0);
        vr.step(SimTime::from_nanos(100), ns(100));
        assert_close!(vr.output().value(), 1.05, 1e-9);
        // Garbage factors are pinned to a usable range.
        vr.set_slew_derate(-3.0);
        assert!(vr.slew_derate() > 0.0);
        vr.set_slew_derate(f64::INFINITY);
        assert_close!(vr.slew_derate(), 1.0, 1e-12);
    }
}

//! Supply-voltage ripple and glitch injection.
//!
//! Real power-delivery networks are not clean: switching regulators leave
//! periodic ripple on the rail and load steps cause droop glitches. §3.5
//! notes that adaptive clocking "handles any temporary voltage-related
//! issues such as voltage glitches in the power distribution system" — our
//! components derive their clock from the instantaneous voltage, so this
//! module lets the failure-injection tests verify that claim: HCAPP must
//! keep the package legal (and nearly as fast) with a realistically dirty
//! rail.
//!
//! The model is a deterministic sinusoidal ripple plus random rectangular
//! droop glitches drawn from a seeded stream.

use hcapp_sim_core::rng::DeterministicRng;
use hcapp_sim_core::time::SimTime;
use hcapp_sim_core::units::Volt;

/// Ripple/glitch parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RippleSpec {
    /// Peak amplitude of the periodic ripple in volts.
    pub ripple_amplitude: f64,
    /// Ripple frequency in hertz (switching regulators: hundreds of kHz to
    /// a few MHz).
    pub ripple_hz: f64,
    /// Probability per tick of starting a droop glitch.
    pub glitch_per_tick: f64,
    /// Glitch depth in volts (always a droop — load steps pull the rail
    /// down).
    pub glitch_depth: f64,
    /// Glitch duration in ticks.
    pub glitch_ticks: u32,
}

impl RippleSpec {
    /// A moderately dirty rail: ±10 mV ripple at 1 MHz, 30 mV droops of
    /// ~0.5 µs roughly every 100 µs.
    pub fn moderate() -> Self {
        RippleSpec {
            ripple_amplitude: 0.010,
            ripple_hz: 1.0e6,
            glitch_per_tick: 0.001,
            glitch_depth: 0.030,
            glitch_ticks: 5,
        }
    }

    /// An aggressive rail for stress tests: ±25 mV ripple, 80 mV droops.
    pub fn severe() -> Self {
        RippleSpec {
            ripple_amplitude: 0.025,
            ripple_hz: 1.0e6,
            glitch_per_tick: 0.004,
            glitch_depth: 0.080,
            glitch_ticks: 10,
        }
    }

    /// Validate invariants.
    ///
    /// # Panics
    /// Panics on negative amplitudes or probabilities outside `[0, 1]`.
    pub fn validate(&self) {
        assert!(self.ripple_amplitude >= 0.0 && self.glitch_depth >= 0.0);
        assert!((0.0..=1.0).contains(&self.glitch_per_tick));
        assert!(self.ripple_hz >= 0.0);
    }
}

/// Stateful ripple/glitch injector for one supply branch.
#[derive(Debug, Clone)]
pub struct RippleInjector {
    spec: RippleSpec,
    rng: DeterministicRng,
    /// Remaining ticks of the active glitch (0 = none).
    glitch_remaining: u32,
}

impl RippleInjector {
    /// Create an injector with its own deterministic stream.
    pub fn new(spec: RippleSpec, seed: u64, stream_id: u64) -> Self {
        spec.validate();
        RippleInjector {
            spec,
            rng: DeterministicRng::derive(seed, stream_id),
            glitch_remaining: 0,
        }
    }

    /// Perturb the delivered voltage for the tick at time `t`.
    pub fn perturb(&mut self, v: Volt, t: SimTime) -> Volt {
        let mut out = v.value();
        if self.spec.ripple_amplitude > 0.0 && self.spec.ripple_hz > 0.0 {
            let phase = t.as_secs_f64() * self.spec.ripple_hz * std::f64::consts::TAU;
            out += self.spec.ripple_amplitude * phase.sin();
        }
        if self.glitch_remaining > 0 {
            self.glitch_remaining -= 1;
            out -= self.spec.glitch_depth;
        } else if self.spec.glitch_per_tick > 0.0 && self.rng.chance(self.spec.glitch_per_tick) {
            self.glitch_remaining = self.spec.glitch_ticks;
            out -= self.spec.glitch_depth;
        }
        Volt::new(out.max(0.0))
    }

    /// The injector's spec.
    pub fn spec(&self) -> &RippleSpec {
        &self.spec
    }
}

impl hcapp_sim_core::state::Snapshot for RippleInjector {
    fn save_state(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        self.rng.save_state(w);
        w.u32("ripple.glitch", self.glitch_remaining);
    }

    fn load_state(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        self.rng.load_state(r)?;
        self.glitch_remaining = r.u32("ripple.glitch")?;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn ripple_is_zero_mean_and_bounded() {
        let mut inj = RippleInjector::new(
            RippleSpec {
                glitch_per_tick: 0.0,
                ..RippleSpec::moderate()
            },
            1,
            0,
        );
        let mut sum = 0.0;
        let n = 10_000;
        for i in 0..n {
            let v = inj.perturb(Volt::new(1.0), SimTime::from_nanos(i * 100));
            let dev = v.value() - 1.0;
            assert!(dev.abs() <= 0.010 + 1e-12, "ripple too large: {dev}");
            sum += dev;
        }
        assert!(
            (sum / n as f64).abs() < 1e-3,
            "ripple should be ~zero-mean, got {}",
            sum / n as f64
        );
    }

    #[test]
    fn glitches_droop_for_their_duration() {
        let spec = RippleSpec {
            ripple_amplitude: 0.0,
            ripple_hz: 0.0,
            glitch_per_tick: 1.0, // immediate
            glitch_depth: 0.05,
            glitch_ticks: 3,
        };
        let mut inj = RippleInjector::new(spec, 1, 0);
        for i in 0..4 {
            let v = inj.perturb(Volt::new(1.0), at(i));
            assert!(
                (v.value() - 0.95).abs() < 1e-12,
                "tick {i}: expected droop, got {v}"
            );
        }
    }

    #[test]
    fn glitch_rate_matches_probability() {
        let spec = RippleSpec {
            ripple_amplitude: 0.0,
            ripple_hz: 0.0,
            glitch_per_tick: 0.01,
            glitch_depth: 0.05,
            glitch_ticks: 1,
        };
        let mut inj = RippleInjector::new(spec, 7, 0);
        let n = 100_000;
        let glitched = (0..n)
            .filter(|&i| inj.perturb(Volt::new(1.0), at(i)).value() < 0.99)
            .count();
        let rate = glitched as f64 / n as f64;
        // Each start lasts 1 extra tick, so observed rate ≈ 2 × 1%.
        assert!((0.012..=0.03).contains(&rate), "glitch rate {rate}");
    }

    #[test]
    fn never_negative() {
        let mut inj = RippleInjector::new(RippleSpec::severe(), 3, 0);
        for i in 0..1_000 {
            assert!(inj.perturb(Volt::new(0.01), at(i)).value() >= 0.0);
        }
    }

    #[test]
    fn deterministic_per_stream() {
        let mut a = RippleInjector::new(RippleSpec::severe(), 5, 2);
        let mut b = RippleInjector::new(RippleSpec::severe(), 5, 2);
        for i in 0..5_000 {
            assert_eq!(
                a.perturb(Volt::new(0.9), at(i)),
                b.perturb(Volt::new(0.9), at(i))
            );
        }
    }
}

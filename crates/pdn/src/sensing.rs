//! Power sensing circuitry.
//!
//! The global controller reads package power through current/voltage sensing
//! built into the global VR (§3.1), as in commercial VR controllers. Real
//! sensing has latency (Table 1: 50–60 ns) and finite resolution; both are
//! modelled here. The sensor is a tick-granular delay line: the controller
//! always acts on slightly stale power, which the PID tuning has to absorb
//! (and which the integration tests exercise).

use hcapp_sim_core::units::Watt;
use std::collections::VecDeque;

/// A transient fault on the sensor output, as injected by a fault plan
/// (`hcapp-faults` decides *when*; this module only models *what* the
/// controller then sees).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SensorFault {
    /// Mean-one multiplicative noise: the reading is scaled by `factor`
    /// (drawn per control quantum by the injector).
    Noise {
        /// Multiplier applied to the true reading.
        factor: f64,
    },
    /// The output register froze: the controller keeps seeing the last
    /// pre-fault reading no matter what the package does.
    StuckAt,
    /// The sense line dropped out: the controller reads zero load.
    Dropout,
}

/// A delayed, optionally quantized power sensor.
#[derive(Debug, Clone)]
pub struct PowerSensor {
    /// Delay in whole simulation ticks between a sample entering the sensor
    /// and being visible at the output.
    delay_ticks: usize,
    /// Quantization step in watts (0 disables quantization).
    resolution: f64,
    line: VecDeque<Watt>,
    latest_output: Watt,
}

impl PowerSensor {
    /// Create a sensor with the given pipeline delay (in simulation ticks)
    /// and resolution (watts per LSB; 0 = ideal).
    pub fn new(delay_ticks: usize, resolution: f64) -> Self {
        assert!(resolution >= 0.0, "negative resolution");
        PowerSensor {
            delay_ticks,
            resolution,
            line: VecDeque::with_capacity(delay_ticks + 1),
            latest_output: Watt::ZERO,
        }
    }

    /// An ideal sensor: zero delay, infinite resolution.
    pub fn ideal() -> Self {
        PowerSensor::new(0, 0.0)
    }

    /// A Table-1-like sensor for a 100 ns tick: 50–60 ns latency rounds to
    /// one tick; 0.1 W resolution (12-bit over a ~400 W full scale).
    pub fn table1_default() -> Self {
        PowerSensor::new(1, 0.1)
    }

    /// Feed the instantaneous package power for this tick; returns the
    /// sensor output visible to the controller this tick.
    pub fn sample(&mut self, p: Watt) -> Watt {
        self.line.push_back(p);
        let out = if self.line.len() > self.delay_ticks {
            self.line.pop_front().expect("non-empty line")
        } else {
            // Pipeline still filling: hold the last output (zero at reset).
            self.latest_output
        };
        self.latest_output = self.quantize(out);
        self.latest_output
    }

    /// The most recent sensor output without feeding a new sample.
    pub fn read(&self) -> Watt {
        self.latest_output
    }

    /// Sensor pipeline delay in ticks.
    pub fn delay_ticks(&self) -> usize {
        self.delay_ticks
    }

    /// Clear the pipeline.
    pub fn reset(&mut self) {
        self.line.clear();
        self.latest_output = Watt::ZERO;
    }

    /// What the controller sees when `fault` corrupts a true reading of
    /// `reading`, given `held` — the last reading delivered before the
    /// fault began (what a stuck output register still holds).
    ///
    /// This is a pure transform so the coordinator can corrupt the value a
    /// controller consumes without disturbing the sensor's internal delay
    /// line (the physical pipeline keeps tracking the true power and is
    /// intact again the tick the fault clears).
    pub fn faulted_reading(reading: Watt, fault: SensorFault, held: Watt) -> Watt {
        match fault {
            SensorFault::Noise { factor } => Watt::new(reading.value() * factor),
            SensorFault::StuckAt => held,
            SensorFault::Dropout => Watt::ZERO,
        }
    }

    fn quantize(&self, p: Watt) -> Watt {
        if self.resolution > 0.0 {
            Watt::new((p.value() / self.resolution).round() * self.resolution)
        } else {
            p
        }
    }
}

impl hcapp_sim_core::state::Snapshot for PowerSensor {
    fn save_state(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        let line: Vec<f64> = self.line.iter().map(|p| p.0).collect();
        w.f64_slice("sensor.line", &line);
        w.f64("sensor.latest", self.latest_output.0);
    }

    fn load_state(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        self.line = r.f64_vec("sensor.line")?.into_iter().map(Watt).collect();
        self.latest_output = Watt(r.f64("sensor.latest")?);
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::assert_close;

    #[test]
    fn ideal_passthrough() {
        let mut s = PowerSensor::ideal();
        assert_close!(s.sample(Watt::new(55.5)).value(), 55.5, 1e-12);
        assert_close!(s.read().value(), 55.5, 1e-12);
    }

    #[test]
    fn delay_line_shifts_samples() {
        let mut s = PowerSensor::new(2, 0.0);
        assert_close!(s.sample(Watt::new(10.0)).value(), 0.0, 1e-12);
        assert_close!(s.sample(Watt::new(20.0)).value(), 0.0, 1e-12);
        assert_close!(s.sample(Watt::new(30.0)).value(), 10.0, 1e-12);
        assert_close!(s.sample(Watt::new(40.0)).value(), 20.0, 1e-12);
    }

    #[test]
    fn quantization_rounds_to_lsb() {
        let mut s = PowerSensor::new(0, 0.5);
        assert_close!(s.sample(Watt::new(10.26)).value(), 10.5, 1e-12);
        assert_close!(s.sample(Watt::new(10.24)).value(), 10.0, 1e-12);
    }

    #[test]
    fn quantization_error_bounded() {
        let mut s = PowerSensor::new(0, 0.1);
        for i in 0..1000 {
            let p = i as f64 * 0.0317;
            let out = s.sample(Watt::new(p)).value();
            assert!((out - p).abs() <= 0.05 + 1e-12, "error too large at {p}");
        }
    }

    #[test]
    fn reset_clears_pipeline() {
        let mut s = PowerSensor::new(1, 0.0);
        s.sample(Watt::new(50.0));
        s.reset();
        assert_close!(s.read().value(), 0.0, 1e-12);
        assert_close!(s.sample(Watt::new(70.0)).value(), 0.0, 1e-12);
        assert_close!(s.sample(Watt::new(80.0)).value(), 70.0, 1e-12);
    }

    #[test]
    fn table1_default_has_one_tick_delay() {
        let s = PowerSensor::table1_default();
        assert_eq!(s.delay_ticks(), 1);
    }

    #[test]
    fn faulted_reading_transforms() {
        let truth = Watt::new(80.0);
        let held = Watt::new(64.0);
        let noisy = PowerSensor::faulted_reading(truth, SensorFault::Noise { factor: 1.25 }, held);
        assert_close!(noisy.value(), 100.0, 1e-12);
        let stuck = PowerSensor::faulted_reading(truth, SensorFault::StuckAt, held);
        assert_close!(stuck.value(), 64.0, 1e-12);
        let dead = PowerSensor::faulted_reading(truth, SensorFault::Dropout, held);
        assert_close!(dead.value(), 0.0, 1e-12);
    }

    #[test]
    fn faulted_reading_leaves_sensor_state_alone() {
        let mut s = PowerSensor::new(1, 0.0);
        s.sample(Watt::new(10.0));
        let before = s.read();
        let _ = PowerSensor::faulted_reading(Watt::new(99.0), SensorFault::Dropout, before);
        assert_close!(s.read().value(), before.value(), 1e-12);
    }
}

//! Property-based tests for the power-delivery models.
//!
//! Compiled only with `--features proptest` so the default `cargo test -q`
//! stays lean; the suite runs against the local proptest shim
//! (`crates/proptest-shim`), so no registry access is needed either way.
#![cfg(feature = "proptest")]

use hcapp_pdn::delays::{BudgetRow, DelayRange, TransitionBudget};
use hcapp_pdn::ripple::{RippleInjector, RippleSpec};
use hcapp_pdn::sensing::PowerSensor;
use hcapp_pdn::regulator::VoltageRegulator;
use hcapp_sim_core::time::{SimDuration, SimTime};
use hcapp_sim_core::units::{Volt, Watt};
use proptest::prelude::*;

proptest! {
    /// The regulator output never leaves its legal range and never moves
    /// faster than the slew limit, for any setpoint sequence.
    #[test]
    fn regulator_range_and_slew(targets in prop::collection::vec(0.0f64..2.0, 1..200),
                                slew in 1e5f64..1e7) {
        let (v_min, v_max) = (Volt::new(0.6), Volt::new(1.3));
        let mut vr = VoltageRegulator::new(
            v_min, v_max, Volt::new(0.95),
            SimDuration::from_nanos(100), slew, 0.9);
        let dt = SimDuration::from_nanos(100);
        let mut t = SimTime::ZERO;
        let mut prev = vr.output().value();
        let max_step = slew * dt.as_secs_f64();
        for target in targets {
            vr.set_target(t, Volt::new(target));
            for _ in 0..5 {
                vr.step(t, dt);
                t += dt;
                let out = vr.output().value();
                prop_assert!((v_min.value() - 1e-12..=v_max.value() + 1e-12).contains(&out));
                prop_assert!((out - prev).abs() <= max_step + 1e-12,
                    "slew violated: {} -> {} (max {})", prev, out, max_step);
                prev = out;
            }
        }
    }

    /// The sensor is a pure delay + quantization: after the pipeline fills,
    /// outputs are the inputs shifted by `delay` with bounded error.
    #[test]
    fn sensor_delay_and_quantization(samples in prop::collection::vec(0.0f64..300.0, 5..100),
                                     delay in 0usize..4,
                                     resolution in 0.0f64..1.0) {
        let mut s = PowerSensor::new(delay, resolution);
        let mut outs = Vec::new();
        for &p in &samples {
            outs.push(s.sample(Watt::new(p)).value());
        }
        for i in delay..samples.len() {
            let expect = samples[i - delay];
            let got = outs[i];
            let tol = if resolution > 0.0 { resolution / 2.0 + 1e-9 } else { 1e-12 };
            prop_assert!((got - expect).abs() <= tol,
                "at {i}: {got} vs {expect} (delay {delay}, res {resolution})");
        }
    }

    /// Ripple perturbation is bounded by amplitude + glitch depth and never
    /// produces a negative voltage.
    #[test]
    fn ripple_bounded(v in 0.0f64..1.5, seed in any::<u64>(), n in 1usize..500) {
        let spec = RippleSpec::severe();
        let mut inj = RippleInjector::new(spec, seed, 1);
        let bound = spec.ripple_amplitude + spec.glitch_depth;
        for i in 0..n {
            let out = inj.perturb(Volt::new(v), SimTime::from_nanos(i as u64 * 100)).value();
            prop_assert!(out >= 0.0);
            prop_assert!(out <= v + spec.ripple_amplitude + 1e-12);
            prop_assert!(out >= (v - bound).max(0.0) - 1e-12);
        }
    }

    /// Delay-budget arithmetic: totals are the sums of the scaled rows, and
    /// the derived control period always covers the worst case.
    #[test]
    fn budget_arithmetic(rows in prop::collection::vec((1u64..500, 1u64..500, 1u64..6), 1..6)) {
        let rows: Vec<BudgetRow> = rows
            .into_iter()
            .map(|(a, b, scale)| BudgetRow {
                component: "x",
                simulated: DelayRange::new(a.min(b), a.max(b)),
                scale,
            })
            .collect();
        let expect_max: u64 = rows.iter().map(|r| r.scaled().max_ns).sum();
        let budget = TransitionBudget::new(rows);
        prop_assert_eq!(budget.total().max_ns, expect_max);
        prop_assert!(budget.control_period().as_nanos() >= expect_max);
        // Never more than one full extra microsecond of padding.
        prop_assert!(budget.control_period().as_nanos() < expect_max + 1_000);
    }
}

//! Energy breakdown by architectural block class.
//!
//! McPAT (CPU) and GPUWattch (GPU) both report power split by block; the
//! chiplet simulators accumulate the same split here so run reports can show
//! where the budget went and tests can assert the parts sum to the whole.

use crate::energy::EnergyAccount;
use hcapp_sim_core::time::SimDuration;
use hcapp_sim_core::units::Watt;

/// Energy split by block class.
#[derive(Debug, Clone, Default)]
pub struct PowerBreakdown {
    /// Core/SM dynamic switching energy.
    pub unit_dynamic: EnergyAccount,
    /// Core/SM leakage energy.
    pub unit_leakage: EnergyAccount,
    /// Uncore (caches, NoC, memory controller) energy.
    pub uncore: EnergyAccount,
}

impl PowerBreakdown {
    /// A zeroed breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one tick's powers.
    pub fn record(
        &mut self,
        unit_dynamic: Watt,
        unit_leakage: Watt,
        uncore: Watt,
        dt: SimDuration,
    ) {
        self.unit_dynamic.accumulate(unit_dynamic, dt);
        self.unit_leakage.accumulate(unit_leakage, dt);
        self.uncore.accumulate(uncore, dt);
    }

    /// Total energy across all blocks in joules.
    pub fn total_joules(&self) -> f64 {
        self.unit_dynamic.joules() + self.unit_leakage.joules() + self.uncore.joules()
    }

    /// Fraction of energy spent in unit dynamic switching (0 when empty).
    // simlint: allow(L8): zero-total sentinel guards the division; the
    // total is a sum of non-negatives, exactly 0.0 only when nothing ran
    pub fn dynamic_fraction(&self) -> f64 {
        let total = self.total_joules();
        if total == 0.0 {
            0.0
        } else {
            self.unit_dynamic.joules() / total
        }
    }

    /// Merge a breakdown from another worker (parallel reduction).
    pub fn merge(&mut self, other: &PowerBreakdown) {
        self.unit_dynamic.merge(&other.unit_dynamic);
        self.unit_leakage.merge(&other.unit_leakage);
        self.uncore.merge(&other.uncore);
    }
}

impl hcapp_sim_core::state::Snapshot for PowerBreakdown {
    fn save_state(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        self.unit_dynamic.save_state(w);
        self.unit_leakage.save_state(w);
        self.uncore.save_state(w);
    }

    fn load_state(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        self.unit_dynamic.load_state(r)?;
        self.unit_leakage.load_state(r)?;
        self.uncore.load_state(r)?;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::assert_close;

    #[test]
    fn parts_sum_to_total() {
        let mut b = PowerBreakdown::new();
        let dt = SimDuration::from_micros(1);
        for _ in 0..1000 {
            b.record(Watt::new(40.0), Watt::new(8.0), Watt::new(6.0), dt);
        }
        assert_close!(b.total_joules(), (40.0 + 8.0 + 6.0) * 1e-3, 1e-9);
        assert_close!(b.dynamic_fraction(), 40.0 / 54.0, 1e-9);
    }

    #[test]
    fn empty_fraction_is_zero() {
        assert_eq!(PowerBreakdown::new().dynamic_fraction(), 0.0);
    }

    #[test]
    fn merge_adds_energy() {
        let mut a = PowerBreakdown::new();
        let mut b = PowerBreakdown::new();
        let dt = SimDuration::from_millis(1);
        a.record(Watt::new(10.0), Watt::new(1.0), Watt::new(2.0), dt);
        b.record(Watt::new(30.0), Watt::new(3.0), Watt::new(4.0), dt);
        a.merge(&b);
        assert_close!(a.total_joules(), 50.0 * 1e-3, 1e-9);
    }
}

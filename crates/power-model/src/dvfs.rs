//! Discrete DVFS operating points.
//!
//! HCAPP's controllers move the voltage continuously, but firmware-style
//! control (the RAPL-like comparison) and conventional OS governors work
//! with a discrete table of voltage/frequency pairs. The quantized-control
//! ablation uses this table to snap controller outputs to realizable points.

use crate::freq::FrequencyModel;
use hcapp_sim_core::units::{Hertz, Volt};

/// One realizable voltage/frequency pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Supply voltage of the point.
    pub voltage: Volt,
    /// Clock frequency of the point.
    pub frequency: Hertz,
}

/// An ordered table of operating points (ascending voltage).
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPointTable {
    points: Vec<OperatingPoint>,
}

impl OperatingPointTable {
    /// Build a table from unordered points; sorts by voltage.
    ///
    /// # Panics
    /// Panics if `points` is empty.
    pub fn new(mut points: Vec<OperatingPoint>) -> Self {
        assert!(!points.is_empty(), "empty operating point table");
        points.sort_by(|a, b| a.voltage.partial_cmp(&b.voltage).expect("NaN voltage"));
        OperatingPointTable { points }
    }

    /// Generate `n` evenly spaced points between `v_lo` and `v_hi` using a
    /// frequency model (the usual way vendor tables are produced).
    ///
    /// # Panics
    /// Panics if `n < 2` or the voltage range is inverted.
    pub fn from_model(model: &FrequencyModel, v_lo: Volt, v_hi: Volt, n: usize) -> Self {
        assert!(n >= 2, "need at least two operating points");
        assert!(v_lo.value() < v_hi.value(), "inverted voltage range");
        let points = (0..n)
            .map(|i| {
                let t = i as f64 / (n - 1) as f64;
                let v = v_lo + (v_hi - v_lo) * t;
                OperatingPoint {
                    voltage: v,
                    frequency: model.frequency_at(v),
                }
            })
            .collect();
        OperatingPointTable { points }
    }

    /// All points, ascending by voltage.
    pub fn points(&self) -> &[OperatingPoint] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Tables are never empty; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The highest point whose voltage does not exceed `v` (the safe
    /// quantization direction for a power cap), or the lowest point if `v`
    /// is below the entire table.
    pub fn floor(&self, v: Volt) -> OperatingPoint {
        let mut best = self.points[0];
        for p in &self.points {
            if p.voltage.value() <= v.value() + 1e-12 {
                best = *p;
            } else {
                break;
            }
        }
        best
    }

    /// The point with voltage closest to `v`.
    pub fn nearest(&self, v: Volt) -> OperatingPoint {
        *self
            .points
            .iter()
            .min_by(|a, b| {
                let da = (a.voltage.value() - v.value()).abs();
                let db = (b.voltage.value() - v.value()).abs();
                da.partial_cmp(&db).expect("NaN voltage distance")
            })
            .expect("non-empty table")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::assert_close;

    fn table() -> OperatingPointTable {
        let model = FrequencyModel::new(
            Volt::new(0.5),
            Volt::new(1.25),
            Hertz::from_mhz(800.0),
            Hertz::from_ghz(2.0),
        );
        OperatingPointTable::from_model(&model, Volt::new(0.7), Volt::new(1.2), 6)
    }

    #[test]
    fn generated_table_is_sorted_and_sized() {
        let t = table();
        assert_eq!(t.len(), 6);
        for w in t.points().windows(2) {
            assert!(w[0].voltage.value() < w[1].voltage.value());
            assert!(w[0].frequency.value() <= w[1].frequency.value());
        }
        assert_close!(t.points()[0].voltage.value(), 0.7, 1e-12);
        assert_close!(t.points()[5].voltage.value(), 1.2, 1e-12);
    }

    #[test]
    fn floor_quantizes_downward() {
        let t = table();
        // Points are at 0.7, 0.8, 0.9, 1.0, 1.1, 1.2.
        assert_close!(t.floor(Volt::new(0.95)).voltage.value(), 0.9, 1e-12);
        assert_close!(t.floor(Volt::new(0.8)).voltage.value(), 0.8, 1e-12);
        // Below the table: lowest point.
        assert_close!(t.floor(Volt::new(0.2)).voltage.value(), 0.7, 1e-12);
        // Above the table: highest point.
        assert_close!(t.floor(Volt::new(2.0)).voltage.value(), 1.2, 1e-12);
    }

    #[test]
    fn nearest_picks_closest() {
        let t = table();
        assert_close!(t.nearest(Volt::new(0.96)).voltage.value(), 1.0, 1e-12);
        assert_close!(t.nearest(Volt::new(0.94)).voltage.value(), 0.9, 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_table_panics() {
        let _ = OperatingPointTable::new(vec![]);
    }
}

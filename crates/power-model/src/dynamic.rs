//! Dynamic (switching) power.
//!
//! `P_dyn = C_eff · V² · f · a`, the standard CMOS switching-power model
//! McPAT and GPUWattch are built on. `C_eff` is the effective switched
//! capacitance of the block (farads), `a ∈ [0, 1]` the activity factor the
//! workload phase supplies.
//!
//! Combined with the threshold-linear frequency model `f ∝ (V − V_th)` this
//! yields the approximately cubic `P(V)` relationship the paper's Eq. 1
//! inverts with a cube root.

use hcapp_sim_core::units::{Hertz, Volt, Watt};

/// Switching-power model for one block (core, SM, accelerator lane, uncore).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicPower {
    /// Effective switched capacitance in farads.
    pub c_eff: f64,
}

impl DynamicPower {
    /// Create a model from the effective capacitance (farads).
    ///
    /// # Panics
    /// Panics if `c_eff` is negative or non-finite.
    pub fn new(c_eff: f64) -> Self {
        assert!(c_eff.is_finite() && c_eff >= 0.0, "invalid C_eff {c_eff}");
        DynamicPower { c_eff }
    }

    /// Construct from a design point: the capacitance that dissipates
    /// `p_design` at `(v_design, f_design)` with activity 1.0.
    ///
    /// This is how the component simulators are calibrated: pick the block's
    /// peak power at its nominal operating point and derive `C_eff`.
    pub fn from_design_point(p_design: Watt, v_design: Volt, f_design: Hertz) -> Self {
        let denom = v_design.value() * v_design.value() * f_design.value();
        assert!(denom > 0.0, "degenerate design point");
        DynamicPower::new(p_design.value() / denom)
    }

    /// Power dissipated at voltage `v`, frequency `f` and activity `a`.
    ///
    /// Activity is clamped into `[0, 1]`.
    #[inline]
    pub fn power(&self, v: Volt, f: Hertz, activity: f64) -> Watt {
        let a = activity.clamp(0.0, 1.0);
        Watt::new(self.c_eff * v.value() * v.value() * f.value() * a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::assert_close;

    #[test]
    fn design_point_roundtrip() {
        let m = DynamicPower::from_design_point(
            Watt::new(8.0),
            Volt::new(1.0),
            Hertz::from_ghz(2.0),
        );
        let p = m.power(Volt::new(1.0), Hertz::from_ghz(2.0), 1.0);
        assert_close!(p.value(), 8.0, 1e-9);
    }

    #[test]
    fn scales_quadratically_with_voltage() {
        let m = DynamicPower::new(1e-9);
        let f = Hertz::from_ghz(1.0);
        let p1 = m.power(Volt::new(0.8), f, 1.0).value();
        let p2 = m.power(Volt::new(1.6), f, 1.0).value();
        assert_close!(p2 / p1, 4.0, 1e-9);
    }

    #[test]
    fn scales_linearly_with_frequency_and_activity() {
        let m = DynamicPower::new(1e-9);
        let v = Volt::new(1.0);
        let p1 = m.power(v, Hertz::from_ghz(1.0), 0.5).value();
        let p2 = m.power(v, Hertz::from_ghz(2.0), 0.5).value();
        let p3 = m.power(v, Hertz::from_ghz(1.0), 1.0).value();
        assert_close!(p2 / p1, 2.0, 1e-9);
        assert_close!(p3 / p1, 2.0, 1e-9);
    }

    #[test]
    fn activity_clamped() {
        let m = DynamicPower::new(1e-9);
        let v = Volt::new(1.0);
        let f = Hertz::from_ghz(1.0);
        assert_eq!(m.power(v, f, -0.5), Watt::ZERO);
        assert_eq!(m.power(v, f, 2.0), m.power(v, f, 1.0));
    }

    #[test]
    fn zero_activity_zero_power() {
        let m = DynamicPower::new(1e-9);
        assert_eq!(
            m.power(Volt::new(1.2), Hertz::from_ghz(2.0), 0.0),
            Watt::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "invalid C_eff")]
    fn negative_ceff_panics() {
        let _ = DynamicPower::new(-1.0);
    }
}

//! Energy accounting.
//!
//! Integrates a power signal over simulated time. Used for the per-component
//! energy breakdowns in run reports and for verifying that average power ×
//! duration matches integrated energy (an internal consistency invariant the
//! integration tests check).

use hcapp_sim_core::time::SimDuration;
use hcapp_sim_core::units::Watt;

/// Trapezoid-free (left-Riemann) energy integrator.
///
/// Samples arrive on the fixed simulation tick, during which power is
/// constant by construction, so a left-Riemann sum is exact.
#[derive(Debug, Clone, Default)]
pub struct EnergyAccount {
    joules: f64,
    elapsed_ns: u64,
}

impl EnergyAccount {
    /// A fresh account with zero accumulated energy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `power` held constant for `dt`.
    #[inline]
    pub fn accumulate(&mut self, power: Watt, dt: SimDuration) {
        self.joules += power.value() * dt.as_secs_f64();
        self.elapsed_ns += dt.as_nanos();
    }

    /// Total accumulated energy in joules.
    #[inline]
    pub fn joules(&self) -> f64 {
        self.joules
    }

    /// Total integrated duration.
    #[inline]
    pub fn elapsed(&self) -> SimDuration {
        SimDuration::from_nanos(self.elapsed_ns)
    }

    /// Average power over the integrated duration (zero if nothing was
    /// integrated).
    pub fn average_power(&self) -> Watt {
        if self.elapsed_ns == 0 {
            Watt::ZERO
        } else {
            Watt::new(self.joules / (self.elapsed_ns as f64 * 1e-9))
        }
    }

    /// Merge another account (parallel reduction across chiplets).
    pub fn merge(&mut self, other: &EnergyAccount) {
        self.joules += other.joules;
        // Durations are parallel, not sequential: keep the longer one so
        // average_power over merged per-chiplet accounts of equal length
        // reports the package average.
        self.elapsed_ns = self.elapsed_ns.max(other.elapsed_ns);
    }
}

impl hcapp_sim_core::state::Snapshot for EnergyAccount {
    fn save_state(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        w.f64("energy.joules", self.joules);
        w.u64("energy.elapsed_ns", self.elapsed_ns);
    }

    fn load_state(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        self.joules = r.f64("energy.joules")?;
        self.elapsed_ns = r.u64("energy.elapsed_ns")?;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::assert_close;

    #[test]
    fn constant_power() {
        let mut e = EnergyAccount::new();
        for _ in 0..1000 {
            e.accumulate(Watt::new(50.0), SimDuration::from_micros(1));
        }
        assert_close!(e.joules(), 50.0 * 1e-3, 1e-12);
        assert_eq!(e.elapsed(), SimDuration::from_millis(1));
        assert_close!(e.average_power().value(), 50.0, 1e-9);
    }

    #[test]
    fn empty_average_is_zero() {
        let e = EnergyAccount::new();
        assert_eq!(e.average_power(), Watt::ZERO);
        assert_eq!(e.joules(), 0.0);
    }

    #[test]
    fn merge_sums_energy_keeps_duration() {
        let mut a = EnergyAccount::new();
        let mut b = EnergyAccount::new();
        a.accumulate(Watt::new(30.0), SimDuration::from_millis(2));
        b.accumulate(Watt::new(70.0), SimDuration::from_millis(2));
        a.merge(&b);
        assert_close!(a.joules(), 0.2, 1e-12);
        assert_eq!(a.elapsed(), SimDuration::from_millis(2));
        assert_close!(a.average_power().value(), 100.0, 1e-9);
    }
}
